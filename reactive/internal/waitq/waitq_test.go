package waitq

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGrantFIFOOrder(t *testing.T) {
	var q Queue
	ws := make([]*Waiter, 4)
	for i := range ws {
		ws[i] = Get()
		q.Push(ws[i])
	}
	if q.Len() != len(ws) {
		t.Fatalf("Len = %d, want %d", q.Len(), len(ws))
	}
	for i, w := range ws {
		if !q.Grant() {
			t.Fatalf("Grant %d failed with %d waiters queued", i, q.Len())
		}
		select {
		case <-w.Ready():
		default:
			t.Fatalf("grant %d did not wake the oldest waiter", i)
		}
		Put(w)
	}
	if q.Grant() {
		t.Fatal("Grant on an empty queue reported a wakeup")
	}
}

func TestAbandonBeforeGrant(t *testing.T) {
	var q Queue
	a, b := Get(), Get()
	q.Push(a)
	q.Push(b)
	if !q.Abandon(a) {
		t.Fatal("Abandon of an ungranted waiter returned false")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d after abandon, want 1", q.Len())
	}
	// The remaining waiter still gets the next grant.
	q.Grant()
	select {
	case <-b.Ready():
	default:
		t.Fatal("grant after abandon missed the remaining waiter")
	}
	Put(a)
	Put(b)
}

// TestAbandonAfterGrantPassesOn is the handoff-or-abandon contract: a
// waiter whose grant raced its cancellation consumes the token and hands
// the wakeup to the next waiter, so no wakeup is lost.
func TestAbandonAfterGrantPassesOn(t *testing.T) {
	var q Queue
	a, b := Get(), Get()
	q.Push(a)
	q.Push(b)
	q.Grant() // a granted; token delivered
	if q.Abandon(a) {
		t.Fatal("Abandon of a granted waiter returned true")
	}
	select {
	case <-b.Ready():
	default:
		t.Fatal("abandoned grant was not passed on to the next waiter")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
	Put(a)
	Put(b)
}

func TestGrantAll(t *testing.T) {
	var q Queue
	ws := make([]*Waiter, 5)
	for i := range ws {
		ws[i] = Get()
		q.Push(ws[i])
	}
	if n := q.GrantAll(); n != len(ws) {
		t.Fatalf("GrantAll woke %d, want %d", n, len(ws))
	}
	for i, w := range ws {
		select {
		case <-w.Ready():
		default:
			t.Fatalf("waiter %d missed the broadcast", i)
		}
		Put(w)
	}
	if n := q.GrantAll(); n != 0 {
		t.Fatalf("GrantAll on empty queue woke %d", n)
	}
}

func TestPutPanicsOnUndeliveredGrant(t *testing.T) {
	var q Queue
	w := Get()
	q.Push(w)
	q.Grant()
	defer func() {
		if recover() == nil {
			t.Fatal("Put with an unconsumed token did not panic")
		}
		<-w.Ready()
		Put(w)
	}()
	Put(w)
}

func TestReuseAcrossQueues(t *testing.T) {
	var q1, q2 Queue
	w := Get()
	q1.Push(w)
	q1.Grant()
	<-w.Ready()
	q2.Push(w)
	if !q2.Abandon(w) {
		t.Fatal("abandon on second queue failed")
	}
	Put(w)
}

// TestStressGrantVsAbandon hammers the grant-vs-cancel race: waiters park
// and are either granted or abandon concurrently, while a granter thread
// delivers exactly as many grants as there are acquisitions to hand out.
// The invariant under test is that every delivered grant wakes someone
// while any waiter remains — the no-lost-wakeup property.
func TestStressGrantVsAbandon(t *testing.T) {
	var q Queue
	const waiters = 16
	iters := 500
	if testing.Short() {
		iters = 150
	}
	var granted atomic.Int64 // tokens consumed via Ready
	var abandoned atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < waiters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := Get()
			defer Put(w)
			for i := 0; i < iters; i++ {
				q.Push(w)
				if (i+g)%3 == 0 {
					// Cancel path: may race an in-flight grant.
					if !q.Abandon(w) {
						abandoned.Add(1)
					}
					continue
				}
				select {
				case <-w.Ready():
					granted.Add(1)
				case <-time.After(10 * time.Second):
					t.Errorf("waiter %d stranded at iter %d (len=%d)", g, i, q.Len())
					q.Abandon(w)
					return
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var gwg sync.WaitGroup
	gwg.Add(1)
	go func() {
		defer gwg.Done()
		for {
			select {
			case <-stop:
				// Drain any waiters still parked at shutdown.
				for q.GrantAll() > 0 {
				}
				return
			default:
				if !q.Grant() {
					runtime.Gosched()
				}
			}
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stress did not complete: len=%d granted=%d abandoned=%d",
			q.Len(), granted.Load(), abandoned.Load())
	}
	close(stop)
	gwg.Wait()
	if q.Len() != 0 {
		t.Fatalf("queue not empty at exit: %d", q.Len())
	}
}
