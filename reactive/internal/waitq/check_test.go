package waitq

import (
	"strings"
	"testing"
)

func TestCheckOnLiveQueue(t *testing.T) {
	var q Queue
	if err := q.Check(); err != nil {
		t.Fatalf("empty queue: %v", err)
	}
	ws := make([]*Waiter, 3)
	for i := range ws {
		ws[i] = Get()
		q.Push(ws[i])
	}
	if err := q.Check(); err != nil {
		t.Fatalf("queue of 3: %v", err)
	}
	q.Grant()
	<-ws[0].Ready()
	q.Abandon(ws[1])
	if err := q.Check(); err != nil {
		t.Fatalf("after grant+abandon: %v", err)
	}
	q.Abandon(ws[2])
	for _, w := range ws {
		Put(w)
	}
	if err := q.Check(); err != nil {
		t.Fatalf("drained queue: %v", err)
	}
}

func TestCheckCatchesLengthMirrorSkew(t *testing.T) {
	var q Queue
	w := Get()
	q.Push(w)
	q.n.Add(1) // corrupt the mirror
	err := q.Check()
	if err == nil || !strings.Contains(err.Error(), "length mirror") {
		t.Fatalf("skewed mirror not caught: %v", err)
	}
	q.n.Add(-1)
	q.Abandon(w)
	Put(w)
}

func TestCheckCatchesBrokenBackLink(t *testing.T) {
	var q Queue
	a, b := Get(), Get()
	q.Push(a)
	q.Push(b)
	b.prev = nil // corrupt the back link
	err := q.Check()
	if err == nil || !strings.Contains(err.Error(), "prev") {
		t.Fatalf("broken back link not caught: %v", err)
	}
	b.prev = a
	q.Abandon(b)
	q.Abandon(a)
	Put(a)
	Put(b)
}
