package waitq

import "testing"

// Model states for the fuzz harness, mirroring the package's own.
const (
	mIdle = iota
	mQueued
	mToken // granted: exactly one token sits in the waiter's channel
)

// FuzzWaitqOps drives a Queue with an arbitrary op sequence against a
// model FIFO and verifies after every op that the queue's structure
// (Check), its length mirror, FIFO grant order, and token conservation
// — every grant delivers exactly one token, consumed exactly once —
// all hold. Op bytes decode to (op, waiter) pairs over a fixed pool of
// eight waiters; ops illegal for the waiter's current state are
// skipped, so every byte string is a valid schedule and the fuzzer's
// whole input space explores interleavings rather than tripping
// lifecycle panics (those are pinned separately in misuse_test.go).
func FuzzWaitqOps(f *testing.F) {
	f.Add([]byte{0, 5, 10, 15, 20})                              // push/grant mix
	f.Add([]byte{0, 1, 2, 3, 5, 9, 13, 17, 3, 3, 3})             // fill then drain
	f.Add([]byte{0, 4, 0, 4, 0, 4})                              // push/abandon churn
	f.Add([]byte{0, 1, 2, 10, 3, 4, 15, 0})                      // grant races abandon
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 18, 18, 18, 18, 18, 2}) // grantall storms
	f.Fuzz(func(t *testing.T, ops []byte) {
		const nw = 8
		var q Queue
		ws := make([]*Waiter, nw)
		for i := range ws {
			ws[i] = &Waiter{ready: make(chan struct{}, 1)}
		}
		state := make([]int, nw) // model per-waiter state
		var fifo []int           // model queue: waiter indices in FIFO order

		popModel := func(i int) { // remove waiter i from the model queue
			for j, v := range fifo {
				if v == i {
					fifo = append(fifo[:j], fifo[j+1:]...)
					return
				}
			}
			t.Fatalf("model queue lost waiter %d", i)
		}
		grantModel := func() { // model Grant: head becomes token-holder
			if len(fifo) == 0 {
				return
			}
			h := fifo[0]
			fifo = fifo[1:]
			state[h] = mToken
		}

		for _, b := range ops {
			w := int(b) % nw
			switch op := int(b) / nw % 5; op {
			case 0: // Push
				if state[w] != mIdle {
					continue
				}
				q.Push(ws[w])
				state[w] = mQueued
				fifo = append(fifo, w)
			case 1: // Grant
				got := q.Grant()
				if want := len(fifo) > 0; got != want {
					t.Fatalf("Grant = %v with %d queued", got, len(fifo))
				}
				grantModel()
			case 2: // GrantAll
				got := q.GrantAll()
				if got != len(fifo) {
					t.Fatalf("GrantAll woke %d, model has %d queued", got, len(fifo))
				}
				for len(fifo) > 0 {
					grantModel()
				}
			case 3: // Consume the token (the wakeup a parked waiter gets)
				if state[w] != mToken {
					continue
				}
				select {
				case <-ws[w].Ready():
				default:
					t.Fatalf("waiter %d granted but no token delivered", w)
				}
				state[w] = mIdle
			case 4: // Abandon (cancellation / acquired-while-queued)
				switch state[w] {
				case mQueued:
					if !q.Abandon(ws[w]) {
						t.Fatalf("Abandon of queued waiter %d reported a grant", w)
					}
					popModel(w)
					state[w] = mIdle
				case mToken:
					// Handoff: the token must be consumed and passed on.
					if q.Abandon(ws[w]) {
						t.Fatalf("Abandon of granted waiter %d reported a clean leave", w)
					}
					state[w] = mIdle
					grantModel()
				}
			}

			if err := q.Check(); err != nil {
				t.Fatal(err)
			}
			if got, want := q.Len(), len(fifo); got != want {
				t.Fatalf("Len = %d, model has %d", got, want)
			}
			// Token conservation: token-holders have exactly one token,
			// everyone else none.
			for i, st := range state {
				if n := len(ws[i].ready); (st == mToken) != (n == 1) {
					t.Fatalf("waiter %d state %d holds %d tokens", i, st, n)
				}
			}
		}

		// Drain: every wait must be endable, FIFO order preserved.
		for len(fifo) > 0 {
			h := fifo[0]
			if !q.Grant() {
				t.Fatal("Grant failed with queued waiters")
			}
			grantModel()
			select {
			case <-ws[h].Ready():
			default:
				t.Fatalf("FIFO head %d not granted", h)
			}
			state[h] = mIdle
		}
		for i, st := range state {
			if st == mToken {
				<-ws[i].Ready()
			}
		}
		if err := q.Check(); err != nil {
			t.Fatal(err)
		}
		if q.Len() != 0 {
			t.Fatalf("drained queue has Len %d", q.Len())
		}
	})
}
