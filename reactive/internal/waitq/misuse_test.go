package waitq

import "testing"

// The waiter-lifecycle panics guard the pool and FIFO against
// use-after-wait bugs in the primitives; their messages are pinned so a
// crash log identifies the violated rule exactly.
func TestWaiterMisusePanics(t *testing.T) {
	cases := []struct {
		name string
		want string
		f    func()
	}{
		{"put of queued waiter", "waitq: Put of a Waiter whose wait has not ended", func() {
			var q Queue
			w := Get()
			q.Push(w)
			defer func() { // leave the queue consistent for the pool
				recover()
				q.Abandon(w)
				Put(w)
				panic("waitq: Put of a Waiter whose wait has not ended")
			}()
			Put(w)
		}},
		{"re-push of queued waiter", "waitq: Push of a Waiter whose previous wait has not ended", func() {
			var q Queue
			w := Get()
			q.Push(w)
			defer func() {
				recover()
				q.Abandon(w)
				Put(w)
				panic("waitq: Push of a Waiter whose previous wait has not ended")
			}()
			q.Push(w)
		}},
		{"abandon of idle waiter", "waitq: Abandon of a Waiter that is not waiting", func() {
			var q Queue
			w := Get()
			defer Put(w)
			q.Abandon(w)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if got, ok := r.(string); !ok || got != tc.want {
					t.Fatalf("panicked with %v, want %q", r, tc.want)
				}
			}()
			tc.f()
		})
	}
}
