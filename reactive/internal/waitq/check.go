package waitq

import "fmt"

// Check walks the queue under its lock and verifies structural
// integrity: the doubly-linked list is well formed in both directions,
// every linked node is in the queued state with no token in flight, and
// the lock-free length mirror agrees with the walk. It returns the
// first violation found, or nil. Check is for tests and torture runs —
// it serializes against all queue operations, so it is cheap but not
// free; production paths never call it.
func (q *Queue) Check() error {
	q.acquire()
	defer q.release()
	var (
		walked int32
		prev   *Waiter
	)
	for w := q.head; w != nil; w = w.next {
		if w.prev != prev {
			return fmt.Errorf("waitq: node %d has prev %p, want %p", walked, w.prev, prev)
		}
		if w.state != stateQueued {
			return fmt.Errorf("waitq: linked node %d in state %d, want queued", walked, w.state)
		}
		if len(w.ready) != 0 {
			return fmt.Errorf("waitq: linked node %d holds an undelivered grant token", walked)
		}
		walked++
		if walked > 1<<20 {
			return fmt.Errorf("waitq: list walk exceeded 2^20 nodes (cycle?)")
		}
		prev = w
	}
	if q.tail != prev {
		return fmt.Errorf("waitq: tail is %p, want last walked node %p", q.tail, prev)
	}
	if n := q.n.Load(); n != walked {
		return fmt.Errorf("waitq: length mirror reads %d, walk found %d", n, walked)
	}
	return nil
}
