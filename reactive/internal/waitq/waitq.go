// Package waitq is the shared waiter-queue engine behind every phase-two
// (signaling) wait in package reactive. It grew out of the modal package's
// two-phase waiting helpers: modal.Poll is phase one everywhere, and this
// package is the one parking mechanism that replaced the three ad-hoc ones
// the primitives used to carry (Mutex's capacity-1 channel semaphore,
// RWMutex's reader condition variable, and RWMutex's writer-drain channel).
//
// The engine is an intrusive FIFO of per-goroutine wait nodes (Waiter)
// supporting handoff-or-abandon: a waiter that stops waiting — because its
// context was cancelled, or because it acquired the resource by polling
// while still enqueued — leaves through Queue.Abandon, which either unlinks
// the node (the wait was never granted) or, when a grant had already been
// delivered, consumes the grant token and passes the wakeup on to the next
// waiter. That pass-on rule is what makes cancellation safe against the
// classic lost-wakeup race (the x/sync/semaphore problem): a wakeup handed
// to a leaving waiter is never dropped while someone else still waits.
//
// Grants are wakeup hints, not ownership transfers: the primitives built on
// this package are barging (acquisition is always a CAS on the caller's own
// state word), so a spurious or stale grant costs a re-check, never
// correctness. The invariant callers must maintain is announce-then-check:
// Push the node, then re-test the awaited condition (or attempt the
// acquisition) before blocking on Ready, so a peer that changed the
// condition before observing the queue cannot strand the waiter.
//
// All queue state is guarded by a small randomized-backoff spin lock; the
// critical sections are a handful of pointer moves and one non-blocking
// channel send. Nodes are pooled (Get/Put), so steady-state parking
// allocates nothing.
package waitq

import (
	"sync"
	"sync/atomic"

	"repro/reactive/internal/chaos"
	"repro/reactive/modal"
)

// Waiter states, guarded by the owning queue's lock.
const (
	stateIdle    uint32 = iota // not linked; no grant pending
	stateQueued                // linked in a queue
	stateGranted               // unlinked by a grant; token in ready
)

// A Waiter is one goroutine's parked wait: an intrusive queue node plus the
// capacity-1 channel its grant token is delivered on. Waiters come from the
// package pool (Get/Put); a Waiter is owned by exactly one waiting
// goroutine at a time and may be re-Pushed (on the same or another Queue)
// once its previous wait has fully ended — token consumed, or Abandon
// returned.
type Waiter struct {
	next, prev *Waiter
	state      uint32
	// ready delivers the grant token. Capacity 1, and a token is sent only
	// by the grant that unlinks the node, so the send — performed under
	// the queue lock — can never block.
	ready chan struct{}
}

// Ready returns the channel the grant token arrives on. Receiving from it
// consumes the token; a waiter that instead stops waiting must leave via
// Queue.Abandon so a token it was already granted is passed on.
func (w *Waiter) Ready() <-chan struct{} { return w.ready }

var pool = sync.Pool{New: func() any { return &Waiter{ready: make(chan struct{}, 1)} }}

// Get returns a ready-to-Push Waiter from the package pool.
func Get() *Waiter { return pool.Get().(*Waiter) }

// Put returns w to the pool. The caller must have fully ended w's wait:
// a node with an unconsumed grant token would wake its next user spuriously
// at best and corrupt the FIFO at worst, so Put panics on one.
func Put(w *Waiter) {
	if w.state == stateQueued || len(w.ready) != 0 {
		panic("waitq: Put of a Waiter whose wait has not ended")
	}
	w.state = stateIdle
	pool.Put(w)
}

// A Queue is a FIFO of parked waiters. The zero value is an empty queue
// ready to use. A Queue must not be copied after first use.
type Queue struct {
	lock       atomic.Uint32 // spin lock guarding the list and waiter states
	head, tail *Waiter
	// n mirrors the list length so Len — the "any waiters?" fast check on
	// every unlock path — is one atomic load, never a lock acquisition.
	n atomic.Int32
}

func (q *Queue) acquire() {
	if q.lock.CompareAndSwap(0, 1) {
		return
	}
	var bo modal.Backoff
	bo.Max = 16
	for !q.lock.CompareAndSwap(0, 1) {
		bo.Pause()
	}
}

func (q *Queue) release() { q.lock.Store(0) }

// Len returns the number of queued waiters (parked or committing to park).
func (q *Queue) Len() int { return int(q.n.Load()) }

// Push appends w to the queue. The caller must then re-check the condition
// it is about to wait for (announce-then-check) before blocking on
// w.Ready, and must eventually end the wait by consuming the token or by
// calling Abandon.
func (q *Queue) Push(w *Waiter) {
	chaos.Point("waitq.push.enter")
	q.acquire()
	// stateGranted with an empty channel is a consumed grant — a normal
	// re-Push after a wakeup; only a still-queued node or an unconsumed
	// token marks a wait that has not ended.
	if w.state == stateQueued || len(w.ready) != 0 {
		q.release()
		panic("waitq: Push of a Waiter whose previous wait has not ended")
	}
	w.state = stateQueued
	w.prev = q.tail
	w.next = nil
	if q.tail == nil {
		q.head = w
	} else {
		q.tail.next = w
	}
	q.tail = w
	q.n.Add(1)
	q.release()
}

// unlink removes w from the list. Callers hold the lock and have checked
// w.state == stateQueued.
func (q *Queue) unlink(w *Waiter) {
	if w.prev == nil {
		q.head = w.next
	} else {
		w.prev.next = w.next
	}
	if w.next == nil {
		q.tail = w.prev
	} else {
		w.next.prev = w.prev
	}
	w.next, w.prev = nil, nil
	q.n.Add(-1)
}

// Grant wakes the oldest waiter: unlinks it and delivers its token, both
// under the queue lock, so by the time any later Abandon observes the
// granted state the token is already in the channel. It reports whether a
// waiter was woken; an empty queue is a no-op (wakeups are hints — a
// waiter yet to Push will re-check the condition after announcing).
func (q *Queue) Grant() bool {
	if q.n.Load() == 0 {
		return false
	}
	chaos.Point("waitq.grant.enter")
	q.acquire()
	w := q.head
	if w == nil {
		q.release()
		return false
	}
	q.unlink(w)
	w.state = stateGranted
	w.ready <- struct{}{}
	q.release()
	return true
}

// GrantAll wakes every queued waiter (the broadcast used by RWMutex's
// writer release) and returns how many it woke.
func (q *Queue) GrantAll() int {
	if q.n.Load() == 0 {
		return 0
	}
	q.acquire()
	woken := 0
	for w := q.head; w != nil; {
		next := w.next
		q.unlink(w)
		w.state = stateGranted
		w.ready <- struct{}{}
		woken++
		w = next
	}
	q.release()
	return woken
}

// Abandon ends w's wait from the waiter's side: the handoff-or-abandon
// step a waiter runs when it stops waiting for any reason other than
// consuming its token — context cancellation, or having acquired the
// awaited resource while still enqueued. If w is still queued it is
// unlinked and Abandon returns true (a clean abandon: no grant existed, so
// none can be lost). Otherwise a grant has already been delivered — the
// race the no-lost-wakeup proof in DESIGN.md §5 is about — and Abandon
// consumes the token and passes the wakeup on to the queue's next waiter,
// returning false. Either way w's wait has fully ended on return and w may
// be re-Pushed or Put back in the pool.
func (q *Queue) Abandon(w *Waiter) bool {
	chaos.Point("waitq.abandon.enter")
	q.acquire()
	switch w.state {
	case stateQueued:
		q.unlink(w)
		w.state = stateIdle
		q.release()
		return true
	case stateGranted:
		w.state = stateIdle
		q.release()
		// The token was sent under the lock before the granted state we
		// just observed was set, so this receive never blocks.
		<-w.ready
		q.Grant()
		return false
	}
	q.release()
	panic("waitq: Abandon of a Waiter that is not waiting")
}
