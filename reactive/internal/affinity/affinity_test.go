package affinity

import (
	"runtime"
	"sync"
	"testing"
)

func TestShardsCoversGOMAXPROCS(t *testing.T) {
	n := Shards()
	if n < 2 {
		t.Fatalf("Shards() = %d, want ≥ 2", n)
	}
	if n&(n-1) != 0 {
		t.Fatalf("Shards() = %d, want a power of two", n)
	}
	if n < runtime.GOMAXPROCS(0) {
		t.Fatalf("Shards() = %d < GOMAXPROCS = %d", n, runtime.GOMAXPROCS(0))
	}
	if n >= 4 && n/2 >= runtime.GOMAXPROCS(0) {
		t.Fatalf("Shards() = %d not the *next* power of two ≥ %d", n, runtime.GOMAXPROCS(0))
	}
}

func TestPinIndexInRangeWhenExact(t *testing.T) {
	idx := Pin()
	Unpin()
	if idx < 0 {
		t.Fatalf("Pin() = %d, want ≥ 0", idx)
	}
	if Exact && idx >= runtime.GOMAXPROCS(0) {
		t.Fatalf("exact Pin() = %d, want < GOMAXPROCS = %d", idx, runtime.GOMAXPROCS(0))
	}
}

// TestPinStableWhilePinned: with the exact implementation, the index
// cannot change between Pin and Unpin — preemption is disabled, so a
// nested Pin inside the pinned region must observe the same processor.
func TestPinStableWhilePinned(t *testing.T) {
	if !Exact {
		t.Skip("the stripe-hash fallback does not guarantee a stable index")
	}
	for i := 0; i < 1000; i++ {
		a := Pin()
		b := Pin() // nested: pins count, preemption stays disabled
		Unpin()
		Unpin()
		if a != b {
			t.Fatalf("index changed while pinned: %d then %d", a, b)
		}
	}
}

// TestPinConcurrent hammers Pin/Unpin from many goroutines; the masked
// index must stay in range for a Shards()-sized array throughout.
func TestPinConcurrent(t *testing.T) {
	mask := Shards() - 1
	var wg sync.WaitGroup
	for g := 0; g < 4*runtime.GOMAXPROCS(0); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				idx := Pin() & mask
				Unpin()
				if idx < 0 || idx > mask {
					t.Errorf("masked index %d out of [0,%d]", idx, mask)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPinAllocs pins the reason this package exists: selecting a shard
// index allocates nothing. (The fallback's first Get per P allocates a
// stripe; warm up before measuring.)
func TestPinAllocs(t *testing.T) {
	Pin()
	Unpin()
	if avg := testing.AllocsPerRun(1000, func() {
		Pin()
		Unpin()
	}); avg != 0 {
		t.Fatalf("Pin/Unpin allocates %v per op, want 0", avg)
	}
}
