//go:build purego || reactive_noprocpin

package affinity

import (
	"sync"
	"sync/atomic"
)

// Exact reports that Pin returns only a stripe-hash approximation of
// the current P (the portable fallback, not procPin).
const Exact = false

// stripe is a cached shard-index assignment. Stripes live in a
// sync.Pool, whose per-P caches give the index approximate processor
// affinity: a goroutine usually gets back a stripe last used on its
// current P, so shards behave like per-P slots in the common case.
type stripe struct{ idx uint32 }

var stripeSeq atomic.Uint32

var stripePool = sync.Pool{New: func() any {
	return &stripe{idx: stripeSeq.Add(1)}
}}

// Pin returns a shard index with approximate processor affinity. The
// fallback does not disable preemption; the Pin/Unpin contract is the
// same as the exact implementation's, only the collision guarantee is
// weaker (two Ps may transiently share an index).
func Pin() int {
	s := stripePool.Get().(*stripe)
	idx := int(s.idx)
	stripePool.Put(s)
	return idx
}

// Unpin is a no-op in the fallback implementation.
func Unpin() {}
