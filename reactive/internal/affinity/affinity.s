// Empty assembly file: its presence lets pin_runtime.go declare the
// bodyless linkname functions (the compiler requires an assembly file
// in any package that declares a function without a body).
