// Package affinity is the per-P shard-index substrate shared by the
// sharded protocols of package reactive (FetchOp/Counter cells, RWMutex
// reader slots).
//
// A sharded protocol scales only if concurrently-updating processors
// land on different shards. The Go runtime does not expose a processor
// id, but it does expose — to the standard library — the pin/unpin pair
// sync.Pool's per-P caches are built on: runtime.procPin disables
// preemption and returns the current P's index, runtime.procUnpin
// re-enables it. Pin/Unpin link against exactly that pair (the
// sync.runtime_procPin linkname the runtime pushes for package sync),
// so between Pin and Unpin the shard index is the *exact* current
// processor: two goroutines can collide on a shard only by genuinely
// sharing a P. The previous scheme — a sync.Pool of cached stripe
// indices — paid a pool Get/Put plus an interface assertion per
// operation and only approximated affinity through the pool's caches.
//
// Because Pin disables preemption, the code between Pin and Unpin must
// be short and must not block, park, or call arbitrary user code
// (blocking while pinned is a runtime fatal error). Callers that need
// to run user-supplied operations take the index while pinned, Unpin,
// and then operate on the chosen shard unpinned: the index degrades
// from "exact" to "exact at selection time", and the shard's own
// atomics absorb the rare migration race.
//
// The build tags purego and reactive_noprocpin select a portable
// fallback with the same API that degrades to the old stripe-hash
// scheme (a sync.Pool of cached indices), so the package builds on
// toolchains where the linkname is unavailable. Exact reports which
// implementation is in effect.
package affinity

import (
	"runtime"
	"sync/atomic"
)

// CacheLineSize is the coherence-granule separation the padded per-P
// structures built on this package assume. 128 bytes covers CPUs with
// 128-byte coherence granules (Apple silicon's 128-byte lines, POWER's
// and some ARM server cores' line pairs) as well as the common 64-byte
// case with a spatial-prefetcher guard line, so adjacent shards never
// false-share.
const CacheLineSize = 128

// Cell is one per-P shard: an accumulator word padded out to a full
// coherence granule so adjacent cells never false-share. Both sharded
// protocols in package reactive (FetchOp/Counter cells, RWMutex reader
// slots) use this one type, so the layout rule lives in one place.
type Cell struct {
	N atomic.Int64
	_ [CacheLineSize - 8]byte
}

// EpochCell is one per-P epoch-reader stamp: an online-delta count and
// the last global grace epoch a reader on this cell observed, padded
// out to one coherence granule so adjacent cells never false-share.
// Like Cell.N, Cnt holds deltas, not occupancies — a reader may
// deposit its +1 on one cell and its -1 on another after migrating —
// so only the sum across cells is meaningful. Seen is telemetry for
// the grace-period protocol: writers advance a global epoch and sweep
// the cells, and Seen records how far each cell's readers have
// observed that advance.
type EpochCell struct {
	Cnt  atomic.Int64
	Seen atomic.Uint64
	_    [CacheLineSize - 16]byte
}

// Shards returns the shard-array size the current process warrants: the
// next power of two ≥ GOMAXPROCS(0), and at least 2. Masking a Pin
// index by (Shards()-1) is collision-free while GOMAXPROCS does not
// grow after the array is built; if it does grow, distinct Ps may wrap
// onto shared shards — correct, merely less parallel.
func Shards() int {
	n := 2
	for n < runtime.GOMAXPROCS(0) {
		n *= 2
	}
	return n
}
