//go:build !purego && !reactive_noprocpin

package affinity

import (
	_ "unsafe" // for go:linkname
)

// The runtime pushes these symbols to package sync (see
// sync.runtime_procPin in runtime/proc.go); pulling a pushed linkname
// is permitted under the linker's -checklinkname default, so this is
// the same mechanism sync.Pool's per-P caches are built on.

//go:linkname runtime_procPin sync.runtime_procPin
//go:nosplit
func runtime_procPin() int

//go:linkname runtime_procUnpin sync.runtime_procUnpin
//go:nosplit
func runtime_procUnpin()

// Exact reports that Pin returns the exact current P index (the
// procPin implementation, not the stripe-hash fallback).
const Exact = true

// Pin disables preemption and returns the current P's index. Every Pin
// must be paired with an Unpin on the same goroutine, and the code
// between them must not block or call arbitrary user code.
func Pin() int { return runtime_procPin() }

// Unpin re-enables preemption after a Pin.
func Unpin() { runtime_procUnpin() }
