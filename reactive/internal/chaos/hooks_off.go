//go:build !reactive_chaos

package chaos

// Built reports whether this binary carries the fault-injection
// machinery. Without the reactive_chaos build tag the hooks below are
// empty functions: the compiler inlines them away and dead-codes their
// constant-string arguments, so an instrumented fast path costs exactly
// what an uninstrumented one does (pinned by the zero-allocation tests
// and the benchcmp gate).
const Built = false

// Point is a fault point: a no-op in this build.
func Point(id string) {}

// PinnedPoint is a fault point on a code path that may hold a procPin:
// a no-op in this build.
func PinnedPoint(id string) {}

// Enable installs a schedule. Without the reactive_chaos build tag the
// hooks are compiled out, so Enable reports false and injects nothing;
// callers (cmd/torture) surface that so a run without the tag is never
// mistaken for a chaos run.
func Enable(s *Schedule) bool { return false }

// Disable removes the active schedule; a no-op in this build.
func Disable() {}

// Stats reports per-point activity; always empty in this build.
func Stats() []PointStat { return nil }
