//go:build reactive_chaos

package chaos

import "testing"

// TestPointFiresOnSchedule exercises the live hooks: with a rule of
// period Every and phase Phase, exactly the congruent hits fire.
func TestPointFiresOnSchedule(t *testing.T) {
	defer Disable()
	s := &Schedule{Seed: 7, Rules: []Rule{
		{Point: "t.always", Op: OpSpin, Every: 1, Phase: 0, Arg: 8},
		{Point: "t.fourth", Op: OpYield, Every: 4, Phase: 1, Arg: 1},
	}}
	if !Enable(s) {
		t.Fatal("Enable reported false under reactive_chaos")
	}
	for i := 0; i < 16; i++ {
		Point("t.always")
		Point("t.fourth")
		Point("t.unknown") // not in the schedule: must be inert
	}
	stats := map[string]PointStat{}
	for _, ps := range Stats() {
		stats[ps.Point] = ps
	}
	if got := stats["t.always"]; got.Hits != 16 || got.Fired != 16 {
		t.Errorf("t.always: %+v, want 16 hits / 16 fired", got)
	}
	if got := stats["t.fourth"]; got.Hits != 16 || got.Fired != 4 {
		t.Errorf("t.fourth: %+v, want 16 hits / 4 fired", got)
	}
	if _, ok := stats["t.unknown"]; ok {
		t.Error("unknown point acquired stats")
	}
}

// TestPinnedPointDemotesToSpin: a pinned hook must never yield or
// sleep; the demotion path is exercised by firing sleep and yield rules
// through PinnedPoint. (Correct behavior here is "completes without a
// scheduler call" — not directly observable, but the run would crash
// under a real procPin if it parked, and the fired counters prove the
// demoted ops executed.)
func TestPinnedPointDemotesToSpin(t *testing.T) {
	defer Disable()
	Enable(&Schedule{Seed: 1, Rules: []Rule{
		{Point: "t.sleep", Op: OpSleep, Every: 1, Phase: 0, Arg: 50},
		{Point: "t.yield", Op: OpYield, Every: 1, Phase: 0, Arg: 4},
	}})
	for i := 0; i < 4; i++ {
		PinnedPoint("t.sleep")
		PinnedPoint("t.yield")
	}
	for _, ps := range Stats() {
		if ps.Fired != 4 {
			t.Errorf("%s: fired %d, want 4", ps.Point, ps.Fired)
		}
	}
}

// TestDisableQuiesces: after Disable, hooks are inert and Stats still
// reports the last schedule's counters.
func TestDisableQuiesces(t *testing.T) {
	Enable(&Schedule{Seed: 1, Rules: []Rule{{Point: "t.p", Op: OpSpin, Every: 1, Phase: 0, Arg: 1}}})
	Point("t.p")
	Disable()
	Point("t.p") // inert
	st := Stats()
	if len(st) != 1 || st[0].Hits != 1 {
		t.Fatalf("post-Disable stats = %+v, want the pre-Disable hit only", st)
	}
}
