// Package chaos is the deterministic fault-injection substrate behind
// the torture harness (internal/torture, cmd/torture). The primitives in
// package reactive are instrumented with named fault points —
// chaos.Point(id) and chaos.PinnedPoint(id) calls placed at exactly the
// proof-critical interleaving windows their correctness arguments reason
// about (the instant between a waitq announce and its state re-check,
// between a slot deposit and its gate validation, between a cell harvest
// and its fold into the base word, ...). By default the hooks are empty
// functions the compiler inlines away: a build without the
// reactive_chaos tag carries zero overhead, verified by the package's
// zero-allocation pins and the benchcmp gate.
//
// Under the reactive_chaos build tag the hooks consult an active
// Schedule: a pure function of a 64-bit seed mapping every cataloged
// point to an action (yield the processor, spin a bounded number of
// iterations, or sleep a bounded duration) fired on a deterministic
// subsequence of that point's hits. Two processes given the same seed
// build byte-identical schedules, so a torture failure is reproducible
// from its seed alone — the schedule (not the OS-level interleaving,
// which no userspace harness controls) is the deterministic object, and
// replaying it re-opens the same racy windows with the same bias.
//
// The catalog of instrumented points is a package-level table kept in
// lockstep with the source by a sync test that scans package reactive
// for hook calls, so a schedule always covers every window and the
// DESIGN.md point inventory cannot rot.
package chaos

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Instrumented point ids, grouped by layer. The const names exist so
// instrumentation sites and tests share one spelling; the catalog below
// is the canonical ordered list a Schedule is generated over.
const (
	// waitq: the announce/grant/abandon triangle of the
	// handoff-or-abandon proof (DESIGN.md §5).
	PtWaitqPush    = "waitq.push.enter"
	PtWaitqGrant   = "waitq.grant.enter"
	PtWaitqAbandon = "waitq.abandon.enter"

	// modal: the consensus window between reading the epoch-packed mode
	// word and the commit CAS.
	PtModalCommit = "modal.commit.window"

	// Mutex: a parked waiter's announce-to-recheck window, and the
	// unlock-to-grant window the no-lost-wakeup argument closes.
	PtMutexParkAnnounced = "mutex.park.announced"
	PtMutexUnlockRelease = "mutex.unlock.release"

	// RWMutex: the deposit/stamp-to-gate-validation windows of the
	// sharded and epoch registration proofs (DESIGN.md §4, §8), the
	// writer's claim-to-sweep window, and the three undo paths that
	// retract a claim.
	PtRWShardedDeposit = "rwmutex.sharded.deposit"
	PtRWShardedUndo    = "rwmutex.sharded.undo"
	PtRWEpochStamp     = "rwmutex.epoch.stamp"
	PtRWEpochOffline   = "rwmutex.epoch.offline"
	PtRWWriterClaimed  = "rwmutex.writer.claimed"
	PtRWDrainUndo      = "rwmutex.drain.undo"
	PtRWTryLockUndo    = "rwmutex.trylock.undo"
	PtRWUnlockRelease  = "rwmutex.unlock.release"

	// FetchOp: the combining deposit-to-threshold window, the
	// harvested-but-unfolded window the single sweepLock exists for, the
	// reconciling sweep itself, and the release-to-grant handoff.
	PtFopCombineDeposit = "fetchop.combine.deposit"
	PtFopFoldHarvest    = "fetchop.fold.harvest"
	PtFopValueSweep     = "fetchop.value.sweep"
	PtFopSweepRelease   = "fetchop.sweep.release"

	// Map: the three proof-critical windows of the epoch-mode republish
	// protocol — a mutation resting in the journal before it reaches any
	// table, the instant a new table version is published while readers
	// may still hold the old one, and the grace-period sweep that proves
	// the retired table reader-free before it is mutated in place.
	PtMapJournalDeposit = "map.journal.deposit"
	PtMapTablePublish   = "map.table.publish"
	PtMapGraceSweep     = "map.grace.sweep"
)

// catalog is the canonical ordered list of instrumented fault points. A
// Schedule derives one rule per entry, in this order, so schedule bytes
// are a pure function of the seed. Order is alphabetical for stability;
// the sync test enforces that the set matches the hook calls compiled
// into package reactive.
var catalog = func() []string {
	pts := []string{
		PtWaitqPush, PtWaitqGrant, PtWaitqAbandon,
		PtModalCommit,
		PtMutexParkAnnounced, PtMutexUnlockRelease,
		PtRWShardedDeposit, PtRWShardedUndo,
		PtRWEpochStamp, PtRWEpochOffline,
		PtRWWriterClaimed, PtRWDrainUndo, PtRWTryLockUndo, PtRWUnlockRelease,
		PtFopCombineDeposit, PtFopFoldHarvest, PtFopValueSweep, PtFopSweepRelease,
		PtMapJournalDeposit, PtMapTablePublish, PtMapGraceSweep,
	}
	sort.Strings(pts)
	return pts
}()

// Catalog returns the instrumented fault-point ids in canonical
// (sorted) order.
func Catalog() []string { return append([]string(nil), catalog...) }

// Fault-point ops. A rule's Op says what firing the point does; every
// op is bounded so no schedule can stall a run indefinitely.
const (
	// OpYield calls runtime.Gosched Arg times (1..maxYields): the
	// scheduler is invited to run somebody else inside the window.
	OpYield = "yield"
	// OpSpin busy-spins Arg iterations (1..maxSpin): the window is
	// widened without giving up the processor — the only op safe while
	// the caller holds a procPin (PinnedPoint demotes the others to it).
	OpSpin = "spin"
	// OpSleep sleeps Arg microseconds (1..maxSleepUs): the window is
	// held open across whole scheduler quanta, the bias that surfaces
	// lost-wakeup and stale-claim interleavings.
	OpSleep = "sleep"
)

// Bounds on rule parameters; NewSchedule stays inside them and Enable
// clamps loaded (replayed) schedules to them, so a hand-edited artifact
// cannot turn a fault point into a hang.
const (
	maxYields  = 8
	maxSpin    = 4096
	maxSleepUs = 200
	maxEvery   = 16
)

// A Rule maps one fault point to its action: fire Op(Arg) on every
// hit h (a per-point counter) with h % Every == Phase.
type Rule struct {
	Point string `json:"point"`
	Op    string `json:"op"`
	// Every and Phase select the deterministic subsequence of hits that
	// fire: hit indices congruent to Phase mod Every. Every=1 fires on
	// every hit.
	Every uint32 `json:"every"`
	Phase uint32 `json:"phase"`
	// Arg parameterizes the op: yields, spin iterations, or microseconds.
	Arg uint32 `json:"arg"`
}

// A Schedule is one deterministic fault assignment: a rule per cataloged
// point, derived from Seed by NewSchedule. Its JSON encoding is the
// repro-artifact payload cmd/torture emits and replays; two invocations
// of NewSchedule with one seed produce byte-identical encodings.
type Schedule struct {
	Seed  uint64 `json:"seed"`
	Rules []Rule `json:"rules"`
}

// splitmix64 is the seed-expansion PRNG (Vigna's SplitMix64): one
// self-contained step function, so schedule derivation depends on
// nothing but this file.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewSchedule derives the deterministic fault schedule for seed over
// points (normally Catalog(); torture cases pass it verbatim so the
// whole catalog is always covered). The derivation consumes the PRNG
// stream in point order, so the schedule is a pure function of
// (seed, points) — byte-identical across invocations and processes.
func NewSchedule(seed uint64, points []string) *Schedule {
	s := &Schedule{Seed: seed, Rules: make([]Rule, 0, len(points))}
	x := seed
	for _, p := range points {
		r := Rule{Point: p}
		switch splitmix64(&x) % 10 {
		case 0, 1, 2, 3: // 40%
			r.Op = OpYield
			r.Arg = 1 + uint32(splitmix64(&x)%maxYields)
		case 4, 5, 6: // 30%
			r.Op = OpSpin
			r.Arg = 64 + uint32(splitmix64(&x)%(maxSpin-64))
		default: // 30%
			r.Op = OpSleep
			r.Arg = 1 + uint32(splitmix64(&x)%maxSleepUs)
		}
		// Power-of-two firing periods up to maxEvery, with a random
		// phase so two points with the same period fire on different
		// hits.
		r.Every = 1 << (splitmix64(&x) % 5) // 1,2,4,8,16
		r.Phase = uint32(splitmix64(&x) % uint64(r.Every))
		s.Rules = append(s.Rules, r)
	}
	return s
}

// Encode renders the schedule as indented JSON — the canonical byte
// form the determinism guarantee is stated over.
func (s *Schedule) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// DecodeSchedule parses a schedule previously produced by Encode (or
// hand-edited: Enable clamps parameters back into bounds).
func DecodeSchedule(b []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("chaos: decoding schedule: %w", err)
	}
	// Clamp here as well as in Enable, so a decoded artifact is bounded
	// even when it is only carried around (re-encoded, diffed, logged)
	// rather than armed.
	for i := range s.Rules {
		s.Rules[i] = s.Rules[i].clamp()
	}
	return &s, nil
}

// clamp bounds one rule's parameters (replayed artifacts may have been
// hand-edited; injection must stay bounded).
func (r Rule) clamp() Rule {
	switch r.Op {
	case OpYield:
		if r.Arg < 1 {
			r.Arg = 1
		}
		if r.Arg > maxYields {
			r.Arg = maxYields
		}
	case OpSpin:
		if r.Arg < 1 {
			r.Arg = 1
		}
		if r.Arg > maxSpin {
			r.Arg = maxSpin
		}
	case OpSleep:
		if r.Arg < 1 {
			r.Arg = 1
		}
		if r.Arg > maxSleepUs {
			r.Arg = maxSleepUs
		}
	}
	if r.Every < 1 {
		r.Every = 1
	}
	if r.Every > maxEvery {
		r.Every = maxEvery
	}
	r.Phase %= r.Every
	return r
}

// PointStat is one fault point's activity under the currently (or most
// recently) enabled schedule.
type PointStat struct {
	Point string `json:"point"`
	Hits  uint64 `json:"hits"`
	Fired uint64 `json:"fired"`
}
