package chaos

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestScheduleDeterministic pins the repro-artifact guarantee: one seed,
// byte-identical schedules, across both repeated derivation and a
// JSON round trip.
func TestScheduleDeterministic(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0x9e3779b97f4a7c15, 1 << 63} {
		a := NewSchedule(seed, Catalog())
		b := NewSchedule(seed, Catalog())
		ab, err := a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("seed %#x: two derivations differ:\n%s\n----\n%s", seed, ab, bb)
		}
		dec, err := DecodeSchedule(ab)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := dec.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, rb) {
			t.Fatalf("seed %#x: JSON round trip not identity", seed)
		}
	}
}

func TestSchedulesDifferAcrossSeeds(t *testing.T) {
	a, _ := NewSchedule(1, Catalog()).Encode()
	b, _ := NewSchedule(2, Catalog()).Encode()
	if bytes.Equal(a, b) {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestScheduleWithinBounds: every generated rule respects the package
// bounds, and clamp is the identity on generated rules.
func TestScheduleWithinBounds(t *testing.T) {
	s := NewSchedule(42, Catalog())
	if len(s.Rules) != len(Catalog()) {
		t.Fatalf("%d rules for %d points", len(s.Rules), len(Catalog()))
	}
	for _, r := range s.Rules {
		if r != r.clamp() {
			t.Errorf("rule %+v not within bounds (clamp gives %+v)", r, r.clamp())
		}
		if r.Every < 1 || r.Every > maxEvery || r.Phase >= r.Every {
			t.Errorf("rule %+v: bad firing period", r)
		}
	}
}

func TestClampBoundsHandEditedRules(t *testing.T) {
	r := Rule{Point: "x", Op: OpSleep, Every: 0, Phase: 99, Arg: 1 << 30}.clamp()
	if r.Arg != maxSleepUs || r.Every != 1 || r.Phase != 0 {
		t.Fatalf("clamp left %+v out of bounds", r)
	}
	r = Rule{Point: "x", Op: OpSpin, Every: 1 << 20, Phase: 7, Arg: 0}.clamp()
	if r.Arg != 1 || r.Every != maxEvery || r.Phase != 7%maxEvery {
		t.Fatalf("clamp left %+v out of bounds", r)
	}
}

// hookCall matches chaos.Point("...") / chaos.PinnedPoint("...") calls
// in package reactive's sources.
var hookCall = regexp.MustCompile(`chaos\.(?:Pinned)?Point\("([^"]+)"\)`)

// TestCatalogMatchesInstrumentation keeps the catalog in lockstep with
// the hook calls actually compiled into the tree: every id used at an
// instrumentation site must be cataloged, and every cataloged id must
// appear at a site. The scan covers everything under reactive/ (the
// primitives, modal, waitq) — the only packages allowed to import this
// one.
func TestCatalogMatchesInstrumentation(t *testing.T) {
	root := filepath.FromSlash("../..") // reactive/
	used := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range hookCall.FindAllSubmatch(src, -1) {
			used[string(m[1])] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	cataloged := map[string]bool{}
	for _, id := range Catalog() {
		cataloged[id] = true
	}
	for id := range used {
		if !cataloged[id] {
			t.Errorf("instrumentation uses %q but the catalog does not list it", id)
		}
	}
	for id := range cataloged {
		if !used[id] {
			t.Errorf("catalog lists %q but no instrumentation site uses it", id)
		}
	}
	if len(used) == 0 {
		t.Fatal("no instrumentation sites found under reactive/ — scan broken?")
	}
}

func TestCatalogSortedAndUnique(t *testing.T) {
	c := Catalog()
	if !sort.StringsAreSorted(c) {
		t.Fatal("catalog not sorted")
	}
	for i := 1; i < len(c); i++ {
		if c[i] == c[i-1] {
			t.Fatalf("duplicate catalog entry %q", c[i])
		}
	}
}
