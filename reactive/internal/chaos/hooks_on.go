//go:build reactive_chaos

package chaos

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Built reports whether this binary carries the fault-injection
// machinery. This is the reactive_chaos build: hooks are live and
// consult the active schedule.
const Built = true

// rule is one compiled schedule entry: the immutable parameters plus
// the per-point hit counters.
type rule struct {
	op           string
	every, phase uint32
	arg          uint32

	hits  atomic.Uint64
	fired atomic.Uint64
}

// state is one enabled schedule. Swapped atomically as a unit so a
// Point racing Enable/Disable sees either the whole old schedule or the
// whole new one.
type state struct {
	rules map[string]*rule
	order []string // catalog order, for Stats
}

var active atomic.Pointer[state]

// Enable installs s as the active schedule (replacing any previous one)
// and reports true: from here every instrumented fast path consults its
// rule. Rules are clamped back into the package bounds so a replayed,
// possibly hand-edited artifact cannot inject an unbounded stall.
func Enable(s *Schedule) bool {
	st := &state{rules: make(map[string]*rule, len(s.Rules))}
	for _, r := range s.Rules {
		r = r.clamp()
		if _, dup := st.rules[r.Point]; dup {
			continue
		}
		st.rules[r.Point] = &rule{op: r.Op, every: r.Every, phase: r.Phase, arg: r.Arg}
		st.order = append(st.order, r.Point)
	}
	active.Store(st)
	return true
}

// Disable removes the active schedule; instrumented paths return to
// single-load no-ops. The last schedule's counters remain readable
// through Stats until the next Enable.
func Disable() { active.Store(nil) }

var lastStats atomic.Pointer[state]

// Point is a fault point: if the active schedule has a rule for id and
// this hit is on the rule's firing subsequence, the rule's op runs —
// a yield, a bounded spin, or a bounded sleep — holding the caller's
// racy window open. Unknown ids (a schedule narrower than the catalog)
// cost one map lookup.
func Point(id string) {
	st := active.Load()
	if st == nil {
		return
	}
	st.fire(id, false)
}

// PinnedPoint is a fault point on a code path that may hold a procPin
// (preemption disabled): yields and sleeps are demoted to bounded spins,
// the only injection legal in that state — Gosched or a timer park while
// pinned is a runtime fatal error.
func PinnedPoint(id string) {
	st := active.Load()
	if st == nil {
		return
	}
	st.fire(id, true)
}

// spinSink defeats dead-code elimination of the spin loop.
var spinSink atomic.Uint64

func (st *state) fire(id string, pinned bool) {
	r := st.rules[id]
	if r == nil {
		return
	}
	lastStats.Store(st)
	h := r.hits.Add(1) - 1
	if uint32(h%uint64(r.every)) != r.phase {
		return
	}
	r.fired.Add(1)
	op, arg := r.op, r.arg
	if pinned && op != OpSpin {
		// Demote to a spin of comparable weight: yields become short
		// spins, sleeps long ones.
		op = OpSpin
		if r.op == OpSleep {
			arg = maxSpin
		} else {
			arg = 256 * arg
		}
	}
	switch op {
	case OpYield:
		for i := uint32(0); i < arg; i++ {
			runtime.Gosched()
		}
	case OpSpin:
		var s uint64
		for i := uint32(0); i < arg; i++ {
			s += uint64(i)
		}
		spinSink.Add(s)
	case OpSleep:
		time.Sleep(time.Duration(arg) * time.Microsecond)
	}
}

// Stats reports per-point activity (hits and fired injections) for the
// active schedule — or, after Disable, for the last schedule that saw a
// hit — in the schedule's rule order. Torture runs attach it to repro
// artifacts so a reproduction can be checked against the original's
// injection profile.
func Stats() []PointStat {
	st := active.Load()
	if st == nil {
		st = lastStats.Load()
	}
	if st == nil {
		return nil
	}
	out := make([]PointStat, 0, len(st.order))
	for _, id := range st.order {
		r := st.rules[id]
		out = append(out, PointStat{Point: id, Hits: r.hits.Load(), Fired: r.fired.Load()})
	}
	return out
}
