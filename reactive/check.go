package reactive

import "fmt"

// This file is the runtime invariant layer: CheckInvariants methods
// verifying, at quiescence, the structural properties each primitive's
// correctness argument rests on. "At quiescence" means no goroutine is
// inside any method of the primitive — the checks read multi-word state
// without synchronizing against active fast paths, so a concurrent call
// can report transient states (a parked waiter mid-handoff, a harvested
// cell mid-fold) as violations. Tests and the torture harness
// (internal/torture) call them after their worker fleets join; they are
// diagnostic surface, not production code, and the fast paths never pay
// for them.

// CheckInvariants verifies the mutex's quiescent-state invariants: the
// lock is free, no waiter is queued, the waiter queue is structurally
// sound, and the modal engine's epoch agrees with its switch counter.
// It returns the first violation found, or nil.
func (m *Mutex) CheckInvariants() error {
	if s := m.state.Load(); s != unlocked {
		return fmt.Errorf("reactive: Mutex state %d at quiescence, want unlocked", s)
	}
	if n := m.q.Len(); n != 0 {
		return fmt.Errorf("reactive: Mutex has %d queued waiters at quiescence", n)
	}
	if err := m.q.Check(); err != nil {
		return fmt.Errorf("reactive: Mutex waiter queue: %w", err)
	}
	if err := m.eng.Check(spinParkTable); err != nil {
		return fmt.Errorf("reactive: Mutex engine: %w", err)
	}
	return nil
}

// CheckInvariants verifies the RWMutex's quiescent-state invariants:
// the embedded writer mutex is free and sound, no reader is registered
// in any of the three registration structures (central count zero,
// sharded slot deltas and epoch cell deltas both summing to zero), the
// epoch gate carries no writer claim and its mode bit agrees with the
// registration engine, and both waiter queues are empty and
// structurally sound. It returns the first violation found, or nil.
func (rw *RWMutex) CheckInvariants() error {
	if err := rw.w.CheckInvariants(); err != nil {
		return fmt.Errorf("reactive: RWMutex writer mutex: %w", err)
	}
	if r := rw.readerCount.Load(); r != 0 {
		return fmt.Errorf("reactive: RWMutex readerCount %d at quiescence, want 0", r)
	}
	// Raw delta sums, not slotSum/epochSum: those run under a writer
	// claim and treat a negative sum as caller misuse; here any nonzero
	// residue — positive or negative — is the violation.
	if rw.slotsUp.Load() {
		var sum int64
		for i := range rw.slots {
			sum += rw.slots[i].N.Load()
		}
		if sum != 0 {
			return fmt.Errorf("reactive: RWMutex sharded slot deltas sum to %d at quiescence, want 0", sum)
		}
	}
	g := rw.rgate.Load()
	if rw.ecellsUp.Load() {
		var sum int64
		for i := range rw.ecells {
			sum += rw.ecells[i].Cnt.Load()
		}
		if sum != 0 {
			return fmt.Errorf("reactive: RWMutex epoch cell deltas sum to %d at quiescence, want 0", sum)
		}
	}
	if g&rgClaim != 0 {
		return fmt.Errorf("reactive: RWMutex epoch gate carries a writer claim at quiescence (gate %#x)", uint64(g))
	}
	if gateEpoch, engEpoch := g&rgEpoch != 0, rw.reng.Mode() == rEpoch; gateEpoch != engEpoch {
		return fmt.Errorf("reactive: RWMutex epoch gate mode bit %v disagrees with registration mode %d", gateEpoch, rw.reng.Mode())
	}
	for _, q := range []struct {
		name string
		q    interface {
			Len() int
			Check() error
		}
	}{{"reader queue", &rw.rq}, {"writer-drain queue", &rw.wq}} {
		if n := q.q.Len(); n != 0 {
			return fmt.Errorf("reactive: RWMutex %s has %d waiters at quiescence", q.name, n)
		}
		if err := q.q.Check(); err != nil {
			return fmt.Errorf("reactive: RWMutex %s: %w", q.name, err)
		}
	}
	if err := rw.eng.Check(spinParkTable); err != nil {
		return fmt.Errorf("reactive: RWMutex wait engine: %w", err)
	}
	if err := rw.reng.Check(readerShardTable); err != nil {
		return fmt.Errorf("reactive: RWMutex registration engine: %w", err)
	}
	return nil
}

// CheckInvariants verifies the accumulator's quiescent-state
// invariants: the sweep lock is free, no reader is parked on the sweep
// window, and the modal engine's epoch agrees with its switch counter.
// (Cell contents are NOT required to be empty — deposits legitimately
// rest in cells until the next reconciling sweep; Value is the
// correctness check for them.) It returns the first violation found,
// or nil.
func (f *FetchOp) CheckInvariants() error {
	if l := f.sweepLock.Load(); l != 0 {
		return fmt.Errorf("reactive: FetchOp sweep lock held at quiescence")
	}
	if n := f.vq.Len(); n != 0 {
		return fmt.Errorf("reactive: FetchOp has %d sweep waiters at quiescence", n)
	}
	if err := f.vq.Check(); err != nil {
		return fmt.Errorf("reactive: FetchOp sweep queue: %w", err)
	}
	if err := f.eng.Check(fopTable); err != nil {
		return fmt.Errorf("reactive: FetchOp engine: %w", err)
	}
	if f.pending.Load() < 0 {
		return fmt.Errorf("reactive: FetchOp pending count %d, want >= 0", f.pending.Load())
	}
	return nil
}

// CheckInvariants verifies the counter's quiescent-state invariants;
// see FetchOp.CheckInvariants.
func (c *Counter) CheckInvariants() error { return c.f.CheckInvariants() }
