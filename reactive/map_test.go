package reactive

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/reactive/policy"
)

// --- construction and basic semantics --------------------------------

func TestMapZeroValue(t *testing.T) {
	var m Map[string, int]
	if got := m.Stats().Mode; got != ModeLocked {
		t.Fatalf("zero-value mode = %v, want locked", got)
	}
	if _, ok := m.Get("a"); ok {
		t.Fatal("Get on empty map reported a value")
	}
	m.Put("a", 1)
	m.Put("b", 2)
	m.Put("a", 3)
	if got := m.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if v, ok := m.Get("a"); !ok || v != 3 {
		t.Fatalf("Get(a) = %d,%v, want 3,true", v, ok)
	}
	m.Delete("a")
	m.Delete("missing") // no-op
	if got := m.Len(); got != 1 {
		t.Fatalf("Len after delete = %d, want 1", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMapForcedModesBasicOps(t *testing.T) {
	for _, mode := range []Mode{ModeLocked, ModeSharded, ModeEpoch} {
		t.Run(mode.String(), func(t *testing.T) {
			// The large empty limit pins the forced mode: uncontended
			// single-threaded use legitimately votes the chain down
			// otherwise (TestMapDemotesWhenUncontended).
			m := NewMap[int, string](WithInitialMode(mode), WithEmptyLimit(1<<20))
			if got := m.Stats().Mode; got != mode {
				t.Fatalf("mode = %v, want %v", got, mode)
			}
			const n = 200
			for i := 0; i < n; i++ {
				m.Put(i, fmt.Sprintf("v%d", i))
			}
			if got := m.Len(); got != n {
				t.Fatalf("Len = %d, want %d", got, n)
			}
			for i := 0; i < n; i++ {
				if v, ok := m.Get(i); !ok || v != fmt.Sprintf("v%d", i) {
					t.Fatalf("Get(%d) = %q,%v", i, v, ok)
				}
			}
			for i := 0; i < n; i += 2 {
				m.Delete(i)
			}
			if got := m.Len(); got != n/2 {
				t.Fatalf("Len after deletes = %d, want %d", got, n/2)
			}
			seen := 0
			m.Range(func(k int, v string) bool {
				if k%2 == 0 {
					t.Fatalf("Range yielded deleted key %d", k)
				}
				seen++
				return true
			})
			if seen != n/2 {
				t.Fatalf("Range yielded %d pairs, want %d", seen, n/2)
			}
			// Early stop.
			seen = 0
			m.Range(func(int, string) bool { seen++; return false })
			if seen != 1 {
				t.Fatalf("Range after false = %d calls, want 1", seen)
			}
			// The mode must not have moved during single-threaded use.
			if got := m.Stats().Mode; got != mode {
				t.Fatalf("mode drifted to %v during uncontended use", got)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMapDemotesWhenUncontended verifies the scale-down half of the
// adaptivity claim: a map forced into a scalable mode that never sees
// contention walks back down the chain on its own.
func TestMapDemotesWhenUncontended(t *testing.T) {
	m := NewMap[int, int](WithInitialMode(ModeSharded))
	m.Put(1, 1)
	for i := 0; i < 4*DefaultEmptyLimit && m.Stats().Mode != ModeLocked; i++ {
		m.Get(1)
	}
	if got := m.Stats().Mode; got != ModeLocked {
		t.Fatalf("mode = %v after uncontended use, want locked", got)
	}
	if v, ok := m.Get(1); !ok || v != 1 {
		t.Fatalf("Get(1) = %d,%v after demotion", v, ok)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMapRangeReentrant(t *testing.T) {
	m := NewMap[int, int](WithInitialMode(ModeEpoch), WithEmptyLimit(1<<20))
	for i := 0; i < 8; i++ {
		m.Put(i, i)
	}
	// Range snapshots first, so fn may call back into the map without
	// deadlocking — including mutating it.
	m.Range(func(k, v int) bool {
		if k%2 == 0 {
			m.Delete(k)
		}
		if _, ok := m.Get(k); k%2 == 0 && ok {
			t.Fatalf("key %d visible after delete inside Range", k)
		}
		return true
	})
	if got := m.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMapInitModePanics(t *testing.T) {
	for _, mode := range []Mode{ModeSpin, ModePark, ModeCAS, ModeCombining} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMap(WithInitialMode(%v)) did not panic", mode)
				}
			}()
			NewMap[int, int](WithInitialMode(mode))
		}()
	}
	// The new mode is rejected by the primitives that have no protocol
	// for it.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("New(WithInitialMode(ModeLocked)) did not panic")
			}
		}()
		New(WithInitialMode(ModeLocked))
	}()
}

func TestMapModeTextRoundTrip(t *testing.T) {
	b, err := ModeLocked.MarshalText()
	if err != nil || string(b) != "locked" {
		t.Fatalf("MarshalText = %q,%v", b, err)
	}
	var m Mode
	if err := m.UnmarshalText([]byte("locked")); err != nil || m != ModeLocked {
		t.Fatalf("UnmarshalText = %v,%v", m, err)
	}
}

// --- the three-mode chain, both directions ---------------------------

// TestMapChainWalkBothDirections drives the detection plumbing
// deterministically through the full chain — locked → sharded → epoch →
// sharded → locked — verifying after every transition that no key was
// lost or duplicated and the structural invariants hold.
func TestMapChainWalkBothDirections(t *testing.T) {
	m := NewMap[int, int]()
	// Pin against auto-demotion while the verify sweeps run; each
	// down-step below re-arms the empty limit explicitly.
	m.cfg.emptyLimit = 1 << 20
	const n = 100
	for i := 0; i < n; i++ {
		m.Put(i, i*7)
	}
	verify := func(want Mode) {
		t.Helper()
		if got := m.Stats().Mode; got != want {
			t.Fatalf("mode = %v, want %v", got, want)
		}
		if got := m.Len(); got != n {
			t.Fatalf("Len = %d, want %d", got, n)
		}
		for i := 0; i < n; i++ {
			if v, ok := m.Get(i); !ok || v != i*7 {
				t.Fatalf("Get(%d) = %d,%v after switch to %v", i, v, ok, want)
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("in %v: %v", want, err)
		}
	}

	// Up: contended locked acquisitions promote to sharded.
	for i := 0; i < DefaultSpinFailLimit; i++ {
		m.noteLocked(true)
	}
	verify(ModeSharded)

	// Up: contended sharded reads promote to epoch.
	for i := 0; i < DefaultSpinFailLimit; i++ {
		m.noteSharded(true, true)
	}
	verify(ModeEpoch)

	// Epoch writers see version numbers advance.
	v0 := m.MapStats().Version
	m.Put(n, 0)
	m.Delete(n)
	if v1 := m.MapStats().Version; v1 < v0+2 {
		t.Fatalf("version %d after two epoch writes from %d, want >= %d", v1, v0, v0+2)
	}

	// Down: a quiet grace period (a write with no concurrent readers)
	// demotes back to sharded on a hair-trigger empty limit.
	m.cfg.emptyLimit = 1
	m.Put(n, 0)
	m.cfg.emptyLimit = 1 << 20
	m.Delete(n) // runs sharded already; restores the key count
	verify(ModeSharded)
	ms := m.MapStats()
	if ms.Graces == 0 || ms.QuietGraces == 0 {
		t.Fatalf("grace counters %d/%d after epoch round trip, want both > 0", ms.Graces, ms.QuietGraces)
	}

	// Down: an uncontended sharded operation demotes to locked.
	m.cfg.emptyLimit = 1
	m.noteSharded(false, true)
	m.cfg.emptyLimit = 1 << 20
	verify(ModeLocked)

	if sw := m.Stats().Switches; sw != 4 {
		t.Fatalf("switch count = %d after full round trip, want 4", sw)
	}
}

// --- ctx variants ----------------------------------------------------

func TestMapGetCtxPutCtxCancel(t *testing.T) {
	// Locked mode: block the writer lock directly.
	m := NewMap[int, int](WithSpinFailLimit(1 << 20))
	m.Put(1, 1)
	m.wl.Lock()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, _, err := m.GetCtx(ctx, 1); err != context.DeadlineExceeded {
		t.Fatalf("GetCtx under held lock = %v, want DeadlineExceeded", err)
	}
	if err := m.PutCtx(ctx, 2, 2); err != context.DeadlineExceeded {
		t.Fatalf("PutCtx under held lock = %v, want DeadlineExceeded", err)
	}
	m.wl.Unlock()

	// The failed attempts must have left no residue.
	if _, ok := m.Get(2); ok {
		t.Fatal("cancelled PutCtx published its value")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Sharded mode: block one shard's spin word.
	s := NewMap[int, int](WithInitialMode(ModeSharded), WithSpinFailLimit(1<<20), WithEmptyLimit(1<<20))
	s.Put(1, 1)
	sh := &s.shards[s.shardIndex(1)]
	s.lockShard(&sh.lock, nil, nil)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	if _, _, err := s.GetCtx(ctx2, 1); err != context.DeadlineExceeded {
		t.Fatalf("sharded GetCtx under held shard = %v, want DeadlineExceeded", err)
	}
	s.unlockShard(&sh.lock)
	if _, _, err := s.GetCtx(context.Background(), 1); err != nil {
		t.Fatalf("GetCtx after release = %v", err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- epoch-mode read path --------------------------------------------

// TestMapEpochGetZeroAllocs pins the acceptance property of the epoch
// read path: a forced-epoch Get allocates nothing — it stamps a per-P
// cell, validates one gate word, and reads the published table.
func TestMapEpochGetZeroAllocs(t *testing.T) {
	m := NewMap[int, int](WithInitialMode(ModeEpoch))
	for i := 0; i < 64; i++ {
		m.Put(i, i)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := m.Get(7); !ok {
			t.Fatal("lost key")
		}
	}); allocs != 0 {
		t.Fatalf("epoch Get allocates %.1f objects/op, want 0", allocs)
	}
}

func TestMapEpochChurnStress(t *testing.T) {
	// Stay in epoch mode throughout: readers race writers that are
	// republishing the table, the interleaving the grace-period proof
	// is about. Values encode their key (v/1000 == k) so a torn or
	// reclaimed-too-early read is detectable, and the version gauge
	// must be monotone across the run.
	m := NewMap[int, int](WithInitialMode(ModeEpoch), WithEmptyLimit(1<<20))
	const keys = 32
	for k := 0; k < keys; k++ {
		m.Put(k, k*1000)
	}
	iters := 2000
	if testing.Short() {
		iters = 400
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (g*13 + i) % keys
				if v, ok := m.Get(k); ok && v/1000 != k {
					panic(fmt.Sprintf("Get(%d) returned %d: value from another key", k, v))
				}
			}
		}(g)
	}
	var lastVer uint64
	for i := 0; i < iters; i++ {
		k := i % keys
		m.Put(k, k*1000+i%1000)
		if i%64 == 0 {
			if ver := m.MapStats().Version; ver < lastVer {
				t.Fatalf("version went backward: %d -> %d", lastVer, ver)
			} else {
				lastVer = ver
			}
		}
	}
	close(stop)
	wg.Wait()
	if got := m.Stats().Mode; got != ModeEpoch {
		t.Fatalf("mode = %v, want epoch (emptyLimit should have pinned it)", got)
	}
	if ms := m.MapStats(); ms.Journal != 0 {
		t.Fatalf("journal depth %d at quiescence", ms.Journal)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- mixed-mode stress -----------------------------------------------

// TestMapStressModeFlips hammers the map with mixed operations while an
// always-switch policy and an explicit flipper goroutine force
// transitions along the whole chain, then verifies conservation: every
// worker owns a key range and tracks its own final model, and the map
// must agree exactly.
func TestMapStressModeFlips(t *testing.T) {
	m := NewMap[int, int](WithPolicy(policy.AlwaysSwitch{}))
	const workers = 8
	iters := 1500
	if testing.Short() {
		iters = 300
	}
	stop := make(chan struct{})
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Push upward; the always-switch policy demotes from epoch
			// on the first quiet grace, so the chain churns end to end.
			m.switchMap(mapLocked, mapSharded)
			m.switchMap(mapSharded, mapEpoch)
			time.Sleep(50 * time.Microsecond)
		}
	}()
	models := make([]map[int]int, workers)
	var wg sync.WaitGroup
	var reads atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			model := make(map[int]int)
			base := w * 1000
			for i := 0; i < iters; i++ {
				k := base + i%64
				switch i % 5 {
				case 0, 1, 2:
					v := w<<20 | i
					m.Put(k, v)
					model[k] = v
				case 3:
					m.Delete(k)
					delete(model, k)
				default:
					// Cross-worker read; value correctness is checked
					// against the owner's model after the join.
					if _, ok := m.Get((i * 37) % (workers * 1000)); ok {
						reads.Add(1)
					}
				}
			}
			models[w] = model
		}(w)
	}
	wg.Wait()
	close(stop)
	fwg.Wait()

	live := 0
	for w, model := range models {
		live += len(model)
		for k, want := range model {
			if v, ok := m.Get(k); !ok || v != want {
				t.Fatalf("worker %d key %d = %d,%v, want %d,true", w, k, v, ok, want)
			}
		}
	}
	if got := m.Len(); got != live {
		t.Fatalf("Len = %d, want %d live keys", got, live)
	}
	if sw := m.Stats().Switches; sw == 0 {
		t.Fatal("no mode switches during flip storm")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- stats -----------------------------------------------------------

func TestMapStatsShape(t *testing.T) {
	m := NewMap[string, int]()
	s := m.Stats()
	if s.Mode != ModeLocked || s.Switches != 0 || s.Waiters != 0 || s.Readers != nil {
		t.Fatalf("fresh Stats = %+v", s)
	}
	ms := m.MapStats()
	if ms.Shards != 0 || ms.Version != 0 || ms.Journal != 0 {
		t.Fatalf("fresh MapStats = %+v", ms)
	}
	e := NewMap[string, int](WithInitialMode(ModeEpoch))
	ems := e.MapStats()
	if ems.Shards == 0 {
		t.Fatal("forced-epoch map reports no shards (the sharded store is built en route)")
	}
	if ems.Version == 0 {
		t.Fatal("forced-epoch map reports version 0, want the initial publish counted")
	}
	if ems.Mode != ModeEpoch {
		t.Fatalf("forced-epoch MapStats mode = %v", ems.Mode)
	}
}
