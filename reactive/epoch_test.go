package reactive

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/reactive/modal"
)

// --- WithInitialReaderMode ------------------------------------------

func TestWithInitialReaderMode(t *testing.T) {
	for _, m := range []Mode{ModeCAS, ModeSharded, ModeEpoch} {
		rw := NewRWMutex(WithInitialReaderMode(m))
		if got := rw.Stats().Readers.Mode; got != m {
			t.Fatalf("reader mode = %v, want %v", got, m)
		}
		if got := rw.Stats().Mode; got != ModeSpin {
			t.Fatalf("wait mode = %v after registration-only option, want spin", got)
		}
		// The lock must work in the forced mode.
		rw.RLock()
		rw.RUnlock()
		rw.Lock()
		rw.Unlock()
	}

	// Composes with a wait-protocol WithInitialMode: each option
	// addresses its own engine.
	rw := NewRWMutex(WithInitialMode(ModePark), WithInitialReaderMode(ModeEpoch))
	if got := rw.Stats(); got.Mode != ModePark || got.Readers.Mode != ModeEpoch {
		t.Fatalf("Stats = %+v, want park wait + epoch registration", got)
	}

	// When both options name a registration mode, the reader-specific
	// option wins (it is the more specific request).
	rw = NewRWMutex(WithInitialMode(ModeSharded), WithInitialReaderMode(ModeEpoch))
	if got := rw.Stats().Readers.Mode; got != ModeEpoch {
		t.Fatalf("reader mode = %v, want epoch (reader-specific option wins)", got)
	}

	// WithInitialMode(ModeEpoch) reaches the same state through the
	// shared option.
	rw = NewRWMutex(WithInitialMode(ModeEpoch))
	if got := rw.Stats().Readers.Mode; got != ModeEpoch {
		t.Fatalf("reader mode = %v via WithInitialMode, want epoch", got)
	}

	// Forcing epoch and walking back down must leave a working lock:
	// the demotion path (quiet grace periods) is covered in
	// TestRWMutexEpochQuietGracesDemote.
}

func TestWithInitialReaderModeInvalid(t *testing.T) {
	for name, f := range map[string]func(){
		"spin":      func() { WithInitialReaderMode(ModeSpin) },
		"park":      func() { WithInitialReaderMode(ModePark) },
		"combining": func() { WithInitialReaderMode(ModeCombining) },
		"range":     func() { WithInitialReaderMode(Mode(99)) },
		// ModeEpoch is an RWMutex reader protocol only: the other
		// constructors must reject it like any mode outside their chain.
		"mutex-epoch":   func() { New(WithInitialMode(ModeEpoch)) },
		"counter-epoch": func() { NewCounter(WithInitialMode(ModeEpoch)) },
		"fetchop-epoch": func() { NewFetchOp(func(a, b int64) int64 { return a + b }, 0, WithInitialMode(ModeEpoch)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid mode did not panic", name)
				}
			}()
			f()
		}()
	}
}

// --- Epoch fast path ------------------------------------------------

func TestRWMutexReadEpochZeroAllocs(t *testing.T) {
	rw := NewRWMutex(WithInitialReaderMode(ModeEpoch))
	assertZeroAllocs(t, "RWMutex.RLock/epoch", func() {
		rw.RLock()
		rw.RUnlock()
	})
}

// TestRWMutexEpochParallelReaders: two readers hold the lock
// simultaneously under epoch registration.
func TestRWMutexEpochParallelReaders(t *testing.T) {
	rw := NewRWMutex(WithInitialReaderMode(ModeEpoch))
	rw.RLock()
	second := make(chan struct{})
	go func() {
		rw.RLock()
		close(second)
		rw.RUnlock()
	}()
	select {
	case <-second:
	case <-time.After(5 * time.Second):
		t.Fatal("second epoch reader blocked by first")
	}
	rw.RUnlock()
}

// TestRWMutexEpochTryLocks: TryLock must observe epoch readers via the
// cell sweep, and TryRLock must validate against the gate word.
func TestRWMutexEpochTryLocks(t *testing.T) {
	rw := NewRWMutex(WithInitialReaderMode(ModeEpoch))
	if !rw.TryRLock() {
		t.Fatal("TryRLock on free epoch RWMutex failed")
	}
	if rw.TryLock() {
		t.Fatal("TryLock with an active epoch reader succeeded")
	}
	rw.RUnlock()
	if !rw.TryLock() {
		t.Fatal("TryLock on free epoch RWMutex failed")
	}
	if rw.TryRLock() {
		t.Fatal("TryRLock on write-held epoch RWMutex succeeded")
	}
	rw.Unlock()
	// The failed TryLock above retracted its claim; readers must be
	// admitted again.
	rw.RLock()
	rw.RUnlock()
}

// TestRWMutexEpochExclusion re-runs the classic exclusion invariant
// with the registration protocol pinned to epoch stamps.
func TestRWMutexEpochExclusion(t *testing.T) {
	rw := NewRWMutex(WithInitialReaderMode(ModeEpoch))
	var readers, writers atomic.Int32
	var wg sync.WaitGroup
	iters := 1000
	if testing.Short() {
		iters = 300
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.Lock()
				if writers.Add(1) != 1 || readers.Load() != 0 {
					t.Error("writer overlapped a writer or reader")
				}
				runtime.Gosched()
				writers.Add(-1)
				rw.Unlock()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.RLock()
				readers.Add(1)
				if writers.Load() != 0 {
					t.Error("reader overlapped a writer")
				}
				runtime.Gosched()
				readers.Add(-1)
				rw.RUnlock()
			}
		}()
	}
	wg.Wait()
}

// --- Grace periods and detection ------------------------------------

// TestRWMutexEpochQuietGracesDemote pins the scale-down detection
// deterministically: every writer acquisition in epoch mode is one
// grace period, EmptyLimit consecutive quiet ones demote to sharded
// slots, and EmptyLimit further quiet drains retire the slots too — the
// chain has no shortcut edge, so the walk down passes through sharded.
func TestRWMutexEpochQuietGracesDemote(t *testing.T) {
	rw := NewRWMutex(WithInitialReaderMode(ModeEpoch))
	for i := 0; i < DefaultEmptyLimit; i++ {
		rw.Lock()
		rw.Unlock()
	}
	s := rw.Stats().Readers
	if s.Mode != ModeSharded {
		t.Fatalf("reader mode = %v after %d quiet grace periods, want sharded",
			s.Mode, DefaultEmptyLimit)
	}
	if s.Graces != uint64(DefaultEmptyLimit) || s.QuietGraces != uint64(DefaultEmptyLimit) {
		t.Fatalf("graces = %d/%d quiet, want %d/%d (only epoch-mode drains count)",
			s.Graces, s.QuietGraces, DefaultEmptyLimit, DefaultEmptyLimit)
	}
	for i := 0; i < DefaultEmptyLimit; i++ {
		rw.Lock()
		rw.Unlock()
	}
	s = rw.Stats().Readers
	if s.Mode != ModeCAS {
		t.Fatalf("reader mode = %v after quiet sharded drains, want cas", s.Mode)
	}
	if g := rw.Stats().Readers.Graces; g != uint64(DefaultEmptyLimit) {
		t.Fatalf("graces = %d after leaving epoch mode, want unchanged %d", g, DefaultEmptyLimit)
	}
	// Cells and slots stay built; reads still work.
	rw.RLock()
	rw.RUnlock()
}

// TestRWMutexEpochBusyGraceCounters: a grace period that had to wait
// for an online reader counts in Graces but not QuietGraces, and it
// breaks the quiet streak toward demotion.
func TestRWMutexEpochBusyGraceCounters(t *testing.T) {
	rw := NewRWMutex(WithInitialReaderMode(ModeEpoch))
	rw.RLock()
	acquired := make(chan struct{})
	go func() {
		rw.Lock()
		close(acquired)
		rw.Unlock()
	}()
	// Give the writer time to arrive and begin its grace period while
	// the reader is still online.
	time.Sleep(20 * time.Millisecond)
	rw.RUnlock()
	select {
	case <-acquired:
	case <-time.After(10 * time.Second):
		t.Fatal("writer never completed its grace period")
	}
	s := rw.Stats().Readers
	if s.Mode != ModeEpoch {
		t.Fatalf("reader mode = %v, want epoch (one busy grace must not demote)", s.Mode)
	}
	if s.Graces == 0 {
		t.Fatal("busy grace period not counted in Graces")
	}
	if s.QuietGraces != 0 {
		t.Fatalf("quiet graces = %d, want 0 (the reader was online)", s.QuietGraces)
	}
}

// TestRWMutexEpochPromotionFromSharded drives the up-edge end to end:
// SpinFailLimit consecutive writer drains that found sharded readers
// active promote the registration protocol to epoch stamps.
func TestRWMutexEpochPromotionFromSharded(t *testing.T) {
	rw := NewRWMutex(WithInitialReaderMode(ModeSharded))
	for i := 0; i < DefaultSpinFailLimit; i++ {
		rw.RLock()
		acquired := make(chan struct{})
		go func() {
			rw.Lock()
			close(acquired)
			rw.Unlock()
		}()
		time.Sleep(10 * time.Millisecond) // let the writer arrive while the reader is online
		rw.RUnlock()
		select {
		case <-acquired:
		case <-time.After(10 * time.Second):
			t.Fatal("writer stranded during busy drain")
		}
	}
	if got := rw.Stats().Readers.Mode; got != ModeEpoch {
		t.Fatalf("reader mode = %v after %d busy drains, want epoch", got, DefaultSpinFailLimit)
	}
	// The promoted protocol must serve readers and writers.
	rw.RLock()
	rw.RUnlock()
	rw.Lock()
	rw.Unlock()
}

// --- GOMAXPROCS=1 ----------------------------------------------------

// TestRWMutexEpochGOMAXPROCS1ChainWalk walks the full registration
// chain at GOMAXPROCS=1, where every pin resolves to the same cell and
// the writer's grace-period sweep shares the one processor with the
// readers it waits on — the sweep must yield (modal.Poll's contract)
// or this test deadlocks.
func TestRWMutexEpochGOMAXPROCS1ChainWalk(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	rw := NewRWMutex(WithInitialReaderMode(ModeEpoch))

	// A reader holds while a writer drains on one processor: completion
	// requires the drain to yield to the reader's release.
	release := make(chan struct{})
	held := make(chan struct{})
	go func() {
		rw.RLock()
		close(held)
		<-release
		rw.RUnlock()
	}()
	<-held
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	done := make(chan struct{})
	go func() {
		rw.Lock()
		rw.Unlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("grace-period sweep starved its reader at GOMAXPROCS=1")
	}

	// Walk down the chain with quiet drains, then back up by force;
	// every stop must serve reads.
	for rw.Stats().Readers.Mode != ModeCAS {
		rw.Lock()
		rw.Unlock()
	}
	rw.RLock()
	rw.RUnlock()
	rw.switchReaderMode(rCentral, rSharded)
	rw.RLock()
	rw.RUnlock()
	rw.switchReaderMode(rSharded, rEpoch)
	rw.RLock()
	rw.RUnlock()
	if got := rw.Stats().Readers.Mode; got != ModeEpoch {
		t.Fatalf("reader mode = %v after chain walk, want epoch", got)
	}
}

// --- Stress -----------------------------------------------------------

// TestRWMutexStressEpochChain is the race-detector stress test for the
// 3-mode registration chain: epoch readers race grace periods while a
// flipper forces the protocol around the full chain (central → sharded
// → epoch → sharded → central), with a timeout guard asserting nobody
// is stranded and exclusion counters asserting no reader ever overlaps
// a writer. Like the sharded stress test, every switch routes through
// switchReaderMode, whose writer exclusion is itself under test.
func TestRWMutexStressEpochChain(t *testing.T) {
	rw := NewRWMutex(WithPollIters(2)) // park quickly: exercise both wait phases
	const writers, readers = 4, 16
	iters := 300
	if testing.Short() {
		iters = 100
	}
	var inWriter, inReaders atomic.Int32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		walk := [][2]modal.Mode{
			{rCentral, rSharded},
			{rSharded, rEpoch},
			{rEpoch, rSharded},
			{rSharded, rCentral},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			step := walk[i%len(walk)]
			rw.switchReaderMode(step[0], step[1])
			time.Sleep(50 * time.Microsecond)
		}
	}()
	counter := 0
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.Lock()
				if inWriter.Add(1) != 1 || inReaders.Load() != 0 {
					t.Error("writer overlapped a writer or reader across a chain switch")
				}
				counter++
				inWriter.Add(-1)
				rw.Unlock()
			}
		}()
	}
	var reads atomic.Int64
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.RLock()
				inReaders.Add(1)
				if inWriter.Load() != 0 {
					t.Error("reader overlapped a writer across a chain switch")
				}
				reads.Add(1)
				inReaders.Add(-1)
				rw.RUnlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stranded waiter across chain switches: %d/%d writes, %d/%d reads",
			counter, writers*iters, reads.Load(), int64(readers*iters))
	}
	close(stop)
	fwg.Wait()
	if counter != writers*iters {
		t.Fatalf("writes = %d, want %d", counter, writers*iters)
	}
}
