package reactive

// Tests for context-aware acquisition: the already-cancelled fast paths,
// prompt cancellation in both wait protocols, the grant-vs-cancel handoff
// (no lost wakeups, no stranded waiters — including across forced spin↔park
// mode switches, with the timeout-guard pattern from sharding_test.go),
// the writer-drain undo, and the zero-allocation pins for the Ctx wrappers.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// cancelledCtx returns a context that is already done.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestAlreadyCancelledFastPath: every Ctx acquisition returns ctx.Err()
// immediately — without acquiring, even when the primitive is free.
func TestAlreadyCancelledFastPath(t *testing.T) {
	ctx := cancelledCtx()
	var m Mutex
	if err := m.LockCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Mutex.LockCtx(cancelled) = %v, want context.Canceled", err)
	}
	if !m.TryLock() {
		t.Fatal("cancelled LockCtx left the mutex held")
	}
	m.Unlock()

	var rw RWMutex
	if err := rw.LockCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RWMutex.LockCtx(cancelled) = %v, want context.Canceled", err)
	}
	if err := rw.RLockCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RWMutex.RLockCtx(cancelled) = %v, want context.Canceled", err)
	}
	if !rw.TryLock() {
		t.Fatal("cancelled LockCtx left the RWMutex claimed")
	}
	rw.Unlock()

	f := NewFetchOp(func(a, b int64) int64 { return a + b }, 0)
	if _, err := f.ValueCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("FetchOp.ValueCtx(cancelled) = %v, want context.Canceled", err)
	}
	var c Counter
	if _, err := c.LoadCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Counter.LoadCtx(cancelled) = %v, want context.Canceled", err)
	}
}

// TestLockCtxBackgroundEquivalentToLock: the Ctx variants with a
// background context acquire and release like the plain calls.
func TestLockCtxBackgroundEquivalentToLock(t *testing.T) {
	var m Mutex
	if err := m.LockCtx(context.Background()); err != nil {
		t.Fatalf("LockCtx(Background) = %v", err)
	}
	if m.TryLock() {
		t.Fatal("LockCtx did not hold the lock")
	}
	m.Unlock()

	var rw RWMutex
	if err := rw.RLockCtx(context.Background()); err != nil {
		t.Fatalf("RLockCtx(Background) = %v", err)
	}
	rw.RUnlock()
	if err := rw.LockCtx(context.Background()); err != nil {
		t.Fatalf("RWMutex.LockCtx(Background) = %v", err)
	}
	rw.Unlock()
}

// assertPromptErr runs attempt and fails unless it returns the wanted
// error well before the stranded-waiter guard fires.
func assertPromptErr(t *testing.T, name string, want error, attempt func() error) {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- attempt() }()
	select {
	case err := <-errc:
		if !errors.Is(err, want) {
			t.Fatalf("%s = %v, want %v", name, err, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("%s did not return after cancellation (stranded waiter?)", name)
	}
}

// TestLockCtxCancelBothModes: a cancelled LockCtx returns promptly while
// spinning and while parked, and the mutex stays fully usable afterward.
func TestLockCtxCancelBothModes(t *testing.T) {
	for _, mode := range []Mode{ModeSpin, ModePark} {
		m := New(WithInitialMode(mode), WithPollIters(2))
		m.Lock()
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond) // let the waiter spin or park
			cancel()
		}()
		assertPromptErr(t, "LockCtx/"+mode.String(), context.Canceled, func() error {
			return m.LockCtx(ctx)
		})
		m.Unlock()
		// No waiter may be stranded and the lock must still cycle.
		m.Lock()
		m.Unlock()
		if w := m.Stats().Waiters; w != 0 {
			t.Fatalf("Waiters = %d after cancelled %v-mode wait, want 0", w, mode)
		}
	}
}

// TestLockCtxDeadline: a deadline expiring mid-park surfaces as
// context.DeadlineExceeded.
func TestLockCtxDeadline(t *testing.T) {
	m := New(WithInitialMode(ModePark), WithPollIters(2))
	m.Lock()
	defer m.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	assertPromptErr(t, "LockCtx(deadline)", context.DeadlineExceeded, func() error {
		return m.LockCtx(ctx)
	})
}

func TestTryLockFor(t *testing.T) {
	var m Mutex
	if !m.TryLockFor(time.Millisecond) {
		t.Fatal("TryLockFor on a free mutex failed")
	}
	if m.TryLockFor(5 * time.Millisecond) {
		t.Fatal("TryLockFor on a held mutex succeeded")
	}
	if m.TryLockFor(0) {
		t.Fatal("TryLockFor(0) on a held mutex succeeded")
	}
	// A release during the wait window lets TryLockFor in.
	go func() {
		time.Sleep(5 * time.Millisecond)
		m.Unlock()
	}()
	if !m.TryLockFor(10 * time.Second) {
		t.Fatal("TryLockFor missed a release inside its window")
	}
	m.Unlock()
}

// TestLockCtxHandoffNotLost is the grant-vs-cancel race distilled: waiter
// A (cancellable) and waiter B (plain Lock) park behind a holder; the
// holder unlocks at the same moment A is cancelled. Whichever of the two
// events reaches A's grant first, B must end up with the lock — a grant
// delivered to the cancelled waiter has to be passed on, not dropped.
func TestLockCtxHandoffNotLost(t *testing.T) {
	rounds := 200
	if testing.Short() {
		rounds = 60
	}
	for i := 0; i < rounds; i++ {
		m := New(WithInitialMode(ModePark), WithPollIters(1))
		m.Lock()
		ctx, cancel := context.WithCancel(context.Background())
		aErr := make(chan error, 1)
		go func() { aErr <- m.LockCtx(ctx) }()
		bDone := make(chan struct{})
		go func() {
			m.Lock()
			m.Unlock()
			close(bDone)
		}()
		time.Sleep(200 * time.Microsecond) // let A and B park
		go cancel()
		m.Unlock()
		// Resolve A first: if A won the race and acquired before the
		// cancel landed, it holds the lock and must release it for B.
		select {
		case err := <-aErr:
			if err == nil {
				m.Unlock()
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: cancelled waiter A stranded", i)
		}
		select {
		case <-bDone:
		case <-time.After(10 * time.Second):
			t.Fatalf("round %d: waiter B stranded — a wakeup was lost to a cancelled waiter", i)
		}
		cancel()
	}
}

// TestMutexCancellationStress races LockCtx timeouts against Unlock
// handoffs and forced spin↔park mode switches: no lost wakeups, no
// stranded waiters, mutual exclusion intact. Run under -race in CI (and
// under the reactive_noprocpin fallback tag, which shares this file).
func TestMutexCancellationStress(t *testing.T) {
	m := New(WithPollIters(2)) // park quickly: exercise both wait phases
	const goroutines = 16
	iters := 300
	if testing.Short() {
		iters = 100
	}
	stop := make(chan struct{})
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				m.switchMode(ModeSpin, ModePark)
			} else {
				m.switchMode(ModePark, ModeSpin)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	var held atomic.Int32
	var acquired, abandoned atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if (i+g)%4 == 0 {
					// Cancellable attempt with a timeout short enough to
					// expire mid-wait under contention.
					d := time.Duration(i%3) * 100 * time.Microsecond
					ctx, cancel := context.WithTimeout(context.Background(), d)
					err := m.LockCtx(ctx)
					cancel()
					if err != nil {
						abandoned.Add(1)
						continue
					}
				} else {
					m.Lock()
				}
				if held.Add(1) != 1 {
					t.Error("mutual exclusion violated under cancellation churn")
				}
				held.Add(-1)
				m.Unlock()
				acquired.Add(1)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stranded waiter under cancellation churn: %d acquired, %d abandoned",
			acquired.Load(), abandoned.Load())
	}
	close(stop)
	fwg.Wait()
	m.Lock()
	m.Unlock()
	if w := m.Stats().Waiters; w != 0 {
		t.Fatalf("Waiters = %d after stress, want 0", w)
	}
}

// TestRWMutexCancellationStress is the RWMutex version: RLockCtx and
// LockCtx timeouts race writer drains, reader broadcasts, and forced
// switches of BOTH modal objects (wait protocol and registration
// protocol).
func TestRWMutexCancellationStress(t *testing.T) {
	rw := NewRWMutex(WithPollIters(2))
	const writers, readers = 4, 12
	iters := 200
	if testing.Short() {
		iters = 80
	}
	stop := make(chan struct{})
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				rw.switchRWMode(ModeSpin, ModePark)
			case 1:
				rw.switchReaderMode(rCentral, rSharded)
			case 2:
				rw.switchRWMode(ModePark, ModeSpin)
			default:
				rw.switchReaderMode(rSharded, rCentral)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	var inWriter, inReaders atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if (i+g)%3 == 0 {
					d := time.Duration(i%3) * 100 * time.Microsecond
					ctx, cancel := context.WithTimeout(context.Background(), d)
					err := rw.LockCtx(ctx)
					cancel()
					if err != nil {
						continue
					}
				} else {
					rw.Lock()
				}
				if inWriter.Add(1) != 1 || inReaders.Load() != 0 {
					t.Error("writer overlapped a writer or reader under cancellation churn")
				}
				inWriter.Add(-1)
				rw.Unlock()
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if (i+g)%3 == 0 {
					d := time.Duration(i%3) * 100 * time.Microsecond
					ctx, cancel := context.WithTimeout(context.Background(), d)
					err := rw.RLockCtx(ctx)
					cancel()
					if err != nil {
						continue
					}
				} else {
					rw.RLock()
				}
				inReaders.Add(1)
				if inWriter.Load() != 0 {
					t.Error("reader overlapped a writer under cancellation churn")
				}
				inReaders.Add(-1)
				rw.RUnlock()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stranded reader or writer under cancellation churn")
	}
	close(stop)
	fwg.Wait()
	rw.Lock()
	rw.Unlock()
	rw.RLock()
	rw.RUnlock()
}

// TestRLockCtxCancelledInRegistrationRaces pins the slow-path check
// placement: a reader whose context is already done when it enters the
// slow path returns ctx.Err() on the first iteration even with no writer
// claim in place — the registration-race retry paths (reader-reader CAS
// losses, protocol-change redispatches) must not starve the cancellation
// check.
func TestRLockCtxCancelledInRegistrationRaces(t *testing.T) {
	var rw RWMutex
	ctx := cancelledCtx()
	if err := rw.rlockSlow(ctx, ctx.Done()); !errors.Is(err, context.Canceled) {
		t.Fatalf("rlockSlow(cancelled, no writer) = %v, want context.Canceled", err)
	}
	// No registration may have leaked.
	rw.Lock()
	rw.Unlock()
}

// TestRWMutexLockCtxCancelDuringDrain: a writer cancelled while draining
// an active reader retracts its claim — later readers proceed at once,
// and the next writer acquires cleanly after the reader leaves.
func TestRWMutexLockCtxCancelDuringDrain(t *testing.T) {
	for _, mode := range []Mode{ModeCAS, ModeSharded} {
		rw := NewRWMutex(WithInitialMode(mode), WithPollIters(2))
		rw.RLock() // the reader the writer will stall draining
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond) // let the writer park in its drain
			cancel()
		}()
		assertPromptErr(t, "LockCtx(drain)/"+mode.String(), context.Canceled, func() error {
			return rw.LockCtx(ctx)
		})
		// Claim retracted: a new reader must not block behind the
		// cancelled writer.
		extra := make(chan struct{})
		go func() {
			rw.RLock()
			rw.RUnlock()
			close(extra)
		}()
		select {
		case <-extra:
		case <-time.After(10 * time.Second):
			t.Fatalf("%v: reader blocked by a cancelled writer's leftover claim", mode)
		}
		rw.RUnlock()
		rw.Lock() // and writing still works once the reader is gone
		rw.Unlock()
	}
}

// TestRWMutexRLockCtxCancelWhileParked: a parked reader cancelled under a
// writer hold returns promptly and leaves no residue; readers parked
// without cancellation still wake on the writer's release.
func TestRWMutexRLockCtxCancelWhileParked(t *testing.T) {
	rw := NewRWMutex(WithInitialMode(ModePark), WithPollIters(1))
	rw.Lock()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	assertPromptErr(t, "RLockCtx(parked)", context.Canceled, func() error {
		return rw.RLockCtx(ctx)
	})
	// A second, uncancelled reader must still be woken by the release.
	got := make(chan struct{})
	go func() {
		rw.RLock()
		rw.RUnlock()
		close(got)
	}()
	time.Sleep(5 * time.Millisecond) // let it park behind the hold
	rw.Unlock()
	select {
	case <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("reader stranded after a sibling's cancellation")
	}
}

// TestValueCtxCancelDuringSweep: a ValueCtx waiting for a held sweep
// window gives up with ctx.Err(); the window still works once released.
func TestValueCtxCancelDuringSweep(t *testing.T) {
	f := NewFetchOp(func(a, b int64) int64 { return a + b }, 0,
		WithInitialMode(ModeSharded), WithPollIters(2))
	f.Apply(41)
	f.Apply(1)
	if err := f.acquireSweep(nil, nil); err != nil { // hold the sweep window
		t.Fatalf("acquireSweep = %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	assertPromptErr(t, "ValueCtx(held sweep)", context.DeadlineExceeded, func() error {
		_, err := f.ValueCtx(ctx)
		return err
	})
	f.releaseSweep()
	v, err := f.ValueCtx(context.Background())
	if err != nil || v != 42 {
		t.Fatalf("ValueCtx after release = (%d, %v), want (42, nil)", v, err)
	}
	if w := f.Stats().Waiters; w != 0 {
		t.Fatalf("Waiters = %d after cancelled sweep wait, want 0", w)
	}
}

// TestCtxZeroAllocs pins the wrapper costs: uncontended Lock and
// LockCtx(Background) — and their RWMutex read analogues — allocate
// nothing, so the context-aware redesign is free for existing callers.
func TestCtxZeroAllocs(t *testing.T) {
	ctx := context.Background()
	var m Mutex
	assertZeroAllocs(t, "Mutex.Lock/uncontended", func() {
		m.Lock()
		m.Unlock()
	})
	var mc Mutex
	assertZeroAllocs(t, "Mutex.LockCtx/background-uncontended", func() {
		if mc.LockCtx(ctx) != nil {
			t.Fatal("LockCtx failed")
		}
		mc.Unlock()
	})
	var rw RWMutex
	assertZeroAllocs(t, "RWMutex.RLockCtx/background-uncontended", func() {
		if rw.RLockCtx(ctx) != nil {
			t.Fatal("RLockCtx failed")
		}
		rw.RUnlock()
	})
}
