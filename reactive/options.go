package reactive

import "repro/reactive/policy"

// config carries the tunables shared by every adaptive primitive in this
// package. The zero value means "use the package defaults", so
// zero-value primitives and primitives built by the constructors with no
// options behave identically.
type config struct {
	spinFailLimit int32
	emptyLimit    int32
	pollIters     int32
	pol           policy.Policy
	initMode      Mode
	initModeSet   bool
	initRMode     Mode
	initRModeSet  bool
}

// An Option configures an adaptive primitive built by New, NewCounter,
// NewRWMutex, or NewFetchOp. Options not meaningful for a primitive are
// accepted and ignored (e.g. WithPollIters on a Counter), so one option
// slice can configure a family of primitives uniformly.
type Option func(*config)

// WithSpinFailLimit sets how many consecutive scale-up observations —
// contended acquisitions for Mutex and RWMutex, contended CAS updates
// (and wide-fan-in reconciliations) for Counter and FetchOp — the
// built-in detection tolerates before switching to the next, more
// scalable protocol. n must be positive. Default: DefaultSpinFailLimit.
// Ignored when WithPolicy installs an explicit switching policy.
func WithSpinFailLimit(n int) Option {
	if n <= 0 {
		panic("reactive: WithSpinFailLimit requires n > 0")
	}
	return func(c *config) { c.spinFailLimit = int32(n) }
}

// WithEmptyLimit sets how many consecutive scale-down observations —
// uncontended releases for Mutex and RWMutex, single-writer
// reconciliations or idle combining sweeps for Counter and FetchOp —
// the built-in detection tolerates before switching back to the next,
// cheaper protocol. n must be positive. Default: DefaultEmptyLimit.
// Ignored when WithPolicy installs an explicit switching policy.
func WithEmptyLimit(n int) Option {
	if n <= 0 {
		panic("reactive: WithEmptyLimit requires n > 0")
	}
	return func(c *config) { c.emptyLimit = int32(n) }
}

// WithPollIters sets the two-phase polling budget, in spin iterations,
// that a waiter spends polling before parking (Lpoll expressed in
// iterations). n must be positive. Default: DefaultPollIters. Used by
// Mutex (park-mode lockers), RWMutex (readers and writers), and Counter
// and FetchOp (reconciling reads waiting for the sweep window). The
// budget is deadline-aware: a waiter whose context ends mid-poll stops
// consuming it immediately, so a short Lpoll and a short deadline
// compose instead of competing.
func WithPollIters(n int) Option {
	if n <= 0 {
		panic("reactive: WithPollIters requires n > 0")
	}
	return func(c *config) { c.pollIters = int32(n) }
}

// WithPolicy installs an explicit protocol-switching policy from the
// reactive/policy package (3-competitive, hysteresis, weighted-average,
// always-switch), replacing the built-in streak detection that
// WithSpinFailLimit and WithEmptyLimit parameterize. The primitive
// serializes all calls into p; p must not be shared with any other
// primitive or goroutine. A nil p restores the built-in detection.
//
// Detection events are mapped onto the policy as in the simulator's
// reactive algorithms: direction 0 is cheap→scalable (contention
// appeared), direction 1 is scalable→cheap (contention disappeared), and
// the residual costs are ResidualCheapHigh and ResidualScalableLow —
// the per-edge Dir/Residual values of the primitive's reactive/modal
// transition table.
func WithPolicy(p policy.Policy) Option {
	return func(c *config) { c.pol = p }
}

// WithInitialMode starts a primitive in mode m instead of its cheapest
// protocol, walking the transition chain at construction time (when no
// concurrent use exists yet). A workload that is known to arrive
// already contended can skip the detection ramp — the reactive
// framework's static protocols are exactly its baselines — and
// benchmark harnesses can measure a specific protocol's fast path
// regardless of whether the host's parallelism would trigger detection.
// The primitive stays fully adaptive afterward: detection may move it
// away from m (pair with WithPolicy to bias how readily).
//
// Valid modes per constructor: New accepts ModeSpin and ModePark;
// NewCounter and NewFetchOp accept ModeCAS, ModeSharded, and
// ModeCombining; NewRWMutex accepts ModeSpin/ModePark (the reader wait
// protocol) or ModeCAS/ModeSharded/ModeEpoch (the reader registration
// protocol) — the two mode spaces are disjoint, so one option
// configures either engine; NewMap accepts ModeLocked, ModeSharded,
// and ModeEpoch. The constructor panics on a mode the primitive has no
// protocol for.
func WithInitialMode(m Mode) Option {
	if m > ModeLocked {
		panic("reactive: WithInitialMode requires a valid Mode")
	}
	return func(c *config) { c.initMode = m; c.initModeSet = true }
}

// WithInitialReaderMode starts NewRWMutex's reader registration
// protocol in mode m — ModeCAS (the centralized word), ModeSharded
// (per-P slots), or ModeEpoch (per-P epoch stamps) — walking the
// registration chain at construction time, exactly as WithInitialMode
// does for the primary engine. Unlike WithInitialMode it addresses the
// registration engine specifically, so it composes with a
// WithInitialMode(ModeSpin/ModePark) wait-protocol choice, and it lets
// benchmarks and small-GOMAXPROCS hosts pin any of the three reader
// protocols regardless of whether the host's parallelism would trigger
// detection. The lock stays fully adaptive afterward. Panics unless m
// is one of the three registration modes; constructors other than
// NewRWMutex accept and ignore the option.
func WithInitialReaderMode(m Mode) Option {
	switch m {
	case ModeCAS, ModeSharded, ModeEpoch:
	default:
		panic("reactive: WithInitialReaderMode requires ModeCAS, ModeSharded, or ModeEpoch")
	}
	return func(c *config) { c.initRMode = m; c.initRModeSet = true }
}

// apply folds opts into a config.
func (c *config) apply(opts []Option) {
	for _, o := range opts {
		o(c)
	}
}

// Residual costs fed to injected policies (policy.Policy.Suboptimal), in
// the same abstract units the simulator uses (Section 3.5.5): serving a
// request with the cheap protocol under high contention wastes about ten
// times what serving one with the scalable protocol under no contention
// does. A 3-competitive policy's threshold should be calibrated against
// these units.
const (
	// ResidualCheapHigh is the residual cost charged when the cheap
	// protocol (spin / single-word CAS) serves a contended request.
	ResidualCheapHigh uint64 = 150
	// ResidualScalableLow is the residual cost charged when the scalable
	// protocol (parking / sharded cells) serves an uncontended request.
	ResidualScalableLow uint64 = 15
)
