package reactive

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/reactive/policy"
)

// TestRWMutexOptionsReachWriterMutex: threshold and polling options
// configure the embedded writer mutex too; an injected policy does not
// (policy instances must not be shared between primitives).
func TestRWMutexOptionsReachWriterMutex(t *testing.T) {
	rw := NewRWMutex(WithSpinFailLimit(7), WithEmptyLimit(9), WithPollIters(11),
		WithPolicy(policy.AlwaysSwitch{}))
	if rw.w.cfg.failLimit() != 7 || rw.w.cfg.emptyLim() != 9 || rw.w.cfg.pollBudget() != 11 {
		t.Fatalf("writer mutex tunables = (%d,%d,%d), want (7,9,11)",
			rw.w.cfg.failLimit(), rw.w.cfg.emptyLim(), rw.w.cfg.pollBudget())
	}
	if rw.w.cfg.pol != nil || rw.w.eng.Policy() != nil {
		t.Fatal("policy instance must not propagate to the embedded writer mutex")
	}
	if rw.eng.Policy() == nil {
		t.Fatal("policy not installed on the reader protocol")
	}
}

func TestRWMutexZeroValue(t *testing.T) {
	var rw RWMutex
	rw.Lock()
	rw.Unlock()
	rw.RLock()
	rw.RUnlock()
	if st := rw.Stats(); st.Mode != ModeSpin || st.Switches != 0 {
		t.Fatalf("Stats = %+v, want spin mode, 0 switches", st)
	}
}

func TestRWMutexTryLocks(t *testing.T) {
	var rw RWMutex
	if !rw.TryLock() {
		t.Fatal("TryLock on free RWMutex failed")
	}
	if rw.TryLock() {
		t.Fatal("TryLock on write-held RWMutex succeeded")
	}
	if rw.TryRLock() {
		t.Fatal("TryRLock on write-held RWMutex succeeded")
	}
	rw.Unlock()
	if !rw.TryRLock() {
		t.Fatal("TryRLock on free RWMutex failed")
	}
	if !rw.TryRLock() {
		t.Fatal("second concurrent TryRLock failed")
	}
	if rw.TryLock() {
		t.Fatal("TryLock with active readers succeeded")
	}
	rw.RUnlock()
	rw.RUnlock()
}

func TestRWMutexPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Unlock":  func() { var rw RWMutex; rw.Unlock() },
		"RUnlock": func() { var rw RWMutex; rw.RUnlock() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s of unlocked RWMutex did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestRWMutexExclusion: writers exclude writers and readers; readers
// admit each other. The classic invariant check, run with -race in CI.
func TestRWMutexExclusion(t *testing.T) {
	var rw RWMutex
	var readers, writers atomic.Int32
	var wg sync.WaitGroup
	iters := 1000
	if testing.Short() {
		iters = 300
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.Lock()
				if writers.Add(1) != 1 || readers.Load() != 0 {
					t.Error("writer overlapped a writer or reader")
				}
				runtime.Gosched()
				writers.Add(-1)
				rw.Unlock()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.RLock()
				readers.Add(1)
				if writers.Load() != 0 {
					t.Error("reader overlapped a writer")
				}
				runtime.Gosched()
				readers.Add(-1)
				rw.RUnlock()
			}
		}()
	}
	wg.Wait()
}

// TestRWMutexParallelReaders: two readers hold the lock simultaneously.
func TestRWMutexParallelReaders(t *testing.T) {
	var rw RWMutex
	rw.RLock()
	second := make(chan struct{})
	go func() {
		rw.RLock()
		close(second)
		rw.RUnlock()
	}()
	select {
	case <-second:
	case <-time.After(5 * time.Second):
		t.Fatal("second reader blocked by first")
	}
	rw.RUnlock()
}

// TestRWMutexSwitchesToParkOnLongWrites: a writer hold longer than the
// readers' polling budget drives the reader protocol to parking.
func TestRWMutexSwitchesToParkOnLongWrites(t *testing.T) {
	rw := NewRWMutex(WithSpinFailLimit(1), WithPollIters(1))
	rw.Lock()
	acquired := make(chan struct{})
	go func() {
		rw.RLock()
		rw.RUnlock()
		close(acquired)
	}()
	// Hold long enough that the reader's spin certainly exceeds its
	// one-iteration budget.
	time.Sleep(50 * time.Millisecond)
	rw.Unlock()
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("reader never acquired after writer release")
	}
	if got := rw.Stats().Mode; got != ModePark {
		t.Fatalf("mode = %v after over-budget reader wait, want park", got)
	}
}

// TestRWMutexWaitStreakSemantics pins the reader detection semantics: the
// over-budget streak counts slow-path waits only. Fast-path reads are
// neutral (the spin-vs-park choice depends on waiting time *when readers
// wait*, not on collision frequency — so a read-mostly workload can still
// reach park mode), while a slow-path wait completed within the budget
// breaks the streak.
func TestRWMutexWaitStreakSemantics(t *testing.T) {
	vote := func(rw *RWMutex) { // one over-budget wait, as rlockSlow reports it
		if rw.eng.Vote(spinParkTable, mSpin, mPark, rw.cfg.failLimit()) {
			rw.switchRWMode(ModeSpin, ModePark)
		}
	}
	// Fast-path reads interleaved with over-budget waits must not reset
	// the streak.
	var rw RWMutex
	for i := 0; i < DefaultSpinFailLimit; i++ {
		rw.RLock()
		rw.RUnlock()
		vote(&rw)
	}
	if got := rw.Stats().Mode; got != ModePark {
		t.Fatalf("mode = %v: fast-path reads must not mask over-budget waits", got)
	}
	// A within-budget slow-path wait (reported via good) breaks it.
	var rw2 RWMutex
	for round := 0; round < 3; round++ {
		for i := 0; i < DefaultSpinFailLimit-1; i++ {
			vote(&rw2)
		}
		rw2.eng.Good(spinParkTable, mSpin, mPark) // within-budget wait, as rlockSlow reports it
	}
	if got := rw2.Stats().Mode; got != ModeSpin {
		t.Fatalf("mode = %v after broken streaks, want spin", got)
	}
}

// TestRWMutexReturnsToSpinWhenWritersUncontended: writer releases that
// pass no waiting readers switch the reader protocol back to spin.
func TestRWMutexReturnsToSpinWhenWritersUncontended(t *testing.T) {
	var rw RWMutex
	rw.switchRWMode(ModeSpin, ModePark) // force park mode
	for i := 0; i < 2*DefaultEmptyLimit; i++ {
		rw.Lock()
		rw.Unlock()
	}
	if got := rw.Stats().Mode; got != ModeSpin {
		t.Fatalf("mode = %v after uncontended writer releases, want spin", got)
	}
}

// TestRWMutexInjectedPolicy: an always-switch policy flips the reader
// protocol back to spin on the first reader-free writer release.
func TestRWMutexInjectedPolicy(t *testing.T) {
	rw := NewRWMutex(WithPolicy(policy.AlwaysSwitch{}))
	rw.switchRWMode(ModeSpin, ModePark)
	rw.Lock()
	rw.Unlock()
	if got := rw.Stats().Mode; got != ModeSpin {
		t.Fatalf("mode = %v, want spin after one empty release under always-switch", got)
	}
}

// TestRWMutexStressForcedModeSwitches hammers readers and writers while
// the reader protocol is flipped in both directions, with a timeout guard
// asserting no reader or writer is stranded by a Park→Spin transition.
func TestRWMutexStressForcedModeSwitches(t *testing.T) {
	rw := NewRWMutex(WithPollIters(2)) // park quickly
	const writers, readers = 4, 16
	iters := 300
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	counter := 0
	stop := make(chan struct{})
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				rw.switchRWMode(ModeSpin, ModePark)
			} else {
				rw.switchRWMode(ModePark, ModeSpin)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.Lock()
				counter++
				rw.Unlock()
			}
		}()
	}
	var reads atomic.Int64
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.RLock()
				reads.Add(1)
				rw.RUnlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stranded waiter across forced reader-protocol switches: %d/%d writes, %d/%d reads",
			counter, writers*iters, reads.Load(), int64(readers*iters))
	}
	close(stop)
	fwg.Wait()
	if counter != writers*iters {
		t.Fatalf("writes = %d, want %d", counter, writers*iters)
	}
}
