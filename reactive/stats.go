package reactive

import "fmt"

// MarshalText implements encoding.TextMarshaler so a Mode renders as its
// protocol name in JSON ("mode": "sharded") and any other text-based
// encoding, matching String.
func (m Mode) MarshalText() ([]byte, error) {
	return []byte(m.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler, accepting exactly
// the names String and MarshalText produce.
func (m *Mode) UnmarshalText(text []byte) error {
	switch string(text) {
	case "spin":
		*m = ModeSpin
	case "park":
		*m = ModePark
	case "cas":
		*m = ModeCAS
	case "sharded":
		*m = ModeSharded
	case "combining":
		*m = ModeCombining
	case "epoch":
		*m = ModeEpoch
	case "locked":
		*m = ModeLocked
	default:
		return fmt.Errorf("reactive: unknown mode %q", text)
	}
	return nil
}

// Sub returns the delta from an earlier snapshot prev to s, the idiom
// for converting cumulative Stats into rates: poll Stats() on an
// interval, Sub the previous snapshot, and divide the monotonic fields
// by the interval.
//
// The contract, field by field:
//
//   - Switches (and Readers.Switches) are monotonic counters; Sub
//     returns s's value minus prev's. The subtraction is unsigned and
//     wraps modulo 2⁶⁴, so a delta stays correct even across counter
//     wrap — and, conversely, a prev taken from a *different* primitive
//     (or from after a snapshot of s) produces a huge wrapped value
//     rather than an error. Pair snapshots of the same primitive, oldest
//     as prev.
//   - Mode, Waiters, and Readers.Shards are gauges; the delta keeps s's
//     (the newer snapshot's) value, since "current mode minus previous
//     mode" has no meaning.
//   - A zero-value prev is the identity: s.Sub(Stats{}) == s (with a
//     fresh Readers pointer when present).
//   - Readers: if s.Readers is nil the delta's Readers is nil,
//     whatever prev holds (the primitive has no reader engine). If
//     s.Readers is non-nil and prev.Readers is nil — a zero-value prev,
//     or a prev recorded before any reader activity — prev is treated
//     as a zero ReaderStats. The returned Readers pointer is always
//     freshly allocated; Sub never aliases either operand.
func (s Stats) Sub(prev Stats) Stats {
	d := Stats{
		Mode:     s.Mode,
		Switches: s.Switches - prev.Switches,
		Waiters:  s.Waiters,
	}
	if s.Readers != nil {
		var pr ReaderStats
		if prev.Readers != nil {
			pr = *prev.Readers
		}
		r := s.Readers.Sub(pr)
		d.Readers = &r
	}
	return d
}

// Sub returns the delta from an earlier reader-engine snapshot prev to
// r, with the same per-field semantics as Stats.Sub: Switches, Graces,
// and QuietGraces are monotonic counters (unsigned, wrapping
// subtraction), Mode and Shards are gauges that keep r's value.
func (r ReaderStats) Sub(prev ReaderStats) ReaderStats {
	return ReaderStats{
		Mode:        r.Mode,
		Switches:    r.Switches - prev.Switches,
		Shards:      r.Shards,
		Graces:      r.Graces - prev.Graces,
		QuietGraces: r.QuietGraces - prev.QuietGraces,
	}
}
