package reactive

import (
	"strings"
	"sync"
	"testing"
)

// The invariant checkers must hold on fresh primitives, keep holding
// after real concurrent use, and actually fire on corrupted state —
// a checker that cannot fail verifies nothing.

func TestMutexCheckInvariants(t *testing.T) {
	var m Mutex
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("fresh: %v", err)
	}

	m.Lock()
	if err := m.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "state") {
		t.Fatalf("held lock not caught: %v", err)
	}
	m.Unlock()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Lock()
				m.Unlock() //nolint:staticcheck // empty section on purpose
			}
		}()
	}
	wg.Wait()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after contention: %v", err)
	}
}

func TestRWMutexCheckInvariants(t *testing.T) {
	for _, mode := range []Mode{ModeCAS, ModeSharded, ModeEpoch} {
		rw := NewRWMutex(WithInitialReaderMode(mode))
		if err := rw.CheckInvariants(); err != nil {
			t.Fatalf("%v fresh: %v", mode, err)
		}

		rw.RLock()
		err := rw.CheckInvariants()
		if mode == ModeCAS {
			if err == nil || !strings.Contains(err.Error(), "readerCount") {
				t.Fatalf("%v held read lock not caught: %v", mode, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), "deltas sum") {
			t.Fatalf("%v held read lock not caught: %v", mode, err)
		}
		rw.RUnlock()

		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					rw.RLock()
					rw.RUnlock()
					if i%10 == 0 {
						rw.Lock()
						rw.Unlock()
					}
				}
			}()
		}
		wg.Wait()
		if err := rw.CheckInvariants(); err != nil {
			t.Fatalf("%v after contention: %v", mode, err)
		}
	}
}

func TestRWMutexCheckCatchesGateSkew(t *testing.T) {
	rw := NewRWMutex(WithInitialReaderMode(ModeEpoch))
	rw.RLock() // force the cells up
	rw.RUnlock()
	g := rw.rgate.Load()
	rw.rgate.Store(g &^ rgEpoch) // mode bit off while the engine says epoch
	if err := rw.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "mode bit") {
		t.Fatalf("gate/engine skew not caught: %v", err)
	}
	rw.rgate.Store(g | rgClaim)
	if err := rw.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "claim") {
		t.Fatalf("stale claim not caught: %v", err)
	}
	rw.rgate.Store(g)
	if err := rw.CheckInvariants(); err != nil {
		t.Fatalf("restored: %v", err)
	}
}

func TestFetchOpAndCounterCheckInvariants(t *testing.T) {
	c := NewCounter()
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("fresh counter: %v", err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8*500 {
		t.Fatalf("count %d, want %d", got, 8*500)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("after contention: %v", err)
	}

	c.f.sweepLock.Store(1)
	if err := c.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "sweep lock") {
		t.Fatalf("held sweep lock not caught: %v", err)
	}
	c.f.sweepLock.Store(0)

	f := NewFetchOp(func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}, 0)
	f.Apply(41)
	f.Apply(7)
	if got := f.Value(); got != 41 {
		t.Fatalf("max = %d, want 41", got)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("fetchop after use: %v", err)
	}
}
