package reactive_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/reactive"
	"repro/reactive/policy"
)

// ExampleMutex shows the drop-in sync.Mutex replacement: the zero value
// is ready to use, and Stats reports which protocol the lock selected.
func ExampleMutex() {
	var mu reactive.Mutex
	balance := 0

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				mu.Lock()
				balance++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	fmt.Println(balance)
	// Output: 8000
}

// ExampleNew configures a Mutex through the Options API: custom detection
// thresholds, or a switching policy from the reactive/policy package in
// place of the built-in streak detection.
func ExampleNew() {
	mu := reactive.New(
		reactive.WithSpinFailLimit(2), // switch to parking after 2 contended acquisitions
		reactive.WithEmptyLimit(16),   // and back after 16 uncontended unlocks
		reactive.WithPollIters(40),    // poll 40 iterations before parking (Lpoll)
	)
	mu.Lock()
	mu.Unlock()

	competitive := reactive.New(
		reactive.WithPolicy(policy.NewCompetitive(3 * reactive.ResidualCheapHigh)),
	)
	competitive.Lock()
	competitive.Unlock()

	fmt.Println(mu.Stats().Mode, competitive.Stats().Mode)
	// Output: spin spin
}

// ExampleMutex_LockCtx shows cancellation-aware acquisition: LockCtx
// waits like Lock but gives up with ctx.Err() when the context ends, so
// a request handler can bound how long it blocks on a contended lock and
// degrade instead of hanging. Lock is simply LockCtx with
// context.Background(), at the same (zero-allocation) fast-path cost.
func ExampleMutex_LockCtx() {
	var mu reactive.Mutex
	mu.Lock() // another owner holds the lock...

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := mu.LockCtx(ctx); err != nil {
		fmt.Println("degraded:", err) // ...so the bounded attempt times out
	}

	mu.Unlock()
	if err := mu.LockCtx(context.Background()); err == nil {
		fmt.Println("acquired after release")
		mu.Unlock()
	}
	// Output:
	// degraded: context deadline exceeded
	// acquired after release
}

// ExampleCounter shows the adaptive fetch-and-add counter: a single CAS
// word at low contention, per-processor sharded cells under high
// contention, reconciled by Load.
func ExampleCounter() {
	var hits reactive.Counter

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				hits.Add(1)
			}
		}()
	}
	wg.Wait()

	fmt.Println(hits.Load())
	// Output: 8000
}

// ExampleFetchOp shows the generic reactive fetch-and-op: any
// associative, commutative operation with an identity element gets the
// same three-protocol adaptivity as Counter (its add-only
// specialization) — a single CAS word uncontended, per-processor sharded
// cells under update contention, batched combining when heavy updates
// meet frequent reads. Here: a concurrent peak (running max) tracker.
func ExampleFetchOp() {
	peak := reactive.NewFetchOp(func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}, math.MinInt64)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				peak.Apply(int64(g*1000 + i))
			}
		}()
	}
	wg.Wait()

	fmt.Println(peak.Value())
	// Output: 7999
}

// ExampleStats_Sub shows the rate-conversion idiom: poll Stats() on an
// interval, Sub the previous snapshot, and read the monotonic fields as
// "per interval" rates. Here a counter starts in its sharded protocol,
// the idle single-goroutine workload drives it back down to the CAS
// word, and the delta reports exactly that one protocol change.
func ExampleStats_Sub() {
	counter := reactive.NewCounter(reactive.WithInitialMode(reactive.ModeSharded))
	prev := counter.Stats() // earlier poll

	for counter.Stats().Mode != reactive.ModeCAS {
		counter.Add(1)
		counter.Load() // idle reconciling reads vote the protocol back down
	}

	delta := counter.Stats().Sub(prev) // later poll, as a delta
	fmt.Printf("mode=%v switches+%d\n", delta.Mode, delta.Switches)
	// Output: mode=cas switches+1
}

// ExampleRWMutex shows the adaptive reader/writer lock: readers spin when
// writer holds are short and park when they are long. Orthogonally,
// reader *registration* adapts across three protocols (Stats().Readers):
// a centralized CAS word when readers are few, BRAVO-style sharded per-P
// slots under read contention, and per-P epoch stamps under sustained
// read saturation — where a reader writes no shared cache line at all
// and writers absorb the cost as a grace-period sweep. Detection walks
// the chain automatically; WithInitialReaderMode pins a stage directly.
func ExampleRWMutex() {
	rw := reactive.NewRWMutex(reactive.WithPollIters(32))
	config := map[string]string{"mode": "fast"}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				rw.RLock()
				_ = config["mode"]
				rw.RUnlock()
			}
		}()
	}
	rw.Lock()
	config["mode"] = "safe"
	rw.Unlock()
	wg.Wait()

	fmt.Println(config["mode"])
	// Output: safe
}

// ExampleMap shows the adaptive hash map walking its protocol chain
// under forced initial modes: one locked table for cheap uncontended
// use, per-shard locks under mixed contention, and a published
// immutable table for read-mostly saturation — where a lookup writes no
// shared cache line and writers pay a journaled republish plus a grace
// period. Detection walks the chain automatically; WithInitialMode
// starts at a stage directly.
func ExampleMap() {
	for _, mode := range []reactive.Mode{
		reactive.ModeLocked, reactive.ModeSharded, reactive.ModeEpoch,
	} {
		m := reactive.NewMap[string, int](reactive.WithInitialMode(mode))
		m.Put("requests", 1)
		m.Put("errors", 0)
		if n, ok := m.Get("requests"); ok {
			m.Put("requests", n+41)
		}
		m.Delete("errors")

		v, _ := m.Get("requests")
		fmt.Printf("%s: requests=%d len=%d\n", m.Stats().Mode, v, m.Len())
	}
	// Output:
	// locked: requests=42 len=1
	// sharded: requests=42 len=1
	// epoch: requests=42 len=1
}
