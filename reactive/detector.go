package reactive

import (
	"runtime"
	"sync/atomic"

	"repro/reactive/policy"
)

// Policy directions shared by every primitive in this package: 0 votes
// toward the scalable protocol (contention appeared while the cheap
// protocol was selected), 1 votes toward the cheap protocol (contention
// disappeared while the scalable protocol was selected). These match the
// direction conventions of the simulator's reactive algorithms.
const (
	dirScaleUp   policy.Direction = 0
	dirScaleDown policy.Direction = 1
)

// detector is the detection machinery shared by Mutex, Counter, and
// RWMutex: it turns per-request optimal/sub-optimal observations into
// switch-now decisions, either through the built-in per-direction streak
// counters (hysteresis on SpinFailLimit/EmptyLimit) or through an injected
// policy.Policy.
//
// Policy implementations are not concurrency-safe, and unlike the
// simulator the native primitives have no consensus object held across
// every detection event, so the detector serializes policy calls through a
// tiny test-and-set lock. The lock is only taken on detection events —
// never on a primitive's uncontended fast path.
type detector struct {
	pol policy.Policy // nil: built-in streak detection

	lock   atomic.Uint32 // serializes calls into pol
	dirty  atomic.Bool   // a sub-optimal vote happened since the last switch
	streak [2]atomic.Int32
}

func (d *detector) acquire() {
	for !d.lock.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

func (d *detector) release() { d.lock.Store(0) }

// vote records one request served while the current protocol was
// sub-optimal in direction dir and reports whether the primitive should
// switch protocols now. limit is the built-in detection's streak
// threshold; residual is the extra cost charged to an injected policy.
func (d *detector) vote(dir policy.Direction, residual uint64, limit int32) bool {
	if d.pol == nil {
		return d.streak[dir&1].Add(1) >= limit
	}
	d.acquire()
	// dirty transitions only under the lock, so a vote racing a switch
	// cannot leave the flag false while the policy holds pressure.
	d.dirty.Store(true)
	switchNow := d.pol.Suboptimal(dir, residual)
	d.release()
	return switchNow
}

// good records one request served by the optimal protocol, breaking
// direction dir's sub-optimal streak. With an injected policy the call is
// elided while the detector is quiescent (no vote has raised switching
// pressure): only Suboptimal moves a policy toward a switch, so skipping
// Optimal notifications in that state cannot change any decision. It is
// also elided when the lock is busy — another goroutine is already
// feeding the policy, and Optimal events are a stream, not a count — so
// a fast path calling good can never serialize on the detector lock. A
// policy implementing policy.Quiescer re-arms the elision as soon as its
// pressure has decayed to zero, returning a long-lived primitive's fast
// path to a single atomic load.
func (d *detector) good(dir policy.Direction) {
	if d.pol == nil {
		s := &d.streak[dir&1]
		if s.Load() != 0 {
			s.Store(0)
		}
		return
	}
	if !d.dirty.Load() || !d.lock.CompareAndSwap(0, 1) {
		return
	}
	d.pol.Optimal(dir)
	if q, ok := d.pol.(policy.Quiescer); ok && q.Quiescent() {
		d.dirty.Store(false)
	}
	d.release()
}

// switched informs the detection machinery that a protocol change was
// carried out.
func (d *detector) switched() {
	if d.pol == nil {
		d.streak[0].Store(0)
		d.streak[1].Store(0)
		return
	}
	d.acquire()
	d.pol.Switched()
	d.dirty.Store(false)
	d.release()
}
