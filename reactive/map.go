package reactive

import (
	"context"
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/reactive/internal/affinity"
	"repro/reactive/internal/chaos"
	"repro/reactive/internal/waitq"
	"repro/reactive/modal"
)

// Map's engine-local mode indices (the public modes they correspond to
// are ModeLocked, ModeSharded, and ModeEpoch; see mapPublicMode and
// MapTable).
const (
	mapLocked  modal.Mode = 0
	mapSharded modal.Mode = 1
	mapEpoch   modal.Mode = 2
)

// mapModeTable is Map's 3-mode transition table: a chain from the
// single-lock protocol through hash-sharded locks to the published
// immutable table, with no shortcut edges — like every other chain in
// this package, the map scales up and down one protocol at a time. It
// is the first table in the package attached to a data structure rather
// than a synchronization primitive: the engine, the detection plumbing,
// and the policy interface are reused unchanged.
var mapModeTable = modal.NewTable(3, []modal.Transition{
	{From: mapLocked, To: mapSharded, Dir: dirScaleUp, Residual: ResidualCheapHigh},
	{From: mapSharded, To: mapLocked, Dir: dirScaleDown, Residual: ResidualScalableLow},
	{From: mapSharded, To: mapEpoch, Dir: dirScaleUp, Residual: ResidualCheapHigh},
	{From: mapEpoch, To: mapSharded, Dir: dirScaleDown, Residual: ResidualScalableLow},
})

// MapTable returns the transition table Map runs on: mode index 0 =
// ModeLocked, 1 = ModeSharded, 2 = ModeEpoch. The table is immutable
// and shared; it is exported so harnesses and experiments can drive the
// exact state machine the map uses rather than a hand-maintained copy.
func MapTable() *modal.Table { return mapModeTable }

// mapPublicMode maps an engine-local mode index to the public Mode.
func mapPublicMode(m modal.Mode) Mode {
	switch m {
	case mapSharded:
		return ModeSharded
	case mapEpoch:
		return ModeEpoch
	}
	return ModeLocked
}

// mapShard is one sharded-mode partition: a spin word and the partition
// map, padded so neighboring shard locks never share a coherence
// granule. The lock is a plain test-and-set word (not a Mutex): shard
// critical sections are single bounded map operations, so parking
// machinery would cost more than the longest possible wait.
type mapShard[K comparable, V any] struct {
	lock atomic.Uint32
	m    map[K]V
	_    [affinity.CacheLineSize - 16]byte
}

// mapVersion is one published epoch-mode table: an immutable-while-
// published map and the version number it was installed under.
type mapVersion[K comparable, V any] struct {
	m   map[K]V
	ver uint64
}

// mapMut is one journaled epoch-mode mutation.
type mapMut[K comparable, V any] struct {
	key K
	val V
	del bool
}

// Map is a reactive concurrent hash map — the first adaptive *data
// structure* in this package, demonstrating that the modal engine
// generalizes past locks: the same transition table, streak detection,
// Vote/Good/TryCommit plumbing, and installable policy.Congestion that
// drive Mutex and FetchOp here select among three map protocols as the
// access pattern changes:
//
//   - ModeLocked — one hash table guarded by the adaptive Mutex. One
//     lock word per operation; the zero-value default, cheapest while
//     operations rarely collide.
//   - ModeSharded — a power-of-two array of hash-partitioned shards,
//     each under its own padded spin word. Operations on different
//     shards proceed in parallel; contention on one key's shard is the
//     detection signal in both directions.
//   - ModeEpoch — a read-mostly copy-on-write table in the userspace-
//     RCU style: Get pins, stamps a per-P epoch cell, and reads an
//     atomically published immutable table, writing nothing outside
//     its own cache-line-padded cell — contended reads generate zero
//     shared-cacheline coherence traffic. Put and Delete buffer the
//     mutation into a journal under the writer lock, fold it into the
//     off-line table copy, publish that copy as the new version, and
//     run a grace-period sweep (the RWMutex epoch protocol's sweep,
//     reused structurally) proving the retired copy reader-free before
//     it is mutated in place for the next round.
//
// Reads that arrive during an epoch-mode writer's grace claim fall back
// to the writer lock, so writers cannot starve; a Get never blocks a
// Get. Mode transitions run as a writer-drain-style consensus — writer
// lock plus every shard lock, or writer lock plus a completed grace
// period — and move every key exactly once, so no transition can lose
// or duplicate a key.
//
// The zero value is an empty ModeLocked map ready for use. A Map must
// not be copied after first use. All methods are safe for concurrent
// use; Range and Len are weakly consistent snapshots, as in sync.Map.
type Map[K comparable, V any] struct {
	// wl is the writer lock: the ModeLocked table lock, the epoch-mode
	// writer serializer, and the transition lock, in every mode. It is
	// itself adaptive (spin ↔ park), so the locked mode inherits the
	// mutex chain's waiting behavior, and its waitq gives GetCtx and
	// PutCtx their cancellable parked waits.
	wl Mutex

	eng modal.Engine
	cfg config

	// count is the live-key gauge, maintained under each mode's
	// exclusion so Len is O(1) in every mode.
	count atomic.Int64

	// table is the ModeLocked store; guarded by wl.
	table map[K]V

	// Sharded-mode state. The shard for a key is chosen by hash, not by
	// the affinity.Pin P-index the per-P cells use: a map shard is data
	// placement — every operation on one key must reach one partition
	// whatever processor it runs on — so the exact-P index that works
	// for commutative per-P cells (Counter, FetchOp) would scatter one
	// key across shards here. The affinity substrate still sizes the
	// array (next power of two ≥ GOMAXPROCS).
	seed       maphash.Seed
	shards     []mapShard[K, V]
	shardsOnce sync.Once
	shardsUp   atomic.Bool

	// Epoch-mode state: the published table (cur), the off-line copy
	// the next writer folds into (spare, guarded by wl), the mutation
	// journal (guarded by wl; entries deposited but not yet folded into
	// both copies), and the gate/cell grace-period machinery, laid out
	// exactly as RWMutex's (rgClaim/rgEpoch/rgGraceMask packing).
	cur     atomic.Pointer[mapVersion[K, V]]
	spare   *mapVersion[K, V]
	journal []mapMut[K, V]
	jdepth  atomic.Int64
	version atomic.Uint64
	gate    atomic.Int64
	gq      waitq.Queue

	ecells     []affinity.EpochCell
	ecellsOnce sync.Once
	ecellsUp   atomic.Bool

	graces      atomic.Uint64
	quietGraces atomic.Uint64
}

// NewMap builds a Map with the given options. NewMap() is equivalent to
// a zero-value Map; WithInitialMode accepts ModeLocked, ModeSharded,
// and ModeEpoch.
func NewMap[K comparable, V any](opts ...Option) *Map[K, V] {
	mp := &Map[K, V]{}
	mp.cfg.apply(opts)
	mp.eng.SetPolicy(mp.cfg.pol)
	// The writer lock inherits the tunables but never the policy: a
	// policy.Policy is single-primitive state, and it belongs to the
	// map's own engine.
	mp.wl.cfg = config{
		spinFailLimit: mp.cfg.spinFailLimit,
		emptyLimit:    mp.cfg.emptyLimit,
		pollIters:     mp.cfg.pollIters,
	}
	mp.applyInitMode()
	return mp
}

// applyInitMode walks the transition chain to the configured initial
// mode at construction time, before the map is shared (see
// WithInitialMode).
func (mp *Map[K, V]) applyInitMode() {
	if !mp.cfg.initModeSet {
		return
	}
	switch mp.cfg.initMode {
	case ModeLocked: // the zero mode
	case ModeSharded:
		mp.switchMap(mapLocked, mapSharded)
	case ModeEpoch:
		mp.switchMap(mapLocked, mapSharded)
		mp.switchMap(mapSharded, mapEpoch)
	default:
		panic("reactive: Map supports initial modes ModeLocked, ModeSharded, and ModeEpoch")
	}
}

// shardsInit lazily builds the shard array and the hash seed, exactly
// once, before the sharded mode is ever published.
func (mp *Map[K, V]) shardsInit() {
	mp.shardsOnce.Do(func() {
		mp.seed = maphash.MakeSeed()
		mp.shards = make([]mapShard[K, V], affinity.Shards())
		mp.shardsUp.Store(true)
	})
}

// epochCellsInit lazily builds the per-P epoch cells, exactly once,
// before the epoch mode is ever published.
func (mp *Map[K, V]) epochCellsInit() {
	mp.ecellsOnce.Do(func() {
		mp.ecells = make([]affinity.EpochCell, affinity.Shards())
		mp.ecellsUp.Store(true)
	})
}

// shardIndex places a key: hash, masked into the power-of-two array.
func (mp *Map[K, V]) shardIndex(key K) int {
	return int(maphash.Comparable(mp.seed, key)) & (len(mp.shards) - 1)
}

// lockW acquires the writer lock, reporting whether the acquisition
// contended (the ModeLocked detection signal). A nil done means the
// uncancellable path.
func (mp *Map[K, V]) lockW(ctx context.Context, done <-chan struct{}) (contended bool, err error) {
	if mp.wl.TryLock() {
		return false, nil
	}
	if done == nil {
		mp.wl.Lock()
		return true, nil
	}
	if err := mp.wl.LockCtx(ctx); err != nil {
		return true, err
	}
	return true, nil
}

// lockShard acquires one shard's spin word, reporting whether the
// acquisition contended. Shard critical sections are single bounded map
// operations, so the loop spins with randomized backoff and never
// parks; a cancellable caller's done aborts between pauses.
func (mp *Map[K, V]) lockShard(l *atomic.Uint32, ctx context.Context, done <-chan struct{}) (contended bool, err error) {
	if l.CompareAndSwap(0, 1) {
		return false, nil
	}
	var bo modal.Backoff
	bo.Max = backoffCeiling
	for {
		if done != nil {
			select {
			case <-done:
				return true, ctx.Err()
			default:
			}
		}
		if l.Load() == 0 && l.CompareAndSwap(0, 1) {
			return true, nil
		}
		bo.Pause()
	}
}

func (mp *Map[K, V]) unlockShard(l *atomic.Uint32) { l.Store(0) }

// lockAllShards acquires every shard lock in index order — one half of
// the transition consensus: with wl and all shard locks held, no
// operation is inside any protocol (locked ops hold wl, sharded ops
// hold their shard, and both revalidate the mode after acquiring).
func (mp *Map[K, V]) lockAllShards() {
	for i := range mp.shards {
		mp.lockShard(&mp.shards[i].lock, nil, nil)
	}
}

func (mp *Map[K, V]) unlockAllShards() {
	for i := range mp.shards {
		mp.unlockShard(&mp.shards[i].lock)
	}
}

// noteLocked runs ModeLocked's detection after the operation released
// wl: a contended acquisition is the scale-up signal, an uncontended
// one breaks the streak.
func (mp *Map[K, V]) noteLocked(contended bool) {
	if !contended {
		mp.eng.Good(mapModeTable, mapLocked, mapSharded)
		return
	}
	if mp.eng.Vote(mapModeTable, mapLocked, mapSharded, mp.cfg.failLimit()) {
		mp.switchMap(mapLocked, mapSharded)
	}
}

// noteSharded runs ModeSharded's detection after the operation released
// its shard. An uncontended operation votes down toward the single
// lock; a contended *read* votes up toward the epoch protocol (readers
// colliding on a shard word is exactly the coherence traffic the
// published-table mode eliminates), while a contended write only breaks
// the down-streak — promoting a write-heavy map would tax every write
// with a grace period.
func (mp *Map[K, V]) noteSharded(contended, read bool) {
	if !contended {
		mp.eng.Good(mapModeTable, mapSharded, mapEpoch)
		if mp.eng.Vote(mapModeTable, mapSharded, mapLocked, mp.cfg.emptyLim()) {
			mp.switchMap(mapSharded, mapLocked)
		}
		return
	}
	mp.eng.Good(mapModeTable, mapSharded, mapLocked)
	if read {
		if mp.eng.Vote(mapModeTable, mapSharded, mapEpoch, mp.cfg.failLimit()) {
			mp.switchMap(mapSharded, mapEpoch)
		}
	} else {
		mp.eng.Good(mapModeTable, mapSharded, mapEpoch)
	}
}

// switchMap performs one transition of the chain under the full
// consensus: wl, plus every shard lock when the sharded store is in
// play. Every op revalidates the mode after acquiring its own lock, so
// with all locks held no operation is mid-protocol and the key move is
// atomic — no transition can lose or duplicate a key. The epoch →
// sharded edge is not handled here: it commits inside graceSweep, under
// the writer's claim, where reader exclusion is already proved.
func (mp *Map[K, V]) switchMap(want, next modal.Mode) {
	mp.wl.Lock()
	defer mp.wl.Unlock()
	if mp.eng.Mode() != want {
		return // lost the race to another transition
	}
	switch {
	case want == mapLocked && next == mapSharded:
		mp.shardsInit()
		mp.lockAllShards()
		for k, v := range mp.table {
			sh := &mp.shards[mp.shardIndex(k)]
			if sh.m == nil {
				sh.m = make(map[K]V)
			}
			sh.m[k] = v
		}
		mp.eng.TryCommit(mapModeTable, mapLocked, mapSharded)
		mp.unlockAllShards()
		mp.table = nil
	case want == mapSharded && next == mapLocked:
		mp.lockAllShards()
		merged := make(map[K]V, mp.count.Load())
		for i := range mp.shards {
			for k, v := range mp.shards[i].m {
				merged[k] = v
			}
			mp.shards[i].m = nil
		}
		mp.table = merged
		mp.eng.TryCommit(mapModeTable, mapSharded, mapLocked)
		mp.unlockAllShards()
	case want == mapSharded && next == mapEpoch:
		mp.epochCellsInit()
		mp.lockAllShards()
		n := int(mp.count.Load())
		pub := make(map[K]V, n)
		off := make(map[K]V, n)
		for i := range mp.shards {
			for k, v := range mp.shards[i].m {
				pub[k] = v
				off[k] = v
			}
			mp.shards[i].m = nil
		}
		mp.cur.Store(&mapVersion[K, V]{m: pub, ver: mp.version.Add(1)})
		mp.spare = &mapVersion[K, V]{m: off}
		// Raise the gate's mode bit before the commit publishes the
		// mode, so the first Get that dispatches to the epoch path
		// validates successfully. No claim: the spare has never been
		// published, so its in-place mutation needs no grace period.
		mp.gate.Store(mp.gate.Load() | rgEpoch)
		mp.eng.TryCommit(mapModeTable, mapSharded, mapEpoch)
		mp.unlockAllShards()
	}
}

// Get reports the value stored under key. In ModeEpoch the fast path
// performs no allocation and writes nothing outside its own per-P
// cache-line-padded cell.
func (mp *Map[K, V]) Get(key K) (V, bool) {
	v, ok, _ := mp.get(nil, nil, key)
	return v, ok
}

// GetCtx is Get with cancellable blocking: if ctx has already ended,
// or the lookup must wait on the writer lock or a shard lock and ctx
// ends first, it returns ctx.Err(). The epoch-mode fast path never
// blocks, but the entry check still fires — a dead context never
// observes the map, matching LockCtx/RLockCtx.
func (mp *Map[K, V]) GetCtx(ctx context.Context, key K) (V, bool, error) {
	if err := ctx.Err(); err != nil {
		var zero V
		return zero, false, err
	}
	return mp.get(ctx, ctx.Done(), key)
}

func (mp *Map[K, V]) get(ctx context.Context, done <-chan struct{}, key K) (V, bool, error) {
	var zero V
	for {
		switch mp.eng.Mode() {
		case mapLocked:
			contended, err := mp.lockW(ctx, done)
			if err != nil {
				return zero, false, err
			}
			if mp.eng.Mode() != mapLocked {
				mp.wl.Unlock()
				continue
			}
			v, ok := mp.table[key]
			mp.wl.Unlock()
			mp.noteLocked(contended)
			return v, ok, nil
		case mapSharded:
			sh := &mp.shards[mp.shardIndex(key)]
			contended, err := mp.lockShard(&sh.lock, ctx, done)
			if err != nil {
				return zero, false, err
			}
			if mp.eng.Mode() != mapSharded {
				mp.unlockShard(&sh.lock)
				continue
			}
			v, ok := sh.m[key]
			mp.unlockShard(&sh.lock)
			mp.noteSharded(contended, true)
			return v, ok, nil
		default: // mapEpoch
			if v, ok, valid := mp.getEpoch(key); valid {
				return v, ok, nil
			}
			// A writer's grace claim is in place (or the mode just
			// moved): read authoritatively under the writer lock, so
			// writers cannot starve behind a read storm.
			if _, err := mp.lockW(ctx, done); err != nil {
				return zero, false, err
			}
			if mp.eng.Mode() != mapEpoch {
				mp.wl.Unlock()
				continue
			}
			v, ok := mp.cur.Load().m[key]
			mp.wl.Unlock()
			return v, ok, nil
		}
	}
}

// getEpoch attempts one epoch-mode read: publish an online stamp in
// this P's cell, validate against the gate that the epoch mode is still
// selected and no writer claim is in place, and read the published
// table. Either validation failing undoes the stamp and reports invalid
// (the caller falls back to the writer lock). The exclusion argument is
// RWMutex's epoch registration argument verbatim: the cell increment is
// a sequentially consistent RMW preceding this goroutine's gate load,
// and a claiming writer stores the claim before its first cell sweep,
// so a claim-free gate load proves the stamp visible to every sweep of
// that grace period — the published table cannot be retired and mutated
// while this reader is inside it.
func (mp *Map[K, V]) getEpoch(key K) (v V, ok, valid bool) {
	cells := mp.ecells // non-nil: built before mapEpoch was published
	c := &cells[affinity.Pin()&(len(cells)-1)]
	c.Cnt.Add(1)
	g := mp.gate.Load()
	if g < rgEpoch {
		affinity.Unpin()
		mp.unstamp(c)
		return v, false, false
	}
	// Record the grace epoch observed; the store is to this P's own
	// cell and skipped when already current, so steady-state reads keep
	// the cell line exclusive and touch no shared line at all.
	if e := uint64(g & rgGraceMask); c.Seen.Load() != e {
		c.Seen.Store(e)
	}
	affinity.Unpin()
	v, ok = mp.cur.Load().m[key]
	mp.unstamp(c)
	return v, ok, true
}

// unstamp takes one epoch reader offline and nudges a writer whose
// grace period is parked waiting for the cell sum to drain.
func (mp *Map[K, V]) unstamp(c *affinity.EpochCell) {
	c.Cnt.Add(-1)
	if mp.gate.Load() < 0 {
		mp.gq.Grant()
	}
}

// Put stores val under key.
func (mp *Map[K, V]) Put(key K, val V) {
	mp.put(nil, nil, key, val, false)
}

// PutCtx is Put with cancellable blocking: if ctx has already ended,
// or the store must wait on the writer lock or a shard lock and ctx
// ends first, it returns ctx.Err() with the map unchanged. Once the
// locks are held the mutation always completes — in ModeEpoch that
// includes the grace period (bounded: epoch readers run no user code),
// so a mutation is never half-published.
func (mp *Map[K, V]) PutCtx(ctx context.Context, key K, val V) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return mp.put(ctx, ctx.Done(), key, val, false)
}

// Delete removes the value stored under key, if any.
func (mp *Map[K, V]) Delete(key K) {
	mp.put(nil, nil, key, *new(V), true)
}

func (mp *Map[K, V]) put(ctx context.Context, done <-chan struct{}, key K, val V, del bool) error {
	for {
		switch mp.eng.Mode() {
		case mapLocked:
			contended, err := mp.lockW(ctx, done)
			if err != nil {
				return err
			}
			if mp.eng.Mode() != mapLocked {
				mp.wl.Unlock()
				continue
			}
			if del {
				if _, ok := mp.table[key]; ok {
					delete(mp.table, key)
					mp.count.Add(-1)
				}
			} else {
				if mp.table == nil {
					mp.table = make(map[K]V)
				}
				if _, ok := mp.table[key]; !ok {
					mp.count.Add(1)
				}
				mp.table[key] = val
			}
			mp.wl.Unlock()
			mp.noteLocked(contended)
			return nil
		case mapSharded:
			sh := &mp.shards[mp.shardIndex(key)]
			contended, err := mp.lockShard(&sh.lock, ctx, done)
			if err != nil {
				return err
			}
			if mp.eng.Mode() != mapSharded {
				mp.unlockShard(&sh.lock)
				continue
			}
			if del {
				if _, ok := sh.m[key]; ok {
					delete(sh.m, key)
					mp.count.Add(-1)
				}
			} else {
				if sh.m == nil {
					sh.m = make(map[K]V)
				}
				if _, ok := sh.m[key]; !ok {
					mp.count.Add(1)
				}
				sh.m[key] = val
			}
			mp.unlockShard(&sh.lock)
			mp.noteSharded(contended, false)
			return nil
		default: // mapEpoch
			if _, err := mp.lockW(ctx, done); err != nil {
				return err
			}
			if mp.eng.Mode() != mapEpoch {
				mp.wl.Unlock()
				continue
			}
			mp.putEpoch(key, val, del)
			mp.wl.Unlock()
			return nil
		}
	}
}

// putEpoch applies one epoch-mode mutation, under wl. The republish
// round trip: deposit the mutation in the journal, fold the journal
// into the off-line copy, publish that copy as the new table version,
// run a grace period proving the retired copy reader-free, then fold
// the journal into the retired copy so both copies are equal again and
// the journal empties. Between writers the journal is empty and the
// spare is a full replica — the invariant CheckInvariants verifies.
func (mp *Map[K, V]) putEpoch(key K, val V, del bool) {
	// Deposit. Until the fold below, the mutation exists only here —
	// the window the map.journal.deposit fault point opens.
	mp.journal = append(mp.journal, mapMut[K, V]{key: key, val: val, del: del})
	mp.jdepth.Store(int64(len(mp.journal)))
	chaos.Point("map.journal.deposit")

	// Fold into the off-line copy. In-place mutation is safe because
	// the grace period that retired this copy proved it reader-free,
	// and no reader has been able to reach it since (cur no longer
	// points at it).
	spare := mp.spare
	for i := range mp.journal {
		mu := &mp.journal[i]
		if mu.del {
			if _, ok := spare.m[mu.key]; ok {
				delete(spare.m, mu.key)
				mp.count.Add(-1)
			}
		} else {
			if _, ok := spare.m[mu.key]; !ok {
				mp.count.Add(1)
			}
			spare.m[mu.key] = mu.val
		}
	}

	// Publish: one atomic store installs the new version; readers that
	// loaded the old pointer are still inside it — the window the
	// map.table.publish fault point opens, closed by the grace period.
	spare.ver = mp.version.Add(1)
	retired := mp.cur.Load()
	mp.cur.Store(spare)
	mp.spare = retired
	chaos.Point("map.table.publish")

	if demoted := mp.graceSweep(); !demoted {
		// Bring the retired copy up to date for the next round. No
		// count accounting: the fold above already counted these
		// mutations once.
		for i := range mp.journal {
			mu := &mp.journal[i]
			if mu.del {
				delete(mp.spare.m, mu.key)
			} else {
				mp.spare.m[mu.key] = mu.val
			}
		}
	}
	mp.journal = mp.journal[:0]
	mp.jdepth.Store(0)
}

// graceSweep runs one grace period, under wl: claim the gate (advancing
// the global grace epoch), wait until every reader that might hold the
// retired table has gone offline, run the epoch protocol's scale-down
// detection, and release the claim. The wait is two-phase (poll through
// the budget, then park on gq, granted by unstamp) and uncancellable —
// epoch read sections run no user code, so it is bounded. Reports
// whether detection demoted the map out of the epoch mode; in that case
// the commit ran here, under the claim, where reader exclusion is
// already proved, and the gate's mode bit was lowered with the claim.
func (mp *Map[K, V]) graceSweep() (demoted bool) {
	g := mp.gate.Load()
	mp.gate.Store((g &^ rgGraceMask) | rgClaim | ((g + 1) & rgGraceMask))
	chaos.Point("map.grace.sweep")
	idle := mp.cellSum() == 0
	if !idle {
		if ok, _ := modal.PollCh(mp.cfg.pollBudget(), nil, func() bool { return mp.cellSum() == 0 }); !ok {
			mp.parkGrace()
		}
	}
	mp.graces.Add(1)
	if idle {
		// A quiet grace period: the published table went unread across
		// a whole writer round — the write-dominated regime where the
		// copy-on-write machinery is pure overhead.
		mp.quietGraces.Add(1)
		if mp.eng.Vote(mapModeTable, mapEpoch, mapSharded, mp.cfg.emptyLim()) {
			mp.shardsInit()
			mp.lockAllShards()
			for k, v := range mp.cur.Load().m {
				sh := &mp.shards[mp.shardIndex(k)]
				if sh.m == nil {
					sh.m = make(map[K]V)
				}
				sh.m[k] = v
			}
			mp.eng.TryCommit(mapModeTable, mapEpoch, mapSharded)
			mp.unlockAllShards()
			mp.spare = nil
			mp.gate.Store(mp.gate.Load() &^ (rgClaim | rgEpoch))
			return true
		}
	} else {
		mp.eng.Good(mapModeTable, mapEpoch, mapSharded)
	}
	mp.gate.Store(mp.gate.Load() &^ rgClaim)
	return false
}

// parkGrace is the grace period's phase-two wait: park on gq until the
// last online reader grants a re-sweep. At most one writer sweeps at a
// time (wl is held), so the queue holds at most one node; announce-
// then-check against the cell sum closes the race with a reader that
// went offline before the announce.
func (mp *Map[K, V]) parkGrace() {
	w := waitq.Get()
	defer waitq.Put(w)
	for {
		mp.gq.Push(w)
		if mp.cellSum() == 0 {
			mp.gq.Abandon(w)
			return
		}
		<-w.Ready()
		if mp.cellSum() == 0 {
			return
		}
	}
}

// cellSum sweeps the epoch cells. Stamps are internal add-then-remove
// pairs, so unlike RWMutex's epochSum a negative transient would be a
// package bug, not caller misuse; CheckInvariants verifies zero at
// quiescence.
func (mp *Map[K, V]) cellSum() int64 {
	var sum int64
	for i := range mp.ecells {
		sum += mp.ecells[i].Cnt.Load()
	}
	return sum
}

// Len reports the number of keys in the map. It is an O(1) gauge read,
// weakly consistent under concurrent mutation.
func (mp *Map[K, V]) Len() int { return int(mp.count.Load()) }

// Range calls fn for every key/value pair in a weakly consistent
// snapshot of the map, stopping early if fn returns false. The snapshot
// is taken first and fn runs on it afterward, so fn is never invoked
// under any Map lock and may itself call back into the map.
func (mp *Map[K, V]) Range(fn func(key K, val V) bool) {
	for k, v := range mp.snapshot() {
		if !fn(k, v) {
			return
		}
	}
}

// snapshot copies the map's current contents under the current mode's
// exclusion, retrying if a transition moves the mode mid-copy.
func (mp *Map[K, V]) snapshot() map[K]V {
	for {
		switch mp.eng.Mode() {
		case mapLocked:
			mp.wl.Lock()
			if mp.eng.Mode() != mapLocked {
				mp.wl.Unlock()
				continue
			}
			out := make(map[K]V, len(mp.table))
			for k, v := range mp.table {
				out[k] = v
			}
			mp.wl.Unlock()
			return out
		case mapSharded:
			out := make(map[K]V, mp.count.Load())
			ok := true
			for i := range mp.shards {
				sh := &mp.shards[i]
				mp.lockShard(&sh.lock, nil, nil)
				if mp.eng.Mode() != mapSharded {
					mp.unlockShard(&sh.lock)
					ok = false
					break
				}
				for k, v := range sh.m {
					out[k] = v
				}
				mp.unlockShard(&sh.lock)
			}
			if ok {
				return out
			}
		default: // mapEpoch
			if out, valid := mp.snapshotEpoch(); valid {
				return out
			}
			mp.wl.Lock()
			if mp.eng.Mode() != mapEpoch {
				mp.wl.Unlock()
				continue
			}
			t := mp.cur.Load()
			out := make(map[K]V, len(t.m))
			for k, v := range t.m {
				out[k] = v
			}
			mp.wl.Unlock()
			return out
		}
	}
}

// snapshotEpoch copies the published table under an online stamp — the
// copy (bounded, no user code) is the only work an epoch-mode grace
// period ever waits on besides lookups.
func (mp *Map[K, V]) snapshotEpoch() (map[K]V, bool) {
	cells := mp.ecells
	c := &cells[affinity.Pin()&(len(cells)-1)]
	c.Cnt.Add(1)
	g := mp.gate.Load()
	if g < rgEpoch {
		affinity.Unpin()
		mp.unstamp(c)
		return nil, false
	}
	if e := uint64(g & rgGraceMask); c.Seen.Load() != e {
		c.Seen.Store(e)
	}
	affinity.Unpin()
	t := mp.cur.Load()
	out := make(map[K]V, len(t.m))
	for k, v := range t.m {
		out[k] = v
	}
	mp.unstamp(c)
	return out, true
}

// MapStats extends the unified Stats shape with the map's own gauges
// and grace-period counters.
type MapStats struct {
	Stats
	// Shards is the shard-array size, 0 until the sharded store has
	// been built. A gauge.
	Shards int `json:"shards"`
	// Version is the published-table version: how many epoch-mode
	// tables have ever been installed. Monotonic.
	Version uint64 `json:"version"`
	// Journal is the pending mutation-journal depth — nonzero only
	// inside an epoch-mode writer's republish round trip. A gauge.
	Journal int `json:"journal"`
	// Graces counts completed epoch-mode grace periods; QuietGraces
	// counts those that found no online reader at all (the scale-down
	// signal). Monotonic.
	Graces      uint64 `json:"graces"`
	QuietGraces uint64 `json:"quiet_graces"`
}

// Stats returns a snapshot of the map's adaptive state in the unified
// shape: the current protocol, the lifetime transition count, and the
// number of goroutines parked on the writer lock or a grace period.
func (mp *Map[K, V]) Stats() Stats {
	return Stats{
		Mode:     mapPublicMode(mp.eng.Mode()),
		Switches: mp.eng.Switches(),
		Waiters:  mp.wl.Stats().Waiters + mp.gq.Len(),
	}
}

// MapStats returns Stats plus the map-specific gauges.
func (mp *Map[K, V]) MapStats() MapStats {
	ms := MapStats{
		Stats:       mp.Stats(),
		Version:     mp.version.Load(),
		Journal:     int(mp.jdepth.Load()),
		Graces:      mp.graces.Load(),
		QuietGraces: mp.quietGraces.Load(),
	}
	if mp.shardsUp.Load() {
		ms.Shards = len(mp.shards)
	}
	return ms
}

// CheckInvariants verifies the map's quiescent-state invariants: the
// writer lock is free and sound, every shard lock is free, the epoch
// gate carries no claim and its mode bit agrees with the engine, the
// epoch cells sum to zero, the journal is empty, no grace waiter is
// parked, the published table's version equals the (monotone) version
// counter, the off-line copy is a full replica of the published table,
// and the live-key gauge equals the key count of the current mode's
// authoritative store. See the package note in check.go: quiescent
// diagnostics, not production code.
func (mp *Map[K, V]) CheckInvariants() error {
	if err := mp.wl.CheckInvariants(); err != nil {
		return fmt.Errorf("reactive: Map writer mutex: %w", err)
	}
	if err := mp.eng.Check(mapModeTable); err != nil {
		return fmt.Errorf("reactive: Map engine: %w", err)
	}
	if mp.shardsUp.Load() {
		for i := range mp.shards {
			if l := mp.shards[i].lock.Load(); l != 0 {
				return fmt.Errorf("reactive: Map shard %d lock held at quiescence", i)
			}
		}
	}
	g := mp.gate.Load()
	if g&rgClaim != 0 {
		return fmt.Errorf("reactive: Map epoch gate carries a writer claim at quiescence (gate %#x)", uint64(g))
	}
	if gateEpoch, engEpoch := g&rgEpoch != 0, mp.eng.Mode() == mapEpoch; gateEpoch != engEpoch {
		return fmt.Errorf("reactive: Map epoch gate mode bit %v disagrees with mode %d", gateEpoch, mp.eng.Mode())
	}
	if mp.ecellsUp.Load() {
		if sum := mp.cellSum(); sum != 0 {
			return fmt.Errorf("reactive: Map epoch cell deltas sum to %d at quiescence, want 0", sum)
		}
	}
	if n := len(mp.journal); n != 0 {
		return fmt.Errorf("reactive: Map journal holds %d mutations at quiescence, want 0", n)
	}
	if n := mp.gq.Len(); n != 0 {
		return fmt.Errorf("reactive: Map has %d grace waiters at quiescence", n)
	}
	if err := mp.gq.Check(); err != nil {
		return fmt.Errorf("reactive: Map grace queue: %w", err)
	}
	live := 0
	switch mp.eng.Mode() {
	case mapLocked:
		live = len(mp.table)
	case mapSharded:
		for i := range mp.shards {
			live += len(mp.shards[i].m)
		}
	default:
		t := mp.cur.Load()
		live = len(t.m)
		if t.ver != mp.version.Load() {
			return fmt.Errorf("reactive: Map published table version %d != version counter %d", t.ver, mp.version.Load())
		}
		if mp.spare != nil && len(mp.spare.m) != live {
			return fmt.Errorf("reactive: Map off-line copy holds %d keys, published table holds %d", len(mp.spare.m), live)
		}
	}
	if c := mp.count.Load(); int(c) != live {
		return fmt.Errorf("reactive: Map count gauge %d != live keys %d", c, live)
	}
	return nil
}
