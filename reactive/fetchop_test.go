package reactive

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/reactive/modal"
	"repro/reactive/policy"
)

func TestNewFetchOpRequiresOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFetchOp(nil, ...) must panic")
		}
	}()
	NewFetchOp(nil, 0)
}

func TestFetchOpStartsInCAS(t *testing.T) {
	f := NewFetchOp(func(a, b int64) int64 { return a + b }, 0)
	f.Apply(5)
	f.Apply(-2)
	if got := f.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
	if st := f.Stats(); st.Mode != ModeCAS || st.Switches != 0 {
		t.Fatalf("Stats = %+v, want cas mode, 0 switches", st)
	}
}

// TestFetchOpMaxAcrossModes drives a non-additive operation (running
// max, identity MinInt64) through all three protocols and checks the
// fold is exact in each — including negative operands, which only fold
// correctly if the base starts at the identity element rather than 0.
func TestFetchOpMaxAcrossModes(t *testing.T) {
	max := func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	}
	f := NewFetchOp(max, math.MinInt64)
	if got := f.Value(); got != math.MinInt64 {
		t.Fatalf("fresh Value = %d, want the identity %d", got, int64(math.MinInt64))
	}
	f.Apply(-5)
	if got := f.Value(); got != -5 {
		t.Fatalf("cas-mode max of {-5} = %d, want -5", got)
	}
	f.Apply(7)
	if got := f.Value(); got != 7 {
		t.Fatalf("cas-mode max = %d, want 7", got)
	}
	f.forceMode(t, fSharded)
	f.Apply(3)
	f.Apply(42)
	if got := f.Value(); got != 42 {
		t.Fatalf("sharded-mode max = %d, want 42", got)
	}
	f.forceMode(t, fCombining)
	for i := int64(0); i < 500; i++ {
		f.Apply(i - 250)
	}
	if got := f.Value(); got != 249 {
		t.Fatalf("combining-mode max = %d, want 249", got)
	}
}

// forceMode walks the accumulator to the target mode through the
// transition chain (the table permits only adjacent steps).
func (f *FetchOp) forceMode(t *testing.T, want modal.Mode) {
	t.Helper()
	for i := 0; f.eng.Mode() != want; i++ {
		cur := f.eng.Mode()
		next := cur + 1
		if cur > want {
			next = cur - 1
		}
		f.switchFop(cur, next)
		if i > 8 {
			t.Fatalf("could not force mode %d", want)
		}
	}
}

// TestFetchOpChainOnly: the transition table must not permit the
// CAS↔combining shortcut, mirroring the simulator's TTS↔tree gap.
func TestFetchOpChainOnly(t *testing.T) {
	if fopTable.Has(fCAS, fCombining) || fopTable.Has(fCombining, fCAS) {
		t.Fatal("fopTable permits a CAS↔combining shortcut")
	}
	for _, e := range []struct{ from, to modal.Mode }{
		{fCAS, fSharded}, {fSharded, fCAS}, {fSharded, fCombining}, {fCombining, fSharded},
	} {
		if !fopTable.Has(e.from, e.to) {
			t.Fatalf("fopTable missing the %d→%d chain edge", e.from, e.to)
		}
	}
}

// TestFetchOpDetectionChain walks the full detection chain end to end
// with the built-in streaks: contended Applies promote CAS→sharded,
// wide-fan-in reconciling Values promote sharded→combining, idle sweeps
// demote combining→sharded, and single-writer Values demote back to CAS.
func TestFetchOpDetectionChain(t *testing.T) {
	f := NewFetchOp(func(a, b int64) int64 { return a + b }, 0,
		WithSpinFailLimit(2), WithEmptyLimit(2))
	// Up: contended CAS applies.
	for i := 0; i < 2; i++ {
		f.noteContendedApply()
	}
	if f.Stats().Mode != ModeSharded {
		t.Fatalf("mode = %v after contended streak, want sharded", f.Stats().Mode)
	}
	// Up: every cell active across consecutive reconciling Values.
	cells := f.shardCells()
	for round := 0; round < 2; round++ {
		for i := range cells {
			cells[i].N.Add(1)
		}
		f.Value()
	}
	if f.Stats().Mode != ModeCombining {
		t.Fatalf("mode = %v after wide-fan-in Values, want combining", f.Stats().Mode)
	}
	// Down: sweeps that find ≤1 pending deposit.
	for i := 0; i < 2; i++ {
		f.Apply(1)
		f.Value()
	}
	if f.Stats().Mode != ModeSharded {
		t.Fatalf("mode = %v after idle combining sweeps, want sharded", f.Stats().Mode)
	}
	// Down: single-writer Values.
	for i := 0; i < 2; i++ {
		f.Apply(1)
		f.Value()
	}
	if f.Stats().Mode != ModeCAS {
		t.Fatalf("mode = %v after single-writer Values, want cas", f.Stats().Mode)
	}
	if got, want := f.Value(), int64(2+2+2*len(cells)); got != want {
		t.Fatalf("Value = %d after the full chain, want %d", got, want)
	}
	if f.Stats().Switches != 4 {
		t.Fatalf("switches = %d, want 4", f.Stats().Switches)
	}
}

// TestFetchOpInjectedPolicy: an always-switch policy rides each
// detection event through a transition immediately, in both directions.
func TestFetchOpInjectedPolicy(t *testing.T) {
	f := NewFetchOp(func(a, b int64) int64 { return a + b }, 0,
		WithPolicy(policy.AlwaysSwitch{}))
	f.noteContendedApply()
	if f.Stats().Mode != ModeSharded {
		t.Fatal("always-switch did not promote on first contended Apply")
	}
	f.Apply(1)
	f.Value() // single writer: demote
	if f.Stats().Mode != ModeCAS {
		t.Fatal("always-switch did not demote on single-writer Value")
	}
}

// TestFetchOpCombiningFoldsEagerly: in combining mode, updaters fold the
// cells into the shared word on their own once a batch accumulates — the
// base must advance without any Value call.
func TestFetchOpCombiningFoldsEagerly(t *testing.T) {
	f := NewFetchOp(func(a, b int64) int64 { return a + b }, 0)
	f.forceMode(t, fCombining)
	batch := f.combineBatch()
	for i := int64(0); i < 4*batch; i++ {
		f.Apply(1)
	}
	if got := f.base.Load(); got == 0 {
		t.Fatal("combining mode never folded cells into the base without a Value call")
	}
	if got := f.Value(); got != 4*batch {
		t.Fatalf("Value = %d, want %d", got, 4*batch)
	}
}

// TestFetchOpStressForcedModeSwitches is the acceptance stress test for
// the N=3 modal object: hammer Apply and Value from many goroutines
// while a forcer walks the mode chain in both directions as fast as it
// can, under the race detector when enabled. The timeout guard asserts
// no updater is stranded across any transition, and the final Value must
// account for every operation regardless of which protocol each landed
// in.
func TestFetchOpStressForcedModeSwitches(t *testing.T) {
	f := NewFetchOp(func(a, b int64) int64 { return a + b }, 0)
	const goroutines = 24
	iters := 3000
	if testing.Short() {
		iters = 800
	}
	stop := make(chan struct{})
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() { // forcer: walk the chain up and down through every edge
		defer fwg.Done()
		edges := []struct{ from, to modal.Mode }{
			{fCAS, fSharded}, {fSharded, fCombining}, {fCombining, fSharded}, {fSharded, fCAS},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := edges[i%len(edges)]
			f.switchFop(e.from, e.to)
			time.Sleep(50 * time.Microsecond)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f.Apply(1)
				if g == 0 && i%64 == 0 {
					f.Value() // reconciling reader in the mix
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		close(stop)
		t.Fatal("stranded updater: Apply calls did not complete across forced mode switches")
	}
	close(stop)
	fwg.Wait()
	if got := f.Value(); got != goroutines*int64(iters) {
		t.Fatalf("Value = %d, want %d", got, goroutines*int64(iters))
	}
	// A second Value must not double-count reconciled cells.
	if got := f.Value(); got != goroutines*int64(iters) {
		t.Fatalf("second Value = %d, want %d", got, goroutines*int64(iters))
	}
}
