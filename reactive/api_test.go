package reactive

import (
	"sync"
	"testing"
	"time"

	"repro/reactive/policy"
)

// TestSpinDetectionMatchesDocumentedStreak pins the documented detection
// semantics: DefaultSpinFailLimit *consecutive contended acquisitions*
// switch spin → park. (A prior implementation additionally required each
// acquisition to fail more than the limit individually, so switching took
// roughly twice the documented streak.)
func TestSpinDetectionMatchesDocumentedStreak(t *testing.T) {
	var m Mutex
	for i := 0; i < DefaultSpinFailLimit-1; i++ {
		m.noteSpinAcquire(1)
		if got := Mode(m.eng.Mode()); got != ModeSpin {
			t.Fatalf("switched after %d contended acquisitions, want %d", i+1, DefaultSpinFailLimit)
		}
	}
	m.noteSpinAcquire(1)
	if got := Mode(m.eng.Mode()); got != ModePark {
		t.Fatalf("mode = %v after %d consecutive contended acquisitions, want park", got, DefaultSpinFailLimit)
	}
	if m.Stats().Switches != 1 {
		t.Fatalf("switches = %d, want 1", m.Stats().Switches)
	}
}

// TestSpinDetectionStreakBroken: an uncontended acquisition resets the
// contended streak.
func TestSpinDetectionStreakBroken(t *testing.T) {
	var m Mutex
	for round := 0; round < 3; round++ {
		for i := 0; i < DefaultSpinFailLimit-1; i++ {
			m.noteSpinAcquire(1)
		}
		m.noteSpinAcquire(0) // uncontended: break the streak
	}
	if got := Mode(m.eng.Mode()); got != ModeSpin {
		t.Fatalf("mode = %v after broken streaks, want spin", got)
	}
}

// TestSpinDetectionSingleFailureCounts: one failed test&set makes an
// acquisition contended; it does not need to fail SpinFailLimit times on
// its own.
func TestSpinDetectionSingleFailureCounts(t *testing.T) {
	m := New(WithSpinFailLimit(1))
	m.noteSpinAcquire(1)
	if got := Mode(m.eng.Mode()); got != ModePark {
		t.Fatalf("mode = %v with SpinFailLimit=1 after one contended acquisition, want park", got)
	}
}

func TestNewDefaultsMatchZeroValue(t *testing.T) {
	m := New()
	var z Mutex
	if m.cfg.failLimit() != z.cfg.failLimit() ||
		m.cfg.emptyLim() != z.cfg.emptyLim() ||
		m.cfg.pollBudget() != z.cfg.pollBudget() {
		t.Fatal("New() tunables differ from the zero value's")
	}
	if m.cfg.failLimit() != DefaultSpinFailLimit ||
		m.cfg.emptyLim() != DefaultEmptyLimit ||
		m.cfg.pollBudget() != DefaultPollIters {
		t.Fatal("defaults do not match the package consts")
	}
}

func TestOptionsConfigureThresholds(t *testing.T) {
	m := New(WithSpinFailLimit(7), WithEmptyLimit(9), WithPollIters(11))
	if m.cfg.failLimit() != 7 || m.cfg.emptyLim() != 9 || m.cfg.pollBudget() != 11 {
		t.Fatalf("options not applied: got (%d,%d,%d)",
			m.cfg.failLimit(), m.cfg.emptyLim(), m.cfg.pollBudget())
	}
	for _, bad := range []func(){
		func() { WithSpinFailLimit(0) },
		func() { WithEmptyLimit(-1) },
		func() { WithPollIters(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("non-positive option value must panic")
				}
			}()
			bad()
		}()
	}
}

// TestInjectedPolicyAlwaysSwitch: with the always-switch policy a single
// contended acquisition changes protocols, regardless of the streak
// thresholds.
func TestInjectedPolicyAlwaysSwitch(t *testing.T) {
	m := New(WithPolicy(policy.AlwaysSwitch{}))
	m.noteSpinAcquire(1)
	if got := Mode(m.eng.Mode()); got != ModePark {
		t.Fatalf("mode = %v after one contended acquisition under always-switch, want park", got)
	}
}

// TestInjectedPolicyCompetitive: the 3-competitive policy accumulates
// residual cost (ResidualCheapHigh per contended acquisition) across
// streak breaks and switches when it crosses the threshold.
func TestInjectedPolicyCompetitive(t *testing.T) {
	m := New(WithPolicy(policy.NewCompetitive(3 * ResidualCheapHigh)))
	m.noteSpinAcquire(1)
	m.noteSpinAcquire(0) // streak break: competitive must not care
	m.noteSpinAcquire(1)
	if got := Mode(m.eng.Mode()); got != ModeSpin {
		t.Fatal("switched before cumulative residual crossed the threshold")
	}
	m.noteSpinAcquire(1)
	if got := Mode(m.eng.Mode()); got != ModePark {
		t.Fatalf("mode = %v after residual crossed threshold, want park", got)
	}
}

// TestDetectorRequiesces: once a decaying policy's pressure drains, the
// detector re-arms its fast-path elision (dirty flag clears), so the
// uncontended path stops touching the policy lock.
func TestDetectorRequiesces(t *testing.T) {
	m := New(WithPolicy(policy.NewHysteresis(3, 3)))
	m.noteSpinAcquire(1)
	if !m.eng.Dirty() {
		t.Fatal("dirty not set by a sub-optimal vote")
	}
	m.noteSpinAcquire(0) // optimal: hysteresis resets, policy quiescent
	if m.eng.Dirty() {
		t.Fatal("dirty not cleared after the policy re-quiesced")
	}
}

// TestInjectedPolicyDrivesBothDirections: hysteresis policy wired through
// both detection directions returns the mutex to spin mode.
func TestInjectedPolicyDrivesBothDirections(t *testing.T) {
	m := New(WithPolicy(policy.NewHysteresis(2, 3)))
	m.noteSpinAcquire(1)
	m.noteSpinAcquire(1)
	if got := Mode(m.eng.Mode()); got != ModePark {
		t.Fatalf("mode = %v, want park", got)
	}
	// Three uncontended unlocks in park mode switch back.
	for i := 0; i < 3; i++ {
		m.Lock()
		m.Unlock()
	}
	if got := Mode(m.eng.Mode()); got != ModeSpin {
		t.Fatalf("mode = %v after uncontended park-mode unlocks, want spin", got)
	}
	if m.Stats().Switches != 2 {
		t.Fatalf("switches = %d, want 2", m.Stats().Switches)
	}
}

// TestStressForcedModeSwitches hammers Lock/Unlock from many goroutines
// while protocol changes are forced in both directions, under the race
// detector when enabled. The timeout guard asserts that no waiter is
// stranded by a Park→Spin transition (the switch must wake a parked
// waiter) or loses a wakeup across any transition.
func TestStressForcedModeSwitches(t *testing.T) {
	m := New(WithPollIters(4)) // park quickly so transitions catch parked waiters
	const goroutines = 24
	iters := 400
	if testing.Short() {
		iters = 150
	}
	var wg sync.WaitGroup
	counter := 0
	stop := make(chan struct{})
	// Forcer: flip protocols as fast as possible, exercising the
	// waiter-handoff path of switchMode in both directions.
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				m.switchMode(ModeSpin, ModePark)
			} else {
				m.switchMode(ModePark, ModeSpin)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		close(stop)
		t.Fatalf("stranded waiter: only %d/%d ops completed across forced mode switches",
			counter, goroutines*iters)
	}
	close(stop)
	fwg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}
