// Package reactive provides adaptive synchronization primitives for Go
// programs, after Beng-Hong Lim's "Reactive Synchronization Algorithms for
// Multiprocessors" (MIT, 1994).
//
// The thesis's two ideas are (1) dynamically selecting the protocol that
// implements a synchronization operation based on run-time contention, and
// (2) two-phase waiting: poll until the cost of polling reaches Lpoll, then
// switch to a signaling (blocking) mechanism; with Lpoll ≈ 0.54·B the
// expected waiting cost is within e/(e−1) ≈ 1.58 of optimal for
// exponentially distributed waits.
//
// Mutex realizes both ideas to the extent the Go runtime allows. The Go
// scheduler owns thread placement and preemption, so cycle-exact spin-lock
// protocol behavior (the cache-invalidation effects the thesis measures on
// Alewife) is not observable here — the faithful reproduction of those
// experiments lives in the internal simulator packages. What carries over
// soundly to Go is:
//
//   - protocol-mode selection between a barging spin protocol (cheap,
//     best uncontended — the test-and-test-and-set analogue) and a parking
//     protocol with kernel-assisted wakeups (scalable, best contended — the
//     queue-lock analogue), switched by the thesis's detection heuristics
//     (failed-acquire streaks versus empty-waiter streaks); and
//   - two-phase waiting inside the parking protocol, with Lpoll expressed
//     in spin iterations calibrated against the parking cost.
//
// The zero value of each type is ready to use.
package reactive

import (
	"runtime"
	"sync/atomic"
)

// Mode identifies the protocol a Mutex is currently using.
type Mode uint32

// Mutex protocol modes.
const (
	// ModeSpin is the test-and-test-and-set analogue: waiters spin with
	// randomized exponential backoff; unlock releases the lock word for
	// anyone to barge on. Cheapest when contention is rare.
	ModeSpin Mode = iota
	// ModePark is the queue-lock analogue: waiters spin only through the
	// two-phase polling budget and then park on a FIFO semaphore; unlock
	// wakes the oldest parked waiter. Scalable under contention.
	ModePark
)

// String names the mode.
func (m Mode) String() string {
	if m == ModePark {
		return "park"
	}
	return "spin"
}

// Lock-word states.
const (
	unlocked  uint32 = 0
	locked    uint32 = 1
	contended uint32 = 2 // locked with (possibly) parked waiters
)

// Tunables, exported for experimentation; the defaults follow the thesis:
// switch to the scalable protocol after a streak of contended
// acquisitions, back after a streak of uncontended ones, and poll about
// half the cost of blocking before parking (Lpoll = 0.54·B).
const (
	// DefaultSpinFailLimit is the number of consecutive contended lock
	// acquisitions before switching ModeSpin → ModePark.
	DefaultSpinFailLimit = 3
	// DefaultEmptyLimit is the number of consecutive uncontended unlocks
	// before switching ModePark → ModeSpin.
	DefaultEmptyLimit = 8
	// DefaultPollIters is the two-phase polling budget in spin iterations
	// before parking (≈0.5·B worth of polling on current hardware).
	DefaultPollIters = 60
)

// Mutex is a reactive mutual-exclusion lock. The zero value is an unlocked
// mutex in spin mode. A Mutex must not be copied after first use.
type Mutex struct {
	state atomic.Uint32 // unlocked / locked / contended
	mode  atomic.Uint32 // Mode

	sema chan struct{} // FIFO park/wake channel (lazily created)
	init atomic.Uint32 // sema initialization latch

	waiters     atomic.Int32 // parked-or-parking waiters
	failStreak  atomic.Int32 // consecutive contended acquisitions
	emptyStreak atomic.Int32 // consecutive uncontended unlocks

	// switches counts protocol changes (see Stats).
	switches atomic.Uint64
}

// Stats reports the mutex's adaptive state.
type Stats struct {
	Mode     Mode
	Switches uint64
}

// Stats returns a snapshot of the mutex's adaptive state.
func (m *Mutex) Stats() Stats {
	return Stats{Mode: Mode(m.mode.Load()), Switches: m.switches.Load()}
}

func (m *Mutex) semaphore() chan struct{} {
	if m.init.Load() == 2 {
		return m.sema
	}
	if m.init.CompareAndSwap(0, 1) {
		m.sema = make(chan struct{}, 1)
		m.init.Store(2)
		return m.sema
	}
	for m.init.Load() != 2 {
		runtime.Gosched()
	}
	return m.sema
}

// TryLock attempts to acquire the mutex without waiting.
func (m *Mutex) TryLock() bool {
	return m.state.CompareAndSwap(unlocked, locked)
}

// Lock acquires the mutex, adapting its waiting protocol to contention.
func (m *Mutex) Lock() {
	// Optimistic fast path (the thesis's optimistic test&set).
	if m.state.CompareAndSwap(unlocked, locked) {
		m.failStreak.Store(0)
		return
	}
	if Mode(m.mode.Load()) == ModeSpin {
		m.lockSpin()
		return
	}
	m.lockPark()
}

// lockSpin is the test-and-test-and-set protocol with randomized
// exponential backoff. It migrates to the parking protocol if the mode
// changes mid-wait.
func (m *Mutex) lockSpin() {
	backoff := 1
	fails := 0
	for {
		// Read-poll (cached) before attempting the RMW.
		if m.state.Load() == unlocked && m.state.CompareAndSwap(unlocked, locked) {
			if fails > DefaultSpinFailLimit {
				// This acquisition was contended: vote to switch.
				if m.failStreak.Add(1) >= DefaultSpinFailLimit {
					m.switchMode(ModeSpin, ModePark)
				}
			} else {
				m.failStreak.Store(0)
			}
			return
		}
		fails++
		for i := 0; i < backoff; i++ {
			runtime.Gosched()
		}
		if backoff < 64 {
			backoff *= 2
		}
		if Mode(m.mode.Load()) == ModePark {
			m.lockPark()
			return
		}
	}
}

// lockPark is the parking protocol with two-phase waiting: poll through
// the polling budget, then park on the FIFO semaphore until an unlocker
// hands control back.
func (m *Mutex) lockPark() {
	// Phase one: poll.
	for i := 0; i < DefaultPollIters; i++ {
		if m.state.CompareAndSwap(unlocked, locked) {
			return
		}
		runtime.Gosched()
	}
	// Phase two: signal. Mark the lock contended and park.
	sema := m.semaphore()
	m.waiters.Add(1)
	defer m.waiters.Add(-1)
	for {
		// Announce a waiter so unlockers wake us, then re-check.
		old := m.state.Load()
		if old == unlocked {
			if m.state.CompareAndSwap(unlocked, contended) {
				return
			}
			continue
		}
		if old == locked && !m.state.CompareAndSwap(locked, contended) {
			continue
		}
		// Park until an unlock wakes someone.
		<-sema
		if m.state.CompareAndSwap(unlocked, contended) {
			return
		}
	}
}

// Unlock releases the mutex. It must be called by the goroutine that holds
// the lock.
func (m *Mutex) Unlock() {
	mode := Mode(m.mode.Load())
	old := m.state.Swap(unlocked)
	if old == unlocked {
		panic("reactive: Unlock of unlocked Mutex")
	}
	if old == contended || m.waiters.Load() > 0 {
		m.emptyStreak.Store(0)
		// Wake one parked waiter (non-blocking: capacity-1 channel).
		select {
		case m.semaphore() <- struct{}{}:
		default:
		}
		return
	}
	if mode == ModePark {
		// Uncontended unlock in the scalable protocol: vote to switch back
		// to the cheap protocol.
		if m.emptyStreak.Add(1) >= DefaultEmptyLimit {
			m.switchMode(ModePark, ModeSpin)
		}
	}
}

// switchMode performs a protocol change from want to next, at most once
// per detection round.
func (m *Mutex) switchMode(want, next Mode) {
	if m.mode.CompareAndSwap(uint32(want), uint32(next)) {
		m.switches.Add(1)
		m.failStreak.Store(0)
		m.emptyStreak.Store(0)
		if next == ModeSpin {
			// Ensure no parked waiter is stranded across the change.
			select {
			case m.semaphore() <- struct{}{}:
			default:
			}
		}
	}
}
