// Package reactive provides adaptive synchronization primitives for Go
// programs, after Beng-Hong Lim's "Reactive Synchronization Algorithms for
// Multiprocessors" (MIT, 1994).
//
// The thesis's two ideas are (1) dynamically selecting the protocol that
// implements a synchronization operation based on run-time contention, and
// (2) two-phase waiting: poll until the cost of polling reaches Lpoll, then
// switch to a signaling (blocking) mechanism; with Lpoll ≈ 0.54·B the
// expected waiting cost is within e/(e−1) ≈ 1.58 of optimal for
// exponentially distributed waits.
//
// Four primitives realize both ideas to the extent the Go runtime allows.
// The Go scheduler owns thread placement and preemption, so cycle-exact
// spin-lock protocol behavior (the cache-invalidation effects the thesis
// measures on Alewife) is not observable here — the faithful reproduction
// of those experiments lives in the internal simulator packages. What
// carries over soundly to Go is:
//
//   - protocol-mode selection among the modes of a modal object (the
//     reactive/modal engine): a cheap protocol (best uncontended), a
//     scalable protocol (best contended) — and, for FetchOp, a third,
//     batching protocol beyond that — switched by the thesis's detection
//     heuristics. Mutex selects between barging spin and FIFO parking,
//     Counter and FetchOp among a single compare-and-swap word, sharded
//     per-processor cells, and batched combining, and RWMutex between
//     spinning and parking readers and, orthogonally, between a
//     centralized reader count and BRAVO-style sharded per-processor
//     reader slots; and
//   - two-phase waiting wherever a primitive blocks, with Lpoll expressed
//     in spin iterations calibrated against the parking cost.
//
// Every wait is cancellable: LockCtx, RLockCtx, TryLockFor, ValueCtx,
// and LoadCtx bound an acquisition by a context's cancellation or
// deadline (the semaphore.Weighted.Acquire idiom), returning ctx.Err()
// promptly in either wait phase, while Lock, RLock, Value, and Load stay
// thin zero-allocation wrappers over the same paths. All phase-two
// parking goes through one shared waiter-queue engine
// (reactive/internal/waitq): an intrusive FIFO of per-goroutine wait
// nodes whose handoff-or-abandon discipline passes a wakeup delivered to
// a cancelled waiter on to the next one, so cancellation can never
// strand a waiter (DESIGN.md §5). Every primitive reports the same
// Stats shape: current mode, committed protocol changes, parked
// waiters, and (for RWMutex) the reader-registration protocol. Stats
// marshals to JSON, Stats.Sub turns two snapshots into an interval
// delta with documented monotonic-counter semantics (DESIGN.md §6),
// and the reactive/reactivehttp subpackage exports a registry of named
// primitives over expvar and a /debug/reactive HTTP endpoint.
//
// The zero value of each type is ready to use with the package-default
// tunables. New, NewCounter, NewRWMutex, and NewFetchOp accept Options
// that change the detection thresholds (WithSpinFailLimit,
// WithEmptyLimit), the polling budget (WithPollIters), the starting
// protocol (WithInitialMode), or replace the built-in streak detection
// with any policy from the reactive/policy package (WithPolicy) — the
// same Policy interface the simulator's reactive algorithms consume,
// up to policy.Congestion's AIMD window over an RFC 6298-style
// residual-cost estimator.
// All mode changes, in every primitive, go through the same
// reactive/modal transition engine the simulator's algorithms validate
// against, and the sharded protocols select their per-processor shard
// through one affinity substrate (reactive/internal/affinity, the
// runtime's procPin pair with a portable fallback).
package reactive

import (
	"context"
	"sync/atomic"
	"time"

	"repro/reactive/internal/chaos"
	"repro/reactive/internal/waitq"
	"repro/reactive/modal"
	"repro/reactive/policy"
)

// Policy directions shared by every primitive in this package: 0 votes
// toward a more scalable protocol (contention appeared while a cheaper
// protocol was selected), 1 votes toward a cheaper protocol (contention
// disappeared while a more scalable protocol was selected). These match
// the direction conventions of the simulator's reactive algorithms.
const (
	dirScaleUp   policy.Direction = 0
	dirScaleDown policy.Direction = 1
)

// Mode identifies the protocol an adaptive primitive is currently using.
type Mode uint32

// Protocol modes. Mutex and RWMutex alternate between ModeSpin and
// ModePark; Counter and FetchOp move along the chain ModeCAS ↔
// ModeSharded ↔ ModeCombining; RWMutex's reader registration protocol
// (Stats().Readers) moves along its own chain ModeCAS (centralized
// word) ↔ ModeSharded (per-P slots) ↔ ModeEpoch (per-P epoch stamps);
// Map moves along the chain ModeLocked (one table under the adaptive
// mutex) ↔ ModeSharded (per-shard locks) ↔ ModeEpoch (published
// immutable table, journaled writers).
const (
	// ModeSpin is the test-and-test-and-set analogue: waiters spin with
	// randomized exponential backoff; unlock releases the lock word for
	// anyone to barge on. Cheapest when contention is rare.
	ModeSpin Mode = iota
	// ModePark is the queue-lock analogue: waiters spin only through the
	// two-phase polling budget and then park on a FIFO semaphore; unlock
	// wakes the oldest parked waiter. Scalable under contention.
	ModePark
	// ModeCAS is Counter's and FetchOp's cheap protocol: one shared word
	// updated by compare-and-swap. The TTS-lock fetch-and-op analogue.
	ModeCAS
	// ModeSharded is Counter's and FetchOp's scalable protocol:
	// per-processor cells reconciled by Load/Value. The parallel-update
	// middle protocol, analogous to the simulator's queue-based
	// fetch-and-op: larger fixed cost than ModeCAS, far better under
	// update contention, but every read pays a full reconciling sweep.
	ModeSharded
	// ModeCombining is FetchOp's (and Counter's) most scalable protocol,
	// the combining-tree analogue: updates still land in per-processor
	// cells, but updaters batch-fold the cells into the shared word once
	// enough operations accumulate, so reads stay cheap and the shared
	// word is touched once per batch instead of once per operation. Best
	// when heavy updates and frequent reads coincide.
	ModeCombining
	// ModeEpoch is RWMutex's most scalable reader registration protocol,
	// the userspace-RCU read-side analogue: RLock publishes only a local
	// online stamp (a count plus the global grace epoch it observed) in
	// its per-P cell and RUnlock clears it — neither touches a shared
	// word, so contended reads stop generating coherence traffic
	// entirely. Writers advance the global grace epoch and sweep the
	// cells until every online reader has observed the advance or gone
	// offline. Best when reads vastly outnumber writes; writers pay a
	// full grace period.
	ModeEpoch
	// ModeLocked is Map's cheapest protocol: one hash table guarded by
	// the adaptive Mutex, so every operation pays one lock word and the
	// detection ramp is the mutex's own spin/park machinery. Cheapest
	// when operations are rare or single-threaded; collapses when
	// readers and writers collide, which is what promotes the map to
	// ModeSharded.
	ModeLocked
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModePark:
		return "park"
	case ModeCAS:
		return "cas"
	case ModeSharded:
		return "sharded"
	case ModeCombining:
		return "combining"
	case ModeEpoch:
		return "epoch"
	case ModeLocked:
		return "locked"
	}
	return "spin"
}

// Lock-word states.
const (
	unlocked  uint32 = 0
	locked    uint32 = 1
	contended uint32 = 2 // locked with (possibly) parked waiters
)

// Engine-local mode indices for the spin/park modal objects (Mutex,
// RWMutex). They coincide with the public ModeSpin/ModePark values, so
// Stats conversion is the identity.
const (
	mSpin modal.Mode = 0
	mPark modal.Mode = 1
)

// spinParkTable is the 2-mode transition table shared by Mutex and
// RWMutex: the degenerate — but still consensus-serialized — modal
// object of the thesis's reactive spin lock.
var spinParkTable = modal.NewTable(2, []modal.Transition{
	{From: mSpin, To: mPark, Dir: dirScaleUp, Residual: ResidualCheapHigh},
	{From: mPark, To: mSpin, Dir: dirScaleDown, Residual: ResidualScalableLow},
})

// Default tunables; the defaults follow the thesis: switch to the scalable
// protocol after a streak of contended acquisitions, back after a streak
// of uncontended ones, and poll about half the cost of blocking before
// parking (Lpoll = 0.54·B). Override per primitive with WithSpinFailLimit,
// WithEmptyLimit, and WithPollIters.
const (
	// DefaultSpinFailLimit is the number of consecutive contended lock
	// acquisitions before switching ModeSpin → ModePark (and the analogous
	// scale-up thresholds of Counter, FetchOp, and RWMutex).
	DefaultSpinFailLimit = 3
	// DefaultEmptyLimit is the number of consecutive uncontended unlocks
	// before switching ModePark → ModeSpin (and the analogous scale-down
	// thresholds of Counter, FetchOp, and RWMutex).
	DefaultEmptyLimit = 8
	// DefaultPollIters is the two-phase polling budget in spin iterations
	// before parking (≈0.5·B worth of polling on current hardware).
	DefaultPollIters = 60
)

// backoffCeiling caps the mean pause length (modal.Backoff.Max, in
// scheduler yields) of every short-term retry loop in this package —
// contended CAS-mode updates, reconciling-sweep lock acquisition, and
// gate-blocked reader spins. It is deliberately below
// modal.DefaultBackoffMax: these loops guard windows a peer exits
// quickly (one CAS, one sweep, one writer critical section), so long
// pauses only add latency. One constant so the ceiling is tuned in one
// place.
const backoffCeiling = 16

// Mutex is a reactive mutual-exclusion lock. The zero value is an unlocked
// mutex in spin mode with the package-default tunables; New builds one
// with explicit Options. A Mutex must not be copied after first use.
type Mutex struct {
	state atomic.Uint32 // unlocked / locked / contended

	// eng is the modal-object engine holding the epoch-packed mode word
	// and the detection state; all protocol changes go through its
	// consensus CAS.
	eng modal.Engine

	// q holds the parked waiters of the two-phase parking protocol: the
	// shared waiter-queue engine every primitive in this package blocks
	// through (see reactive/internal/waitq and DESIGN.md §5).
	q waitq.Queue

	cfg config
}

// New builds a Mutex configured by opts. New() with no options is
// equivalent to a zero-value Mutex.
func New(opts ...Option) *Mutex {
	m := &Mutex{}
	m.cfg.apply(opts)
	m.eng.SetPolicy(m.cfg.pol)
	if m.cfg.initModeSet {
		switch m.cfg.initMode {
		case ModeSpin: // the zero mode
		case ModePark:
			m.eng.TryCommit(spinParkTable, mSpin, mPark)
		default:
			panic("reactive: New supports initial modes ModeSpin and ModePark")
		}
	}
	return m
}

// failLimit, emptyLimit, pollIters resolve the configured tunables,
// falling back to the package defaults so the zero value works.
func (c *config) failLimit() int32 {
	if c.spinFailLimit > 0 {
		return c.spinFailLimit
	}
	return DefaultSpinFailLimit
}

func (c *config) emptyLim() int32 {
	if c.emptyLimit > 0 {
		return c.emptyLimit
	}
	return DefaultEmptyLimit
}

func (c *config) pollBudget() int32 {
	if c.pollIters > 0 {
		return c.pollIters
	}
	return DefaultPollIters
}

// Stats is the one observability surface shared by every primitive in
// this package: the protocol currently selected, how many protocol
// changes have been committed, how many goroutines are blocked in a
// phase-two wait, and — for RWMutex only — the orthogonal reader
// registration protocol's state.
//
// A Stats value marshals to JSON with lower-case field names and the
// Mode rendered as its protocol name ("spin", "park", "cas", "sharded",
// "combining", "epoch"); Sub converts two snapshots into a delta whose monotonic
// counters can be divided by the polling interval to obtain rates (see
// DESIGN.md §6 and the reactive/reactivehttp package).
type Stats struct {
	// Mode is the currently selected protocol: the wait protocol for
	// Mutex and RWMutex (ModeSpin/ModePark), the update protocol for
	// Counter and FetchOp (ModeCAS/ModeSharded/ModeCombining). A gauge:
	// Sub keeps the newer snapshot's value.
	Mode Mode `json:"mode"`
	// Switches counts the protocol changes committed by that mode's
	// engine. Monotonic: Sub returns the difference.
	Switches uint64 `json:"switches"`
	// Waiters counts the goroutines currently parked (or committing to
	// park) on the primitive's waiter queues: lockers for Mutex; parked
	// readers, a draining writer, and writers queued on the writer mutex
	// for RWMutex; reconciling readers waiting for the sweep window for
	// Counter and FetchOp. A gauge: Sub keeps the newer snapshot's value.
	Waiters int `json:"waiters"`
	// Readers describes RWMutex's reader registration protocol
	// (centralized CAS word vs BRAVO-style sharded per-P slots); nil for
	// every other primitive.
	Readers *ReaderStats `json:"readers,omitempty"`
}

// ReaderStats describes RWMutex's reader registration modal object — the
// protocol readers use to register when no writer is about, orthogonal to
// how they wait when one is.
type ReaderStats struct {
	// Mode is ModeCAS while readers register on the centralized word,
	// ModeSharded while they register in per-P slots, ModeEpoch while
	// they publish per-P epoch stamps. A gauge under Sub.
	Mode Mode `json:"mode"`
	// Switches counts committed registration-protocol changes.
	// Monotonic: Sub returns the difference.
	Switches uint64 `json:"switches"`
	// Shards is the per-P cell count once a per-P array (sharded slots
	// or epoch cells) exists, 0 while the lock has only ever registered
	// readers centrally. A gauge under Sub.
	Shards int `json:"shards"`
	// Graces counts completed writer grace periods: drains that ran
	// while the epoch registration protocol was selected, each of which
	// advanced the global grace epoch and swept the per-P cells until
	// every online reader had observed the advance or gone offline.
	// Monotonic: Sub returns the difference.
	Graces uint64 `json:"graces"`
	// QuietGraces counts the grace periods that found no online epoch
	// reader at all — the epoch machinery going unused across a whole
	// writer round, the scale-down signal back toward sharded slots.
	// Monotonic: Sub returns the difference.
	QuietGraces uint64 `json:"quiet_graces"`
}

// Stats returns a snapshot of the mutex's adaptive state.
func (m *Mutex) Stats() Stats {
	return Stats{
		Mode:     Mode(m.eng.Mode()),
		Switches: m.eng.Switches(),
		Waiters:  m.q.Len(),
	}
}

// TryLock attempts to acquire the mutex without waiting.
func (m *Mutex) TryLock() bool {
	return m.state.CompareAndSwap(unlocked, locked)
}

// TryLockFor attempts to acquire the mutex, waiting (adaptively, like
// Lock) for at most d. It reports whether the mutex was acquired.
func (m *Mutex) TryLockFor(d time.Duration) bool {
	if m.lockFast() {
		return true
	}
	if d <= 0 {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return m.LockCtx(ctx) == nil
}

// Lock acquires the mutex, adapting its waiting protocol to contention.
// It is the uncancellable special case of LockCtx — equivalent to
// LockCtx(context.Background()), and exactly as cheap: the context plumbing
// costs nothing until a waiter actually blocks.
func (m *Mutex) Lock() {
	if m.lockFast() {
		return
	}
	m.lockSlow(nil, nil)
}

// lockFast is the optimistic fast path (the thesis's optimistic
// test&set), shared by Lock and LockCtx.
func (m *Mutex) lockFast() bool {
	if m.state.CompareAndSwap(unlocked, locked) {
		// Detection is mode-directional, as in the simulator's reactive
		// lock: spin mode monitors the cheap→scalable direction only.
		// With an injected policy the notification runs under a
		// panic guard — the lock is already held here, and a panicking
		// policy must not strand it. The built-in path stays bare: it is
		// pure atomics and the guard's defer would tax every
		// uncontended acquisition.
		if m.eng.Mode() == mSpin {
			if m.eng.Policy() == nil {
				m.eng.Good(spinParkTable, mSpin, mPark)
			} else {
				m.goodHolding()
			}
		}
		return true
	}
	return false
}

// goodHolding delivers a spin-mode Optimal notification while the
// caller holds the lock, releasing the lock before re-raising a policy
// panic so a faulty injected policy surfaces as a crash, not a wedged
// mutex.
func (m *Mutex) goodHolding() {
	defer func() {
		if r := recover(); r != nil {
			m.Unlock()
			panic(r)
		}
	}()
	m.eng.Good(spinParkTable, mSpin, mPark)
}

// LockCtx acquires the mutex like Lock, but gives up when ctx is
// cancelled or its deadline passes, returning ctx.Err(). The error is
// returned promptly in both wait protocols: a polling waiter stops
// mid-budget, and a parked waiter is unparked. A waiter whose
// cancellation races an Unlock's wakeup passes the wakeup on to the next
// waiter before returning, so a cancelled acquisition can never strand
// the lock (see DESIGN.md §5 for the proof). On a cancelled context
// LockCtx returns without acquiring; on a nil error the caller holds the
// lock and must Unlock it.
func (m *Mutex) LockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.lockFast() {
		return nil
	}
	return m.lockSlow(ctx, ctx.Done())
}

// lockSlow dispatches a contended acquisition to the selected waiting
// protocol. A nil ctx (and done) means the wait is uncancellable; the
// nil-ness of done, not ctx, gates every cancellation check so Lock pays
// nothing for the context plumbing.
func (m *Mutex) lockSlow(ctx context.Context, done <-chan struct{}) error {
	if m.eng.Mode() == mSpin {
		return m.lockSpin(ctx, done)
	}
	return m.lockPark(ctx, done)
}

// noteSpinAcquire records the outcome of one spin-mode acquisition with
// the detection machinery: an acquisition that failed at least one
// test&set before succeeding was contended and votes toward the parking
// protocol; an immediate acquisition breaks the streak. With the built-in
// detection, SpinFailLimit consecutive contended acquisitions switch
// ModeSpin → ModePark — exactly the documented streak semantics.
func (m *Mutex) noteSpinAcquire(fails int) {
	// The caller holds the lock; with an injected policy the
	// notifications run under a panic guard (as in lockFast) so a
	// panicking policy cannot strand it.
	if m.eng.Policy() != nil {
		defer func() {
			if r := recover(); r != nil {
				m.Unlock()
				panic(r)
			}
		}()
	}
	if fails == 0 {
		m.eng.Good(spinParkTable, mSpin, mPark)
		return
	}
	if m.eng.Vote(spinParkTable, mSpin, mPark, m.cfg.failLimit()) {
		m.switchMode(ModeSpin, ModePark)
	}
}

// lockSpin is the test-and-test-and-set protocol with randomized
// exponential backoff. It migrates to the parking protocol if the mode
// changes mid-wait, and gives up between attempts once done closes.
func (m *Mutex) lockSpin(ctx context.Context, done <-chan struct{}) error {
	var bo modal.Backoff
	fails := 0
	for {
		// Read-poll (cached) before attempting the RMW.
		if m.state.Load() == unlocked && m.state.CompareAndSwap(unlocked, locked) {
			m.noteSpinAcquire(fails)
			return nil
		}
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		fails++
		bo.Pause()
		if m.eng.Mode() == mPark {
			return m.lockPark(ctx, done)
		}
	}
}

// lockPark is the parking protocol with two-phase waiting: poll through
// the (deadline-aware) polling budget, then park on the waiter queue
// until an unlocker grants a wakeup. Grants are hints, not ownership
// transfers — the woken waiter re-competes for the state word — so the
// protocol's invariant is purely about wakeups: whenever the lock is
// released with a waiter announced, one grant is issued, and any waiter
// that stops waiting while holding a grant (cancellation, or an
// acquisition that raced the grant) passes it on via Abandon.
func (m *Mutex) lockPark(ctx context.Context, done <-chan struct{}) error {
	// Phase one: poll.
	ok, aborted := modal.PollCh(m.cfg.pollBudget(), done, func() bool {
		return m.state.CompareAndSwap(unlocked, locked)
	})
	if ok {
		return nil
	}
	if aborted {
		return ctx.Err()
	}
	// Phase two: signal. Announce the waiter, mark the lock contended,
	// and park.
	w := waitq.Get()
	defer waitq.Put(w)
	for {
		// Announce-then-check: the node must be queued before the state
		// word says "contended", so the unlock that observes contended
		// (or a queued waiter) always has someone to grant to.
		m.q.Push(w)
		chaos.Point("mutex.park.announced")
		for {
			old := m.state.Load()
			if old == unlocked {
				if m.state.CompareAndSwap(unlocked, contended) {
					// Acquired while queued: leave, passing on any grant
					// that already raced in.
					m.q.Abandon(w)
					return nil
				}
				continue
			}
			if old == contended || m.state.CompareAndSwap(locked, contended) {
				break
			}
		}
		if done == nil {
			<-w.Ready()
			continue
		}
		select {
		case <-w.Ready():
		case <-done:
			// Handoff-or-abandon: if a grant already raced our
			// cancellation, Abandon forwards it so no waiter is stranded.
			m.q.Abandon(w)
			return ctx.Err()
		}
	}
}

// Unlock releases the mutex. It must be called by the goroutine that holds
// the lock.
func (m *Mutex) Unlock() {
	mode := m.eng.Mode()
	old := m.state.Swap(unlocked)
	if old == unlocked {
		panic("reactive: Unlock of unlocked Mutex")
	}
	chaos.Point("mutex.unlock.release")
	if old == contended || m.q.Len() > 0 {
		// Wake the oldest parked waiter (a no-op if every announced
		// waiter is still pre-park: their post-announce state check
		// covers this release) before notifying the engine: Good may call
		// into an injected policy, and a panic there must not strand the
		// waiter this release owes a wakeup.
		m.q.Grant()
		if mode == mPark {
			m.eng.Good(spinParkTable, mPark, mSpin)
		}
		return
	}
	if mode == mPark {
		// Uncontended unlock in the scalable protocol: vote to switch back
		// to the cheap protocol.
		if m.eng.Vote(spinParkTable, mPark, mSpin, m.cfg.emptyLim()) {
			m.switchMode(ModePark, ModeSpin)
		}
	}
}

// switchMode performs a protocol change from want to next through the
// engine's consensus word — at most one caller wins each epoch, so the
// change happens at most once per detection round.
func (m *Mutex) switchMode(want, next Mode) {
	if m.eng.TryCommit(spinParkTable, modal.Mode(want), modal.Mode(next)) {
		if next == ModeSpin {
			// Ensure no parked waiter is stranded across the change: one
			// wakeup suffices, because the woken waiter re-establishes the
			// contended state before re-parking, which keeps the unlock
			// side granting.
			m.q.Grant()
		}
	}
}
