package reactive

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMutualExclusion(t *testing.T) {
	var m Mutex
	var wg sync.WaitGroup
	counter := 0
	const goroutines, iters = 16, 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d", counter, goroutines*iters)
	}
}

func TestMutualExclusionWithContention(t *testing.T) {
	var m Mutex
	var inCS atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Lock()
				if inCS.Add(1) != 1 {
					t.Error("mutual exclusion violated")
				}
				for k := 0; k < 100; k++ {
					runtime.Gosched()
				}
				inCS.Add(-1)
				m.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on free mutex failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held mutex succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after unlock failed")
	}
	m.Unlock()
}

func TestUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var m Mutex
	m.Unlock()
}

func TestSwitchesToParkUnderContention(t *testing.T) {
	var m Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2*runtime.GOMAXPROCS(0)+2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Lock()
				for k := 0; k < 200; k++ {
					runtime.Gosched()
				}
				m.Unlock()
			}
		}()
	}
	deadline := time.After(3 * time.Second)
	for m.Stats().Mode != ModePark {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Skip("contention never detected on this host (single CPU?)")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if m.Stats().Switches == 0 {
		t.Fatal("no protocol switches recorded")
	}
}

func TestReturnsToSpinWhenIdle(t *testing.T) {
	var m Mutex
	m.switchMode(ModeSpin, ModePark) // force park mode
	for i := 0; i < 4*DefaultEmptyLimit; i++ {
		m.Lock()
		m.Unlock()
	}
	if got := m.Stats().Mode; got != ModeSpin {
		t.Fatalf("mode = %v after uncontended unlocks, want spin", got)
	}
}

func TestNoLostWakeups(t *testing.T) {
	// Hammer lock/unlock with goroutines forced through the park path.
	var m Mutex
	m.switchMode(ModeSpin, ModePark)
	var wg sync.WaitGroup
	total := atomic.Int64{}
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				m.Lock()
				total.Add(1)
				m.Unlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("probable lost wakeup: %d/%d ops completed", total.Load(), 32*300)
	}
}

func TestZeroValueReady(t *testing.T) {
	var m Mutex
	m.Lock()
	m.Unlock()
	if m.Stats().Mode != ModeSpin {
		t.Fatal("zero value should start in spin mode")
	}
}

func BenchmarkUncontended(b *testing.B) {
	var m Mutex
	b.Run("reactive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	var sm sync.Mutex
	b.Run("sync.Mutex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sm.Lock()
			sm.Unlock()
		}
	})
}

func BenchmarkContended(b *testing.B) {
	b.Run("reactive", func(b *testing.B) {
		var m Mutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				m.Lock()
				m.Unlock()
			}
		})
	})
	b.Run("sync.Mutex", func(b *testing.B) {
		var m sync.Mutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				m.Lock()
				m.Unlock()
			}
		})
	})
}
