package reactive

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/reactive/internal/affinity"
	"repro/reactive/internal/waitq"
	"repro/reactive/modal"
)

// rwBias is the writer's claim on the reader count: Lock subtracts it so
// the count is negative for exactly as long as a writer is draining
// readers or holding the lock. It bounds the number of simultaneous
// readers.
const rwBias = 1 << 29

// Engine-local mode indices for the reader-registration modal object.
// The public Stats mapping (Stats().Readers) is ModeCAS + index, matching
// FetchOp's convention: the centralized word is the cheap single-word
// protocol, the per-P slots the sharded one.
const (
	rCentral modal.Mode = 0
	rSharded modal.Mode = 1
)

// readerShardTable is the 2-mode transition table of RWMutex's reader
// registration protocol (centralized word ↔ BRAVO-style per-P slots),
// orthogonal to the spin↔park wait table the same type also runs on.
var readerShardTable = modal.NewTable(2, []modal.Transition{
	{From: rCentral, To: rSharded, Dir: dirScaleUp, Residual: ResidualCheapHigh},
	{From: rSharded, To: rCentral, Dir: dirScaleDown, Residual: ResidualScalableLow},
})

// RWReaderTable returns the transition table RWMutex's reader
// registration protocol runs on: mode index 0 = ModeCAS (centralized
// word), 1 = ModeSharded (per-P slots) — mode index i is the public
// mode ModeCAS + i, matching FetchOpTable's convention. The table is
// immutable and shared; it is exported so harnesses and experiments can
// drive the exact state machine the primitive uses rather than a
// hand-maintained copy.
func RWReaderTable() *modal.Table { return readerShardTable }

// RWMutex is a reactive reader/writer lock. Writers are serialized by an
// embedded reactive Mutex (itself adaptive); on top of that this type
// runs two orthogonal modal objects over its readers:
//
// How readers *wait* when a writer has claimed the lock (Stats().Mode):
//
//   - ModeSpin — readers spin with randomized exponential backoff until
//     the writer's release lets them re-register. Cheapest when writer
//     critical sections are short.
//   - ModePark — readers poll through the two-phase polling budget and
//     then park on the shared waiter queue the releasing writer
//     broadcasts into. Scalable when writers hold the lock long enough
//     that spinning readers burn whole scheduler quanta.
//
// How readers *register* when no writer is about (Stats().Readers):
//
//   - ModeCAS — readers compare-and-swap one centralized reader count.
//     Cheapest for occasional reads, but every RLock/RUnlock from every
//     core bounces that one cache line.
//   - ModeSharded — BRAVO-style sharded registration: each reader
//     deposits a +1 in its processor's padded slot (selected through the
//     per-P affinity substrate) and a writer drains by sweeping the
//     slots. Read-dominated workloads scale with cores instead of
//     serializing on coherence traffic; writers pay a slot sweep.
//
// Wait-protocol detection mirrors Mutex: a reader whose wait exceeded
// the polling budget votes toward ModePark (SpinFailLimit consecutive
// such waits switch); a writer release that found no parked readers
// votes toward ModeSpin (EmptyLimit consecutive such releases switch
// back). Registration detection: a reader whose centralized CAS lost to
// another *reader* votes toward ModeSharded (SpinFailLimit consecutive
// losses switch); a writer whose drain found the lock already quiet
// votes toward ModeCAS (EmptyLimit consecutive quiet drains switch
// back). Registration-protocol changes are committed only under full
// writer exclusion, so no reader's RLock/RUnlock pair ever spans one.
//
// Readers register by compare-and-swap from a non-negative count (or by
// a slot deposit re-validated against the writer claim), never by a
// blind increment, so a reader can become active only while no writer
// claim is in place, and a writer enters its critical section only
// after the centralized count and every slot show zero active readers —
// mutual exclusion holds by construction. The cost is that writers are
// strictly preferred: readers arriving during a writer's drain or hold
// wait for its release, and a stream of back-to-back writers can keep
// readers waiting longer than sync.RWMutex would.
//
// LockCtx and RLockCtx are the cancellation-aware acquisitions: both
// return ctx.Err() promptly when ctx ends mid-wait, in either wait
// protocol. A writer cancelled while draining readers retracts its claim
// and wakes any readers it had parked, so a cancelled LockCtx leaves the
// lock exactly as it found it.
//
// The zero value is an unlocked RWMutex in spin mode with centralized
// registration and the package-default tunables; NewRWMutex builds one
// with explicit Options. An RWMutex must not be copied after first use.
// As with sync.RWMutex, recursive read locking is prohibited: if a
// goroutine holds the read lock while anything performs a write
// acquisition — an application writer, or a reader-driven registration
// protocol change, which takes the write lock itself — a nested RLock
// deadlocks, so even a writer-free program must not nest read locks.
// Calling RUnlock without a matching RLock panics in centralized mode;
// in sharded mode it is undetectable (the slots admit no cheap
// per-reader check) and leaves the lock permanently wedged.
type RWMutex struct {
	w Mutex // serializes writers; adaptive in its own right

	// readerCount is the centralized registration word: the number of
	// centrally-registered active readers, minus rwBias while a writer
	// has claimed the lock. The claim bit doubles as the gate sharded
	// readers validate against, so the word stays authoritative for
	// writer exclusion in both registration modes.
	readerCount atomic.Int32

	// eng selects the reader *wait* protocol (spin ↔ park); reng selects
	// the reader *registration* protocol (centralized ↔ sharded). All
	// protocol changes go through the respective engine's consensus CAS.
	eng  modal.Engine
	reng modal.Engine

	// slots are the per-P reader-registration slots (lazily built, one
	// coherence granule each). Slot values are deltas, not occupancies:
	// a reader may deposit its +1 in one slot and its -1 in another
	// after migrating, so only the sum is meaningful — zero iff no
	// sharded reader is active (see drainReaders for why a sweep cannot
	// misread that).
	slots     []affinity.Cell
	slotsOnce sync.Once
	slotsUp   atomic.Bool

	// rq holds parked readers (phase two of the reader wait protocol);
	// a releasing writer broadcasts into it. wq holds the one draining
	// writer parked waiting for active readers to leave; the last
	// reader out grants into it. Both run on the shared waiter-queue
	// engine (reactive/internal/waitq).
	rq waitq.Queue
	wq waitq.Queue

	cfg config
}

// NewRWMutex builds an RWMutex configured by opts. NewRWMutex() with no
// options is equivalent to a zero-value RWMutex. The threshold and
// polling options also configure the embedded writer mutex and the
// registration protocol's streaks. A policy installed with WithPolicy
// governs only the reader wait protocol: policy instances must not be
// shared between primitives — or between the engines of one primitive —
// so the writer mutex and the registration engine always use the
// built-in streak detection (with the same thresholds).
func NewRWMutex(opts ...Option) *RWMutex {
	rw := &RWMutex{}
	rw.cfg.apply(opts)
	rw.eng.SetPolicy(rw.cfg.pol)
	rw.w.cfg = rw.cfg
	rw.w.cfg.pol = nil
	rw.w.cfg.initModeSet = false
	if rw.cfg.initModeSet {
		switch rw.cfg.initMode {
		case ModeSpin, ModeCAS: // the zero modes of the two engines
		case ModePark:
			rw.eng.TryCommit(spinParkTable, mSpin, mPark)
		case ModeSharded:
			// Sound without writer exclusion only because the lock is
			// not yet shared: no reader exists to span the commit.
			rw.readerSlots()
			rw.reng.TryCommit(readerShardTable, rCentral, rSharded)
		default:
			panic("reactive: NewRWMutex supports initial modes ModeSpin, ModePark, ModeCAS, and ModeSharded")
		}
	}
	return rw
}

// Stats returns a snapshot of the lock's adaptive state: the reader wait
// protocol (ModeSpin or ModePark) in Mode/Switches, everything blocked on
// the lock in Waiters (parked readers, a draining writer, and writers
// queued on the writer mutex), and the reader registration protocol in
// Readers.
func (rw *RWMutex) Stats() Stats {
	shards := 0
	if rw.slotsUp.Load() {
		shards = len(rw.slots)
	}
	return Stats{
		Mode:     Mode(rw.eng.Mode()),
		Switches: rw.eng.Switches(),
		Waiters:  rw.rq.Len() + rw.wq.Len() + rw.w.q.Len(),
		Readers: &ReaderStats{
			Mode:     ModeCAS + Mode(rw.reng.Mode()),
			Switches: rw.reng.Switches(),
			Shards:   shards,
		},
	}
}

// readerSlots returns the slot array, creating it on first use, sized to
// affinity.Shards() (the next power of two ≥ GOMAXPROCS).
func (rw *RWMutex) readerSlots() []affinity.Cell {
	rw.slotsOnce.Do(func() {
		rw.slots = make([]affinity.Cell, affinity.Shards())
		rw.slotsUp.Store(true)
	})
	return rw.slots
}

// RLock acquires the lock for reading. It is the uncancellable special
// case of RLockCtx.
//
// The fast path records no wait-protocol detection event: unlike Mutex,
// an unblocked read says nothing about how long readers wait *when they
// do collide with a writer* — and the spin-vs-park choice depends on
// that conditional waiting time (Chapter 4's two-phase analysis), not on
// how often collisions happen. The over-budget streak is therefore
// counted across slow-path waits only, and broken by a slow-path wait
// that completed within the budget (see rlockSlow). Registration
// detection likewise lives in the slow path: only a CAS lost to another
// reader signals that the centralized word is the bottleneck.
func (rw *RWMutex) RLock() {
	if rw.rlockFast() {
		return
	}
	rw.rlockSlow(nil, nil)
}

// RLockCtx acquires the lock for reading like RLock, but gives up when
// ctx is cancelled or its deadline passes, returning ctx.Err() promptly
// in both wait protocols. On a nil error the caller holds a read lock and
// must RUnlock it.
func (rw *RWMutex) RLockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if rw.rlockFast() {
		return nil
	}
	return rw.rlockSlow(ctx, ctx.Done())
}

// rlockFast attempts one uncontended read registration under the current
// registration protocol; false sends the caller to the slow path.
func (rw *RWMutex) rlockFast() bool {
	if rw.reng.Mode() == rSharded {
		return rw.rlockSharded()
	}
	if v := rw.readerCount.Load(); v >= 0 && rw.readerCount.CompareAndSwap(v, v+1) {
		// Re-validate the mode: the read that chose the centralized
		// protocol may predate a commit to sharded whose writer has
		// since released. Our +1 is registered, so the mode is frozen
		// from here until RUnlock (a commit's drain cannot pass it);
		// if the re-check still says centralized, RUnlock will too.
		if rw.reng.Mode() == rCentral {
			return true
		}
		rw.runlockCentral()
	}
	return false
}

// rlockSharded attempts one sharded-mode registration: deposit a +1 in
// this P's slot, then validate that no writer claim is in place and the
// registration protocol is still sharded. Either validation failing
// undoes the deposit and reports false (slow path).
//
// The validation order is what makes the writer's sweep exclusion-safe:
// the deposit happens before the gate load, and the writer sets the
// gate before sweeping, so a reader that observed the gate clear has
// its +1 visible to every sweep of that drain — and once registered,
// the mode cannot change until this reader RUnlocks, because every
// registration-protocol commit happens under a full writer drain that
// this +1 blocks. RUnlock therefore always observes the same mode the
// registration used.
func (rw *RWMutex) rlockSharded() bool {
	slots := rw.readerSlots()
	s := &slots[affinity.Pin()&(len(slots)-1)]
	// Deposit and validate while still pinned (three atomic ops, no
	// user code): preemption cannot widen the window in which a
	// sweeping writer sees a deposit whose gate check is still pending.
	s.N.Add(1)
	if rw.readerCount.Load() >= 0 && rw.reng.Mode() == rSharded {
		affinity.Unpin()
		return true
	}
	affinity.Unpin()
	rw.runlockSharded(s)
	return false
}

// runlockSharded releases one sharded registration (or undoes a failed
// one) and nudges a draining writer to re-sweep.
func (rw *RWMutex) runlockSharded(s *affinity.Cell) {
	s.N.Add(-1)
	if rw.readerCount.Load() < 0 {
		// A writer is draining and may be parked waiting for the slot
		// sum to reach zero; wake it to re-sweep. A spurious grant is
		// consumed harmlessly (the drain re-checks and re-parks).
		rw.wq.Grant()
	}
}

// runlockCentral releases one centralized registration (or undoes a
// stale one), waking a draining writer when the last reader leaves.
func (rw *RWMutex) runlockCentral() {
	r := rw.readerCount.Add(-1)
	if r >= 0 {
		return
	}
	if r == -1 || r < -rwBias {
		panic("reactive: RUnlock of unlocked RWMutex")
	}
	// A writer is draining; if this was the last active reader, wake it.
	if r == -rwBias {
		rw.wq.Grant()
	}
}

// TryRLock attempts to acquire the lock for reading without waiting.
func (rw *RWMutex) TryRLock() bool {
	for {
		if rw.reng.Mode() == rSharded {
			if rw.rlockSharded() {
				return true
			}
			if rw.readerCount.Load() < 0 {
				return false // writer claim in place
			}
			continue // registration protocol changed under us: redispatch
		}
		v := rw.readerCount.Load()
		if v < 0 {
			return false
		}
		if rw.readerCount.CompareAndSwap(v, v+1) {
			if rw.reng.Mode() == rCentral {
				return true
			}
			rw.runlockCentral() // stale centralized registration: redispatch
		}
	}
}

// rlockSlow waits for the writer claim to clear and re-registers under
// whichever registration protocol is then selected. Only iterations
// spent blocked by a writer (negative centralized count) consume the
// polling budget; reader-reader CAS races retry immediately — but each
// loss to another reader is exactly the coherence traffic the sharded
// protocol removes, so it votes toward sharded registration. A non-nil
// done aborts the wait — between backoff pauses while spinning, by
// unparking while parked — with ctx.Err().
func (rw *RWMutex) rlockSlow(ctx context.Context, done <-chan struct{}) error {
	budget := int(rw.cfg.pollBudget())
	blocked := 0
	casLosses := 0
	var bo modal.Backoff
	bo.Max = backoffCeiling
	for {
		// The cancellation check leads the loop so every retry path —
		// registration races included, which `continue` straight back
		// here — observes it, not just the writer-blocked spin below.
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if rw.readerCount.Load() >= 0 {
			// No writer claim: attempt a registration under the current
			// protocol. Failures here are races (a claiming writer, a
			// protocol change, another reader's CAS), not waits.
			if rw.reng.Mode() == rSharded {
				if rw.rlockSharded() {
					rw.noteReadWait(blocked, budget)
					return nil
				}
				continue
			}
			v := rw.readerCount.Load()
			if v < 0 {
				continue
			}
			if rw.readerCount.CompareAndSwap(v, v+1) {
				if rw.reng.Mode() != rCentral {
					rw.runlockCentral() // stale: redispatch sharded
					continue
				}
				if casLosses == 0 {
					// A loss-free registration breaks the reader-contention
					// streak, so only *consecutive* losses — not losses
					// accumulated over the lock's lifetime — reach the
					// switch threshold.
					rw.reng.Good(readerShardTable, rCentral, rSharded)
				}
				rw.noteReadWait(blocked, budget)
				return nil
			}
			if rw.readerCount.Load() < 0 {
				// The CAS lost to a writer's claim, not to another
				// reader: that is the wait protocol's signal (counted at
				// the top of the loop), not registration contention.
				continue
			}
			// Lost the centralized word to another reader: the cheap
			// registration protocol is serializing readers on one cache
			// line — the regime sharded slots are built for.
			casLosses++
			if rw.reng.Vote(readerShardTable, rCentral, rSharded, rw.cfg.failLimit()) {
				rw.switchReaderMode(rCentral, rSharded)
			}
			continue
		}
		if rw.eng.Mode() == mPark && blocked >= budget {
			if err := rw.rlockPark(ctx, done); err != nil {
				return err
			}
			continue // woken with the claim cleared: retry registration
		}
		blocked++
		bo.Pause()
	}
}

// noteReadWait runs the wait-protocol detection on one completed
// slow-path read acquisition: a wait that exceeded the polling budget
// means a spinning reader burned more than Lpoll — sub-optimal, vote
// toward the parking protocol; a within-budget wait breaks the streak.
// Detection is mode-directional: spin mode monitors the cheap→scalable
// direction only.
func (rw *RWMutex) noteReadWait(blocked, budget int) {
	if rw.eng.Mode() != mSpin {
		return
	}
	if blocked > budget {
		if rw.eng.Vote(spinParkTable, mSpin, mPark, rw.cfg.failLimit()) {
			rw.switchRWMode(ModeSpin, ModePark)
		}
	} else {
		rw.eng.Good(spinParkTable, mSpin, mPark)
	}
}

// rlockPark is the reader's phase-two wait: park on the shared waiter
// queue until a releasing writer (or a protocol change) broadcasts, or
// done closes. Announce-then-check makes the wakeup airtight: the claim
// is re-tested after the node is queued, and writers broadcast after
// clearing the claim, so a reader can never park on a claim that was
// already released. A cancelled reader leaves through Abandon, which
// passes on any grant that raced in (harmless here — writer releases
// broadcast — but it keeps one leave protocol for every queue).
func (rw *RWMutex) rlockPark(ctx context.Context, done <-chan struct{}) error {
	w := waitq.Get()
	defer waitq.Put(w)
	rw.rq.Push(w)
	if rw.readerCount.Load() >= 0 {
		// Claim cleared between the slow-path check and the announce:
		// don't park on a release that already happened.
		rw.rq.Abandon(w)
		return nil
	}
	if done == nil {
		<-w.Ready()
		return nil
	}
	select {
	case <-w.Ready():
		return nil
	case <-done:
		rw.rq.Abandon(w)
		return ctx.Err()
	}
}

// RUnlock releases one read hold. The registration mode it observes is
// the one RLock registered under: a registered reader blocks every
// registration-protocol commit until it releases (see rlockSharded).
func (rw *RWMutex) RUnlock() {
	if rw.reng.Mode() == rSharded {
		slots := rw.readerSlots()
		s := &slots[affinity.Pin()&(len(slots)-1)]
		affinity.Unpin()
		rw.runlockSharded(s)
		return
	}
	rw.runlockCentral()
}

// Lock acquires the lock for writing. It is the uncancellable special
// case of LockCtx.
func (rw *RWMutex) Lock() {
	rw.w.Lock()
	// Claim the lock; new readers now wait. Then drain active readers.
	// Once the slots exist the sweep is permanent, whatever the current
	// registration mode: a reader that observed the sharded mode may
	// deposit into a slot arbitrarily late, so no later drain may skip
	// the slots without risking lost exclusion (the same reasoning as
	// FetchOp.Value's permanent reconciliation).
	if rw.readerCount.Add(-rwBias) != -rwBias || rw.slotsUp.Load() {
		rw.drainReaders(nil, nil)
	}
}

// LockCtx acquires the lock for writing like Lock, but gives up when ctx
// is cancelled or its deadline passes, returning ctx.Err(). Cancellation
// can land in either wait: while queued on the writer mutex (handled by
// Mutex.LockCtx), or while draining readers — in which case the claim is
// retracted and any readers parked behind it are woken, leaving the lock
// exactly as it was found. On a nil error the caller holds the write lock
// and must Unlock it.
func (rw *RWMutex) LockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := rw.w.LockCtx(ctx); err != nil {
		return err
	}
	if rw.readerCount.Add(-rwBias) != -rwBias || rw.slotsUp.Load() {
		if err := rw.drainReaders(ctx, ctx.Done()); err != nil {
			// Cancelled mid-drain: retract the claim and wake the readers
			// the transient claim may have parked (the same undo TryLock
			// performs), then release the writer mutex.
			rw.readerCount.Add(rwBias)
			rw.rq.GrantAll()
			rw.w.Unlock()
			return err
		}
	}
	return nil
}

// TryLock attempts to acquire the lock for writing without waiting.
func (rw *RWMutex) TryLock() bool {
	if !rw.w.TryLock() {
		return false
	}
	if !rw.readerCount.CompareAndSwap(0, -rwBias) {
		rw.w.Unlock()
		return false
	}
	if rw.slotSum() != 0 {
		// Active sharded readers (or a transient deposit): with the
		// claim already in place a single sweep reading zero proves
		// quiescence, so a nonzero read means waiting — undo and fail.
		rw.readerCount.Add(rwBias)
		// A park-mode reader may have parked during the transient
		// claim; without this wake only a later writer's release would
		// free it.
		rw.rq.GrantAll()
		rw.w.Unlock()
		return false
	}
	return true
}

// slotSum sweeps the reader slots. With the writer claim in place the
// sum cannot misread zero while a sharded reader is active: registered
// deposits all precede the claim (a reader validates the gate after
// depositing), so every sweep read includes them, and each release
// decrement is paired with a deposit the sweep also saw. Transient
// deposit/undo pairs can only inflate the sum — a conservative re-sweep,
// never a lost reader.
func (rw *RWMutex) slotSum() int64 {
	if !rw.slotsUp.Load() {
		return 0
	}
	var sum int64
	for i := range rw.slots {
		sum += rw.slots[i].N.Load()
	}
	return sum
}

// drained reports whether every active reader — centrally registered or
// slot-registered — has released.
func (rw *RWMutex) drained() bool {
	return rw.readerCount.Load() == -rwBias && rw.slotSum() == 0
}

// drainReaders waits for the active readers to release, two-phase: poll
// through the (deadline-aware) budget, then park on the writer-drain
// queue that the last draining reader (central or sharded) grants into.
// It also runs the registration protocol's scale-down detection: a drain
// that found the lock already quiet means the slot machinery went unused
// across a whole writer round — EmptyLimit consecutive such drains retire
// the sharded protocol. The commit happens right here, under the writer's
// own exclusion (claim in place, drain complete), so no reader can span
// it. A non-nil done aborts the wait with ctx.Err(); the caller retracts
// the claim.
func (rw *RWMutex) drainReaders(ctx context.Context, done <-chan struct{}) error {
	idle := rw.drained()
	if !idle {
		ok, aborted := modal.PollCh(rw.cfg.pollBudget(), done, rw.drained)
		if aborted {
			return ctx.Err()
		}
		if !ok {
			if err := rw.parkDrain(ctx, done); err != nil {
				return err
			}
		}
	}
	if rw.reng.Mode() == rSharded {
		if idle {
			if rw.reng.Vote(readerShardTable, rSharded, rCentral, rw.cfg.emptyLim()) {
				rw.reng.TryCommit(readerShardTable, rSharded, rCentral)
			}
		} else {
			rw.reng.Good(readerShardTable, rSharded, rCentral)
		}
	}
	return nil
}

// parkDrain is the draining writer's phase-two wait: park on the
// writer-drain queue until the last active reader grants a re-sweep, or
// done closes. At most one writer drains at a time (the writer mutex is
// held), so the queue holds at most one node; announce-then-check against
// drained() closes the race with a reader that left before the announce.
func (rw *RWMutex) parkDrain(ctx context.Context, done <-chan struct{}) error {
	w := waitq.Get()
	defer waitq.Put(w)
	for {
		rw.wq.Push(w)
		if rw.drained() {
			rw.wq.Abandon(w)
			return nil
		}
		if done == nil {
			<-w.Ready()
		} else {
			select {
			case <-w.Ready():
			case <-done:
				rw.wq.Abandon(w)
				return ctx.Err()
			}
		}
		if rw.drained() {
			return nil
		}
	}
}

// Unlock releases the write hold, waking parked readers so they can
// re-register.
func (rw *RWMutex) Unlock() {
	// Parked readers sampled before the claim clears: the signal for the
	// scalable→cheap detection below.
	parked := rw.rq.Len() > 0
	if rw.readerCount.Add(rwBias) != 0 {
		panic("reactive: Unlock of unlocked RWMutex")
	}
	// Broadcast after the claim clears: a reader that announces later
	// re-checks the claim after queuing and leaves on its own.
	rw.rq.GrantAll()
	if rw.eng.Mode() == mPark {
		if parked {
			rw.eng.Good(spinParkTable, mPark, mSpin)
		} else if rw.eng.Vote(spinParkTable, mPark, mSpin, rw.cfg.emptyLim()) {
			// No reader parked across this writer hold: the parking
			// protocol went unused; vote toward the cheap protocol.
			rw.switchRWMode(ModePark, ModeSpin)
		}
	}
	rw.w.Unlock()
}

// switchRWMode performs a reader wait-protocol change from want to next
// through the engine's consensus word, at most once per detection round.
// A change back to spin wakes any reader still parked so none sleeps
// through the transition.
func (rw *RWMutex) switchRWMode(want, next Mode) {
	if rw.eng.TryCommit(spinParkTable, modal.Mode(want), modal.Mode(next)) {
		if next == ModeSpin {
			rw.rq.GrantAll()
		}
	}
}

// switchReaderMode performs a registration-protocol change from want to
// next by taking the write lock: commits are sound only under full
// writer exclusion (claim in place, both registration paths drained),
// which is what guarantees no reader's RLock/RUnlock pair spans a
// change. The slots are built before a slot-based mode is published so
// readers never observe a nil array. Callers already holding the write
// lock (the drain's scale-down detection) commit directly instead.
func (rw *RWMutex) switchReaderMode(want, next modal.Mode) {
	if next != rCentral {
		rw.readerSlots()
	}
	rw.Lock()
	rw.reng.TryCommit(readerShardTable, want, next)
	rw.Unlock()
}
