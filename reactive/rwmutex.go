package reactive

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/reactive/internal/affinity"
	"repro/reactive/internal/chaos"
	"repro/reactive/internal/waitq"
	"repro/reactive/modal"
)

// rwBias is the writer's claim on the reader count: Lock subtracts it so
// the count is negative for exactly as long as a writer is draining
// readers or holding the lock. It bounds the number of simultaneous
// readers.
const rwBias = 1 << 29

// Engine-local mode indices for the reader-registration modal object.
// The public Stats mapping (Stats().Readers) is ModeCAS + index for the
// first two, matching FetchOp's convention (the centralized word is the
// cheap single-word protocol, the per-P slots the sharded one); index 2
// maps to ModeEpoch, the registration chain's own third protocol (see
// readerPublicMode).
const (
	rCentral modal.Mode = 0
	rSharded modal.Mode = 1
	rEpoch   modal.Mode = 2
)

// readerPublicMode converts a registration-engine mode index to its
// public Mode: rCentral→ModeCAS, rSharded→ModeSharded, rEpoch→ModeEpoch.
func readerPublicMode(m modal.Mode) Mode {
	if m == rEpoch {
		return ModeEpoch
	}
	return ModeCAS + Mode(m)
}

// rgate is the epoch registration gate word (RWMutex.rgate): one shared
// word epoch readers *load* but never store. Bits 63 and 62 are flags,
// the low 62 bits count global grace periods. Writers own every store —
// serialized by the writer mutex, or performed under full writer
// exclusion for the mode-bit flips — so the word is single-writer and
// plain load/modify/store suffices on the writer side.
//
// The bit layout is chosen for the reader fast path: the claim flag is
// the sign bit, so RUnlock's "is a writer draining" check is one signed
// sign test, and "epoch selected and no claim" is the single signed
// compare g >= rgEpoch (claim set makes g negative; epoch set without a
// claim makes g at least 2⁶²; neither leaves only grace bits, below
// 2⁶²). Both checks fit the compiler's inlining budget where the
// two-instruction mask-and-test form did not.
const (
	// rgClaim mirrors the readerCount claim for epoch readers: set
	// (with a grace-epoch advance) before a writer sweeps the epoch
	// cells, cleared at its release. An epoch reader validates its
	// deposit against this single word. Sign bit: test with g < 0.
	rgClaim int64 = -1 << 63
	// rgEpoch is set exactly while the registration protocol is rEpoch;
	// it changes only under writer exclusion, together with the engine
	// commit. Test "epoch and unclaimed" with g >= rgEpoch.
	rgEpoch int64 = 1 << 62
	// rgGraceMask extracts the global grace-period counter.
	rgGraceMask = rgEpoch - 1
)

// readerShardTable is the 3-mode transition table of RWMutex's reader
// registration protocol (centralized word ↔ BRAVO-style per-P slots ↔
// per-P epoch stamps — a chain with no shortcut edge, mirroring
// FetchOp's N=3 chain), orthogonal to the spin↔park wait table the
// same type also runs on.
var readerShardTable = modal.NewTable(3, []modal.Transition{
	{From: rCentral, To: rSharded, Dir: dirScaleUp, Residual: ResidualCheapHigh},
	{From: rSharded, To: rCentral, Dir: dirScaleDown, Residual: ResidualScalableLow},
	{From: rSharded, To: rEpoch, Dir: dirScaleUp, Residual: ResidualCheapHigh},
	{From: rEpoch, To: rSharded, Dir: dirScaleDown, Residual: ResidualScalableLow},
})

// RWReaderTable returns the transition table RWMutex's reader
// registration protocol runs on: mode index 0 = ModeCAS (centralized
// word), 1 = ModeSharded (per-P slots), 2 = ModeEpoch (per-P epoch
// stamps) — the first two follow FetchOpTable's ModeCAS + i
// convention, index 2 is the public ModeEpoch. The table is immutable
// and shared; it is exported so harnesses and experiments can drive
// the exact state machine the primitive uses rather than a
// hand-maintained copy.
func RWReaderTable() *modal.Table { return readerShardTable }

// RWMutex is a reactive reader/writer lock. Writers are serialized by an
// embedded reactive Mutex (itself adaptive); on top of that this type
// runs two orthogonal modal objects over its readers:
//
// How readers *wait* when a writer has claimed the lock (Stats().Mode):
//
//   - ModeSpin — readers spin with randomized exponential backoff until
//     the writer's release lets them re-register. Cheapest when writer
//     critical sections are short.
//   - ModePark — readers poll through the two-phase polling budget and
//     then park on the shared waiter queue the releasing writer
//     broadcasts into. Scalable when writers hold the lock long enough
//     that spinning readers burn whole scheduler quanta.
//
// How readers *register* when no writer is about (Stats().Readers):
//
//   - ModeCAS — readers compare-and-swap one centralized reader count.
//     Cheapest for occasional reads, but every RLock/RUnlock from every
//     core bounces that one cache line.
//   - ModeSharded — BRAVO-style sharded registration: each reader
//     deposits a +1 in its processor's padded slot (selected through the
//     per-P affinity substrate) and a writer drains by sweeping the
//     slots. Read-dominated workloads scale with cores instead of
//     serializing on coherence traffic; writers pay a slot sweep.
//   - ModeEpoch — userspace-RCU-style epoch registration, the chain's
//     high-contention endpoint: RLock publishes only a local online
//     stamp (count plus observed grace epoch) in its per-P cell and
//     validates it against one shared gate word it never stores to, so
//     an epoch-mode read performs zero shared-cacheline writes. Writers
//     advance the global grace epoch and sweep the cells (a grace
//     period) until every online reader has observed the advance or
//     gone offline.
//
// Wait-protocol detection mirrors Mutex: a reader whose wait exceeded
// the polling budget votes toward ModePark (SpinFailLimit consecutive
// such waits switch); a writer release that found no parked readers
// votes toward ModeSpin (EmptyLimit consecutive such releases switch
// back). Registration detection: a reader whose centralized CAS lost to
// another *reader* votes toward ModeSharded (SpinFailLimit consecutive
// losses switch); a writer whose sharded drain found active readers —
// the read-saturated regime where even the slot deposits bounce against
// the drain — votes toward ModeEpoch (SpinFailLimit consecutive busy
// drains switch); a writer whose drain found the lock already quiet
// votes one step back down the chain (EmptyLimit consecutive quiet
// drains, or quiet grace periods in epoch mode, switch).
// Registration-protocol changes are committed only under full
// writer exclusion, so no reader's RLock/RUnlock pair ever spans one.
//
// Readers register by compare-and-swap from a non-negative count (or by
// a slot deposit re-validated against the writer claim), never by a
// blind increment, so a reader can become active only while no writer
// claim is in place, and a writer enters its critical section only
// after the centralized count and every slot show zero active readers —
// mutual exclusion holds by construction. The cost is that writers are
// strictly preferred: readers arriving during a writer's drain or hold
// wait for its release, and a stream of back-to-back writers can keep
// readers waiting longer than sync.RWMutex would.
//
// LockCtx and RLockCtx are the cancellation-aware acquisitions: both
// return ctx.Err() promptly when ctx ends mid-wait, in either wait
// protocol. A writer cancelled while draining readers retracts its claim
// and wakes any readers it had parked, so a cancelled LockCtx leaves the
// lock exactly as it found it.
//
// The zero value is an unlocked RWMutex in spin mode with centralized
// registration and the package-default tunables; NewRWMutex builds one
// with explicit Options. An RWMutex must not be copied after first use.
// As with sync.RWMutex, recursive read locking is prohibited: if a
// goroutine holds the read lock while anything performs a write
// acquisition — an application writer, or a reader-driven registration
// protocol change, which takes the write lock itself — a nested RLock
// deadlocks, so even a writer-free program must not nest read locks.
// Calling RUnlock without a matching RLock panics, as with
// sync.RWMutex. In centralized mode the panic is immediate (the
// reader count goes negative); in the sharded and epoch modes the
// slots admit no cheap per-reader check, so the violation surfaces at
// the next writer's drain sweep — the one point where a negative delta
// sum is provable misuse rather than a transient — and the panic fires
// on the writer's goroutine.
type RWMutex struct {
	w Mutex // serializes writers; adaptive in its own right

	// readerCount is the centralized registration word: the number of
	// centrally-registered active readers, minus rwBias while a writer
	// has claimed the lock. The claim bit doubles as the gate sharded
	// readers validate against, so the word stays authoritative for
	// writer exclusion in both registration modes.
	readerCount atomic.Int32

	// eng selects the reader *wait* protocol (spin ↔ park); reng selects
	// the reader *registration* protocol (centralized ↔ sharded). All
	// protocol changes go through the respective engine's consensus CAS.
	eng  modal.Engine
	reng modal.Engine

	// slots are the per-P reader-registration slots (lazily built, one
	// coherence granule each). Slot values are deltas, not occupancies:
	// a reader may deposit its +1 in one slot and its -1 in another
	// after migrating, so only the sum is meaningful — zero iff no
	// sharded reader is active (see drainReaders for why a sweep cannot
	// misread that).
	slots     []affinity.Cell
	slotsOnce sync.Once
	slotsUp   atomic.Bool

	// rgate is the epoch registration gate: the one shared word epoch
	// readers load (mode bit, writer claim, global grace epoch — see the
	// rgEpoch/rgClaim constants). Only writers store to it.
	rgate atomic.Int64

	// ecells are the per-P epoch cells (online-delta count + observed
	// grace epoch, one coherence granule each). Like the slots, the
	// counts are deltas: only the sum is meaningful, zero iff no epoch
	// reader is active.
	ecells     []affinity.EpochCell
	ecellsOnce sync.Once
	ecellsUp   atomic.Bool

	// graces and quietGraces are the grace-period counters surfaced in
	// ReaderStats: completed epoch-mode drains, and the subset that
	// found no online reader.
	graces      atomic.Uint64
	quietGraces atomic.Uint64

	// rq holds parked readers (phase two of the reader wait protocol);
	// a releasing writer broadcasts into it. wq holds the one draining
	// writer parked waiting for active readers to leave; the last
	// reader out grants into it. Both run on the shared waiter-queue
	// engine (reactive/internal/waitq).
	rq waitq.Queue
	wq waitq.Queue

	cfg config
}

// NewRWMutex builds an RWMutex configured by opts. NewRWMutex() with no
// options is equivalent to a zero-value RWMutex. The threshold and
// polling options also configure the embedded writer mutex and the
// registration protocol's streaks. A policy installed with WithPolicy
// governs only the reader wait protocol: policy instances must not be
// shared between primitives — or between the engines of one primitive —
// so the writer mutex and the registration engine always use the
// built-in streak detection (with the same thresholds).
func NewRWMutex(opts ...Option) *RWMutex {
	rw := &RWMutex{}
	rw.cfg.apply(opts)
	rw.eng.SetPolicy(rw.cfg.pol)
	rw.w.cfg = rw.cfg
	rw.w.cfg.pol = nil
	rw.w.cfg.initModeSet = false
	if rw.cfg.initModeSet {
		switch rw.cfg.initMode {
		case ModeSpin, ModeCAS: // the zero modes of the two engines
		case ModePark:
			rw.eng.TryCommit(spinParkTable, mSpin, mPark)
		case ModeSharded:
			rw.forceReaderMode(rSharded)
		case ModeEpoch:
			rw.forceReaderMode(rEpoch)
		default:
			panic("reactive: NewRWMutex supports initial modes ModeSpin, ModePark, ModeCAS, ModeSharded, and ModeEpoch")
		}
	}
	if rw.cfg.initRModeSet {
		// WithInitialReaderMode addresses the registration engine
		// specifically; applied after WithInitialMode, so when both name
		// a registration mode the reader-specific option wins.
		switch rw.cfg.initRMode {
		case ModeCAS:
			rw.forceReaderMode(rCentral)
		case ModeSharded:
			rw.forceReaderMode(rSharded)
		case ModeEpoch:
			rw.forceReaderMode(rEpoch)
		}
	}
	return rw
}

// forceReaderMode walks the registration chain to m edge by edge at
// construction time. Sound without writer exclusion only because the
// lock is not yet shared: no reader exists to span the commits.
func (rw *RWMutex) forceReaderMode(m modal.Mode) {
	for rw.reng.Mode() != m {
		cur := rw.reng.Mode()
		next := cur + 1
		if cur > m {
			next = cur - 1
		}
		if next != rCentral {
			rw.readerSlots()
		}
		if next == rEpoch {
			rw.epochCells()
		}
		rw.reng.TryCommit(readerShardTable, cur, next)
	}
	if m == rEpoch {
		rw.rgate.Store(rgEpoch)
	} else {
		rw.rgate.Store(rw.rgate.Load() &^ rgEpoch)
	}
}

// Stats returns a snapshot of the lock's adaptive state: the reader wait
// protocol (ModeSpin or ModePark) in Mode/Switches, everything blocked on
// the lock in Waiters (parked readers, a draining writer, and writers
// queued on the writer mutex), and the reader registration protocol in
// Readers.
func (rw *RWMutex) Stats() Stats {
	shards := 0
	if rw.ecellsUp.Load() {
		shards = len(rw.ecells)
	} else if rw.slotsUp.Load() {
		shards = len(rw.slots)
	}
	return Stats{
		Mode:     Mode(rw.eng.Mode()),
		Switches: rw.eng.Switches(),
		Waiters:  rw.rq.Len() + rw.wq.Len() + rw.w.q.Len(),
		Readers: &ReaderStats{
			Mode:        readerPublicMode(rw.reng.Mode()),
			Switches:    rw.reng.Switches(),
			Shards:      shards,
			Graces:      rw.graces.Load(),
			QuietGraces: rw.quietGraces.Load(),
		},
	}
}

// readerSlots returns the slot array, creating it on first use, sized to
// affinity.Shards() (the next power of two ≥ GOMAXPROCS).
func (rw *RWMutex) readerSlots() []affinity.Cell {
	rw.slotsOnce.Do(func() {
		rw.slots = make([]affinity.Cell, affinity.Shards())
		rw.slotsUp.Store(true)
	})
	return rw.slots
}

// epochCells returns the epoch cell array, creating it on first use,
// sized like the slots. The array is always built before rEpoch is
// published (forceReaderMode, the drain's promotion, switchReaderMode),
// so a reader that observed the epoch mode — an acquire of the engine's
// commit — sees a non-nil rw.ecells without any further check.
func (rw *RWMutex) epochCells() []affinity.EpochCell {
	rw.ecellsOnce.Do(func() {
		rw.ecells = make([]affinity.EpochCell, affinity.Shards())
		rw.ecellsUp.Store(true)
	})
	return rw.ecells
}

// RLock acquires the lock for reading. It is the uncancellable special
// case of RLockCtx.
//
// The fast path records no wait-protocol detection event: unlike Mutex,
// an unblocked read says nothing about how long readers wait *when they
// do collide with a writer* — and the spin-vs-park choice depends on
// that conditional waiting time (Chapter 4's two-phase analysis), not on
// how often collisions happen. The over-budget streak is therefore
// counted across slow-path waits only, and broken by a slow-path wait
// that completed within the budget (see rlockSlow). Registration
// detection likewise lives in the slow path: only a CAS lost to another
// reader signals that the centralized word is the bottleneck.
func (rw *RWMutex) RLock() {
	if rw.rlockFast() {
		return
	}
	rw.rlockSlow(nil, nil)
}

// RLockCtx acquires the lock for reading like RLock, but gives up when
// ctx is cancelled or its deadline passes, returning ctx.Err() promptly
// in both wait protocols. On a nil error the caller holds a read lock and
// must RUnlock it.
func (rw *RWMutex) RLockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if rw.rlockFast() {
		return nil
	}
	return rw.rlockSlow(ctx, ctx.Done())
}

// rlockFast attempts one uncontended read registration under the current
// registration protocol; false sends the caller to the slow path.
func (rw *RWMutex) rlockFast() bool {
	switch rw.reng.Mode() {
	case rSharded:
		return rw.rlockSharded()
	case rEpoch:
		return rw.rlockEpoch()
	}
	if v := rw.readerCount.Load(); v >= 0 && rw.readerCount.CompareAndSwap(v, v+1) {
		// Re-validate the mode: the read that chose the centralized
		// protocol may predate a commit to sharded whose writer has
		// since released. Our +1 is registered, so the mode is frozen
		// from here until RUnlock (a commit's drain cannot pass it);
		// if the re-check still says centralized, RUnlock will too.
		if rw.reng.Mode() == rCentral {
			return true
		}
		rw.runlockCentral()
	}
	return false
}

// rlockSharded attempts one sharded-mode registration: deposit a +1 in
// this P's slot, then validate that no writer claim is in place and the
// registration protocol is still sharded. Either validation failing
// undoes the deposit and reports false (slow path).
//
// The validation order is what makes the writer's sweep exclusion-safe:
// the deposit happens before the gate load, and the writer sets the
// gate before sweeping, so a reader that observed the gate clear has
// its +1 visible to every sweep of that drain — and once registered,
// the mode cannot change until this reader RUnlocks, because every
// registration-protocol commit happens under a full writer drain that
// this +1 blocks. RUnlock therefore always observes the same mode the
// registration used.
func (rw *RWMutex) rlockSharded() bool {
	slots := rw.readerSlots()
	s := &slots[affinity.Pin()&(len(slots)-1)]
	// Deposit and validate while still pinned (three atomic ops, no
	// user code): preemption cannot widen the window in which a
	// sweeping writer sees a deposit whose gate check is still pending.
	s.N.Add(1)
	chaos.PinnedPoint("rwmutex.sharded.deposit")
	if rw.readerCount.Load() >= 0 && rw.reng.Mode() == rSharded {
		affinity.Unpin()
		return true
	}
	affinity.Unpin()
	rw.runlockSharded(s)
	return false
}

// runlockSharded releases one sharded registration (or undoes a failed
// one) and nudges a draining writer to re-sweep.
func (rw *RWMutex) runlockSharded(s *affinity.Cell) {
	s.N.Add(-1)
	chaos.Point("rwmutex.sharded.undo")
	if rw.readerCount.Load() < 0 {
		// A writer is draining and may be parked waiting for the slot
		// sum to reach zero; wake it to re-sweep. A spurious grant is
		// consumed harmlessly (the drain re-checks and re-parks).
		rw.wq.Grant()
	}
}

// rlockEpoch attempts one epoch-mode registration: publish an online
// stamp in this P's cell — bump the cell count and record the global
// grace epoch being observed — then validate against the one shared
// gate word that the epoch mode is still selected and no writer claim
// is in place. Either validation failing undoes the stamp and reports
// false (slow path), so a reader arriving during a writer's claim falls
// back to the parked path and writers cannot starve.
//
// The exclusion argument is the sharded protocol's, compressed onto one
// word: the cell increment is a sequentially consistent
// read-modify-write, so it precedes this goroutine's gate load; a
// claiming writer stores rgClaim before its first cell sweep. If the
// gate load saw no claim, the load came before the writer's store, so
// the increment is visible to every sweep of that grace period. The
// gate load is the *only* shared-word access — an epoch read writes
// nothing outside its own per-P cell.
func (rw *RWMutex) rlockEpoch() bool {
	cells := rw.ecells // non-nil: built before rEpoch was published
	c := &cells[affinity.Pin()&(len(cells)-1)]
	c.Cnt.Add(1)
	chaos.PinnedPoint("rwmutex.epoch.stamp")
	if g := rw.rgate.Load(); g >= rgEpoch {
		// Registered: the mode is frozen until this reader goes offline
		// (every registration commit runs under a drain this stamp
		// blocks). Record the grace epoch observed — the store is to
		// this P's own cell and is skipped when already current, so
		// steady-state reads keep the cell line exclusive.
		if e := uint64(g & rgGraceMask); c.Seen.Load() != e {
			c.Seen.Store(e)
		}
		affinity.Unpin()
		return true
	}
	affinity.Unpin()
	rw.runlockEpoch(c)
	return false
}

// runlockEpoch takes one epoch reader offline (or undoes a failed
// registration) and nudges a draining writer to re-sweep. The claim
// check orders after the decrement (a sequentially consistent RMW), so
// a writer that swept before the decrement either sees the grant or was
// still polling and re-sweeps on its own.
func (rw *RWMutex) runlockEpoch(c *affinity.EpochCell) {
	c.Cnt.Add(-1)
	chaos.Point("rwmutex.epoch.offline")
	if rw.rgate.Load() < 0 {
		// A writer's grace period may be parked waiting for the cell
		// sum to reach zero; wake it to re-sweep. A spurious grant is
		// consumed harmlessly (the drain re-checks and re-parks).
		rw.wq.Grant()
	}
}

// runlockCentral releases one centralized registration (or undoes a
// stale one), waking a draining writer when the last reader leaves.
func (rw *RWMutex) runlockCentral() {
	r := rw.readerCount.Add(-1)
	if r >= 0 {
		return
	}
	if r == -1 || r < -rwBias {
		panic("reactive: RUnlock of unlocked RWMutex")
	}
	// A writer is draining; if this was the last active reader, wake it.
	if r == -rwBias {
		rw.wq.Grant()
	}
}

// TryRLock attempts to acquire the lock for reading without waiting.
func (rw *RWMutex) TryRLock() bool {
	for {
		switch rw.reng.Mode() {
		case rSharded:
			if rw.rlockSharded() {
				return true
			}
			if rw.readerCount.Load() < 0 {
				return false // writer claim in place
			}
			continue // registration protocol changed under us: redispatch
		case rEpoch:
			if rw.rlockEpoch() {
				return true
			}
			if rw.rgate.Load() < 0 || rw.readerCount.Load() < 0 {
				return false // writer claim in place
			}
			continue // registration protocol changed under us: redispatch
		}
		v := rw.readerCount.Load()
		if v < 0 {
			return false
		}
		if rw.readerCount.CompareAndSwap(v, v+1) {
			if rw.reng.Mode() == rCentral {
				return true
			}
			rw.runlockCentral() // stale centralized registration: redispatch
		}
	}
}

// rlockSlow waits for the writer claim to clear and re-registers under
// whichever registration protocol is then selected. Only iterations
// spent blocked by a writer (negative centralized count) consume the
// polling budget; reader-reader CAS races retry immediately — but each
// loss to another reader is exactly the coherence traffic the sharded
// protocol removes, so it votes toward sharded registration. A non-nil
// done aborts the wait — between backoff pauses while spinning, by
// unparking while parked — with ctx.Err().
func (rw *RWMutex) rlockSlow(ctx context.Context, done <-chan struct{}) error {
	budget := int(rw.cfg.pollBudget())
	blocked := 0
	casLosses := 0
	var bo modal.Backoff
	bo.Max = backoffCeiling
	for {
		// The cancellation check leads the loop so every retry path —
		// registration races included, which `continue` straight back
		// here — observes it, not just the writer-blocked spin below.
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		if rw.readerCount.Load() >= 0 {
			// No writer claim: attempt a registration under the current
			// protocol. Failures here are races (a claiming writer, a
			// protocol change, another reader's CAS), not waits.
			switch rw.reng.Mode() {
			case rSharded:
				if rw.rlockSharded() {
					rw.noteReadWait(blocked, budget)
					return nil
				}
				continue
			case rEpoch:
				if rw.rlockEpoch() {
					rw.noteReadWait(blocked, budget)
					return nil
				}
				// The epoch gate can lag the centralized claim by two
				// stores on the release path; yield between retries so a
				// releasing writer that was preempted mid-release gets
				// the P back (a non-yielding retry loop could stall on a
				// small-GOMAXPROCS host for a whole preemption quantum).
				bo.Pause()
				continue
			}
			v := rw.readerCount.Load()
			if v < 0 {
				continue
			}
			if rw.readerCount.CompareAndSwap(v, v+1) {
				if rw.reng.Mode() != rCentral {
					rw.runlockCentral() // stale: redispatch sharded
					continue
				}
				if casLosses == 0 {
					// A loss-free registration breaks the reader-contention
					// streak, so only *consecutive* losses — not losses
					// accumulated over the lock's lifetime — reach the
					// switch threshold.
					rw.reng.Good(readerShardTable, rCentral, rSharded)
				}
				rw.noteReadWait(blocked, budget)
				return nil
			}
			if rw.readerCount.Load() < 0 {
				// The CAS lost to a writer's claim, not to another
				// reader: that is the wait protocol's signal (counted at
				// the top of the loop), not registration contention.
				continue
			}
			// Lost the centralized word to another reader: the cheap
			// registration protocol is serializing readers on one cache
			// line — the regime sharded slots are built for.
			casLosses++
			if rw.reng.Vote(readerShardTable, rCentral, rSharded, rw.cfg.failLimit()) {
				rw.switchReaderMode(rCentral, rSharded)
			}
			continue
		}
		if rw.eng.Mode() == mPark && blocked >= budget {
			if err := rw.rlockPark(ctx, done); err != nil {
				return err
			}
			continue // woken with the claim cleared: retry registration
		}
		blocked++
		bo.Pause()
	}
}

// noteReadWait runs the wait-protocol detection on one completed
// slow-path read acquisition: a wait that exceeded the polling budget
// means a spinning reader burned more than Lpoll — sub-optimal, vote
// toward the parking protocol; a within-budget wait breaks the streak.
// Detection is mode-directional: spin mode monitors the cheap→scalable
// direction only.
func (rw *RWMutex) noteReadWait(blocked, budget int) {
	if rw.eng.Mode() != mSpin {
		return
	}
	// The caller holds a read registration; with an injected policy the
	// notifications run under a panic guard so a panicking policy
	// releases the registration before the crash surfaces — otherwise
	// every later writer would park behind a reader that no longer
	// exists.
	if rw.eng.Policy() != nil {
		defer func() {
			if r := recover(); r != nil {
				rw.RUnlock()
				panic(r)
			}
		}()
	}
	if blocked > budget {
		if rw.eng.Vote(spinParkTable, mSpin, mPark, rw.cfg.failLimit()) {
			rw.switchRWMode(ModeSpin, ModePark)
		}
	} else {
		rw.eng.Good(spinParkTable, mSpin, mPark)
	}
}

// rlockPark is the reader's phase-two wait: park on the shared waiter
// queue until a releasing writer (or a protocol change) broadcasts, or
// done closes. Announce-then-check makes the wakeup airtight: the claim
// is re-tested after the node is queued, and writers broadcast after
// clearing the claim, so a reader can never park on a claim that was
// already released. A cancelled reader leaves through Abandon, which
// passes on any grant that raced in (harmless here — writer releases
// broadcast — but it keeps one leave protocol for every queue).
func (rw *RWMutex) rlockPark(ctx context.Context, done <-chan struct{}) error {
	w := waitq.Get()
	defer waitq.Put(w)
	rw.rq.Push(w)
	if rw.readerCount.Load() >= 0 {
		// Claim cleared between the slow-path check and the announce:
		// don't park on a release that already happened.
		rw.rq.Abandon(w)
		return nil
	}
	if done == nil {
		<-w.Ready()
		return nil
	}
	select {
	case <-w.Ready():
		return nil
	case <-done:
		rw.rq.Abandon(w)
		return ctx.Err()
	}
}

// RUnlock releases one read hold. The registration mode it observes is
// the one RLock registered under: a registered reader blocks every
// registration-protocol commit until it releases (see rlockSharded).
func (rw *RWMutex) RUnlock() {
	switch rw.reng.Mode() {
	case rSharded:
		slots := rw.readerSlots()
		s := &slots[affinity.Pin()&(len(slots)-1)]
		affinity.Unpin()
		rw.runlockSharded(s)
	case rEpoch:
		cells := rw.ecells
		c := &cells[affinity.Pin()&(len(cells)-1)]
		affinity.Unpin()
		rw.runlockEpoch(c)
	default:
		rw.runlockCentral()
	}
}

// claimEpochGate places the writer's claim on the epoch gate and
// advances the global grace epoch, before the caller's first cell
// sweep. A no-op until the epoch cells exist. The caller holds the
// writer mutex (or, in switchReaderMode's promotion, full writer
// exclusion), so the plain load/modify/store pair is single-writer; the
// store is sequentially consistent, so it precedes every sweep load
// that follows it.
func (rw *RWMutex) claimEpochGate() {
	if rw.ecellsUp.Load() {
		g := rw.rgate.Load()
		rw.rgate.Store((g &^ rgGraceMask) | rgClaim | ((g + 1) & rgGraceMask))
	}
}

// releaseEpochGate retracts the writer's claim from the epoch gate — at
// release, or when a cancelled LockCtx or failed TryLock undoes its
// transient claim. A no-op until the epoch cells exist.
func (rw *RWMutex) releaseEpochGate() {
	if rw.ecellsUp.Load() {
		rw.rgate.Store(rw.rgate.Load() &^ rgClaim)
	}
}

// Lock acquires the lock for writing. It is the uncancellable special
// case of LockCtx.
func (rw *RWMutex) Lock() {
	rw.w.Lock()
	// Claim the lock; new readers now wait. Then drain active readers.
	// Once the slots (or epoch cells) exist the sweep is permanent,
	// whatever the current registration mode: a reader that observed the
	// sharded or epoch mode may deposit into its cell arbitrarily late,
	// so no later drain may skip the cells without risking lost
	// exclusion (the same reasoning as FetchOp.Value's permanent
	// reconciliation).
	busy := rw.readerCount.Add(-rwBias) != -rwBias
	rw.claimEpochGate()
	chaos.Point("rwmutex.writer.claimed")
	if busy || rw.slotsUp.Load() || rw.ecellsUp.Load() {
		rw.drainReaders(nil, nil)
	}
}

// LockCtx acquires the lock for writing like Lock, but gives up when ctx
// is cancelled or its deadline passes, returning ctx.Err(). Cancellation
// can land in either wait: while queued on the writer mutex (handled by
// Mutex.LockCtx), or while draining readers — in which case the claim is
// retracted and any readers parked behind it are woken, leaving the lock
// exactly as it was found. On a nil error the caller holds the write lock
// and must Unlock it.
func (rw *RWMutex) LockCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if err := rw.w.LockCtx(ctx); err != nil {
		return err
	}
	busy := rw.readerCount.Add(-rwBias) != -rwBias
	rw.claimEpochGate()
	chaos.Point("rwmutex.writer.claimed")
	if busy || rw.slotsUp.Load() || rw.ecellsUp.Load() {
		if err := rw.drainReaders(ctx, ctx.Done()); err != nil {
			// Cancelled mid-drain: retract both claims and wake the
			// readers the transient claim may have parked (the same undo
			// TryLock performs), then release the writer mutex.
			rw.readerCount.Add(rwBias)
			rw.releaseEpochGate()
			chaos.Point("rwmutex.drain.undo")
			rw.rq.GrantAll()
			rw.w.Unlock()
			return err
		}
	}
	return nil
}

// TryLock attempts to acquire the lock for writing without waiting.
func (rw *RWMutex) TryLock() bool {
	if !rw.w.TryLock() {
		return false
	}
	if !rw.readerCount.CompareAndSwap(0, -rwBias) {
		rw.w.Unlock()
		return false
	}
	rw.claimEpochGate()
	if rw.slotSum() != 0 || rw.epochSum() != 0 {
		// Active sharded or epoch readers (or a transient deposit): with
		// the claims already in place a single sweep reading zero proves
		// quiescence, so a nonzero read means waiting — undo and fail.
		// The epoch advance stands even though the claim is retracted:
		// a TryLock-undo still moves the global epoch forward.
		rw.readerCount.Add(rwBias)
		rw.releaseEpochGate()
		chaos.Point("rwmutex.trylock.undo")
		// A park-mode reader may have parked during the transient
		// claim; without this wake only a later writer's release would
		// free it.
		rw.rq.GrantAll()
		rw.w.Unlock()
		return false
	}
	return true
}

// slotSum sweeps the reader slots. With the writer claim in place the
// sum cannot misread zero while a sharded reader is active: registered
// deposits all precede the claim (a reader validates the gate after
// depositing), so every sweep read includes them, and each release
// decrement is paired with a deposit the sweep also saw. Transient
// deposit/undo pairs can only inflate the sum — a conservative re-sweep,
// never a lost reader.
func (rw *RWMutex) slotSum() int64 {
	if !rw.slotsUp.Load() {
		return 0
	}
	var sum int64
	for i := range rw.slots {
		sum += rw.slots[i].N.Load()
	}
	// With the claim in place every registered deposit is in the sum and
	// transient deposit/undo pairs only inflate it, so a negative read
	// proves an RUnlock that never deposited: caller misuse, reported
	// with the same message the centralized mode panics with.
	if sum < 0 {
		panic("reactive: RUnlock of unlocked RWMutex")
	}
	return sum
}

// epochSum sweeps the epoch cells. The exclusion argument is slotSum's:
// with the epoch-gate claim in place, registered stamps all precede the
// claim (a reader validates the gate after depositing), so every sweep
// read includes them; transient deposit/undo pairs can only inflate the
// sum. A zero read therefore proves no epoch reader is online — the
// grace period is over.
func (rw *RWMutex) epochSum() int64 {
	if !rw.ecellsUp.Load() {
		return 0
	}
	var sum int64
	for i := range rw.ecells {
		sum += rw.ecells[i].Cnt.Load()
	}
	// As in slotSum: under the claim a negative sum proves an RUnlock
	// with no matching RLock.
	if sum < 0 {
		panic("reactive: RUnlock of unlocked RWMutex")
	}
	return sum
}

// drained reports whether every active reader — centrally registered,
// slot-registered, or epoch-stamped — has released. As the drain's poll
// predicate it runs inside modal.Poll's yield-per-attempt loop, so the
// repeated cell sweeps stay scheduler-cooperative on small-GOMAXPROCS
// hosts (a non-yielding sweep could freeze the very readers it waits
// on).
func (rw *RWMutex) drained() bool {
	return rw.readerCount.Load() == -rwBias && rw.slotSum() == 0 && rw.epochSum() == 0
}

// drainReaders waits for the active readers to release, two-phase: poll
// through the (deadline-aware) budget, then park on the writer-drain
// queue that the last draining reader (central or sharded) grants into.
// It also runs the registration protocol's promotion and scale-down
// detection: a drain that found the lock already quiet means the cell
// machinery went unused across a whole writer round — EmptyLimit
// consecutive such drains (or quiet grace periods) retire one step of
// the chain — while a sharded drain that found active readers is the
// read-saturation signal, SpinFailLimit consecutive of which promote to
// the epoch protocol. Commits happen right here, under the writer's own
// exclusion (claim in place, drain complete), so no reader can span
// them. A non-nil done aborts the wait with ctx.Err(); the caller
// retracts the claim.
func (rw *RWMutex) drainReaders(ctx context.Context, done <-chan struct{}) error {
	idle := rw.drained()
	if !idle {
		ok, aborted := modal.PollCh(rw.cfg.pollBudget(), done, rw.drained)
		if aborted {
			return ctx.Err()
		}
		if !ok {
			if err := rw.parkDrain(ctx, done); err != nil {
				return err
			}
		}
	}
	switch rw.reng.Mode() {
	case rSharded:
		if idle {
			// The slot machinery went unused across a whole writer
			// round: vote down, and break any busy-drain streak toward
			// the epoch protocol.
			rw.reng.Good(readerShardTable, rSharded, rEpoch)
			if rw.reng.Vote(readerShardTable, rSharded, rCentral, rw.cfg.emptyLim()) {
				rw.reng.TryCommit(readerShardTable, rSharded, rCentral)
			}
		} else {
			// Active sharded readers at writer arrival: the
			// read-saturated regime where even slot deposits contend
			// with the drain — the epoch protocol's regime. Vote up,
			// and break the quiet-drain streak toward the centralized
			// word.
			rw.reng.Good(readerShardTable, rSharded, rCentral)
			if rw.reng.Vote(readerShardTable, rSharded, rEpoch, rw.cfg.failLimit()) {
				// Commit under this writer's own exclusion: build the
				// cells and raise the gate's mode bit — with the claim,
				// since this writer is still inside its critical
				// section and epoch readers validate only the gate —
				// before the commit publishes the mode.
				rw.epochCells()
				g := rw.rgate.Load()
				rw.rgate.Store(g | rgEpoch | rgClaim)
				rw.reng.TryCommit(readerShardTable, rSharded, rEpoch)
			}
		}
	case rEpoch:
		// Every epoch-mode drain is one grace period: the claim advanced
		// the global epoch, and the sweep above waited until every
		// online reader observed it or went offline.
		rw.graces.Add(1)
		if idle {
			rw.quietGraces.Add(1)
			if rw.reng.Vote(readerShardTable, rEpoch, rSharded, rw.cfg.emptyLim()) {
				// Demote under this writer's own exclusion: ensure the
				// slots exist (a forced-epoch lock may never have built
				// them), lower the mode bit, then publish the commit.
				rw.readerSlots()
				rw.rgate.Store(rw.rgate.Load() &^ rgEpoch)
				rw.reng.TryCommit(readerShardTable, rEpoch, rSharded)
			}
		} else {
			rw.reng.Good(readerShardTable, rEpoch, rSharded)
		}
	}
	return nil
}

// parkDrain is the draining writer's phase-two wait: park on the
// writer-drain queue until the last active reader grants a re-sweep, or
// done closes. At most one writer drains at a time (the writer mutex is
// held), so the queue holds at most one node; announce-then-check against
// drained() closes the race with a reader that left before the announce.
func (rw *RWMutex) parkDrain(ctx context.Context, done <-chan struct{}) error {
	w := waitq.Get()
	defer waitq.Put(w)
	for {
		rw.wq.Push(w)
		if rw.drained() {
			rw.wq.Abandon(w)
			return nil
		}
		if done == nil {
			<-w.Ready()
		} else {
			select {
			case <-w.Ready():
			case <-done:
				rw.wq.Abandon(w)
				return ctx.Err()
			}
		}
		if rw.drained() {
			return nil
		}
	}
}

// Unlock releases the write hold, waking parked readers so they can
// re-register.
func (rw *RWMutex) Unlock() {
	// Parked readers sampled before the claim clears: the signal for the
	// scalable→cheap detection below.
	parked := rw.rq.Len() > 0
	if rw.readerCount.Add(rwBias) != 0 {
		panic("reactive: Unlock of unlocked RWMutex")
	}
	rw.releaseEpochGate()
	chaos.Point("rwmutex.unlock.release")
	// Broadcast after the claims clear: a reader that announces later
	// re-checks the claim after queuing and leaves on its own.
	rw.rq.GrantAll()
	// Release the writer mutex before the detection calls: Good and Vote
	// may call into an injected policy, and a panic there must unwind
	// without the writer mutex held — otherwise every later Lock parks
	// forever behind a lock nobody owns. Detection is still serialized
	// by the engine's own policy lock.
	rw.w.Unlock()
	if rw.eng.Mode() == mPark {
		if parked {
			rw.eng.Good(spinParkTable, mPark, mSpin)
		} else if rw.eng.Vote(spinParkTable, mPark, mSpin, rw.cfg.emptyLim()) {
			// No reader parked across this writer hold: the parking
			// protocol went unused; vote toward the cheap protocol.
			rw.switchRWMode(ModePark, ModeSpin)
		}
	}
}

// switchRWMode performs a reader wait-protocol change from want to next
// through the engine's consensus word, at most once per detection round.
// A change back to spin wakes any reader still parked so none sleeps
// through the transition.
func (rw *RWMutex) switchRWMode(want, next Mode) {
	if rw.eng.TryCommit(spinParkTable, modal.Mode(want), modal.Mode(next)) {
		if next == ModeSpin {
			rw.rq.GrantAll()
		}
	}
}

// switchReaderMode performs a registration-protocol change from want to
// next by taking the write lock: commits are sound only under full
// writer exclusion (claim in place, all registration paths drained),
// which is what guarantees no reader's RLock/RUnlock pair spans a
// change. The per-P arrays are built before a cell-based mode is
// published so readers never observe a nil array, and the epoch gate's
// mode bit flips with the commit, still under the exclusion (epoch
// cells are built before Lock so its claim covers the gate). Callers
// already holding the write lock (the drain's detection) commit
// directly instead.
func (rw *RWMutex) switchReaderMode(want, next modal.Mode) {
	if next != rCentral {
		rw.readerSlots()
	}
	if next == rEpoch {
		rw.epochCells()
	}
	rw.Lock()
	// Holding the write lock freezes the mode (commits happen only under
	// writer exclusion), so a re-check here decides the whole critical
	// section.
	if rw.reng.Mode() == want {
		switch {
		case next == rEpoch:
			rw.rgate.Store(rw.rgate.Load() | rgEpoch)
		case want == rEpoch:
			rw.rgate.Store(rw.rgate.Load() &^ rgEpoch)
		}
		rw.reng.TryCommit(readerShardTable, want, next)
	}
	rw.Unlock()
}
