package reactive

import (
	"sync"
	"sync/atomic"

	"repro/reactive/modal"
)

// rwBias is the writer's claim on the reader count: Lock subtracts it so
// the count is negative for exactly as long as a writer is draining
// readers or holding the lock. It bounds the number of simultaneous
// readers.
const rwBias = 1 << 29

// RWMutex is a reactive reader/writer lock. Writers are serialized by an
// embedded reactive Mutex (itself adaptive); the reactive choice this type
// adds is *how readers wait* when a writer has claimed the lock:
//
//   - ModeSpin — readers spin with randomized exponential backoff until
//     the writer's release lets them re-register. Cheapest when writer
//     critical sections are short.
//   - ModePark — readers poll through the two-phase polling budget and
//     then park on a condition variable the releasing writer broadcasts.
//     Scalable when writers hold the lock long enough that spinning
//     readers burn whole scheduler quanta.
//
// Detection mirrors Mutex: a reader whose wait exceeded the polling budget
// votes toward ModePark (SpinFailLimit consecutive such waits switch); a
// writer release that found no parked readers votes toward ModeSpin
// (EmptyLimit consecutive such releases switch back).
//
// Readers register by compare-and-swap from a non-negative count, never by
// a blind increment, so a reader can become active only while no writer
// claim is in place, and a writer enters its critical section only after
// the count shows zero active readers — mutual exclusion holds by
// construction. The cost is that writers are strictly preferred: readers
// arriving during a writer's drain or hold wait for its release, and a
// stream of back-to-back writers can keep readers waiting longer than
// sync.RWMutex would.
//
// The zero value is an unlocked RWMutex in spin mode with the
// package-default tunables; NewRWMutex builds one with explicit Options.
// An RWMutex must not be copied after first use. As with sync.RWMutex,
// recursive read locking is not supported: if a goroutine holds the read
// lock and a writer is waiting, a nested RLock deadlocks.
type RWMutex struct {
	w Mutex // serializes writers; adaptive in its own right

	// readerCount is the number of active readers, minus rwBias while a
	// writer has claimed the lock.
	readerCount atomic.Int32

	// eng is the modal-object engine selecting the reader wait protocol;
	// all protocol changes go through its consensus CAS.
	eng modal.Engine

	mu       sync.Mutex // guards rcond's wait/broadcast ordering
	rcond    *sync.Cond // parked readers (lazily created)
	condOnce sync.Once
	condUp   atomic.Bool  // rcond exists (some reader has parked)
	rwaiters atomic.Int32 // readers parked or committing to park

	wsema     chan struct{} // parked writer draining readers (lazily created)
	wsemaOnce sync.Once

	cfg config
}

// NewRWMutex builds an RWMutex configured by opts. NewRWMutex() with no
// options is equivalent to a zero-value RWMutex. The threshold and
// polling options also configure the embedded writer mutex. A policy
// installed with WithPolicy governs only the reader protocol: policy
// instances must not be shared between primitives, so the writer mutex
// always uses the built-in streak detection (with the same thresholds).
func NewRWMutex(opts ...Option) *RWMutex {
	rw := &RWMutex{}
	rw.cfg.apply(opts)
	rw.eng.SetPolicy(rw.cfg.pol)
	rw.w.cfg = rw.cfg
	rw.w.cfg.pol = nil
	return rw
}

// Stats returns a snapshot of the reader wait protocol's adaptive state.
// The embedded writer mutex keeps its own statistics.
func (rw *RWMutex) Stats() Stats {
	return Stats{Mode: Mode(rw.eng.Mode()), Switches: rw.eng.Switches()}
}

func (rw *RWMutex) readerCond() *sync.Cond {
	rw.condOnce.Do(func() {
		rw.rcond = sync.NewCond(&rw.mu)
		rw.condUp.Store(true)
	})
	return rw.rcond
}

func (rw *RWMutex) writerSema() chan struct{} {
	rw.wsemaOnce.Do(func() { rw.wsema = make(chan struct{}, 1) })
	return rw.wsema
}

// RLock acquires the lock for reading.
//
// The fast path records no detection event: unlike Mutex, an unblocked
// read says nothing about how long readers wait *when they do collide
// with a writer* — and the spin-vs-park choice depends on that
// conditional waiting time (Chapter 4's two-phase analysis), not on how
// often collisions happen. The over-budget streak is therefore counted
// across slow-path waits only, and broken by a slow-path wait that
// completed within the budget (see rlockSlow).
func (rw *RWMutex) RLock() {
	if v := rw.readerCount.Load(); v >= 0 && rw.readerCount.CompareAndSwap(v, v+1) {
		return
	}
	rw.rlockSlow()
}

// TryRLock attempts to acquire the lock for reading without waiting.
func (rw *RWMutex) TryRLock() bool {
	for {
		v := rw.readerCount.Load()
		if v < 0 {
			return false
		}
		if rw.readerCount.CompareAndSwap(v, v+1) {
			return true
		}
	}
}

// rlockSlow waits for the writer claim to clear and re-registers. Only
// iterations spent blocked by a writer (negative count) consume the
// polling budget; reader-reader CAS races retry immediately.
func (rw *RWMutex) rlockSlow() {
	budget := int(rw.cfg.pollBudget())
	blocked := 0
	var bo modal.Backoff
	bo.Max = 16
	for {
		v := rw.readerCount.Load()
		if v >= 0 {
			if !rw.readerCount.CompareAndSwap(v, v+1) {
				continue
			}
			// Acquired. A wait that exceeded the polling budget means a
			// spinning reader burned more than Lpoll: sub-optimal, vote
			// toward the parking protocol. Detection is mode-directional:
			// spin mode monitors the cheap→scalable direction only.
			if rw.eng.Mode() == mSpin {
				if blocked > budget {
					if rw.eng.Vote(spinParkTable, mSpin, mPark, rw.cfg.failLimit()) {
						rw.switchRWMode(ModeSpin, ModePark)
					}
				} else {
					rw.eng.Good(spinParkTable, mSpin, mPark)
				}
			}
			return
		}
		if rw.eng.Mode() == mPark && blocked >= budget {
			rw.rlockPark()
			continue // woken with the claim cleared: retry registration
		}
		blocked++
		bo.Pause()
	}
}

// rlockPark is the reader's phase-two wait: park on the condition variable
// until a releasing writer (or a protocol change) broadcasts. The monitor
// pattern makes the wakeup airtight: the predicate is re-checked under mu,
// and writers broadcast under mu after clearing the claim.
func (rw *RWMutex) rlockPark() {
	c := rw.readerCond()
	c.L.Lock()
	rw.rwaiters.Add(1)
	for rw.readerCount.Load() < 0 {
		c.Wait()
	}
	rw.rwaiters.Add(-1)
	c.L.Unlock()
}

// RUnlock releases one read hold.
func (rw *RWMutex) RUnlock() {
	r := rw.readerCount.Add(-1)
	if r >= 0 {
		return
	}
	if r == -1 || r < -rwBias {
		panic("reactive: RUnlock of unlocked RWMutex")
	}
	// A writer is draining; if this was the last active reader, wake it.
	if r == -rwBias {
		select {
		case rw.writerSema() <- struct{}{}:
		default:
		}
	}
}

// Lock acquires the lock for writing.
func (rw *RWMutex) Lock() {
	rw.w.Lock()
	// Claim the lock; new readers now wait. Then drain active readers.
	if rw.readerCount.Add(-rwBias) != -rwBias {
		rw.drainReaders()
	}
}

// TryLock attempts to acquire the lock for writing without waiting.
func (rw *RWMutex) TryLock() bool {
	if !rw.w.TryLock() {
		return false
	}
	if !rw.readerCount.CompareAndSwap(0, -rwBias) {
		rw.w.Unlock()
		return false
	}
	return true
}

// drainReaders waits for the active readers to release, two-phase: poll
// through the budget, then park on the writer semaphore the last draining
// reader signals.
func (rw *RWMutex) drainReaders() {
	if modal.Poll(rw.cfg.pollBudget(), func() bool {
		return rw.readerCount.Load() == -rwBias
	}) {
		return
	}
	sema := rw.writerSema()
	for rw.readerCount.Load() != -rwBias {
		// A stale token (from a drain that finished by polling) is
		// consumed harmlessly: the loop re-checks before parking again.
		<-sema
	}
}

// Unlock releases the write hold, waking parked readers so they can
// re-register.
func (rw *RWMutex) Unlock() {
	// Parked readers sampled before the claim clears: the signal for the
	// scalable→cheap detection below.
	parked := rw.condUp.Load() && rw.rwaiters.Load() > 0
	if rw.readerCount.Add(rwBias) != 0 {
		panic("reactive: Unlock of unlocked RWMutex")
	}
	if parked || (rw.condUp.Load() && rw.rwaiters.Load() > 0) {
		rw.mu.Lock()
		rw.rcond.Broadcast()
		rw.mu.Unlock()
	}
	if rw.eng.Mode() == mPark {
		if parked {
			rw.eng.Good(spinParkTable, mPark, mSpin)
		} else if rw.eng.Vote(spinParkTable, mPark, mSpin, rw.cfg.emptyLim()) {
			// No reader parked across this writer hold: the parking
			// protocol went unused; vote toward the cheap protocol.
			rw.switchRWMode(ModePark, ModeSpin)
		}
	}
	rw.w.Unlock()
}

// switchRWMode performs a reader-protocol change from want to next
// through the engine's consensus word, at most once per detection round.
// A change back to spin wakes any reader still parked so none sleeps
// through the transition.
func (rw *RWMutex) switchRWMode(want, next Mode) {
	if rw.eng.TryCommit(spinParkTable, modal.Mode(want), modal.Mode(next)) {
		if next == ModeSpin && rw.condUp.Load() {
			rw.mu.Lock()
			rw.rcond.Broadcast()
			rw.mu.Unlock()
		}
	}
}
