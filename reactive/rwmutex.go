package reactive

import (
	"sync"
	"sync/atomic"

	"repro/reactive/internal/affinity"
	"repro/reactive/modal"
)

// rwBias is the writer's claim on the reader count: Lock subtracts it so
// the count is negative for exactly as long as a writer is draining
// readers or holding the lock. It bounds the number of simultaneous
// readers.
const rwBias = 1 << 29

// Engine-local mode indices for the reader-registration modal object.
// The public Stats mapping (ReaderStats) is ModeCAS + index, matching
// FetchOp's convention: the centralized word is the cheap single-word
// protocol, the per-P slots the sharded one.
const (
	rCentral modal.Mode = 0
	rSharded modal.Mode = 1
)

// readerShardTable is the 2-mode transition table of RWMutex's reader
// registration protocol (centralized word ↔ BRAVO-style per-P slots),
// orthogonal to the spin↔park wait table the same type also runs on.
var readerShardTable = modal.NewTable(2, []modal.Transition{
	{From: rCentral, To: rSharded, Dir: dirScaleUp, Residual: ResidualCheapHigh},
	{From: rSharded, To: rCentral, Dir: dirScaleDown, Residual: ResidualScalableLow},
})

// RWReaderTable returns the transition table RWMutex's reader
// registration protocol runs on: mode index 0 = ModeCAS (centralized
// word), 1 = ModeSharded (per-P slots) — mode index i is the public
// mode ModeCAS + i, matching FetchOpTable's convention. The table is
// immutable and shared; it is exported so harnesses and experiments can
// drive the exact state machine the primitive uses rather than a
// hand-maintained copy.
func RWReaderTable() *modal.Table { return readerShardTable }

// RWMutex is a reactive reader/writer lock. Writers are serialized by an
// embedded reactive Mutex (itself adaptive); on top of that this type
// runs two orthogonal modal objects over its readers:
//
// How readers *wait* when a writer has claimed the lock (Stats):
//
//   - ModeSpin — readers spin with randomized exponential backoff until
//     the writer's release lets them re-register. Cheapest when writer
//     critical sections are short.
//   - ModePark — readers poll through the two-phase polling budget and
//     then park on a condition variable the releasing writer broadcasts.
//     Scalable when writers hold the lock long enough that spinning
//     readers burn whole scheduler quanta.
//
// How readers *register* when no writer is about (ReaderStats):
//
//   - ModeCAS — readers compare-and-swap one centralized reader count.
//     Cheapest for occasional reads, but every RLock/RUnlock from every
//     core bounces that one cache line.
//   - ModeSharded — BRAVO-style sharded registration: each reader
//     deposits a +1 in its processor's padded slot (selected through the
//     per-P affinity substrate) and a writer drains by sweeping the
//     slots. Read-dominated workloads scale with cores instead of
//     serializing on coherence traffic; writers pay a slot sweep.
//
// Wait-protocol detection mirrors Mutex: a reader whose wait exceeded
// the polling budget votes toward ModePark (SpinFailLimit consecutive
// such waits switch); a writer release that found no parked readers
// votes toward ModeSpin (EmptyLimit consecutive such releases switch
// back). Registration detection: a reader whose centralized CAS lost to
// another *reader* votes toward ModeSharded (SpinFailLimit consecutive
// losses switch); a writer whose drain found the lock already quiet
// votes toward ModeCAS (EmptyLimit consecutive quiet drains switch
// back). Registration-protocol changes are committed only under full
// writer exclusion, so no reader's RLock/RUnlock pair ever spans one.
//
// Readers register by compare-and-swap from a non-negative count (or by
// a slot deposit re-validated against the writer claim), never by a
// blind increment, so a reader can become active only while no writer
// claim is in place, and a writer enters its critical section only
// after the centralized count and every slot show zero active readers —
// mutual exclusion holds by construction. The cost is that writers are
// strictly preferred: readers arriving during a writer's drain or hold
// wait for its release, and a stream of back-to-back writers can keep
// readers waiting longer than sync.RWMutex would.
//
// The zero value is an unlocked RWMutex in spin mode with centralized
// registration and the package-default tunables; NewRWMutex builds one
// with explicit Options. An RWMutex must not be copied after first use.
// As with sync.RWMutex, recursive read locking is prohibited: if a
// goroutine holds the read lock while anything performs a write
// acquisition — an application writer, or a reader-driven registration
// protocol change, which takes the write lock itself — a nested RLock
// deadlocks, so even a writer-free program must not nest read locks.
// Calling RUnlock without a matching RLock panics in centralized mode;
// in sharded mode it is undetectable (the slots admit no cheap
// per-reader check) and leaves the lock permanently wedged.
type RWMutex struct {
	w Mutex // serializes writers; adaptive in its own right

	// readerCount is the centralized registration word: the number of
	// centrally-registered active readers, minus rwBias while a writer
	// has claimed the lock. The claim bit doubles as the gate sharded
	// readers validate against, so the word stays authoritative for
	// writer exclusion in both registration modes.
	readerCount atomic.Int32

	// eng selects the reader *wait* protocol (spin ↔ park); reng selects
	// the reader *registration* protocol (centralized ↔ sharded). All
	// protocol changes go through the respective engine's consensus CAS.
	eng  modal.Engine
	reng modal.Engine

	// slots are the per-P reader-registration slots (lazily built, one
	// coherence granule each). Slot values are deltas, not occupancies:
	// a reader may deposit its +1 in one slot and its -1 in another
	// after migrating, so only the sum is meaningful — zero iff no
	// sharded reader is active (see drainReaders for why a sweep cannot
	// misread that).
	slots     []affinity.Cell
	slotsOnce sync.Once
	slotsUp   atomic.Bool

	mu       sync.Mutex // guards rcond's wait/broadcast ordering
	rcond    *sync.Cond // parked readers (lazily created)
	condOnce sync.Once
	condUp   atomic.Bool  // rcond exists (some reader has parked)
	rwaiters atomic.Int32 // readers parked or committing to park

	wsema     chan struct{} // parked writer draining readers (lazily created)
	wsemaOnce sync.Once

	cfg config
}

// NewRWMutex builds an RWMutex configured by opts. NewRWMutex() with no
// options is equivalent to a zero-value RWMutex. The threshold and
// polling options also configure the embedded writer mutex and the
// registration protocol's streaks. A policy installed with WithPolicy
// governs only the reader wait protocol: policy instances must not be
// shared between primitives — or between the engines of one primitive —
// so the writer mutex and the registration engine always use the
// built-in streak detection (with the same thresholds).
func NewRWMutex(opts ...Option) *RWMutex {
	rw := &RWMutex{}
	rw.cfg.apply(opts)
	rw.eng.SetPolicy(rw.cfg.pol)
	rw.w.cfg = rw.cfg
	rw.w.cfg.pol = nil
	rw.w.cfg.initModeSet = false
	if rw.cfg.initModeSet {
		switch rw.cfg.initMode {
		case ModeSpin, ModeCAS: // the zero modes of the two engines
		case ModePark:
			rw.eng.TryCommit(spinParkTable, mSpin, mPark)
		case ModeSharded:
			// Sound without writer exclusion only because the lock is
			// not yet shared: no reader exists to span the commit.
			rw.readerSlots()
			rw.reng.TryCommit(readerShardTable, rCentral, rSharded)
		default:
			panic("reactive: NewRWMutex supports initial modes ModeSpin, ModePark, ModeCAS, and ModeSharded")
		}
	}
	return rw
}

// Stats returns a snapshot of the reader wait protocol's adaptive state
// (ModeSpin or ModePark). The embedded writer mutex keeps its own
// statistics; ReaderStats reports the registration protocol.
func (rw *RWMutex) Stats() Stats {
	return Stats{Mode: Mode(rw.eng.Mode()), Switches: rw.eng.Switches()}
}

// ReaderStats returns a snapshot of the reader registration protocol's
// adaptive state: ModeCAS while readers register on the centralized
// word, ModeSharded while they register in per-P slots.
func (rw *RWMutex) ReaderStats() Stats {
	return Stats{Mode: ModeCAS + Mode(rw.reng.Mode()), Switches: rw.reng.Switches()}
}

func (rw *RWMutex) readerCond() *sync.Cond {
	rw.condOnce.Do(func() {
		rw.rcond = sync.NewCond(&rw.mu)
		rw.condUp.Store(true)
	})
	return rw.rcond
}

func (rw *RWMutex) writerSema() chan struct{} {
	rw.wsemaOnce.Do(func() { rw.wsema = make(chan struct{}, 1) })
	return rw.wsema
}

// readerSlots returns the slot array, creating it on first use, sized to
// affinity.Shards() (the next power of two ≥ GOMAXPROCS).
func (rw *RWMutex) readerSlots() []affinity.Cell {
	rw.slotsOnce.Do(func() {
		rw.slots = make([]affinity.Cell, affinity.Shards())
		rw.slotsUp.Store(true)
	})
	return rw.slots
}

// RLock acquires the lock for reading.
//
// The fast path records no wait-protocol detection event: unlike Mutex,
// an unblocked read says nothing about how long readers wait *when they
// do collide with a writer* — and the spin-vs-park choice depends on
// that conditional waiting time (Chapter 4's two-phase analysis), not on
// how often collisions happen. The over-budget streak is therefore
// counted across slow-path waits only, and broken by a slow-path wait
// that completed within the budget (see rlockSlow). Registration
// detection likewise lives in the slow path: only a CAS lost to another
// reader signals that the centralized word is the bottleneck.
func (rw *RWMutex) RLock() {
	if rw.reng.Mode() == rSharded {
		if rw.rlockSharded() {
			return
		}
	} else if v := rw.readerCount.Load(); v >= 0 && rw.readerCount.CompareAndSwap(v, v+1) {
		// Re-validate the mode: the read that chose the centralized
		// protocol may predate a commit to sharded whose writer has
		// since released. Our +1 is registered, so the mode is frozen
		// from here until RUnlock (a commit's drain cannot pass it);
		// if the re-check still says centralized, RUnlock will too.
		if rw.reng.Mode() == rCentral {
			return
		}
		rw.runlockCentral()
	}
	rw.rlockSlow()
}

// rlockSharded attempts one sharded-mode registration: deposit a +1 in
// this P's slot, then validate that no writer claim is in place and the
// registration protocol is still sharded. Either validation failing
// undoes the deposit and reports false (slow path).
//
// The validation order is what makes the writer's sweep exclusion-safe:
// the deposit happens before the gate load, and the writer sets the
// gate before sweeping, so a reader that observed the gate clear has
// its +1 visible to every sweep of that drain — and once registered,
// the mode cannot change until this reader RUnlocks, because every
// registration-protocol commit happens under a full writer drain that
// this +1 blocks. RUnlock therefore always observes the same mode the
// registration used.
func (rw *RWMutex) rlockSharded() bool {
	slots := rw.readerSlots()
	s := &slots[affinity.Pin()&(len(slots)-1)]
	// Deposit and validate while still pinned (three atomic ops, no
	// user code): preemption cannot widen the window in which a
	// sweeping writer sees a deposit whose gate check is still pending.
	s.N.Add(1)
	if rw.readerCount.Load() >= 0 && rw.reng.Mode() == rSharded {
		affinity.Unpin()
		return true
	}
	affinity.Unpin()
	rw.runlockSharded(s)
	return false
}

// runlockSharded releases one sharded registration (or undoes a failed
// one) and nudges a draining writer to re-sweep.
func (rw *RWMutex) runlockSharded(s *affinity.Cell) {
	s.N.Add(-1)
	if rw.readerCount.Load() < 0 {
		// A writer is draining and may be parked on the semaphore
		// waiting for the slot sum to reach zero; wake it to re-sweep.
		// A stale token is consumed harmlessly (the drain re-checks).
		select {
		case rw.writerSema() <- struct{}{}:
		default:
		}
	}
}

// runlockCentral releases one centralized registration (or undoes a
// stale one), waking a draining writer when the last reader leaves.
func (rw *RWMutex) runlockCentral() {
	r := rw.readerCount.Add(-1)
	if r >= 0 {
		return
	}
	if r == -1 || r < -rwBias {
		panic("reactive: RUnlock of unlocked RWMutex")
	}
	// A writer is draining; if this was the last active reader, wake it.
	if r == -rwBias {
		select {
		case rw.writerSema() <- struct{}{}:
		default:
		}
	}
}

// TryRLock attempts to acquire the lock for reading without waiting.
func (rw *RWMutex) TryRLock() bool {
	for {
		if rw.reng.Mode() == rSharded {
			if rw.rlockSharded() {
				return true
			}
			if rw.readerCount.Load() < 0 {
				return false // writer claim in place
			}
			continue // registration protocol changed under us: redispatch
		}
		v := rw.readerCount.Load()
		if v < 0 {
			return false
		}
		if rw.readerCount.CompareAndSwap(v, v+1) {
			if rw.reng.Mode() == rCentral {
				return true
			}
			rw.runlockCentral() // stale centralized registration: redispatch
		}
	}
}

// rlockSlow waits for the writer claim to clear and re-registers under
// whichever registration protocol is then selected. Only iterations
// spent blocked by a writer (negative centralized count) consume the
// polling budget; reader-reader CAS races retry immediately — but each
// loss to another reader is exactly the coherence traffic the sharded
// protocol removes, so it votes toward sharded registration.
func (rw *RWMutex) rlockSlow() {
	budget := int(rw.cfg.pollBudget())
	blocked := 0
	casLosses := 0
	var bo modal.Backoff
	bo.Max = backoffCeiling
	for {
		if rw.readerCount.Load() >= 0 {
			// No writer claim: attempt a registration under the current
			// protocol. Failures here are races (a claiming writer, a
			// protocol change, another reader's CAS), not waits.
			if rw.reng.Mode() == rSharded {
				if rw.rlockSharded() {
					rw.noteReadWait(blocked, budget)
					return
				}
				continue
			}
			v := rw.readerCount.Load()
			if v < 0 {
				continue
			}
			if rw.readerCount.CompareAndSwap(v, v+1) {
				if rw.reng.Mode() != rCentral {
					rw.runlockCentral() // stale: redispatch sharded
					continue
				}
				if casLosses == 0 {
					// A loss-free registration breaks the reader-contention
					// streak, so only *consecutive* losses — not losses
					// accumulated over the lock's lifetime — reach the
					// switch threshold.
					rw.reng.Good(readerShardTable, rCentral, rSharded)
				}
				rw.noteReadWait(blocked, budget)
				return
			}
			if rw.readerCount.Load() < 0 {
				// The CAS lost to a writer's claim, not to another
				// reader: that is the wait protocol's signal (counted at
				// the top of the loop), not registration contention.
				continue
			}
			// Lost the centralized word to another reader: the cheap
			// registration protocol is serializing readers on one cache
			// line — the regime sharded slots are built for.
			casLosses++
			if rw.reng.Vote(readerShardTable, rCentral, rSharded, rw.cfg.failLimit()) {
				rw.switchReaderMode(rCentral, rSharded)
			}
			continue
		}
		if rw.eng.Mode() == mPark && blocked >= budget {
			rw.rlockPark()
			continue // woken with the claim cleared: retry registration
		}
		blocked++
		bo.Pause()
	}
}

// noteReadWait runs the wait-protocol detection on one completed
// slow-path read acquisition: a wait that exceeded the polling budget
// means a spinning reader burned more than Lpoll — sub-optimal, vote
// toward the parking protocol; a within-budget wait breaks the streak.
// Detection is mode-directional: spin mode monitors the cheap→scalable
// direction only.
func (rw *RWMutex) noteReadWait(blocked, budget int) {
	if rw.eng.Mode() != mSpin {
		return
	}
	if blocked > budget {
		if rw.eng.Vote(spinParkTable, mSpin, mPark, rw.cfg.failLimit()) {
			rw.switchRWMode(ModeSpin, ModePark)
		}
	} else {
		rw.eng.Good(spinParkTable, mSpin, mPark)
	}
}

// rlockPark is the reader's phase-two wait: park on the condition variable
// until a releasing writer (or a protocol change) broadcasts. The monitor
// pattern makes the wakeup airtight: the predicate is re-checked under mu,
// and writers broadcast under mu after clearing the claim.
func (rw *RWMutex) rlockPark() {
	c := rw.readerCond()
	c.L.Lock()
	rw.rwaiters.Add(1)
	for rw.readerCount.Load() < 0 {
		c.Wait()
	}
	rw.rwaiters.Add(-1)
	c.L.Unlock()
}

// RUnlock releases one read hold. The registration mode it observes is
// the one RLock registered under: a registered reader blocks every
// registration-protocol commit until it releases (see rlockSharded).
func (rw *RWMutex) RUnlock() {
	if rw.reng.Mode() == rSharded {
		slots := rw.readerSlots()
		s := &slots[affinity.Pin()&(len(slots)-1)]
		affinity.Unpin()
		rw.runlockSharded(s)
		return
	}
	rw.runlockCentral()
}

// Lock acquires the lock for writing.
func (rw *RWMutex) Lock() {
	rw.w.Lock()
	// Claim the lock; new readers now wait. Then drain active readers.
	// Once the slots exist the sweep is permanent, whatever the current
	// registration mode: a reader that observed the sharded mode may
	// deposit into a slot arbitrarily late, so no later drain may skip
	// the slots without risking lost exclusion (the same reasoning as
	// FetchOp.Value's permanent reconciliation).
	if rw.readerCount.Add(-rwBias) != -rwBias || rw.slotsUp.Load() {
		rw.drainReaders()
	}
}

// TryLock attempts to acquire the lock for writing without waiting.
func (rw *RWMutex) TryLock() bool {
	if !rw.w.TryLock() {
		return false
	}
	if !rw.readerCount.CompareAndSwap(0, -rwBias) {
		rw.w.Unlock()
		return false
	}
	if rw.slotSum() != 0 {
		// Active sharded readers (or a transient deposit): with the
		// claim already in place a single sweep reading zero proves
		// quiescence, so a nonzero read means waiting — undo and fail.
		rw.readerCount.Add(rwBias)
		// A park-mode reader may have parked during the transient
		// claim; without this wake only a later writer's release would
		// free it.
		if rw.condUp.Load() && rw.rwaiters.Load() > 0 {
			rw.mu.Lock()
			rw.rcond.Broadcast()
			rw.mu.Unlock()
		}
		rw.w.Unlock()
		return false
	}
	return true
}

// slotSum sweeps the reader slots. With the writer claim in place the
// sum cannot misread zero while a sharded reader is active: registered
// deposits all precede the claim (a reader validates the gate after
// depositing), so every sweep read includes them, and each release
// decrement is paired with a deposit the sweep also saw. Transient
// deposit/undo pairs can only inflate the sum — a conservative re-sweep,
// never a lost reader.
func (rw *RWMutex) slotSum() int64 {
	if !rw.slotsUp.Load() {
		return 0
	}
	var sum int64
	for i := range rw.slots {
		sum += rw.slots[i].N.Load()
	}
	return sum
}

// drained reports whether every active reader — centrally registered or
// slot-registered — has released.
func (rw *RWMutex) drained() bool {
	return rw.readerCount.Load() == -rwBias && rw.slotSum() == 0
}

// drainReaders waits for the active readers to release, two-phase: poll
// through the budget, then park on the writer semaphore that the last
// draining reader (central or sharded) signals. It also runs the
// registration protocol's scale-down detection: a drain that found the
// lock already quiet means the slot machinery went unused across a whole
// writer round — EmptyLimit consecutive such drains retire the sharded
// protocol. The commit happens right here, under the writer's own
// exclusion (claim in place, drain complete), so no reader can span it.
func (rw *RWMutex) drainReaders() {
	idle := rw.drained()
	if !idle && !modal.Poll(rw.cfg.pollBudget(), rw.drained) {
		sema := rw.writerSema()
		for !rw.drained() {
			// A stale token (from a drain that finished by polling) is
			// consumed harmlessly: the loop re-checks before parking again.
			<-sema
		}
	}
	if rw.reng.Mode() == rSharded {
		if idle {
			if rw.reng.Vote(readerShardTable, rSharded, rCentral, rw.cfg.emptyLim()) {
				rw.reng.TryCommit(readerShardTable, rSharded, rCentral)
			}
		} else {
			rw.reng.Good(readerShardTable, rSharded, rCentral)
		}
	}
}

// Unlock releases the write hold, waking parked readers so they can
// re-register.
func (rw *RWMutex) Unlock() {
	// Parked readers sampled before the claim clears: the signal for the
	// scalable→cheap detection below.
	parked := rw.condUp.Load() && rw.rwaiters.Load() > 0
	if rw.readerCount.Add(rwBias) != 0 {
		panic("reactive: Unlock of unlocked RWMutex")
	}
	if parked || (rw.condUp.Load() && rw.rwaiters.Load() > 0) {
		rw.mu.Lock()
		rw.rcond.Broadcast()
		rw.mu.Unlock()
	}
	if rw.eng.Mode() == mPark {
		if parked {
			rw.eng.Good(spinParkTable, mPark, mSpin)
		} else if rw.eng.Vote(spinParkTable, mPark, mSpin, rw.cfg.emptyLim()) {
			// No reader parked across this writer hold: the parking
			// protocol went unused; vote toward the cheap protocol.
			rw.switchRWMode(ModePark, ModeSpin)
		}
	}
	rw.w.Unlock()
}

// switchRWMode performs a reader wait-protocol change from want to next
// through the engine's consensus word, at most once per detection round.
// A change back to spin wakes any reader still parked so none sleeps
// through the transition.
func (rw *RWMutex) switchRWMode(want, next Mode) {
	if rw.eng.TryCommit(spinParkTable, modal.Mode(want), modal.Mode(next)) {
		if next == ModeSpin && rw.condUp.Load() {
			rw.mu.Lock()
			rw.rcond.Broadcast()
			rw.mu.Unlock()
		}
	}
}

// switchReaderMode performs a registration-protocol change from want to
// next by taking the write lock: commits are sound only under full
// writer exclusion (claim in place, both registration paths drained),
// which is what guarantees no reader's RLock/RUnlock pair spans a
// change. The slots are built before a slot-based mode is published so
// readers never observe a nil array. Callers already holding the write
// lock (the drain's scale-down detection) commit directly instead.
func (rw *RWMutex) switchReaderMode(want, next modal.Mode) {
	if next != rCentral {
		rw.readerSlots()
	}
	rw.Lock()
	rw.reng.TryCommit(readerShardTable, want, next)
	rw.Unlock()
}
