package reactive

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/reactive/modal"
	"repro/reactive/policy"
)

func TestCounterZeroValue(t *testing.T) {
	var c Counter
	if got := c.Load(); got != 0 {
		t.Fatalf("zero value Load = %d, want 0", got)
	}
	c.Add(5)
	c.Add(-2)
	if got := c.Load(); got != 3 {
		t.Fatalf("Load = %d, want 3", got)
	}
	if st := c.Stats(); st.Mode != ModeCAS || st.Switches != 0 {
		t.Fatalf("Stats = %+v, want cas mode, 0 switches", st)
	}
}

// forceSharded drives the counter into the sharded protocol via the
// detection machinery itself.
func forceSharded(t *testing.T, c *Counter) {
	t.Helper()
	for i := 0; c.Stats().Mode != ModeSharded; i++ {
		c.noteContendedAdd()
		if i > 10*DefaultSpinFailLimit {
			t.Fatal("could not force sharded mode")
		}
	}
}

// TestCounterDetectionStreak pins Counter's cheap→scalable detection to
// the documented semantics: SpinFailLimit consecutive contended Adds
// switch ModeCAS → ModeSharded; an uncontended Add breaks the streak.
func TestCounterDetectionStreak(t *testing.T) {
	var c Counter
	for i := 0; i < DefaultSpinFailLimit-1; i++ {
		c.noteContendedAdd()
	}
	c.Add(1) // uncontended: break the streak
	for i := 0; i < DefaultSpinFailLimit-1; i++ {
		c.noteContendedAdd()
		if c.Stats().Mode != ModeCAS {
			t.Fatalf("switched after %d contended Adds, want %d", i+1, DefaultSpinFailLimit)
		}
	}
	c.noteContendedAdd()
	if c.Stats().Mode != ModeSharded {
		t.Fatal("did not switch after a full contended streak")
	}
}

// TestCounterShardedSumExact: sharded-mode Adds are never lost; Load
// reconciles them all.
func TestCounterShardedSumExact(t *testing.T) {
	c := NewCounter()
	forceSharded(t, c)
	const goroutines, iters = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*iters {
		t.Fatalf("Load = %d, want %d", got, goroutines*iters)
	}
	// A second Load must not double-count reconciled cells.
	if got := c.Load(); got != goroutines*iters {
		t.Fatalf("second Load = %d, want %d", got, goroutines*iters)
	}
}

// TestCounterReturnsToCAS: a single writer plus reconciling Loads bring a
// sharded counter back to the CAS protocol without losing the count.
func TestCounterReturnsToCAS(t *testing.T) {
	c := NewCounter(WithEmptyLimit(3))
	forceSharded(t, c)
	c.Add(10) // lands in a cell
	total := int64(10)
	for i := 0; i < 10 && c.Stats().Mode != ModeCAS; i++ {
		c.Add(1)
		total++
		c.Load() // reconcile; observes ≤1 active cell
	}
	if c.Stats().Mode != ModeCAS {
		t.Fatal("single-writer loads did not return the counter to CAS mode")
	}
	if got := c.Load(); got != total {
		t.Fatalf("Load = %d after mode changes, want %d", got, total)
	}
	if c.Stats().Switches < 2 {
		t.Fatalf("switches = %d, want ≥ 2", c.Stats().Switches)
	}
}

// TestCounterConcurrentMixed hammers Add and Load across both protocols
// and forced switches; the final count must be exact. Run with -race.
func TestCounterConcurrentMixed(t *testing.T) {
	c := NewCounter(WithSpinFailLimit(1), WithEmptyLimit(1))
	const goroutines = 16
	iters := 3000
	if testing.Short() {
		iters = 800
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var lwg sync.WaitGroup
	lwg.Add(1)
	go func() { // reconciling reader, driving down-switch votes
		defer lwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.Load()
				runtime.Gosched()
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("counter adds did not complete (livelock across mode switches?)")
	}
	close(stop)
	lwg.Wait()
	if got := c.Load(); got != goroutines*int64(iters) {
		t.Fatalf("Load = %d, want %d", got, goroutines*int64(iters))
	}
}

// TestCounterLoadRacesModeSwitches pins the reconciliation/consensus
// race: goroutines hammer Add while a forcer flips the counter across
// every edge of the fetch-op transition chain and a dedicated reader
// drives reconciling Loads the whole time, under the race detector when
// enabled. A Load racing a sharded→CAS (or combining→sharded) commit
// must neither lose a cell's pending delta nor double-count one, and no
// Add may strand; the timeout guard matches the PR 2 stress pattern.
func TestCounterLoadRacesModeSwitches(t *testing.T) {
	c := NewCounter()
	const goroutines = 16
	iters := 4000
	if testing.Short() {
		iters = 1000
	}
	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(2)
	go func() { // forcer: walk the transition chain in both directions
		defer aux.Done()
		edges := []struct{ from, to modal.Mode }{
			{fCAS, fSharded}, {fSharded, fCAS},
			{fSharded, fCombining}, {fCombining, fSharded},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := edges[i%len(edges)]
			c.f.switchFop(e.from, e.to)
			time.Sleep(20 * time.Microsecond)
		}
	}()
	var lastSeen atomic.Int64
	go func() { // reconciling reader racing the commits
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
				v := c.Load()
				if prev := lastSeen.Load(); v < prev {
					t.Errorf("Load went backwards under monotone Adds: %d after %d", v, prev)
					return
				} else {
					lastSeen.Store(v)
				}
				runtime.Gosched()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		close(stop)
		t.Fatal("stranded adder: Adds did not complete across forced mode switches")
	}
	close(stop)
	aux.Wait()
	if got := c.Load(); got != goroutines*int64(iters) {
		t.Fatalf("Load = %d, want %d", got, goroutines*int64(iters))
	}
}

// TestCounterSwitchesUnderContention: real contention drives the counter
// into the sharded protocol through the production Add path.
func TestCounterSwitchesUnderContention(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs ≥ 2 CPUs to generate CAS contention")
	}
	c := NewCounter(WithSpinFailLimit(1))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2*runtime.GOMAXPROCS(0); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Add(1)
				}
			}
		}()
	}
	deadline := time.After(3 * time.Second)
	for c.Stats().Mode != ModeSharded {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			t.Skip("CAS contention never detected on this host")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if c.Stats().Switches == 0 {
		t.Fatal("no protocol switches recorded")
	}
}

// TestCounterInjectedPolicy: an always-switch policy moves the counter to
// sharded on the first contended Add, and back to CAS on the first
// single-writer Load.
func TestCounterInjectedPolicy(t *testing.T) {
	c := NewCounter(WithPolicy(policy.AlwaysSwitch{}))
	c.noteContendedAdd()
	if c.Stats().Mode != ModeSharded {
		t.Fatal("always-switch policy did not switch on first contended Add")
	}
	c.Add(1)
	c.Load()
	if c.Stats().Mode != ModeCAS {
		t.Fatal("always-switch policy did not switch back on single-writer Load")
	}
}
