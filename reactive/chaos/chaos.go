// Package chaos is the public face of the fault-injection substrate in
// reactive/internal/chaos: schedule derivation, activation, and the
// point catalog, re-exported for the torture harness (internal/torture,
// cmd/torture) and for external stress rigs. See the internal package
// for the model — named fault points compiled to no-ops by default and
// activated, under the reactive_chaos build tag, by a deterministic
// per-seed Schedule whose JSON encoding is the replayable repro
// artifact.
package chaos

import ichaos "repro/reactive/internal/chaos"

// Built reports whether this binary was compiled with the
// reactive_chaos build tag, i.e. whether Enable can actually inject
// faults.
const Built = ichaos.Built

// Fault-point op names, as they appear in Rule.Op.
const (
	OpYield = ichaos.OpYield
	OpSpin  = ichaos.OpSpin
	OpSleep = ichaos.OpSleep
)

// Aliases for the schedule vocabulary; see the internal package for
// field semantics.
type (
	Rule      = ichaos.Rule
	Schedule  = ichaos.Schedule
	PointStat = ichaos.PointStat
)

// Catalog returns the instrumented fault-point ids in canonical order.
func Catalog() []string { return ichaos.Catalog() }

// New derives the deterministic fault schedule for seed over the full
// point catalog. Same seed, byte-identical Encode() output — in this
// process or any other.
func New(seed uint64) *Schedule { return ichaos.NewSchedule(seed, ichaos.Catalog()) }

// Decode parses a schedule previously produced by (*Schedule).Encode.
func Decode(b []byte) (*Schedule, error) { return ichaos.DecodeSchedule(b) }

// Enable installs s as the active schedule and reports whether the
// binary can honor it (false without the reactive_chaos build tag).
func Enable(s *Schedule) bool { return ichaos.Enable(s) }

// Disable removes the active schedule.
func Disable() { ichaos.Disable() }

// Stats reports per-point activity for the active (or most recent)
// schedule; nil without the reactive_chaos build tag.
func Stats() []PointStat { return ichaos.Stats() }
