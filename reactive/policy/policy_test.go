package policy

import (
	"testing"
	"testing/quick"
)

func TestAlwaysSwitch(t *testing.T) {
	p := AlwaysSwitch{}
	if !p.Suboptimal(0, 1) {
		t.Fatal("always-switch must switch on first sub-optimal request")
	}
}

func TestCompetitiveAccumulates(t *testing.T) {
	p := NewCompetitive(1000)
	for i := 0; i < 9; i++ {
		if p.Suboptimal(0, 100) {
			t.Fatalf("switched after %d of 10 needed", i+1)
		}
	}
	if !p.Suboptimal(0, 100) {
		t.Fatal("must switch once cumulative residual reaches threshold")
	}
	p.Switched()
	if p.Suboptimal(0, 100) {
		t.Fatal("accumulator not cleared by Switched")
	}
}

func TestCompetitiveSurvivesStreakBreaks(t *testing.T) {
	// The defining property vs hysteresis: optimal requests do not clear
	// the accumulator.
	p := NewCompetitive(300)
	p.Suboptimal(0, 100)
	p.Suboptimal(0, 100)
	p.Optimal(0)
	p.Optimal(0)
	if !p.Suboptimal(0, 100) {
		t.Fatal("competitive policy must accumulate across streak breaks")
	}
}

func TestHysteresisStreaks(t *testing.T) {
	p := NewHysteresis(3, 5)
	p.Suboptimal(0, 1)
	p.Suboptimal(0, 1)
	p.Optimal(0) // break the streak
	p.Suboptimal(0, 1)
	if p.Suboptimal(0, 1) {
		t.Fatal("streak should have been reset by optimal request")
	}
	if !p.Suboptimal(0, 1) {
		t.Fatal("3 consecutive sub-optimal requests must switch dir 0")
	}
	p.Switched()
	for i := 0; i < 4; i++ {
		if p.Suboptimal(1, 1) {
			t.Fatalf("dir 1 switched after %d < 5", i+1)
		}
	}
	if !p.Suboptimal(1, 1) {
		t.Fatal("5 consecutive must switch dir 1")
	}
}

func TestHysteresisDirectionsIndependent(t *testing.T) {
	p := NewHysteresis(2, 2)
	p.Suboptimal(0, 1)
	// A sub-optimal in the other direction resets direction 0's streak.
	p.Suboptimal(1, 1)
	if p.Suboptimal(0, 1) {
		t.Fatal("direction streaks must reset each other")
	}
}

func TestWeightedAverageConverges(t *testing.T) {
	p := NewWeightedAverage(64, 192)
	switched := false
	for i := 0; i < 50 && !switched; i++ {
		switched = p.Suboptimal(0, 1)
	}
	if !switched {
		t.Fatal("all-sub-optimal stream must eventually cross threshold")
	}
	p.Switched()
	// A mixed stream biased toward optimal should not switch.
	for i := 0; i < 200; i++ {
		p.Optimal(0)
		p.Optimal(0)
		p.Optimal(0)
		if p.Suboptimal(0, 1) {
			t.Fatal("25% sub-optimal stream should not cross 75% threshold")
		}
	}
}

func TestQuiescent(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Policy
	}{
		{"always", AlwaysSwitch{}},
		{"competitive", NewCompetitive(1000)},
		{"hysteresis", NewHysteresis(3, 5)},
		{"weighted-average", NewWeightedAverage(64, 192)},
	} {
		q, ok := tc.p.(Quiescer)
		if !ok {
			t.Fatalf("%s does not implement Quiescer", tc.name)
		}
		if !q.Quiescent() {
			t.Fatalf("%s not quiescent at start", tc.name)
		}
		tc.p.Suboptimal(0, 10)
		if tc.name != "always" && q.Quiescent() {
			t.Fatalf("%s quiescent right after a sub-optimal request", tc.name)
		}
		tc.p.Switched()
		if !q.Quiescent() {
			t.Fatalf("%s not quiescent after Switched", tc.name)
		}
	}
	// Decaying policies return to quiescence through Optimal alone; the
	// competitive policy, by design, does not.
	h := NewHysteresis(3, 5)
	h.Suboptimal(0, 1)
	h.Optimal(0)
	if !h.Quiescent() {
		t.Fatal("hysteresis must re-quiesce after an optimal request")
	}
	w := NewWeightedAverage(64, 192)
	w.Suboptimal(0, 1)
	for i := 0; i < 64 && !w.Quiescent(); i++ {
		w.Optimal(0)
	}
	if !w.Quiescent() {
		t.Fatal("weighted average must decay to quiescence")
	}
	c := NewCompetitive(1000)
	c.Suboptimal(0, 10)
	c.Optimal(0)
	if c.Quiescent() {
		t.Fatal("competitive must retain pressure across optimal requests")
	}
}

func TestCompetitiveWithinBLSBound(t *testing.T) {
	// Property: for any request sequence, total residual paid by the
	// competitive policy between two switches is < threshold + max single
	// residual, so per-cycle cost is bounded — the building block of the
	// 3-competitive argument.
	f := func(residuals []uint16) bool {
		const threshold = 5000
		p := NewCompetitive(threshold)
		var sinceSwitch uint64
		for _, r := range residuals {
			res := uint64(r%300) + 1
			sinceSwitch += res
			if p.Suboptimal(0, res) {
				if sinceSwitch < threshold {
					return false // switched too early
				}
				p.Switched()
				sinceSwitch = 0
			} else if sinceSwitch >= threshold {
				return false // failed to switch in time
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
