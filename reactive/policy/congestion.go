package policy

// Congestion is a feedback-control switching policy modeled on TCP
// congestion control rather than on the thesis's streak counters. It
// treats the residual cost of each sub-optimal request as a round-trip
// time sample and maintains an RFC 6298-style smoothed estimate
// (sRTT/RTTVAR, all integer arithmetic), and it treats mode occupancy —
// the number of requests the current protocol has served since the last
// switch — as a congestion window that gates how eagerly the policy is
// allowed to switch again.
//
// The mapping, in congestion-control terms (DESIGN.md §6):
//
//   - RTT sample: the residual cost passed to Suboptimal. sRTT and
//     RTTVAR evolve exactly as in RFC 6298 (srtt = 7/8·srtt + 1/8·R,
//     rttvar = 3/4·rttvar + 1/4·|srtt−R|, RTO = srtt + 4·rttvar),
//     with the divisions truncating.
//   - Loss signal: a sample exceeding the current RTO. Such outliers
//     accumulate pressure at twice their residual.
//   - cwnd: the occupancy window wnd. A switch in direction d fires
//     when that direction's accumulated pressure reaches wnd·sRTT, so
//     with a steady residual the policy behaves like a streak counter
//     of length ≈ wnd whose threshold self-scales to the observed
//     cost level.
//   - AIMD: the window adapts at each Switched call. A premature flip — the
//     mode was abandoned after serving fewer than wnd/2 requests —
//     is the congestion event: the window doubles (multiplicative
//     damping of the switch rate, up to MaxWindow). A switch out of a
//     long stable residency (≥ 8·wnd requests) additively shrinks the
//     window by one (down to MinWindow), restoring agility.
//
// Pressure in one direction clears pressure in the other, and any
// optimal request halves both accumulators, so the policy decays toward
// quiescence whenever the evidence is mixed. Everything is driven by
// the call sequence alone — no wall clock, no randomness — so the same
// instance produces byte-identical decisions in the simulator's
// deterministic experiments and on the native primitives.
//
// Like every Policy, a Congestion instance is not synchronized and must
// not be shared between primitives; the consumer serializes all calls.
type Congestion struct {
	// MinWindow and MaxWindow bound the occupancy window. The
	// constructor sets 2 and 256.
	MinWindow uint64
	MaxWindow uint64

	wnd       uint64    // occupancy window (cwnd analog)
	srtt      uint64    // smoothed residual estimate
	rttvar    uint64    // smoothed residual deviation
	hasSample bool      // first-sample initialization done
	pressure  [2]uint64 // per-direction accumulated residual
	occupancy uint64    // requests observed since the last switch
}

// DefaultCongestionWindow is the initial occupancy window installed by
// NewCongestion — deliberately the same streak length as the native
// primitives' DefaultEmptyLimit, so an untuned Congestion starts with
// comparable inertia to the built-in detection.
const DefaultCongestionWindow = 8

// NewCongestion builds a Congestion policy with the default window
// bounds (2..256) and initial window DefaultCongestionWindow.
func NewCongestion() *Congestion {
	return &Congestion{MinWindow: 2, MaxWindow: 256, wnd: DefaultCongestionWindow}
}

// Name implements Policy.
func (p *Congestion) Name() string { return "congestion" }

// sample folds one residual observation into the sRTT/RTTVAR estimate.
func (p *Congestion) sample(r uint64) {
	if !p.hasSample {
		p.srtt = r
		p.rttvar = r / 2
		p.hasSample = true
		return
	}
	diff := p.srtt - r
	if r > p.srtt {
		diff = r - p.srtt
	}
	p.rttvar = (3*p.rttvar + diff) / 4
	p.srtt = (7*p.srtt + r) / 8
}

// Suboptimal implements Policy. Each call contributes one RTT sample to
// the estimator and residual-weighted pressure toward a switch in dir;
// samples above the current RTO count double. It reports true once the
// direction's pressure reaches wnd·sRTT.
func (p *Congestion) Suboptimal(dir Direction, residual uint64) bool {
	d := int(dir) & 1
	p.occupancy++
	rto := p.srtt + 4*p.rttvar
	p.sample(residual)
	w := residual
	if w == 0 {
		w = 1
	}
	if p.hasSample && residual > rto && rto > 0 {
		w *= 2
	}
	p.pressure[d] += w
	p.pressure[1-d] = 0
	threshold := p.wnd * p.srtt
	if threshold == 0 {
		threshold = p.wnd
	}
	return p.pressure[d] >= threshold
}

// Optimal implements Policy. An optimal request is counted toward the
// current mode's occupancy and halves both pressure accumulators, so
// mixed evidence decays toward quiescence. Consumers may elide these
// calls while the policy is Quiescent (see Quiescer); elision only
// undercounts occupancy, which makes the window adaptation strictly
// more conservative.
func (p *Congestion) Optimal(Direction) {
	p.occupancy++
	p.pressure[0] /= 2
	p.pressure[1] /= 2
}

// Switched implements Policy: the AIMD step. A premature flip (the mode
// served fewer than wnd/2 requests) doubles the window up to MaxWindow;
// leaving a long stable residency (≥ 8·wnd requests) shrinks it by one
// down to MinWindow. Pressure and occupancy reset for the new mode; the
// RTT estimate is retained — it describes the workload, not the mode.
func (p *Congestion) Switched() {
	switch {
	case 2*p.occupancy < p.wnd:
		p.wnd *= 2
		if p.wnd > p.MaxWindow {
			p.wnd = p.MaxWindow
		}
	case p.occupancy >= 8*p.wnd && p.wnd > p.MinWindow:
		p.wnd--
	}
	p.occupancy = 0
	p.pressure[0], p.pressure[1] = 0, 0
}

// Quiescent implements Quiescer: with both accumulators empty, only a
// Suboptimal call can move the policy toward a switch.
func (p *Congestion) Quiescent() bool { return p.pressure[0] == 0 && p.pressure[1] == 0 }

// Window reports the current occupancy window (the cwnd analog), for
// experiment output and tests.
func (p *Congestion) Window() uint64 { return p.wnd }

// SRTT reports the smoothed residual estimate, in the same abstract cost
// units the samples arrive in.
func (p *Congestion) SRTT() uint64 { return p.srtt }

// RTO reports the current retransmission-timeout analog,
// sRTT + 4·RTTVAR: the outlier threshold above which a sample's
// pressure contribution doubles.
func (p *Congestion) RTO() uint64 { return p.srtt + 4*p.rttvar }
