package policy

import "testing"

func TestCongestionEstimator(t *testing.T) {
	p := NewCongestion()
	if p.SRTT() != 0 || p.RTO() != 0 {
		t.Fatal("fresh policy must have a zero estimate")
	}
	// First sample initializes per RFC 6298: srtt = R, rttvar = R/2.
	p.Suboptimal(0, 100)
	if got := p.SRTT(); got != 100 {
		t.Fatalf("srtt after first sample = %d, want 100", got)
	}
	if got := p.RTO(); got != 100+4*50 {
		t.Fatalf("rto after first sample = %d, want 300", got)
	}
	// Subsequent samples: rttvar = (3·rttvar + |srtt−R|)/4 first, then
	// srtt = (7·srtt + R)/8, truncating.
	p.Suboptimal(0, 200)
	// rttvar = (3·50 + 100)/4 = 62, srtt = (7·100 + 200)/8 = 112.
	if got := p.SRTT(); got != 112 {
		t.Fatalf("srtt after second sample = %d, want 112", got)
	}
	if got := p.RTO(); got != 112+4*62 {
		t.Fatalf("rto after second sample = %d, want 360", got)
	}
	// A steady stream converges the estimate to the sample value.
	q := NewCongestion()
	for i := 0; i < 200; i++ {
		q.Suboptimal(0, 150)
		q.Switched() // keep pressure from saturating; estimate is retained
	}
	if got := q.SRTT(); got < 145 || got > 150 {
		t.Fatalf("srtt did not converge to the steady sample: %d", got)
	}
}

func TestCongestionSwitchesAfterWindow(t *testing.T) {
	// With a steady residual, pressure grows by ≈ sRTT per sample, so the
	// wnd·sRTT threshold behaves like a streak counter of length ≈ wnd.
	p := NewCongestion()
	n := 0
	for !p.Suboptimal(0, steadyResidual) {
		n++
		if n > 4*DefaultCongestionWindow {
			t.Fatalf("no switch after %d steady sub-optimal samples", n)
		}
	}
	if n+1 < DefaultCongestionWindow/2 {
		t.Fatalf("switched after only %d samples; window is %d", n+1, DefaultCongestionWindow)
	}
}

// steadyResidual is the steady residual used across the congestion tests —
// the cheap-protocol-under-contention cost the native primitives charge.
const steadyResidual = 150

func TestCongestionOppositePressureClears(t *testing.T) {
	p := NewCongestion()
	for i := 0; i < 5; i++ {
		p.Suboptimal(0, steadyResidual)
	}
	// Evidence in the other direction discards direction 0's pressure.
	p.Suboptimal(1, 15)
	for i := 0; i < 5; i++ {
		if p.Suboptimal(0, steadyResidual) {
			t.Fatalf("direction 0 switched after %d samples post-reset", i+1)
		}
	}
}

func TestCongestionOptimalDecays(t *testing.T) {
	p := NewCongestion()
	p.Suboptimal(0, steadyResidual)
	if p.Quiescent() {
		t.Fatal("quiescent right after a sub-optimal sample")
	}
	for i := 0; i < 64 && !p.Quiescent(); i++ {
		p.Optimal(0)
	}
	if !p.Quiescent() {
		t.Fatal("optimal stream must decay pressure to quiescence")
	}
}

func TestCongestionAIMDWindow(t *testing.T) {
	p := NewCongestion()
	if p.Window() != DefaultCongestionWindow {
		t.Fatalf("initial window = %d, want %d", p.Window(), DefaultCongestionWindow)
	}
	// Premature flip: fewer than wnd/2 requests since the last switch
	// doubles the window.
	p.Suboptimal(0, steadyResidual)
	p.Switched()
	if p.Window() != 2*DefaultCongestionWindow {
		t.Fatalf("window after premature flip = %d, want %d", p.Window(), 2*DefaultCongestionWindow)
	}
	// Doubling saturates at MaxWindow.
	for i := 0; i < 20; i++ {
		p.Suboptimal(0, steadyResidual)
		p.Switched()
	}
	if p.Window() != p.MaxWindow {
		t.Fatalf("window did not saturate at MaxWindow: %d", p.Window())
	}
	// Long stable residency shrinks the window additively.
	q := NewCongestion()
	for i := uint64(0); i < 8*DefaultCongestionWindow; i++ {
		q.Optimal(0)
	}
	q.Switched()
	if q.Window() != DefaultCongestionWindow-1 {
		t.Fatalf("window after stable residency = %d, want %d", q.Window(), DefaultCongestionWindow-1)
	}
	// Shrinking saturates at MinWindow.
	for i := 0; i < 100; i++ {
		for j := uint64(0); j < 8*q.Window(); j++ {
			q.Optimal(0)
		}
		q.Switched()
	}
	if q.Window() != q.MinWindow {
		t.Fatalf("window did not saturate at MinWindow: %d", q.Window())
	}
}

func TestCongestionOutliersCountDouble(t *testing.T) {
	// Prime two identical estimators, then feed one outliers (above RTO)
	// and the other in-range samples of the same magnitude relative to
	// the threshold math: the outlier stream must reach a switch in
	// fewer samples than pressure/residual alone would predict.
	p := NewCongestion()
	p.Suboptimal(0, 10) // srtt=10, rttvar=5, rto=30
	p.Switched()        // clear pressure; estimate retained
	n := 0
	for !p.Suboptimal(0, 100) { // 100 > rto: counts double
		n++
		if n > 100 {
			t.Fatal("outlier stream never switched")
		}
	}
	q := NewCongestion()
	q.Suboptimal(0, 100) // srtt=100: same sample is in-range
	q.Switched()
	m := 0
	for !q.Suboptimal(0, 100) {
		m++
		if m > 100 {
			t.Fatal("in-range stream never switched")
		}
	}
	if n >= m {
		t.Fatalf("outlier samples (switch after %d) must out-pressure in-range samples (after %d)", n+1, m+1)
	}
}

func TestCongestionQuiescer(t *testing.T) {
	var p Policy = NewCongestion()
	q, ok := p.(Quiescer)
	if !ok {
		t.Fatal("Congestion must implement Quiescer")
	}
	if !q.Quiescent() {
		t.Fatal("not quiescent at start")
	}
	p.Suboptimal(0, 10)
	if q.Quiescent() {
		t.Fatal("quiescent right after a sub-optimal request")
	}
	p.Switched()
	if !q.Quiescent() {
		t.Fatal("not quiescent after Switched")
	}
}

func TestCongestionDeterministic(t *testing.T) {
	// Two instances fed the same call sequence agree on every decision
	// and every observable — the property the registry experiments rely
	// on for serial==parallel identity.
	run := func() (decisions []bool, wnd, srtt uint64) {
		p := NewCongestion()
		for i := 0; i < 500; i++ {
			switch i % 7 {
			case 0, 1, 2:
				decisions = append(decisions, p.Suboptimal(Direction(i%2), uint64(10+i%140)))
			case 3:
				p.Optimal(0)
			case 4:
				p.Suboptimal(0, 150)
			case 5:
				p.Optimal(1)
			default:
				if len(decisions) > 0 && decisions[len(decisions)-1] {
					p.Switched()
				}
			}
		}
		return decisions, p.Window(), p.SRTT()
	}
	d1, w1, s1 := run()
	d2, w2, s2 := run()
	if w1 != w2 || s1 != s2 || len(d1) != len(d2) {
		t.Fatalf("replay diverged: wnd %d/%d srtt %d/%d", w1, w2, s1, s2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
}
