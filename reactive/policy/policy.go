// Package policy implements the protocol-switching policies of Section 3.4
// of Lim's thesis: always-switch, the 3-competitive policy derived from the
// Borodin-Linial-Saks task-system algorithm, hysteresis(x, y), and a
// weighted-average (aging) policy.
//
// A reactive algorithm's detection machinery classifies each
// synchronization request as served by an optimal or sub-optimal protocol
// (with an estimated residual cost); the policy decides *when* to act on a
// run of sub-optimal observations by actually changing protocols.
//
// The same Policy interface is consumed by both halves of this repository:
// the cycle-level simulator's reactive algorithms (internal/core) and the
// adoptable native-Go primitives (package reactive, via
// reactive.WithPolicy). Implementations are deliberately not synchronized —
// see Policy for the serialization contract each consumer provides.
package policy

// Direction distinguishes which way a prospective protocol change goes
// (e.g. 0 = cheap→scalable when contention appears, 1 = scalable→cheap when
// contention disappears). Hysteresis policies use per-direction thresholds.
type Direction int

// Policy decides when a reactive algorithm should change protocols.
// Implementations are not safe for concurrent use by real OS threads; each
// consumer serializes calls itself. In the simulation all calls are
// serialized by the event engine and occur while holding the consensus
// object; the native primitives in package reactive serialize calls through
// a small internal lock taken only on detection events. A Policy instance
// must not be shared between primitives.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Suboptimal records one request served while the current protocol was
	// sub-optimal; residual is the extra cost versus the better protocol.
	// It returns true if the algorithm should switch protocols now.
	Suboptimal(dir Direction, residual uint64) bool
	// Optimal records one request served by the optimal protocol.
	Optimal(dir Direction)
	// Switched informs the policy that a protocol change was carried out.
	Switched()
}

// Quiescer is optionally implemented by a Policy that can report holding
// no accumulated switching pressure: from a quiescent state, only a
// Suboptimal call can move the policy toward a switch, so a consumer may
// elide Optimal notifications until then. The native primitives use this
// to keep their uncontended fast paths away from the policy entirely
// while the policy is quiescent. All policies in this package implement
// it.
type Quiescer interface {
	Quiescent() bool
}

// AlwaysSwitch changes protocols immediately upon detecting that the
// current protocol is sub-optimal — the default policy of the reactive
// algorithms (Section 3.4). Best tracking, but can thrash if contention
// oscillates faster than the cost of changing protocols.
type AlwaysSwitch struct{}

// Name implements Policy.
func (AlwaysSwitch) Name() string { return "always" }

// Suboptimal implements Policy.
func (AlwaysSwitch) Suboptimal(Direction, uint64) bool { return true }

// Optimal implements Policy.
func (AlwaysSwitch) Optimal(Direction) {}

// Switched implements Policy.
func (AlwaysSwitch) Switched() {}

// Quiescent implements Quiescer: always-switch holds no state.
func (AlwaysSwitch) Quiescent() bool { return true }

// Competitive is the 3-competitive policy of Section 3.4.1: switch when the
// cumulative residual cost of serving requests with the sub-optimal
// protocol exceeds the round-trip cost of switching away and back
// (dAB + dBA). Unlike hysteresis, the accumulator survives breaks in the
// streak; it is only cleared by an actual protocol change.
type Competitive struct {
	// Threshold is dAB + dBA, the cost of switching to the other protocol
	// and back, in cycles. The thesis's reactive spin lock uses 8800.
	Threshold uint64

	accum uint64
}

// NewCompetitive builds the policy with the given round-trip switch cost.
func NewCompetitive(threshold uint64) *Competitive {
	return &Competitive{Threshold: threshold}
}

// Name implements Policy.
func (p *Competitive) Name() string { return "3-competitive" }

// Suboptimal implements Policy.
func (p *Competitive) Suboptimal(_ Direction, residual uint64) bool {
	p.accum += residual
	return p.accum >= p.Threshold
}

// Optimal implements Policy. The cumulative residual is retained across
// breaks in the bad streak — the property distinguishing the competitive
// policy from hysteresis.
func (p *Competitive) Optimal(Direction) {}

// Switched implements Policy.
func (p *Competitive) Switched() { p.accum = 0 }

// Quiescent implements Quiescer: pressure is the accumulated residual,
// which by design survives streak breaks and only clears on a switch.
func (p *Competitive) Quiescent() bool { return p.accum == 0 }

// Hysteresis switches after a direction's streak of consecutive
// sub-optimal requests reaches its threshold; any optimal request breaks
// the streak. Hysteresis(x, y) in Figure 3.23's notation is
// Thresholds[0] = x (cheap→scalable), Thresholds[1] = y (scalable→cheap).
type Hysteresis struct {
	Thresholds [2]uint64

	streak [2]uint64
}

// NewHysteresis builds Hysteresis(x, y).
func NewHysteresis(x, y uint64) *Hysteresis {
	return &Hysteresis{Thresholds: [2]uint64{x, y}}
}

// Name implements Policy.
func (p *Hysteresis) Name() string { return "hysteresis" }

// Suboptimal implements Policy.
func (p *Hysteresis) Suboptimal(dir Direction, _ uint64) bool {
	d := int(dir) & 1
	p.streak[d]++
	p.streak[1-d] = 0
	return p.streak[d] >= p.Thresholds[d]
}

// Optimal implements Policy.
func (p *Hysteresis) Optimal(Direction) { p.streak[0], p.streak[1] = 0, 0 }

// Switched implements Policy.
func (p *Hysteresis) Switched() { p.streak[0], p.streak[1] = 0, 0 }

// Quiescent implements Quiescer: pressure is the pair of streaks.
func (p *Hysteresis) Quiescent() bool { return p.streak[0] == 0 && p.streak[1] == 0 }

// WeightedAverage ages an exponentially weighted moving average of the
// sub-optimality indicator (1 for sub-optimal, 0 for optimal) and switches
// when the average crosses Cross. Weight is the new-sample weight in
// 1/256ths (e.g. 64 = 0.25).
type WeightedAverage struct {
	Weight uint64 // new-sample weight, in 1/256ths
	Cross  uint64 // switch threshold, in 1/256ths

	avg uint64 // current average, in 1/256ths
}

// NewWeightedAverage builds an aging policy. Typical: weight 64, cross 192.
func NewWeightedAverage(weight, cross uint64) *WeightedAverage {
	return &WeightedAverage{Weight: weight, Cross: cross}
}

// Name implements Policy.
func (p *WeightedAverage) Name() string { return "weighted-average" }

// Suboptimal implements Policy.
func (p *WeightedAverage) Suboptimal(Direction, uint64) bool {
	p.avg = (p.avg*(256-p.Weight) + 256*p.Weight) / 256
	return p.avg >= p.Cross
}

// Optimal implements Policy.
func (p *WeightedAverage) Optimal(Direction) {
	p.avg = p.avg * (256 - p.Weight) / 256
}

// Switched implements Policy.
func (p *WeightedAverage) Switched() { p.avg = 0 }

// Quiescent implements Quiescer: pressure is the decaying average.
func (p *WeightedAverage) Quiescent() bool { return p.avg == 0 }
