package reactive

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Counter is a reactive fetch-and-add counter — the native analogue of the
// thesis's reactive fetch-and-op. Under low contention it is a single
// shared word updated by compare-and-swap (ModeCAS, the TTS-lock-protected
// variable of Section 3.1.2 collapsed to one atomic); under high
// contention it shards updates across per-processor cells (ModeSharded,
// the combining-tree analogue: parallel updates at the cost of a
// reconciling read). Load reconciles the cells back into the base word and
// is where the return to ModeCAS is detected.
//
// The zero value is a zero Counter in CAS mode with the package-default
// tunables; NewCounter builds one with explicit Options. A Counter must
// not be copied after first use.
type Counter struct {
	base atomic.Int64  // CAS-mode value, and the sharded-mode reconciliation target
	mode atomic.Uint32 // 0 = ModeCAS, 1 = ModeSharded (see Stats)

	cells      []counterCell // sharded-mode cells (lazily created)
	cellsOnce  sync.Once
	cellsBuilt atomic.Bool
	loadLock   atomic.Uint32 // serializes reconciling Loads

	det detector
	cfg config

	switches atomic.Uint64
}

// counterCell is one sharded-mode cell, padded to its own cache line so
// cells assigned to different processors do not false-share.
type counterCell struct {
	v atomic.Int64
	_ [56]byte
}

// Internal mode-word values (the zero value must be the cheap protocol).
const (
	cmodeCAS     uint32 = 0
	cmodeSharded uint32 = 1
)

// stripe is a goroutine's cached cell assignment. Stripes live in a
// sync.Pool, whose per-P caches give Add the processor affinity the Go
// runtime does not expose directly: a goroutine usually gets back a stripe
// last used on its current P, so cells behave like per-P counters.
type stripe struct{ idx uint32 }

var stripeSeq atomic.Uint32

var stripePool = sync.Pool{New: func() any {
	return &stripe{idx: stripeSeq.Add(1)}
}}

// NewCounter builds a Counter configured by opts. NewCounter() with no
// options is equivalent to a zero-value Counter. WithPollIters is accepted
// but unused: Counter never parks.
func NewCounter(opts ...Option) *Counter {
	c := &Counter{}
	c.cfg.apply(opts)
	c.det.pol = c.cfg.pol
	return c
}

// Stats returns a snapshot of the counter's adaptive state.
func (c *Counter) Stats() Stats {
	return Stats{Mode: ModeCAS + Mode(c.mode.Load()), Switches: c.switches.Load()}
}

// shardCells returns the cell array, creating it on first use. The array
// is sized to the next power of two ≥ GOMAXPROCS at creation time.
func (c *Counter) shardCells() []counterCell {
	c.cellsOnce.Do(func() {
		n := 2
		for n < runtime.GOMAXPROCS(0) {
			n *= 2
		}
		c.cells = make([]counterCell, n)
		c.cellsBuilt.Store(true)
	})
	return c.cells
}

// builtCells returns the cell array if it has ever been created, else nil.
func (c *Counter) builtCells() []counterCell {
	if !c.cellsBuilt.Load() {
		return nil
	}
	return c.cells
}

// Add atomically adds delta to the counter, adapting its protocol to
// contention.
func (c *Counter) Add(delta int64) {
	if c.mode.Load() == cmodeCAS {
		// Cheap protocol fast path: one CAS on the shared word.
		v := c.base.Load()
		if c.base.CompareAndSwap(v, v+delta) {
			c.det.good(dirScaleUp)
			return
		}
		c.addContended(delta)
		return
	}
	c.addSharded(delta)
}

// addContended retries the CAS-mode update after a failed first attempt —
// a contended Add — and runs the cheap→scalable detection on completion.
func (c *Counter) addContended(delta int64) {
	backoff := 1
	for {
		if c.mode.Load() != cmodeCAS {
			c.addSharded(delta)
			return
		}
		v := c.base.Load()
		if c.base.CompareAndSwap(v, v+delta) {
			c.noteContendedAdd()
			return
		}
		for i := 0; i < backoff; i++ {
			runtime.Gosched()
		}
		if backoff < 16 {
			backoff *= 2
		}
	}
}

// noteContendedAdd records one contended CAS-mode Add with the detection
// machinery: SpinFailLimit consecutive contended Adds (built-in detection)
// or the injected policy's say-so switch ModeCAS → ModeSharded.
func (c *Counter) noteContendedAdd() {
	if c.det.vote(dirScaleUp, ResidualCheapHigh, c.cfg.failLimit()) {
		c.switchCounterMode(cmodeCAS, cmodeSharded)
	}
}

// addSharded applies delta to this goroutine's cell. Cell updates are
// uncontended atomic adds in the common case: the stripe pool hands each P
// its own recently-used cell index.
func (c *Counter) addSharded(delta int64) {
	cells := c.shardCells()
	s := stripePool.Get().(*stripe)
	cells[int(s.idx)&(len(cells)-1)].v.Add(delta)
	stripePool.Put(s)
}

// Load returns the current count. Once the counter has ever sharded,
// Load reconciles permanently: every cell's pending delta is folded into
// the base word, and the number of distinct cells that accumulated
// updates since the previous reconciliation is the contention signal —
// EmptyLimit consecutive Loads observing at most one active writer cell
// switch ModeSharded → ModeCAS. The permanent sweep is deliberate: an
// Add that observed sharded mode may deposit into a cell arbitrarily
// late, so no post-burst Load may skip the cells without risking an
// undercount. Add's fast path is unaffected; only Load pays. Under
// concurrent Adds, Load returns a value that was correct at some instant
// during the call (the same guarantee sync/atomic-style sharded counters
// give).
func (c *Counter) Load() int64 {
	cells := c.builtCells()
	if cells == nil {
		return c.base.Load()
	}
	// Reconciliations are serialized: a concurrent Load must not read the
	// base while another Load holds harvested-but-unfolded cell values
	// (it would undercount), and a trailing Load sweeping just-zeroed
	// cells must not mistake the empty sweep for low contention.
	for !c.loadLock.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
	defer c.loadLock.Store(0)
	var moved int64
	active := 0
	for i := range cells {
		if v := cells[i].v.Swap(0); v != 0 {
			moved += v
			active++
		}
	}
	sum := c.base.Load()
	if moved != 0 {
		sum = c.base.Add(moved)
	}
	if c.mode.Load() == cmodeSharded {
		if active <= 1 {
			// At most one writer since the last reconciliation: the
			// sharded protocol is sub-optimal for this load level.
			if c.det.vote(dirScaleDown, ResidualScalableLow, c.cfg.emptyLim()) {
				c.switchCounterMode(cmodeSharded, cmodeCAS)
			}
		} else {
			c.det.good(dirScaleDown)
		}
	}
	return sum
}

// switchCounterMode performs a protocol change from want to next, at most
// once per detection round. No state copying is needed in either
// direction: Load always sums base plus cells, so Adds racing with the
// change land in whichever protocol they observed and are never lost.
func (c *Counter) switchCounterMode(want, next uint32) {
	if next == cmodeSharded {
		// Build the cells before publishing the mode so sharded Adds
		// never observe a nil array.
		c.shardCells()
	}
	if c.mode.CompareAndSwap(want, next) {
		c.switches.Add(1)
		c.det.switched()
	}
}
