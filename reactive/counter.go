package reactive

import "context"

// Counter is a reactive fetch-and-add counter: the add-only
// specialization of FetchOp (operation +, identity 0), with the
// specialized atomic-add fast paths that operation enables. Under low
// contention it is a single shared word updated by compare-and-swap
// (ModeCAS); under update contention it shards across per-processor
// cells reconciled by Load (ModeSharded); and when heavy updates meet
// frequent reconciling Loads it batch-folds the cells into the shared
// word (ModeCombining). All three protocols and the transitions between
// them are FetchOp's — see its documentation for the protocol and
// detection details.
//
// The zero value is a zero Counter in CAS mode with the package-default
// tunables; NewCounter builds one with explicit Options. A Counter must
// not be copied after first use.
type Counter struct {
	f FetchOp // zero op = addition, identity 0
}

// NewCounter builds a Counter configured by opts. NewCounter() with no
// options is equivalent to a zero-value Counter. WithPollIters bounds
// how long Load polls for the reconciliation sweep window before
// parking (Add never parks).
func NewCounter(opts ...Option) *Counter {
	c := &Counter{}
	c.f.cfg.apply(opts)
	c.f.eng.SetPolicy(c.f.cfg.pol)
	c.f.applyInitMode()
	return c
}

// Stats returns a snapshot of the counter's adaptive state.
func (c *Counter) Stats() Stats { return c.f.Stats() }

// Add atomically adds delta to the counter, adapting its protocol to
// contention.
func (c *Counter) Add(delta int64) { c.f.Apply(delta) }

// Load returns the current count, reconciling any sharded cells; see
// FetchOp.Value for the reconciliation and detection semantics.
func (c *Counter) Load() int64 { return c.f.Value() }

// LoadCtx returns the current count like Load, but gives up with
// ctx.Err() when ctx ends while waiting for the reconciliation sweep
// window; see FetchOp.ValueCtx.
func (c *Counter) LoadCtx(ctx context.Context) (int64, error) { return c.f.ValueCtx(ctx) }

// noteContendedAdd records one contended CAS-mode Add with the detection
// machinery (test hook shared with the forced-mode-switch stress tests).
func (c *Counter) noteContendedAdd() { c.f.noteContendedApply() }
