// Package reactivehttp exports the telemetry of the adaptive primitives
// in package reactive over expvar and HTTP.
//
// A Registry names primitives; Snapshot captures every registered
// primitive's Stats at once, and Snapshot.Sub converts two snapshots
// into deltas with the Stats.Sub contract (monotonic counters subtract,
// gauges keep the newer value). Publish exposes live snapshots through
// the standard expvar surface, and Handle mounts a poll-aware handler at
// /debug/reactive that additionally reports the interval since the
// previous poll, per-primitive switch rates, and cumulative mode
// residency — everything an operator needs to watch a fleet of reactive
// locks decide (DESIGN.md §6).
//
// The Registry and Snapshot layer is pure bookkeeping — no clock, no
// I/O — so deterministic harnesses (see internal/experiments) can drive
// it byte-identically; only the HTTP handler consults wall time.
package reactivehttp

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/reactive"
)

// Source is the telemetry surface every adaptive primitive in package
// reactive provides: Mutex, RWMutex, Counter, and FetchOp all satisfy
// it. Stats must be safe to call concurrently with the primitive's use
// (package reactive's are).
type Source interface {
	Stats() reactive.Stats
}

// Registry names a set of primitives for export. The zero value is
// ready to use. Registration is typically done once at startup;
// Snapshot may be called concurrently with Register and with the
// primitives' normal operation.
type Registry struct {
	mu      sync.Mutex
	sources map[string]Source
}

// Register adds src under name. It panics on an empty name, a nil src,
// or a name already registered — telemetry names are program-level
// identifiers, and colliding ones silently corrupt dashboards.
func (r *Registry) Register(name string, src Source) {
	if name == "" {
		panic("reactivehttp: Register with empty name")
	}
	if src == nil {
		panic("reactivehttp: Register with nil Source")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sources == nil {
		r.sources = make(map[string]Source)
	}
	if _, dup := r.sources[name]; dup {
		panic("reactivehttp: duplicate Register of " + name)
	}
	r.sources[name] = src
}

// Names returns the registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.sources))
	for name := range r.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot captures every registered primitive's Stats. Each
// primitive's snapshot is individually consistent; the set is not a
// global atomic cut (primitives keep running between reads).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	sources := make(map[string]Source, len(r.sources))
	for name, src := range r.sources {
		sources[name] = src
	}
	r.mu.Unlock()
	snap := Snapshot{Primitives: make(map[string]reactive.Stats, len(sources))}
	for name, src := range sources {
		snap.Primitives[name] = src.Stats()
	}
	return snap
}

// Snapshot is a point-in-time capture of a Registry: one Stats per
// registered primitive, keyed by its registered name. It marshals to
// JSON with names in sorted order (Go maps marshal with sorted keys).
type Snapshot struct {
	Primitives map[string]reactive.Stats `json:"primitives"`
}

// Sub returns the per-primitive delta from an earlier snapshot prev,
// applying Stats.Sub name by name. A name missing from prev (a
// primitive registered between the two polls, or a zero-value prev) is
// diffed against a zero Stats, so its delta equals its current
// cumulative value. Names present only in prev are dropped: the delta
// describes what s can still see.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{Primitives: make(map[string]reactive.Stats, len(s.Primitives))}
	for name, cur := range s.Primitives {
		d.Primitives[name] = cur.Sub(prev.Primitives[name])
	}
	return d
}

// Publish registers live snapshots of reg as the expvar variable name,
// alongside the standard memstats/cmdline exports on /debug/vars:
//
//	var registry reactivehttp.Registry
//	registry.Register("routes", rw)
//	reactivehttp.Publish("reactive", &registry)
//
// Like expvar.Publish, it panics if name is already published, so call
// it once per process per name.
func Publish(name string, reg *Registry) {
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}

// PrimitiveReport is one primitive's entry in a Handler response: the
// current cumulative Stats, the delta since the handler's previous
// poll, the switch rate that delta implies, and the cumulative time the
// primitive has been observed resident in each mode.
type PrimitiveReport struct {
	reactive.Stats
	// Delta is Stats.Sub of the previous poll's snapshot (zero on the
	// first poll, or for a primitive first seen this poll): the protocol
	// changes this interval, and the current waiter depth.
	Delta reactive.Stats `json:"delta"`
	// SwitchRate is Delta.Switches (plus the reader engine's, for
	// RWMutex) divided by the poll interval, in switches per second; 0
	// on the first poll.
	SwitchRate float64 `json:"switch_rate_per_sec"`
	// Residency maps mode name → total seconds the primitive was
	// observed in that mode, attributing each poll interval to the mode
	// seen at the interval's start. Resolution is therefore the polling
	// interval — poll as fast as the residency you want to resolve.
	Residency map[string]float64 `json:"residency_seconds"`
}

// Report is a Handler response: the seconds since the handler's
// previous poll (0 on the first) and one PrimitiveReport per registered
// primitive.
type Report struct {
	IntervalSeconds float64                    `json:"interval_seconds"`
	Primitives      map[string]PrimitiveReport `json:"primitives"`
}

// Handler serves poll-to-poll telemetry for a Registry over HTTP. Each
// GET returns a Report computed against the previous request's
// snapshot, so pointing a scraper at it yields rates and residency with
// no client-side state. Concurrent requests are serialized; state
// belongs to the handler, so run one handler per scrape consumer (or
// share one and accept interleaved intervals).
type Handler struct {
	reg *Registry
	now func() time.Time // injectable for deterministic tests

	mu        sync.Mutex
	last      time.Time
	prev      Snapshot
	residency map[string]map[string]time.Duration
}

// NewHandler builds a Handler for reg.
func NewHandler(reg *Registry) *Handler {
	return &Handler{reg: reg, now: time.Now, residency: make(map[string]map[string]time.Duration)}
}

// Handle mounts a new Handler for reg on mux at /debug/reactive and
// returns it. A nil mux uses http.DefaultServeMux, mirroring the
// net/http/pprof convention.
func Handle(mux *http.ServeMux, reg *Registry) *Handler {
	h := NewHandler(reg)
	if mux == nil {
		mux = http.DefaultServeMux
	}
	mux.Handle("/debug/reactive", h)
	return h
}

// report advances the handler's poll state and builds the response.
func (h *Handler) report() Report {
	h.mu.Lock()
	defer h.mu.Unlock()

	now := h.now()
	cur := h.reg.Snapshot()
	var interval time.Duration
	first := h.last.IsZero()
	if !first {
		interval = now.Sub(h.last)
	}

	// Attribute the elapsed interval to the mode each primitive was in
	// at the previous poll.
	if !first && interval > 0 {
		for name, prev := range h.prev.Primitives {
			modes := h.residency[name]
			if modes == nil {
				modes = make(map[string]time.Duration)
				h.residency[name] = modes
			}
			modes[prev.Mode.String()] += interval
		}
	}

	delta := cur.Sub(h.prev)
	rep := Report{
		IntervalSeconds: interval.Seconds(),
		Primitives:      make(map[string]PrimitiveReport, len(cur.Primitives)),
	}
	for name, stats := range cur.Primitives {
		d := delta.Primitives[name]
		if first {
			// No previous poll: no delta to report yet.
			d = reactive.Stats{Mode: stats.Mode, Waiters: stats.Waiters}
			if stats.Readers != nil {
				d.Readers = &reactive.ReaderStats{Mode: stats.Readers.Mode, Shards: stats.Readers.Shards}
			}
		}
		var rate float64
		if interval > 0 {
			switches := d.Switches
			if d.Readers != nil {
				switches += d.Readers.Switches
			}
			rate = float64(switches) / interval.Seconds()
		}
		res := make(map[string]float64, len(h.residency[name]))
		for mode, dur := range h.residency[name] {
			res[mode] = dur.Seconds()
		}
		rep.Primitives[name] = PrimitiveReport{
			Stats:      stats,
			Delta:      d,
			SwitchRate: rate,
			Residency:  res,
		}
	}

	h.last = now
	h.prev = cur
	return rep
}

// ServeHTTP implements http.Handler, answering every request with the
// current Report as JSON.
func (h *Handler) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h.report())
}
