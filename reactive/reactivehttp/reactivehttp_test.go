package reactivehttp

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/reactive"
)

func TestRegisterPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	var reg Registry
	expectPanic("empty name", func() { reg.Register("", &reactive.Mutex{}) })
	expectPanic("nil source", func() { reg.Register("m", nil) })
	reg.Register("m", &reactive.Mutex{})
	expectPanic("duplicate", func() { reg.Register("m", &reactive.Mutex{}) })
}

func TestRegistrySnapshot(t *testing.T) {
	var reg Registry
	m := reactive.New(reactive.WithInitialMode(reactive.ModePark))
	rw := reactive.NewRWMutex()
	c := reactive.NewCounter()
	reg.Register("mutex", m)
	reg.Register("rwmutex", rw)
	reg.Register("counter", c)

	if got, want := reg.Names(), []string{"counter", "mutex", "rwmutex"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}

	snap := reg.Snapshot()
	if len(snap.Primitives) != 3 {
		t.Fatalf("snapshot has %d primitives, want 3", len(snap.Primitives))
	}
	if s := snap.Primitives["mutex"]; s.Mode != reactive.ModePark || s.Switches != 1 {
		t.Fatalf("mutex snapshot = %+v", s)
	}
	if s := snap.Primitives["rwmutex"]; s.Readers == nil {
		t.Fatal("rwmutex snapshot must carry ReaderStats")
	}
	if s := snap.Primitives["counter"]; s.Mode != reactive.ModeCAS {
		t.Fatalf("counter snapshot = %+v", s)
	}
}

func TestSnapshotSub(t *testing.T) {
	cur := Snapshot{Primitives: map[string]reactive.Stats{
		"a": {Mode: reactive.ModePark, Switches: 5},
		"b": {Mode: reactive.ModeCAS, Switches: 2},
	}}
	prev := Snapshot{Primitives: map[string]reactive.Stats{
		"a":    {Mode: reactive.ModeSpin, Switches: 3},
		"gone": {Switches: 9},
	}}
	d := cur.Sub(prev)
	if s := d.Primitives["a"]; s.Switches != 2 || s.Mode != reactive.ModePark {
		t.Fatalf(`delta["a"] = %+v`, s)
	}
	// Missing from prev: diffed against zero.
	if s := d.Primitives["b"]; s.Switches != 2 {
		t.Fatalf(`delta["b"] = %+v`, s)
	}
	// Present only in prev: dropped.
	if _, ok := d.Primitives["gone"]; ok {
		t.Fatal("names absent from the newer snapshot must not appear in the delta")
	}
}

// fakeClock advances a Handler deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestHandler(reg *Registry) (*Handler, *fakeClock) {
	h := NewHandler(reg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	h.now = clk.now
	return h, clk
}

func TestHandlerDeltasAndRates(t *testing.T) {
	var reg Registry
	m := reactive.New()
	reg.Register("mutex", m)
	h, clk := newTestHandler(&reg)

	// First poll: no interval, no delta.
	rep := h.report()
	if rep.IntervalSeconds != 0 {
		t.Fatalf("first poll interval = %v, want 0", rep.IntervalSeconds)
	}
	pr := rep.Primitives["mutex"]
	if pr.Delta.Switches != 0 || pr.SwitchRate != 0 {
		t.Fatalf("first poll must not report a delta: %+v", pr)
	}
	if pr.Stats.Mode != reactive.ModeSpin {
		t.Fatalf("mutex mode = %v, want spin", pr.Stats.Mode)
	}

	// Force one switch, poll 2 simulated seconds later.
	forceMutexPark(m)
	clk.advance(2 * time.Second)
	rep = h.report()
	if rep.IntervalSeconds != 2 {
		t.Fatalf("interval = %v, want 2", rep.IntervalSeconds)
	}
	pr = rep.Primitives["mutex"]
	if pr.Stats.Mode != reactive.ModePark {
		t.Fatalf("mode = %v, want park", pr.Stats.Mode)
	}
	if pr.Delta.Switches != 1 {
		t.Fatalf("delta switches = %d, want 1", pr.Delta.Switches)
	}
	if pr.SwitchRate != 0.5 {
		t.Fatalf("switch rate = %v, want 0.5", pr.SwitchRate)
	}
	// The 2s interval is attributed to the mode at its start: spin.
	if pr.Residency["spin"] != 2 || pr.Residency["park"] != 0 {
		t.Fatalf("residency = %v, want spin:2", pr.Residency)
	}

	// Third poll: residency accrues to park now.
	clk.advance(3 * time.Second)
	rep = h.report()
	pr = rep.Primitives["mutex"]
	if pr.Residency["spin"] != 2 || pr.Residency["park"] != 3 {
		t.Fatalf("residency = %v, want spin:2 park:3", pr.Residency)
	}
	if pr.Delta.Switches != 0 || pr.SwitchRate != 0 {
		t.Fatalf("quiet interval must report a zero delta: %+v", pr)
	}
}

// forceMutexPark drives a mutex from spin to park through the public
// API: hold the lock while several goroutines spin against it, then
// release — the handoff chain records the contended-acquisition streak
// that trips the switch. (A single spinner would not do: the holder's
// own uncontended Lock resets the streak each round.)
func forceMutexPark(m *reactive.Mutex) {
	for m.Stats().Mode != reactive.ModePark {
		m.Lock()
		var wg sync.WaitGroup
		for i := 0; i < reactive.DefaultSpinFailLimit+1; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.Lock()
				m.Unlock()
			}()
		}
		// Give the spinners time to record failed attempts.
		time.Sleep(time.Millisecond)
		m.Unlock()
		wg.Wait()
	}
}

func TestHandlerReaderEngineRate(t *testing.T) {
	// RWMutex's reader registration switches count toward the switch
	// rate, and the delta carries the reader sub-struct.
	var reg Registry
	rw := reactive.NewRWMutex(reactive.WithInitialMode(reactive.ModeSharded))
	reg.Register("routes", rw)
	h, clk := newTestHandler(&reg)
	h.report()

	// Drive the registration engine back down: quiet writer drains.
	for rw.Stats().Readers.Mode != reactive.ModeCAS {
		rw.Lock()
		rw.Unlock()
	}
	clk.advance(1 * time.Second)
	rep := h.report()
	pr := rep.Primitives["routes"]
	if pr.Delta.Readers == nil || pr.Delta.Readers.Switches != 1 {
		t.Fatalf("delta readers = %+v, want one registration switch", pr.Delta.Readers)
	}
	if pr.SwitchRate != 1 {
		t.Fatalf("switch rate = %v, want 1 (reader switches count)", pr.SwitchRate)
	}
}

func TestHandlerEpochGraceDeltas(t *testing.T) {
	// Grace-period counters of an epoch-registered RWMutex flow through
	// the scrape surface: cumulative in Stats, per-interval in Delta,
	// and named in the JSON encoding.
	var reg Registry
	rw := reactive.NewRWMutex(reactive.WithInitialReaderMode(reactive.ModeEpoch))
	reg.Register("routes", rw)
	h, clk := newTestHandler(&reg)
	h.report()

	// Three quiet grace periods (writer acquisitions in epoch mode with
	// no reader online). Fewer than the demotion streak, so the
	// registration protocol stays epoch.
	for i := 0; i < 3; i++ {
		rw.Lock()
		rw.Unlock()
	}
	clk.advance(1 * time.Second)
	rep := h.report()
	pr := rep.Primitives["routes"]
	if pr.Stats.Readers == nil || pr.Stats.Readers.Mode != reactive.ModeEpoch {
		t.Fatalf("stats readers = %+v, want epoch mode", pr.Stats.Readers)
	}
	if pr.Delta.Readers == nil || pr.Delta.Readers.Graces != 3 || pr.Delta.Readers.QuietGraces != 3 {
		t.Fatalf("delta readers = %+v, want 3 graces, 3 quiet", pr.Delta.Readers)
	}
	b, err := json.Marshal(pr.Stats.Readers)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"graces":3`, `"quiet_graces":3`, `"mode":"epoch"`} {
		if !strings.Contains(string(b), field) {
			t.Fatalf("ReaderStats JSON %s missing %s", b, field)
		}
	}
}

func TestServeHTTP(t *testing.T) {
	var reg Registry
	reg.Register("counter", reactive.NewCounter(reactive.WithInitialMode(reactive.ModeSharded)))
	mux := http.NewServeMux()
	h := Handle(mux, &reg)
	if h == nil {
		t.Fatal("Handle returned nil")
	}

	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/reactive")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	pr, ok := rep.Primitives["counter"]
	if !ok {
		t.Fatalf("report missing counter: %+v", rep)
	}
	if pr.Stats.Mode != reactive.ModeSharded || pr.Stats.Switches != 1 {
		t.Fatalf("counter report = %+v", pr.Stats)
	}
}

var publishOnce sync.Once

func TestPublishExpvar(t *testing.T) {
	// expvar names are process-global and Publish panics on reuse, so
	// publish exactly once even under -count=N.
	publishOnce.Do(func() {
		var reg Registry
		reg.Register("mutex", &reactive.Mutex{})
		Publish("reactive-test-publish", &reg)
	})
	v := expvar.Get("reactive-test-publish")
	if v == nil {
		t.Fatal("expvar variable not published")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar value is not valid Snapshot JSON: %v", err)
	}
	if s, ok := snap.Primitives["mutex"]; !ok || s.Mode != reactive.ModeSpin {
		t.Fatalf("expvar snapshot = %+v", snap)
	}
}
