package reactivehttp_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"repro/reactive"
	"repro/reactive/reactivehttp"
)

// ExampleHandle shows the HTTP export end to end: name the primitives
// in a Registry, mount the handler, and poll /debug/reactive. Each poll
// returns every primitive's current protocol plus the delta, switch
// rate, and mode residency since the previous poll (zero here — the
// first poll has nothing to diff against).
func ExampleHandle() {
	var registry reactivehttp.Registry
	registry.Register("hits", reactive.NewCounter())
	registry.Register("routes", reactive.NewRWMutex())

	mux := http.NewServeMux()
	reactivehttp.Handle(mux, &registry)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/reactive")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()

	var report reactivehttp.Report
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		panic(err)
	}
	for _, name := range []string{"hits", "routes"} {
		p := report.Primitives[name]
		fmt.Printf("%s mode=%v switches=%d waiters=%d\n",
			name, p.Stats.Mode, p.Stats.Switches, p.Stats.Waiters)
	}
	// Output:
	// hits mode=cas switches=0 waiters=0
	// routes mode=spin switches=0 waiters=0
}
