package reactive

import "testing"

// mustPanicMsg runs f and asserts it panics with exactly want — the
// misuse messages are API surface (callers grep crash logs for them),
// so they are pinned byte-for-byte, stdlib style.
func mustPanicMsg(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic, want %q", want)
		}
		if got, ok := r.(string); !ok || got != want {
			t.Fatalf("panicked with %v, want %q", r, want)
		}
	}()
	f()
}

// TestMisusePanics pins lock-misuse detection to stdlib parity: every
// unbalanced Unlock/RUnlock panics with a reactive:-prefixed message,
// in every registration mode. The sharded and epoch reader modes have
// no per-reader check, so their detection point is the next writer's
// drain sweep — the panic fires on the writer's goroutine (here the
// same goroutine, via TryLock).
func TestMisusePanics(t *testing.T) {
	const (
		unlockMutex   = "reactive: Unlock of unlocked Mutex"
		unlockRW      = "reactive: Unlock of unlocked RWMutex"
		runlockRW     = "reactive: RUnlock of unlocked RWMutex"
		putWaiter     = "waitq: Put of a Waiter whose wait has not ended"
		pushWaiter    = "waitq: Push of a Waiter whose previous wait has not ended"
		abandonWaiter = "waitq: Abandon of a Waiter that is not waiting"
	)
	_, _, _ = putWaiter, pushWaiter, abandonWaiter // pinned in waitq's own tests

	cases := []struct {
		name string
		want string
		f    func()
	}{
		{"Mutex/unlock of never-locked", unlockMutex, func() {
			var m Mutex
			m.Unlock()
		}},
		{"Mutex/double unlock", unlockMutex, func() {
			var m Mutex
			m.Lock()
			m.Unlock()
			m.Unlock()
		}},
		{"RWMutex/unlock of never-locked", unlockRW, func() {
			var rw RWMutex
			rw.Unlock()
		}},
		{"RWMutex/double unlock", unlockRW, func() {
			var rw RWMutex
			rw.Lock()
			rw.Unlock()
			rw.Unlock()
		}},
		{"RWMutex/runlock central, never locked", runlockRW, func() {
			var rw RWMutex
			rw.RUnlock()
		}},
		{"RWMutex/runlock central, double", runlockRW, func() {
			var rw RWMutex
			rw.RLock()
			rw.RUnlock()
			rw.RUnlock()
		}},
		{"RWMutex/runlock sharded, caught at writer sweep", runlockRW, func() {
			rw := NewRWMutex(WithInitialReaderMode(ModeSharded))
			rw.RLock()
			rw.RUnlock() // build the slots; balanced so far
			rw.RUnlock() // misuse: the slot deltas now sum to -1
			rw.TryLock() // first writer sweep under a claim proves it
		}},
		{"RWMutex/runlock epoch, caught at writer sweep", runlockRW, func() {
			rw := NewRWMutex(WithInitialReaderMode(ModeEpoch))
			rw.RLock()
			rw.RUnlock()
			rw.RUnlock()
			rw.TryLock()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mustPanicMsg(t, tc.want, tc.f)
		})
	}
}
