package reactive

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/watchdog"
)

// TestTryLockUndoVsEpochReaders hammers the epoch-mode TryLock undo
// path from the epoch-registration work: a failing TryLock claims the
// gate (advancing the global grace epoch), sweeps, sees an online
// reader, retracts the claim, and broadcasts to any reader its
// transient claim parked. The test races that
// claim/advance/retract/re-grant cycle against epoch readers (whose
// stamp-validate window the claim must catch), deadline-bounded reader
// waits, and occasional real writers, and verifies that (a) exclusion
// never breaks — asserted through plain unsynchronized variables, so
// the race detector turns any violation into a hard failure — (b)
// nobody is stranded parked behind a retracted claim (watchdog), and
// (c) the lock is structurally sound afterward.
func TestTryLockUndoVsEpochReaders(t *testing.T) {
	rw := NewRWMutex(WithInitialReaderMode(ModeEpoch), WithInitialMode(ModePark))

	const (
		readers  = 4
		tryLocks = 2000
		writes   = 200
	)
	var (
		sharedA, sharedB int // written under the write lock only; the race detector audits
		trySuccess       atomic.Int64
		stop             atomic.Bool
	)

	var readerWG sync.WaitGroup
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for !stop.Load() {
				// Mix plain RLocks with deadline-bounded waits so some
				// readers are parked when a TryLock's transient claim
				// retracts — the re-grant path under test.
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				err := rw.RLockCtx(ctx)
				cancel()
				if err != nil {
					continue
				}
				if sharedA != sharedB { // torn write visible under a read lock
					panic("exclusion broken: torn write observed by reader")
				}
				runtime.Gosched()
				rw.RUnlock()
			}
		}()
	}

	var finiteWG sync.WaitGroup
	finiteWG.Add(2)
	go func() { // real writers keep the drain path live
		defer finiteWG.Done()
		for i := 0; i < writes; i++ {
			rw.Lock()
			sharedA++
			runtime.Gosched() // widen the torn-write window
			sharedB++
			rw.Unlock()
			time.Sleep(50 * time.Microsecond)
		}
	}()
	go func() { // the TryLock hammer
		defer finiteWG.Done()
		for i := 0; i < tryLocks; i++ {
			if rw.TryLock() {
				sharedA++
				sharedB++
				trySuccess.Add(1)
				rw.Unlock()
			}
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
	}()

	snap := func() string {
		s := rw.Stats()
		return fmt.Sprintf("rwmutex: mode=%v waiters=%d readers=%+v", s.Mode, s.Waiters, s.Readers)
	}
	await := func(wg *sync.WaitGroup, who string) {
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		if err := watchdog.Await(done, 30*time.Second, snap); err != nil {
			t.Fatalf("%s stranded: %v", who, err)
		}
	}

	await(&finiteWG, "writer/hammer fleet")
	stop.Store(true)
	await(&readerWG, "reader fleet")

	if sharedA != sharedB {
		t.Fatalf("exclusion broken: A=%d B=%d", sharedA, sharedB)
	}
	if sharedA < writes {
		t.Fatalf("lost writes: %d < %d", sharedA, writes)
	}
	if err := rw.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("TryLock succeeded %d/%d; final A=B=%d", trySuccess.Load(), tryLocks, sharedA)
}
