// Package modal implements the generic N-mode modal-object engine at the
// heart of Lim & Agarwal's reactive synchronization framework. A modal
// object is a set of N protocols (modes) implementing one synchronization
// operation, plus a consensus-serialized way to change which protocol is
// selected. The thesis's reactive spin lock is a 2-mode modal object
// (test&set vs queue), and its reactive fetch-and-op is a 3-mode one
// (lock-based central word, queue-based, combining tree); this package is
// the shape they share, extracted so that every future primitive is a
// transition table rather than a rewrite.
//
// The package deliberately contains only the pure protocol-selection
// logic:
//
//   - Table — an immutable N×N transition table. Each permitted
//     transition carries the policy direction it reports as
//     (cheap→scalable or scalable→cheap) and the residual cost charged to
//     a competitive policy when the transition's source mode serves a
//     request sub-optimally.
//   - Engine — the goroutine-safe selector used by the native primitives
//     in package reactive: an epoch-packed mode word changed only by
//     compare-and-swap (the consensus-object analogue — at most one
//     writer wins each epoch), per-edge hysteresis streaks or an injected
//     policy.Policy serialized by a small randomized-backoff lock.
//   - Decider — the unsynchronized variant used by the cycle-level
//     simulator, whose event engine and simulated consensus objects
//     already serialize detection; it validates transitions against the
//     same Table and forwards votes to the same policies.
//
// Memory and waiting effects — what a mode *is*, how waiters migrate
// across a change — stay with the caller; the engine only decides and
// serializes. The two-phase waiting helpers (Poll, Backoff) live here too
// because every consumer's waiting loops share them.
package modal

import (
	"fmt"
	"sync/atomic"

	"repro/reactive/internal/chaos"
	"repro/reactive/policy"
)

// Mode indexes a protocol within one modal object. Modes are dense small
// integers local to the object: a table over N modes uses 0..N-1, and the
// zero mode is the object's initial (cheapest) protocol.
type Mode uint32

// MaxEdges bounds the number of permitted transitions in one Table; the
// Engine's per-edge streak counters are a fixed-size array so the zero
// value needs no allocation. N×N tables of practical size (the thesis's
// largest modal object has N=3 with 4 edges) fit comfortably.
const MaxEdges = 16

// Transition is one permitted protocol change in a Table.
type Transition struct {
	From, To Mode
	// Dir is the policy direction this transition reports detection
	// events under: by convention 0 for cheap→scalable edges (contention
	// appeared) and 1 for scalable→cheap edges (contention disappeared),
	// matching the direction conventions shared by the simulator and the
	// native primitives.
	Dir policy.Direction
	// Residual is the extra cost charged to an injected policy
	// (policy.Policy.Suboptimal) each time the From protocol serves a
	// request this edge's detection classifies as sub-optimal.
	Residual uint64
}

// Table is an immutable N×N transition table: which protocol changes a
// modal object permits, and how each edge's detection events map onto a
// switching policy. One Table is typically a package-level variable
// shared by every instance of a primitive; per-instance state lives in
// the Engine (or Decider).
type Table struct {
	n     int
	edges []Transition
	idx   []int8 // n*n entries, edge index + 1; 0 = transition absent
}

// NewTable builds a transition table over n modes. It panics — at
// package init time in practice — on n < 2, more than MaxEdges
// transitions, an out-of-range or self-looping edge, or a duplicate edge.
func NewTable(n int, ts []Transition) *Table {
	if n < 2 {
		panic("modal: a modal object needs at least 2 modes")
	}
	if len(ts) == 0 {
		panic("modal: a modal object needs at least one transition")
	}
	if len(ts) > MaxEdges {
		panic(fmt.Sprintf("modal: %d transitions exceed MaxEdges=%d", len(ts), MaxEdges))
	}
	t := &Table{n: n, edges: append([]Transition(nil), ts...), idx: make([]int8, n*n)}
	for i, e := range t.edges {
		if int(e.From) >= n || int(e.To) >= n {
			panic(fmt.Sprintf("modal: transition %d→%d out of range for %d modes", e.From, e.To, n))
		}
		if e.From == e.To {
			panic(fmt.Sprintf("modal: self-transition %d→%d", e.From, e.To))
		}
		at := int(e.From)*n + int(e.To)
		if t.idx[at] != 0 {
			panic(fmt.Sprintf("modal: duplicate transition %d→%d", e.From, e.To))
		}
		t.idx[at] = int8(i + 1)
	}
	return t
}

// N returns the number of modes.
func (t *Table) N() int { return t.n }

// Transitions returns a copy of the permitted transitions.
func (t *Table) Transitions() []Transition { return append([]Transition(nil), t.edges...) }

// Has reports whether the table permits the from→to transition.
func (t *Table) Has(from, to Mode) bool {
	if int(from) >= t.n || int(to) >= t.n {
		return false
	}
	return t.idx[int(from)*t.n+int(to)] != 0
}

// edge resolves from→to to its dense edge index, panicking on a
// transition absent from the table — the consensus step every protocol
// change must pass through; an absent edge is a programming error in the
// calling primitive, never a data-dependent condition.
func (t *Table) edge(from, to Mode) int {
	if int(from) >= t.n || int(to) >= t.n {
		panic(fmt.Sprintf("modal: mode %d→%d out of range for %d modes", from, to, t.n))
	}
	i := t.idx[int(from)*t.n+int(to)]
	if i == 0 {
		panic(fmt.Sprintf("modal: transition %d→%d absent from table", from, to))
	}
	return int(i - 1)
}

// Mode-word layout: the low 32 bits hold the current Mode, the high 32
// bits the epoch, which increments exactly once per committed
// transition. Readers therefore can never observe a torn change — mode
// and epoch move in one atomic word — and a CAS from an observed word can
// succeed only if no transition intervened (the consensus property).
const modeMask = (1 << 32) - 1

func pack(epoch uint32, m Mode) uint64 { return uint64(epoch)<<32 | uint64(m) }

// Unpack splits a mode word into its epoch and mode halves.
func Unpack(word uint64) (epoch uint32, m Mode) {
	return uint32(word >> 32), Mode(word & modeMask)
}

// Engine is the goroutine-safe modal-object selector. The zero value is
// an engine in mode 0 at epoch 0 using built-in streak detection; it is
// ready to use with any Table (the table is passed into each call so one
// static table serves every instance and the zero value stays
// allocation-free). An Engine must not be copied after first use, and
// must not be used with more than one Table.
type Engine struct {
	// word is the epoch-packed mode word — the consensus object
	// serializing mode changes. All transitions go through TryCommit's
	// CAS; everything else only reads it.
	word atomic.Uint64

	pol policy.Policy // nil: built-in per-edge streak detection

	// lock serializes calls into pol (policies are deliberately
	// unsynchronized). Taken only on detection events, never on a
	// primitive's uncontended fast path, and contended waiters back off
	// with randomized exponential backoff so a hot injected policy does
	// not become a contention hotspot.
	lock  atomic.Uint32
	dirty atomic.Bool // a sub-optimal vote reached pol since the last switch

	streaks  [MaxEdges]atomic.Int32
	switches atomic.Uint64
}

// SetPolicy installs p as the switching policy, replacing the built-in
// streak detection (nil restores it). Call before the engine is shared;
// the engine serializes all calls into p, but p must not be shared with
// any other engine or goroutine.
func (e *Engine) SetPolicy(p policy.Policy) { e.pol = p }

// Policy returns the installed switching policy (nil with built-in
// streak detection).
func (e *Engine) Policy() policy.Policy { return e.pol }

// Mode returns the currently selected mode.
func (e *Engine) Mode() Mode { return Mode(e.word.Load() & modeMask) }

// Epoch returns the number of transitions committed so far (mod 2³²).
func (e *Engine) Epoch() uint32 { epoch, _ := Unpack(e.word.Load()); return epoch }

// Word returns the raw epoch-packed mode word.
func (e *Engine) Word() uint64 { return e.word.Load() }

// Switches returns the number of committed transitions.
func (e *Engine) Switches() uint64 { return e.switches.Load() }

// Dirty reports whether a sub-optimal vote has reached the injected
// policy since the last transition or re-quiescence — i.e. whether Good
// calls are currently being forwarded rather than elided. Always false
// with built-in detection. Intended for tests and introspection.
func (e *Engine) Dirty() bool { return e.dirty.Load() }

// acquire takes the policy-serialization lock with randomized
// exponential backoff.
func (e *Engine) acquire() {
	var bo Backoff
	bo.Max = 32
	for !e.lock.CompareAndSwap(0, 1) {
		bo.Pause()
	}
}

func (e *Engine) release() { e.lock.Store(0) }

// Vote records one request served while mode from was sub-optimal in a
// way the from→to transition would cure, and reports whether the caller
// should attempt that transition now (via TryCommit, after any
// mode-specific preparation). limit is the built-in detection's streak
// threshold; with an injected policy the edge's Residual is charged and
// the policy decides. Panics if the table does not permit from→to.
func (e *Engine) Vote(t *Table, from, to Mode, limit int32) bool {
	i := t.edge(from, to)
	if e.pol == nil {
		return e.streaks[i].Add(1) >= limit
	}
	e.acquire()
	// The release is deferred so a panicking user policy cannot leak the
	// lock and wedge every later detection event on this engine.
	defer e.release()
	// dirty transitions only under the lock, so a vote racing a switch
	// cannot leave the flag false while the policy holds pressure.
	e.dirty.Store(true)
	return e.pol.Suboptimal(t.edges[i].Dir, t.edges[i].Residual)
}

// Good records one request served optimally with respect to the from→to
// transition, breaking that edge's sub-optimal streak. With an injected
// policy the call is elided while the engine is quiescent (no vote has
// raised switching pressure): only Suboptimal moves a policy toward a
// switch, so skipping Optimal notifications in that state cannot change
// any decision. It is also elided when the lock is busy — another
// goroutine is already feeding the policy, and Optimal events are a
// stream, not a count — so a fast path calling Good can never serialize
// on the engine lock. A policy implementing policy.Quiescer re-arms the
// elision as soon as its pressure has decayed to zero, returning a
// long-lived primitive's fast path to a single atomic load.
func (e *Engine) Good(t *Table, from, to Mode) {
	i := t.edge(from, to)
	if e.pol == nil {
		s := &e.streaks[i]
		if s.Load() != 0 {
			s.Store(0)
		}
		return
	}
	if !e.dirty.Load() || !e.lock.CompareAndSwap(0, 1) {
		return
	}
	defer e.release()
	e.pol.Optimal(t.edges[i].Dir)
	if q, ok := e.pol.(policy.Quiescer); ok && q.Quiescent() {
		e.dirty.Store(false)
	}
}

// TryCommit attempts the from→to transition: the consensus step. It
// succeeds only if the engine is still in mode from — exactly one caller
// wins any given epoch, so a primitive performs each protocol change at
// most once per detection round — and advances the epoch by one in the
// same atomic word. On success all streaks are reset and the policy is
// informed. Callers perform mode-specific preparation (building the
// target protocol's state) before calling, and migration effects (waking
// stranded waiters) after a true return. Panics if the table does not
// permit from→to.
func (e *Engine) TryCommit(t *Table, from, to Mode) bool {
	t.edge(from, to) // validate: every commit passes through the table
	for {
		w := e.word.Load()
		if Mode(w&modeMask) != from {
			return false
		}
		epoch, _ := Unpack(w)
		chaos.Point("modal.commit.window")
		if e.word.CompareAndSwap(w, pack(epoch+1, to)) {
			break
		}
	}
	e.switches.Add(1)
	e.switched(t)
	return true
}

// switched resets detection state after a committed transition.
func (e *Engine) switched(t *Table) {
	if e.pol == nil {
		for i := range t.edges {
			e.streaks[i].Store(0)
		}
		return
	}
	e.acquire()
	defer e.release()
	e.pol.Switched()
	e.dirty.Store(false)
}

// Decider is the unsynchronized modal-object selector for callers that
// already serialize detection — the cycle-level simulator, whose event
// engine runs one actor at a time and whose reactive algorithms hold a
// simulated consensus object across every detection event. It validates
// transitions against the same Table the native engine uses and forwards
// events to the same policies; the mode itself lives with the caller (in
// simulated memory), as do streak thresholds computed from simulated
// signals.
type Decider struct {
	tab *Table
	// pol points at the owner's policy field so callers may keep a
	// public, reassignable Policy configuration surface.
	pol *policy.Policy
}

// NewDecider builds a decider over t, reading the current policy through
// pol on every call.
func NewDecider(t *Table, pol *policy.Policy) *Decider {
	if t == nil || pol == nil {
		panic("modal: NewDecider needs a table and a policy pointer")
	}
	return &Decider{tab: t, pol: pol}
}

// Table returns the decider's transition table.
func (d *Decider) Table() *Table { return d.tab }

// Suboptimal records one request served while mode from was sub-optimal
// in a way the from→to transition would cure, charging the edge's
// residual, and reports whether the policy says to switch now. Panics if
// the table does not permit from→to.
func (d *Decider) Suboptimal(from, to Mode) bool {
	i := d.tab.edge(from, to)
	return (*d.pol).Suboptimal(d.tab.edges[i].Dir, d.tab.edges[i].Residual)
}

// Optimal records one request served optimally with respect to the
// from→to transition. Panics if the table does not permit from→to.
func (d *Decider) Optimal(from, to Mode) {
	i := d.tab.edge(from, to)
	(*d.pol).Optimal(d.tab.edges[i].Dir)
}

// Switched informs the policy that the from→to protocol change was
// carried out, validating it against the table — the consensus step a
// simulated transition must still pass through even though its memory
// effects happen in simulated memory. Panics if the table does not
// permit from→to.
func (d *Decider) Switched(from, to Mode) {
	d.tab.edge(from, to)
	(*d.pol).Switched()
}
