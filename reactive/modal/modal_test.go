package modal

import (
	"testing"

	"repro/reactive/policy"
)

// tab3 is a 3-mode chain table mirroring the reactive fetch-and-op:
// 0↔1↔2, no direct 0↔2 edge.
func tab3() *Table {
	return NewTable(3, []Transition{
		{From: 0, To: 1, Dir: 0, Residual: 150},
		{From: 1, To: 0, Dir: 1, Residual: 15},
		{From: 1, To: 2, Dir: 0, Residual: 150},
		{From: 2, To: 1, Dir: 1, Residual: 15},
	})
}

func TestNewTableValidation(t *testing.T) {
	for name, bad := range map[string]func(){
		"n<2":       func() { NewTable(1, []Transition{{From: 0, To: 0}}) },
		"empty":     func() { NewTable(2, nil) },
		"self-loop": func() { NewTable(2, []Transition{{From: 1, To: 1}}) },
		"range":     func() { NewTable(2, []Transition{{From: 0, To: 2}}) },
		"duplicate": func() { NewTable(2, []Transition{{From: 0, To: 1}, {From: 0, To: 1}}) },
		"too-many": func() {
			ts := make([]Transition, 0, MaxEdges+1)
			for i := 0; i <= MaxEdges; i++ {
				ts = append(ts, Transition{From: Mode(i), To: Mode(i + 1)})
			}
			NewTable(MaxEdges+2, ts)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewTable should have panicked", name)
				}
			}()
			bad()
		}()
	}
}

func TestTableHas(t *testing.T) {
	tab := tab3()
	if tab.N() != 3 {
		t.Fatalf("N = %d, want 3", tab.N())
	}
	for _, tc := range []struct {
		from, to Mode
		want     bool
	}{
		{0, 1, true}, {1, 0, true}, {1, 2, true}, {2, 1, true},
		{0, 2, false}, {2, 0, false}, {0, 0, false}, {3, 0, false}, {0, 3, false},
	} {
		if got := tab.Has(tc.from, tc.to); got != tc.want {
			t.Errorf("Has(%d,%d) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
	if got := len(tab.Transitions()); got != 4 {
		t.Errorf("Transitions() has %d edges, want 4", got)
	}
}

func TestEngineZeroValue(t *testing.T) {
	var e Engine
	if e.Mode() != 0 || e.Epoch() != 0 || e.Switches() != 0 || e.Dirty() {
		t.Fatalf("zero engine not at (mode 0, epoch 0): mode=%d epoch=%d", e.Mode(), e.Epoch())
	}
}

// TestEngineStreakDetection pins the built-in hysteresis semantics:
// limit consecutive votes on one edge approve the transition; a Good on
// that edge breaks the streak; a committed transition resets every
// streak.
func TestEngineStreakDetection(t *testing.T) {
	tab := tab3()
	var e Engine
	const limit = 3
	for i := 0; i < limit-1; i++ {
		if e.Vote(tab, 0, 1, limit) {
			t.Fatalf("switch approved after %d votes, want %d", i+1, limit)
		}
	}
	e.Good(tab, 0, 1) // breaks the streak
	for i := 0; i < limit-1; i++ {
		if e.Vote(tab, 0, 1, limit) {
			t.Fatal("broken streak still counted")
		}
	}
	if !e.Vote(tab, 0, 1, limit) {
		t.Fatal("full streak did not approve the transition")
	}
	if !e.TryCommit(tab, 0, 1) {
		t.Fatal("TryCommit failed from the current mode")
	}
	if e.Mode() != 1 || e.Epoch() != 1 || e.Switches() != 1 {
		t.Fatalf("after commit: mode=%d epoch=%d switches=%d", e.Mode(), e.Epoch(), e.Switches())
	}
	// The commit reset the 1→2 streak too (not just the taken edge's).
	if e.Vote(tab, 1, 2, 2) {
		t.Fatal("streaks not reset by commit")
	}
}

func TestEngineCommitConsensus(t *testing.T) {
	tab := tab3()
	var e Engine
	if e.TryCommit(tab, 1, 2) {
		t.Fatal("commit from a mode the engine is not in must fail")
	}
	if !e.TryCommit(tab, 0, 1) {
		t.Fatal("commit from the current mode must succeed")
	}
	// A second identical commit (stale detection round) must fail: the
	// first one consumed the epoch.
	if e.TryCommit(tab, 0, 1) {
		t.Fatal("stale commit succeeded — consensus step skipped")
	}
	epoch, mode := Unpack(e.Word())
	if epoch != 1 || mode != 1 {
		t.Fatalf("word = (epoch %d, mode %d), want (1, 1)", epoch, mode)
	}
}

func TestEngineAbsentEdgePanics(t *testing.T) {
	tab := tab3()
	var e Engine
	for name, call := range map[string]func(){
		"vote":   func() { e.Vote(tab, 0, 2, 3) },
		"good":   func() { e.Good(tab, 2, 0) },
		"commit": func() { e.TryCommit(tab, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on an absent edge should panic", name)
				}
			}()
			call()
		}()
	}
}

// TestEnginePolicyIntegration: an injected policy receives per-edge
// directions and residuals, Good elision re-arms on quiescence, and a
// commit clears pressure.
func TestEnginePolicyIntegration(t *testing.T) {
	tab := tab3()
	var e Engine
	e.SetPolicy(policy.NewHysteresis(2, 2))
	if e.Vote(tab, 0, 1, 99) {
		t.Fatal("hysteresis(2) switched on first vote")
	}
	if !e.Dirty() {
		t.Fatal("vote did not mark the engine dirty")
	}
	e.Good(tab, 0, 1) // hysteresis resets → quiescent → elision re-arms
	if e.Dirty() {
		t.Fatal("engine still dirty after the policy re-quiesced")
	}
	if e.Vote(tab, 0, 1, 99) {
		t.Fatal("pressure survived the optimal break")
	}
	if !e.Vote(tab, 0, 1, 99) {
		t.Fatal("hysteresis(2) did not switch after 2 consecutive votes")
	}
	if !e.TryCommit(tab, 0, 1) {
		t.Fatal("commit failed")
	}
	if e.Dirty() {
		t.Fatal("commit did not clear the dirty flag")
	}
}

// TestEngineCompetitiveResiduals: the 3-competitive policy accumulates
// the per-edge residual cost defined by the table.
func TestEngineCompetitiveResiduals(t *testing.T) {
	tab := tab3()
	var e Engine
	e.SetPolicy(policy.NewCompetitive(300)) // = 2 × the up-edge residual
	if e.Vote(tab, 0, 1, 99) {
		t.Fatal("competitive switched below threshold")
	}
	if !e.Vote(tab, 0, 1, 99) {
		t.Fatal("competitive did not switch once accumulated residual reached threshold")
	}
}

func TestDeciderForwardsEdgeEvents(t *testing.T) {
	tab := tab3()
	var pol policy.Policy = policy.NewHysteresis(2, 1)
	d := NewDecider(tab, &pol)
	if d.Suboptimal(0, 1) {
		t.Fatal("hysteresis(2,1) switched on first up-vote")
	}
	if !d.Suboptimal(0, 1) {
		t.Fatal("hysteresis(2,1) did not switch on second up-vote")
	}
	d.Switched(0, 1)
	// Down-edge threshold is 1: a single vote switches.
	if !d.Suboptimal(1, 0) {
		t.Fatal("down-direction vote did not reach the policy with dir=1")
	}
	// The policy is read through the pointer: swapping it takes effect.
	pol = policy.AlwaysSwitch{}
	if !d.Suboptimal(0, 1) {
		t.Fatal("reassigned policy not picked up")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Suboptimal on an absent edge should panic")
			}
		}()
		d.Suboptimal(0, 2)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Switched on an absent edge should panic")
			}
		}()
		d.Switched(2, 0)
	}()
}

func TestPoll(t *testing.T) {
	n := 0
	if Poll(5, func() bool { n++; return n == 3 }) != true {
		t.Fatal("Poll missed a success within budget")
	}
	if n != 3 {
		t.Fatalf("Poll called try %d times, want 3", n)
	}
	n = 0
	if Poll(4, func() bool { n++; return false }) {
		t.Fatal("Poll reported success after budget exhaustion")
	}
	if n != 4 {
		t.Fatalf("Poll called try %d times, want the full budget 4", n)
	}
	if Poll(0, func() bool { t.Fatal("zero budget must not call try"); return true }) {
		t.Fatal("zero-budget Poll reported success")
	}
}

func TestPollCh(t *testing.T) {
	// nil done: identical to Poll.
	n := 0
	ok, aborted := PollCh(5, nil, func() bool { n++; return n == 3 })
	if !ok || aborted || n != 3 {
		t.Fatalf("PollCh(nil done) = (%v, %v) after %d tries, want (true, false) after 3", ok, aborted, n)
	}
	// A closed done channel aborts after the first failed try, without
	// spinning the rest of the budget down.
	done := make(chan struct{})
	close(done)
	n = 0
	ok, aborted = PollCh(1000, done, func() bool { n++; return false })
	if ok || !aborted || n != 1 {
		t.Fatalf("PollCh(closed done) = (%v, %v) after %d tries, want (false, true) after 1", ok, aborted, n)
	}
	// A success on the same iteration done closes wins: try runs first.
	ok, aborted = PollCh(3, done, func() bool { return true })
	if !ok || aborted {
		t.Fatalf("PollCh success with closed done = (%v, %v), want (true, false)", ok, aborted)
	}
	// An open done channel never aborts; the budget governs.
	open := make(chan struct{})
	n = 0
	ok, aborted = PollCh(4, open, func() bool { n++; return false })
	if ok || aborted || n != 4 {
		t.Fatalf("PollCh(open done) = (%v, %v) after %d tries, want budget exhaustion after 4", ok, aborted, n)
	}
}

func TestBackoffPausesAndDoubles(t *testing.T) {
	var b Backoff
	b.Max = 8
	for i := 0; i < 20; i++ {
		b.Pause()
	}
	if b.mean != 8 {
		t.Fatalf("mean = %d after many pauses, want capped at 8", b.mean)
	}
	// Two zero-value backoffs must not share a seed (decorrelation).
	var b1, b2 Backoff
	b1.Pause()
	b2.Pause()
	if b1.seed == b2.seed {
		t.Fatal("independent Backoffs share a seed")
	}
}
