package modal

import "fmt"

// Check verifies the engine's quiescent-state invariants against its
// transition table: the selected mode is one the table knows, and the
// epoch in the packed word agrees with the switch counter. The second
// clause holds only at quiescence — TryCommit advances the epoch with
// its CAS and bumps the counter just after, so a checker racing a
// commit can observe the counter one behind. Call it from tests and
// torture runs after the engine's users have stopped, never
// concurrently with transitions.
func (e *Engine) Check(t *Table) error {
	epoch, m := Unpack(e.word.Load())
	if int(m) >= t.N() {
		return fmt.Errorf("modal: engine in mode %d, table has %d modes", m, t.N())
	}
	// The epoch is the switch counter truncated to 32 bits (both only
	// ever advance together, by one), so compare modulo 2^32.
	if s := e.switches.Load(); uint32(s) != epoch {
		return fmt.Errorf("modal: epoch %d but %d committed switches (checker raced a commit, or a commit skipped its bookkeeping)", epoch, s)
	}
	if e.lock.Load() != 0 {
		return fmt.Errorf("modal: policy lock held at quiescence")
	}
	return nil
}
