package modal

import (
	"strings"
	"testing"
)

func TestEngineCheck(t *testing.T) {
	tab := NewTable(2, []Transition{{From: 0, To: 1}, {From: 1, To: 0}})
	var e Engine
	if err := e.Check(tab); err != nil {
		t.Fatalf("fresh engine: %v", err)
	}
	if !e.TryCommit(tab, 0, 1) {
		t.Fatal("TryCommit failed on a fresh engine")
	}
	if err := e.Check(tab); err != nil {
		t.Fatalf("after one commit: %v", err)
	}

	// Epoch/switch-counter skew is the torn-commit signature.
	e.switches.Add(1)
	if err := e.Check(tab); err == nil || !strings.Contains(err.Error(), "switches") {
		t.Fatalf("skewed switch counter not caught: %v", err)
	}
	e.switches.Add(^uint64(0)) // undo

	// A held policy lock at quiescence means a detection event leaked it.
	e.lock.Store(1)
	if err := e.Check(tab); err == nil || !strings.Contains(err.Error(), "policy lock") {
		t.Fatalf("held policy lock not caught: %v", err)
	}
	e.lock.Store(0)
	if err := e.Check(tab); err != nil {
		t.Fatalf("restored engine: %v", err)
	}
}
