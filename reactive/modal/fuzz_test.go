package modal

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/reactive/policy"
)

// chainTable builds the n-mode chain 0↔1↔…↔n-1 (adjacent transitions
// only), the general shape of the thesis's modal objects.
func chainTable(n int) *Table {
	var ts []Transition
	for m := 0; m < n-1; m++ {
		ts = append(ts,
			Transition{From: Mode(m), To: Mode(m + 1), Dir: 0, Residual: 150},
			Transition{From: Mode(m + 1), To: Mode(m), Dir: 1, Residual: 15})
	}
	return NewTable(n, ts)
}

// TestEngineFuzzVoteSequences mirrors internal/core's fuzz tests for the
// native engine: random single-threaded sequences of votes, goods, and
// commit attempts over N-mode chain tables must never produce a torn
// epoch (word inconsistent with the committed-transition count), a
// skipped consensus step (mode changing without an epoch increment), or
// a transition absent from the table.
func TestEngineFuzzVoteSequences(t *testing.T) {
	f := func(seed uint64, rawN uint8, rawPolicy uint8, ops []uint16) bool {
		n := int(rawN%5) + 2 // 2..6 modes
		tab := chainTable(n)
		var e Engine
		switch rawPolicy % 4 {
		case 1:
			e.SetPolicy(policy.AlwaysSwitch{})
		case 2:
			e.SetPolicy(policy.NewCompetitive(100))
		case 3:
			e.SetPolicy(policy.NewHysteresis(2, 3))
		}
		commits := uint64(0)
		mode := e.Mode()
		for _, op := range ops {
			// Random permitted edge touching the current mode (the only
			// edges a real primitive ever exercises).
			up := op&1 == 0
			from, to := mode, mode
			if up && int(mode) < n-1 {
				to = mode + 1
			} else if !up && mode > 0 {
				to = mode - 1
			} else {
				continue
			}
			switch (op >> 1) % 3 {
			case 0:
				e.Good(tab, from, to)
			case 1:
				if e.Vote(tab, from, to, 2) && e.TryCommit(tab, from, to) {
					commits++
				}
			case 2:
				if e.TryCommit(tab, from, to) {
					commits++
				}
			}
			epoch, m := Unpack(e.Word())
			if uint64(epoch) != commits {
				t.Errorf("torn/skipped epoch: %d commits but epoch %d", commits, epoch)
				return false
			}
			if int(m) >= n {
				t.Errorf("mode %d out of range for %d modes", m, n)
				return false
			}
			if m != mode && !tab.Has(mode, m) {
				t.Errorf("transition %d→%d absent from table was taken", mode, m)
				return false
			}
			mode = m
		}
		return e.Switches() == commits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineFuzzConcurrentConsensus hammers one engine from many
// goroutines voting and committing random adjacent transitions (under
// the race detector when enabled), then checks the consensus invariants:
// the epoch counts exactly the transitions whose TryCommit returned true
// (no torn word, no double-won epoch), and every observed word holds an
// in-range mode.
func TestEngineFuzzConcurrentConsensus(t *testing.T) {
	f := func(seed uint64, rawN, rawG, rawPolicy uint8) bool {
		n := int(rawN%4) + 2 // 2..5 modes
		tab := chainTable(n)
		var e Engine
		if rawPolicy%2 == 1 {
			e.SetPolicy(policy.NewHysteresis(2, 2))
		}
		goroutines := int(rawG%6) + 2
		const iters = 300
		var committed atomic.Uint64
		var outOfRange atomic.Bool
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := seed ^ (uint64(g)+1)*0x9e3779b97f4a7c15
				for i := 0; i < iters; i++ {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					mode := e.Mode()
					to := mode
					if rng&1 == 0 && int(mode) < n-1 {
						to = mode + 1
					} else if mode > 0 {
						to = mode - 1
					} else {
						continue
					}
					// A vote approving the switch, or an occasional direct
					// commit attempt, races other goroutines for the epoch.
					if e.Vote(tab, mode, to, 2) || rng&6 == 0 {
						if e.TryCommit(tab, mode, to) {
							committed.Add(1)
						}
					}
					if _, m := Unpack(e.Word()); int(m) >= n {
						outOfRange.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
		if outOfRange.Load() {
			t.Error("observed an out-of-range mode")
			return false
		}
		epoch, mode := Unpack(e.Word())
		if uint64(epoch) != committed.Load() || e.Switches() != committed.Load() {
			t.Errorf("epoch %d, switches %d, but %d commits won — consensus violated",
				epoch, e.Switches(), committed.Load())
			return false
		}
		return int(mode) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
