package modal

import "testing"

// FuzzEngineTransitions drives an Engine with an arbitrary stream of
// detection events and commit attempts over a 3-mode chain (the shape
// FetchOp and the RWMutex reader registration use) and verifies the
// consensus invariants against a model after every step: exactly the
// attempts made in the current mode commit, the epoch counts committed
// switches, and the built-in streaks reset on every commit (Vote fires
// at its limit, immediately after a switch it never does).
func FuzzEngineTransitions(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2})  // hammer one commit edge
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})        // vote to the limit
	f.Add([]byte{0, 2, 1, 5, 3, 8, 6, 11, 9, 2, 0, 2}) // walk the chain
	f.Fuzz(func(t *testing.T, ops []byte) {
		tab := NewTable(3, []Transition{
			{From: 0, To: 1}, {From: 1, To: 0},
			{From: 1, To: 2}, {From: 2, To: 1},
		})
		edges := tab.Transitions()
		const limit = 3
		var e Engine

		mode := Mode(0)           // model mode
		var switches uint64       // model switch count
		streak := map[int]int32{} // model per-edge sub-optimal streaks

		for _, b := range ops {
			ei := int(b) % len(edges)
			ed := edges[ei]
			switch op := int(b) / len(edges) % 3; op {
			case 0: // Vote
				streak[ei]++
				want := streak[ei] >= limit
				if got := e.Vote(tab, ed.From, ed.To, limit); got != want {
					t.Fatalf("Vote(%d→%d) = %v, model streak %d/%d", ed.From, ed.To, got, streak[ei], limit)
				}
			case 1: // Good
				streak[ei] = 0
				e.Good(tab, ed.From, ed.To)
			case 2: // TryCommit
				want := mode == ed.From
				if got := e.TryCommit(tab, ed.From, ed.To); got != want {
					t.Fatalf("TryCommit(%d→%d) = %v in mode %d", ed.From, ed.To, got, mode)
				}
				if want {
					mode = ed.To
					switches++
					for k := range streak {
						streak[k] = 0
					}
				}
			}

			if got := e.Mode(); got != mode {
				t.Fatalf("Mode = %d, model %d", got, mode)
			}
			if got := e.Switches(); got != switches {
				t.Fatalf("Switches = %d, model %d", got, switches)
			}
			if got := e.Epoch(); got != uint32(switches) {
				t.Fatalf("Epoch = %d, %d switches", got, switches)
			}
			if err := e.Check(tab); err != nil {
				t.Fatal(err)
			}
		}
	})
}
