package modal

import (
	"runtime"
	"sync/atomic"
)

// Poll is phase one of two-phase waiting: call try up to budget times,
// yielding the processor between attempts, and report whether try ever
// succeeded. Callers express the polling budget (Lpoll) in iterations;
// a false return means the budget is exhausted and phase two (a
// signaling mechanism — parking, a condition variable, a semaphore) is
// the cheaper way to keep waiting.
func Poll(budget int32, try func() bool) bool {
	for i := int32(0); i < budget; i++ {
		if try() {
			return true
		}
		runtime.Gosched()
	}
	return false
}

// PollCh polls like Poll but additionally gives up when done is closed —
// the deadline-aware phase one of two-phase waiting: a cancelled context
// stops consuming the polling budget at once instead of spinning it down.
// A nil done never aborts, so PollCh(b, nil, try) behaves exactly like
// Poll(b, try). The results are (ok, aborted): ok reports that try
// succeeded, aborted that the wait was abandoned because done was closed;
// they are never both true, and both false means the budget is exhausted
// and phase two (a signaling mechanism) is the cheaper way to keep
// waiting.
func PollCh(budget int32, done <-chan struct{}, try func() bool) (ok, aborted bool) {
	if done == nil {
		return Poll(budget, try), false
	}
	for i := int32(0); i < budget; i++ {
		if try() {
			return true, false
		}
		select {
		case <-done:
			return false, true
		default:
		}
		runtime.Gosched()
	}
	return false, false
}

// DefaultBackoffMax is the cap on Backoff's mean pause length, in
// scheduler yields.
const DefaultBackoffMax = 64

// backoffSeq seeds each Backoff differently so independent spinners
// decorrelate even when they start in the same scheduler quantum.
var backoffSeq atomic.Uint32

// Backoff is randomized exponential backoff for spin loops: each Pause
// yields the processor a uniformly random number of times drawn from a
// mean that doubles up to Max. Randomization breaks the lock-step
// convoys that plain doubling produces when many spinners observe the
// same event. The zero value is ready to use (mean 1, cap
// DefaultBackoffMax); a Backoff is single-goroutine state and is
// typically a local variable of one waiting loop.
type Backoff struct {
	// Max caps the mean pause length in yields; 0 means
	// DefaultBackoffMax.
	Max uint32

	mean uint32
	seed uint32
}

// Pause yields between 1 and mean times, then doubles the mean toward
// the cap.
func (b *Backoff) Pause() {
	if b.mean == 0 {
		b.mean = 1
	}
	if b.seed == 0 {
		// Mix the global sequence so two zero-value Backoffs created
		// back-to-back still diverge; the |1 keeps the xorshift state
		// nonzero forever.
		b.seed = (backoffSeq.Add(1) * 2654435761) | 1
	}
	b.seed ^= b.seed << 13
	b.seed ^= b.seed >> 17
	b.seed ^= b.seed << 5
	spins := 1 + int(b.seed%b.mean)
	for i := 0; i < spins; i++ {
		runtime.Gosched()
	}
	max := b.Max
	if max == 0 {
		max = DefaultBackoffMax
	}
	if b.mean < max {
		b.mean *= 2
		if b.mean > max {
			b.mean = max
		}
	}
}
