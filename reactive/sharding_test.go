package reactive

// Tests for the per-P affinity substrate's integration: zero-allocation
// fast paths (the regression test for deleting the stripe pool),
// GOMAXPROCS=1 coverage (minimum cell array, pin index 0 everywhere),
// and the BRAVO-style sharded reader registration of RWMutex.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/reactive/internal/affinity"
	"repro/reactive/policy"
)

// --- Zero-allocation assertions -------------------------------------

// assertZeroAllocs pins a fast path at zero allocations per operation.
func assertZeroAllocs(t *testing.T, name string, op func()) {
	t.Helper()
	op() // warm up lazily-created state outside the measurement
	if avg := testing.AllocsPerRun(200, op); avg != 0 {
		t.Errorf("%s allocates %v per op, want 0", name, avg)
	}
}

func TestCounterAddZeroAllocs(t *testing.T) {
	var cas Counter
	assertZeroAllocs(t, "Counter.Add/cas", func() { cas.Add(1) })

	sharded := NewCounter()
	sharded.f.switchFop(fCAS, fSharded)
	assertZeroAllocs(t, "Counter.Add/sharded", func() { sharded.Add(1) })

	combining := NewCounter()
	combining.f.switchFop(fCAS, fSharded)
	combining.f.switchFop(fSharded, fCombining)
	assertZeroAllocs(t, "Counter.Add/combining", func() { combining.Add(1) })
}

func TestFetchOpApplyZeroAllocs(t *testing.T) {
	op := func(a, b int64) int64 {
		if b > a {
			return b
		}
		return a
	}
	cas := NewFetchOp(op, 0)
	assertZeroAllocs(t, "FetchOp.Apply/cas", func() { cas.Apply(1) })

	sharded := NewFetchOp(op, 0)
	sharded.switchFop(fCAS, fSharded)
	assertZeroAllocs(t, "FetchOp.Apply/sharded", func() { sharded.Apply(1) })

	combining := NewFetchOp(op, 0)
	combining.switchFop(fCAS, fSharded)
	combining.switchFop(fSharded, fCombining)
	assertZeroAllocs(t, "FetchOp.Apply/combining", func() { combining.Apply(1) })
}

// TestCongestionPolicyZeroAllocs pins the uncontended fast paths at
// zero allocations with policy.Congestion installed: carrying the
// feedback-control policy (and its Quiescent elision) must not cost an
// allocation per operation.
func TestCongestionPolicyZeroAllocs(t *testing.T) {
	m := New(WithPolicy(policy.NewCongestion()))
	assertZeroAllocs(t, "Mutex.Lock/congestion", func() {
		m.Lock()
		m.Unlock()
	})

	c := NewCounter(WithPolicy(policy.NewCongestion()))
	assertZeroAllocs(t, "Counter.Add/congestion", func() { c.Add(1) })

	rw := NewRWMutex(WithPolicy(policy.NewCongestion()))
	assertZeroAllocs(t, "RWMutex.RLock/congestion", func() {
		rw.RLock()
		rw.RUnlock()
	})
}

func TestRWMutexReadZeroAllocs(t *testing.T) {
	var central RWMutex
	assertZeroAllocs(t, "RWMutex.RLock/central", func() {
		central.RLock()
		central.RUnlock()
	})

	var sharded RWMutex
	sharded.switchReaderMode(rCentral, rSharded)
	if got := sharded.Stats().Readers.Mode; got != ModeSharded {
		t.Fatalf("reader mode = %v, want sharded", got)
	}
	assertZeroAllocs(t, "RWMutex.RLock/sharded", func() {
		sharded.RLock()
		sharded.RUnlock()
	})
}

// --- WithInitialMode ------------------------------------------------

func TestWithInitialMode(t *testing.T) {
	if got := New(WithInitialMode(ModePark)).Stats().Mode; got != ModePark {
		t.Fatalf("Mutex initial mode = %v, want park", got)
	}
	if got := New(WithInitialMode(ModeSpin)).Stats().Mode; got != ModeSpin {
		t.Fatalf("Mutex initial mode = %v, want spin", got)
	}
	c := NewCounter(WithInitialMode(ModeSharded))
	if got := c.Stats().Mode; got != ModeSharded {
		t.Fatalf("Counter initial mode = %v, want sharded", got)
	}
	c.Add(5)
	c.Add(7)
	if got := c.Load(); got != 12 {
		t.Fatalf("forced-sharded Counter Load = %d, want 12", got)
	}
	f := NewFetchOp(func(a, b int64) int64 { return a + b }, 0, WithInitialMode(ModeCombining))
	if got := f.Stats().Mode; got != ModeCombining {
		t.Fatalf("FetchOp initial mode = %v, want combining", got)
	}
	for i := 0; i < 50; i++ {
		f.Apply(1)
	}
	if got := f.Value(); got != 50 {
		t.Fatalf("forced-combining FetchOp Value = %d, want 50", got)
	}
	rw := NewRWMutex(WithInitialMode(ModeSharded))
	if got := rw.Stats().Readers.Mode; got != ModeSharded {
		t.Fatalf("RWMutex initial registration mode = %v, want sharded", got)
	}
	if got := rw.Stats().Mode; got != ModeSpin {
		t.Fatalf("RWMutex wait mode = %v after registration-only option, want spin", got)
	}
	rw.RLock()
	rw.RUnlock()
	rw.Lock()
	rw.Unlock()
	rw2 := NewRWMutex(WithInitialMode(ModePark))
	if got := rw2.Stats().Mode; got != ModePark {
		t.Fatalf("RWMutex wait mode = %v, want park", got)
	}
	if got := rw2.Stats().Readers.Mode; got != ModeCAS {
		t.Fatalf("RWMutex registration mode = %v after wait-only option, want cas", got)
	}
	if got := rw2.w.eng.Mode(); got != mSpin {
		t.Fatalf("embedded writer mutex mode = %v, want spin (initial mode must not propagate)", got)
	}
}

func TestWithInitialModeInvalid(t *testing.T) {
	for name, f := range map[string]func(){
		"option-range":      func() { WithInitialMode(Mode(99)) },
		"mutex-cas":         func() { New(WithInitialMode(ModeCAS)) },
		"counter-spin":      func() { NewCounter(WithInitialMode(ModeSpin)) },
		"fetchop-park":      func() { NewFetchOp(func(a, b int64) int64 { return a + b }, 0, WithInitialMode(ModePark)) },
		"rwmutex-combining": func() { NewRWMutex(WithInitialMode(ModeCombining)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: invalid initial mode did not panic", name)
				}
			}()
			f()
		}()
	}
}

// --- GOMAXPROCS=1 coverage ------------------------------------------

// TestFetchOpGOMAXPROCS1ModeTransitions walks the whole protocol chain
// at GOMAXPROCS=1: the cell array takes its minimum size (2) and every
// pin resolves to index 0, so all sharded traffic funnels through one
// cell — the accumulator must still be exact across every transition.
func TestFetchOpGOMAXPROCS1ModeTransitions(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	if affinity.Shards() != 2 {
		t.Fatalf("Shards() = %d at GOMAXPROCS=1, want the minimum 2", affinity.Shards())
	}
	f := NewFetchOp(func(a, b int64) int64 { return a + b }, 0)
	want := int64(0)
	apply := func(n int) {
		for i := 0; i < n; i++ {
			f.Apply(1)
			want++
		}
	}
	apply(10) // CAS
	f.switchFop(fCAS, fSharded)
	apply(10) // sharded: every deposit lands in cell 0
	f.switchFop(fSharded, fCombining)
	apply(25) // combining: batch folds through the same single cell
	if got := f.Value(); got != want {
		t.Fatalf("Value = %d after combining at GOMAXPROCS=1, want %d", got, want)
	}
	// Back down the chain; the sweep-based detection still works with
	// one processor.
	if f.eng.TryCommit(fopTable, f.eng.Mode(), fSharded) {
		apply(10)
	}
	if f.eng.TryCommit(fopTable, fSharded, fCAS) {
		apply(10)
	}
	if got := f.Value(); got != want {
		t.Fatalf("Value = %d after full chain at GOMAXPROCS=1, want %d", got, want)
	}
}

func TestCounterGOMAXPROCS1ModeTransitions(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var c Counter
	want := int64(0)
	add := func(n int) {
		for i := 0; i < n; i++ {
			c.Add(2)
			want += 2
		}
	}
	add(10)
	c.f.switchFop(fCAS, fSharded)
	add(10)
	if got := c.Load(); got != want {
		t.Fatalf("Load = %d in sharded mode at GOMAXPROCS=1, want %d", got, want)
	}
	c.f.switchFop(c.f.eng.Mode(), fCombining)
	add(25)
	if got := c.Load(); got != want {
		t.Fatalf("Load = %d in combining mode at GOMAXPROCS=1, want %d", got, want)
	}
}

// --- Sharded reader registration (RWMutex) --------------------------

// TestRWMutexReaderContentionPromotesToSharded pins the up-edge
// detection semantics deterministically: SpinFailLimit consecutive
// reader-reader CAS losses (as rlockSlow reports them) switch the
// registration protocol to sharded slots.
func TestRWMutexReaderContentionPromotesToSharded(t *testing.T) {
	var rw RWMutex
	for i := 0; i < DefaultSpinFailLimit; i++ {
		if rw.reng.Vote(readerShardTable, rCentral, rSharded, rw.cfg.failLimit()) {
			rw.switchReaderMode(rCentral, rSharded)
		}
	}
	if got := rw.Stats().Readers; got.Mode != ModeSharded || got.Switches != 1 {
		t.Fatalf("Stats().Readers = %+v after %d CAS losses, want sharded after 1 switch",
			got, DefaultSpinFailLimit)
	}
	// Readers must still work, concurrently, in the new mode.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rw.RLock()
				rw.RUnlock()
			}
		}()
	}
	wg.Wait()
}

// TestRWMutexRegistrationStreakSemantics pins the up-edge streak
// semantics: a loss-free slow-path registration (reported as Good by
// rlockSlow) breaks the reader-contention streak, so only consecutive
// CAS losses — never losses accumulated across the lock's lifetime —
// reach the switch threshold.
func TestRWMutexRegistrationStreakSemantics(t *testing.T) {
	var rw RWMutex
	for round := 0; round < 3; round++ {
		for i := 0; i < DefaultSpinFailLimit-1; i++ {
			if rw.reng.Vote(readerShardTable, rCentral, rSharded, rw.cfg.failLimit()) {
				rw.switchReaderMode(rCentral, rSharded)
			}
		}
		rw.reng.Good(readerShardTable, rCentral, rSharded) // loss-free registration
	}
	if got := rw.Stats().Readers.Mode; got != ModeCAS {
		t.Fatalf("reader mode = %v after broken loss streaks, want cas", got)
	}
}

// TestRWMutexQuietDrainsDemoteToCentral: EmptyLimit consecutive writer
// drains that found the lock already quiet retire the sharded slots.
func TestRWMutexQuietDrainsDemoteToCentral(t *testing.T) {
	var rw RWMutex
	rw.switchReaderMode(rCentral, rSharded)
	for i := 0; i < 2*DefaultEmptyLimit; i++ {
		rw.Lock()
		rw.Unlock()
	}
	if got := rw.Stats().Readers.Mode; got != ModeCAS {
		t.Fatalf("reader mode = %v after quiet writer drains, want cas", got)
	}
	// The slots stay built, and reads still work.
	rw.RLock()
	rw.RUnlock()
}

// TestRWMutexShardedParallelReaders: two readers hold the lock
// simultaneously under sharded registration.
func TestRWMutexShardedParallelReaders(t *testing.T) {
	var rw RWMutex
	rw.switchReaderMode(rCentral, rSharded)
	rw.RLock()
	second := make(chan struct{})
	go func() {
		rw.RLock()
		close(second)
		rw.RUnlock()
	}()
	select {
	case <-second:
	case <-time.After(5 * time.Second):
		t.Fatal("second sharded reader blocked by first")
	}
	rw.RUnlock()
}

// TestRWMutexShardedTryLocks: TryLock must observe sharded readers via
// the slot sweep, and TryRLock must register through the slots.
func TestRWMutexShardedTryLocks(t *testing.T) {
	var rw RWMutex
	rw.switchReaderMode(rCentral, rSharded)
	if !rw.TryRLock() {
		t.Fatal("TryRLock on free sharded RWMutex failed")
	}
	if rw.TryLock() {
		t.Fatal("TryLock with an active sharded reader succeeded")
	}
	rw.RUnlock()
	if !rw.TryLock() {
		t.Fatal("TryLock on free sharded RWMutex failed")
	}
	if rw.TryRLock() {
		t.Fatal("TryRLock on write-held sharded RWMutex succeeded")
	}
	rw.Unlock()
}

// TestRWMutexShardedExclusion re-runs the classic exclusion invariant
// with the registration protocol pinned to sharded slots.
func TestRWMutexShardedExclusion(t *testing.T) {
	var rw RWMutex
	rw.switchReaderMode(rCentral, rSharded)
	var readers, writers atomic.Int32
	var wg sync.WaitGroup
	iters := 1000
	if testing.Short() {
		iters = 300
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.Lock()
				if writers.Add(1) != 1 || readers.Load() != 0 {
					t.Error("writer overlapped a writer or reader")
				}
				runtime.Gosched()
				writers.Add(-1)
				rw.Unlock()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.RLock()
				readers.Add(1)
				if writers.Load() != 0 {
					t.Error("reader overlapped a writer")
				}
				runtime.Gosched()
				readers.Add(-1)
				rw.RUnlock()
			}
		}()
	}
	wg.Wait()
}

// TestRWMutexStressShardedRegistration is the race-detector stress test
// for the sharded reader protocol: readers registering through the
// slots race writer drains and registration-protocol switches in both
// directions, with a timeout guard asserting nobody is stranded and the
// exclusion counters asserting no reader ever overlaps a writer. (The
// mode flipper routes every switch through switchReaderMode — commits
// are only sound under writer exclusion, which is itself part of the
// contract under test.)
func TestRWMutexStressShardedRegistration(t *testing.T) {
	rw := NewRWMutex(WithPollIters(2)) // park quickly: exercise both wait phases
	const writers, readers = 4, 16
	iters := 300
	if testing.Short() {
		iters = 100
	}
	var inWriter, inReaders atomic.Int32
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var fwg sync.WaitGroup
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				rw.switchReaderMode(rCentral, rSharded)
			} else {
				rw.switchReaderMode(rSharded, rCentral)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()
	counter := 0
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.Lock()
				if inWriter.Add(1) != 1 || inReaders.Load() != 0 {
					t.Error("writer overlapped a writer or reader across a registration switch")
				}
				counter++
				inWriter.Add(-1)
				rw.Unlock()
			}
		}()
	}
	var reads atomic.Int64
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.RLock()
				inReaders.Add(1)
				if inWriter.Load() != 0 {
					t.Error("reader overlapped a writer across a registration switch")
				}
				reads.Add(1)
				inReaders.Add(-1)
				rw.RUnlock()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stranded waiter across registration-protocol switches: %d/%d writes, %d/%d reads",
			counter, writers*iters, reads.Load(), int64(readers*iters))
	}
	close(stop)
	fwg.Wait()
	if counter != writers*iters {
		t.Fatalf("writes = %d, want %d", counter, writers*iters)
	}
}
