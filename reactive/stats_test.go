package reactive

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestModeTextRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeSpin, ModePark, ModeCAS, ModeSharded, ModeCombining} {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", m, err)
		}
		if string(b) != m.String() {
			t.Fatalf("MarshalText(%v) = %q, want %q", m, b, m.String())
		}
		var back Mode
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", b, err)
		}
		if back != m {
			t.Fatalf("round trip %v -> %q -> %v", m, b, back)
		}
	}
	var m Mode
	if err := m.UnmarshalText([]byte("warp")); err == nil {
		t.Fatal("UnmarshalText must reject an unknown mode name")
	}
}

func TestStatsJSON(t *testing.T) {
	s := Stats{Mode: ModePark, Switches: 3, Waiters: 2}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"mode":"park","switches":3,"waiters":2}`
	if string(b) != want {
		t.Fatalf("Stats JSON = %s, want %s", b, want)
	}
	s.Readers = &ReaderStats{Mode: ModeSharded, Switches: 1, Shards: 4, Graces: 6, QuietGraces: 5}
	b, err = json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	want = `{"mode":"park","switches":3,"waiters":2,"readers":{"mode":"sharded","switches":1,"shards":4,"graces":6,"quiet_graces":5}}`
	if string(b) != want {
		t.Fatalf("Stats JSON with readers = %s, want %s", b, want)
	}
	var back Stats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Mode != ModePark || back.Switches != 3 || back.Waiters != 2 ||
		back.Readers == nil || *back.Readers != *s.Readers {
		t.Fatalf("Stats JSON round trip = %+v", back)
	}
}

func TestStatsSubFields(t *testing.T) {
	cur := Stats{Mode: ModePark, Switches: 7, Waiters: 3}
	prev := Stats{Mode: ModeSpin, Switches: 2, Waiters: 9}
	d := cur.Sub(prev)
	if d.Mode != ModePark {
		t.Fatalf("Mode is a gauge; delta mode = %v, want %v", d.Mode, ModePark)
	}
	if d.Switches != 5 {
		t.Fatalf("Switches is monotonic; delta = %d, want 5", d.Switches)
	}
	if d.Waiters != 3 {
		t.Fatalf("Waiters is a gauge; delta = %d, want 3", d.Waiters)
	}
	if d.Readers != nil {
		t.Fatal("no reader engine on either side; delta Readers must be nil")
	}
}

func TestStatsSubZeroPrevIsIdentity(t *testing.T) {
	cur := Stats{Mode: ModeCombining, Switches: 11, Waiters: 1,
		Readers: &ReaderStats{Mode: ModeSharded, Switches: 4, Shards: 8}}
	d := cur.Sub(Stats{})
	if d.Mode != cur.Mode || d.Switches != cur.Switches || d.Waiters != cur.Waiters {
		t.Fatalf("Sub(zero) = %+v, want %+v", d, cur)
	}
	if d.Readers == nil || *d.Readers != *cur.Readers {
		t.Fatalf("Sub(zero) Readers = %+v, want %+v", d.Readers, cur.Readers)
	}
	if d.Readers == cur.Readers {
		t.Fatal("Sub must allocate a fresh Readers pointer, not alias the operand")
	}
}

func TestStatsSubSwitchesWraps(t *testing.T) {
	// Unsigned subtraction keeps a delta correct across counter wrap.
	cur := Stats{Switches: 2}
	prev := Stats{Switches: ^uint64(0) - 1} // two before wrap
	if d := cur.Sub(prev); d.Switches != 4 {
		t.Fatalf("wrapped delta = %d, want 4", d.Switches)
	}
}

func TestStatsSubReaders(t *testing.T) {
	// s.Readers nil: delta Readers stays nil even if prev has one.
	cur := Stats{Switches: 5}
	prev := Stats{Switches: 1, Readers: &ReaderStats{Switches: 3}}
	if d := cur.Sub(prev); d.Readers != nil {
		t.Fatalf("delta Readers = %+v, want nil when s.Readers is nil", d.Readers)
	}

	// s.Readers present, prev.Readers nil: prev treated as zero.
	cur = Stats{Readers: &ReaderStats{Mode: ModeSharded, Switches: 6, Shards: 4}}
	d := cur.Sub(Stats{Switches: 1})
	if d.Readers == nil || d.Readers.Switches != 6 || d.Readers.Mode != ModeSharded || d.Readers.Shards != 4 {
		t.Fatalf("delta Readers = %+v, want zero-prev semantics", d.Readers)
	}

	// Both present: Switches subtracts, Mode/Shards keep the newer value.
	prev = Stats{Readers: &ReaderStats{Mode: ModeCAS, Switches: 2, Shards: 0}}
	d = cur.Sub(prev)
	if d.Readers.Switches != 4 || d.Readers.Mode != ModeSharded || d.Readers.Shards != 4 {
		t.Fatalf("delta Readers = %+v, want {sharded 4 4}", d.Readers)
	}
	if d.Readers == cur.Readers || d.Readers == prev.Readers {
		t.Fatal("Sub must not alias either operand's Readers")
	}
}

func TestReaderStatsSub(t *testing.T) {
	cur := ReaderStats{Mode: ModeEpoch, Switches: 9, Shards: 16, Graces: 20, QuietGraces: 7}
	prev := ReaderStats{Mode: ModeCAS, Switches: 4, Shards: 0, Graces: 12, QuietGraces: 3}
	d := cur.Sub(prev)
	if d != (ReaderStats{Mode: ModeEpoch, Switches: 5, Shards: 16, Graces: 8, QuietGraces: 4}) {
		t.Fatalf("ReaderStats.Sub = %+v", d)
	}
	if cur.Sub(ReaderStats{}) != cur {
		t.Fatal("zero prev must be the identity")
	}
}

// TestStatsPollingRace polls Stats (and Sub and the JSON encoding) on all
// four primitives concurrently with forced mode switches in both
// directions. Run under -race this checks that the observability surface
// reads only atomically-published state.
func TestStatsPollingRace(t *testing.T) {
	const (
		flips = 200
		polls = 400
	)
	var wg sync.WaitGroup

	poll := func(stats func() Stats) {
		defer wg.Done()
		prev := stats()
		for i := 0; i < polls; i++ {
			cur := stats()
			d := cur.Sub(prev)
			if _, err := json.Marshal(d); err != nil {
				t.Error(err)
				return
			}
			prev = cur
		}
	}

	// Mutex: force spin→park via contended-acquire streaks; park→spin via
	// uncontended-unlock streaks.
	m := New()
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			for j := 0; j < DefaultSpinFailLimit; j++ {
				m.noteSpinAcquire(1)
			}
			for j := 0; j < DefaultEmptyLimit; j++ {
				m.Lock()
				m.Unlock()
			}
		}
	}()
	go poll(m.Stats)

	// Counter: force cas→sharded via contended-add streaks; sharded→cas
	// via idle reconciling reads.
	c := NewCounter()
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			for j := 0; j < DefaultSpinFailLimit; j++ {
				c.noteContendedAdd()
			}
			for j := 0; j < DefaultEmptyLimit; j++ {
				c.Add(1)
				c.Load()
			}
		}
	}()
	go poll(c.Stats)

	// FetchOp: same chain, one protocol further (combining included).
	f := NewFetchOp(func(cur, arg int64) int64 { return cur + arg }, 0)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			for j := 0; j < 2*DefaultSpinFailLimit; j++ {
				f.noteContendedApply()
			}
			for j := 0; j < 2*DefaultEmptyLimit; j++ {
				f.Apply(1)
				f.Value()
			}
		}
	}()
	go poll(f.Stats)

	// RWMutex: flip the reader registration engine both ways while
	// readers and writers churn, so Stats sees both engines move.
	rw := NewRWMutex()
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			rw.switchReaderMode(rCentral, rSharded)
			rw.switchReaderMode(rSharded, rCentral)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			rw.RLock()
			rw.RUnlock()
			rw.Lock()
			rw.Unlock()
		}
	}()
	go poll(rw.Stats)

	wg.Wait()
}
