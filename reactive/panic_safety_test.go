package reactive

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/reactive/policy"
)

// The panic-safety contract: a panicking injected policy, or a
// panicking FetchOp user op, surfaces as a panic on the goroutine that
// tripped it — but never with a lock still held or an operand lost.
// These tests throw panics through every detection call site that runs
// while a lock is held and verify the primitive stays usable.

// bombPolicy panics on the selected events once armed.
type bombPolicy struct {
	armed                        bool
	onOptimal, onSuboptimal, die bool
	votes                        int
}

func (b *bombPolicy) Name() string { return "bomb" }
func (b *bombPolicy) Suboptimal(policy.Direction, uint64) bool {
	if b.armed && b.onSuboptimal {
		panic("bomb: suboptimal")
	}
	b.votes++
	return false
}
func (b *bombPolicy) Optimal(policy.Direction) {
	if b.armed && b.onOptimal {
		panic("bomb: optimal")
	}
}
func (b *bombPolicy) Switched() {}

// catchPanic runs f, returning the recovered panic value as a string
// ("" if f returned normally).
func catchPanic(f func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(string); ok {
				msg = s
			} else {
				msg = "non-string panic"
			}
		}
	}()
	f()
	return ""
}

func TestMutexSurvivesPolicyPanicOnGood(t *testing.T) {
	b := &bombPolicy{onOptimal: true}
	m := New(WithPolicy(b))

	// Raise switching pressure so Good reaches the policy (it is elided
	// while the engine is quiescent): one contended spin acquisition
	// votes Suboptimal and sets the dirty flag.
	m.Lock()
	done := make(chan struct{})
	go func() { m.Lock(); m.Unlock(); close(done) }()
	time.Sleep(10 * time.Millisecond) // let the spinner fail at least once
	m.Unlock()
	<-done
	if b.votes == 0 {
		t.Skip("contended acquisition did not reach the policy; cannot arm")
	}

	b.armed = true
	msg := catchPanic(func() {
		for i := 0; i < 100; i++ { // fast-path Good fires the bomb
			m.Lock()
			m.Unlock()
		}
	})
	b.armed = false
	if msg != "bomb: optimal" {
		t.Fatalf("panic %q, want the policy bomb", msg)
	}
	// The guard must have released the lock before re-raising.
	if !m.TryLock() {
		t.Fatal("mutex stranded locked after policy panic")
	}
	m.Unlock()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after policy panic: %v", err)
	}
}

func TestMutexSurvivesPolicyPanicOnVote(t *testing.T) {
	b := &bombPolicy{onSuboptimal: true, armed: true}
	m := New(WithPolicy(b))

	// Force a contended spin acquisition on a second goroutine: its
	// noteSpinAcquire votes Suboptimal, the bomb fires, and the guard
	// must release the lock it had just acquired.
	m.Lock()
	var msg string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		msg = catchPanic(func() { m.Lock() })
	}()
	time.Sleep(10 * time.Millisecond)
	m.Unlock()
	wg.Wait()
	if msg != "bomb: suboptimal" {
		t.Fatalf("panic %q, want the policy bomb", msg)
	}
	b.armed = false
	if !m.TryLock() {
		t.Fatal("mutex stranded locked after policy panic")
	}
	m.Unlock()
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("after policy panic: %v", err)
	}
}

func TestRWMutexSurvivesPolicyPanicInUnlock(t *testing.T) {
	// RWMutex.Unlock votes on the reader wait engine after releasing
	// the writer mutex: the panic must reach the caller with the write
	// lock already free.
	b := &bombPolicy{onSuboptimal: true, armed: true}
	rw := NewRWMutex(WithPolicy(b))
	msg := catchPanic(func() {
		for i := 0; i < 100; i++ {
			rw.Lock()
			rw.Unlock()
			if rw.eng.Mode() != mPark {
				forceParkMode(rw)
			}
		}
	})
	if msg != "bomb: suboptimal" {
		t.Fatalf("panic %q, want the policy bomb", msg)
	}
	b.armed = false
	if !rw.TryLock() {
		t.Fatal("RWMutex stranded after policy panic in Unlock")
	}
	rw.Unlock()
	if err := rw.CheckInvariants(); err != nil {
		t.Fatalf("after policy panic: %v", err)
	}
}

// forceParkMode drives the RWMutex wait engine into the parking
// protocol so Unlock's empty-release Vote path runs.
func forceParkMode(rw *RWMutex) {
	rw.eng.TryCommit(spinParkTable, mSpin, mPark)
}

func TestFetchOpPanickingOpLosesNoOperand(t *testing.T) {
	// A max-accumulator whose op panics on demand. Deposits land in
	// cells (sharded mode); the reconciling sweep's fold panics, and the
	// rescue bank must carry every harvested operand to the next sweep.
	var boom bool
	f := NewFetchOp(func(a, b int64) int64 {
		if boom {
			panic("bomb: op")
		}
		if a > b {
			return a
		}
		return b
	}, 0, WithInitialMode(ModeSharded))

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.Apply(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()

	boom = true
	msg := catchPanic(func() { f.Value() })
	if !strings.Contains(msg, "bomb: op") {
		t.Fatalf("panic %q, want the op bomb", msg)
	}
	// The sweep lock must not be stranded, and once the op heals the
	// harvested-but-unfolded operands must reappear.
	boom = false
	if got, want := f.Value(), int64(3099); got != want {
		t.Fatalf("Value after healed op = %d, want %d (operands lost by the panicking fold)", got, want)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("after op panic: %v", err)
	}
}

func TestFetchOpPanicInApplyLosesOnlyItsOwnOperand(t *testing.T) {
	// casFold panics before its CAS, so an Apply whose op panics simply
	// never lands — documented clean-failure semantics, with the shared
	// word untouched.
	calls := 0
	f := NewFetchOp(func(a, b int64) int64 {
		calls++
		if calls == 2 {
			panic("bomb: apply")
		}
		return a + b
	}, 0)
	f.Apply(7) // first call folds into base via CAS mode
	msg := catchPanic(func() { f.Apply(100) })
	if msg != "bomb: apply" {
		t.Fatalf("panic %q, want the apply bomb", msg)
	}
	if got := f.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7 (the panicked Apply must not half-land)", got)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("after apply panic: %v", err)
	}
}
