package reactive

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/reactive/internal/affinity"
	"repro/reactive/internal/chaos"
	"repro/reactive/internal/waitq"
	"repro/reactive/modal"
)

// Engine-local mode indices for the fetch-and-op modal object (FetchOp,
// Counter). The public Stats mapping is ModeCAS + index.
const (
	fCAS       modal.Mode = 0
	fSharded   modal.Mode = 1
	fCombining modal.Mode = 2
)

// fopTable is the 3-mode transition table of the native fetch-and-op,
// mirroring the simulator's reactive fetch-and-op (Appendix C): a chain
// from the cheap single-word protocol through the sharded middle
// protocol to batched combining, with no shortcut edges — a primitive
// scales up and down one protocol at a time, exactly as the simulated
// algorithm moves TTS ↔ queue ↔ combining tree.
var fopTable = modal.NewTable(3, []modal.Transition{
	{From: fCAS, To: fSharded, Dir: dirScaleUp, Residual: ResidualCheapHigh},
	{From: fSharded, To: fCAS, Dir: dirScaleDown, Residual: ResidualScalableLow},
	{From: fSharded, To: fCombining, Dir: dirScaleUp, Residual: ResidualCheapHigh},
	{From: fCombining, To: fSharded, Dir: dirScaleDown, Residual: ResidualScalableLow},
})

// FetchOpTable returns the transition table FetchOp and Counter run on:
// mode index 0 = ModeCAS, 1 = ModeSharded, 2 = ModeCombining (mode index
// i is the public mode ModeCAS + i). The table is immutable and shared;
// it is exported so harnesses and experiments can drive the exact state
// machine the primitives use rather than a hand-maintained copy.
func FetchOpTable() *modal.Table { return fopTable }

// combineBatchPerCell scales the combining protocol's batch window: a
// fold of the cells into the shared word is triggered once
// combineBatchPerCell × len(cells) operations have accumulated since the
// last fold (the native analogue of the combining tree's patience
// window).
const combineBatchPerCell = 2

// FetchOp is a reactive fetch-and-op accumulator — the native analogue
// of the thesis's reactive fetch-and-op, and the first N>2 modal object
// in this package. It folds operands into a single value under a
// user-supplied associative, commutative operation with an identity
// element (fetch&add with op = +, identity 0; running max with op = max,
// identity MinInt64; bitwise-or with identity 0; ...), selecting among
// three protocols as contention changes:
//
//   - ModeCAS — one shared word updated by compare-and-swap. Cheapest
//     uncontended; collapses under update contention.
//   - ModeSharded — operands land in per-processor cells; only Value
//     reconciles them into the shared word. Updates scale, but every
//     Value pays a full serialized sweep — best when reads are rare.
//   - ModeCombining — operands still land in cells, but updaters fold
//     the cells into the shared word in batches once enough operations
//     accumulate, so the shared word is touched once per batch and Value
//     stays cheap — best when heavy updates meet frequent reads.
//
// The transition chain (CAS ↔ sharded ↔ combining, no shortcuts) mirrors
// the simulator's reactive fetch-and-op (TTS lock ↔ queue lock ↔
// combining tree) and runs on the same reactive/modal engine. Counter is
// the add-only specialization of this type.
//
// FetchOp accumulates; it does not return per-operation fetch values
// (the sharded and combining protocols deliberately avoid serializing
// updates, so no global per-operation order exists to fetch from). Use
// Value to read the accumulated result.
//
// NewFetchOp builds one; the zero value is not useful (it has no
// operation) — except through Counter, whose zero value specializes the
// zero FetchOp to addition. A FetchOp must not be copied after first
// use.
type FetchOp struct {
	op func(a, b int64) int64 // nil: addition (Counter's specialization)
	id int64                  // op's identity element

	base atomic.Int64 // CAS-mode value, and the cells' reconciliation target

	// eng is the modal-object engine holding the epoch-packed mode word;
	// every protocol change goes through its consensus CAS against
	// fopTable.
	eng modal.Engine

	cells      []affinity.Cell // cell array (lazily created; cells hold id when empty)
	cellsOnce  sync.Once
	cellsBuilt atomic.Bool

	pending atomic.Int64 // combining mode: deposits since the last sweep

	// sweepLock serializes every cell sweep — reconciling Values and
	// combining-mode batch folds alike. One lock for both is load-bearing:
	// a fold holds harvested-but-unfolded cell values between its cell
	// Swaps and its CAS into base, and a concurrent sweep reading base in
	// that window would miss them. Readers wait for the lock two-phase:
	// poll through the budget, then park on vq (the shared waiter-queue
	// engine) until the releasing sweeper grants — the combining window's
	// cancellable wait (ValueCtx).
	sweepLock atomic.Uint32
	vq        waitq.Queue

	// rescue banks operands a panicking user op stranded mid-fold:
	// foldCells harvests cell values destructively (Swap), so if op or
	// comb panics between a harvest and its fold into base, the
	// harvested values would otherwise vanish from the accumulator.
	// Guarded by sweepLock; drained at the start of the next fold, so
	// once the op heals no operand is lost.
	rescue []int64

	cfg config
}

// NewFetchOp builds a FetchOp over op and its identity element,
// configured by opts. op must be associative and commutative and may be
// called concurrently; identity must satisfy op(identity, x) == x.
// WithPollIters bounds how long a reconciling read polls for the sweep
// window before parking (updates never park).
func NewFetchOp(op func(a, b int64) int64, identity int64, opts ...Option) *FetchOp {
	if op == nil {
		panic("reactive: NewFetchOp requires an operation (use Counter for plain addition)")
	}
	f := &FetchOp{op: op, id: identity}
	f.base.Store(identity)
	f.cfg.apply(opts)
	f.eng.SetPolicy(f.cfg.pol)
	f.applyInitMode()
	return f
}

// applyInitMode walks the transition chain to the configured initial
// mode at construction time, before the accumulator is shared (a
// WithInitialMode-built primitive skips the detection ramp; see the
// option's documentation).
func (f *FetchOp) applyInitMode() {
	if !f.cfg.initModeSet {
		return
	}
	switch f.cfg.initMode {
	case ModeCAS: // the zero mode
	case ModeSharded:
		f.switchFop(fCAS, fSharded)
	case ModeCombining:
		f.switchFop(fCAS, fSharded)
		f.switchFop(fSharded, fCombining)
	default:
		panic("reactive: Counter and FetchOp support initial modes ModeCAS, ModeSharded, and ModeCombining")
	}
}

// comb applies the operation (addition when op is nil).
func (f *FetchOp) comb(a, b int64) int64 {
	if f.op == nil {
		return a + b
	}
	return f.op(a, b)
}

// Stats returns a snapshot of the accumulator's adaptive state.
func (f *FetchOp) Stats() Stats {
	return Stats{
		Mode:     ModeCAS + Mode(f.eng.Mode()),
		Switches: f.eng.Switches(),
		Waiters:  f.vq.Len(),
	}
}

// shardCells returns the cell array, creating it on first use. The array
// is sized to affinity.Shards() (the next power of two ≥ GOMAXPROCS) at
// creation time, and every cell starts at the identity element.
func (f *FetchOp) shardCells() []affinity.Cell {
	f.cellsOnce.Do(func() {
		cells := make([]affinity.Cell, affinity.Shards())
		if f.id != 0 {
			for i := range cells {
				cells[i].N.Store(f.id)
			}
		}
		f.cells = cells
		f.cellsBuilt.Store(true)
	})
	return f.cells
}

// builtCells returns the cell array if it has ever been created, else nil.
func (f *FetchOp) builtCells() []affinity.Cell {
	if !f.cellsBuilt.Load() {
		return nil
	}
	return f.cells
}

// Apply folds x into the accumulator, adapting its protocol to
// contention.
func (f *FetchOp) Apply(x int64) {
	switch f.eng.Mode() {
	case fCAS:
		// Cheap protocol fast path: one CAS on the shared word.
		v := f.base.Load()
		if f.base.CompareAndSwap(v, f.comb(v, x)) {
			f.eng.Good(fopTable, fCAS, fSharded)
			return
		}
		f.applyContended(x)
	case fSharded:
		f.applyCell(x)
	default:
		f.applyCombining(x)
	}
}

// applyContended retries the CAS-mode update after a failed first
// attempt — a contended Apply — and runs the cheap→scalable detection on
// completion.
func (f *FetchOp) applyContended(x int64) {
	var bo modal.Backoff
	bo.Max = backoffCeiling
	for {
		if f.eng.Mode() != fCAS {
			f.Apply(x) // mode changed under us: redispatch
			return
		}
		v := f.base.Load()
		if f.base.CompareAndSwap(v, f.comb(v, x)) {
			f.noteContendedApply()
			return
		}
		bo.Pause()
	}
}

// noteContendedApply records one contended CAS-mode Apply with the
// detection machinery: SpinFailLimit consecutive contended Applies
// (built-in detection) or the injected policy's say-so switch ModeCAS →
// ModeSharded.
func (f *FetchOp) noteContendedApply() {
	if f.eng.Vote(fopTable, fCAS, fSharded, f.cfg.failLimit()) {
		f.switchFop(fCAS, fSharded)
	}
}

// applyCell folds x into the current processor's cell, selected through
// the affinity substrate: pin → exact per-P cell index → atomic update →
// unpin. Truly-uncontended sharded updates are collision-free by
// construction — two updaters can hit one cell only by sharing a P (or
// under the stripe-hash fallback). The add specialization runs its
// single atomic instruction pinned; a user-supplied op must not run
// pinned (it is arbitrary code and pinning disables preemption), so the
// generic path unpins after selecting the cell and lets casFold's retry
// loop absorb the rare migration collision.
func (f *FetchOp) applyCell(x int64) {
	cells := f.shardCells()
	c := &cells[affinity.Pin()&(len(cells)-1)]
	if f.op == nil {
		c.N.Add(x)
		affinity.Unpin()
		return
	}
	affinity.Unpin()
	casFold(&c.N, f.op, x)
}

// applyCombining is the combining protocol's update: deposit into a cell
// like the sharded protocol, then fold the cells into the shared word
// once a batch has accumulated — the depositor that crosses the batch
// threshold becomes the combiner, so folding cost is amortized over the
// batch and no dedicated combiner thread exists.
func (f *FetchOp) applyCombining(x int64) {
	f.applyCell(x)
	chaos.Point("fetchop.combine.deposit")
	if f.pending.Add(1) >= f.combineBatch() && f.sweepLock.CompareAndSwap(0, 1) {
		n := func() int64 {
			// Released by defer so a panicking user op inside the fold
			// cannot leak the lock and wedge every future sweep.
			defer f.releaseSweep()
			n := f.pending.Swap(0)
			f.foldCells()
			return n
		}()
		// n == 0 means a racing Value stole the pending count between the
		// threshold check and the swap; the batch was full, so recording
		// an idle-sweep vote here would be spurious detection noise.
		if n > 0 {
			f.noteCombineBatch(n)
		}
	}
}

func (f *FetchOp) combineBatch() int64 {
	return combineBatchPerCell * int64(len(f.shardCells()))
}

// foldCells sweeps every cell into the shared word. Callers must hold
// the sweepLock: each cell's Swap hands its accumulated value to exactly
// one sweeper, but between the Swaps and the fold into base the harvested
// values live only in this frame, so an unserialized concurrent sweep
// reading base would miss them.
func (f *FetchOp) foldCells() (active int) {
	cells := f.shardCells()
	// Harvest first — the rescue bank (operands stranded by a previous
	// fold whose user op panicked), then the cells. Folding is deferred
	// until everything harvested is in vals so a panicking op can bank
	// the lot.
	vals := f.rescue
	f.rescue = nil
	for i := range cells {
		if v := cells[i].N.Swap(f.id); v != f.id {
			vals = append(vals, v)
			active++
		}
	}
	chaos.Point("fetchop.fold.harvest")
	if len(vals) == 0 {
		return active
	}
	// From here the harvested values exist only in this frame: if the
	// user op panics, bank the partial accumulator and every operand
	// not yet folded into base, then re-raise. The caller's deferred
	// releaseSweep frees the lock, and the next sweep drains the bank,
	// so a panicking op forfeits nothing but its own call.
	idx, moved := 0, f.id
	defer func() {
		if r := recover(); r != nil {
			if idx > 0 {
				f.rescue = append(f.rescue, moved)
			}
			f.rescue = append(f.rescue, vals[idx:]...)
			panic(r)
		}
	}()
	for idx < len(vals) {
		moved = f.comb(moved, vals[idx])
		idx++
	}
	if f.op == nil {
		f.base.Add(moved)
	} else {
		casFold(&f.base, f.op, moved)
	}
	return active
}

// casFold folds x into target under op with a load/CAS retry loop — the
// generic-op analogue of atomic.Int64.Add.
func casFold(target *atomic.Int64, op func(a, b int64) int64, x int64) {
	for {
		v := target.Load()
		if target.CompareAndSwap(v, op(v, x)) {
			return
		}
	}
}

// noteCombineBatch runs the combining protocol's detection on one sweep
// that found n deposits pending: a batch of at most one means the
// combining machinery is idling (EmptyLimit consecutive such sweeps
// retire it to the sharded protocol); a real batch breaks the streak.
// This is the native analogue of the simulator's combining-rate monitor.
func (f *FetchOp) noteCombineBatch(n int64) {
	if n <= 1 {
		if f.eng.Vote(fopTable, fCombining, fSharded, f.cfg.emptyLim()) {
			f.switchFop(fCombining, fSharded)
		}
	} else {
		f.eng.Good(fopTable, fCombining, fSharded)
	}
}

// acquireSweep takes the sweepLock with two-phase waiting: poll through
// the (deadline-aware) budget, then park on the sweep-window waiter
// queue until the releasing sweeper grants. Announce-then-check plus
// handoff-or-abandon make the park airtight against releases and
// cancellations racing each other — the same protocol Mutex's park path
// runs (DESIGN.md §5).
func (f *FetchOp) acquireSweep(ctx context.Context, done <-chan struct{}) error {
	ok, aborted := modal.PollCh(f.cfg.pollBudget(), done, func() bool {
		return f.sweepLock.CompareAndSwap(0, 1)
	})
	if ok {
		return nil
	}
	if aborted {
		return ctx.Err()
	}
	w := waitq.Get()
	defer waitq.Put(w)
	for {
		f.vq.Push(w)
		if f.sweepLock.CompareAndSwap(0, 1) {
			f.vq.Abandon(w)
			return nil
		}
		if done == nil {
			<-w.Ready()
			continue
		}
		select {
		case <-w.Ready():
		case <-done:
			f.vq.Abandon(w)
			return ctx.Err()
		}
	}
}

// releaseSweep releases the sweepLock and hands the sweep window to the
// oldest parked waiter, if any.
func (f *FetchOp) releaseSweep() {
	f.sweepLock.Store(0)
	chaos.Point("fetchop.sweep.release")
	f.vq.Grant()
}

// Value returns the accumulated result. Once the accumulator has ever
// left ModeCAS, Value reconciles permanently: every cell's pending
// operand is folded into the shared word, and what the sweep observes is
// the contention signal — the number of distinct active cells in the
// sharded protocol (≤1 active writer votes down toward CAS, a sweep
// touching at least half the cells votes up toward combining), the
// pending-deposit count in the combining protocol (see noteCombineBatch).
// The permanent sweep is deliberate: an update that observed a
// cell-based mode may deposit into a cell arbitrarily late, so no
// post-burst Value may skip the cells without risking a lost operand.
// Update fast paths are unaffected; only Value pays. Under concurrent
// updates, Value returns a value that was correct at some instant during
// the call (the same guarantee sync/atomic-style sharded counters give).
// It is the uncancellable special case of ValueCtx.
func (f *FetchOp) Value() int64 {
	v, _ := f.value(nil, nil)
	return v
}

// ValueCtx returns the accumulated result like Value, but gives up when
// ctx is cancelled or its deadline passes while waiting for the sweep
// window (a combining-mode batch fold, or another reconciling read, can
// hold it across a user-supplied operation of arbitrary cost), returning
// ctx.Err(). On an error the returned value is meaningless and no
// reconciliation was performed.
func (f *FetchOp) ValueCtx(ctx context.Context) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return f.value(ctx, ctx.Done())
}

func (f *FetchOp) value(ctx context.Context, done <-chan struct{}) (int64, error) {
	cells := f.builtCells()
	if cells == nil {
		return f.base.Load(), nil
	}
	// Sweeps are serialized by the sweepLock, shared with combining-mode
	// batch folds: a concurrent Value must not read the base while
	// another sweeper holds harvested-but-unfolded cell values (it would
	// miss them — including an Apply that completed before this Value
	// started), and a trailing Value sweeping just-emptied cells must not
	// mistake the empty sweep for low contention.
	if err := f.acquireSweep(ctx, done); err != nil {
		return 0, err
	}
	defer f.releaseSweep()
	chaos.Point("fetchop.value.sweep")
	n := f.pending.Swap(0)
	active := f.foldCells()
	sum := f.base.Load()
	switch f.eng.Mode() {
	case fSharded:
		if active <= 1 {
			// At most one writer since the last reconciliation: the
			// sharded protocol is sub-optimal for this load level. (No
			// Good on the up-edge here: through the two-direction Policy
			// interface an Optimal would erase the down-pressure this
			// vote just raised.)
			if f.eng.Vote(fopTable, fSharded, fCAS, f.cfg.emptyLim()) {
				f.switchFop(fSharded, fCAS)
			}
		} else {
			f.eng.Good(fopTable, fSharded, fCAS)
			if 2*active >= len(cells) {
				// A reconciling read swept a wide fan-in of writers: reads
				// are paying full sweeps while updates pour in — the regime
				// batched combining is built for.
				if f.eng.Vote(fopTable, fSharded, fCombining, f.cfg.failLimit()) {
					f.switchFop(fSharded, fCombining)
				}
			} else {
				f.eng.Good(fopTable, fSharded, fCombining)
			}
		}
	case fCombining:
		// A combiner's fold may have swapped pending to 0 just before this
		// sweep acquired the lock; under saturation that race would read
		// as an idle sweep and flap the mode down. The cells the sweep
		// itself emptied are the tie-breaker: deposits keep landing in
		// them under real load, so count whichever signal saw more.
		if int64(active) > n {
			n = int64(active)
		}
		f.noteCombineBatch(n)
	}
	return sum, nil
}

// switchFop performs a protocol change from want to next through the
// engine's consensus word, at most once per detection round. The cells
// are built before a cell-based mode is published so updates never
// observe a nil array; no state copying is needed in either direction —
// Value always folds base plus cells, so updates racing with the change
// land in whichever protocol they observed and are never lost (the
// "common location" optimization of Section 3.3.2).
func (f *FetchOp) switchFop(want, next modal.Mode) {
	if next != fCAS {
		f.shardCells()
	}
	if f.eng.TryCommit(fopTable, want, next) && next == fCombining {
		// A fresh combining epoch starts a fresh batch window.
		f.pending.Store(0)
	}
}
