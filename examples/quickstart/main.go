// Quickstart: adopt the reactive library in three lines, then watch the
// adaptation happen. A reactive.Mutex built with the Options API guards a
// shared map through a low-contention phase, a contention burst, and a
// cooldown; Stats() shows the protocol it selected for each phase.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"runtime"
	"sync"

	"repro/reactive"
	"repro/reactive/policy"
)

func main() {
	// Zero value works: var mu reactive.Mutex. The constructor exists to
	// tune detection — here: a hair-trigger switch to the scalable
	// protocol (2 contended acquisitions) and a patient switch back
	// (16 uncontended unlocks), i.e. hysteresis(2, 16) by options.
	mu := reactive.New(
		reactive.WithSpinFailLimit(2),
		reactive.WithEmptyLimit(16),
	)
	hits := make(map[string]int)

	phase := func(name string, goroutines, iters int) {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					mu.Lock()
					hits[name]++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
		st := mu.Stats()
		fmt.Printf("%-18s %2d goroutines: mode=%-5v switches=%d\n",
			name, goroutines, st.Mode, st.Switches)
	}

	fmt.Printf("GOMAXPROCS=%d\n\n", runtime.GOMAXPROCS(0))
	phase("solo", 1, 30000)
	phase("burst", 4*runtime.GOMAXPROCS(0), 3000)
	phase("cooldown", 1, 30000)

	// The same Options configure the whole family — and any policy from
	// reactive/policy can replace the built-in streak detection. Here the
	// 3-competitive policy decides when the counter shards itself.
	c := reactive.NewCounter(
		reactive.WithPolicy(policy.NewCompetitive(3 * reactive.ResidualCheapHigh)),
	)
	var wg sync.WaitGroup
	for g := 0; g < 2*runtime.GOMAXPROCS(0); g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, n := range hits {
		total += n
	}
	fmt.Printf("\ncounter: %d (mode=%v switches=%d); mutex-guarded hits: %d\n",
		c.Load(), c.Stats().Mode, c.Stats().Switches, total)
}
