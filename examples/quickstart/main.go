// Quickstart: build a simulated multiprocessor, create a reactive spin
// lock, drive it through a low-contention phase and a high-contention
// burst, and watch it change protocols.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
)

func main() {
	const procs = 16
	m := machine.New(machine.DefaultConfig(procs))
	lock := core.NewReactiveLock(m.Mem, 0)

	modeName := func() string {
		if lock.Mode() == 0 {
			return "test&test&set"
		}
		return "mcs-queue"
	}

	// Phase 1: a single processor uses the lock — stays in TTS mode.
	m.SpawnCPU(0, 0, "solo", func(c *machine.CPU) {
		for i := 0; i < 50; i++ {
			h := lock.Acquire(c)
			c.Advance(100) // critical section
			lock.Release(c, h)
			c.Advance(200) // think
		}
		fmt.Printf("cycle %8d: after solo phase, mode=%s changes=%d\n",
			c.Now(), modeName(), lock.Changes)
	})

	// Phase 2: all 16 processors hammer the lock — switches to the queue.
	for p := 0; p < procs; p++ {
		m.SpawnCPU(p, 40_000, "burst", func(c *machine.CPU) {
			for i := 0; i < 30; i++ {
				h := lock.Acquire(c)
				c.Advance(100)
				lock.Release(c, h)
				c.Advance(machine.Time(c.Rand().Intn(250)))
			}
		})
	}
	m.SpawnCPU(0, 400_000, "report", func(c *machine.CPU) {
		fmt.Printf("cycle %8d: after burst phase, mode=%s changes=%d\n",
			c.Now(), modeName(), lock.Changes)
	})

	// Phase 3: back to one processor — returns to TTS mode.
	m.SpawnCPU(3, 420_000, "cooldown", func(c *machine.CPU) {
		for i := 0; i < 50; i++ {
			h := lock.Acquire(c)
			c.Advance(50)
			lock.Release(c, h)
			c.Advance(100)
		}
		fmt.Printf("cycle %8d: after cooldown, mode=%s changes=%d\n",
			c.Now(), modeName(), lock.Changes)
	})

	if err := m.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("memory system: %d misses, %d invalidations, %d LimitLESS traps\n",
		m.Mem.Misses, m.Mem.Invals, m.Mem.Traps)
}
