// Adaptivemutex: reactive.Mutex under a real goroutine load ramp, once
// with the built-in streak detection and once with the 3-competitive
// switching policy injected through the Options API. Uncontended phases
// run in the cheap spin protocol; a contention burst drives the mutex
// into the parking protocol; idling brings it back. The competitive
// policy switches later (it waits for the accumulated residual to cover a
// round-trip protocol change) but never thrashes.
//
//	go run ./examples/adaptivemutex
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/reactive"
	"repro/reactive/policy"
)

func run(label string, m *reactive.Mutex) {
	counter := 0
	phase := func(name string, goroutines, iters, csWork int) {
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					m.Lock()
					counter++
					for k := 0; k < csWork; k++ {
						runtime.Gosched()
					}
					m.Unlock()
				}
			}()
		}
		wg.Wait()
		st := m.Stats()
		fmt.Printf("  %-22s %6.2fms  mode=%-5v switches=%d counter=%d\n",
			name, float64(time.Since(start).Microseconds())/1000, st.Mode, st.Switches, counter)
	}

	fmt.Printf("%s:\n", label)
	phase("solo phase", 1, 20000, 0)
	phase("contention burst", 4*runtime.GOMAXPROCS(0), 2000, 50)
	phase("cooldown (solo)", 1, 20000, 0)
	fmt.Println()
}

func main() {
	fmt.Printf("GOMAXPROCS=%d\n\n", runtime.GOMAXPROCS(0))
	run("built-in streak detection (defaults)", reactive.New())
	run("3-competitive policy injected",
		reactive.New(reactive.WithPolicy(policy.NewCompetitive(3*reactive.ResidualCheapHigh))))
}
