// Adaptivemutex: the native-Go reactive.Mutex under a real goroutine load
// ramp. Uncontended phases run in the cheap spin protocol; a contention
// burst drives it into the parking protocol; idling brings it back.
//
//	go run ./examples/adaptivemutex
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/reactive"
)

func main() {
	var m reactive.Mutex
	counter := 0

	phase := func(name string, goroutines, iters, csWork int) {
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					m.Lock()
					counter++
					for k := 0; k < csWork; k++ {
						runtime.Gosched()
					}
					m.Unlock()
				}
			}()
		}
		wg.Wait()
		st := m.Stats()
		fmt.Printf("%-22s %6.2fms  mode=%v switches=%d counter=%d\n",
			name, float64(time.Since(start).Microseconds())/1000, st.Mode, st.Switches, counter)
	}

	fmt.Printf("GOMAXPROCS=%d\n", runtime.GOMAXPROCS(0))
	phase("solo phase", 1, 20000, 0)
	phase("contention burst", 4*runtime.GOMAXPROCS(0), 2000, 50)
	phase("cooldown (solo)", 1, 20000, 0)
}
