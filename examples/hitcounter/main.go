// Hitcounter: a shared event counter under a load ramp — the fetch-and-op
// scenario from the thesis's introduction, on the native reactive.Counter
// (the add-only specialization of reactive.FetchOp's three-protocol modal
// object). As offered load ramps up, the counter walks the protocol
// chain: a single CAS word at one client, per-processor sharded cells
// once update contention appears, and batched combining once heavy
// updates meet frequent reconciling reads — then back down the chain as
// the load drops. Each phase prints the protocol the counter crossed
// into, so the three-way crossover is visible; the same ramp is repeated
// with the passive alternatives (a bare atomic.Int64 and a
// sync.Mutex-guarded int) for comparison.
//
//	go run ./examples/hitcounter
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/reactive"
)

const opsPerGoroutine = 30000

// phase is one step of the load ramp: clients concurrent writers, plus
// (for the reactive counter) a reconciling reader when readers is set —
// the read pressure that distinguishes the combining regime from the
// write-only sharded regime.
type phase struct {
	name    string
	clients int
	readers bool
}

func rampPhases() []phase {
	p := runtime.GOMAXPROCS(0)
	return []phase{
		{"solo", 1, false},
		{"busy", p, false},
		{"busy+readers", 4 * p, true},
		{"cooling", p, false},
		{"solo again", 1, false},
	}
}

// ramp drives the load ramp against one add function and returns the
// total elapsed time. load, if non-nil, is called by a concurrent reader
// during phases that have one; report, if non-nil, runs after each phase.
func ramp(add func(int64), load func() int64, report func(ph phase)) time.Duration {
	start := time.Now()
	for _, ph := range rampPhases() {
		stop := make(chan struct{})
		var rwg sync.WaitGroup
		if ph.readers && load != nil {
			rwg.Add(1)
			go func() { // reconciling reader: frequent Loads during the burst
				defer rwg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						load()
						time.Sleep(50 * time.Microsecond)
					}
				}
			}()
		}
		var wg sync.WaitGroup
		for g := 0; g < ph.clients; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < opsPerGoroutine; i++ {
					add(1)
				}
			}()
		}
		wg.Wait()
		close(stop)
		rwg.Wait()
		if report != nil {
			report(ph)
		}
	}
	return time.Since(start)
}

func main() {
	fmt.Printf("GOMAXPROCS=%d, %d ops per goroutine per phase\n\n",
		runtime.GOMAXPROCS(0), opsPerGoroutine)

	c := reactive.NewCounter(reactive.WithSpinFailLimit(2), reactive.WithEmptyLimit(3))
	prev := c.Stats()
	el := ramp(c.Add, c.Load, func(ph phase) {
		c.Load() // reconcile (and let the counter re-evaluate contention)
		st := c.Stats()
		cross := ""
		if st.Mode != prev.Mode {
			cross = fmt.Sprintf("   << crossover: %v → %v", prev.Mode, st.Mode)
		}
		fmt.Printf("  %-14s (%3d clients): protocol=%-9v %2d changes so far%s\n",
			ph.name, ph.clients, st.Mode, st.Switches, cross)
		prev = st
	})
	fmt.Printf("reactive.Counter:  %8.2fms (count=%d, %d protocol changes)\n\n",
		float64(el.Microseconds())/1000, c.Load(), c.Stats().Switches)

	var ai atomic.Int64
	el = ramp(func(d int64) { ai.Add(d) }, ai.Load, nil)
	fmt.Printf("atomic.Int64:      %8.2fms (count=%d)\n",
		float64(el.Microseconds())/1000, ai.Load())

	var mu sync.Mutex
	var guarded int64
	el = ramp(func(d int64) {
		mu.Lock()
		guarded += d
		mu.Unlock()
	}, func() int64 { mu.Lock(); defer mu.Unlock(); return guarded }, nil)
	fmt.Printf("sync.Mutex + int:  %8.2fms (count=%d)\n",
		float64(el.Microseconds())/1000, guarded)
}
