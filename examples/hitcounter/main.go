// Hitcounter: a shared event counter under a load ramp — the fetch-and-op
// scenario from the thesis's introduction. As offered load rises from one
// client to the whole machine, the reactive fetch-and-op migrates from the
// TTS-lock-based protocol through the MCS-queue-based protocol to the
// software combining tree, and back down when the load drops. The same run
// is repeated with each passive protocol for comparison.
//
//	go run ./examples/hitcounter
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fetchop"
	"repro/internal/machine"
)

const (
	procs       = 32
	opsPerPhase = 40
)

// rampPhases returns the number of active clients per phase.
func rampPhases() []int { return []int{1, 4, 32, 4, 1} }

// run drives the load ramp against one fetch-and-op implementation and
// returns total simulated cycles.
func run(name string, mk func(m *machine.Machine) fetchop.FetchOp, report func(m *machine.Machine, phase int)) machine.Time {
	m := machine.New(machine.DefaultConfig(procs))
	f := mk(m)
	var end machine.Time
	phase := 0
	arrived := 0
	active := rampPhases()
	for p := 0; p < procs; p++ {
		p := p
		m.SpawnCPU(p, 0, "client", func(c *machine.CPU) {
			for ph, n := range active {
				if p < n {
					for i := 0; i < opsPerPhase; i++ {
						f.FetchAdd(c, 1)
						c.Advance(machine.Time(c.Rand().Intn(400)))
					}
				}
				// Phase barrier (Go state; engine-serialized).
				my := phase
				arrived++
				if arrived == procs {
					arrived = 0
					phase++
					if report != nil {
						report(m, ph)
					}
				}
				for phase == my {
					c.Advance(100)
				}
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return end
}

func main() {
	var reactive *core.ReactiveFetchOp
	modeName := map[uint64]string{0: "tts-lock", 1: "queue-lock", 2: "combining-tree"}
	el := run("reactive", func(m *machine.Machine) fetchop.FetchOp {
		reactive = core.NewReactiveFetchOp(m.Mem, 0, procs)
		return reactive
	}, func(m *machine.Machine, ph int) {
		fmt.Printf("  phase %d (%2d clients): protocol=%s, %d changes so far\n",
			ph, rampPhases()[ph], modeName[reactive.Mode()], reactive.Changes)
	})
	fmt.Printf("reactive:        %9d cycles (%d protocol changes)\n\n", el, reactive.Changes)

	for _, passive := range []struct {
		name string
		mk   func(m *machine.Machine) fetchop.FetchOp
	}{
		{"tts-lock", func(m *machine.Machine) fetchop.FetchOp { return fetchop.NewTTSLockFOP(m.Mem, 0) }},
		{"queue-lock", func(m *machine.Machine) fetchop.FetchOp { return fetchop.NewQueueLockFOP(m.Mem, 0) }},
		{"combining-tree", func(m *machine.Machine) fetchop.FetchOp { return fetchop.NewCombTree(m.Mem, procs, 0) }},
	} {
		el := run(passive.name, passive.mk, nil)
		fmt.Printf("%-15s %9d cycles\n", passive.name+":", el)
	}
}
