// Hitcounter: a shared event counter under a load ramp — the fetch-and-op
// scenario from the thesis's introduction, on the native reactive.Counter.
// As offered load ramps from one goroutine to 4×GOMAXPROCS and back, the
// counter migrates from the single-CAS-word protocol to per-processor
// sharded cells and back down when the load drops. The same ramp is
// repeated with the passive alternatives (a bare atomic.Int64 and a
// sync.Mutex-guarded int) for comparison.
//
//	go run ./examples/hitcounter
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/reactive"
)

const opsPerGoroutine = 30000

// rampPhases returns the number of concurrent clients per phase.
func rampPhases() []int {
	p := runtime.GOMAXPROCS(0)
	return []int{1, p, 4 * p, p, 1}
}

// ramp drives the load ramp against one add function and returns the
// total elapsed time. report, if non-nil, runs after each phase.
func ramp(add func(int64), report func(phase, clients int)) time.Duration {
	start := time.Now()
	for ph, clients := range rampPhases() {
		var wg sync.WaitGroup
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < opsPerGoroutine; i++ {
					add(1)
				}
			}()
		}
		wg.Wait()
		if report != nil {
			report(ph, clients)
		}
	}
	return time.Since(start)
}

func main() {
	fmt.Printf("GOMAXPROCS=%d, %d ops per goroutine per phase\n\n",
		runtime.GOMAXPROCS(0), opsPerGoroutine)

	c := reactive.NewCounter(reactive.WithSpinFailLimit(2), reactive.WithEmptyLimit(4))
	el := ramp(c.Add, func(ph, clients int) {
		c.Load() // reconcile (and let the counter re-evaluate contention)
		st := c.Stats()
		fmt.Printf("  phase %d (%3d clients): protocol=%-7v %d changes so far\n",
			ph, clients, st.Mode, st.Switches)
	})
	fmt.Printf("reactive.Counter:  %8.2fms (count=%d, %d protocol changes)\n\n",
		float64(el.Microseconds())/1000, c.Load(), c.Stats().Switches)

	var ai atomic.Int64
	el = ramp(func(d int64) { ai.Add(d) }, nil)
	fmt.Printf("atomic.Int64:      %8.2fms (count=%d)\n",
		float64(el.Microseconds())/1000, ai.Load())

	var mu sync.Mutex
	var guarded int64
	el = ramp(func(d int64) {
		mu.Lock()
		guarded += d
		mu.Unlock()
	}, nil)
	fmt.Printf("sync.Mutex + int:  %8.2fms (count=%d)\n",
		float64(el.Microseconds())/1000, guarded)
}
