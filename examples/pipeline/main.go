// Pipeline: a native Go processing pipeline whose stages consult a shared
// routing table on every item — the read-mostly workload where the choice
// of *reader waiting mechanism* decides performance. The table is guarded
// by a reactive.RWMutex: while writers (config updates) are rare and
// quick, readers spin; when a slow bulk update arrives, readers that blow
// their polling budget vote the lock into reader-parking mode, and a run
// of quick updates brings it back.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/reactive"
)

// routes is the shared routing table: item key → pipeline stage weight.
type routes map[int]int

func main() {
	rw := reactive.NewRWMutex(reactive.WithSpinFailLimit(2), reactive.WithPollIters(32))
	table := routes{}
	for k := 0; k < 64; k++ {
		table[k] = k % 7
	}

	var processed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Pipeline stages: each item's routing is a read-locked lookup.
	for s := 0; s < 2*runtime.GOMAXPROCS(0); s++ {
		wg.Add(1)
		go func(stage int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rw.RLock()
				_ = table[(stage+i)%64]
				rw.RUnlock()
				processed.Add(1)
			}
		}(s)
	}

	report := func(name string) {
		st := rw.Stats()
		fmt.Printf("%-28s mode=%-5v switches=%d items=%d\n",
			name, st.Mode, st.Switches, processed.Load())
	}

	// Phase 1: rare, quick config updates — readers stay in spin mode.
	for i := 0; i < 50; i++ {
		rw.Lock()
		table[i%64]++
		rw.Unlock()
		time.Sleep(time.Millisecond)
	}
	report("quick updates")

	// Phase 2: slow bulk updates hold the write lock long enough that
	// spinning readers burn whole scheduler quanta — the lock reacts by
	// parking them instead.
	for i := 0; i < 20; i++ {
		rw.Lock()
		for k := range table { // simulate an expensive rebuild
			table[k] = (table[k] + 1) % 7
		}
		time.Sleep(2 * time.Millisecond) // long hold
		rw.Unlock()
		time.Sleep(time.Millisecond)
	}
	report("slow bulk updates")

	// Phase 3: the pipeline drains; config updates continue against an
	// idle table. Writer releases that pass no waiting readers vote the
	// lock back to reader-spin mode.
	close(stop)
	wg.Wait()
	for i := 0; i < 200; i++ {
		rw.Lock()
		table[i%64]++
		rw.Unlock()
	}
	report("updates on a drained pipeline")
}
