// Pipeline: producer-consumer streams through futures with a coworker
// thread sharing each consumer's processor — the Chapter 4 scenario where
// the choice of waiting mechanism decides performance. The run compares
// always-spin, always-block, and two-phase waiting with the analytically
// optimal polling limit Lpoll = 0.54·B (1.58-competitive under the
// exponential production intervals used here).
//
//	go run ./examples/pipeline
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/threads"
	"repro/internal/waiting"
)

func main() {
	costs := threads.DefaultCosts()
	fmt.Printf("blocking cost B = %d cycles; Lpoll(0.54B) = %d cycles\n\n",
		costs.BlockCost(), uint64(0.54*float64(costs.BlockCost())))

	for _, mean := range []machine.Time{300, 1500, 8000} {
		fmt.Printf("mean production interval %d cycles:\n", mean)
		var spinT machine.Time
		for _, alg := range []waiting.Algorithm{
			&waiting.AlwaysSpin{},
			&waiting.AlwaysBlock{},
			waiting.NewTwoPhaseAlpha(0.54, costs),
		} {
			m := machine.New(machine.DefaultConfig(8))
			s := threads.NewScheduler(m, costs)
			app := &apps.FutureStream{Items: 40, Mean: mean, Work: 1200}
			el := app.Run(s, alg)
			if alg.Name() == "always-spin" {
				spinT = el
			}
			fmt.Printf("  %-14s %9d cycles (%.2fx spin), %d blocks\n",
				alg.Name(), el, float64(el)/float64(spinT), s.Blocks)
		}
		fmt.Println()
	}
}
