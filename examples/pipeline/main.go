// Pipeline: a native Go processing pipeline whose stages consult a shared
// routing table on every item, under a per-request deadline — the workload
// the context-aware acquisition API is for. The table is guarded by a
// reactive.RWMutex; each lookup uses RLockCtx with a small per-item
// timeout. While writers (config updates) are rare and quick, every lookup
// reads the live table; when a slow bulk rebuild holds the write lock past
// an item's deadline, the stage degrades to the last published immutable
// snapshot instead of stalling the pipeline — stale routing beats no
// routing. Meanwhile the lock itself adapts: readers that blow their
// polling budget vote it into reader-parking mode, and a run of quick
// updates brings it back.
//
// The lock's decisions are watched the way an operator would: the
// RWMutex is registered in a reactivehttp.Registry, published over
// expvar, and scraped through the /debug/reactive endpoint after each
// phase — the printed delta/rate lines come from the HTTP response, not
// from in-process state.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/reactive"
	"repro/reactive/reactivehttp"
)

// routes is the shared routing table: item key → pipeline stage weight.
type routes map[int]int

// snapshot returns an immutable copy for the stale-read fallback path.
func (r routes) snapshot() routes {
	s := make(routes, len(r))
	for k, v := range r {
		s[k] = v
	}
	return s
}

func main() {
	rw := reactive.NewRWMutex(reactive.WithSpinFailLimit(2), reactive.WithPollIters(32))
	table := routes{}
	for k := 0; k < 64; k++ {
		table[k] = k % 7
	}

	// stale holds the last snapshot a writer published: the degraded data
	// a stage falls back to when its RLockCtx deadline expires.
	var stale atomic.Pointer[routes]
	publish := func() {
		s := table.snapshot()
		stale.Store(&s)
	}
	publish()

	// Telemetry: name the lock, publish the registry on /debug/vars, and
	// mount the poll-aware /debug/reactive handler. An httptest server
	// keeps the example self-contained; a real service would mount on its
	// own mux (or pass nil for http.DefaultServeMux).
	// hot is a per-key hit cache on the adaptive map: read-mostly once
	// warm, so its own modal engine is free to climb toward the
	// published-table epoch protocol while the route lock adapts
	// independently.
	hot := reactive.NewMap[int, int]()

	var registry reactivehttp.Registry
	registry.Register("routes", rw)
	registry.Register("hot", hot)
	reactivehttp.Publish("pipeline", &registry)
	mux := http.NewServeMux()
	reactivehttp.Handle(mux, &registry)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var fresh, degraded, processed atomic.Int64
	// lookup routes one item within deadline d: live table when the read
	// lock arrives in time, last snapshot otherwise.
	lookup := func(key int, d time.Duration) int {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		defer cancel()
		if err := rw.RLockCtx(ctx); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				panic(err) // only the deadline can end this context
			}
			degraded.Add(1)
			return (*stale.Load())[key]
		}
		w := table[key]
		rw.RUnlock()
		fresh.Add(1)
		if cached, ok := hot.Get(key); !ok || cached != w {
			hot.Put(key, w) // warm or refresh; steady state is pure reads
		}
		return w
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Pipeline stages: each item's routing is a deadline-bounded lookup.
	for s := 0; s < 2*runtime.GOMAXPROCS(0); s++ {
		wg.Add(1)
		go func(stage int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				_ = lookup((stage+i)%64, 500*time.Microsecond)
				processed.Add(1)
			}
		}(s)
	}

	// report scrapes /debug/reactive like a monitoring agent would and
	// prints the pipeline's own counters next to the lock telemetry the
	// endpoint computed for this poll interval: the mode, the protocol
	// changes since the previous scrape, and the switch rate they imply.
	report := func(name string) {
		resp, err := http.Get(srv.URL + "/debug/reactive")
		if err != nil {
			panic(err)
		}
		defer resp.Body.Close()
		var rep reactivehttp.Report
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			panic(err)
		}
		st := rep.Primitives["routes"]
		hs := rep.Primitives["hot"]
		fmt.Printf("%-28s mode=%-5v switches=%d (+%d this phase, %.1f/s) hot-map=%v items=%d fresh=%d stale=%d\n",
			name, st.Mode, st.Switches, st.Delta.Switches, st.SwitchRate, hs.Mode,
			processed.Load(), fresh.Load(), degraded.Load())
	}
	report("startup")

	// Phase 1: rare, quick config updates — readers stay in spin mode and
	// essentially every lookup beats its deadline.
	for i := 0; i < 50; i++ {
		rw.Lock()
		table[i%64]++
		rw.Unlock()
		publish()
		time.Sleep(time.Millisecond)
	}
	report("quick updates")

	// Phase 2: slow bulk rebuilds hold the write lock past the per-item
	// deadline — lookups degrade to the snapshot instead of stalling, and
	// readers that blow their polling budget vote the lock into parking.
	for i := 0; i < 20; i++ {
		rw.Lock()
		for k := range table { // simulate an expensive rebuild
			table[k] = (table[k] + 1) % 7
		}
		time.Sleep(2 * time.Millisecond) // long hold
		rw.Unlock()
		publish()
		time.Sleep(time.Millisecond)
	}
	report("slow bulk updates")

	// Phase 3: the pipeline drains; config updates continue against an
	// idle table. Writer releases that pass no waiting readers vote the
	// lock back to reader-spin mode.
	close(stop)
	wg.Wait()
	for i := 0; i < 200; i++ {
		rw.Lock()
		table[i%64]++
		rw.Unlock()
	}
	publish()
	report("updates on a drained pipeline")
}
