// Package repro reproduces Beng-Hong Lim's "Reactive Synchronization
// Algorithms for Multiprocessors" (MIT, 1994; ASPLOS '94 with Agarwal): a
// cycle-level Alewife-like multiprocessor simulator, the passive and
// reactive spin-lock and fetch-and-op protocols, the consensus-object
// protocol-selection framework, two-phase waiting algorithms with their
// competitive analysis, and the full experiment harness that regenerates
// every table and figure of the thesis's evaluation.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The adoptable native-Go library lives in the reactive subpackage:
// adaptive Mutex, Counter, RWMutex, and FetchOp primitives configured
// through an Options API, with context-aware acquisition (LockCtx,
// RLockCtx, TryLockFor, ValueCtx, LoadCtx) on a shared waiter-queue
// engine. The generic N-mode modal-object engine every mode change
// routes through — native and simulated alike — is reactive/modal, and
// the protocol-switching policies both layers consume are in
// reactive/policy, from the thesis's streak detectors up to the
// congestion-control policy (policy.Congestion) that treats residual
// costs as RTT samples and mode occupancy as a congestion window.
// Live telemetry rides on the uniform Stats surface: snapshots marshal
// to JSON, Stats.Sub converts two of them into a rate-ready delta, and
// reactive/reactivehttp exports a named-primitive registry over expvar
// and a /debug/reactive HTTP endpoint with per-interval mode residency
// and switch rates.
package repro
