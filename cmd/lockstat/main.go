// Command lockstat runs the baseline contention loop for a single lock or
// fetch-and-op protocol at one contention level and prints detailed
// statistics: per-operation overhead, protocol changes, memory-system
// counters. It is the tuning tool Section 3.7.2 prescribes for profiling
// component protocols on a new machine before configuring a reactive
// algorithm's switching policy.
//
// Usage:
//
//	lockstat -kind lock -proto reactive -procs 16 -iters 200
//	lockstat -kind fop  -proto combining-tree -procs 64
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fetchop"
	"repro/internal/machine"
	"repro/internal/spinlock"
)

func main() {
	kind := flag.String("kind", "lock", "object kind: lock or fop")
	proto := flag.String("proto", "reactive", "protocol (lock: test&set, test&test&set, mcs, mp-queue, reactive; fop: tts-lock, queue-lock, combining-tree, mp-central, mp-combining-tree, reactive)")
	procs := flag.Int("procs", 16, "contending processors")
	machineProcs := flag.Int("machine", 64, "machine size in processors")
	iters := flag.Int("iters", 100, "operations per processor")
	cs := flag.Uint64("cs", 100, "critical-section length in cycles (lock kind)")
	think := flag.Int("think", 500, "max random think time in cycles")
	flag.Parse()

	if *procs > *machineProcs {
		fmt.Fprintln(os.Stderr, "procs exceeds machine size")
		os.Exit(2)
	}
	m := machine.New(machine.DefaultConfig(*machineProcs))
	var end machine.Time
	var changes func() uint64 = func() uint64 { return 0 }

	work := func(c *machine.CPU, op func(c *machine.CPU)) {
		for i := 0; i < *iters; i++ {
			op(c)
			if *think > 0 {
				c.Advance(machine.Time(c.Rand().Intn(*think)))
			}
		}
		if c.Now() > end {
			end = c.Now()
		}
	}

	switch *kind {
	case "lock":
		var l spinlock.Lock
		switch *proto {
		case "test&set":
			l = spinlock.NewTAS(m.Mem, 0, spinlock.DefaultBackoff)
		case "test&test&set":
			l = spinlock.NewTTS(m.Mem, 0, spinlock.DefaultBackoff)
		case "mcs":
			l = spinlock.NewMCS(m.Mem, 0)
		case "mp-queue":
			l = spinlock.NewMPQueue(0)
		case "reactive":
			rl := core.NewReactiveLock(m.Mem, 0)
			changes = func() uint64 { return rl.Changes }
			l = rl
		default:
			fmt.Fprintf(os.Stderr, "unknown lock protocol %q\n", *proto)
			os.Exit(2)
		}
		for p := 0; p < *procs; p++ {
			m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
				work(c, func(c *machine.CPU) {
					h := l.Acquire(c)
					c.Advance(*cs)
					l.Release(c, h)
				})
			})
		}
	case "fop":
		var f fetchop.FetchOp
		switch *proto {
		case "tts-lock":
			f = fetchop.NewTTSLockFOP(m.Mem, 0)
		case "queue-lock":
			f = fetchop.NewQueueLockFOP(m.Mem, 0)
		case "combining-tree":
			f = fetchop.NewCombTree(m.Mem, *machineProcs, 0)
		case "mp-central":
			f = fetchop.NewMPCentral(0)
		case "mp-combining-tree":
			f = fetchop.NewMPCombTree(m, *machineProcs, 0)
		case "reactive":
			rf := core.NewReactiveFetchOp(m.Mem, 0, *machineProcs)
			changes = func() uint64 { return rf.Changes }
			f = rf
		default:
			fmt.Fprintf(os.Stderr, "unknown fetch-and-op protocol %q\n", *proto)
			os.Exit(2)
		}
		for p := 0; p < *procs; p++ {
			m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
				work(c, func(c *machine.CPU) { f.FetchAdd(c, 1) })
			})
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if err := m.Run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	total := uint64(*procs) * uint64(*iters)
	fmt.Printf("protocol          %s/%s\n", *kind, *proto)
	fmt.Printf("processors        %d of %d\n", *procs, *machineProcs)
	fmt.Printf("operations        %d\n", total)
	fmt.Printf("elapsed cycles    %d\n", end)
	fmt.Printf("cycles/op         %.1f\n", float64(end)/float64(total))
	fmt.Printf("protocol changes  %d\n", changes())
	fmt.Printf("memory: reads=%d writes=%d rmws=%d misses=%d invals=%d traps=%d\n",
		m.Mem.Reads, m.Mem.Writes, m.Mem.RMWs, m.Mem.Misses, m.Mem.Invals, m.Mem.Traps)
}
