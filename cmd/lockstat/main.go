// Command lockstat runs the baseline contention loop for a single lock or
// fetch-and-op protocol across one or more contention levels and prints
// detailed statistics: per-operation cycles, protocol changes, and
// memory-system counters. It is the tuning tool Section 3.7.2 prescribes
// for profiling component protocols on a new machine before configuring a
// reactive algorithm's switching policy. Protocol construction and the
// parallel sweep come from the shared experiment harness, so lockstat
// accepts the same protocol names and flags as the other commands.
//
// Usage:
//
//	lockstat -list
//	lockstat -kind lock -proto reactive -procs 16 -iters 200
//	lockstat -kind lock -proto mcs-queue -procs 1,2,4,8,16,32 -parallel 6
//	lockstat -kind fop  -proto combining-tree -procs 64 -json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"slices"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/stats"
)

func main() {
	kind := flag.String("kind", "lock", "object kind: lock or fop")
	proto := flag.String("proto", "reactive", "protocol name (see -list)")
	procsFlag := flag.String("procs", "16", "comma-separated contention levels to sweep")
	machineProcs := flag.Int("machine", 64, "machine size in processors")
	iters := flag.Int("iters", 100, "operations per processor")
	cs := flag.Uint64("cs", 100, "critical-section length in cycles (lock kind)")
	think := flag.Int("think", 500, "max random think time in cycles")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max contention levels measured concurrently")
	seed := flag.Uint64("seed", experiments.DefaultSeed, "base seed for the sweep")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of a text table")
	csvOut := flag.Bool("csv", false, "emit flat CSV instead of a text table")
	list := flag.Bool("list", false, "list protocol names, then exit")
	flag.Parse()

	if *list {
		fmt.Printf("lock: %s\n", strings.Join(experiments.LockProtocols(), ", "))
		fmt.Printf("fop:  %s\n", strings.Join(experiments.FopProtocols(), ", "))
		return
	}
	known := experiments.LockProtocols()
	if *kind == "fop" {
		known = experiments.FopProtocols()
	} else if *kind != "lock" {
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if !slices.Contains(known, *proto) {
		fmt.Fprintf(os.Stderr, "unknown %s protocol %q (see -list)\n", *kind, *proto)
		os.Exit(2)
	}

	var levels []int
	for _, f := range strings.Split(*procsFlag, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || p < 1 {
			fmt.Fprintf(os.Stderr, "bad contention level %q\n", f)
			os.Exit(2)
		}
		if p > *machineProcs {
			fmt.Fprintln(os.Stderr, "procs exceeds machine size")
			os.Exit(2)
		}
		levels = append(levels, p)
	}

	// One spec per contention level: the sweep is embarrassingly
	// parallel and each level's seed derives from its spec name, so the
	// table is identical at any -parallel value.
	specs := make([]experiments.Spec, len(levels))
	for i, procs := range levels {
		procs := procs
		specs[i] = experiments.Spec{
			Name:   fmt.Sprintf("lockstat/%s/%s/p%d", *kind, *proto, procs),
			Figure: "Section 3.7.2",
			Title:  fmt.Sprintf("%s/%s at %d contenders", *kind, *proto, procs),
			Tool:   "lockstat",
			Run: func(sz experiments.Sizes) *stats.Table {
				return measure(sz, *kind, *proto, *machineProcs, procs, *iters, *cs, *think)
			},
		}
	}
	runner := experiments.Runner{Parallel: *parallel, BaseSeed: *seed}
	results := runner.Run(specs)

	var err error
	switch {
	case *jsonOut:
		// Record the flag values that shaped the sweep so the document
		// alone suffices to reproduce it.
		params := struct {
			Kind         string `json:"kind"`
			Proto        string `json:"proto"`
			MachineProcs int    `json:"machine_procs"`
			Iters        int    `json:"iters"`
			CS           uint64 `json:"cs_cycles"`
			Think        int    `json:"think_cycles"`
			Levels       []int  `json:"levels"`
			BaseSeed     uint64 `json:"base_seed"`
		}{*kind, *proto, *machineProcs, *iters, *cs, *think, levels, *seed}
		err = experiments.WriteJSON(os.Stdout, params, results)
	case *csvOut:
		err = experiments.WriteCSV(os.Stdout, results)
	default:
		// Merge the one-row level tables into a single sweep table.
		merged := &stats.Table{}
		for _, res := range results {
			if res.Err != nil {
				continue
			}
			merged.Header = res.Table.Header
			merged.Rows = append(merged.Rows, res.Table.Rows...)
		}
		fmt.Printf("protocol  %s/%s on a %d-processor machine, %d ops/processor\n",
			*kind, *proto, *machineProcs, *iters)
		fmt.Print(merged)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := experiments.FirstErr(results); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// measure runs the contention loop at one level and returns a one-row
// table of detailed statistics.
func measure(sz experiments.Sizes, kind, proto string, machineProcs, procs, iters int, cs uint64, think int) *stats.Table {
	m := sz.NewMachine(machineProcs, nil)

	var end machine.Time
	changes := func() uint64 { return 0 }
	work := func(c *machine.CPU, op func(c *machine.CPU)) {
		for i := 0; i < iters; i++ {
			op(c)
			if think > 0 {
				c.Advance(machine.Time(c.Rand().Intn(think)))
			}
		}
		if c.Now() > end {
			end = c.Now()
		}
	}
	switch kind {
	case "lock":
		l := experiments.MakeLock(m, proto, 0)
		if rl, ok := l.(*core.ReactiveLock); ok {
			changes = func() uint64 { return rl.Changes }
		}
		for p := 0; p < procs; p++ {
			m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
				work(c, func(c *machine.CPU) {
					h := l.Acquire(c)
					c.Advance(cs)
					l.Release(c, h)
				})
			})
		}
	default: // fop
		f := experiments.MakeFop(m, proto, machineProcs)
		if rf, ok := f.(*core.ReactiveFetchOp); ok {
			changes = func() uint64 { return rf.Changes }
		}
		for p := 0; p < procs; p++ {
			m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
				work(c, func(c *machine.CPU) { f.FetchAdd(c, 1) })
			})
		}
	}
	if err := m.Run(); err != nil {
		panic(err) // the runner reports it as this level's error
	}
	total := uint64(procs) * uint64(iters)
	t := &stats.Table{Header: []string{
		"procs", "elapsed", "cycles/op", "changes",
		"reads", "writes", "rmws", "misses", "invals", "traps",
	}}
	t.AddRow(
		fmt.Sprintf("%d", procs),
		fmt.Sprintf("%d", end),
		fmt.Sprintf("%.1f", float64(end)/float64(total)),
		fmt.Sprintf("%d", changes()),
		fmt.Sprintf("%d", m.Mem.Reads),
		fmt.Sprintf("%d", m.Mem.Writes),
		fmt.Sprintf("%d", m.Mem.RMWs),
		fmt.Sprintf("%d", m.Mem.Misses),
		fmt.Sprintf("%d", m.Mem.Invals),
		fmt.Sprintf("%d", m.Mem.Traps),
	)
	return t
}
