// Loadgen drives the in-process reactive service (internal/loadsvc)
// with open-loop traffic and reports the tail-latency trajectory.
//
//	go run ./cmd/loadgen -scenario all -duration 2s -json bench_tail.json
//
// Each scenario schedules requests at a fixed arrival rate — arrivals
// never wait for completions, so an overloaded service accumulates
// queueing delay and the p99/p999 quantiles show it (the open-loop
// methodology; DESIGN.md §7). The run prints a per-scenario summary
// table and, with -json, writes the bench_tail/v1 document whose flat
// "tail" rows cmd/benchcmp -tail diffs against the committed
// bench_tail_baseline.json.
//
// Scenarios: read-heavy, write-burst, cancellation-storm,
// goroutine-churn, gomaxprocs-sweep (see -list or EXPERIMENTS.md's
// "Load scenarios" table). -scenario accepts a comma-separated subset
// or "all".
//
// The exit code is nonzero when any scenario strands a worker past the
// -guard timeout (a lost wakeup inside a primitive — must never happen)
// or reports request errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/loadsvc"
	"repro/internal/stats"
)

func main() {
	scenario := flag.String("scenario", "all", "scenario name, comma-separated subset, or \"all\"")
	duration := flag.Duration("duration", 2*time.Second, "scheduled arrival window per scenario")
	rate := flag.Int("rate", 0, "arrivals per second (0: per-scenario default)")
	workers := flag.Int("workers", 0, "worker lanes pulling dispatched requests (0: default 16)")
	seed := flag.Uint64("seed", 1, "base seed; per-scenario seeds derive from it")
	guard := flag.Duration("guard", loadsvc.GuardDefault, "stranded-waiter timeout after the last arrival")
	jsonPath := flag.String("json", "", "write the bench_tail/v1 document here")
	virtual := flag.Bool("virtual", false, "deterministic replay instead of live driving (plan/plumbing check)")
	list := flag.Bool("list", false, "list scenarios and exit")
	flag.Parse()

	if *list {
		for _, sc := range loadsvc.Scenarios() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Mix)
		}
		return
	}

	specs, err := selectScenarios(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(2)
	}

	opts := loadsvc.Options{
		Rate:     *rate,
		Duration: *duration,
		Workers:  *workers,
		Seed:     *seed,
		Guard:    *guard,
		Virtual:  *virtual,
	}

	var reports []*loadsvc.Report
	failed := false
	for _, sc := range specs {
		rep, err := loadsvc.Run(sc, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			failed = true
			if rep == nil {
				continue
			}
		}
		reports = append(reports, rep)
		if rep.LostWaiters > 0 || rep.Errors > 0 {
			failed = true
		}
	}

	printSummary(reports)

	if *jsonPath != "" {
		doc := loadsvc.BuildTailDoc(reports)
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (%d tail rows)\n", *jsonPath, len(doc.Tail))
	}

	if failed {
		fmt.Fprintln(os.Stderr, "loadgen: FAILED (lost waiters or request errors above)")
		os.Exit(1)
	}
}

// selectScenarios resolves the -scenario expression against the matrix.
func selectScenarios(expr string) ([]loadsvc.Spec, error) {
	if expr == "all" {
		return loadsvc.Scenarios(), nil
	}
	var specs []loadsvc.Spec
	seen := map[string]bool{}
	for _, name := range strings.Split(expr, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		seen[name] = true
		sc, ok := loadsvc.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown scenario %q (try -list)", name)
		}
		specs = append(specs, sc)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty scenario selection %q", expr)
	}
	return specs, nil
}

// printSummary renders the per-scenario result table plus the scraped
// per-primitive deltas.
func printSummary(reports []*loadsvc.Report) {
	tb := &stats.Table{Header: []string{
		"scenario", "reqs", "p50(µs)", "p99(µs)", "p999(µs)", "max(µs)",
		"cancel%", "stale%", "lost",
	}}
	for _, r := range reports {
		tb.AddRow(r.Scenario,
			fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%.1f", r.P50Us),
			fmt.Sprintf("%.1f", r.P99Us),
			fmt.Sprintf("%.1f", r.P999Us),
			fmt.Sprintf("%.1f", r.MaxUs),
			fmt.Sprintf("%.1f", 100*r.CancelledRate),
			fmt.Sprintf("%.1f", 100*r.StaleRate),
			fmt.Sprintf("%d", r.LostWaiters),
		)
	}
	fmt.Print(tb.String())

	for _, r := range reports {
		if len(r.Primitives) == 0 {
			continue
		}
		names := make([]string, 0, len(r.Primitives))
		for name := range r.Primitives {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("\n%s primitives:", r.Scenario)
		for _, name := range names {
			d := r.Primitives[name]
			fmt.Printf(" %s{mode=%s +%dsw", name, d.Mode, d.Switches)
			if d.ReaderMode != "" {
				fmt.Printf(" readers=%s +%dsw", d.ReaderMode, d.ReaderSwitches)
			}
			fmt.Print("}")
		}
		fmt.Println()
		for _, s := range r.Sub {
			tag := fmt.Sprintf("procs=%d", s.Procs)
			if s.Mode != "" {
				tag = "mode=" + s.Mode
			}
			fmt.Printf("%s %s: n=%d p50=%.1fµs p99=%.1fµs p999=%.1fµs\n",
				r.Scenario, tag, s.Requests, s.P50Us, s.P99Us, s.P999Us)
		}
	}
}
