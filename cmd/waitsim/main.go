// Command waitsim regenerates the waiting-algorithm experiments of
// Chapter 4: the blocking-cost breakdown (Table 4.1), the analytic
// competitive-factor curves (Figures 4.4-4.5), the measured waiting-time
// profiles (Figures 4.6-4.11), and the benchmark execution times
// (Figures 4.12-4.14 / Tables 4.3-4.6).
//
// Usage:
//
//	waitsim -exp table4.1
//	waitsim -exp factors           # Figures 4.4 and 4.5
//	waitsim -exp profiles          # Figures 4.6-4.11 (semi-log histograms)
//	waitsim -exp benchmarks        # Figures 4.12-4.14 / Tables 4.3-4.5
//	waitsim -exp halfb             # Table 4.6
//	waitsim -exp all
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment (table4.1, factors, profiles, benchmarks, halfb, all)")
	full := flag.Bool("full", false, "paper-scale sizes (slower)")
	flag.Parse()

	sz := experiments.Quick()
	if *full {
		sz = experiments.Full()
	}

	do := func(name string) {
		switch name {
		case "table4.1":
			fmt.Printf("== Table 4.1: breakdown of the cost of blocking ==\n%s\n", experiments.Table4_1BlockingCost())
		case "factors":
			fmt.Printf("== Figure 4.4: expected competitive factors, exponential waits ==\n%s\n", experiments.Fig4_4ExpFactors())
			fmt.Printf("== Figure 4.5: expected competitive factors, uniform waits ==\n%s\n", experiments.Fig4_5UniformFactors())
			fmt.Printf("== Section 4.1 extension: switch-spinning (beta=4) ==\n%s\n", experiments.Fig4_SwitchSpinFactors())
		case "profiles":
			for _, p := range experiments.WaitProfiles(sz) {
				fmt.Println("==", p.Name, "==")
				fmt.Println(p)
			}
		case "benchmarks":
			fmt.Printf("== Figure 4.12 / Table 4.3: producer-consumer (normalized to best) ==\n%s\n", experiments.Fig4_12ProducerConsumer(sz))
			fmt.Printf("== Figure 4.13 / Table 4.4: barriers (normalized to best) ==\n%s\n", experiments.Fig4_13Barrier(sz))
			fmt.Printf("== Figure 4.14 / Table 4.5: mutual exclusion (normalized to best) ==\n%s\n", experiments.Fig4_14Mutex(sz))
		case "halfb":
			fmt.Printf("== Table 4.6: two-phase waiting with Lpoll = 0.5B ==\n%s\n", experiments.Table4_6HalfB(sz))
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
	}
	if *exp == "all" {
		for _, n := range []string{"table4.1", "factors", "profiles", "benchmarks", "halfb"} {
			do(n)
		}
		return
	}
	do(*exp)
}
