// Command waitsim regenerates the waiting-algorithm experiments of
// Chapter 4: the blocking-cost breakdown (Table 4.1), the analytic
// competitive-factor curves (Figures 4.4-4.5), the measured waiting-time
// profiles (Figures 4.6-4.11), and the benchmark execution times
// (Figures 4.12-4.14 / Tables 4.3-4.6). Experiments come from the shared
// registry (internal/experiments) and any subset runs in parallel
// without changing the output.
//
// Usage:
//
//	waitsim -list                  # show experiment names and groups
//	waitsim -exp table4.1
//	waitsim -exp factors           # Figures 4.4 and 4.5
//	waitsim -exp profiles          # Figures 4.6-4.11 (summary table)
//	waitsim -exp profiles -hist    # ...plus semi-log histograms
//	waitsim -exp benchmarks        # Figures 4.12-4.14 / Tables 4.3-4.5
//	waitsim -exp all -parallel 8 -json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/expcli"
	"repro/internal/experiments"
)

func main() {
	cfg := expcli.Config{
		Tool: experiments.ToolWaitsim,
		ExtraFlags: func(fs *flag.FlagSet) func(io.Writer, experiments.Sizes, []experiments.Result) error {
			hist := fs.Bool("hist", false, "with the profiles experiment selected, also print its semi-log histograms (text output only)")
			return func(w io.Writer, sz experiments.Sizes, results []experiments.Result) error {
				if !*hist {
					return nil
				}
				// Histograms accompany the profiles experiment: print them
				// only when it was selected, reusing its exact seed so
				// they match the summary table just printed. This reruns
				// WaitProfiles (~tens of ms at Quick scale) rather than
				// caching side data in the registry result.
				for _, res := range results {
					if res.Spec.Name != experiments.ProfilesExperiment || res.Err != nil {
						continue
					}
					sz.Seed = res.Seed
					for _, p := range experiments.WaitProfiles(sz) {
						if _, err := fmt.Fprintf(w, "== %s ==\n%s\n", p.Name, p); err != nil {
							return err
						}
					}
				}
				return nil
			}
		},
	}
	os.Exit(expcli.Main(cfg, os.Args[1:], os.Stdout, os.Stderr))
}
