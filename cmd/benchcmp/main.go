// Benchcmp compares two bench_results.json documents — the
// machine-readable experiment-matrix + native-primitive artifact the
// bench job writes — and prints a benchstat-style report: per-experiment
// table drift for the deterministic simulator results, and old/new/delta
// ns/op for the wall-clock native-primitive measurements.
//
//	go run ./cmd/benchcmp -old bench_baseline.json -new bench_results.json
//
// The simulator tables are bit-deterministic at a fixed seed, so any
// drift there is a real behavior change; the native section is
// host-dependent wall-clock data, so its deltas are noise-prone and
// reported for trend reading only (CI runs this as a non-blocking step).
// When the benchstat tool is installed, the native sections are
// additionally rendered to Go benchmark format and handed to it.
//
// With -threshold <pct> the comparison becomes a regression gate: any
// native measurement slower than the baseline by more than pct percent
// is listed in a "regressions over threshold" section and the exit code
// is 1, so a pipeline can surface (or block on) fast-path regressions
// while still tolerating wall-clock noise below the threshold. Only
// rows ending in "/reactive" are ever gated — stdlib baseline rows
// move only with host noise — and rows under the "control/" prefix
// (stdlib-only workloads nothing in this repository can change) are
// reported but never gated. With -normalize, the geometric-mean drift
// ratio of the control/ rows is divided out of every gated row's delta
// before the threshold applies, so a uniformly slower or faster host
// (a shared CI runner, a different machine) does not masquerade as a
// library regression; the printed table still shows raw deltas.
//
// With -tail the documents are bench_tail.json tail-latency trajectories
// from cmd/loadgen instead (flat scenario/quantile rows in microseconds);
// -old and -new default to bench_tail_baseline.json and bench_tail.json
// unless set explicitly. The same threshold gate applies, except rows
// ending in "/max" are reported but never gated — a single outlier
// dispatch is not a regression. Rows or whole sections present on only
// one side (a host-specific GOMAXPROCS rung, a renamed scenario) are
// reported as new/removed, never treated as an error, so baselines stay
// usable across hosts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// resultsDoc mirrors the experiment runner's jsonDoc, loosely: only the
// fields the comparison needs.
type resultsDoc struct {
	Results []struct {
		Name  string `json:"name"`
		Error string `json:"error,omitempty"`
		Table *struct {
			Header []string   `json:"header"`
			Rows   [][]string `json:"rows"`
		} `json:"table,omitempty"`
	} `json:"results"`
	Native []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"native,omitempty"`
	// Tail is the bench_tail.json trajectory section (-tail mode):
	// flat scenario/quantile rows in microseconds from cmd/loadgen.
	Tail []struct {
		Name string  `json:"name"`
		Us   float64 `json:"us"`
	} `json:"tail,omitempty"`
}

func load(path string) (*resultsDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc resultsDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

func main() {
	oldPath := flag.String("old", "bench_baseline.json", "baseline results document")
	newPath := flag.String("new", "bench_results.json", "fresh results document")
	threshold := flag.Float64("threshold", 0,
		"fail (exit 1) when a measurement regresses beyond this percentage; 0 disables the gate")
	tail := flag.Bool("tail", false,
		"compare bench_tail.json tail-latency trajectories instead of bench_results.json documents")
	normalize := flag.Bool("normalize", false,
		"divide the control/ rows' geometric-mean drift out of gated native deltas before thresholding")
	flag.Parse()

	if *tail {
		// In tail mode the default document pair is the loadgen one;
		// explicit -old/-new still win.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["old"] {
			*oldPath = "bench_tail_baseline.json"
		}
		if !explicit["new"] {
			*newPath = "bench_tail.json"
		}
	}

	oldDoc, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	newDoc, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}

	var regressions []string
	if *tail {
		regressions = compareTail(oldDoc, newDoc, *threshold)
	} else {
		compareTables(oldDoc, newDoc)
		fmt.Println()
		regressions = compareNative(oldDoc, newDoc, *threshold, *normalize)
		runBenchstat(oldDoc, newDoc)
	}
	if *threshold > 0 {
		fmt.Printf("\n== regressions over threshold (%.1f%%) ==\n", *threshold)
		if len(regressions) == 0 {
			fmt.Println("none")
			return
		}
		for _, r := range regressions {
			fmt.Println(r)
		}
		os.Exit(1)
	}
}

// compareTail prints old/new/delta µs for the tail-latency trajectory
// rows and returns the rows that regressed beyond threshold percent.
// Rows present on only one side are reported as new/removed, never
// errors: GOMAXPROCS sweep rungs above 4 are host-specific, and
// scenario additions should not invalidate old baselines. Rows ending
// in "/max" are never gated — a single outlier dispatch on a noisy host
// is not a regression; the gated trajectory is p50/p99/p999.
func compareTail(oldDoc, newDoc *resultsDoc, threshold float64) []string {
	fmt.Println("== tail-latency trajectory (open-loop, µs; /max reported but not gated) ==")
	if len(oldDoc.Tail) == 0 {
		fmt.Println("(baseline has no tail section — all rows new, nothing to gate)")
	}
	if len(newDoc.Tail) == 0 {
		fmt.Println("(fresh document has no tail section — nothing to gate)")
	}
	fmt.Printf("%-36s %12s %12s %9s\n", "name", "old µs", "new µs", "delta")
	oldByName := map[string]float64{}
	for _, r := range oldDoc.Tail {
		oldByName[r.Name] = r.Us
	}
	var regressions []string
	for _, nr := range newDoc.Tail {
		ov, ok := oldByName[nr.Name]
		if !ok {
			fmt.Printf("%-36s %12s %12.1f %9s\n", nr.Name, "-", nr.Us, "new")
			continue
		}
		delete(oldByName, nr.Name)
		delta := "~"
		if ov != 0 {
			pct := 100 * (nr.Us - ov) / ov
			delta = fmt.Sprintf("%+.1f%%", pct)
			if threshold > 0 && pct > threshold && !strings.HasSuffix(nr.Name, "/max") {
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.1f -> %.1f µs (%+.1f%% > +%.1f%%)",
					nr.Name, ov, nr.Us, pct, threshold))
			}
		}
		fmt.Printf("%-36s %12.1f %12.1f %9s\n", nr.Name, ov, nr.Us, delta)
	}
	for _, name := range sortedKeys(oldByName) {
		fmt.Printf("%-36s %12.1f %12s %9s\n", name, oldByName[name], "-", "removed")
	}
	return regressions
}

// compareTables diffs the deterministic simulator section cell-by-cell.
func compareTables(oldDoc, newDoc *resultsDoc) {
	fmt.Println("== simulator matrix (deterministic; any drift is a behavior change) ==")
	oldByName := map[string]int{}
	for i, r := range oldDoc.Results {
		oldByName[r.Name] = i
	}
	for _, nr := range newDoc.Results {
		oi, ok := oldByName[nr.Name]
		if !ok {
			fmt.Printf("%-28s NEW (no baseline entry)\n", nr.Name)
			continue
		}
		or := oldDoc.Results[oi]
		delete(oldByName, nr.Name)
		switch {
		case nr.Error != "" || or.Error != "":
			fmt.Printf("%-28s ERROR old=%q new=%q\n", nr.Name, or.Error, nr.Error)
		case nr.Table == nil || or.Table == nil:
			fmt.Printf("%-28s missing table\n", nr.Name)
		default:
			changed, maxDelta := diffTable(or.Table.Rows, nr.Table.Rows)
			if changed == 0 {
				fmt.Printf("%-28s identical\n", nr.Name)
			} else {
				fmt.Printf("%-28s %d cells differ (max numeric delta %+.1f%%)\n",
					nr.Name, changed, maxDelta)
			}
		}
	}
	for _, name := range sortedKeys(oldByName) {
		fmt.Printf("%-28s REMOVED (baseline only)\n", name)
	}
}

// sortedKeys returns m's keys in sorted order so leftover-entry reports
// are deterministic across runs (the artifact is diffed textually).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// diffTable counts differing cells and tracks the largest relative
// change between numeric cell pairs.
func diffTable(oldRows, newRows [][]string) (changed int, maxDelta float64) {
	rows := len(oldRows)
	if len(newRows) > rows {
		rows = len(newRows)
	}
	for i := 0; i < rows; i++ {
		var o, n []string
		if i < len(oldRows) {
			o = oldRows[i]
		}
		if i < len(newRows) {
			n = newRows[i]
		}
		cols := len(o)
		if len(n) > cols {
			cols = len(n)
		}
		for j := 0; j < cols; j++ {
			var oc, nc string
			if j < len(o) {
				oc = o[j]
			}
			if j < len(n) {
				nc = n[j]
			}
			if oc == nc {
				continue
			}
			changed++
			ov, oerr := strconv.ParseFloat(oc, 64)
			nv, nerr := strconv.ParseFloat(nc, 64)
			if oerr == nil && nerr == nil && ov != 0 {
				if d := 100 * (nv - ov) / math.Abs(ov); math.Abs(d) > math.Abs(maxDelta) {
					maxDelta = d
				}
			}
		}
	}
	return changed, maxDelta
}

// controlDrift returns the geometric-mean new/old ratio over the
// control/ rows present in both documents, and how many rows fed it.
// The control rows are stdlib-only workloads no change in this
// repository can speed up or slow down, so their collective drift is a
// pure host-speed signal: 1.10 means "this host ran everything ~10%
// slower than the baseline host did".
func controlDrift(oldDoc, newDoc *resultsDoc) (float64, int) {
	oldByName := map[string]float64{}
	for _, r := range oldDoc.Native {
		oldByName[r.Name] = r.NsPerOp
	}
	logSum, n := 0.0, 0
	for _, nr := range newDoc.Native {
		if !strings.HasPrefix(nr.Name, "control/") {
			continue
		}
		ov, ok := oldByName[nr.Name]
		if !ok || ov <= 0 || nr.NsPerOp <= 0 {
			continue
		}
		logSum += math.Log(nr.NsPerOp / ov)
		n++
	}
	if n == 0 {
		return 1, 0
	}
	return math.Exp(logSum / float64(n)), n
}

// compareNative prints old/new/delta ns/op for the wall-clock section
// and returns the measurements that regressed beyond threshold percent
// (none when the gate is disabled with threshold ≤ 0). Rows under the
// control/ prefix are reported but never gated; with normalize set,
// their geometric-mean drift is divided out of each gated row's ratio
// before the threshold applies (the printed per-row deltas stay raw).
func compareNative(oldDoc, newDoc *resultsDoc, threshold float64, normalize bool) []string {
	fmt.Println("== native primitives (wall-clock; trend reading only) ==")
	drift, controls := controlDrift(oldDoc, newDoc)
	if controls > 0 {
		note := "reported only, not applied to the gate; use -normalize"
		if normalize {
			note = "divided out of gated deltas"
		}
		fmt.Printf("control drift: %+.1f%% over %d control/ rows (%s)\n",
			100*(drift-1), controls, note)
	} else if normalize {
		fmt.Println("control drift: no control/ rows on both sides; -normalize is a no-op")
	}
	fmt.Printf("%-36s %12s %12s %9s\n", "name", "old ns/op", "new ns/op", "delta")
	oldByName := map[string]float64{}
	for _, r := range oldDoc.Native {
		oldByName[r.Name] = r.NsPerOp
	}
	var regressions []string
	for _, nr := range newDoc.Native {
		ov, ok := oldByName[nr.Name]
		if !ok {
			fmt.Printf("%-36s %12s %12.2f %9s\n", nr.Name, "-", nr.NsPerOp, "new")
			continue
		}
		delete(oldByName, nr.Name)
		delta := "~"
		if ov != 0 {
			pct := 100 * (nr.NsPerOp - ov) / ov
			delta = fmt.Sprintf("%+.1f%%", pct)
			// Only this project's rows can regress from a code change;
			// the stdlib baseline rows (/sync.Mutex, /atomic.Int64, ...)
			// move only with host noise, so gating them would cry wolf,
			// and the control/ rows exist precisely to measure that
			// noise — they are never gated.
			gatedPct := pct
			if normalize && controls > 0 {
				gatedPct = 100 * (nr.NsPerOp/drift - ov) / ov
			}
			if threshold > 0 && gatedPct > threshold &&
				strings.HasSuffix(nr.Name, "/reactive") && !strings.HasPrefix(nr.Name, "control/") {
				detail := fmt.Sprintf("%+.1f%% > +%.1f%%", pct, threshold)
				if normalize && controls > 0 {
					detail = fmt.Sprintf("%+.1f%% raw, %+.1f%% drift-normalized > +%.1f%%",
						pct, gatedPct, threshold)
				}
				regressions = append(regressions, fmt.Sprintf(
					"%s: %.2f -> %.2f ns/op (%s)", nr.Name, ov, nr.NsPerOp, detail))
			}
		}
		fmt.Printf("%-36s %12.2f %12.2f %9s\n", nr.Name, ov, nr.NsPerOp, delta)
	}
	for _, name := range sortedKeys(oldByName) {
		fmt.Printf("%-36s %12.2f %12s %9s\n", name, oldByName[name], "-", "removed")
	}
	return regressions
}

// runBenchstat hands the native sections to benchstat when the tool is
// installed (it consumes Go benchmark text format, so the sections are
// rendered to temp files first); silently skipped otherwise.
func runBenchstat(oldDoc, newDoc *resultsDoc) {
	path, err := exec.LookPath("benchstat")
	if err != nil {
		fmt.Println("\n(benchstat not installed; built-in comparison only)")
		return
	}
	dir, err := os.MkdirTemp("", "benchcmp")
	if err != nil {
		return
	}
	defer os.RemoveAll(dir)
	render := func(doc *resultsDoc, name string) (string, error) {
		var b strings.Builder
		for _, r := range doc.Native {
			// Benchmark names must be slash-separated identifiers.
			b.WriteString("BenchmarkNativePrimitives/" + r.Name + " 1 " +
				strconv.FormatFloat(r.NsPerOp, 'f', -1, 64) + " ns/op\n")
		}
		p := filepath.Join(dir, name)
		return p, os.WriteFile(p, []byte(b.String()), 0o644)
	}
	oldFile, err1 := render(oldDoc, "old.txt")
	newFile, err2 := render(newDoc, "new.txt")
	if err1 != nil || err2 != nil {
		return
	}
	fmt.Println("\n== benchstat (native sections) ==")
	cmd := exec.Command(path, oldFile, newFile)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	_ = cmd.Run()
}
