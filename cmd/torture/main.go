// Command torture is the locktorture-style stress driver for the
// reactive primitives. It runs the scenario matrix in internal/torture
// — every primitive × mode chain × switching policy under mixed op
// vocabularies — with a deterministic fault schedule derived from the
// base seed, and turns any failure into a replayable JSON artifact:
//
//	torture                            # run every case
//	torture -list                      # show the matrix
//	torture -case mutex/flip-storm     # one case (comma-separate for more)
//	torture -seed 7 -workers 16 -ops 20000
//	torture -dump                      # print the repro artifacts, don't run
//	torture -replay torture_repro_mutex_flip-storm.json
//
// Fault injection fires only when built with the reactive_chaos tag:
//
//	go run -tags reactive_chaos -race ./cmd/torture
//
// A default build runs the same op schedules with the hooks compiled
// out — still a torture run, just without injected stalls. On failure
// the run's Repro is written to -out as torture_repro_<case>.json and
// the exit status is 1; -replay re-executes such an artifact's exact
// schedule (same case seed, same fleet shape, same fault rules).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/torture"
	"repro/reactive/chaos"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the scenario matrix and exit")
		sel     = flag.String("case", "all", "comma-separated case names, or all")
		seed    = flag.Uint64("seed", experiments.DefaultSeed, "base seed (case seeds are derived per case)")
		workers = flag.Int("workers", 8, "workers per case")
		ops     = flag.Int("ops", 5000, "ops per worker")
		guard   = flag.Duration("guard", 30*time.Second, "stranded-waiter watchdog (0 disables)")
		dump    = flag.Bool("dump", false, "print the selected cases' repro artifacts instead of running")
		asJSON  = flag.Bool("json", false, "emit one JSON result line per case")
		outDir  = flag.String("out", ".", "directory for failure repro artifacts")
		replay  = flag.String("replay", "", "re-run the exact schedule from a repro artifact file")
	)
	flag.Parse()

	if *list {
		for _, c := range torture.Cases() {
			fmt.Printf("%-26s %s\n", c.Name, c.Desc)
		}
		return
	}

	if *replay != "" {
		os.Exit(replayRun(*replay, *guard, *asJSON, *outDir))
	}

	var repros []*torture.Repro
	names := selectCases(*sel)
	for _, name := range names {
		r, err := torture.NewRepro(name, *seed, *workers, *ops)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		repros = append(repros, r)
	}

	if *dump {
		for _, r := range repros {
			b, err := r.Encode()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			os.Stdout.Write(append(b, '\n'))
		}
		return
	}

	if !*asJSON {
		fmt.Printf("torture: %d case(s), %d workers × %d ops, base seed %#x, chaos hooks %s\n",
			len(repros), *workers, *ops, *seed, builtState())
	}
	failures := 0
	for _, r := range repros {
		if runOne(r, *guard, *asJSON, *outDir) != nil {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "torture: %d of %d case(s) FAILED\n", failures, len(repros))
		os.Exit(1)
	}
	if !*asJSON {
		fmt.Printf("torture: all %d case(s) passed\n", len(repros))
	}
}

func selectCases(sel string) []string {
	if sel == "all" {
		var names []string
		for _, c := range torture.Cases() {
			names = append(names, c.Name)
		}
		return names
	}
	var names []string
	for _, n := range strings.Split(sel, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "torture: -case selected nothing")
		os.Exit(2)
	}
	return names
}

// runOne executes one descriptor, reports, and writes the repro
// artifact on failure. Returns the case error (nil on success).
func runOne(r *torture.Repro, guard time.Duration, asJSON bool, outDir string) error {
	res := r.Run(guard)
	if asJSON {
		printJSON(res)
	} else if res.Err == nil {
		fmt.Printf("  ok   %-26s %8.1fms  %s\n", res.Case, res.Elapsed.Seconds()*1e3, pointSummary(res.Points))
	}
	if res.Err == nil {
		return nil
	}
	fmt.Fprintf(os.Stderr, "  FAIL %-26s %v\n", res.Case, res.Err)
	if path, err := writeArtifact(r, outDir); err != nil {
		fmt.Fprintf(os.Stderr, "  torture: writing repro artifact: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "  repro artifact: %s (re-run with -replay %s)\n", path, path)
	}
	return res.Err
}

func replayRun(path string, guard time.Duration, asJSON bool, outDir string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	r, err := torture.DecodeRepro(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if !asJSON {
		fmt.Printf("torture: replaying %s (case seed %#x, %d workers × %d ops, chaos hooks %s)\n",
			r.Case, r.Seed, r.Workers, r.Ops, builtState())
		if r.GOMAXPROCS != runtime.GOMAXPROCS(0) {
			fmt.Printf("torture: note: artifact ran at GOMAXPROCS=%d, this host uses %d — pinning to the artifact's\n",
				r.GOMAXPROCS, runtime.GOMAXPROCS(0))
		}
		if r.ChaosBuilt != chaos.Built {
			fmt.Printf("torture: note: artifact was emitted with chaos hooks %v, this binary has %v — injected faults will differ\n",
				r.ChaosBuilt, chaos.Built)
		}
	}
	// Replay fidelity: match the emitting run's parallelism.
	prev := runtime.GOMAXPROCS(r.GOMAXPROCS)
	defer runtime.GOMAXPROCS(prev)
	if runOne(r, guard, asJSON, outDir) != nil {
		return 1
	}
	return 0
}

func writeArtifact(r *torture.Repro, outDir string) (string, error) {
	b, err := r.Encode()
	if err != nil {
		return "", err
	}
	name := "torture_repro_" + strings.ReplaceAll(r.Case, "/", "_") + ".json"
	path := filepath.Join(outDir, name)
	return path, os.WriteFile(path, append(b, '\n'), 0o644)
}

func printJSON(res torture.Result) {
	out := struct {
		Case     string            `json:"case"`
		Seed     uint64            `json:"seed"`
		OK       bool              `json:"ok"`
		Error    string            `json:"error,omitempty"`
		Elapsed  float64           `json:"elapsed_ms"`
		Injected []chaos.PointStat `json:"injected,omitempty"`
	}{
		Case:     res.Case,
		Seed:     res.Seed,
		OK:       res.Err == nil,
		Elapsed:  res.Elapsed.Seconds() * 1e3,
		Injected: res.Points,
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	b, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	os.Stdout.Write(append(b, '\n'))
}

func pointSummary(ps []chaos.PointStat) string {
	if len(ps) == 0 {
		return ""
	}
	var hits, fired uint64
	for _, p := range ps {
		hits += p.Hits
		fired += p.Fired
	}
	return fmt.Sprintf("faults fired %d/%d point hits", fired, hits)
}

func builtState() string {
	if chaos.Built {
		return "COMPILED IN"
	}
	return "compiled out"
}
