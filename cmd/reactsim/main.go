// Command reactsim regenerates the protocol-selection experiments of
// Chapter 3 on the simulated multiprocessor and prints the corresponding
// table for each figure.
//
// Usage:
//
//	reactsim -exp baseline          # Figures 1.1 / 3.2 / 3.15
//	reactsim -exp prototype        # Figure 3.16 (16-processor machine)
//	reactsim -exp dirnnb           # Figure 3.2's DirNNB ablation
//	reactsim -exp multilock        # Figures 3.17-3.19
//	reactsim -exp timevary         # Figures 3.20-3.21
//	reactsim -exp competitive      # Figure 3.22
//	reactsim -exp hysteresis       # Figure 3.23
//	reactsim -exp apps             # Figures 3.24-3.25
//	reactsim -exp messages         # Figure 3.26
//	reactsim -exp barrier          # reactive-barrier extension (§6.2)
//	reactsim -exp all
//	reactsim -full                 # paper-scale sizes (slower)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (baseline, prototype, dirnnb, multilock, timevary, competitive, hysteresis, apps, messages, all)")
	full := flag.Bool("full", false, "paper-scale sizes (64 processors; slow)")
	flag.Parse()

	sz := experiments.Quick()
	if *full {
		sz = experiments.Full()
	}

	runs := map[string]func() []namedTable{
		"baseline": func() []namedTable {
			return []namedTable{
				{"Figure 3.15 (spin locks): overhead cycles per critical section", experiments.Fig3_15SpinLocks(sz)},
				{"Figure 3.15 (fetch-and-op): overhead cycles per operation", experiments.Fig3_15FetchOp(sz)},
			}
		},
		"prototype": func() []namedTable {
			return []namedTable{{"Figure 3.16: spin locks on the 16-processor machine", experiments.Fig3_16Prototype(sz)}}
		},
		"dirnnb": func() []namedTable {
			return []namedTable{{"Figure 3.2 ablation: LimitLESS vs full-map (DirNNB) directory", experiments.Fig3_2DirNNB(sz)}}
		},
		"multilock": func() []namedTable {
			return []namedTable{{"Figures 3.17-3.19: multiple-lock test (normalized to simulated optimal)", experiments.Fig3_17MultipleLocks(sz)}}
		},
		"timevary": func() []namedTable {
			return []namedTable{{"Figure 3.21: time-varying contention (normalized to MCS)", experiments.Fig3_21TimeVarying(sz)}}
		},
		"competitive": func() []namedTable {
			return []namedTable{{"Figure 3.22: 3-competitive switching policy (normalized to MCS)", experiments.Fig3_22Competitive(sz)}}
		},
		"hysteresis": func() []namedTable {
			return []namedTable{{"Figure 3.23: hysteresis switching policies (normalized to MCS)", experiments.Fig3_23Hysteresis(sz)}}
		},
		"apps": func() []namedTable {
			return []namedTable{
				{"Figure 3.24: fetch-and-op applications (normalized to queue-lock)", experiments.Fig3_24FetchOpApps(sz)},
				{"Figure 3.25: spin-lock applications (normalized to test&set)", experiments.Fig3_25SpinLockApps(sz)},
			}
		},
		"messages": func() []namedTable {
			return []namedTable{{"Figure 3.26: shared-memory vs message-passing protocols", experiments.Fig3_26MessagePassing(sz)}}
		},
		"barrier": func() []namedTable {
			return []namedTable{{"Extension (thesis §6.2): reactive barrier, overhead per episode", experiments.BarrierBaseline(sz)}}
		},
	}
	order := []string{"baseline", "prototype", "dirnnb", "multilock", "timevary", "competitive", "hysteresis", "apps", "messages", "barrier"}

	if *exp == "all" {
		for _, name := range order {
			emit(runs[name]())
		}
		return
	}
	run, ok := runs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	emit(run())
}

type namedTable struct {
	title string
	table *stats.Table
}

func emit(tables []namedTable) {
	for _, nt := range tables {
		fmt.Printf("== %s ==\n%s\n", nt.title, nt.table)
	}
}
