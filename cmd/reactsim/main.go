// Command reactsim regenerates the protocol-selection experiments of
// Chapter 3 on the simulated multiprocessor and prints the corresponding
// table for each figure. Experiments come from the shared registry
// (internal/experiments) and any subset runs in parallel without
// changing the output.
//
// Usage:
//
//	reactsim -list                  # show experiment names and groups
//	reactsim -exp baseline          # Figures 1.1 / 3.2 / 3.15
//	reactsim -exp fig3.16-prototype # one experiment by name
//	reactsim -exp apps,barrier      # comma-separated selections
//	reactsim -exp all -parallel 8   # the whole matrix, 8 at a time
//	reactsim -exp all -json         # machine-readable results
//	reactsim -full                  # paper-scale sizes (slower)
package main

import (
	"os"

	"repro/internal/expcli"
	"repro/internal/experiments"
)

func main() {
	os.Exit(expcli.Main(expcli.Config{Tool: experiments.ToolReactsim}, os.Args[1:], os.Stdout, os.Stderr))
}
