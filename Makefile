# Local entry points mirroring the CI jobs (.github/workflows/ci.yml),
# so "make lint test" locally checks exactly what CI checks.

GO ?= go

.PHONY: all build test test-full bench bench-compare loadtest lint examples docs-check torture fuzz-short

all: lint build test

build:
	$(GO) build ./...

# The CI test job: race detector on, slow experiment tables skipped,
# plus the portable affinity-fallback build tag (including the
# cancellation/handoff stress under -race, so the portable waiter paths
# can't rot).
test:
	$(GO) test -race -short ./...
	$(GO) build -tags reactive_noprocpin ./...
	$(GO) test -tags reactive_noprocpin -short ./reactive/...
	$(GO) test -tags reactive_noprocpin -race -short -run 'Ctx|Cancel|Handoff|Stress|Epoch|GOMAXPROCS|Misuse|Panic|Invariants|Fuzz|Map' ./reactive/...

# The CI examples job: every example vets clean and runs to completion.
examples:
	$(GO) vet ./examples/...
	@set -e; for d in examples/*/; do echo "== $$d"; timeout 120 $(GO) run ./$$d > /dev/null; done

# The tier-1 gate: every test at full scale (slower).
test-full:
	$(GO) build ./... && $(GO) test ./...

# One pass over every benchmark; deterministic simulated-cycle metrics,
# plus the machine-readable experiment-matrix results in bench_results.json.
bench:
	BENCH_RESULTS_JSON=$(CURDIR)/bench_results.json $(GO) test -bench=. -benchtime=1x -run='^$$' .

# Compare a fresh bench_results.json against the committed baseline
# (bench_baseline.json): benchstat-style report via cmd/benchcmp, which
# also invokes the real benchstat on the native sections when the tool
# is installed. Mirrors CI's non-blocking bench-compare step, including
# its regression threshold (exit code 1 when a native fast path
# regressed beyond THRESHOLD percent). -normalize divides the control/
# rows' host-drift ratio out of the gated deltas, so a slower machine
# than the baseline's does not read as a library regression.
THRESHOLD ?= 25
bench-compare: bench
	@$(GO) run ./cmd/benchcmp -old bench_baseline.json -new bench_results.json -threshold $(THRESHOLD) -normalize > bench_compare.txt; \
	st=$$?; cat bench_compare.txt; exit $$st

# The CI loadtest job: the open-loop service-scale harness. Smoke the
# loadsvc package (short mode keeps it seconds-scale), regenerate
# bench_tail.json across all scenarios, and gate the tail-latency
# trajectory against the committed bench_tail_baseline.json (exit 1 when
# a gated quantile row regressed beyond TAIL_THRESHOLD percent; /max
# rows are reported but never gated).
TAIL_THRESHOLD ?= 25
loadtest:
	$(GO) test -short ./internal/loadsvc/
	$(GO) run ./cmd/loadgen -scenario all -duration 2s -json bench_tail.json
	@$(GO) run ./cmd/benchcmp -tail -threshold $(TAIL_THRESHOLD) > bench_tail_compare.txt; \
	st=$$?; cat bench_tail_compare.txt; exit $$st

# The CI torture job: the locktorture-style scenario matrix with the
# fault-injection hooks compiled in (reactive_chaos) and the race
# detector on. The dump/cmp pair pins the determinism contract — the
# same base seed must yield byte-identical schedules across separate
# invocations — and a failing case leaves torture_repro_<case>.json in
# the working directory for `go run ./cmd/torture -replay`.
TORTURE_OPS ?= 5000
torture:
	$(GO) vet -tags reactive_chaos ./...
	$(GO) test -tags reactive_chaos -race -short ./reactive/... ./internal/torture/
	$(GO) run -tags reactive_chaos ./cmd/torture -dump > torture_dump_a.json
	$(GO) run -tags reactive_chaos ./cmd/torture -dump > torture_dump_b.json
	cmp torture_dump_a.json torture_dump_b.json
	$(GO) run -tags reactive_chaos -race ./cmd/torture -workers 8 -ops $(TORTURE_OPS) -out .

# Native fuzz targets: first replay the checked-in seed corpus as
# ordinary tests (what every `go test` run does), then fuzz each target
# briefly so CI keeps exploring fresh interleavings.
FUZZTIME ?= 10s
fuzz-short:
	$(GO) test -run Fuzz ./reactive/internal/waitq/ ./reactive/modal/
	$(GO) test -run '^$$' -fuzz FuzzWaitqOps -fuzztime $(FUZZTIME) ./reactive/internal/waitq/
	$(GO) test -run '^$$' -fuzz FuzzEngineTransitions -fuzztime $(FUZZTIME) ./reactive/modal/

lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# The CI docs job: documentation that tests can check. The experiment
# index in EXPERIMENTS.md must stay in lockstep with the registered
# specs, the telemetry package must stay formatted and vetted, and
# every godoc Example (the runnable half of the docs) must still
# produce its documented output.
docs-check:
	$(GO) test -run TestExperimentIndexInSync ./internal/experiments
	$(GO) test -run TestTortureScenarioTableInSync ./internal/torture
	@out="$$(gofmt -l reactive/reactivehttp)"; if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./reactive/reactivehttp
	$(GO) test -run Example ./...
