// Benchmark harness: one testing.B benchmark per table and figure of the
// thesis's evaluation (see DESIGN.md's per-experiment index). Each
// iteration runs the corresponding experiment on the simulated machine and
// reports the simulated-cycle metric the paper plots as "simcycles/op" (or
// elapsed simulated cycles for whole-application experiments), so
//
//	go test -bench=. -benchmem
//
// regenerates every row/series of the evaluation. Host ns/op numbers
// measure only the simulator's speed and are not the reproduced quantity.
// Simulation runs are deterministic, so -benchtime 1x is sufficient and
// recommended: repeated iterations reproduce identical simulated cycles.
//
// BenchmarkExperimentMatrix additionally drives the whole registry
// through the parallel runner and, when BENCH_RESULTS_JSON is set,
// writes the machine-readable results document CI uploads as an
// artifact on every run — including the native-primitive measurements
// (reactive vs the standard library) from the BenchmarkNative* group,
// whose host ns/op numbers ARE the measured quantity.
package repro_test

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/waitanalysis"
	"repro/reactive"
	"repro/reactive/policy"
)

// BenchmarkExperimentMatrix runs every registered experiment at
// smoke scale across the bounded worker pool and reports matrix-level
// metrics. With BENCH_RESULTS_JSON=path it also writes the runner's
// JSON results document (the BENCH_* trajectory artifact).
func BenchmarkExperimentMatrix(b *testing.B) {
	sz := experiments.Tiny()
	specs := experiments.Default.Specs()
	var results []experiments.Result
	for i := 0; i < b.N; i++ {
		runner := experiments.Runner{Sizes: sz, Parallel: runtime.GOMAXPROCS(0)}
		results = runner.Run(specs)
	}
	if err := experiments.FirstErr(results); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(results)), "experiments")
	if path := os.Getenv("BENCH_RESULTS_JSON"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		defer f.Close()
		// Append the native-primitive measurements so the results
		// document tracks the adoptable library, not just the simulator.
		if err := experiments.WriteJSONNative(f, sz, results, experiments.NativePrimitives()); err != nil {
			b.Fatal(err)
		}
	}
}

// reportSim reports a simulated-cycles metric.
func reportSim(b *testing.B, cycles uint64, unit string) {
	b.ReportMetric(float64(cycles), unit)
}

// --- Chapter 3: protocol selection ---

func BenchmarkFig3_15_SpinLockBaseline(b *testing.B) {
	for _, proto := range experiments.LockProtocols() {
		for _, procs := range []int{1, 2, 4, 8, 16, 32} {
			b.Run(fmt.Sprintf("%s/p%d", proto, procs), func(b *testing.B) {
				var last uint64
				for i := 0; i < b.N; i++ {
					last = experiments.LockOverhead(proto, 32, procs, 25)
				}
				reportSim(b, last, "simcycles/cs")
			})
		}
	}
}

func BenchmarkFig3_15_FetchOpBaseline(b *testing.B) {
	for _, proto := range []string{"tts-lock", "queue-lock", "combining-tree", "reactive"} {
		for _, procs := range []int{1, 4, 16, 32} {
			b.Run(fmt.Sprintf("%s/p%d", proto, procs), func(b *testing.B) {
				var last uint64
				for i := 0; i < b.N; i++ {
					last = experiments.FopOverhead(proto, 32, procs, 25)
				}
				reportSim(b, last, "simcycles/op")
			})
		}
	}
}

func BenchmarkFig3_16_Prototype16(b *testing.B) {
	for _, proto := range []string{"test&set", "mcs-queue", "reactive"} {
		for _, procs := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("%s/p%d", proto, procs), func(b *testing.B) {
				var last uint64
				for i := 0; i < b.N; i++ {
					last = experiments.LockOverhead(proto, 16, procs, 40)
				}
				reportSim(b, last, "simcycles/cs")
			})
		}
	}
}

func BenchmarkFig3_2_DirNNB(b *testing.B) {
	b.Run("tts/limitless/p16", func(b *testing.B) {
		var last uint64
		for i := 0; i < b.N; i++ {
			last = experiments.LockOverhead("test&test&set", 32, 16, 25)
		}
		reportSim(b, last, "simcycles/cs")
	})
	b.Run("tts/fullmap/p16", func(b *testing.B) {
		var last uint64
		for i := 0; i < b.N; i++ {
			last = experiments.LockOverheadFullMap("test&test&set", 32, 16, 25)
		}
		reportSim(b, last, "simcycles/cs")
	})
}

func BenchmarkFig3_17_MultipleLocks(b *testing.B) {
	for pi, pat := range []string{"1", "5", "9"} {
		_ = pat
		for _, alg := range []string{"optimal", "test&set", "mcs-queue", "reactive"} {
			b.Run(fmt.Sprintf("pattern%s/%s", pat, alg), func(b *testing.B) {
				var last uint64
				for i := 0; i < b.N; i++ {
					last = experiments.MultiLockElapsed(pi*4, alg, 2048)
				}
				reportSim(b, last, "simcycles/run")
			})
		}
	}
}

func BenchmarkFig3_21_TimeVarying(b *testing.B) {
	for _, alg := range []string{"test&set", "mcs-queue", "reactive"} {
		for _, pct := range []int{10, 50, 90} {
			b.Run(fmt.Sprintf("%s/cont%d", alg, pct), func(b *testing.B) {
				var last uint64
				for i := 0; i < b.N; i++ {
					last = experiments.TimeVaryElapsed(alg, 1024, pct, 3)
				}
				reportSim(b, last, "simcycles/run")
			})
		}
	}
}

func BenchmarkFig3_22_Competitive(b *testing.B) {
	sz := experiments.Quick()
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = experiments.Fig3_22Competitive(sz)
		}
	})
}

func BenchmarkFig3_23_Hysteresis(b *testing.B) {
	sz := experiments.Quick()
	sz.TimeVaryPeriods = 2
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = experiments.Fig3_23Hysteresis(sz)
		}
	})
}

func BenchmarkFig3_24_FetchOpApps(b *testing.B) {
	sz := experiments.Quick()
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = experiments.Fig3_24FetchOpApps(sz)
		}
	})
}

func BenchmarkFig3_25_SpinLockApps(b *testing.B) {
	sz := experiments.Quick()
	b.Run("table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = experiments.Fig3_25SpinLockApps(sz)
		}
	})
}

func BenchmarkFig3_26_MessagePassing(b *testing.B) {
	for _, proto := range []string{"mcs-queue", "mp-queue"} {
		b.Run(fmt.Sprintf("lock/%s/p16", proto), func(b *testing.B) {
			var last uint64
			for i := 0; i < b.N; i++ {
				last = experiments.LockOverhead(proto, 32, 16, 25)
			}
			reportSim(b, last, "simcycles/cs")
		})
	}
	for _, proto := range []string{"combining-tree", "mp-central", "mp-combining-tree"} {
		b.Run(fmt.Sprintf("fop/%s/p16", proto), func(b *testing.B) {
			var last uint64
			for i := 0; i < b.N; i++ {
				last = experiments.FopOverhead(proto, 32, 16, 25)
			}
			reportSim(b, last, "simcycles/op")
		})
	}
}

// --- Chapter 4: waiting algorithms ---

func BenchmarkTable4_1_BlockingCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Table4_1BlockingCost()
	}
}

func BenchmarkFig4_4_ExpFactors(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = waitanalysis.ExpWorstFactor(waitanalysis.AlphaExpOptimal, 1)
	}
	b.ReportMetric(worst, "competitive-factor")
}

func BenchmarkFig4_5_UniformFactors(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = waitanalysis.UniformWorstFactor(waitanalysis.OptimalAlphaUniform(1), 1)
	}
	b.ReportMetric(worst, "competitive-factor")
}

func BenchmarkFig4_6to4_11_WaitProfiles(b *testing.B) {
	sz := experiments.Quick()
	for i := 0; i < b.N; i++ {
		_ = experiments.WaitProfiles(sz)
	}
}

func BenchmarkFig4_12_ProducerConsumer(b *testing.B) {
	sz := experiments.Quick()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig4_12ProducerConsumer(sz)
	}
}

func BenchmarkFig4_13_Barrier(b *testing.B) {
	sz := experiments.Quick()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig4_13Barrier(sz)
	}
}

func BenchmarkFig4_14_Mutex(b *testing.B) {
	sz := experiments.Quick()
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig4_14Mutex(sz)
	}
}

func BenchmarkTable4_6_HalfB(b *testing.B) {
	sz := experiments.Quick()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table4_6HalfB(sz)
	}
}

// --- Ablations (DESIGN.md §13) ---

func BenchmarkAblationOptimisticTAS(b *testing.B) {
	for _, proto := range []string{"reactive", "reactive-nonoptimistic"} {
		for _, procs := range []int{1, 16} {
			b.Run(fmt.Sprintf("%s/p%d", proto, procs), func(b *testing.B) {
				var last uint64
				for i := 0; i < b.N; i++ {
					last = experiments.LockOverhead(proto, 32, procs, 25)
				}
				reportSim(b, last, "simcycles/cs")
			})
		}
	}
}

func BenchmarkAblationBroadcastInvalidation(b *testing.B) {
	b.Run("tts/sequential/p16", func(b *testing.B) {
		var last uint64
		for i := 0; i < b.N; i++ {
			last = experiments.LockOverhead("test&test&set", 32, 16, 25)
		}
		reportSim(b, last, "simcycles/cs")
	})
	b.Run("tts/broadcast/p16", func(b *testing.B) {
		var last uint64
		for i := 0; i < b.N; i++ {
			last = experiments.LockOverheadBroadcast("test&test&set", 32, 16, 25)
		}
		reportSim(b, last, "simcycles/cs")
	})
}

func BenchmarkAblationCombiningPatience(b *testing.B) {
	for _, pat := range []uint64{40, 160, 640} {
		for _, procs := range []int{1, 32} {
			b.Run(fmt.Sprintf("patience%d/p%d", pat, procs), func(b *testing.B) {
				var last uint64
				for i := 0; i < b.N; i++ {
					last = experiments.CombTreePatienceOverhead(pat, 32, procs, 25)
				}
				reportSim(b, last, "simcycles/op")
			})
		}
	}
}

// --- Extension: reactive barrier (thesis §6.2 future work) ---

func BenchmarkExtensionReactiveBarrier(b *testing.B) {
	for _, proto := range []string{"central", "combining-tree", "reactive"} {
		for _, procs := range []int{4, 64} {
			b.Run(fmt.Sprintf("%s/p%d", proto, procs), func(b *testing.B) {
				var last uint64
				for i := 0; i < b.N; i++ {
					last = experiments.BarrierOverhead(proto, procs, 4)
				}
				reportSim(b, last, "simcycles/episode")
			})
		}
	}
}

func BenchmarkFig3_14_CompetitiveWorstCase(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = experiments.CompetitiveWorstCaseRatio(5000)
	}
	b.ReportMetric(ratio, "online/offline-ratio")
}

// --- Native primitives (package reactive vs the standard library) ---
//
// Unlike the simulator benchmarks above, these measure real host ns/op:
// the adoptable reactive library against its stdlib baseline, uncontended
// and contended, via testing.B's RunParallel harness. The bench_results
// artifact carries its own independent measurement of the same primitives
// (experiments.NativePrimitives: fixed 100k ops, 2×GOMAXPROCS goroutines,
// one wall-clock division) — the two harnesses differ by design, so
// expect their absolute ns/op to diverge; each is only comparable to
// itself across runs.

func BenchmarkNativeMutex(b *testing.B) {
	b.Run("uncontended/reactive", func(b *testing.B) {
		var m reactive.Mutex
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	b.Run("uncontended/sync.Mutex", func(b *testing.B) {
		var m sync.Mutex
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	// Carrying the congestion policy must be nearly free on the cheap
	// path: an uncontended Lock never calls Suboptimal, and the policy's
	// Quiescent state lets the primitive elide the Optimal bookkeeping,
	// so this row must track plain uncontended/reactive.
	b.Run("uncontended-congestion/reactive", func(b *testing.B) {
		m := reactive.New(reactive.WithPolicy(policy.NewCongestion()))
		for i := 0; i < b.N; i++ {
			m.Lock()
			m.Unlock()
		}
	})
	// The context-aware wrapper must be free: LockCtx(Background) on an
	// uncontended mutex is the same zero-allocation fast path as Lock.
	b.Run("lockctx-uncontended/reactive", func(b *testing.B) {
		var m reactive.Mutex
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if m.LockCtx(ctx) != nil {
				b.Fatal("uncontended LockCtx failed")
			}
			m.Unlock()
		}
	})
	b.Run("contended/reactive", func(b *testing.B) {
		var m reactive.Mutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				m.Lock()
				m.Unlock()
			}
		})
	})
	b.Run("contended/sync.Mutex", func(b *testing.B) {
		var m sync.Mutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				m.Lock()
				m.Unlock()
			}
		})
	})
	// Cancellation churn: contended lockers where every eighth
	// acquisition is a short TryLockFor that may expire mid-wait, so the
	// waiter-queue engine's handoff-or-abandon path (cancelled waiters
	// passing grants on) stays on the measured trajectory.
	b.Run("cancel-churn/reactive", func(b *testing.B) {
		m := reactive.New(reactive.WithPollIters(4)) // park quickly
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if i++; i%8 == 0 {
					if m.TryLockFor(50 * time.Microsecond) {
						m.Unlock()
					}
				} else {
					m.Lock()
					m.Unlock()
				}
			}
		})
	})
}

func BenchmarkNativeCounter(b *testing.B) {
	b.Run("uncontended/reactive", func(b *testing.B) {
		var c reactive.Counter
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("uncontended/atomic.Int64", func(b *testing.B) {
		var c atomic.Int64
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("contended/reactive", func(b *testing.B) {
		var c reactive.Counter
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
	})
	b.Run("contended/atomic.Int64", func(b *testing.B) {
		var c atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
	})
}

// BenchmarkNativeFetchOp measures the N=3 fetch-op across its three
// regimes, against the atomic.Int64 baseline: serial Applies (the CAS
// protocol's regime), parallel write-only Applies (the sharded
// protocol's regime), and parallel Applies with periodic reconciling
// Values (the combining protocol's regime). The reported switches metric
// confirms which protocol the accumulator settled in, so the
// bench_results trajectory captures the three-way crossover.
func BenchmarkNativeFetchOp(b *testing.B) {
	add := func(a, x int64) int64 { return a + x }
	b.Run("cas-regime/reactive", func(b *testing.B) {
		f := reactive.NewFetchOp(add, 0)
		for i := 0; i < b.N; i++ {
			f.Apply(1)
		}
		b.ReportMetric(float64(f.Stats().Mode), "endmode")
	})
	b.Run("cas-regime/atomic.Int64", func(b *testing.B) {
		var c atomic.Int64
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	})
	b.Run("sharded-regime/reactive", func(b *testing.B) {
		f := reactive.NewFetchOp(add, 0)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				f.Apply(1)
			}
		})
		b.ReportMetric(float64(f.Stats().Mode), "endmode")
	})
	b.Run("sharded-regime/atomic.Int64", func(b *testing.B) {
		var c atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Add(1)
			}
		})
	})
	b.Run("combining-regime/reactive", func(b *testing.B) {
		f := reactive.NewFetchOp(add, 0)
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				f.Apply(1)
				if i++; i%64 == 0 {
					f.Value()
				}
			}
		})
		b.ReportMetric(float64(f.Stats().Mode), "endmode")
	})
	b.Run("combining-regime/atomic.Int64", func(b *testing.B) {
		var c atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				c.Add(1)
				if i++; i%64 == 0 {
					c.Load()
				}
			}
		})
	})
	// Forced-regime variants: WithInitialMode pins the protocol under
	// measurement, so the sharded/combining fast paths are exercised
	// even on hosts whose parallelism never triggers detection.
	b.Run("sharded-forced/reactive", func(b *testing.B) {
		f := reactive.NewFetchOp(add, 0, reactive.WithInitialMode(reactive.ModeSharded))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				f.Apply(1)
			}
		})
		b.ReportMetric(float64(f.Stats().Mode), "endmode")
	})
	b.Run("combining-forced/reactive", func(b *testing.B) {
		f := reactive.NewFetchOp(add, 0,
			reactive.WithInitialMode(reactive.ModeCombining), reactive.WithEmptyLimit(1<<30))
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				f.Apply(1)
				if i++; i%64 == 0 {
					f.Value()
				}
			}
		})
		b.ReportMetric(float64(f.Stats().Mode), "endmode")
	})
	// Congestion-policy variant of the forced sharded row: same fast
	// path, with policy.Congestion installed instead of the built-in
	// streak detection. Apply-only sharded traffic generates no
	// scale-down votes, so the row is mode-stable on any host and prices
	// exactly the cost of carrying the feedback-control policy (its
	// Quiescent elision included) on the per-P fast path.
	b.Run("sharded-forced-congestion/reactive", func(b *testing.B) {
		f := reactive.NewFetchOp(add, 0,
			reactive.WithInitialMode(reactive.ModeSharded),
			reactive.WithPolicy(policy.NewCongestion()))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				f.Apply(1)
			}
		})
		b.ReportMetric(float64(f.Stats().Mode), "endmode")
	})
}

// BenchmarkNativeRWMutex measures the reactive reader/writer lock
// against sync.RWMutex. Beyond the original uncontended/contended
// pair, the read-heavy parallel-scaling variants exercise the regimes
// the BRAVO-style sharded reader registration targets: pure parallel
// reads (read-contended), oversubscribed parallel reads
// (read-parallel-4x, 4 goroutines per P), and a 1-in-128-writes mix
// (read-mostly) that keeps writer drains in the loop. The readermode
// metric records the registration protocol the lock settled in
// (2 = centralized CAS word, 3 = sharded per-P slots).
func BenchmarkNativeRWMutex(b *testing.B) {
	readerMode := func(b *testing.B, rw *reactive.RWMutex) {
		b.ReportMetric(float64(rw.Stats().Readers.Mode), "readermode")
	}
	b.Run("read-uncontended/reactive", func(b *testing.B) {
		var rw reactive.RWMutex
		for i := 0; i < b.N; i++ {
			rw.RLock()
			rw.RUnlock()
		}
		readerMode(b, &rw)
	})
	b.Run("read-uncontended/sync.RWMutex", func(b *testing.B) {
		var rw sync.RWMutex
		for i := 0; i < b.N; i++ {
			rw.RLock()
			rw.RUnlock()
		}
	})
	// Congestion policy on the reader wait protocol (WithPolicy governs
	// only that engine; registration keeps its own detection): the
	// uncontended RLock fast path must not pay for the installed policy.
	b.Run("read-uncontended-congestion/reactive", func(b *testing.B) {
		rw := reactive.NewRWMutex(reactive.WithPolicy(policy.NewCongestion()))
		for i := 0; i < b.N; i++ {
			rw.RLock()
			rw.RUnlock()
		}
		readerMode(b, rw)
	})
	b.Run("read-contended/reactive", func(b *testing.B) {
		var rw reactive.RWMutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rw.RLock()
				rw.RUnlock()
			}
		})
		readerMode(b, &rw)
	})
	b.Run("read-contended/sync.RWMutex", func(b *testing.B) {
		var rw sync.RWMutex
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rw.RLock()
				rw.RUnlock()
			}
		})
	})
	b.Run("read-parallel-4x/reactive", func(b *testing.B) {
		var rw reactive.RWMutex
		b.SetParallelism(4)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rw.RLock()
				rw.RUnlock()
			}
		})
		readerMode(b, &rw)
	})
	b.Run("read-parallel-4x/sync.RWMutex", func(b *testing.B) {
		var rw sync.RWMutex
		b.SetParallelism(4)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rw.RLock()
				rw.RUnlock()
			}
		})
	})
	b.Run("read-mostly/reactive", func(b *testing.B) {
		var rw reactive.RWMutex
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if i++; i%128 == 0 {
					rw.Lock()
					rw.Unlock()
				} else {
					rw.RLock()
					rw.RUnlock()
				}
			}
		})
		readerMode(b, &rw)
	})
	b.Run("read-mostly/sync.RWMutex", func(b *testing.B) {
		var rw sync.RWMutex
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				if i++; i%128 == 0 {
					rw.Lock()
					rw.Unlock()
				} else {
					rw.RLock()
					rw.RUnlock()
				}
			}
		})
	})
	b.Run("read-sharded-forced/reactive", func(b *testing.B) {
		rw := reactive.NewRWMutex(reactive.WithInitialMode(reactive.ModeSharded))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rw.RLock()
				rw.RUnlock()
			}
		})
		readerMode(b, rw)
	})
	// The epoch registration fast path: RLock publishes only a per-P
	// stamp and loads one shared gate word it never stores to, so this
	// row prices a read with zero shared-cacheline writes. Reader-only
	// traffic generates no grace periods, so the row is mode-stable on
	// any host.
	b.Run("read-epoch-forced/reactive", func(b *testing.B) {
		rw := reactive.NewRWMutex(reactive.WithInitialReaderMode(reactive.ModeEpoch))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rw.RLock()
				rw.RUnlock()
			}
		})
		readerMode(b, rw)
	})
	// Congestion-policy variant of the forced epoch row: WithPolicy
	// governs only the reader *wait* engine, so the epoch read fast
	// path must not pay for the installed feedback-control policy.
	b.Run("read-epoch-forced-congestion/reactive", func(b *testing.B) {
		rw := reactive.NewRWMutex(reactive.WithInitialReaderMode(reactive.ModeEpoch),
			reactive.WithPolicy(policy.NewCongestion()))
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				rw.RLock()
				rw.RUnlock()
			}
		})
		readerMode(b, rw)
	})
}

// BenchmarkNativeMap prices the adaptive hash map's lookup path in each
// of its three protocols against sync.Map and a plain mutex-guarded map,
// over a warm 128-key table. The forcing options pin each protocol for
// the measurement (a huge SpinFailLimit blocks promotion, a huge
// EmptyLimit blocks demotion) so every row is one protocol's read path,
// not a mode mix. The read-4x rows run pure readers at 4-way
// parallelism (GOMAXPROCS is raised to 4 for the row on smaller hosts,
// so the parallelism is scheduling-real everywhere): the epoch row's
// published-table lookup (per-P stamp, no shared-cacheline write, no
// lock) is the row the locked protocol's single lock word cannot
// approach — the gap is the map's reason to climb the chain.
func BenchmarkNativeMap(b *testing.B) {
	const mapKeys = 128
	fill := func(m *reactive.Map[uint64, uint64]) *reactive.Map[uint64, uint64] {
		for k := uint64(0); k < mapKeys; k++ {
			m.Put(k, k)
		}
		return m
	}
	mapMode := func(b *testing.B, m *reactive.Map[uint64, uint64]) {
		b.ReportMetric(float64(m.Stats().Mode), "mapmode")
	}
	// run4x drives body from 4-way-parallel readers. On hosts with
	// GOMAXPROCS < 4 the procs are raised for the row's duration:
	// without real scheduling parallelism the locked protocol's
	// contention (the gap these rows exist to price) is invisible.
	run4x := func(b *testing.B, body func(pb *testing.PB)) {
		if prev := runtime.GOMAXPROCS(0); prev < 4 {
			runtime.GOMAXPROCS(4)
			defer runtime.GOMAXPROCS(prev)
		}
		b.SetParallelism(4)
		b.RunParallel(body)
	}

	b.Run("get-locked/reactive", func(b *testing.B) {
		m := fill(reactive.NewMap[uint64, uint64](reactive.WithSpinFailLimit(1 << 30)))
		for i := 0; i < b.N; i++ {
			m.Get(uint64(i) % mapKeys)
		}
		mapMode(b, m)
	})
	b.Run("get-sharded-forced/reactive", func(b *testing.B) {
		m := fill(reactive.NewMap[uint64, uint64](reactive.WithInitialMode(reactive.ModeSharded),
			reactive.WithSpinFailLimit(1<<30), reactive.WithEmptyLimit(1<<30)))
		for i := 0; i < b.N; i++ {
			m.Get(uint64(i) % mapKeys)
		}
		mapMode(b, m)
	})
	b.Run("get-epoch-forced/reactive", func(b *testing.B) {
		m := fill(reactive.NewMap[uint64, uint64](reactive.WithInitialMode(reactive.ModeEpoch),
			reactive.WithEmptyLimit(1<<30)))
		for i := 0; i < b.N; i++ {
			m.Get(uint64(i) % mapKeys)
		}
		mapMode(b, m)
	})
	b.Run("get/sync.Map", func(b *testing.B) {
		var m sync.Map
		for k := uint64(0); k < mapKeys; k++ {
			m.Store(k, k)
		}
		for i := 0; i < b.N; i++ {
			m.Load(uint64(i) % mapKeys)
		}
	})
	b.Run("get/mutex-map", func(b *testing.B) {
		m := make(map[uint64]uint64, mapKeys)
		for k := uint64(0); k < mapKeys; k++ {
			m[k] = k
		}
		var mu sync.Mutex
		for i := 0; i < b.N; i++ {
			mu.Lock()
			_ = m[uint64(i)%mapKeys]
			mu.Unlock()
		}
	})
	b.Run("read-4x-locked/reactive", func(b *testing.B) {
		m := fill(reactive.NewMap[uint64, uint64](reactive.WithSpinFailLimit(1 << 30)))
		run4x(b, func(pb *testing.PB) {
			i := uint64(0)
			for pb.Next() {
				m.Get(i % mapKeys)
				i++
			}
		})
		mapMode(b, m)
	})
	b.Run("read-4x-sharded-forced/reactive", func(b *testing.B) {
		m := fill(reactive.NewMap[uint64, uint64](reactive.WithInitialMode(reactive.ModeSharded),
			reactive.WithSpinFailLimit(1<<30), reactive.WithEmptyLimit(1<<30)))
		run4x(b, func(pb *testing.PB) {
			i := uint64(0)
			for pb.Next() {
				m.Get(i % mapKeys)
				i++
			}
		})
		mapMode(b, m)
	})
	b.Run("read-4x-epoch-forced/reactive", func(b *testing.B) {
		m := fill(reactive.NewMap[uint64, uint64](reactive.WithInitialMode(reactive.ModeEpoch),
			reactive.WithEmptyLimit(1<<30)))
		run4x(b, func(pb *testing.PB) {
			i := uint64(0)
			for pb.Next() {
				m.Get(i % mapKeys)
				i++
			}
		})
		mapMode(b, m)
	})
	b.Run("read-4x/sync.Map", func(b *testing.B) {
		var m sync.Map
		for k := uint64(0); k < mapKeys; k++ {
			m.Store(k, k)
		}
		run4x(b, func(pb *testing.PB) {
			i := uint64(0)
			for pb.Next() {
				m.Load(i % mapKeys)
				i++
			}
		})
	})
	b.Run("read-4x/mutex-map", func(b *testing.B) {
		m := make(map[uint64]uint64, mapKeys)
		for k := uint64(0); k < mapKeys; k++ {
			m[k] = k
		}
		var mu sync.Mutex
		run4x(b, func(pb *testing.PB) {
			i := uint64(0)
			for pb.Next() {
				mu.Lock()
				_ = m[i%mapKeys]
				mu.Unlock()
				i++
			}
		})
	})
}
