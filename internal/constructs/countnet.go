package constructs

import (
	"repro/internal/memsys"
	"repro/internal/threads"
	"repro/internal/waiting"
)

// CountingNetwork is a bitonic counting network (Aspnes, Herlihy, Shavit)
// of width w: tokens traverse stages of two-input balancers and finish by
// fetch&adding a per-wire counter, together yielding the values
// 0, 1, 2, ... with low contention per balancer. Each balancer's toggle bit
// is protected by a Mutex, making this the “CountNet” mutex benchmark of
// Section 4.6.2: many small, frequently-acquired critical sections.
type CountingNetwork struct {
	width  int
	stages [][]balancer
	wires  []memsys.Addr // per-output-wire counters

	// Balancers counts traversal steps (stats).
	Balancers uint64
}

type balancer struct {
	lo, hi int // input/output wire indices (lo < hi)
	top    int // output wire that receives the first token (direction)
	mu     *Mutex
	toggle memsys.Addr
}

// NewCountingNetwork builds a bitonic network of the given width (a power
// of two). Balancer state is striped across the machine's nodes.
func NewCountingNetwork(mem *memsys.System, width int) *CountingNetwork {
	if width <= 0 || width&(width-1) != 0 {
		panic("constructs: counting network width must be a power of two")
	}
	n := &CountingNetwork{width: width}
	procs := mem.Config().NumNodes
	home := 0
	// Batcher's bitonic construction: stage loop over (k, j); a comparator
	// (i, i^j) with i < i^j becomes a balancer.
	for k := 2; k <= width; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			var stage []balancer
			for i := 0; i < width; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				b := balancer{
					lo:     i,
					hi:     l,
					top:    i,
					mu:     NewMutex(mem, home%procs),
					toggle: mem.Alloc(home%procs, 1),
				}
				if i&k != 0 {
					// Descending comparator block: the balancer's "top"
					// output (first-token target) is the high wire.
					b.top = l
				}
				home++
				stage = append(stage, b)
			}
			n.stages = append(n.stages, stage)
		}
	}
	n.wires = mem.AllocStriped(width)
	return n
}

// Width returns the network width.
func (n *CountingNetwork) Width() int { return n.width }

// Depth returns the number of balancer stages.
func (n *CountingNetwork) Depth() int { return len(n.stages) }

// Next issues the next counter value to the calling thread: traverse the
// network from input wire (threadID mod width), then fetch&add the output
// wire's counter. The returned values across all concurrent callers are a
// permutation of 0..N-1 (the counting property).
func (n *CountingNetwork) Next(t *threads.Thread, alg waiting.Algorithm) uint64 {
	wire := t.ProcID() % n.width
	for _, stage := range n.stages {
		for _, b := range stage {
			if b.lo != wire && b.hi != wire {
				continue
			}
			b.mu.Lock(t, alg)
			n.Balancers++
			tog := t.Read(b.toggle)
			t.Write(b.toggle, 1-tog)
			b.mu.Unlock(t)
			other := b.lo + b.hi - b.top
			if tog == 0 {
				wire = b.top
			} else {
				wire = other
			}
			break
		}
	}
	v := t.FetchAndAdd(n.wires[wire], 1)
	return v*uint64(n.width) + uint64(wire)
}
