package constructs

import (
	"sort"
	"testing"

	"repro/internal/machine"
	"repro/internal/threads"
	"repro/internal/waiting"
)

func newSched(procs int) *threads.Scheduler {
	return threads.NewScheduler(machine.New(machine.DefaultConfig(procs)), threads.DefaultCosts())
}

func algorithms() []waiting.Algorithm {
	costs := threads.DefaultCosts()
	return []waiting.Algorithm{
		&waiting.AlwaysSpin{},
		&waiting.AlwaysBlock{},
		waiting.NewTwoPhaseAlpha(0.54, costs),
		waiting.NewTwoPhaseAlpha(1.0, costs),
		&waiting.SwitchSpin{},
		&waiting.TwoPhaseSwitch{Lpoll: 250},
	}
}

func TestFutureAllAlgorithms(t *testing.T) {
	for _, alg := range algorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			s := newSched(4)
			f := NewFuture(s.Machine().Mem, 0)
			var got uint64
			s.Spawn(0, 0, "consumer", func(th *threads.Thread) {
				got = f.Touch(th, alg)
			})
			// A second thread on the consumer's processor so blocking has
			// somewhere to switch to.
			s.Spawn(0, 0, "filler", func(th *threads.Thread) {
				for i := 0; i < 30; i++ {
					th.Advance(300)
					th.Yield()
				}
			})
			s.Spawn(1, 0, "producer", func(th *threads.Thread) {
				th.Advance(4000)
				f.Resolve(th, 99)
			})
			if err := s.Machine().Run(); err != nil {
				t.Fatal(err)
			}
			if got != 99 {
				t.Fatalf("touched %d, want 99", got)
			}
		})
	}
}

func TestFutureAlreadyResolvedIsFast(t *testing.T) {
	s := newSched(2)
	f := NewFuture(s.Machine().Mem, 0)
	s.Spawn(0, 0, "producer", func(th *threads.Thread) {
		f.Resolve(th, 7)
	})
	s.Spawn(1, 2000, "consumer", func(th *threads.Thread) {
		start := th.Now()
		v := f.Touch(th, &waiting.AlwaysBlock{})
		if v != 7 {
			t.Errorf("value %d", v)
		}
		if th.Now()-start > 100 {
			t.Errorf("touch of resolved future cost %d cycles", th.Now()-start)
		}
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestJStructurePipeline(t *testing.T) {
	for _, alg := range algorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			s := newSched(4)
			j := NewJStructure(s.Machine().Mem, 32)
			sum := uint64(0)
			s.Spawn(0, 0, "writer", func(th *threads.Thread) {
				for i := 0; i < 32; i++ {
					th.Advance(200) // compute
					j.Write(th, i, uint64(i*i))
				}
			})
			s.Spawn(1, 0, "reader", func(th *threads.Thread) {
				for i := 0; i < 32; i++ {
					sum += j.Read(th, i, alg)
				}
			})
			s.Spawn(1, 0, "filler", func(th *threads.Thread) {
				for i := 0; i < 20; i++ {
					th.Advance(200)
					th.Yield()
				}
			})
			if err := s.Machine().Run(); err != nil {
				t.Fatal(err)
			}
			want := uint64(0)
			for i := 0; i < 32; i++ {
				want += uint64(i * i)
			}
			if sum != want {
				t.Fatalf("sum %d, want %d", sum, want)
			}
		})
	}
}

func TestBarrierRounds(t *testing.T) {
	for _, alg := range algorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			const procs, rounds = 6, 8
			s := newSched(procs)
			b := NewBarrier(s.Machine().Mem, 0, procs)
			counts := make([]int, rounds)
			for p := 0; p < procs; p++ {
				p := p
				s.Spawn(p, 0, "w", func(th *threads.Thread) {
					for r := 0; r < rounds; r++ {
						th.Advance(machine.Time(th.Rand().Intn(2000)))
						// No one may enter round r+1 until all have
						// finished round r.
						counts[r]++
						b.Wait(th, alg)
						if counts[r] != procs {
							t.Errorf("%s: round %d entered with %d/%d arrivals (p%d)",
								alg.Name(), r, counts[r], procs, p)
						}
					}
				})
			}
			if err := s.Machine().Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMutexExclusionAllAlgorithms(t *testing.T) {
	for _, alg := range algorithms() {
		alg := alg
		t.Run(alg.Name(), func(t *testing.T) {
			const procs = 6
			s := newSched(procs)
			m := NewMutex(s.Machine().Mem, 0)
			inCS := false
			total := 0
			for p := 0; p < procs; p++ {
				s.Spawn(p, 0, "w", func(th *threads.Thread) {
					for i := 0; i < 15; i++ {
						m.Lock(th, alg)
						if inCS {
							t.Errorf("%s: mutual exclusion violated", alg.Name())
						}
						inCS = true
						th.Advance(100)
						inCS = false
						m.Unlock(th)
						th.Advance(machine.Time(th.Rand().Intn(400)))
					}
					total += 15
				})
			}
			if err := s.Machine().Run(); err != nil {
				t.Fatal(err)
			}
			if total != procs*15 {
				t.Fatalf("completed %d", total)
			}
		})
	}
}

func TestCountingNetworkPermutation(t *testing.T) {
	const procs, iters = 8, 12
	s := newSched(procs)
	n := NewCountingNetwork(s.Machine().Mem, 8)
	var got []uint64
	for p := 0; p < procs; p++ {
		s.Spawn(p, 0, "tok", func(th *threads.Thread) {
			for i := 0; i < iters; i++ {
				got = append(got, n.Next(th, &waiting.AlwaysSpin{}))
				th.Advance(machine.Time(th.Rand().Intn(200)))
			}
		})
	}
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("counting property violated at %d: got %d (values %v...)", i, v, got[:min(len(got), 20)])
		}
	}
}

func TestCountingNetworkDepth(t *testing.T) {
	s := newSched(2)
	n := NewCountingNetwork(s.Machine().Mem, 8)
	// Bitonic[8] has depth 1+2+3 = 6 stages.
	if n.Depth() != 6 {
		t.Fatalf("depth = %d, want 6", n.Depth())
	}
	if n.Width() != 8 {
		t.Fatalf("width = %d", n.Width())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
