// Package constructs provides the higher-level synchronization types the
// thesis's waiting-algorithm experiments exercise (Section 4.6.1): futures
// and J-structures (producer-consumer, built on full/empty bits), barriers,
// mutexes, and counting networks. Every construct is parameterized by a
// waiting.Algorithm so the experiments can swap always-spin, always-block,
// and two-phase waiting without touching the benchmark code.
package constructs

import (
	"repro/internal/memsys"
	"repro/internal/threads"
	"repro/internal/waiting"
)

// Future is a single-assignment cell with a full/empty bit: the
// producer-consumer synchronization of futures in Mul-T (Section 4.4.3).
// Multiple consumers may touch it; one producer resolves it.
type Future struct {
	cell memsys.Addr
	q    threads.WaitQueue
}

// NewFuture allocates a future homed on node home.
func NewFuture(mem *memsys.System, home int) *Future {
	f := &Future{cell: mem.Alloc(home, 1)}
	mem.SetEmpty(f.cell)
	return f
}

// Resolve writes the value, sets the full bit, and wakes blocked consumers.
func (f *Future) Resolve(t *threads.Thread, v uint64) {
	t.WriteFull(f.cell, v)
	f.q.WakeAll(t)
}

// Resolved reports whether the future has been resolved (no waiting).
func (f *Future) Resolved(t *threads.Thread) bool {
	_, full := t.ReadFE(f.cell)
	return full
}

// Touch waits (with alg) until the future is resolved and returns its
// value. The poll is a read of the full/empty-tagged word, which caches
// until the producer's write invalidates it.
func (f *Future) Touch(t *threads.Thread, alg waiting.Algorithm) uint64 {
	alg.Wait(t, func() bool {
		_, full := t.ReadFE(f.cell)
		return full
	}, &f.q)
	v, _ := t.ReadFE(f.cell)
	return v
}

// JStructure is an array of single-assignment elements with full/empty
// bits (I-structure-like; Section 4.6.1). Readers of empty elements wait.
type JStructure struct {
	cells []memsys.Addr
	qs    []threads.WaitQueue
}

// NewJStructure allocates n elements striped across the machine's nodes.
func NewJStructure(mem *memsys.System, n int) *JStructure {
	j := &JStructure{
		cells: mem.AllocStriped(n),
		qs:    make([]threads.WaitQueue, n),
	}
	for _, c := range j.cells {
		mem.SetEmpty(c)
	}
	return j
}

// Len returns the number of elements.
func (j *JStructure) Len() int { return len(j.cells) }

// Write fills element i and wakes its waiting readers.
func (j *JStructure) Write(t *threads.Thread, i int, v uint64) {
	t.WriteFull(j.cells[i], v)
	j.qs[i].WakeAll(t)
}

// Read waits until element i is full and returns it.
func (j *JStructure) Read(t *threads.Thread, i int, alg waiting.Algorithm) uint64 {
	alg.Wait(t, func() bool {
		_, full := t.ReadFE(j.cells[i])
		return full
	}, &j.qs[i])
	v, _ := t.ReadFE(j.cells[i])
	return v
}

// Barrier is a centralized phase-counting barrier: arrivals fetch&add a
// counter; the last arrival advances the phase word (invalidating pollers'
// cached copies) and wakes blocked waiters.
type Barrier struct {
	n     int
	count memsys.Addr
	phase memsys.Addr
	q     threads.WaitQueue
}

// NewBarrier builds a barrier for n participants, homed on node home.
func NewBarrier(mem *memsys.System, home int, n int) *Barrier {
	return &Barrier{
		n:     n,
		count: mem.Alloc(home, 1),
		phase: mem.Alloc(home, 1),
	}
}

// Wait blocks until all n participants have arrived.
func (b *Barrier) Wait(t *threads.Thread, alg waiting.Algorithm) {
	p := t.Read(b.phase)
	pos := t.FetchAndAdd(b.count, 1)
	if pos == uint64(b.n-1) {
		t.Write(b.count, 0)
		t.Write(b.phase, p+1)
		b.q.WakeAll(t)
		return
	}
	alg.Wait(t, func() bool { return t.Read(b.phase) != p }, &b.q)
}

// Mutex is a test-and-set mutual-exclusion lock whose waiting is delegated
// to a waiting algorithm (lock waiters are not queued — the mutex model of
// Section 4.4.3's analysis).
type Mutex struct {
	flag memsys.Addr
	q    threads.WaitQueue
}

// NewMutex allocates a mutex homed on node home.
func NewMutex(mem *memsys.System, home int) *Mutex {
	return &Mutex{flag: mem.Alloc(home, 1)}
}

// Lock acquires the mutex, waiting with alg while it is held.
func (m *Mutex) Lock(t *threads.Thread, alg waiting.Algorithm) {
	for {
		if t.TestAndSet(m.flag) == 0 {
			return
		}
		alg.Wait(t, func() bool { return t.Read(m.flag) == 0 }, &m.q)
	}
}

// Unlock releases the mutex and wakes one blocked waiter, if any.
func (m *Mutex) Unlock(t *threads.Thread) {
	t.Write(m.flag, 0)
	m.q.WakeOne(t)
}

// TryLock attempts the lock once without waiting.
func (m *Mutex) TryLock(t *threads.Thread) bool {
	return t.TestAndSet(m.flag) == 0
}
