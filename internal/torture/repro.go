package torture

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/reactive/chaos"
)

// ReproVersion is the artifact format version. Bump it when the layout
// or the meaning of a field changes; DecodeRepro rejects other
// versions rather than silently replaying a different experiment.
const ReproVersion = "torture/v1"

// Repro is the complete, replayable description of one torture run:
// the case, the derived seed every worker op stream comes from, the
// fleet shape, and the chaos fault schedule. Encoding is canonical
// (json.MarshalIndent with fixed field order), so two derivations of
// the same run are byte-identical — the determinism contract cmd
// torture's tests pin.
type Repro struct {
	Version    string          `json:"version"`
	Case       string          `json:"case"`
	Seed       uint64          `json:"seed"` // derived case seed, not the base seed
	Workers    int             `json:"workers"`
	Ops        int             `json:"ops"` // per worker
	GOMAXPROCS int             `json:"gomaxprocs"`
	ChaosBuilt bool            `json:"chaos_built"` // emitting binary had fault hooks compiled in
	Schedule   *chaos.Schedule `json:"schedule"`
}

// NewRepro derives the run descriptor for one case: the case seed is
// experiments.ExperimentSeed(base, "torture/"+name) — the same
// derivation the experiment matrix uses, so a torture case's seed is
// stable across runs and distinct across cases — and the fault
// schedule is the full-catalog schedule for that seed.
func NewRepro(name string, base uint64, workers, ops int) (*Repro, error) {
	if _, ok := lookup(name); !ok {
		return nil, fmt.Errorf("torture: unknown case %q", name)
	}
	if workers < 1 || ops < 1 {
		return nil, fmt.Errorf("torture: need at least 1 worker and 1 op, got %d/%d", workers, ops)
	}
	seed := experiments.ExperimentSeed(base, "torture/"+name)
	return &Repro{
		Version:    ReproVersion,
		Case:       name,
		Seed:       seed,
		Workers:    workers,
		Ops:        ops,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		ChaosBuilt: chaos.Built,
		Schedule:   chaos.New(seed),
	}, nil
}

// Encode renders the artifact canonically. Same Repro, same bytes.
func (r *Repro) Encode() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// DecodeRepro parses and validates an artifact: version and case must
// be known, the fleet shape positive, and the schedule present (its
// rules are re-clamped to the injection bounds, so a hand-edited
// artifact cannot smuggle in an unbounded stall).
func DecodeRepro(b []byte) (*Repro, error) {
	var r Repro
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("torture: bad repro artifact: %w", err)
	}
	if r.Version != ReproVersion {
		return nil, fmt.Errorf("torture: repro version %q, this binary speaks %q", r.Version, ReproVersion)
	}
	if _, ok := lookup(r.Case); !ok {
		return nil, fmt.Errorf("torture: repro names unknown case %q", r.Case)
	}
	if r.Workers < 1 || r.Ops < 1 {
		return nil, fmt.Errorf("torture: repro has empty fleet shape %d/%d", r.Workers, r.Ops)
	}
	if r.Schedule == nil {
		return nil, fmt.Errorf("torture: repro has no fault schedule")
	}
	enc, err := r.Schedule.Encode()
	if err != nil {
		return nil, fmt.Errorf("torture: repro schedule: %w", err)
	}
	if r.Schedule, err = chaos.Decode(enc); err != nil {
		return nil, fmt.Errorf("torture: repro schedule: %w", err)
	}
	return &r, nil
}

// Run executes the described run: the Repro's schedule (not a freshly
// derived one — replay must honor a hand-carried artifact) is armed for
// the duration, the case's fleet runs with op streams seeded from
// r.Seed, and the per-point fault hit counts come back in the Result.
// guard bounds the whole fleet drain; <= 0 disables the watchdog.
func (r *Repro) Run(guard time.Duration) Result {
	start := time.Now()
	res := Result{Case: r.Case, Seed: r.Seed}
	c, ok := lookup(r.Case)
	if !ok {
		res.Err = fmt.Errorf("torture: unknown case %q", r.Case)
		return res
	}
	chaos.Enable(r.Schedule) // no-op without the reactive_chaos build tag
	defer chaos.Disable()
	res.Err = c.run(runCtx{seed: r.Seed, workers: r.Workers, ops: r.Ops, guard: guard})
	res.Points = chaos.Stats()
	res.Elapsed = time.Since(start)
	return res
}
