package torture

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// experimentsDoc locates the repository-level EXPERIMENTS.md relative
// to this package (the same layout assumption as the experiment
// registry's and loadsvc's doc-sync tests).
const experimentsDoc = "../../EXPERIMENTS.md"

// caseRow matches a table row of the torture matrix whose first cell
// is a backticked case name: | `mutex/flip-storm` | ... |
var caseRow = regexp.MustCompile("^\\| *`([^`]+)` *\\|")

// readCaseTable parses the "## Torture scenarios" section of
// EXPERIMENTS.md and returns the case names its table documents, in
// order.
func readCaseTable(t *testing.T) []string {
	t.Helper()
	f, err := os.Open(filepath.FromSlash(experimentsDoc))
	if err != nil {
		t.Fatalf("EXPERIMENTS.md not readable: %v", err)
	}
	defer f.Close()

	var names []string
	inSection := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "## ") {
			inSection = strings.HasPrefix(line, "## Torture scenarios")
			continue
		}
		if !inSection {
			continue
		}
		if m := caseRow.FindStringSubmatch(line); m != nil {
			names = append(names, m[1])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return names
}

// TestTortureScenarioTableInSync keeps EXPERIMENTS.md honest the way
// TestLoadScenarioTableInSync does for the load matrix: every
// registered torture case must have a row in the "## Torture
// scenarios" table, in canonical (sorted) order, and every row must
// name a real case.
func TestTortureScenarioTableInSync(t *testing.T) {
	documented := readCaseTable(t)
	if len(documented) == 0 {
		t.Fatal("EXPERIMENTS.md has no '## Torture scenarios' table rows")
	}
	registered := Cases()
	if len(documented) != len(registered) {
		var names []string
		for _, c := range registered {
			names = append(names, c.Name)
		}
		t.Fatalf("EXPERIMENTS.md documents %d cases, matrix has %d:\ndoc: %v\ngot: %v",
			len(documented), len(registered), documented, names)
	}
	for i, c := range registered {
		if documented[i] != c.Name {
			t.Errorf("row %d: EXPERIMENTS.md says %q, matrix says %q (order is canonical)",
				i, documented[i], c.Name)
		}
	}
}
