package torture

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

func TestCaseRegistryWellFormed(t *testing.T) {
	cs := Cases()
	if len(cs) < 8 {
		t.Fatalf("registry has %d cases, want the full primitive × flavor matrix", len(cs))
	}
	seen := map[string]bool{}
	prims := map[string]bool{}
	for _, c := range cs {
		if seen[c.Name] {
			t.Errorf("duplicate case %q", c.Name)
		}
		seen[c.Name] = true
		prim, _, ok := strings.Cut(c.Name, "/")
		if !ok {
			t.Errorf("case %q is not primitive/flavor", c.Name)
		}
		prims[prim] = true
		if c.Desc == "" || c.run == nil {
			t.Errorf("case %q missing desc or body", c.Name)
		}
	}
	for _, p := range []string{"mutex", "rwmutex", "counter", "fetchop"} {
		if !prims[p] {
			t.Errorf("no case tortures %s", p)
		}
	}
}

// TestReproDeterministic pins the replay contract: deriving the same
// run twice yields byte-identical artifacts, and an artifact survives a
// decode/encode round trip unchanged.
func TestReproDeterministic(t *testing.T) {
	for _, c := range Cases() {
		r1, err := NewRepro(c.Name, experiments.DefaultSeed, 4, 100)
		if err != nil {
			t.Fatal(err)
		}
		r2, _ := NewRepro(c.Name, experiments.DefaultSeed, 4, 100)
		b1, err := r1.Encode()
		if err != nil {
			t.Fatal(err)
		}
		b2, _ := r2.Encode()
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: two derivations differ:\n%s\n----\n%s", c.Name, b1, b2)
		}
		dec, err := DecodeRepro(b1)
		if err != nil {
			t.Fatalf("%s: decode: %v", c.Name, err)
		}
		b3, err := dec.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b3) {
			t.Fatalf("%s: decode/encode round trip changed the artifact", c.Name)
		}
	}
}

func TestReproSeedsDistinctAcrossCases(t *testing.T) {
	seeds := map[uint64]string{}
	for _, c := range Cases() {
		r, err := NewRepro(c.Name, experiments.DefaultSeed, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seeds[r.Seed]; dup {
			t.Errorf("cases %q and %q share seed %#x", prev, c.Name, r.Seed)
		}
		seeds[r.Seed] = c.Name
	}
}

func TestDecodeReproRejectsMalformedArtifacts(t *testing.T) {
	good, err := NewRepro("mutex/flip-storm", 1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := good.Encode()
	for _, tc := range []struct {
		name    string
		mangle  func(s string) string
		wantErr string
	}{
		{"version", func(s string) string {
			return strings.Replace(s, ReproVersion, "torture/v0", 1)
		}, "version"},
		{"case", func(s string) string {
			return strings.Replace(s, "mutex/flip-storm", "mutex/unheard-of", 1)
		}, "unknown case"},
		{"workers", func(s string) string {
			return strings.Replace(s, `"workers": 2`, `"workers": 0`, 1)
		}, "fleet shape"},
		{"schedule", func(s string) string {
			return strings.Replace(s, `"schedule"`, `"shedule"`, 1)
		}, "no fault schedule"},
		{"syntax", func(string) string { return "{" }, "bad repro"},
	} {
		if _, err := DecodeRepro([]byte(tc.mangle(string(gb)))); err == nil {
			t.Errorf("%s: mangled artifact decoded cleanly", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q, want it to mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestDecodeReproReclampsSchedule: a hand-edited artifact with an
// out-of-bounds fault rule must come back clamped, not armed verbatim.
func TestDecodeReproReclampsSchedule(t *testing.T) {
	r, err := NewRepro("mutex/flip-storm", 1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	r.Schedule.Rules[0].Arg = 1 << 30 // way past any injection bound
	b, _ := r.Encode()
	dec, err := DecodeRepro(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Schedule.Rules[0].Arg; got == 1<<30 {
		t.Fatalf("out-of-bounds rule arg survived decode: %d", got)
	}
}

// TestAllCasesShortRun executes every scenario with a small fleet —
// the same path CI's torture job takes, minus the chaos build tag
// unless the test binary was built with it.
func TestAllCasesShortRun(t *testing.T) {
	workers, ops := 4, 400
	if testing.Short() {
		ops = 100
	}
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			r, err := NewRepro(c.Name, experiments.DefaultSeed, workers, ops)
			if err != nil {
				t.Fatal(err)
			}
			res := r.Run(2 * time.Minute)
			if res.Err != nil {
				art, _ := r.Encode()
				t.Fatalf("%v\nrepro artifact:\n%s", res.Err, art)
			}
			if res.Seed != r.Seed || res.Case != c.Name {
				t.Fatalf("result (%s, %#x) does not describe the run (%s, %#x)",
					res.Case, res.Seed, c.Name, r.Seed)
			}
		})
	}
}

// TestReplayReusesTheCarriedSchedule: Run must arm the artifact's
// schedule, not re-derive one — replaying an artifact whose schedule
// was edited still runs, and the descriptor reaching the runner is the
// edited one.
func TestReplayReusesTheCarriedSchedule(t *testing.T) {
	r, err := NewRepro("counter/conservation", 1234, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	r.Schedule.Rules = r.Schedule.Rules[:1] // hand-trim the schedule
	b, _ := r.Encode()
	dec, err := DecodeRepro(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Schedule.Rules) != 1 {
		t.Fatalf("replay re-derived the schedule: %d rules", len(dec.Schedule.Rules))
	}
	if res := dec.Run(time.Minute); res.Err != nil {
		t.Fatal(res.Err)
	}
}
