// Package torture is a locktorture-style stress driver for the
// reactive primitives: it hammers every primitive and mode chain with
// mixed op vocabularies (blocking, try, deadline-bounded, and
// cancellation-storm acquisitions, plus policy-driven mode flips) while
// asserting the properties the paper's proofs rest on — mutual
// exclusion (audited by the race detector through plain shared
// variables), conservation (no operand or increment lost), progress (a
// stranded-waiter watchdog), and structural soundness
// (CheckInvariants).
//
// Every run is described by a Repro: the derived case seed, the fleet
// shape, and the chaos fault schedule for that seed. The same Repro
// always produces the same op streams and the same injected fault
// schedule, so a failing run can be re-executed exactly — cmd/torture
// emits the Repro as a JSON artifact on failure and replays one with
// -replay. Outcomes that depend on the Go scheduler (which TryLock
// wins, which reader parks) still vary; the schedule of attempted ops
// and injected faults does not.
//
// Fault injection is live only when the binary is built with the
// reactive_chaos tag; in a default build the schedule is still derived
// and recorded (so artifacts are comparable) but chaos.Enable is a
// no-op.
package torture

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/watchdog"
	"repro/reactive/chaos"
)

// Case is one torture scenario: a primitive, a mode chain to walk, a
// switching policy, and an op vocabulary.
type Case struct {
	Name string // "primitive/flavor", e.g. "mutex/flip-storm"
	Desc string // one line for -list and the docs table
	run  func(rc runCtx) error
}

// runCtx carries the resolved parameters of one case execution.
type runCtx struct {
	seed    uint64 // derived case seed; the root of every worker stream
	workers int
	ops     int // per worker
	guard   time.Duration
}

// Result is the outcome of one case execution.
type Result struct {
	Case    string
	Seed    uint64 // derived case seed (not the base seed)
	Err     error  // nil on success
	Elapsed time.Duration
	Points  []chaos.PointStat // fault-point hit counts; empty without the chaos tag
}

// Cases returns the registered scenarios, sorted by name.
func Cases() []Case {
	out := make([]Case, len(cases))
	copy(out, cases)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func lookup(name string) (Case, bool) {
	for _, c := range cases {
		if c.Name == name {
			return c, true
		}
	}
	return Case{}, false
}

// prng is the deterministic per-worker op stream: SplitMix64 seeded
// from the case seed and the worker index, so a (seed, worker) pair
// names the same op sequence in every run and every build.
type prng struct{ s uint64 }

func newPRNG(caseSeed uint64, worker int) *prng {
	return &prng{s: caseSeed ^ (uint64(worker)+1)*0x9e3779b97f4a7c15}
}

func (p *prng) next() uint64 {
	p.s += 0x9e3779b97f4a7c15
	z := p.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b289
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

// µs returns a short deadline in [1, n] microseconds, the scale at
// which deadline-bounded ops actually race the protocols rather than
// always winning.
func (p *prng) µs(n int) time.Duration {
	return time.Duration(1+p.intn(n)) * time.Microsecond
}

// fleet runs cfg.workers goroutines, each executing worker with its own
// deterministic op stream, under the stranded-waiter watchdog. It
// returns the watchdog error if the fleet fails to drain, otherwise the
// first worker error (a worker panic is converted into one).
func fleet(rc runCtx, snap func() string, worker func(id int, rng *prng) error) error {
	errs := make(chan error, rc.workers)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < rc.workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs <- fmt.Errorf("worker %d panicked: %v\n%s", id, r, watchdog.Dump())
				}
			}()
			if err := worker(id, newPRNG(rc.seed, id)); err != nil {
				errs <- fmt.Errorf("worker %d: %w", id, err)
			}
		}(id)
	}
	go func() { wg.Wait(); close(done) }()
	if err := watchdog.Await(done, rc.guard, snap); err != nil {
		return err
	}
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
