package torture

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"repro/reactive"
	"repro/reactive/policy"
)

// The scenario matrix. Every primitive appears with its full mode chain
// in motion: flip-storm cases force constant protocol switching
// (hair-trigger thresholds or an always-switch policy), cancel-storm
// cases keep the cancellation and deadline paths under fire, and the
// remaining cases pin the specific windows the paper's soundness
// argument leans on (epoch-mode TryLock undo, combining-mode harvest).
var cases = []Case{
	{
		Name: "mutex/flip-storm",
		Desc: "Mutex under hair-trigger spin↔park flipping with the full op vocabulary",
		run: func(rc runCtx) error {
			return mutexCase(rc, false,
				reactive.WithSpinFailLimit(1), reactive.WithEmptyLimit(1))
		},
	},
	{
		Name: "mutex/cancel-storm",
		Desc: "Mutex hammered with microsecond-deadline LockCtx/TryLockFor cancellations",
		run: func(rc runCtx) error {
			return mutexCase(rc, true,
				reactive.WithPolicy(policy.NewCompetitive(64)))
		},
	},
	{
		Name: "mutex/congestion",
		Desc: "Mutex with the congestion-control policy steering the mode chain",
		run: func(rc runCtx) error {
			return mutexCase(rc, false,
				reactive.WithPolicy(policy.NewCongestion()))
		},
	},
	{
		Name: "rwmutex/chain-walk",
		Desc: "RWMutex walking the centralized↔sharded↔epoch reader chain under mixed load",
		run: func(rc runCtx) error {
			return rwCase(rc, rwMixed,
				reactive.WithSpinFailLimit(1), reactive.WithEmptyLimit(1))
		},
	},
	{
		Name: "rwmutex/epoch-trylock",
		Desc: "Epoch-mode readers racing a TryLock claim/retract/re-grant hammer",
		run: func(rc runCtx) error {
			return rwCase(rc, rwTryHeavy,
				reactive.WithInitialReaderMode(reactive.ModeEpoch),
				reactive.WithInitialMode(reactive.ModePark))
		},
	},
	{
		Name: "rwmutex/cancel-storm",
		Desc: "Parked readers and writers abandoned by microsecond deadlines mid-drain",
		run: func(rc runCtx) error {
			return rwCase(rc, rwCancel,
				reactive.WithInitialMode(reactive.ModePark),
				reactive.WithPolicy(policy.NewHysteresis(2, 2)))
		},
	},
	{
		Name: "counter/conservation",
		Desc: "Counter increment conservation while an always-switch policy churns modes",
		run: func(rc runCtx) error {
			// Start sharded: a CAS-mode Counter's Add is a bare atomic
			// add that never detects contention, so it would sit in CAS
			// forever; from sharded, the always-switch policy keeps the
			// deposit/sweep chain in motion.
			return counterCase(rc,
				reactive.WithInitialMode(reactive.ModeSharded),
				reactive.WithPolicy(policy.AlwaysSwitch{}))
		},
	},
	{
		Name: "fetchop/max-known-answer",
		Desc: "Non-commutative-looking fold (max) must converge to the known answer",
		run: func(rc runCtx) error {
			return fetchOpMaxCase(rc,
				reactive.WithInitialMode(reactive.ModeSharded),
				reactive.WithSpinFailLimit(1), reactive.WithEmptyLimit(1))
		},
	},
	{
		Name: "fetchop/combining-churn",
		Desc: "Combining-mode sum conservation against a storm of reconciling Value sweeps",
		run: func(rc runCtx) error {
			return fetchOpSumCase(rc,
				reactive.WithInitialMode(reactive.ModeCombining),
				reactive.WithPolicy(policy.NewWeightedAverage(64, 128)))
		},
	},
}

// mutexCase drives a Mutex with the full acquisition vocabulary and
// verifies exclusion (two plain ints that must move in lockstep; the
// race detector audits every access) and conservation (the plain
// increment count must equal the atomically counted acquisitions).
func mutexCase(rc runCtx, cancelHeavy bool, opts ...reactive.Option) error {
	m := reactive.New(opts...)
	var a, b int // written only while holding m; -race audits this claim
	var acquired atomic.Int64
	crit := func(stretch bool) {
		a++
		if stretch {
			runtime.Gosched() // widen the torn-write window
		}
		b++
		acquired.Add(1)
	}
	snap := func() string { return fmt.Sprintf("mutex: %+v", m.Stats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		for i := 0; i < rc.ops; i++ {
			r := rng.intn(16)
			if cancelHeavy && r < 10 {
				r = 10 + r%4 // bias hard toward the deadline/cancel ops
			}
			switch {
			case r < 8: // blocking Lock
				m.Lock()
				crit(r == 0)
				m.Unlock()
			case r < 10: // TryLock
				if m.TryLock() {
					crit(false)
					m.Unlock()
				}
			case r < 12: // bounded wait
				if m.TryLockFor(rng.µs(50)) {
					crit(false)
					m.Unlock()
				}
			case r < 14: // cancellation storm
				ctx, cancel := context.WithTimeout(context.Background(), rng.µs(50))
				if m.LockCtx(ctx) == nil {
					crit(false)
					m.Unlock()
				}
				cancel()
			default:
				runtime.Gosched()
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if a != b {
		return fmt.Errorf("exclusion broken: a=%d b=%d", a, b)
	}
	if int64(a) != acquired.Load() {
		return fmt.Errorf("conservation broken: %d increments, %d acquisitions", a, acquired.Load())
	}
	return m.CheckInvariants()
}

// rwCase op mixes.
const (
	rwMixed    = iota // readers and writers in the usual 3:1 ratio
	rwTryHeavy        // TryLock hammer against a reader majority
	rwCancel          // everything deadline-bounded
)

// rwCase drives an RWMutex. Writers increment two plain ints with a
// yield between them; readers assert the pair is never seen torn — an
// exclusion violation is both a panic and a -race report.
func rwCase(rc runCtx, mix int, opts ...reactive.Option) error {
	rw := reactive.NewRWMutex(opts...)
	var a, b int // written under Lock, read under RLock
	var writes atomic.Int64
	write := func() {
		a++
		runtime.Gosched()
		b++
		writes.Add(1)
	}
	read := func() error {
		if a != b {
			return fmt.Errorf("exclusion broken: reader saw a=%d b=%d", a, b)
		}
		return nil
	}
	snap := func() string { return fmt.Sprintf("rwmutex: %+v", rw.Stats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		for i := 0; i < rc.ops; i++ {
			r := rng.intn(16)
			switch mix {
			case rwTryHeavy:
				if r < 10 { // reader majority keeps the epoch gate busy
					r = r % 3
				} else {
					r = 9 // TryLock
				}
			case rwCancel:
				if r < 8 {
					r = 4 // RLockCtx
				} else {
					r = 11 // LockCtx
				}
			}
			switch {
			case r < 3: // RLock
				rw.RLock()
				e := read()
				rw.RUnlock()
				if e != nil {
					return e
				}
			case r < 4: // TryRLock
				if rw.TryRLock() {
					e := read()
					rw.RUnlock()
					if e != nil {
						return e
					}
				}
			case r < 6: // deadline-bounded read
				ctx, cancel := context.WithTimeout(context.Background(), rng.µs(100))
				var e error
				if rw.RLockCtx(ctx) == nil {
					e = read()
					rw.RUnlock()
				}
				cancel()
				if e != nil {
					return e
				}
			case r < 9: // Lock
				rw.Lock()
				write()
				rw.Unlock()
			case r < 10: // TryLock
				if rw.TryLock() {
					write()
					rw.Unlock()
				}
			case r < 12: // deadline-bounded write
				ctx, cancel := context.WithTimeout(context.Background(), rng.µs(100))
				if rw.LockCtx(ctx) == nil {
					write()
					rw.Unlock()
				}
				cancel()
			default:
				runtime.Gosched()
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if a != b {
		return fmt.Errorf("exclusion broken: a=%d b=%d", a, b)
	}
	if int64(a) != writes.Load() {
		return fmt.Errorf("conservation broken: %d increments, %d writes", a, writes.Load())
	}
	return rw.CheckInvariants()
}

// counterCase verifies increment conservation: the Counter's final
// value must equal the sum every worker knows it contributed, with
// interleaved Loads forcing reconciling sweeps mid-storm.
func counterCase(rc runCtx, opts ...reactive.Option) error {
	c := reactive.NewCounter(opts...)
	sums := make([]int64, rc.workers)
	snap := func() string { return fmt.Sprintf("counter: %+v", c.Stats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		for i := 0; i < rc.ops; i++ {
			d := int64(rng.intn(1000)) - 500
			c.Add(d)
			sums[id] += d
			if rng.intn(32) == 0 {
				c.Load() // force a reconciling sweep mid-storm
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	var want int64
	for _, s := range sums {
		want += s
	}
	if got := c.Load(); got != want {
		return fmt.Errorf("conservation broken: Load = %d, workers contributed %d", got, want)
	}
	return c.CheckInvariants()
}

// fetchOpMaxCase folds max over a deterministic value stream; the final
// Value must be the maximum every worker saw, and intermediate Values
// must be monotonically consistent (never exceeding the known answer).
func fetchOpMaxCase(rc runCtx, opts ...reactive.Option) error {
	f := reactive.NewFetchOp(func(x, y int64) int64 {
		if x > y {
			return x
		}
		return y
	}, math.MinInt64, opts...)
	maxes := make([]int64, rc.workers)
	for i := range maxes {
		maxes[i] = math.MinInt64
	}
	snap := func() string { return fmt.Sprintf("fetchop: %+v", f.Stats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		hi := int64(math.MinInt64)
		for i := 0; i < rc.ops; i++ {
			v := int64(rng.next() >> 1) // non-negative, full spread
			f.Apply(v)
			if v > hi {
				hi = v
			}
			if rng.intn(16) == 0 {
				f.Value() // reconciling sweeps race the deposits
			}
		}
		maxes[id] = hi
		return nil
	})
	if err != nil {
		return err
	}
	want := int64(math.MinInt64)
	for _, m := range maxes {
		if m > want {
			want = m
		}
	}
	if got := f.Value(); got != want {
		return fmt.Errorf("known answer broken: Value = %d, want %d", got, want)
	}
	return f.CheckInvariants()
}

// fetchOpSumCase is counterCase through the raw FetchOp API — an
// explicit addition op, so reconciliation runs the general casFold path
// rather than the Counter's Add fast path — with every worker both
// depositing and sweeping, so combining-mode harvests constantly race
// fresh deposits.
func fetchOpSumCase(rc runCtx, opts ...reactive.Option) error {
	f := reactive.NewFetchOp(func(x, y int64) int64 { return x + y }, 0, opts...)
	sums := make([]int64, rc.workers)
	snap := func() string { return fmt.Sprintf("fetchop: %+v", f.Stats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		for i := 0; i < rc.ops; i++ {
			d := int64(rng.intn(256)) - 128
			f.Apply(d)
			sums[id] += d
			if rng.intn(8) == 0 {
				f.Value()
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	var want int64
	for _, s := range sums {
		want += s
	}
	if got := f.Value(); got != want {
		return fmt.Errorf("conservation broken: Value = %d, workers contributed %d", got, want)
	}
	return f.CheckInvariants()
}
