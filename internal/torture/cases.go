package torture

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"repro/reactive"
	"repro/reactive/policy"
)

// The scenario matrix. Every primitive appears with its full mode chain
// in motion: flip-storm cases force constant protocol switching
// (hair-trigger thresholds or an always-switch policy), cancel-storm
// cases keep the cancellation and deadline paths under fire, and the
// remaining cases pin the specific windows the paper's soundness
// argument leans on (epoch-mode TryLock undo, combining-mode harvest).
var cases = []Case{
	{
		Name: "mutex/flip-storm",
		Desc: "Mutex under hair-trigger spin↔park flipping with the full op vocabulary",
		run: func(rc runCtx) error {
			return mutexCase(rc, false,
				reactive.WithSpinFailLimit(1), reactive.WithEmptyLimit(1))
		},
	},
	{
		Name: "mutex/cancel-storm",
		Desc: "Mutex hammered with microsecond-deadline LockCtx/TryLockFor cancellations",
		run: func(rc runCtx) error {
			return mutexCase(rc, true,
				reactive.WithPolicy(policy.NewCompetitive(64)))
		},
	},
	{
		Name: "mutex/congestion",
		Desc: "Mutex with the congestion-control policy steering the mode chain",
		run: func(rc runCtx) error {
			return mutexCase(rc, false,
				reactive.WithPolicy(policy.NewCongestion()))
		},
	},
	{
		Name: "rwmutex/chain-walk",
		Desc: "RWMutex walking the centralized↔sharded↔epoch reader chain under mixed load",
		run: func(rc runCtx) error {
			return rwCase(rc, rwMixed,
				reactive.WithSpinFailLimit(1), reactive.WithEmptyLimit(1))
		},
	},
	{
		Name: "rwmutex/epoch-trylock",
		Desc: "Epoch-mode readers racing a TryLock claim/retract/re-grant hammer",
		run: func(rc runCtx) error {
			return rwCase(rc, rwTryHeavy,
				reactive.WithInitialReaderMode(reactive.ModeEpoch),
				reactive.WithInitialMode(reactive.ModePark))
		},
	},
	{
		Name: "rwmutex/cancel-storm",
		Desc: "Parked readers and writers abandoned by microsecond deadlines mid-drain",
		run: func(rc runCtx) error {
			return rwCase(rc, rwCancel,
				reactive.WithInitialMode(reactive.ModePark),
				reactive.WithPolicy(policy.NewHysteresis(2, 2)))
		},
	},
	{
		Name: "counter/conservation",
		Desc: "Counter increment conservation while an always-switch policy churns modes",
		run: func(rc runCtx) error {
			// Start sharded: a CAS-mode Counter's Add is a bare atomic
			// add that never detects contention, so it would sit in CAS
			// forever; from sharded, the always-switch policy keeps the
			// deposit/sweep chain in motion.
			return counterCase(rc,
				reactive.WithInitialMode(reactive.ModeSharded),
				reactive.WithPolicy(policy.AlwaysSwitch{}))
		},
	},
	{
		Name: "map/conservation",
		Desc: "Map Put/Delete/Get conservation per owned key range while modes flip end to end",
		run: func(rc runCtx) error {
			// Start in the middle of the chain with an always-switch
			// policy: contended shard acquisitions promote to epoch,
			// quiet grace periods and uncontended ops demote, so the
			// fleet drags the map across every transition while each
			// worker's owned keys must survive exactly.
			return mapConservationCase(rc,
				reactive.WithInitialMode(reactive.ModeSharded),
				reactive.WithPolicy(policy.AlwaysSwitch{}))
		},
	},
	{
		Name: "map/epoch-churn",
		Desc: "Epoch-mode readers racing table republish and in-place journal folds",
		run: func(rc runCtx) error {
			return mapEpochChurnCase(rc,
				reactive.WithInitialMode(reactive.ModeEpoch),
				reactive.WithEmptyLimit(1<<20))
		},
	},
	{
		Name: "fetchop/max-known-answer",
		Desc: "Non-commutative-looking fold (max) must converge to the known answer",
		run: func(rc runCtx) error {
			return fetchOpMaxCase(rc,
				reactive.WithInitialMode(reactive.ModeSharded),
				reactive.WithSpinFailLimit(1), reactive.WithEmptyLimit(1))
		},
	},
	{
		Name: "fetchop/combining-churn",
		Desc: "Combining-mode sum conservation against a storm of reconciling Value sweeps",
		run: func(rc runCtx) error {
			return fetchOpSumCase(rc,
				reactive.WithInitialMode(reactive.ModeCombining),
				reactive.WithPolicy(policy.NewWeightedAverage(64, 128)))
		},
	},
}

// mutexCase drives a Mutex with the full acquisition vocabulary and
// verifies exclusion (two plain ints that must move in lockstep; the
// race detector audits every access) and conservation (the plain
// increment count must equal the atomically counted acquisitions).
func mutexCase(rc runCtx, cancelHeavy bool, opts ...reactive.Option) error {
	m := reactive.New(opts...)
	var a, b int // written only while holding m; -race audits this claim
	var acquired atomic.Int64
	crit := func(stretch bool) {
		a++
		if stretch {
			runtime.Gosched() // widen the torn-write window
		}
		b++
		acquired.Add(1)
	}
	snap := func() string { return fmt.Sprintf("mutex: %+v", m.Stats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		for i := 0; i < rc.ops; i++ {
			r := rng.intn(16)
			if cancelHeavy && r < 10 {
				r = 10 + r%4 // bias hard toward the deadline/cancel ops
			}
			switch {
			case r < 8: // blocking Lock
				m.Lock()
				crit(r == 0)
				m.Unlock()
			case r < 10: // TryLock
				if m.TryLock() {
					crit(false)
					m.Unlock()
				}
			case r < 12: // bounded wait
				if m.TryLockFor(rng.µs(50)) {
					crit(false)
					m.Unlock()
				}
			case r < 14: // cancellation storm
				ctx, cancel := context.WithTimeout(context.Background(), rng.µs(50))
				if m.LockCtx(ctx) == nil {
					crit(false)
					m.Unlock()
				}
				cancel()
			default:
				runtime.Gosched()
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if a != b {
		return fmt.Errorf("exclusion broken: a=%d b=%d", a, b)
	}
	if int64(a) != acquired.Load() {
		return fmt.Errorf("conservation broken: %d increments, %d acquisitions", a, acquired.Load())
	}
	return m.CheckInvariants()
}

// rwCase op mixes.
const (
	rwMixed    = iota // readers and writers in the usual 3:1 ratio
	rwTryHeavy        // TryLock hammer against a reader majority
	rwCancel          // everything deadline-bounded
)

// rwCase drives an RWMutex. Writers increment two plain ints with a
// yield between them; readers assert the pair is never seen torn — an
// exclusion violation is both a panic and a -race report.
func rwCase(rc runCtx, mix int, opts ...reactive.Option) error {
	rw := reactive.NewRWMutex(opts...)
	var a, b int // written under Lock, read under RLock
	var writes atomic.Int64
	write := func() {
		a++
		runtime.Gosched()
		b++
		writes.Add(1)
	}
	read := func() error {
		if a != b {
			return fmt.Errorf("exclusion broken: reader saw a=%d b=%d", a, b)
		}
		return nil
	}
	snap := func() string { return fmt.Sprintf("rwmutex: %+v", rw.Stats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		for i := 0; i < rc.ops; i++ {
			r := rng.intn(16)
			switch mix {
			case rwTryHeavy:
				if r < 10 { // reader majority keeps the epoch gate busy
					r = r % 3
				} else {
					r = 9 // TryLock
				}
			case rwCancel:
				if r < 8 {
					r = 4 // RLockCtx
				} else {
					r = 11 // LockCtx
				}
			}
			switch {
			case r < 3: // RLock
				rw.RLock()
				e := read()
				rw.RUnlock()
				if e != nil {
					return e
				}
			case r < 4: // TryRLock
				if rw.TryRLock() {
					e := read()
					rw.RUnlock()
					if e != nil {
						return e
					}
				}
			case r < 6: // deadline-bounded read
				ctx, cancel := context.WithTimeout(context.Background(), rng.µs(100))
				var e error
				if rw.RLockCtx(ctx) == nil {
					e = read()
					rw.RUnlock()
				}
				cancel()
				if e != nil {
					return e
				}
			case r < 9: // Lock
				rw.Lock()
				write()
				rw.Unlock()
			case r < 10: // TryLock
				if rw.TryLock() {
					write()
					rw.Unlock()
				}
			case r < 12: // deadline-bounded write
				ctx, cancel := context.WithTimeout(context.Background(), rng.µs(100))
				if rw.LockCtx(ctx) == nil {
					write()
					rw.Unlock()
				}
				cancel()
			default:
				runtime.Gosched()
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if a != b {
		return fmt.Errorf("exclusion broken: a=%d b=%d", a, b)
	}
	if int64(a) != writes.Load() {
		return fmt.Errorf("conservation broken: %d increments, %d writes", a, writes.Load())
	}
	return rw.CheckInvariants()
}

// counterCase verifies increment conservation: the Counter's final
// value must equal the sum every worker knows it contributed, with
// interleaved Loads forcing reconciling sweeps mid-storm.
func counterCase(rc runCtx, opts ...reactive.Option) error {
	c := reactive.NewCounter(opts...)
	sums := make([]int64, rc.workers)
	snap := func() string { return fmt.Sprintf("counter: %+v", c.Stats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		for i := 0; i < rc.ops; i++ {
			d := int64(rng.intn(1000)) - 500
			c.Add(d)
			sums[id] += d
			if rng.intn(32) == 0 {
				c.Load() // force a reconciling sweep mid-storm
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	var want int64
	for _, s := range sums {
		want += s
	}
	if got := c.Load(); got != want {
		return fmt.Errorf("conservation broken: Load = %d, workers contributed %d", got, want)
	}
	return c.CheckInvariants()
}

// fetchOpMaxCase folds max over a deterministic value stream; the final
// Value must be the maximum every worker saw, and intermediate Values
// must be monotonically consistent (never exceeding the known answer).
func fetchOpMaxCase(rc runCtx, opts ...reactive.Option) error {
	f := reactive.NewFetchOp(func(x, y int64) int64 {
		if x > y {
			return x
		}
		return y
	}, math.MinInt64, opts...)
	maxes := make([]int64, rc.workers)
	for i := range maxes {
		maxes[i] = math.MinInt64
	}
	snap := func() string { return fmt.Sprintf("fetchop: %+v", f.Stats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		hi := int64(math.MinInt64)
		for i := 0; i < rc.ops; i++ {
			v := int64(rng.next() >> 1) // non-negative, full spread
			f.Apply(v)
			if v > hi {
				hi = v
			}
			if rng.intn(16) == 0 {
				f.Value() // reconciling sweeps race the deposits
			}
		}
		maxes[id] = hi
		return nil
	})
	if err != nil {
		return err
	}
	want := int64(math.MinInt64)
	for _, m := range maxes {
		if m > want {
			want = m
		}
	}
	if got := f.Value(); got != want {
		return fmt.Errorf("known answer broken: Value = %d, want %d", got, want)
	}
	return f.CheckInvariants()
}

// fetchOpSumCase is counterCase through the raw FetchOp API — an
// explicit addition op, so reconciliation runs the general casFold path
// rather than the Counter's Add fast path — with every worker both
// depositing and sweeping, so combining-mode harvests constantly race
// fresh deposits.
func fetchOpSumCase(rc runCtx, opts ...reactive.Option) error {
	f := reactive.NewFetchOp(func(x, y int64) int64 { return x + y }, 0, opts...)
	sums := make([]int64, rc.workers)
	snap := func() string { return fmt.Sprintf("fetchop: %+v", f.Stats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		for i := 0; i < rc.ops; i++ {
			d := int64(rng.intn(256)) - 128
			f.Apply(d)
			sums[id] += d
			if rng.intn(8) == 0 {
				f.Value()
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	var want int64
	for _, s := range sums {
		want += s
	}
	if got := f.Value(); got != want {
		return fmt.Errorf("conservation broken: Value = %d, workers contributed %d", got, want)
	}
	return f.CheckInvariants()
}

// mapConservationCase drives a reactive.Map with the full op vocabulary
// while mode flips churn the chain. Each worker owns a disjoint key
// range and tracks its own final model; after the fleet joins, the map
// must agree with every model exactly (no key lost or duplicated by any
// transition) and the Len gauge must equal the live total. Cross-worker
// reads assert the value-shape invariant vkey(k) — a value read under
// any protocol must have been written under that key.
func mapConservationCase(rc runCtx, opts ...reactive.Option) error {
	m := reactive.NewMap[int, int](opts...)
	const span = 64 // keys per worker
	vkey := func(k, i int) int { return k*1_000_000 + i }
	models := make([]map[int]int, rc.workers)
	snap := func() string { return fmt.Sprintf("map: %+v", m.MapStats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		model := make(map[int]int)
		base := id * span
		for i := 0; i < rc.ops; i++ {
			k := base + rng.intn(span)
			switch r := rng.intn(16); {
			case r < 7: // write an identifiable value
				v := vkey(k, i)
				m.Put(k, v)
				model[k] = v
			case r < 10:
				m.Delete(k)
				delete(model, k)
			case r < 12: // deadline-bounded write
				ctx, cancel := context.WithTimeout(context.Background(), rng.µs(50))
				v := vkey(k, i)
				if m.PutCtx(ctx, k, v) == nil {
					model[k] = v
				}
				cancel()
			case r < 14: // cross-worker read; shape-check only
				fk := rng.intn(rc.workers*span + span)
				if v, ok := m.Get(fk); ok && v/1_000_000 != fk {
					return fmt.Errorf("Get(%d) = %d: value written under key %d", fk, v, v/1_000_000)
				}
			default: // deadline-bounded read
				ctx, cancel := context.WithTimeout(context.Background(), rng.µs(50))
				if v, ok, err := m.GetCtx(ctx, k); err == nil && ok && v/1_000_000 != k {
					cancel()
					return fmt.Errorf("GetCtx(%d) = %d: value written under key %d", k, v, v/1_000_000)
				}
				cancel()
			}
		}
		models[id] = model
		return nil
	})
	if err != nil {
		return err
	}
	live := 0
	for id, model := range models {
		live += len(model)
		for k, want := range model {
			if v, ok := m.Get(k); !ok || v != want {
				return fmt.Errorf("worker %d key %d = %d,%v, want %d,true (final state lost)", id, k, v, ok, want)
			}
		}
	}
	if got := m.Len(); got != live {
		return fmt.Errorf("conservation broken: Len = %d, models hold %d live keys", got, live)
	}
	return m.CheckInvariants()
}

// mapEpochChurnCase pins the map in the epoch mode and races readers
// against the republish round trip: every write installs a new table
// version and mutates the retired copy in place after its grace period,
// so a reader outliving its grace would observe a torn table — caught
// by the value-shape invariant and by -race through the map's backing
// arrays. Writers also verify the published version never regresses.
func mapEpochChurnCase(rc runCtx, opts ...reactive.Option) error {
	m := reactive.NewMap[int, int](opts...)
	const keys = 128
	for k := 0; k < keys; k++ {
		m.Put(k, k*1_000_000)
	}
	snap := func() string { return fmt.Sprintf("map: %+v", m.MapStats()) }
	err := fleet(rc, snap, func(id int, rng *prng) error {
		writer := id%4 == 0 // 1 writer per 4 workers: read-mostly, the epoch regime
		var lastVer uint64
		for i := 0; i < rc.ops; i++ {
			k := rng.intn(keys)
			if writer {
				if rng.intn(8) == 0 {
					m.Delete(k)
				} else {
					m.Put(k, k*1_000_000+i)
				}
				if ms := m.MapStats(); ms.Version < lastVer {
					return fmt.Errorf("published version regressed: %d -> %d", lastVer, ms.Version)
				} else {
					lastVer = ms.Version
				}
				continue
			}
			switch rng.intn(16) {
			case 0: // snapshot storm: Range copies under a stamp
				n := 0
				m.Range(func(rk, rv int) bool {
					if rv/1_000_000 != rk {
						panic(fmt.Sprintf("Range saw %d under key %d", rv, rk))
					}
					n++
					return n < 8
				})
			default:
				if v, ok := m.Get(k); ok && v/1_000_000 != k {
					return fmt.Errorf("Get(%d) = %d: value written under key %d (torn or reclaimed table)", k, v, v/1_000_000)
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if got := m.Stats().Mode; got != reactive.ModeEpoch {
		return fmt.Errorf("mode = %v at exit, want epoch (empty limit should pin it)", got)
	}
	return m.CheckInvariants()
}
