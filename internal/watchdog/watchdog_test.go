package watchdog

import (
	"strings"
	"testing"
	"time"
)

func TestAwaitReturnsNilWhenDoneCloses(t *testing.T) {
	done := make(chan struct{})
	close(done)
	if err := Await(done, time.Hour); err != nil {
		t.Fatalf("Await on closed done: %v", err)
	}
}

func TestAwaitUnboundedWaits(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(done)
	}()
	if err := Await(done, 0); err != nil {
		t.Fatalf("unbounded Await: %v", err)
	}
}

func TestAwaitTripCarriesEvidence(t *testing.T) {
	done := make(chan struct{}) // never closed
	err := Await(done, time.Millisecond,
		func() string { return "primitive: mode=park waiters=3" },
		func() string { panic("snapshot reads wedged state") },
	)
	if err == nil {
		t.Fatal("Await did not trip")
	}
	msg := err.Error()
	for _, want := range []string{
		"stranded waiter?",
		"primitive: mode=park waiters=3",
		"snapshot panicked: snapshot reads wedged state",
		"-- goroutines --",
		"TestAwaitTripCarriesEvidence", // this goroutine's frame is in the dump
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("trip report missing %q:\n%s", want, msg)
		}
	}
}
