// Package watchdog is the stranded-waiter detector shared by the load
// harness (internal/loadsvc), the torture harness (internal/torture),
// and stress tests: a bounded wait on a fleet's completion that, when
// the bound trips, captures the evidence a hang post-mortem needs — a
// full goroutine dump (the parked waiter's stack is the finding) and
// any caller-supplied state snapshots (a primitive's Stats line, a
// queue length) — instead of letting the process sit wedged until an
// outer test timeout kills it with less context.
//
// It grew out of the inline guard loadsvc.Run carried; promoting it
// makes the "blocked N after the work ended" diagnosis uniform across
// every harness that parks goroutines on the primitives under test.
package watchdog

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// dumpLimit bounds the goroutine dump attached to a trip report. 1 MiB
// holds several hundred stacks — enough for any harness fleet — while
// keeping a pathological dump from swamping the report.
const dumpLimit = 1 << 20

// Await waits for done to close, but no longer than d past the call: a
// fleet whose work has ended (the caller closes done when the last
// result arrives) should disband promptly, and a wait that outlives d
// is declared a strand. On a trip, Await returns an error carrying
// each snap's output (labelled, in order) and the goroutine dump; nil
// means done closed in time. d <= 0 disables the bound and waits
// forever.
func Await(done <-chan struct{}, d time.Duration, snaps ...func() string) error {
	if d <= 0 {
		<-done
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return nil
	case <-t.C:
		return trip(d, snaps)
	}
}

func trip(d time.Duration, snaps []func() string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "watchdog: still blocked %v after the work ended (stranded waiter?)", d)
	for i, snap := range snaps {
		s := safeSnap(snap)
		fmt.Fprintf(&b, "\n-- snapshot %d --\n%s", i, s)
	}
	b.WriteString("\n-- goroutines --\n")
	b.WriteString(Dump())
	return fmt.Errorf("%s", b.String())
}

// safeSnap runs one snapshot function, converting a panic into a
// report line: the watchdog fires exactly when shared state may be
// wedged mid-operation, and a snapshot tripping over that state must
// not lose the rest of the evidence.
func safeSnap(snap func() string) (s string) {
	defer func() {
		if r := recover(); r != nil {
			s = fmt.Sprintf("(snapshot panicked: %v)", r)
		}
	}()
	return snap()
}

// Dump returns the all-goroutines stack dump, truncated to a bounded
// size.
func Dump() string {
	buf := make([]byte, 64<<10)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		if len(buf) >= dumpLimit {
			return string(buf[:n]) + "\n... (dump truncated)"
		}
		buf = make([]byte, len(buf)*2)
	}
}
