package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random source (xoshiro256**).
// Each actor carries its own Rand so simulation outcomes are independent of
// actor interleaving details and reproducible across runs.
type Rand struct {
	s [4]uint64
}

// NewRand returns a Rand seeded from seed via splitmix64.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1,
// via inverse transform sampling.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	// Guard against log(0).
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}
