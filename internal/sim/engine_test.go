package sim

import (
	"testing"
	"testing/quick"
)

func TestAdvanceOrdering(t *testing.T) {
	e := New(1)
	var order []string
	e.Spawn("a", 0, func(a *Actor) {
		a.Advance(10)
		order = append(order, "a@10")
		a.Advance(20)
		order = append(order, "a@30")
	})
	e.Spawn("b", 0, func(a *Actor) {
		a.Advance(15)
		order = append(order, "b@15")
		a.Advance(5)
		order = append(order, "b@20")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@10", "b@15", "b@20", "a@30"}
	if len(order) != len(want) {
		t.Fatalf("got %v want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v want %v", order, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %d, want 30", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn("x", 5, func(a *Actor) {
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of spawn order: %v", order)
		}
	}
}

func TestParkWake(t *testing.T) {
	e := New(1)
	var woken Time
	var sleeper *Actor
	sleeper = e.Spawn("sleeper", 0, func(a *Actor) {
		a.Park()
		woken = a.Now()
	})
	e.Spawn("waker", 0, func(a *Actor) {
		a.Advance(100)
		a.Wake(sleeper, a.Now()+7)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 107 {
		t.Fatalf("woken at %d, want 107", woken)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New(1)
	e.Spawn("stuck", 0, func(a *Actor) {
		a.Park()
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck" {
		t.Fatalf("parked = %v", de.Parked)
	}
}

func TestStopDrainsActors(t *testing.T) {
	e := New(1)
	finished := false
	e.Spawn("looper", 0, func(a *Actor) {
		for {
			a.Advance(10)
		}
	})
	e.Spawn("parker", 0, func(a *Actor) {
		a.Park()
		finished = true // must not run: drained, not woken
	})
	e.Spawn("stopper", 0, func(a *Actor) {
		a.Advance(55)
		a.Engine().Stop()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if finished {
		t.Fatal("drained actor resumed its body")
	}
	if e.live != 0 {
		t.Fatalf("live actors remain: %d", e.live)
	}
}

func TestSpawnFromActor(t *testing.T) {
	e := New(1)
	var childTime Time
	e.Spawn("parent", 0, func(a *Actor) {
		a.Advance(42)
		a.Engine().Spawn("child", a.Now()+8, func(c *Actor) {
			childTime = c.Now()
		})
		a.Advance(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 50 {
		t.Fatalf("child started at %d, want 50", childTime)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := New(99)
		var trace []Time
		for i := 0; i < 8; i++ {
			e.Spawn("p", 0, func(a *Actor) {
				for j := 0; j < 50; j++ {
					a.Advance(Time(a.Rand().Intn(20) + 1))
					trace = append(trace, a.Now())
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) {
		t.Fatal("non-deterministic trace length")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("trace diverges at %d: %d vs %d", i, t1[i], t2[i])
		}
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(7)
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[r.Intn(10)]++
	}
	for i, b := range buckets {
		if b < n/10-n/50 || b > n/10+n/50 {
			t.Fatalf("bucket %d count %d far from %d", i, b, n/10)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRand(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(3)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if mean < 0.98 || mean > 1.02 {
		t.Fatalf("exponential mean = %f, want ~1", mean)
	}
}

func TestAdvanceZero(t *testing.T) {
	e := New(1)
	e.Spawn("z", 0, func(a *Actor) {
		before := a.Now()
		a.Advance(0)
		if a.Now() != before {
			t.Errorf("Advance(0) moved time")
		}
		a.AdvanceTo(0)
		if a.Now() != before {
			t.Errorf("AdvanceTo(past) moved time")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWakeNotParkedPanics(t *testing.T) {
	e := New(1)
	var b *Actor
	b = e.Spawn("b", 1000, func(a *Actor) {})
	e.Spawn("a", 0, func(a *Actor) {
		defer func() {
			if recover() == nil {
				t.Error("Wake on non-parked actor did not panic")
			}
		}()
		a.Wake(b, 5)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
