// Package sim provides a deterministic, cycle-accurate discrete-event
// simulation engine. Simulated activities (processors, threads, message
// handlers) run as coroutine actors: exactly one actor executes at any
// instant, and actors hand control back to the engine whenever simulated
// time must pass. Events with equal timestamps fire in schedule order, so a
// run is fully deterministic given the same seed and spawn order.
//
// The engine is the substrate for the Alewife-like multiprocessor model in
// internal/machine; nothing in this package knows about processors or memory.
package sim

import (
	"fmt"
	"sort"
)

// Time is simulated time in processor clock cycles.
type Time = uint64

// Engine is a deterministic discrete-event simulator. Create one with New,
// add actors with Spawn, then call Run.
type Engine struct {
	now  Time
	seq  uint64
	pq   eventHeap
	ctl  chan ctlMsg
	live int // actors spawned and not yet finished
	seed uint64

	running bool
	stopped bool
	limit   Time // 0 = no limit

	// parked actors (blocked with no scheduled event), for deadlock reports.
	parked map[*Actor]struct{}

	nextActorID uint64
}

type ctlMsg struct {
	finished *Actor // non-nil if the yielding actor has terminated
}

type event struct {
	at  Time
	seq uint64
	a   *Actor
}

// eventHeap is a hand-rolled binary min-heap ordered by (at, seq). It
// avoids container/heap's interface{} boxing, which would allocate on
// every scheduled event — the simulator's hottest path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && (*h).less(l, smallest) {
			smallest = l
		}
		if r < n && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
	return top
}

// New returns an engine whose actor RNGs derive from seed.
func New(seed uint64) *Engine {
	return &Engine{
		ctl:    make(chan ctlMsg),
		seed:   seed,
		parked: make(map[*Actor]struct{}),
	}
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() Time { return e.now }

// SetLimit makes Run fail with a LimitError once simulated time exceeds
// limit — a guard against livelock in simulated systems (e.g. pure
// spin-waiting that starves a never-scheduled producer).
func (e *Engine) SetLimit(limit Time) { e.limit = limit }

// Spawn creates a new actor that will begin executing f at time start
// (which must be >= Now). Spawn may be called before Run or from a running
// actor. The returned Actor must only be manipulated by running actors or
// before Run starts.
func (e *Engine) Spawn(name string, start Time, f func(*Actor)) *Actor {
	if start < e.now {
		start = e.now
	}
	e.nextActorID++
	a := &Actor{
		e:      e,
		id:     e.nextActorID,
		name:   name,
		resume: make(chan struct{}),
		rng:    NewRand(mix(e.seed, e.nextActorID)),
	}
	e.live++
	go func() {
		<-a.resume // wait for first dispatch
		if !a.terminate {
			runBody(a, f)
		}
		a.finished = true
		e.ctl <- ctlMsg{finished: a}
	}()
	e.schedule(start, a)
	return a
}

func (e *Engine) schedule(at Time, a *Actor) {
	e.seq++
	e.pq.push(event{at: at, seq: e.seq, a: a})
	a.scheduled = true
}

// Run executes events until no runnable work remains or Stop is called.
// It returns an error if actors remain parked with no pending events
// (a deadlock in the simulated system).
func (e *Engine) Run() error {
	if e.running {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.pq) > 0 && !e.stopped {
		ev := e.pq.pop()
		if ev.a.finished {
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		if e.limit > 0 && e.now > e.limit {
			e.pq = append(e.pq, event{at: ev.at, seq: ev.seq, a: ev.a})
			e.drain()
			return &LimitError{Limit: e.limit}
		}
		ev.a.scheduled = false
		ev.a.resume <- struct{}{}
		msg := <-e.ctl
		if msg.finished != nil {
			e.live--
		}
	}
	if e.stopped {
		e.drain()
		return nil
	}
	if len(e.parked) > 0 {
		names := make([]string, 0, len(e.parked))
		for a := range e.parked {
			names = append(names, a.name)
		}
		sort.Strings(names)
		e.drain()
		return &DeadlockError{Time: e.now, Parked: names}
	}
	return nil
}

// Stop halts the simulation after the currently executing actor yields.
// Call from within an actor to end a run early (e.g. measurement complete).
func (e *Engine) Stop() { e.stopped = true }

// drain unblocks leftover goroutines so they do not leak. Leftover actors
// are resumed with their terminate flag set; Actor yield points panic with
// errTerminated which the actor wrapper converts into a clean exit.
func (e *Engine) drain() {
	pending := make(map[*Actor]struct{})
	for _, ev := range e.pq {
		if !ev.a.finished {
			pending[ev.a] = struct{}{}
		}
	}
	e.pq = nil
	for a := range e.parked {
		pending[a] = struct{}{}
	}
	e.parked = make(map[*Actor]struct{})
	for a := range pending {
		a.terminate = true
		a.resume <- struct{}{}
		<-e.ctl
		e.live--
	}
}

// LimitError reports that the simulation exceeded its cycle limit.
type LimitError struct {
	Limit Time
}

func (l *LimitError) Error() string {
	return fmt.Sprintf("sim: exceeded cycle limit %d (livelock?)", l.Limit)
}

// DeadlockError reports a simulated deadlock: parked actors with no events.
type DeadlockError struct {
	Time   Time
	Parked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d; parked actors: %v", d.Time, d.Parked)
}

// Actor is a coroutine participating in the simulation. All methods must be
// called only from the actor's own goroutine while it holds control, except
// Wake, which is called by whichever actor is currently running.
type Actor struct {
	e         *Engine
	id        uint64
	name      string
	resume    chan struct{}
	rng       *Rand
	scheduled bool
	parkedFl  bool
	finished  bool
	terminate bool
}

// errTerminated unwinds an actor goroutine during Engine.drain.
type termSignal struct{}

// Name returns the actor's diagnostic name.
func (a *Actor) Name() string { return a.name }

// ID returns the actor's unique id (1-based, in spawn order).
func (a *Actor) ID() uint64 { return a.id }

// Engine returns the owning engine.
func (a *Actor) Engine() *Engine { return a.e }

// Now returns current simulated time.
func (a *Actor) Now() Time { return a.e.now }

// Rand returns the actor's deterministic random source.
func (a *Actor) Rand() *Rand { return a.rng }

// yield hands control to the engine and blocks until redispatched.
func (a *Actor) yield() {
	a.e.ctl <- ctlMsg{}
	<-a.resume
	if a.terminate {
		panic(termSignal{})
	}
}

// Advance consumes d cycles of simulated time.
func (a *Actor) Advance(d Time) {
	a.AdvanceTo(a.e.now + d)
}

// AdvanceTo consumes simulated time until cycle t (no-op if t <= Now).
func (a *Actor) AdvanceTo(t Time) {
	if t <= a.e.now {
		return
	}
	a.e.schedule(t, a)
	a.yield()
}

// Park blocks the actor indefinitely until another actor calls Wake.
func (a *Actor) Park() {
	a.parkedFl = true
	a.e.parked[a] = struct{}{}
	a.yield()
}

// Parked reports whether the actor is currently parked.
func (a *Actor) Parked() bool { return a.parkedFl }

// Wake schedules parked actor b to resume at time at (>= Now). It panics if
// b is not parked: the layers above (thread scheduler, message system)
// guarantee wakers only target parked actors.
func (a *Actor) Wake(b *Actor, at Time) {
	a.e.wake(b, at)
}

func (e *Engine) wake(b *Actor, at Time) {
	if !b.parkedFl {
		panic(fmt.Sprintf("sim: Wake(%s): actor not parked", b.name))
	}
	if at < e.now {
		at = e.now
	}
	delete(e.parked, b)
	b.parkedFl = false
	e.schedule(at, b)
}

// WakeAt is like Wake but usable before Run begins (no running actor).
func (e *Engine) WakeAt(b *Actor, at Time) { e.wake(b, at) }

// RunActor is a convenience: the actor body recovers termSignal panics so
// drained actors exit cleanly. Engine.Spawn installs this automatically via
// the wrapper below.
func runBody(a *Actor, f func(*Actor)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(termSignal); ok {
				return
			}
			panic(r)
		}
	}()
	f(a)
}

func mix(seed, id uint64) uint64 {
	z := seed + id*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
