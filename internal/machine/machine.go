// Package machine assembles the simulated multiprocessor: an event engine,
// a cache-coherent memory system, per-node processors, and an Alewife-style
// atomic message interface. Synchronization protocols are written against
// the Context interface, which is implemented both by bare processors
// (package machine, one hardware context spinning) and by scheduled threads
// (package threads, which adds blocking and multithreaded waiting
// mechanisms).
package machine

import (
	"fmt"

	"repro/internal/memsys"
	"repro/internal/sim"
)

// Time is simulated cycles.
type Time = sim.Time

// Addr is a simulated memory address.
type Addr = memsys.Addr

// Config parameterizes the machine.
type Config struct {
	NumProcs int
	Seed     uint64
	Mem      memsys.Config

	// Message-passing interface costs (Alewife CMMU-style).
	MsgSend    Time // processor overhead to launch a message
	MsgNetwork Time // network transit latency
	MsgHandler Time // dispatch + execution occupancy of an atomic handler
}

// DefaultConfig returns the standard machine used throughout the
// experiments: Alewife-like latencies, LimitLESS directory with 5 pointers.
func DefaultConfig(numProcs int) Config {
	return Config{
		NumProcs:   numProcs,
		Seed:       0x5eed,
		Mem:        memsys.DefaultConfig(numProcs),
		MsgSend:    16,
		MsgNetwork: 22,
		MsgHandler: 34,
	}
}

// Machine is a simulated multiprocessor.
type Machine struct {
	Eng   *sim.Engine
	Mem   *memsys.System
	cfg   Config
	procs []*Proc
}

// New builds a machine from cfg.
func New(cfg Config) *Machine {
	if cfg.NumProcs <= 0 {
		panic("machine: NumProcs must be positive")
	}
	if cfg.Mem.NumNodes != cfg.NumProcs {
		cfg.Mem.NumNodes = cfg.NumProcs
	}
	m := &Machine{
		Eng: sim.New(cfg.Seed),
		Mem: memsys.New(cfg.Mem),
		cfg: cfg,
	}
	for i := 0; i < cfg.NumProcs; i++ {
		m.procs = append(m.procs, &Proc{m: m, id: i})
	}
	return m
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumProcs returns the processor count.
func (m *Machine) NumProcs() int { return m.cfg.NumProcs }

// Proc returns processor i.
func (m *Machine) Proc(i int) *Proc { return m.procs[i] }

// Run executes the simulation to completion.
func (m *Machine) Run() error { return m.Eng.Run() }

// Proc is one processing node.
type Proc struct {
	m           *Machine
	id          int
	handlerFree Time // next time the node's handler interface is free
}

// ID returns the processor number.
func (p *Proc) ID() int { return p.id }

// Context is the execution-context API that synchronization protocols are
// written against: simulated instruction timing, coherent shared memory,
// atomic read-modify-write primitives, and the message interface.
//
// Implementations: *machine.CPU (a bare hardware context that can only
// spin) and *threads.Thread (a scheduled thread that can also block).
type Context interface {
	// ProcID returns the processor this context currently runs on.
	ProcID() int
	// Now returns the current cycle.
	Now() Time
	// Advance consumes d cycles of local computation.
	Advance(d Time)
	// Rand is the context's deterministic random source.
	Rand() *sim.Rand

	// Read performs a shared-memory load.
	Read(a Addr) uint64
	// Write performs a shared-memory store.
	Write(a Addr, v uint64)
	// TestAndSet atomically sets the word to 1, returning the old value.
	TestAndSet(a Addr) uint64
	// FetchAndStore atomically swaps in v, returning the old value.
	FetchAndStore(a Addr, v uint64) uint64
	// CompareAndSwap stores nv if the word equals old; reports success.
	CompareAndSwap(a Addr, old, nv uint64) bool
	// FetchAndAdd atomically adds d, returning the old value.
	FetchAndAdd(a Addr, d uint64) uint64
	// ReadFE reads a word and its full/empty bit.
	ReadFE(a Addr) (uint64, bool)
	// WriteFull stores v and sets the full bit.
	WriteFull(a Addr, v uint64)
	// Send launches a message to processor dst; f runs there atomically.
	Send(dst int, f HandlerFunc)
}

// CPU is a bare hardware context executing on a processor. It implements
// Context. For Chapter 3 experiments each processor runs exactly one CPU.
type CPU struct {
	m *Machine
	p *Proc
	a *sim.Actor
}

// SpawnCPU starts f on processor proc at time start.
func (m *Machine) SpawnCPU(proc int, start Time, name string, f func(*CPU)) {
	p := m.procs[proc]
	m.Eng.Spawn(fmt.Sprintf("cpu%d:%s", proc, name), start, func(a *sim.Actor) {
		f(&CPU{m: m, p: p, a: a})
	})
}

// Actor exposes the underlying sim actor (used by the threads package).
func (c *CPU) Actor() *sim.Actor { return c.a }

// Machine returns the owning machine.
func (c *CPU) Machine() *Machine { return c.m }

// ProcID implements Context.
func (c *CPU) ProcID() int { return c.p.id }

// Now implements Context.
func (c *CPU) Now() Time { return c.a.Now() }

// Advance implements Context.
func (c *CPU) Advance(d Time) { c.a.Advance(d) }

// Rand implements Context.
func (c *CPU) Rand() *sim.Rand { return c.a.Rand() }

// Read implements Context.
func (c *CPU) Read(a Addr) uint64 {
	v, done := c.m.Mem.Read(c.p.id, a, c.a.Now())
	c.a.AdvanceTo(done)
	return v
}

// Write implements Context.
func (c *CPU) Write(a Addr, v uint64) {
	done := c.m.Mem.Write(c.p.id, a, v, c.a.Now())
	c.a.AdvanceTo(done)
}

// TestAndSet implements Context.
func (c *CPU) TestAndSet(a Addr) uint64 {
	old, _, done := c.m.Mem.RMW(c.p.id, a, c.a.Now(), func(o uint64) (uint64, bool) {
		return 1, true
	})
	c.a.AdvanceTo(done)
	return old
}

// FetchAndStore implements Context.
func (c *CPU) FetchAndStore(a Addr, v uint64) uint64 {
	old, _, done := c.m.Mem.RMW(c.p.id, a, c.a.Now(), func(o uint64) (uint64, bool) {
		return v, true
	})
	c.a.AdvanceTo(done)
	return old
}

// CompareAndSwap implements Context.
func (c *CPU) CompareAndSwap(a Addr, old, nv uint64) bool {
	_, stored, done := c.m.Mem.RMW(c.p.id, a, c.a.Now(), func(o uint64) (uint64, bool) {
		if o == old {
			return nv, true
		}
		return 0, false
	})
	c.a.AdvanceTo(done)
	return stored
}

// FetchAndAdd implements Context.
func (c *CPU) FetchAndAdd(a Addr, d uint64) uint64 {
	old, _, done := c.m.Mem.RMW(c.p.id, a, c.a.Now(), func(o uint64) (uint64, bool) {
		return o + d, true
	})
	c.a.AdvanceTo(done)
	return old
}

// ReadFE implements Context.
func (c *CPU) ReadFE(a Addr) (uint64, bool) {
	v, full, done := c.m.Mem.ReadFE(c.p.id, a, c.a.Now())
	c.a.AdvanceTo(done)
	return v, full
}

// WriteFull implements Context.
func (c *CPU) WriteFull(a Addr, v uint64) {
	done := c.m.Mem.WriteFull(c.p.id, a, v, c.a.Now())
	c.a.AdvanceTo(done)
}

// Send implements Context: the sender pays MsgSend cycles; the handler runs
// atomically on dst after MsgNetwork transit.
func (c *CPU) Send(dst int, f HandlerFunc) {
	c.a.Advance(c.m.cfg.MsgSend)
	c.m.deliver(dst, c.a.Now()+c.m.cfg.MsgNetwork, f)
}

// HandlerFunc is the body of an atomic message handler. It executes
// atomically with respect to all other handlers on the same node (and, in
// this model, atomically with respect to everything: it runs to completion
// at a single instant after its occupancy has been charged).
type HandlerFunc func(h *Handler)

// Handler gives a message handler its limited execution environment:
// it can read the clock, mutate node-private protocol state (ordinary Go
// data captured by the closure), send further messages, and wake waiters.
// Handlers must not block.
type Handler struct {
	m    *Machine
	proc *Proc
	a    *sim.Actor
}

// ProcID returns the node the handler runs on.
func (h *Handler) ProcID() int { return h.proc.id }

// Now returns the handler's completion instant.
func (h *Handler) Now() Time { return h.a.Now() }

// Send relays a message from within a handler (no extra sender overhead:
// launch cost is part of the handler occupancy already charged).
func (h *Handler) Send(dst int, f HandlerFunc) {
	h.m.deliver(dst, h.a.Now()+h.m.cfg.MsgNetwork, f)
}

// Wake schedules a parked actor to resume d cycles from now. The threads
// and spin-wait layers use this to deliver reply notifications.
func (h *Handler) Wake(a *sim.Actor, d Time) {
	h.a.Wake(a, h.a.Now()+d)
}

// After schedules f to execute as an atomic handler on node dst, d cycles
// from now (a software timer; used e.g. for message-combining windows).
func (h *Handler) After(d Time, dst int, f HandlerFunc) {
	h.m.deliver(dst, h.a.Now()+d, f)
}

// deliver schedules an atomic handler execution on node dst at time at.
// Handlers on one node serialize: each reserves the node's handler
// interface for MsgHandler cycles before yielding, so two handlers can
// never observe each other mid-flight.
func (m *Machine) deliver(dst int, at Time, f HandlerFunc) {
	p := m.procs[dst]
	m.Eng.Spawn(fmt.Sprintf("msg->%d", dst), at, func(a *sim.Actor) {
		start := a.Now()
		if p.handlerFree > start {
			start = p.handlerFree
		}
		done := start + m.cfg.MsgHandler
		p.handlerFree = done
		a.AdvanceTo(done)
		f(&Handler{m: m, proc: p, a: a})
	})
}
