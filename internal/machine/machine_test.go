package machine

import (
	"testing"
)

func TestCPUMemoryOps(t *testing.T) {
	m := New(DefaultConfig(4))
	a := m.Mem.Alloc(0, 1)
	var got uint64
	m.SpawnCPU(1, 0, "w", func(c *CPU) {
		c.Write(a, 5)
		if old := c.FetchAndAdd(a, 3); old != 5 {
			t.Errorf("FetchAndAdd old = %d", old)
		}
		if old := c.FetchAndStore(a, 100); old != 8 {
			t.Errorf("FetchAndStore old = %d", old)
		}
		if !c.CompareAndSwap(a, 100, 1) {
			t.Error("CAS should succeed")
		}
		if c.CompareAndSwap(a, 100, 2) {
			t.Error("CAS should fail")
		}
		got = c.Read(a)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("final value %d", got)
	}
}

func TestTestAndSetMutualExclusion(t *testing.T) {
	m := New(DefaultConfig(8))
	lock := m.Mem.Alloc(0, 1)
	counter := 0
	inCS := false
	for p := 0; p < 8; p++ {
		m.SpawnCPU(p, 0, "worker", func(c *CPU) {
			for i := 0; i < 20; i++ {
				for c.TestAndSet(lock) != 0 {
					c.Advance(10)
				}
				if inCS {
					t.Error("mutual exclusion violated")
				}
				inCS = true
				c.Advance(30)
				inCS = false
				c.Write(lock, 0)
				c.Advance(Time(c.Rand().Intn(50)))
			}
			counter += 20
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != 160 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestMessageDeliveryAndReply(t *testing.T) {
	m := New(DefaultConfig(4))
	serverVal := uint64(0) // node-1-private state, touched only by handlers
	var replyAt Time
	m.SpawnCPU(0, 0, "client", func(c *CPU) {
		done := false
		me := c.Actor()
		c.Send(1, func(h *Handler) {
			serverVal += 7
			h.Send(0, func(h2 *Handler) {
				done = true
				h2.Wake(me, 1)
			})
		})
		if !done {
			me.Park()
		}
		replyAt = c.Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if serverVal != 7 {
		t.Fatalf("handler did not run: %d", serverVal)
	}
	cfg := m.Config()
	min := cfg.MsgSend + 2*cfg.MsgNetwork + 2*cfg.MsgHandler
	if replyAt < min {
		t.Fatalf("round trip %d < theoretical min %d", replyAt, min)
	}
}

func TestHandlersSerializePerNode(t *testing.T) {
	m := New(DefaultConfig(4))
	var times []Time
	for p := 1; p < 4; p++ {
		m.SpawnCPU(p, 0, "sender", func(c *CPU) {
			c.Send(0, func(h *Handler) {
				times = append(times, h.Now())
			})
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("%d handlers ran", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] < m.Config().MsgHandler {
			t.Fatalf("handlers overlapped: %v", times)
		}
	}
}

func TestHandlerOnSameNodeAsCPU(t *testing.T) {
	// A CPU can message its own node; the handler still runs atomically.
	m := New(DefaultConfig(2))
	hit := false
	m.SpawnCPU(0, 0, "self", func(c *CPU) {
		c.Send(0, func(h *Handler) { hit = true })
		c.Advance(1000)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("self-message handler did not run")
	}
}

func TestContentionSlowsRMW(t *testing.T) {
	// Hot-spot polling: per-op completion time under 16 pollers should be
	// much higher than under 1 due to module occupancy and invalidations.
	perOp := func(procs int) Time {
		m := New(DefaultConfig(16))
		hot := m.Mem.Alloc(0, 1)
		var total Time
		for p := 0; p < procs; p++ {
			m.SpawnCPU(p, 0, "poller", func(c *CPU) {
				for i := 0; i < 50; i++ {
					c.TestAndSet(hot)
				}
				if c.Now() > total {
					total = c.Now()
				}
			})
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return total / Time(50)
	}
	if perOp(16) < 2*perOp(1) {
		t.Fatal("contention did not slow down hot-spot RMWs")
	}
}
