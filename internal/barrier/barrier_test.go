package barrier

import (
	"fmt"
	"testing"

	"repro/internal/machine"
)

// episodes runs rounds barrier episodes over procs processors with the
// given per-round compute skew, checking the barrier property, and returns
// elapsed cycles.
func episodes(t *testing.T, mk func(m *machine.Machine) Barrier, procs, rounds int, skew int) machine.Time {
	t.Helper()
	m := machine.New(machine.DefaultConfig(procs))
	b := mk(m)
	counts := make([]int, rounds)
	var end machine.Time
	for p := 0; p < procs; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for r := 0; r < rounds; r++ {
				c.Advance(machine.Time(c.Rand().Intn(skew) + 10))
				counts[r]++
				b.Wait(c)
				if counts[r] != procs {
					t.Errorf("%s: round %d passed with %d/%d arrivals", b.Name(), r, counts[r], procs)
				}
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return end
}

func TestBarrierProperty(t *testing.T) {
	for _, mk := range []func(m *machine.Machine) Barrier{
		func(m *machine.Machine) Barrier { return NewCentral(m.Mem, 0, m.NumProcs()) },
		func(m *machine.Machine) Barrier { return NewTree(m.Mem, m.NumProcs(), 0) },
		func(m *machine.Machine) Barrier { return NewReactive(m.Mem, 0, m.NumProcs()) },
	} {
		for _, procs := range []int{1, 2, 5, 16, 33} {
			episodes(t, mk, procs, 6, 400)
		}
	}
}

func TestTreeBeatsCentralAtScale(t *testing.T) {
	// The contention-dependent trade-off: the combining tree must win at
	// 64 participants (serialized central counter), the central barrier at
	// 8 (the tree's extra level; at 4 participants a radix-4 tree is a
	// single node and the protocols coincide).
	central := func(m *machine.Machine) Barrier { return NewCentral(m.Mem, 0, m.NumProcs()) }
	tree := func(m *machine.Machine) Barrier { return NewTree(m.Mem, m.NumProcs(), 0) }
	c8 := episodes(t, central, 8, 8, 100)
	t8 := episodes(t, tree, 8, 8, 100)
	if c8 >= t8 {
		t.Errorf("8 procs: central (%d) should beat tree (%d)", c8, t8)
	}
	c64 := episodes(t, central, 64, 8, 100)
	t64 := episodes(t, tree, 64, 8, 100)
	if t64 >= c64 {
		t.Errorf("64 procs: tree (%d) should beat central (%d)", t64, c64)
	}
}

func TestReactiveBarrierSwitches(t *testing.T) {
	// At 64 participants the reactive barrier must adopt the tree and land
	// near it; at 4 it must stay central.
	m := machine.New(machine.DefaultConfig(64))
	rb := NewReactive(m.Mem, 0, 64)
	var end machine.Time
	for p := 0; p < 64; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for r := 0; r < 10; r++ {
				c.Advance(machine.Time(c.Rand().Intn(100) + 10))
				rb.Wait(c)
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if rb.Mode(m.Mem) != modeTree {
		t.Fatalf("mode = %d at 64 participants, want tree", rb.Mode(m.Mem))
	}
	if rb.Changes == 0 {
		t.Fatal("no protocol change at 64 participants")
	}

	m2 := machine.New(machine.DefaultConfig(8))
	rb2 := NewReactive(m2.Mem, 0, 8)
	for p := 0; p < 8; p++ {
		m2.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for r := 0; r < 10; r++ {
				c.Advance(machine.Time(c.Rand().Intn(100) + 10))
				rb2.Wait(c)
			}
		})
	}
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	if rb2.Mode(m2.Mem) != modeCentral {
		t.Fatalf("mode = %d at 8 participants, want central", rb2.Mode(m2.Mem))
	}
}

func TestReactiveBarrierNearBest(t *testing.T) {
	for _, procs := range []int{8, 64} {
		central := episodes(t, func(m *machine.Machine) Barrier { return NewCentral(m.Mem, 0, m.NumProcs()) }, procs, 10, 100)
		tree := episodes(t, func(m *machine.Machine) Barrier { return NewTree(m.Mem, m.NumProcs(), 0) }, procs, 10, 100)
		re := episodes(t, func(m *machine.Machine) Barrier { return NewReactive(m.Mem, 0, m.NumProcs()) }, procs, 10, 100)
		best := central
		if tree < best {
			best = tree
		}
		if float64(re) > 1.3*float64(best) {
			t.Errorf("procs=%d: reactive %d more than 30%% above best %d (central %d, tree %d)",
				procs, re, best, central, tree)
		}
	}
}

func TestTreeStructure(t *testing.T) {
	m := machine.New(machine.DefaultConfig(64))
	b := NewTree(m.Mem, 64, 4)
	// 64 participants at radix 4: 16 leaves + 4 + 1 = 21 nodes.
	if len(b.nodes) != 21 {
		t.Fatalf("node count = %d, want 21", len(b.nodes))
	}
	roots := 0
	for _, nd := range b.nodes {
		if nd.parent == -1 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("%d roots", roots)
	}
}

func TestBarrierDeterminism(t *testing.T) {
	mk := func(m *machine.Machine) Barrier { return NewReactive(m.Mem, 0, m.NumProcs()) }
	e1 := episodes(t, mk, 16, 5, 300)
	e2 := episodes(t, mk, 16, 5, 300)
	if e1 != e2 {
		t.Fatalf("non-deterministic: %d vs %d", e1, e2)
	}
	_ = fmt.Sprint() // keep fmt for debugging convenience
}
