// Package barrier implements barrier protocols and a reactive barrier that
// selects between them — the extension Section 6.2 of the thesis proposes
// as future work ("apply the same framework to barriers").
//
// Two protocols with the classic contention-dependent trade-off:
//
//   - CentralBarrier: a fetch&add counter plus a sense-reversing release
//     word. Minimal latency for small participant counts; the counter and
//     the release broadcast serialize at one home node, so arrival and
//     wakeup cost grow linearly with participants.
//   - TreeBarrier: a static radix-4 combining tree (Yew-Tzeng-Lawrie
//     style). Arrival propagates partial counts up the tree and the release
//     fans out down it, so no single location sees more than radix
//     arrivals; higher fixed cost for small groups.
//
// ReactiveBarrier starts centralized and switches protocols between
// episodes, based on the measured gap between first arrival and release —
// the barrier analogue of the thesis's contention monitoring. The episode
// boundary is a natural consensus point: the releasing process is alone
// (every other participant is waiting), so it can switch protocols with
// plain writes, a property the thesis's locks had to build with consensus
// objects.
package barrier

import (
	"repro/internal/machine"
	"repro/internal/memsys"
)

// Time is simulated cycles.
type Time = machine.Time

// Barrier synchronizes n participants per episode.
type Barrier interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// Wait blocks (spinning) until all participants have arrived.
	Wait(c machine.Context)
}

// CentralBarrier is the centralized sense-reversing barrier.
type CentralBarrier struct {
	n     int
	count memsys.Addr
	sense memsys.Addr // release epoch word; waiters read-poll it
}

// NewCentral builds a centralized barrier for n participants on node home.
func NewCentral(mem *memsys.System, home, n int) *CentralBarrier {
	return &CentralBarrier{
		n:     n,
		count: mem.Alloc(home, 1),
		sense: mem.Alloc(home, 1),
	}
}

// Name implements Barrier.
func (b *CentralBarrier) Name() string { return "central" }

// Wait implements Barrier.
func (b *CentralBarrier) Wait(c machine.Context) {
	epoch := c.Read(b.sense)
	pos := c.FetchAndAdd(b.count, 1)
	if pos == uint64(b.n-1) {
		c.Write(b.count, 0)
		c.Write(b.sense, epoch+1)
		return
	}
	for c.Read(b.sense) == epoch {
		c.Advance(2)
	}
}

// TreeBarrier is a static combining-tree barrier of the given radix: each
// node has an arrival counter; the last arrival at a node propagates to the
// parent; the release flips per-node epoch words top-down, which waiters
// read-poll locally.
type TreeBarrier struct {
	n     int
	radix int
	nodes []*tbNode
	leaf  []int // participant -> leaf node index
	// epoch[i] counts participant i's completed episodes. Release words
	// hold the latest released episode number; waiters poll for
	// release >= their episode, which is immune to the re-entry race
	// where a participant reads a node's release word before the
	// top-down sweep of the previous episode has reached it.
	epoch []uint64
}

type tbNode struct {
	parent  int // -1 for root
	expect  int // arrivals expected at this node
	count   memsys.Addr
	release memsys.Addr
}

// NewTree builds a combining-tree barrier for n participants with the
// given radix (0 = radix 4). Node state is striped across the machine.
func NewTree(mem *memsys.System, n, radix int) *TreeBarrier {
	if radix <= 1 {
		radix = 4
	}
	b := &TreeBarrier{n: n, radix: radix, leaf: make([]int, n), epoch: make([]uint64, n)}
	procs := mem.Config().NumNodes
	// Build leaves over participant groups, then parent levels.
	type level struct{ nodes []int }
	var cur []int
	for i := 0; i < n; i += radix {
		cnt := radix
		if i+cnt > n {
			cnt = n - i
		}
		idx := len(b.nodes)
		b.nodes = append(b.nodes, &tbNode{
			parent:  -1,
			expect:  cnt,
			count:   mem.Alloc(idx%procs, 1),
			release: mem.Alloc(idx%procs, 1),
		})
		for k := 0; k < cnt; k++ {
			b.leaf[i+k] = idx
		}
		cur = append(cur, idx)
	}
	for len(cur) > 1 {
		var next []int
		for i := 0; i < len(cur); i += radix {
			cnt := radix
			if i+cnt > len(cur) {
				cnt = len(cur) - i
			}
			idx := len(b.nodes)
			b.nodes = append(b.nodes, &tbNode{
				parent:  -1,
				expect:  cnt,
				count:   mem.Alloc(idx%procs, 1),
				release: mem.Alloc(idx%procs, 1),
			})
			for k := 0; k < cnt; k++ {
				b.nodes[cur[i+k]].parent = idx
			}
			next = append(next, idx)
		}
		cur = next
	}
	return b
}

// Name implements Barrier.
func (b *TreeBarrier) Name() string { return "combining-tree" }

// Wait implements Barrier. The participant that completes a node's count
// continues to the parent; the one that completes the root releases every
// node's release word with the episode number.
func (b *TreeBarrier) Wait(c machine.Context) {
	me := c.ProcID() % b.n
	b.epoch[me]++
	ep := b.epoch[me]
	node := b.leaf[me]
	for {
		nd := b.nodes[node]
		pos := c.FetchAndAdd(nd.count, 1)
		if pos != uint64(nd.expect-1) {
			// Not the last at this node: wait for this episode's release.
			for c.Read(nd.release) < ep {
				c.Advance(2)
			}
			return
		}
		c.Write(nd.count, 0)
		if nd.parent == -1 {
			b.release(c, ep)
			return
		}
		node = nd.parent
	}
}

// release publishes episode ep on every node, top-down, fanning the
// release invalidations across the nodes' home modules.
func (b *TreeBarrier) release(c machine.Context, ep uint64) {
	for i := len(b.nodes) - 1; i >= 0; i-- {
		c.Write(b.nodes[i].release, ep)
	}
}

// ReactiveBarrier selects between a centralized and a combining-tree
// barrier per episode. The releasing participant is serial at the episode
// boundary, so the protocol change needs no further coordination — it
// writes the mode word before releasing the waiters of the old protocol.
type ReactiveBarrier struct {
	n       int
	mode    memsys.Addr
	central *CentralBarrier
	tree    *TreeBarrier

	// EpisodeCostLimit is the measured episode span (first arrival to
	// last exit) above which the central protocol is judged contended,
	// and half of which is the threshold for returning to it. Tuned like
	// the lock policies (Section 3.7.2).
	EpisodeCostLimit Time

	arrivals int
	episode  int
	// slots tracks the two episodes that can be in flight at once (the
	// current one plus the previous one's stragglers).
	slots    [2]episodeRecord
	prevSpan Time // full span of the last fully-exited episode (0 = none)

	// Changes counts protocol switches (stats).
	Changes uint64
}

type episodeRecord struct {
	start Time
	exits int
}

// Barrier modes.
const (
	modeCentral uint64 = 0
	modeTree    uint64 = 1
)

// NewReactive builds a reactive barrier for n participants.
func NewReactive(mem *memsys.System, home, n int) *ReactiveBarrier {
	b := &ReactiveBarrier{
		n:       n,
		mode:    mem.Alloc(home, 1),
		central: NewCentral(mem, home, n),
		tree:    NewTree(mem, n, 0),
		// Default threshold: the tree pays ~2 levels of fetch&add plus
		// release sweeps; prefer it once the central episode span exceeds
		// a few hundred cycles of serialized arrivals.
		EpisodeCostLimit: 60 * Time(n),
	}
	return b
}

// Name implements Barrier.
func (b *ReactiveBarrier) Name() string { return "reactive" }

// Mode returns the current protocol (test use): 0 central, 1 tree.
func (b *ReactiveBarrier) Mode(mem *memsys.System) uint64 { return mem.Peek(b.mode) }

// Wait implements Barrier.
//
// Episode accounting is engine-serialized Go state. The switching decision
// is made by the single releasing participant (the last arrival, which is
// alone at that instant — every other participant is waiting inside the
// component barrier), using the full measured span (first arrival to last
// exit) of the most recent completed episode: the quantity that the
// central barrier's serialized arrivals and wakeup invalidations inflate.
func (b *ReactiveBarrier) Wait(c machine.Context) {
	slot := b.episode & 1
	if b.arrivals == 0 {
		b.slots[slot] = episodeRecord{start: c.Now()}
	}
	b.arrivals++
	last := b.arrivals == b.n
	mode := c.Read(b.mode)
	if last {
		b.arrivals = 0
		b.episode++
		if b.prevSpan > 0 {
			if mode == modeCentral && b.prevSpan > b.EpisodeCostLimit {
				c.Write(b.mode, modeTree)
				b.Changes++
			} else if mode == modeTree && b.prevSpan < b.EpisodeCostLimit/2 {
				c.Write(b.mode, modeCentral)
				b.Changes++
			}
		}
	}
	if mode == modeCentral {
		b.central.Wait(c)
	} else {
		b.tree.Wait(c)
	}
	rec := &b.slots[slot]
	rec.exits++
	if rec.exits == b.n {
		b.prevSpan = c.Now() - rec.start
	}
}
