package memsys

import (
	"testing"
	"testing/quick"
)

func sys(n int) *System { return New(DefaultConfig(n)) }

func TestAddrHome(t *testing.T) {
	s := sys(8)
	for h := 0; h < 8; h++ {
		a := s.Alloc(h, 4)
		if a.Home() != h {
			t.Fatalf("home of alloc on %d = %d", h, a.Home())
		}
	}
}

func TestAllocDistinct(t *testing.T) {
	s := sys(4)
	seen := map[Addr]bool{}
	for i := 0; i < 100; i++ {
		a := s.Alloc(i%4, 3)
		if seen[a] {
			t.Fatalf("duplicate address %v", a)
		}
		seen[a] = true
	}
}

func TestReadMissThenHit(t *testing.T) {
	s := sys(4)
	a := s.Alloc(1, 1)
	s.Poke(a, 42)
	v, done := s.Read(0, a, 100)
	if v != 42 {
		t.Fatalf("read value %d", v)
	}
	missLat := done - 100
	if missLat < s.cfg.RemoteMiss {
		t.Fatalf("remote miss latency %d < %d", missLat, s.cfg.RemoteMiss)
	}
	v2, done2 := s.Read(0, a, done)
	if v2 != 42 || done2-done != s.cfg.CacheHit {
		t.Fatalf("second read should hit: lat=%d", done2-done)
	}
}

func TestLocalVsRemoteMiss(t *testing.T) {
	s := sys(4)
	a := s.Alloc(2, 1)
	_, dLocal := s.Read(2, a, 0)
	b := s.Alloc(2, 1)
	_, dRemote := s.Read(0, b, 0)
	if dLocal >= dRemote {
		t.Fatalf("local miss %d should be cheaper than remote %d", dLocal, dRemote)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	s := sys(8)
	a := s.Alloc(0, 1)
	// Four readers cache the line.
	now := Time(0)
	for p := 1; p <= 4; p++ {
		_, d := s.Read(p, a, now)
		now = d
	}
	// A write must pay sequential invalidations.
	d := s.Write(5, a, 9, now)
	cost := d - now
	minCost := s.cfg.RemoteMiss + 4*s.cfg.Invalidate
	if cost < minCost {
		t.Fatalf("write with 4 sharers cost %d < %d", cost, minCost)
	}
	// After the write, a reader must miss again.
	_, d2 := s.Read(1, a, d)
	if d2-d <= s.cfg.CacheHit {
		t.Fatalf("stale sharer read hit after invalidation")
	}
	if v := s.Peek(a); v != 9 {
		t.Fatalf("value %d after write", v)
	}
}

func TestSequentialInvalidationScalesWithSharers(t *testing.T) {
	cost := func(nshare int) Time {
		s := sys(64)
		a := s.Alloc(0, 1)
		for p := 1; p <= nshare; p++ {
			s.Read(p, a, 0)
		}
		d := s.Write(0, a, 1, 1000)
		return d - 1000
	}
	c8, c32 := cost(8), cost(32)
	if c32 <= c8 {
		t.Fatalf("invalidation cost should grow with sharers: 8->%d 32->%d", c8, c32)
	}
}

func TestBroadcastAblation(t *testing.T) {
	cfg := DefaultConfig(64)
	cfg.Broadcast = true
	s := New(cfg)
	a := s.Alloc(0, 1)
	for p := 1; p <= 32; p++ {
		s.Read(p, a, 0)
	}
	d := s.Write(0, a, 1, 1000)
	seq := sys(64)
	b := seq.Alloc(0, 1)
	for p := 1; p <= 32; p++ {
		seq.Read(p, b, 0)
	}
	d2 := seq.Write(0, b, 1, 1000)
	if d >= d2 {
		t.Fatalf("broadcast invalidation (%d) should beat sequential (%d)", d-1000, d2-1000)
	}
}

func TestLimitLESSOverflowTraps(t *testing.T) {
	s := sys(32)
	a := s.Alloc(0, 1)
	for p := 0; p < 10; p++ {
		s.Read(p, a, 0)
	}
	if s.Traps == 0 {
		t.Fatal("expected software-extension traps beyond 5 hardware pointers")
	}
	// Full-map directory: no traps.
	cfg := DefaultConfig(32)
	cfg.HWPointers = -1
	f := New(cfg)
	b := f.Alloc(0, 1)
	for p := 0; p < 10; p++ {
		f.Read(p, b, 0)
	}
	if f.Traps != 0 {
		t.Fatalf("full-map directory trapped %d times", f.Traps)
	}
}

func TestModuleOccupancySerializes(t *testing.T) {
	s := sys(8)
	a := s.Alloc(0, 1)
	// 16 simultaneous RMWs at t=0 from distinct processors must serialize
	// at the home module.
	var last Time
	for p := 0; p < 8; p++ {
		_, _, d := s.RMW(p, a, 0, func(old uint64) (uint64, bool) { return old + 1, true })
		if d <= last && p > 0 {
			t.Fatalf("RMW %d completed at %d, not after previous %d", p, d, last)
		}
		last = d
	}
	if s.Peek(a) != 8 {
		t.Fatalf("value %d after 8 increments", s.Peek(a))
	}
}

func TestRMWSemantics(t *testing.T) {
	s := sys(4)
	a := s.Alloc(0, 1)
	// test&set
	old, stored, _ := s.RMW(1, a, 0, func(o uint64) (uint64, bool) { return 1, true })
	if old != 0 || !stored {
		t.Fatal("test&set on clear flag")
	}
	old, _, _ = s.RMW(2, a, 10, func(o uint64) (uint64, bool) { return 1, true })
	if old != 1 {
		t.Fatal("test&set on set flag should return 1")
	}
	// compare&swap failure leaves value.
	_, stored, _ = s.RMW(3, a, 20, func(o uint64) (uint64, bool) {
		if o == 99 {
			return 7, true
		}
		return 0, false
	})
	if stored || s.Peek(a) != 1 {
		t.Fatal("failed CAS must not store")
	}
}

func TestOwnedRMWIsFast(t *testing.T) {
	s := sys(4)
	a := s.Alloc(0, 1)
	_, _, d1 := s.RMW(0, a, 0, func(o uint64) (uint64, bool) { return o + 1, true })
	_, _, d2 := s.RMW(0, a, d1, func(o uint64) (uint64, bool) { return o + 1, true })
	if d2-d1 != s.cfg.CacheHit {
		t.Fatalf("owned RMW cost %d, want cache hit %d", d2-d1, s.cfg.CacheHit)
	}
}

func TestFullEmptyBits(t *testing.T) {
	s := sys(4)
	a := s.Alloc(0, 1)
	s.SetEmpty(a)
	if s.IsFull(a) {
		t.Fatal("fresh word should be empty after SetEmpty")
	}
	_, full, _ := s.ReadFE(1, a, 0)
	if full {
		t.Fatal("ReadFE full on empty word")
	}
	s.WriteFull(2, a, 77, 10)
	v, full, _ := s.ReadFE(1, a, 50)
	if !full || v != 77 {
		t.Fatalf("ReadFE after WriteFull = (%d, %v)", v, full)
	}
}

func TestBitset(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		var b bitset
		ref := map[int]bool{}
		for _, r := range raw {
			p := int(r) % maxNodes
			b.add(p)
			ref[p] = true
		}
		if b.count() != len(ref) {
			return false
		}
		for p := range ref {
			if !b.has(p) {
				return false
			}
		}
		return len(b.members()) == len(ref)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueCoherence(t *testing.T) {
	// Values must behave sequentially consistently regardless of timing.
	if err := quick.Check(func(ops []uint8, seed uint64) bool {
		s := sys(4)
		a := s.Alloc(0, 1)
		var ref uint64
		now := Time(0)
		for i, op := range ops {
			p := i % 4
			switch op % 3 {
			case 0:
				v, d := s.Read(p, a, now)
				if v != ref {
					return false
				}
				now = d
			case 1:
				ref = uint64(op)
				now = s.Write(p, a, ref, now)
			case 2:
				old, _, d := s.RMW(p, a, now, func(o uint64) (uint64, bool) { return o + 1, true })
				if old != ref {
					return false
				}
				ref++
				now = d
			}
		}
		return s.Peek(a) == ref
	}, nil); err != nil {
		t.Fatal(err)
	}
}
