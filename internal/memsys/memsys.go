// Package memsys models a cache-coherent distributed shared memory in the
// style of the Alewife machine's LimitLESS directory protocol. It tracks,
// per cache line, which processors hold cached copies and computes the
// latency of loads, stores, and atomic read-modify-write operations:
//
//   - cache hits cost CacheHit cycles;
//   - misses travel to the line's home node (LocalMiss or RemoteMiss);
//   - each home memory module is a serially-occupied resource, so hot-spot
//     polling queues up (the effect that destroys test-and-set locks);
//   - obtaining write ownership invalidates read copies *sequentially*
//     (Alewife has no broadcast), so releasing a contended
//     test-and-test-and-set lock pays O(sharers) — the effect behind
//     Figure 3.2's poor TTS scaling;
//   - the directory keeps HWPointers hardware pointers; sharers beyond that
//     are handled by a software trap costing LimitLESSTrap cycles
//     (set HWPointers < 0 for the full-map DirNNB ablation).
//
// Data values are maintained exactly (the simulation engine serializes all
// accesses), so the coherence machinery is purely a timing model: protocols
// running on this memory observe a sequentially consistent memory.
package memsys

import "fmt"

// Time is simulated cycles (mirrors sim.Time without importing it).
type Time = uint64

// Addr names a simulated memory word. The high 24 bits carry the home node,
// the low 40 bits the word offset within that node's memory.
type Addr uint64

const homeShift = 40

// Home returns the node on which the word resides.
func (a Addr) Home() int { return int(a >> homeShift) }

// MakeAddr builds an address on the given home node.
func MakeAddr(home int, offset uint64) Addr {
	return Addr(uint64(home)<<homeShift | offset&(1<<homeShift-1))
}

// Config holds the latency parameters of the memory system. DefaultConfig
// provides values calibrated so that the synchronization baselines of the
// thesis (Figure 3.15) reproduce: ~50-cycle remote misses, sequential
// invalidations, 5 hardware directory pointers.
type Config struct {
	NumNodes      int
	CacheHit      Time // cached read or owned write
	LocalMiss     Time // miss served by the local node's memory
	RemoteMiss    Time // miss served by a remote node (~50 cycles on Alewife)
	OwnerFetch    Time // extra trip when a miss must recall a dirty line
	Invalidate    Time // per-sharer sequential invalidation cost
	ModuleBusy    Time // module occupancy per directory request
	HWPointers    int  // directory pointers in hardware; <0 = full map
	LimitLESSTrap Time // software-extension trap cost per overflowed pointer
	Broadcast     bool // ablation: single-cost broadcast invalidation
}

// DefaultConfig returns the standard Alewife-like parameterization.
func DefaultConfig(numNodes int) Config {
	return Config{
		NumNodes:      numNodes,
		CacheHit:      2,
		LocalMiss:     11,
		RemoteMiss:    38,
		OwnerFetch:    30,
		Invalidate:    7,
		ModuleBusy:    6,
		HWPointers:    5,
		LimitLESSTrap: 40,
	}
}

// IdealConfig returns a uniform, contention-free memory (used for the
// "ideal memory system" barrier measurements of Figure 4.9).
func IdealConfig(numNodes int) Config {
	return Config{
		NumNodes:   numNodes,
		CacheHit:   2,
		LocalMiss:  2,
		RemoteMiss: 2,
		HWPointers: -1,
	}
}

type line struct {
	sharers  bitset
	owner    int // exclusive owner or -1
	full     bool
	fullInit bool
}

// System is the shared-memory timing model plus the actual word values.
type System struct {
	cfg     Config
	lines   map[Addr]*line
	data    map[Addr]uint64
	modFree []Time // per-home-module next-free time
	nextOff []uint64

	// Counters for experiment reporting.
	Reads, Writes, RMWs, Misses, Invals, Traps uint64
}

// New creates a memory system with the given configuration.
func New(cfg Config) *System {
	if cfg.NumNodes <= 0 {
		panic("memsys: NumNodes must be positive")
	}
	s := &System{
		cfg:     cfg,
		lines:   make(map[Addr]*line),
		data:    make(map[Addr]uint64),
		modFree: make([]Time, cfg.NumNodes),
		nextOff: make([]uint64, cfg.NumNodes),
	}
	// Word 0 of node 0 is never allocated so that Addr 0 can serve as a
	// nil pointer in simulated linked structures (e.g. MCS queue nodes).
	s.nextOff[0] = 1
	return s
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Alloc reserves n consecutive words homed on the given node. Each word is
// its own coherence unit (synchronization variables are padded to separate
// lines, as the thesis's implementations prescribe).
func (s *System) Alloc(home int, n int) Addr {
	if home < 0 || home >= s.cfg.NumNodes {
		panic(fmt.Sprintf("memsys: Alloc on node %d of %d", home, s.cfg.NumNodes))
	}
	off := s.nextOff[home]
	s.nextOff[home] += uint64(n)
	return MakeAddr(home, off)
}

// AllocStriped reserves n words, word i homed on node i mod NumNodes.
func (s *System) AllocStriped(n int) []Addr {
	addrs := make([]Addr, n)
	for i := range addrs {
		addrs[i] = s.Alloc(i%s.cfg.NumNodes, 1)
	}
	return addrs
}

func (s *System) line(a Addr) *line {
	l, ok := s.lines[a]
	if !ok {
		l = &line{owner: -1}
		s.lines[a] = l
	}
	return l
}

// Peek returns the current value without any timing effect (for checkers
// and test assertions only).
func (s *System) Peek(a Addr) uint64 { return s.data[a] }

// Poke sets a value without timing effects (initialization).
func (s *System) Poke(a Addr, v uint64) { s.data[a] = v }

// module serializes a directory request arriving at time now and returns
// the time at which service starts.
func (s *System) module(a Addr, now Time) Time {
	h := a.Home()
	start := now
	if s.modFree[h] > start {
		start = s.modFree[h]
	}
	s.modFree[h] = start + s.cfg.ModuleBusy
	return start
}

// travel returns the request latency from proc to the home of a.
func (s *System) travel(proc int, a Addr) Time {
	if proc == a.Home() {
		return s.cfg.LocalMiss
	}
	return s.cfg.RemoteMiss
}

// ownedExclusively reports whether proc holds the line with write ownership
// and no other cached copies exist.
func (l *line) ownedExclusively(proc int) bool {
	if l.owner != proc {
		return false
	}
	n := l.sharers.count()
	return n == 0 || (n == 1 && l.sharers.has(proc))
}

// invalidateCost computes the cost of purging every cached copy except
// keep's. Invalidations are sequential unless the Broadcast ablation is on.
// Pointer overflow costs a software trap per overflowed sharer. The caller
// is responsible for setting the final directory state.
func (s *System) invalidateCost(l *line, keep int) Time {
	var cost Time
	n := 0
	overflowed := 0
	for _, p := range l.sharers.members() {
		if p == keep {
			continue
		}
		n++
		if s.cfg.HWPointers >= 0 && n > s.cfg.HWPointers {
			overflowed++
		}
	}
	if l.owner != -1 && l.owner != keep {
		cost += s.cfg.OwnerFetch
		s.Invals++
	}
	if n > 0 {
		if s.cfg.Broadcast {
			cost += s.cfg.Invalidate
		} else {
			cost += Time(n) * s.cfg.Invalidate
		}
		s.Invals += uint64(n)
	}
	if overflowed > 0 {
		cost += Time(overflowed) * s.cfg.LimitLESSTrap
		s.Traps += uint64(overflowed)
	}
	return cost
}

// Read performs a load by proc at time now; it returns the value and the
// completion time.
func (s *System) Read(proc int, a Addr, now Time) (uint64, Time) {
	s.Reads++
	l := s.line(a)
	if l.sharers.has(proc) || l.owner == proc {
		return s.data[a], now + s.cfg.CacheHit
	}
	s.Misses++
	start := s.module(a, now)
	cost := s.travel(proc, a)
	if l.owner != -1 && l.owner != proc {
		// Recall dirty copy; owner downgrades to sharer.
		cost += s.cfg.OwnerFetch
		l.sharers.add(l.owner)
		l.owner = -1
	}
	l.sharers.add(proc)
	if s.cfg.HWPointers >= 0 && l.sharers.count() > s.cfg.HWPointers {
		// Directory pointer overflow: software extends the directory.
		cost += s.cfg.LimitLESSTrap
		s.Traps++
	}
	return s.data[a], start + cost
}

// Write performs a store by proc; returns completion time.
func (s *System) Write(proc int, a Addr, v uint64, now Time) Time {
	s.Writes++
	l := s.line(a)
	if l.ownedExclusively(proc) {
		s.data[a] = v
		return now + s.cfg.CacheHit
	}
	s.Misses++
	start := s.module(a, now)
	cost := s.travel(proc, a)
	cost += s.invalidateCost(l, proc)
	l.sharers = zeroBitset
	l.owner = proc
	s.data[a] = v
	return start + cost
}

// RMW performs an atomic read-modify-write (test&set, fetch&store,
// fetch&add, compare&swap) by proc. f receives the old value and returns
// the new value and whether to store it. It returns the old value, whether
// the store happened, and the completion time.
//
// RMW always involves the home module (Alewife's colored loads/stores for
// synchronization bypass local caching of the locked state), but if proc
// already owns the line exclusively the operation is a fast owned hit.
func (s *System) RMW(proc int, a Addr, now Time, f func(old uint64) (uint64, bool)) (uint64, bool, Time) {
	s.RMWs++
	l := s.line(a)
	old := s.data[a]
	nv, store := f(old)
	if l.ownedExclusively(proc) {
		if store {
			s.data[a] = nv
		}
		return old, store, now + s.cfg.CacheHit
	}
	s.Misses++
	start := s.module(a, now)
	cost := s.travel(proc, a)
	cost += s.invalidateCost(l, proc)
	l.sharers = zeroBitset
	l.owner = proc
	if store {
		s.data[a] = nv
	}
	return old, store, start + cost
}

// --- Full/empty bits (Alewife fine-grain synchronization support) ---

// ReadFE reads the word and its full/empty bit (cache-timing like Read).
func (s *System) ReadFE(proc int, a Addr, now Time) (uint64, bool, Time) {
	l := s.line(a)
	v, t := s.Read(proc, a, now)
	return v, l.full, t
}

// WriteFull stores v and sets the full bit (timing like Write).
func (s *System) WriteFull(proc int, a Addr, v uint64, now Time) Time {
	l := s.line(a)
	t := s.Write(proc, a, v, now)
	l.full = true
	return t
}

// SetEmpty clears the full/empty bit without timing cost (initialization).
func (s *System) SetEmpty(a Addr) { s.line(a).full = false }

// IsFull reports the full/empty bit without timing cost.
func (s *System) IsFull(a Addr) bool { return s.line(a).full }

// --- sharer bitsets (up to 256 nodes; Figure 3.24 runs 128 processors) ---

const maxNodes = 256

type bitset [maxNodes / 64]uint64

var zeroBitset bitset

func (b *bitset) add(p int) {
	if p < 0 || p >= maxNodes {
		panic("memsys: node id out of bitset range")
	}
	b[p/64] |= 1 << uint(p%64)
}

func (b bitset) has(p int) bool {
	if p < 0 || p >= maxNodes {
		return false
	}
	return b[p/64]&(1<<uint(p%64)) != 0
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for x := w; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}

func (b bitset) members() []int {
	out := make([]int, 0, b.count())
	for i := 0; i < maxNodes; i++ {
		if b.has(i) {
			out = append(out, i)
		}
	}
	return out
}
