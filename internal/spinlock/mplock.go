package spinlock

import (
	"repro/internal/machine"
)

// MPQueueLock is the message-passing queue lock of Section 3.6: a
// designated manager node keeps the lock state and a FIFO queue of
// requesters in its private memory, manipulated only by atomic message
// handlers. Requesters send a REQUEST message and poll the network
// interface for the GRANT; releasing sends a RELEASE message.
type MPQueueLock struct {
	manager int
	busy    bool
	queue   []*grantCell // waiting requesters, FIFO
}

type grantCell struct {
	proc    int
	granted bool
}

// NewMPQueue creates a message-passing queue lock managed by node manager.
func NewMPQueue(manager int) *MPQueueLock {
	return &MPQueueLock{manager: manager}
}

// Name implements Lock.
func (l *MPQueueLock) Name() string { return "mp-queue" }

// grant delivers the lock to cell's owner.
func (l *MPQueueLock) grant(h *machine.Handler, cell *grantCell) {
	h.Send(cell.proc, func(*machine.Handler) {
		cell.granted = true
	})
}

// Acquire implements Lock.
func (l *MPQueueLock) Acquire(c machine.Context) Handle {
	cell := &grantCell{proc: c.ProcID()}
	c.Send(l.manager, func(h *machine.Handler) {
		if !l.busy {
			l.busy = true
			l.grant(h, cell)
			return
		}
		l.queue = append(l.queue, cell)
	})
	// Poll the network interface for the grant.
	for !cell.granted {
		c.Advance(6)
	}
	return cell
}

// Release implements Lock.
func (l *MPQueueLock) Release(c machine.Context, _ Handle) {
	c.Send(l.manager, func(h *machine.Handler) {
		if len(l.queue) == 0 {
			l.busy = false
			return
		}
		next := l.queue[0]
		l.queue = l.queue[1:]
		l.grant(h, next)
	})
}
