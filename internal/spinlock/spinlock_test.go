package spinlock

import (
	"testing"

	"repro/internal/machine"
)

// exercise runs procs processors each performing iters lock/unlock pairs
// around a critical section that checks mutual exclusion, and returns the
// total number of completed critical sections plus the final cycle count.
func exercise(t *testing.T, mk func(m *machine.Machine) Lock, procs, iters int) (int, machine.Time) {
	t.Helper()
	m := machine.New(machine.DefaultConfig(procs))
	l := mk(m)
	inCS := false
	count := 0
	var end machine.Time
	for p := 0; p < procs; p++ {
		m.SpawnCPU(p, 0, "worker", func(c *machine.CPU) {
			for i := 0; i < iters; i++ {
				h := l.Acquire(c)
				if inCS {
					t.Errorf("%s: mutual exclusion violated", l.Name())
				}
				inCS = true
				c.Advance(100) // critical section
				inCS = false
				l.Release(c, h)
				c.Advance(machine.Time(c.Rand().Intn(500))) // think time
			}
			count += iters
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatalf("%s: %v", l.Name(), err)
	}
	return count, end
}

func makers() map[string]func(m *machine.Machine) Lock {
	return map[string]func(m *machine.Machine) Lock{
		"tas": func(m *machine.Machine) Lock { return NewTAS(m.Mem, 0, DefaultBackoff) },
		"tts": func(m *machine.Machine) Lock { return NewTTS(m.Mem, 0, DefaultBackoff) },
		"mcs": func(m *machine.Machine) Lock { return NewMCS(m.Mem, 0) },
		"mp":  func(m *machine.Machine) Lock { return NewMPQueue(0) },
	}
}

func TestMutualExclusionAllProtocols(t *testing.T) {
	for name, mk := range makers() {
		for _, procs := range []int{1, 2, 7, 16} {
			name, mk, procs := name, mk, procs
			t.Run(name, func(t *testing.T) {
				n, _ := exercise(t, mk, procs, 12)
				if n != procs*12 {
					t.Fatalf("completed %d of %d critical sections", n, procs*12)
				}
			})
		}
	}
}

func TestSingleProcessorLatencyOrdering(t *testing.T) {
	// With no contention the queue lock must cost roughly twice the
	// test-and-set style locks (Figure 1.1), and the message-passing lock
	// must be the most expensive of all on this machine (Section 3.6).
	lat := func(mk func(m *machine.Machine) Lock) machine.Time {
		m := machine.New(machine.DefaultConfig(2))
		l := mk(m)
		var total machine.Time
		m.SpawnCPU(0, 0, "solo", func(c *machine.CPU) {
			// Warm caches.
			h := l.Acquire(c)
			l.Release(c, h)
			start := c.Now()
			for i := 0; i < 100; i++ {
				h := l.Acquire(c)
				l.Release(c, h)
			}
			total = (c.Now() - start) / 100
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return total
	}
	mk := makers()
	tts := lat(mk["tts"])
	mcs := lat(mk["mcs"])
	mp := lat(mk["mp"])
	if !(tts < mcs) {
		t.Errorf("uncontended: tts (%d) should beat mcs (%d)", tts, mcs)
	}
	if float64(mcs) < 1.5*float64(tts) {
		t.Errorf("mcs (%d) should be ~2x tts (%d) uncontended", mcs, tts)
	}
	if !(mcs < mp) {
		t.Errorf("mcs (%d) should beat mp-queue (%d) on this machine", mcs, mp)
	}
}

func TestMCSFairnessFIFO(t *testing.T) {
	// Once all waiters are queued, the MCS lock grants in FIFO order.
	m := machine.New(machine.DefaultConfig(8))
	l := NewMCS(m.Mem, 0)
	var order []int
	// Holder acquires first, everyone queues in staggered order, holder
	// releases; grants must follow queue order.
	m.SpawnCPU(0, 0, "holder", func(c *machine.CPU) {
		h := l.Acquire(c)
		c.Advance(50000) // long enough for all waiters to enqueue
		l.Release(c, h)
	})
	for p := 1; p < 8; p++ {
		p := p
		m.SpawnCPU(p, machine.Time(p)*1000, "waiter", func(c *machine.CPU) {
			h := l.Acquire(c)
			order = append(order, p)
			c.Advance(10)
			l.Release(c, h)
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, p := range order {
		if p != i+1 {
			t.Fatalf("MCS grant order not FIFO: %v", order)
		}
	}
}

func TestMCSUsurperRace(t *testing.T) {
	// Two processors trading a lock with tiny critical sections exercises
	// the no-compare&swap release race (Section 3.5.3). Must stay correct.
	n, _ := exercise(t, func(m *machine.Machine) Lock { return NewMCS(m.Mem, 0) }, 2, 300)
	if n != 600 {
		t.Fatalf("completed %d", n)
	}
}

func TestContentionScalingShape(t *testing.T) {
	// Figure 3.15 shape: at 16+ processors the MCS lock's per-CS overhead
	// must beat the TAS lock's.
	perCS := func(mk func(m *machine.Machine) Lock, procs int) machine.Time {
		m := machine.New(machine.DefaultConfig(procs))
		l := mk(m)
		iters := 40
		var end machine.Time
		for p := 0; p < procs; p++ {
			m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
				for i := 0; i < iters; i++ {
					h := l.Acquire(c)
					c.Advance(100)
					l.Release(c, h)
					c.Advance(machine.Time(c.Rand().Intn(500)))
				}
				if c.Now() > end {
					end = c.Now()
				}
			})
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return end / machine.Time(procs*iters)
	}
	mk := makers()
	tas16 := perCS(mk["tas"], 16)
	mcs16 := perCS(mk["mcs"], 16)
	if mcs16 >= tas16 {
		t.Errorf("at 16 procs MCS (%d/CS) should beat TAS (%d/CS)", mcs16, tas16)
	}
}

func TestDeterministicRuns(t *testing.T) {
	for name, mk := range makers() {
		_, e1 := exercise(t, mk, 5, 10)
		_, e2 := exercise(t, mk, 5, 10)
		if e1 != e2 {
			t.Errorf("%s: non-deterministic end time %d vs %d", name, e1, e2)
		}
	}
}

func TestMPQueueFIFO(t *testing.T) {
	m := machine.New(machine.DefaultConfig(6))
	l := NewMPQueue(0)
	var order []int
	m.SpawnCPU(1, 0, "holder", func(c *machine.CPU) {
		h := l.Acquire(c)
		c.Advance(30000)
		l.Release(c, h)
	})
	for p := 2; p < 6; p++ {
		p := p
		m.SpawnCPU(p, machine.Time(p)*1500, "waiter", func(c *machine.CPU) {
			h := l.Acquire(c)
			order = append(order, p)
			l.Release(c, h)
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for i, p := range order {
		if p != i+2 {
			t.Fatalf("MP queue lock not FIFO: %v", order)
		}
	}
}
