package spinlock

import (
	"repro/internal/machine"
	"repro/internal/memsys"
)

// Backoff holds the randomized-exponential-backoff parameters used by the
// polling lock protocols (Anderson [5]; Section 3.1.1). The mean delay
// doubles after each failed test&set and halves after each success; the
// maximum bound must accommodate the largest expected number of contenders.
type Backoff struct {
	Initial machine.Time
	Max     machine.Time
}

// DefaultBackoff is tuned for up to 64 contending processors, matching the
// thesis's experimental setup.
var DefaultBackoff = Backoff{Initial: 16, Max: 1500}

// delay performs one randomized backoff pause and returns the doubled mean.
func (b Backoff) delay(c machine.Context, mean machine.Time) machine.Time {
	if mean > 0 {
		c.Advance(c.Rand().Uint64n(mean) + 1)
	}
	next := mean * 2
	if next > b.Max {
		next = b.Max
	}
	return next
}

// TASLock is the test-and-set spin lock: it polls the flag with test&set
// (an exclusive-ownership RMW on every poll), with randomized exponential
// backoff between failed attempts.
type TASLock struct {
	flag memsys.Addr
	bo   Backoff
	// per-processor persistent mean delay (halved on success, doubled on
	// failure), as Anderson prescribes.
	mean []machine.Time
}

// NewTAS allocates a test-and-set lock homed on node home.
func NewTAS(mem *memsys.System, home int, bo Backoff) *TASLock {
	return &TASLock{
		flag: mem.Alloc(home, 1),
		bo:   bo,
		mean: make([]machine.Time, mem.Config().NumNodes),
	}
}

// Name implements Lock.
func (l *TASLock) Name() string { return "test&set" }

// Acquire implements Lock.
func (l *TASLock) Acquire(c machine.Context) Handle {
	p := c.ProcID()
	mean := l.mean[p]
	if mean == 0 {
		mean = l.bo.Initial
	}
	for {
		if c.TestAndSet(l.flag) == 0 {
			l.mean[p] = mean / 2
			return nil
		}
		instr(c, 2)
		mean = l.bo.delay(c, mean)
	}
}

// Release implements Lock.
func (l *TASLock) Release(c machine.Context, _ Handle) {
	c.Write(l.flag, 0)
}

// TTSLock is the test-and-test-and-set spin lock: waiters read-poll the
// (cached) flag and attempt test&set only when it reads free, again with
// randomized exponential backoff after failed test&sets.
type TTSLock struct {
	flag memsys.Addr
	bo   Backoff
	mean []machine.Time
}

// NewTTS allocates a test-and-test-and-set lock homed on node home.
func NewTTS(mem *memsys.System, home int, bo Backoff) *TTSLock {
	return &TTSLock{
		flag: mem.Alloc(home, 1),
		bo:   bo,
		mean: make([]machine.Time, mem.Config().NumNodes),
	}
}

// Name implements Lock.
func (l *TTSLock) Name() string { return "test&test&set" }

// Acquire implements Lock.
func (l *TTSLock) Acquire(c machine.Context) Handle {
	p := c.ProcID()
	mean := l.mean[p]
	if mean == 0 {
		mean = l.bo.Initial
	}
	for {
		// Read-poll while the lock is held: hits in the local cache.
		for c.Read(l.flag) != 0 {
			instr(c, 2)
		}
		if c.TestAndSet(l.flag) == 0 {
			l.mean[p] = mean / 2
			return nil
		}
		instr(c, 2)
		mean = l.bo.delay(c, mean)
	}
}

// Release implements Lock.
func (l *TTSLock) Release(c machine.Context, _ Handle) {
	c.Write(l.flag, 0)
}
