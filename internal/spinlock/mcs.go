package spinlock

import (
	"repro/internal/machine"
	"repro/internal/memsys"
)

// Queue-node status values. The zero value is "waiting" so fresh simulated
// memory starts in the correct state.
const (
	qWaiting uint64 = 0
	qGo      uint64 = 1
)

// QNode is an MCS queue node in simulated memory: word 0 is the next
// pointer (an Addr, 0 = nil), word 1 the status flag a waiter spins on.
// Each processor's node lives in its local memory so waiting is local
// spinning — the property that makes queue locks scale.
type QNode struct {
	Base memsys.Addr
}

// Next returns the address of the node's next-pointer word.
func (q QNode) Next() memsys.Addr { return q.Base }

// Status returns the address of the node's status word.
func (q QNode) Status() memsys.Addr { return q.Base + 1 }

// NewQNode allocates a queue node in proc's local memory.
func NewQNode(mem *memsys.System, proc int) QNode {
	return QNode{Base: mem.Alloc(proc, 2)}
}

// MCSLock is the Mellor-Crummey–Scott list-based queue lock (Figure 3.1),
// using the fetch&store-only release path (Alewife has no compare&swap;
// the thesis uses this version, whose low-contention race Section 3.5.3
// discusses).
type MCSLock struct {
	tail  memsys.Addr
	nodes []QNode
	mem   *memsys.System
}

// NewMCS allocates an MCS lock whose tail pointer is homed on node home.
func NewMCS(mem *memsys.System, home int) *MCSLock {
	return &MCSLock{
		tail:  mem.Alloc(home, 1),
		nodes: make([]QNode, mem.Config().NumNodes),
		mem:   mem,
	}
}

// Name implements Lock.
func (l *MCSLock) Name() string { return "mcs-queue" }

// node returns proc's per-lock queue node, allocating it on first use.
func (l *MCSLock) node(proc int) QNode {
	if l.nodes[proc].Base == 0 {
		l.nodes[proc] = NewQNode(l.mem, proc)
	}
	return l.nodes[proc]
}

// Acquire implements Lock.
func (l *MCSLock) Acquire(c machine.Context) Handle {
	instr(c, 6) // queue-node setup bookkeeping
	i := l.node(c.ProcID())
	c.Write(i.Next(), 0)
	c.Write(i.Status(), qWaiting)
	pred := c.FetchAndStore(l.tail, uint64(i.Base))
	if pred != 0 {
		// Link behind predecessor and spin locally.
		c.Write(QNode{Base: memsys.Addr(pred)}.Next(), uint64(i.Base))
		for c.Read(i.Status()) != qGo {
			instr(c, 2)
		}
	}
	return i
}

// Release implements Lock.
func (l *MCSLock) Release(c machine.Context, h Handle) {
	instr(c, 4) // successor-check bookkeeping
	i := h.(QNode)
	next := c.Read(i.Next())
	if next == 0 {
		// No known successor: try to detach the queue.
		oldTail := c.FetchAndStore(l.tail, 0)
		if oldTail == uint64(i.Base) {
			return // really had no successor
		}
		// Someone was enqueueing. Restore the tail; whoever swapped in
		// while the tail was nil (the "usurper") now holds the lock.
		usurper := c.FetchAndStore(l.tail, oldTail)
		for next = c.Read(i.Next()); next == 0; next = c.Read(i.Next()) {
			instr(c, 2)
		}
		if usurper != 0 {
			// Splice our detached waiters behind the usurper.
			c.Write(QNode{Base: memsys.Addr(usurper)}.Next(), next)
		} else {
			c.Write(QNode{Base: memsys.Addr(next)}.Status(), qGo)
		}
		return
	}
	c.Write(QNode{Base: memsys.Addr(next)}.Status(), qGo)
}
