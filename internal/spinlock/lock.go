// Package spinlock implements the passive mutual-exclusion protocols the
// thesis evaluates (Section 3.1.1): test-and-set with randomized exponential
// backoff, test-and-test-and-set with backoff, the MCS queue lock, and a
// message-passing queue lock. Each runs unmodified on the simulated
// multiprocessor via machine.Context.
//
// These are the building blocks the reactive spin lock (internal/core)
// selects among; the passive versions here are also the baselines for
// Figures 3.2, 3.15, 3.16 and 3.26.
package spinlock

import (
	"repro/internal/machine"
)

// Lock is a mutual-exclusion lock usable from simulated contexts. Acquire
// returns an opaque handle that must be passed to the matching Release
// (queue-based protocols thread their queue node through it).
type Lock interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// Acquire blocks (spinning) until the lock is held.
	Acquire(c machine.Context) Handle
	// Release frees the lock.
	Release(c machine.Context, h Handle)
}

// Handle is protocol-private per-acquisition state.
type Handle interface{}

// instr charges c for a small block of local instructions (branches, moves)
// that the protocol executes besides its memory operations.
func instr(c machine.Context, n machine.Time) { c.Advance(n) }
