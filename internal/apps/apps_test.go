package apps

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fetchop"
	"repro/internal/machine"
	"repro/internal/spinlock"
	"repro/internal/threads"
	"repro/internal/waiting"
)

func fopFor(m *machine.Machine, kind string, nleaves int) fetchop.FetchOp {
	switch kind {
	case "queue":
		return fetchop.NewQueueLockFOP(m.Mem, 0)
	case "combtree":
		return fetchop.NewCombTree(m.Mem, nleaves, 0)
	case "reactive":
		return core.NewReactiveFetchOp(m.Mem, 0, nleaves)
	default:
		panic(kind)
	}
}

func TestGamtebRunsAllProtocols(t *testing.T) {
	for _, kind := range []string{"queue", "combtree", "reactive"} {
		m := machine.New(machine.DefaultConfig(8))
		counters := make([]fetchop.FetchOp, 9)
		for i := range counters {
			counters[i] = fopFor(m, kind, 8)
		}
		g := &Gamteb{Particles: 64, Counters: counters}
		if el := g.Run(m); el == 0 {
			t.Fatalf("%s: zero elapsed time", kind)
		}
	}
}

func TestBranchAndBoundCompletes(t *testing.T) {
	for _, kind := range []string{"queue", "reactive"} {
		m := machine.New(machine.DefaultConfig(8))
		b := NewTSP(fopFor(m, kind, 8))
		b.Depth = 6
		if el := b.Run(m); el == 0 {
			t.Fatalf("%s: zero elapsed", kind)
		}
		// Full binary tree depth 6 = 127 nodes max; pruning removes some.
		if b.Nodes < 40 || b.Nodes > 127 {
			t.Fatalf("%s: %d nodes processed", kind, b.Nodes)
		}
	}
}

func TestMP3DRuns(t *testing.T) {
	for _, mk := range []func(m *machine.Machine) spinlock.Lock{
		func(m *machine.Machine) spinlock.Lock { return spinlock.NewTAS(m.Mem, 0, spinlock.DefaultBackoff) },
		func(m *machine.Machine) spinlock.Lock { return spinlock.NewMCS(m.Mem, 0) },
		func(m *machine.Machine) spinlock.Lock { return core.NewReactiveLock(m.Mem, 0) },
	} {
		m := machine.New(machine.DefaultConfig(8))
		cells := make([]spinlock.Lock, 16)
		for i := range cells {
			cells[i] = mk(m)
		}
		app := &MP3D{CellLocks: cells, Collision: mk(m), Particles: 64, Iters: 3}
		if el := app.Run(m); el == 0 {
			t.Fatal("zero elapsed")
		}
	}
}

func TestCholeskyRuns(t *testing.T) {
	m := machine.New(machine.DefaultConfig(8))
	cols := make([]spinlock.Lock, 48)
	for i := range cols {
		cols[i] = core.NewReactiveLock(m.Mem, i%8)
	}
	app := &Cholesky{
		TaskLock:      core.NewReactiveLock(m.Mem, 0),
		ColLocks:      cols,
		Columns:       40,
		UpdatesPerCol: 3,
	}
	if el := app.Run(m); el == 0 {
		t.Fatal("zero elapsed")
	}
}

func newSched(procs int) *threads.Scheduler {
	return threads.NewScheduler(machine.New(machine.DefaultConfig(procs)), threads.DefaultCosts())
}

func waitAlgs() []waiting.Algorithm {
	costs := threads.DefaultCosts()
	return []waiting.Algorithm{
		&waiting.AlwaysSpin{},
		&waiting.AlwaysBlock{},
		waiting.NewTwoPhaseAlpha(0.54, costs),
	}
}

func TestJacobiJstrAllAlgorithms(t *testing.T) {
	// One thread per processor: pure spinning is live (every producer is
	// always scheduled), as in the thesis's Jacobi configuration.
	for _, alg := range waitAlgs() {
		s := newSched(4)
		s.Machine().Eng.SetLimit(50_000_000)
		app := &JacobiJstr{Threads: 4, Iters: 6, Grain: 800}
		if el := app.Run(s, alg); el == 0 {
			t.Fatalf("%s: zero elapsed", alg.Name())
		}
	}
}

func TestJacobiJstrMultiprogrammedBlocking(t *testing.T) {
	// With 2 threads per processor, signaling algorithms stay live because
	// blocked waiters free the processor for the not-yet-started threads.
	costs := threads.DefaultCosts()
	for _, alg := range []waiting.Algorithm{
		&waiting.AlwaysBlock{},
		waiting.NewTwoPhaseAlpha(0.54, costs),
	} {
		s := newSched(4)
		s.Machine().Eng.SetLimit(50_000_000)
		app := &JacobiJstr{Threads: 8, Iters: 6, Grain: 800}
		if el := app.Run(s, alg); el == 0 {
			t.Fatalf("%s: zero elapsed", alg.Name())
		}
	}
}

func TestFutureTreeAlgorithms(t *testing.T) {
	// The future tree over-threads the machine; pure spinning would starve
	// descendants (the starvation hazard Section 2.2.4 notes), so it runs
	// with signaling-capable algorithms only.
	costs := threads.DefaultCosts()
	for _, alg := range []waiting.Algorithm{
		&waiting.AlwaysBlock{},
		waiting.NewTwoPhaseAlpha(0.54, costs),
		waiting.NewTwoPhaseAlpha(1.0, costs),
	} {
		s := newSched(4)
		s.Machine().Eng.SetLimit(100_000_000)
		app := &FutureTree{Depth: 4, Grain: 500}
		if el := app.Run(s, alg); el == 0 {
			t.Fatalf("%s: zero elapsed", alg.Name())
		}
	}
}

func TestFutureStreamAllAlgorithms(t *testing.T) {
	for _, alg := range waitAlgs() {
		s := newSched(4)
		s.Machine().Eng.SetLimit(100_000_000)
		app := &FutureStream{Items: 20, Mean: 700, Work: 500}
		if el := app.Run(s, alg); el == 0 {
			t.Fatalf("%s: zero elapsed", alg.Name())
		}
	}
}

func TestBarrierAppsAllAlgorithms(t *testing.T) {
	for _, alg := range waitAlgs() {
		s := newSched(4)
		s.Machine().Eng.SetLimit(50_000_000)
		if el := NewJacobiBar(4, 5).Run(s, alg); el == 0 {
			t.Fatalf("%s: jacobi-bar zero elapsed", alg.Name())
		}
		s2 := newSched(4)
		s2.Machine().Eng.SetLimit(50_000_000)
		if el := NewCGrad(4, 4).Run(s2, alg); el == 0 {
			t.Fatalf("%s: cgrad zero elapsed", alg.Name())
		}
	}
}

func TestMutexAppsAllAlgorithms(t *testing.T) {
	for _, alg := range waitAlgs() {
		s := newSched(4)
		if el := (&FibHeap{Threads: 8, Ops: 10, Mean: 600}).Run(s, alg); el == 0 {
			t.Fatalf("%s: fibheap zero elapsed", alg.Name())
		}
		s2 := newSched(4)
		if el := (&MutexBench{Threads: 8, Ops: 10, CS: 150, Think: 600}).Run(s2, alg); el == 0 {
			t.Fatalf("%s: mutex zero elapsed", alg.Name())
		}
		s3 := newSched(4)
		if el := (&CountNet{Threads: 8, Width: 4, Ops: 8}).Run(s3, alg); el == 0 {
			t.Fatalf("%s: countnet zero elapsed", alg.Name())
		}
	}
}

func TestBlockingBeatsSpinningWithMultiprogramming(t *testing.T) {
	// Long producer intervals + a coworker sharing the consumer's
	// processor: always-block must beat always-spin (the raison d'être of
	// signaling mechanisms).
	elapsed := func(alg waiting.Algorithm) Time {
		s := newSched(4)
		s.Machine().Eng.SetLimit(200_000_000)
		return (&FutureStream{Items: 25, Mean: 4000, Work: 3000}).Run(s, alg)
	}
	spin := elapsed(&waiting.AlwaysSpin{})
	block := elapsed(&waiting.AlwaysBlock{})
	if block >= spin {
		t.Fatalf("always-block (%d) should beat always-spin (%d)", block, spin)
	}
}

func TestDeterministicApps(t *testing.T) {
	run := func() Time {
		s := newSched(4)
		return (&FibHeap{Threads: 8, Ops: 8, Mean: 500}).Run(s, &waiting.AlwaysBlock{})
	}
	if run() != run() {
		t.Fatal("FibHeap non-deterministic")
	}
}
