// Package apps implements the parallel application benchmarks of the
// thesis's evaluation sections. The Chapter 3 applications (Gamteb, TSP,
// AQ, MP3D, Cholesky) exercise fetch-and-op and spin-lock protocols on bare
// processors; the Chapter 4 applications (Jacobi, CGrad, FibHeap, CountNet,
// Mutex, future/J-structure benchmarks) exercise waiting algorithms on the
// thread runtime.
//
// The thesis's inputs (2048-particle Gamteb, 11-city TSP, SPLASH MP3D,
// 866x866 Cholesky) are proprietary-or-unavailable workloads; each app here
// is a synthetic equivalent that reproduces the synchronization pattern the
// thesis describes for it — which objects are contended, how contention
// scales with processors, and the computation grain between operations.
// DESIGN.md records the substitutions.
package apps

import (
	"repro/internal/fetchop"
	"repro/internal/machine"
	"repro/internal/spinlock"
)

// Time is simulated cycles.
type Time = machine.Time

// Elapsed runs the machine and returns the max completion time recorded by
// the workers via the done callback.
type tracker struct{ end Time }

func (tr *tracker) done(c machine.Context) {
	if c.Now() > tr.end {
		tr.end = c.Now()
	}
}

// Gamteb is the photon-transport Monte Carlo benchmark: each particle's
// track updates a set of nine interaction counters with fetch&increment.
// One counter (absorption) is hit far more often than the others, so at
// high processor counts it needs a combining tree while the rest are best
// served by a lock-based protocol — the case where the reactive algorithm
// beats every static choice (Section 3.5.6).
type Gamteb struct {
	Particles int
	Counters  []fetchop.FetchOp // nine interaction counters
}

// Run executes the benchmark on all processors of m and returns elapsed
// cycles.
func (g *Gamteb) Run(m *machine.Machine) Time {
	procs := m.NumProcs()
	per := g.Particles / procs
	if per == 0 {
		per = 1
	}
	tr := &tracker{}
	for p := 0; p < procs; p++ {
		m.SpawnCPU(p, 0, "gamteb", func(c *machine.CPU) {
			for i := 0; i < per; i++ {
				// Track a particle: a few hundred cycles of geometry and
				// cross-section sampling per event.
				events := 1 + c.Rand().Intn(4)
				for e := 0; e < events; e++ {
					c.Advance(Time(150 + c.Rand().Intn(300)))
					// Absorption counter is hot; the other eight are hit
					// with low probability.
					g.Counters[0].FetchAdd(c, 1)
					if k := c.Rand().Intn(12); k < 8 {
						g.Counters[1+k%(len(g.Counters)-1)].FetchAdd(c, 1)
					}
				}
			}
			tr.done(c)
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return tr.end
}

// workQueue is the concurrent queue of TSP and AQ: multiple processes
// access it simultaneously, with fetch&increment operations synchronizing
// access (the algorithm of reference [18] in the thesis). The queue
// contents are node-private data; the fetch-and-op traffic is the measured
// synchronization.
type workQueue struct {
	fop   fetchop.FetchOp
	items []workItem
	// outstanding counts popped-but-unfinished items for termination.
	outstanding int
}

type workItem struct {
	depth int
	grain Time
}

func (q *workQueue) push(c machine.Context, it workItem) {
	q.fop.FetchAdd(c, 1)
	q.items = append(q.items, it)
	q.outstanding++
}

func (q *workQueue) pop(c machine.Context) (workItem, bool) {
	q.fop.FetchAdd(c, 1)
	if len(q.items) == 0 {
		return workItem{}, false
	}
	it := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return it, true
}

func (q *workQueue) finish() { q.outstanding-- }

func (q *workQueue) drained() bool { return len(q.items) == 0 && q.outstanding == 0 }

// BranchAndBound is the shared-queue search skeleton of TSP and AQ: workers
// pop partial problems, expand them (possibly pushing children), and repeat
// until the queue drains. Grain is the mean computation per node; Depth
// bounds the search tree.
type BranchAndBound struct {
	Fop    fetchop.FetchOp
	Depth  int
	Fanout int
	Grain  Time
	// Nodes counts processed tree nodes (stats).
	Nodes int
}

// Run executes the search on all processors and returns elapsed cycles.
func (b *BranchAndBound) Run(m *machine.Machine) Time {
	q := &workQueue{fop: b.Fop}
	q.items = append(q.items, workItem{depth: 0, grain: b.Grain})
	q.outstanding = 1
	tr := &tracker{}
	for p := 0; p < m.NumProcs(); p++ {
		m.SpawnCPU(p, 0, "bnb", func(c *machine.CPU) {
			idle := 0
			for {
				it, ok := q.pop(c)
				if !ok {
					if q.drained() {
						break
					}
					idle++
					c.Advance(Time(40 + c.Rand().Intn(80)))
					continue
				}
				idle = 0
				b.Nodes++
				c.Advance(it.grain/2 + Time(c.Rand().Uint64n(uint64(it.grain))))
				if it.depth < b.Depth {
					// Prune one subtree at random sometimes, as
					// branch-and-bound does.
					kids := b.Fanout
					if c.Rand().Intn(4) == 0 {
						kids--
					}
					for k := 0; k < kids; k++ {
						q.push(c, workItem{depth: it.depth + 1, grain: it.grain})
					}
				}
				q.finish()
			}
			tr.done(c)
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return tr.end
}

// NewTSP returns the TSP configuration: fine-grained tree nodes, deep
// search — high contention on the queue's fetch&increment at 64+
// processors (Section 3.5.6).
func NewTSP(fop fetchop.FetchOp) *BranchAndBound {
	return &BranchAndBound{Fop: fop, Depth: 9, Fanout: 2, Grain: 260}
}

// NewAQ returns the adaptive-quadrature configuration: the same queue
// skeleton with coarser computation grains, hence lower contention for the
// fetch&increment than TSP.
func NewAQ(fop fetchop.FetchOp) *BranchAndBound {
	return &BranchAndBound{Fop: fop, Depth: 7, Fanout: 2, Grain: 1400}
}

// MP3D is the SPLASH rarefied-fluid-flow benchmark's locking pattern:
// per-cell locks with low contention for particle moves, plus one global
// collision-count lock that all processors hit at the end of each
// iteration (Section 3.5.6).
type MP3D struct {
	CellLocks []spinlock.Lock
	Collision spinlock.Lock
	Particles int
	Iters     int
}

// Run executes the benchmark and returns elapsed cycles.
func (a *MP3D) Run(m *machine.Machine) Time {
	procs := m.NumProcs()
	per := a.Particles / procs
	if per == 0 {
		per = 1
	}
	ncells := len(a.CellLocks)
	arrived := 0
	tr := &tracker{}
	// Simple phase barrier in Go state (engine-serialized); barrier costs
	// are not the object of this benchmark.
	phase := 0
	for p := 0; p < procs; p++ {
		m.SpawnCPU(p, 0, "mp3d", func(c *machine.CPU) {
			for it := 0; it < a.Iters; it++ {
				for i := 0; i < per; i++ {
					// Move a particle: compute, then atomic cell update.
					c.Advance(Time(80 + c.Rand().Intn(160)))
					cell := c.Rand().Intn(ncells)
					h := a.CellLocks[cell].Acquire(c)
					c.Advance(40) // update cell parameters
					a.CellLocks[cell].Release(c, h)
				}
				// End of iteration: update global collision counts —
				// everyone arrives nearly at once, so this lock sees a
				// contention burst.
				h := a.Collision.Acquire(c)
				c.Advance(60)
				a.Collision.Release(c, h)
				// Barrier.
				myPhase := phase
				arrived++
				if arrived == procs {
					arrived = 0
					phase++
				}
				for phase == myPhase && arrived != 0 {
					c.Advance(20)
				}
			}
			tr.done(c)
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return tr.end
}

// Cholesky models the SPLASH sparse Cholesky factorization's locking: a
// task queue plus per-column locks. Column updates near the supernodal
// frontier contend; most locks are quiet.
type Cholesky struct {
	TaskLock      spinlock.Lock
	ColLocks      []spinlock.Lock
	Columns       int
	UpdatesPerCol int
}

// Run executes the factorization skeleton and returns elapsed cycles.
func (a *Cholesky) Run(m *machine.Machine) Time {
	next := 0 // next column to factor (guarded by TaskLock)
	tr := &tracker{}
	for p := 0; p < m.NumProcs(); p++ {
		m.SpawnCPU(p, 0, "chol", func(c *machine.CPU) {
			for {
				h := a.TaskLock.Acquire(c)
				col := next
				next++
				a.TaskLock.Release(c, h)
				if col >= a.Columns {
					break
				}
				// Factor the column: numeric work.
				c.Advance(Time(500 + c.Rand().Intn(1000)))
				// Scatter updates into a few later columns.
				for u := 0; u < a.UpdatesPerCol; u++ {
					target := col + 1 + c.Rand().Intn(8)
					if target >= len(a.ColLocks) {
						continue
					}
					hh := a.ColLocks[target].Acquire(c)
					c.Advance(120)
					a.ColLocks[target].Release(c, hh)
				}
			}
			tr.done(c)
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return tr.end
}
