package apps

import (
	"container/heap"

	"repro/internal/constructs"
	"repro/internal/threads"
	"repro/internal/waiting"
)

// The Chapter 4 benchmarks (Table 4.2). Each takes a scheduler, a waiting
// algorithm, and size parameters, runs to completion, and returns elapsed
// cycles. Producer-consumer benchmarks exhibit roughly exponential waiting
// times; barrier benchmarks roughly uniform; mutex benchmarks bimodal
// (Section 4.7.1) — the profiles are observable via the algorithms'
// Profiler hooks.

// JacobiJstr is the J-structure Jacobi relaxation: each thread computes a
// chunk of a 1-D grid per iteration and publishes its boundary elements
// through per-iteration J-structures; neighbors consume them
// (producer-consumer synchronization, Table 4.3's Jacobi-Jstr).
type JacobiJstr struct {
	Threads int
	Iters   int
	Grain   Time // compute per chunk per iteration (mean)
}

// Run executes the benchmark and returns elapsed cycles.
func (a *JacobiJstr) Run(s *threads.Scheduler, alg waiting.Algorithm) Time {
	m := s.Machine()
	procs := m.NumProcs()
	n := a.Threads
	// bounds[i] holds thread t's boundary pair for iteration i at
	// positions 2t (left) and 2t+1 (right).
	bounds := make([]*constructs.JStructure, a.Iters+1)
	for i := range bounds {
		bounds[i] = constructs.NewJStructure(m.Mem, 2*n)
	}
	tr := &tracker{}
	for t := 0; t < n; t++ {
		t := t
		s.Spawn(t%procs, 0, "jacobi", func(th *threads.Thread) {
			// Publish iteration-0 boundaries.
			bounds[0].Write(th, 2*t, uint64(t))
			bounds[0].Write(th, 2*t+1, uint64(t))
			for it := 1; it <= a.Iters; it++ {
				// Read neighbors' previous-iteration boundaries.
				var left, right uint64
				if t > 0 {
					left = bounds[it-1].Read(th, 2*(t-1)+1, alg)
				}
				if t < n-1 {
					right = bounds[it-1].Read(th, 2*(t+1), alg)
				}
				// Relax the chunk.
				th.Advance(a.Grain/2 + Time(th.Rand().Uint64n(uint64(a.Grain))))
				v := (left + right) / 2
				bounds[it].Write(th, 2*t, v)
				bounds[it].Write(th, 2*t+1, v)
			}
			tr.done(th)
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return tr.end
}

// FutureTree is the future benchmark: a binary tree of producer threads,
// each resolving a future its parent touches (the Mul-T futures of
// Figure 4.7; exponential-ish waiting times).
type FutureTree struct {
	Depth int
	Grain Time
}

// Run executes the benchmark and returns elapsed cycles.
func (a *FutureTree) Run(s *threads.Scheduler, alg waiting.Algorithm) Time {
	m := s.Machine()
	procs := m.NumProcs()
	tr := &tracker{}
	nextProc := 0
	var spawn func(parent *threads.Thread, depth int) *constructs.Future
	spawn = func(parent *threads.Thread, depth int) *constructs.Future {
		f := constructs.NewFuture(m.Mem, nextProc%procs)
		proc := nextProc % procs
		nextProc++
		body := func(th *threads.Thread) {
			var l, r *constructs.Future
			if depth > 0 {
				l = spawn(th, depth-1)
				r = spawn(th, depth-1)
			}
			th.Advance(a.Grain/2 + Time(th.Rand().Uint64n(uint64(a.Grain))))
			v := uint64(1)
			if l != nil {
				v += l.Touch(th, alg)
				v += r.Touch(th, alg)
			}
			f.Resolve(th, v)
		}
		if parent == nil {
			s.Spawn(proc, 0, "fut", body)
		} else {
			parent.SpawnChild(proc, "fut", body)
		}
		return f
	}
	root := spawn(nil, a.Depth)
	s.Spawn(procs-1, 0, "main", func(th *threads.Thread) {
		want := uint64(1)<<uint(a.Depth+1) - 1
		if got := root.Touch(th, alg); got != want {
			panic("future tree computed wrong value")
		}
		tr.done(th)
	})
	if err := m.Run(); err != nil {
		panic(err)
	}
	return tr.end
}

// FutureStream is the producer-consumer benchmark where blocking pays off:
// the first half of the processors run dedicated producer threads that
// resolve streams of futures at exponentially distributed intervals
// (Poisson production — the restricted adversary of Section 4.4.3); each
// remaining processor runs a consumer thread plus an independent coworker
// thread. A spinning consumer starves its coworker; a blocking consumer
// lets it run. Pure spinning is live here because producers own their
// processors.
type FutureStream struct {
	Items int  // futures per producer stream
	Mean  Time // mean production interval (exponential)
	Work  Time // coworker compute per item
}

// Run executes the benchmark and returns elapsed cycles.
func (a *FutureStream) Run(s *threads.Scheduler, alg waiting.Algorithm) Time {
	m := s.Machine()
	procs := m.NumProcs()
	pairs := procs / 2
	if pairs == 0 {
		panic("apps: FutureStream needs at least 2 processors")
	}
	tr := &tracker{}
	for i := 0; i < pairs; i++ {
		stream := make([]*constructs.Future, a.Items)
		for k := range stream {
			stream[k] = constructs.NewFuture(m.Mem, i)
		}
		prodProc, consProc := i, pairs+i
		s.Spawn(prodProc, 0, "producer", func(th *threads.Thread) {
			for k := 0; k < a.Items; k++ {
				d := Time(float64(a.Mean) * th.Rand().ExpFloat64())
				if d > 20*a.Mean {
					d = 20 * a.Mean
				}
				th.Advance(d)
				stream[k].Resolve(th, uint64(k))
			}
		})
		s.Spawn(consProc, 0, "consumer", func(th *threads.Thread) {
			for k := 0; k < a.Items; k++ {
				if got := stream[k].Touch(th, alg); got != uint64(k) {
					panic("future stream value mismatch")
				}
				th.Advance(60) // consume
			}
			tr.done(th)
		})
		s.Spawn(consProc, 0, "coworker", func(th *threads.Thread) {
			for k := 0; k < a.Items; k++ {
				th.Advance(a.Work)
				th.Yield()
			}
			tr.done(th)
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return tr.end
}

// BarrierApp is the barrier benchmark skeleton shared by Jacobi-Bar and
// CGrad: per-iteration computation with per-thread imbalance, then a
// barrier (uniform-ish waiting times, Figures 4.8/4.9).
type BarrierApp struct {
	Threads int
	Iters   int
	Grain   Time // mean compute per iteration
	Skew    Time // uniform imbalance range
	// Barriers inserts extra barriers per iteration (CGrad uses 2).
	Barriers int
}

// Run executes the benchmark and returns elapsed cycles.
func (a *BarrierApp) Run(s *threads.Scheduler, alg waiting.Algorithm) Time {
	m := s.Machine()
	procs := m.NumProcs()
	nb := a.Barriers
	if nb == 0 {
		nb = 1
	}
	b := constructs.NewBarrier(m.Mem, 0, a.Threads)
	tr := &tracker{}
	for t := 0; t < a.Threads; t++ {
		s.Spawn(t%procs, 0, "bar", func(th *threads.Thread) {
			for it := 0; it < a.Iters; it++ {
				for k := 0; k < nb; k++ {
					th.Advance(a.Grain + Time(th.Rand().Uint64n(uint64(a.Skew)+1)))
					b.Wait(th, alg)
				}
			}
			tr.done(th)
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return tr.end
}

// NewJacobiBar returns the Jacobi-Bar configuration.
func NewJacobiBar(threadsN, iters int) *BarrierApp {
	return &BarrierApp{Threads: threadsN, Iters: iters, Grain: 2500, Skew: 2500, Barriers: 1}
}

// NewCGrad returns the conjugate-gradient configuration: two barriers per
// iteration with moderate imbalance.
func NewCGrad(threadsN, iters int) *BarrierApp {
	return &BarrierApp{Threads: threadsN, Iters: iters, Grain: 1800, Skew: 1200, Barriers: 2}
}

// FibHeap is the mutex benchmark around a shared priority queue: threads
// repeatedly extract the minimum, "process the event" for an
// exponentially distributed time, and insert new items — the FibHeap
// workload of Figure 4.10 (bimodal mutex waiting times).
type FibHeap struct {
	Threads int
	Ops     int
	Mean    Time // mean processing per op
}

type intHeap []uint64

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run executes the benchmark and returns elapsed cycles.
func (a *FibHeap) Run(s *threads.Scheduler, alg waiting.Algorithm) Time {
	m := s.Machine()
	procs := m.NumProcs()
	mu := constructs.NewMutex(m.Mem, 0)
	h := &intHeap{}
	heap.Init(h)
	for i := 0; i < a.Threads; i++ {
		heap.Push(h, uint64(i)*100)
	}
	tr := &tracker{}
	for t := 0; t < a.Threads; t++ {
		s.Spawn(t%procs, 0, "fibheap", func(th *threads.Thread) {
			for op := 0; op < a.Ops; op++ {
				mu.Lock(th, alg)
				var key uint64
				if h.Len() > 0 {
					key = heap.Pop(h).(uint64)
				}
				th.Advance(Time(30 + th.Rand().Intn(40))) // heap manipulation
				heap.Push(h, key+uint64(th.Rand().Intn(500)))
				mu.Unlock(th)
				// Process the event.
				d := Time(float64(a.Mean) * th.Rand().ExpFloat64())
				if d > 20*a.Mean {
					d = 20 * a.Mean
				}
				th.Advance(d)
			}
			tr.done(th)
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return tr.end
}

// MutexBench is the synthetic Mutex benchmark: lock, exponential critical
// section, unlock, exponential think time (Figure 4.10's Mutex workload).
type MutexBench struct {
	Threads int
	Ops     int
	CS      Time // mean critical-section length
	Think   Time // mean think time
}

// Run executes the benchmark and returns elapsed cycles.
func (a *MutexBench) Run(s *threads.Scheduler, alg waiting.Algorithm) Time {
	m := s.Machine()
	procs := m.NumProcs()
	mu := constructs.NewMutex(m.Mem, 0)
	tr := &tracker{}
	expd := func(th *threads.Thread, mean Time) Time {
		d := Time(float64(mean) * th.Rand().ExpFloat64())
		if d > 20*mean {
			d = 20 * mean
		}
		return d
	}
	for t := 0; t < a.Threads; t++ {
		s.Spawn(t%procs, 0, "mutex", func(th *threads.Thread) {
			for op := 0; op < a.Ops; op++ {
				mu.Lock(th, alg)
				th.Advance(expd(th, a.CS))
				mu.Unlock(th)
				th.Advance(expd(th, a.Think))
			}
			tr.done(th)
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return tr.end
}

// CountNet is the counting-network benchmark: threads repeatedly take
// values from a bitonic counting network whose balancers are mutex-
// protected (Figure 4.11; short, frequent critical sections).
type CountNet struct {
	Threads int
	Width   int
	Ops     int
}

// Run executes the benchmark and returns elapsed cycles.
func (a *CountNet) Run(s *threads.Scheduler, alg waiting.Algorithm) Time {
	m := s.Machine()
	procs := m.NumProcs()
	net := constructs.NewCountingNetwork(m.Mem, a.Width)
	tr := &tracker{}
	for t := 0; t < a.Threads; t++ {
		s.Spawn(t%procs, 0, "countnet", func(th *threads.Thread) {
			for op := 0; op < a.Ops; op++ {
				net.Next(th, alg)
				th.Advance(Time(50 + th.Rand().Intn(100)))
			}
			tr.done(th)
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return tr.end
}
