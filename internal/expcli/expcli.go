// Package expcli is the shared command-line front end for the experiment
// commands (reactsim, waitsim): it resolves an experiment expression
// against the registry, executes the selection over the parallel runner,
// and renders text, JSON, or CSV. Both commands expose the same flags, so
// the harness behaves uniformly regardless of which chapter's matrix is
// being regenerated.
package expcli

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"strings"

	"repro/internal/experiments"
)

// Config selects the slice of the registry a command fronts and lets it
// install extra flags.
type Config struct {
	// Tool filters the registry (experiments.ToolReactsim or
	// experiments.ToolWaitsim); empty means the whole matrix.
	Tool string
	// Registry defaults to experiments.Default.
	Registry *experiments.Registry
	// ExtraFlags, if non-nil, installs tool-specific flags on fs and
	// returns a hook executed after the standard output has been
	// written (or nil for no post-processing). The hook receives the
	// base sizes of the run and the results of the experiments that
	// actually ran, so it can key off the selection.
	ExtraFlags func(fs *flag.FlagSet) func(w io.Writer, sz experiments.Sizes, results []experiments.Result) error
}

// Main runs the command: parse args, select experiments, run, render.
// It returns the process exit code.
func Main(cfg Config, args []string, stdout, stderr io.Writer) int {
	reg := cfg.Registry
	if reg == nil {
		reg = experiments.Default
	}
	fs := flag.NewFlagSet(cfg.Tool, flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiments to run: 'all', or a comma-separated list of names and groups (see -list)")
	full := fs.Bool("full", false, "paper-scale sizes (64 processors; slow)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "max experiments running concurrently (results are identical at any value)")
	seed := fs.Uint64("seed", experiments.DefaultSeed, "base seed for the experiment matrix")
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON instead of text tables")
	csvOut := fs.Bool("csv", false, "emit flat CSV instead of text tables")
	list := fs.Bool("list", false, "list experiment names and groups, then exit")
	var after func(io.Writer, experiments.Sizes, []experiments.Result) error
	if cfg.ExtraFlags != nil {
		after = cfg.ExtraFlags(fs)
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *list {
		writeList(stdout, reg, cfg.Tool)
		return 0
	}

	sz := experiments.Quick()
	if *full {
		sz = experiments.Full()
	}
	// Record the matrix base seed in sz so JSON output reproduces the
	// run; the runner derives each experiment's own seed from it.
	sz.Seed = *seed

	specs, err := reg.Select(cfg.Tool, *exp)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	runner := experiments.Runner{Sizes: sz, Parallel: *parallel, BaseSeed: *seed}
	results := runner.Run(specs)

	switch {
	case *jsonOut:
		err = experiments.WriteJSON(stdout, sz, results)
	case *csvOut:
		err = experiments.WriteCSV(stdout, results)
	default:
		err = experiments.WriteText(stdout, results)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if after != nil && !*jsonOut && !*csvOut {
		if err := after(stdout, sz, results); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if err := experiments.FirstErr(results); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// writeList prints the selectable experiment names, figures, and groups.
func writeList(w io.Writer, reg *experiments.Registry, tool string) {
	fmt.Fprintf(w, "%-28s %-24s %s\n", "NAME", "FIGURE", "GROUPS")
	for _, s := range reg.Specs() {
		if tool != "" && s.Tool != tool {
			continue
		}
		fmt.Fprintf(w, "%-28s %-24s %s\n", s.Name, s.Figure, strings.Join(s.Groups, ","))
	}
}
