package core

import (
	"repro/internal/fetchop"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/spinlock"
	"repro/reactive/modal"
	"repro/reactive/policy"
)

// Fetch-and-op mode values. They double as the modal.Mode indices of the
// fetch-and-op's 3-mode transition table.
const (
	fopTTS   uint64 = 0
	fopQueue uint64 = 1
	fopTree  uint64 = 2
)

// fopModeName names the fetch-and-op's modes for history checking.
var fopModeName = [...]string{fopTTS: "tts", fopQueue: "queue", fopTree: "tree"}

// reactiveTreePatience is the combining window of the reactive algorithm's
// tree. It is much longer than the passive tree's default: a fresh tree
// epoch inherits the queue protocol's serialized arrival pattern, and a
// wide window is what re-synchronizes those arrivals into combinable
// batches (tuning experiment in EXPERIMENTS.md). Solo climbers only pay
// this window while the tree is the selected protocol, which the
// combining-rate monitor ends quickly under low contention.
const reactiveTreePatience machine.Time = 800

// Policy directions for the reactive fetch-and-op: 0 = toward a more
// scalable protocol (TTS→QUEUE or QUEUE→TREE), 1 = toward a cheaper one.
const (
	dirScalable policy.Direction = 0
	dirCheap    policy.Direction = 1
)

// ReactiveFetchOp is the reactive fetch-and-op algorithm of Appendix C. It
// selects among three protocols, in increasing order of scalability and
// zero-contention cost:
//
//  1. a central variable protected by a test-and-test-and-set lock,
//  2. a central variable protected by an MCS queue lock,
//  3. the software combining tree.
//
// Consensus objects: the two locks (left busy when invalid; the queue tail
// additionally uses the INVALID sentinel) and the combining tree's root
// (guarded by the root lock, with an explicit valid word). All three
// protocols share one central value word, so protocol changes need no state
// copying (the "common location" optimization of Section 3.3.2).
//
// Unlike the reactive lock there is no optimistic test&set: that would
// serialize accesses under high contention and negate the combining tree's
// parallelism, so dispatch always reads the mode variable first.
type ReactiveFetchOp struct {
	mode      machine.Addr
	tts       machine.Addr // TTS lock: 0 free, 1 busy/invalid
	tail      machine.Addr // MCS tail: 0 empty, invalidTail invalid, else node
	central   machine.Addr // the fetch-and-op variable (shared by protocols)
	treeValid machine.Addr // combining-tree valid bit (root lock guards it)

	tree *fetchop.CombTree

	mem   *memsys.System
	nodes []spinlock.QNode
	bo    spinlock.Backoff
	mean  []machine.Time

	// Policy decides when to act on detected sub-optimality.
	Policy policy.Policy

	// Detection thresholds.
	TTSRetryLimit   int          // failed test&sets before TTS→QUEUE
	EmptyQueueLimit int          // consecutive empty queues before QUEUE→TTS
	QueueWaitLimit  machine.Time // queue waiting time before QUEUE→TREE
	// CombineRateMin is the moving-average ops-per-root-visit below which
	// the combining tree is judged under-utilized and retired to the
	// queue protocol (the combining-rate monitor of Section 3.3.2).
	CombineRateMin float64

	// Residual costs for the competitive policy.
	ResidualCheap    uint64
	ResidualScalable uint64

	// Changes counts protocol changes.
	Changes uint64

	emptyStreak []int
	combineEMA  float64 // moving average of ops reaching the root together

	// d routes detection events and transition validation through the
	// shared modal-object state machine. The N=3 chain TTS ↔ queue ↔
	// tree has no shortcut edges: the algorithm scales one protocol at a
	// time, and the decider enforces it.
	d      *modal.Decider
	dResid [2]uint64 // residuals the current table was built with

	// Check optionally records protocol changes for verification.
	Check *HistoryChecker
}

// dec returns the fetch-and-op's modal decider over its 3-mode
// transition table, rebuilding the table whenever the exported
// Residual* tunables have changed so live tuning keeps working as it
// did when residuals were read per call.
func (f *ReactiveFetchOp) dec() *modal.Decider {
	resid := [2]uint64{f.ResidualCheap, f.ResidualScalable}
	if f.d == nil || f.dResid != resid {
		f.dResid = resid
		f.d = modal.NewDecider(modal.NewTable(3, []modal.Transition{
			{From: modal.Mode(fopTTS), To: modal.Mode(fopQueue), Dir: dirScalable, Residual: f.ResidualCheap},
			{From: modal.Mode(fopQueue), To: modal.Mode(fopTTS), Dir: dirCheap, Residual: f.ResidualCheap},
			{From: modal.Mode(fopQueue), To: modal.Mode(fopTree), Dir: dirScalable, Residual: f.ResidualScalable},
			{From: modal.Mode(fopTree), To: modal.Mode(fopQueue), Dir: dirCheap, Residual: f.ResidualCheap},
		}), &f.Policy)
	}
	return f.d
}

// NewReactiveFetchOp builds a reactive fetch-and-op homed on node home with
// a combining tree of nleaves leaves.
func NewReactiveFetchOp(mem *memsys.System, home int, nleaves int) *ReactiveFetchOp {
	procs := mem.Config().NumNodes
	f := &ReactiveFetchOp{
		mode:             mem.Alloc(home, 1),
		tts:              mem.Alloc(home, 1),
		tail:             mem.Alloc(home, 1),
		central:          mem.Alloc(home, 1),
		treeValid:        mem.Alloc(home, 1),
		tree:             fetchop.NewCombTree(mem, nleaves, reactiveTreePatience),
		mem:              mem,
		nodes:            make([]spinlock.QNode, procs),
		bo:               spinlock.DefaultBackoff,
		mean:             make([]machine.Time, procs),
		Policy:           policy.AlwaysSwitch{},
		TTSRetryLimit:    3,
		EmptyQueueLimit:  4,
		QueueWaitLimit:   2400,
		CombineRateMin:   1.3,
		ResidualCheap:    20,
		ResidualScalable: 200,
		emptyStreak:      make([]int, procs),
	}
	// Initial state: TTS mode; queue and tree invalid.
	mem.Poke(f.mode, fopTTS)
	mem.Poke(f.tts, 0)
	mem.Poke(f.tail, invalidTail)
	mem.Poke(f.treeValid, 0)
	// The reactive algorithm interposes on the tree's root action: check
	// validity, apply to the shared central variable, monitor the
	// combining rate, and perform TREE→QUEUE changes in-consensus.
	f.tree.RootApply = f.rootApply
	return f
}

// Name implements fetchop.FetchOp.
func (f *ReactiveFetchOp) Name() string { return "reactive-fop" }

// Mode returns the current protocol hint (test use).
func (f *ReactiveFetchOp) Mode() uint64 { return f.mem.Peek(f.mode) }

// Value returns the current counter value (test use).
func (f *ReactiveFetchOp) Value() uint64 { return f.mem.Peek(f.central) }

func (f *ReactiveFetchOp) node(proc int) spinlock.QNode {
	if f.nodes[proc].Base == 0 {
		f.nodes[proc] = spinlock.NewQNode(f.mem, proc)
	}
	return f.nodes[proc]
}

// FetchAdd implements fetchop.FetchOp: the top-level dispatch of Figure C.3.
func (f *ReactiveFetchOp) FetchAdd(c machine.Context, delta uint64) uint64 {
	for {
		switch c.Read(f.mode) {
		case fopTTS:
			if v, ok := f.tryTTS(c, delta); ok {
				return v
			}
		case fopQueue:
			if v, ok := f.tryQueue(c, delta); ok {
				return v
			}
		default:
			if v, ok := f.tree.TryFetchAdd(c, delta); ok {
				return v
			}
		}
		c.Advance(2)
	}
}

// tryTTS runs the TTS-lock-based protocol (Figure C.4). ok=false means the
// mode changed while waiting and the dispatch must retry.
func (f *ReactiveFetchOp) tryTTS(c machine.Context, delta uint64) (uint64, bool) {
	p := c.ProcID()
	retries := 0
	reported := false
	switchOut := false
	mean := f.mean[p]
	if mean == 0 {
		mean = f.bo.Initial
	}
	for {
		if c.Read(f.tts) == 0 && c.TestAndSet(f.tts) == 0 {
			// In-consensus: lock free implies protocol valid.
			f.mean[p] = mean / 2
			old := c.Read(f.central)
			c.Write(f.central, old+delta)
			if retries <= f.TTSRetryLimit {
				f.dec().Optimal(modal.Mode(fopTTS), modal.Mode(fopQueue))
			}
			if switchOut {
				f.changeTTSToQueue(c)
				return old, true
			}
			c.Write(f.tts, 0)
			return old, true
		}
		retries++
		if retries > f.TTSRetryLimit && !reported {
			reported = true
			if f.dec().Suboptimal(modal.Mode(fopTTS), modal.Mode(fopQueue)) {
				switchOut = true
			}
		}
		c.Advance(c.Rand().Uint64n(mean) + 1)
		if mean*2 <= f.bo.Max {
			mean *= 2
		}
		if c.Read(f.mode) != fopTTS {
			return 0, false
		}
	}
}

// tryQueue runs the MCS-queue-lock-based protocol (Figure C.4).
func (f *ReactiveFetchOp) tryQueue(c machine.Context, delta uint64) (uint64, bool) {
	p := c.ProcID()
	i := f.node(p)
	c.Advance(6) // queue-node setup bookkeeping
	enqueued := c.Now()
	c.Write(i.Next(), 0)
	pred := c.FetchAndStore(f.tail, uint64(i.Base))
	if pred == invalidTail {
		// Landed on an invalid queue: restore and retry via dispatch.
		f.invalidateQueue(c, i)
		return 0, false
	}
	if pred != 0 {
		c.Write(i.Status(), stWaiting)
		c.Write(spinlock.QNode{Base: memsys.Addr(pred)}.Next(), uint64(i.Base))
		f.emptyStreak[p] = 0
		st := c.Read(i.Status())
		for st == stWaiting {
			c.Advance(2)
			st = c.Read(i.Status())
		}
		if st != stGo {
			return 0, false // invalid signal: retry via dispatch
		}
	}
	// In-consensus: we hold the queue lock.
	old := c.Read(f.central)
	c.Write(f.central, old+delta)

	waited := c.Now() - enqueued
	if pred == 0 {
		// Empty queue: low contention.
		f.emptyStreak[p]++
		if f.emptyStreak[p] > f.EmptyQueueLimit &&
			f.dec().Suboptimal(modal.Mode(fopQueue), modal.Mode(fopTTS)) {
			f.emptyStreak[p] = 0
			f.changeQueueToTTS(c, i)
			return old, true
		}
	} else if waited > f.QueueWaitLimit {
		// The FIFO wait time estimates contention; too long means the
		// combining tree would do better (Section 3.3.2).
		if f.dec().Suboptimal(modal.Mode(fopQueue), modal.Mode(fopTree)) {
			f.changeQueueToTree(c, i)
			return old, true
		}
	} else {
		f.dec().Optimal(modal.Mode(fopQueue), modal.Mode(fopTree))
	}
	f.releaseQueue(c, i)
	return old, true
}

// rootApply is installed as the combining tree's root action: it runs with
// the root lock held (the tree's consensus object). It checks validity,
// applies the combined operation to the shared central variable, monitors
// the combining rate, and performs the TREE→QUEUE change in-consensus.
func (f *ReactiveFetchOp) rootApply(c machine.Context, combined uint64, ops int) (uint64, bool) {
	if c.Read(f.treeValid) == 0 {
		return 0, false
	}
	old := c.Read(f.central)
	c.Write(f.central, old+combined)
	f.combineEMA = 0.9*f.combineEMA + 0.1*float64(ops)
	if f.combineEMA < f.CombineRateMin {
		if f.dec().Suboptimal(modal.Mode(fopTree), modal.Mode(fopQueue)) {
			f.changeTreeToQueue(c)
		}
	} else {
		f.dec().Optimal(modal.Mode(fopTree), modal.Mode(fopQueue))
	}
	return old, true
}

// --- protocol changes (each runs while holding the valid consensus object) ---

func (f *ReactiveFetchOp) changeTTSToQueue(c machine.Context) {
	i := f.node(c.ProcID())
	f.acquireInvalidQueue(c, i)
	c.Write(f.mode, fopQueue)
	f.releaseQueue(c, i) // tts stays busy (= invalid)
	f.finishChange(c, fopTTS, fopQueue)
}

func (f *ReactiveFetchOp) changeQueueToTTS(c machine.Context, i spinlock.QNode) {
	c.Write(f.mode, fopTTS)
	f.invalidateQueue(c, i)
	c.Write(f.tts, 0)
	f.finishChange(c, fopQueue, fopTTS)
}

func (f *ReactiveFetchOp) changeQueueToTree(c machine.Context, i spinlock.QNode) {
	// Validate the tree under its root lock, then retire the queue.
	f.lockWord(c, f.tree.RootLock())
	c.Write(f.treeValid, 1)
	c.Write(f.tree.RootLock(), 0)
	c.Write(f.mode, fopTree)
	f.invalidateQueue(c, i) // waiters get INVALID and re-dispatch to the tree
	f.finishChange(c, fopQueue, fopTree)
}

// changeTreeToQueue runs with the tree's root lock already held.
func (f *ReactiveFetchOp) changeTreeToQueue(c machine.Context) {
	c.Write(f.treeValid, 0)
	i := f.node(c.ProcID())
	f.acquireInvalidQueue(c, i)
	c.Write(f.mode, fopQueue)
	f.releaseQueue(c, i)
	f.finishChange(c, fopTree, fopQueue)
}

// finishChange records bookkeeping for a completed protocol change,
// validating the transition against the modal table (the decider panics
// on an edge the table does not permit — e.g. a TTS↔tree shortcut). The
// changer holds both protocols' consensus objects across the transition,
// so from other processes' perspective the validity swap is atomic; it
// is recorded at a single serialization instant (the completion time).
func (f *ReactiveFetchOp) finishChange(c machine.Context, from, to uint64) {
	f.Changes++
	f.dec().Switched(modal.Mode(from), modal.Mode(to))
	if f.Check != nil {
		now := c.Now()
		f.Check.RecordValidity(fopModeName[from], now, false, c.ProcID())
		f.Check.RecordValidity(fopModeName[to], now, true, c.ProcID())
		f.Check.RecordInterval(fopModeName[from], ChangeInterval, c.ProcID(), now, now)
		f.Check.RecordInterval(fopModeName[to], ChangeInterval, c.ProcID(), now, now)
	}
}

// --- queue-lock plumbing (shared with the reactive lock's algorithms) ---

func (f *ReactiveFetchOp) lockWord(c machine.Context, a machine.Addr) {
	for {
		for c.Read(a) != 0 {
			c.Advance(2)
		}
		if c.TestAndSet(a) == 0 {
			return
		}
		c.Advance(c.Rand().Uint64n(16) + 1)
	}
}

func (f *ReactiveFetchOp) releaseQueue(c machine.Context, i spinlock.QNode) {
	c.Advance(4) // successor-check bookkeeping
	next := c.Read(i.Next())
	if next == 0 {
		oldTail := c.FetchAndStore(f.tail, 0)
		if oldTail == uint64(i.Base) {
			return
		}
		usurper := c.FetchAndStore(f.tail, oldTail)
		for next = c.Read(i.Next()); next == 0; next = c.Read(i.Next()) {
			c.Advance(2)
		}
		if usurper != 0 && usurper != invalidTail {
			c.Write(spinlock.QNode{Base: memsys.Addr(usurper)}.Next(), next)
			return
		}
		c.Write(spinlock.QNode{Base: memsys.Addr(next)}.Status(), stGo)
		return
	}
	c.Write(spinlock.QNode{Base: memsys.Addr(next)}.Status(), stGo)
}

func (f *ReactiveFetchOp) acquireInvalidQueue(c machine.Context, i spinlock.QNode) {
	for {
		c.Write(i.Next(), 0)
		pred := c.FetchAndStore(f.tail, uint64(i.Base))
		if pred == invalidTail {
			return
		}
		c.Write(i.Status(), stWaiting)
		c.Write(spinlock.QNode{Base: memsys.Addr(pred)}.Next(), uint64(i.Base))
		for c.Read(i.Status()) == stWaiting {
			c.Advance(2)
		}
	}
}

func (f *ReactiveFetchOp) invalidateQueue(c machine.Context, head spinlock.QNode) {
	tail := c.FetchAndStore(f.tail, invalidTail)
	cur := head
	for uint64(cur.Base) != tail {
		var next uint64
		for next = c.Read(cur.Next()); next == 0; next = c.Read(cur.Next()) {
			c.Advance(2)
		}
		c.Write(cur.Status(), stInvalid)
		cur = spinlock.QNode{Base: memsys.Addr(next)}
	}
	c.Write(cur.Status(), stInvalid)
}
