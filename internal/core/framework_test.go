package core

import (
	"sort"
	"testing"

	"repro/internal/machine"
)

// counterObjects builds two GenericObject protocols that both implement a
// fetch-and-increment counter, each keeping its state in its own word.
// Validate's Update copies the counter value from the shared location, so
// the counter's semantics survive protocol changes.
func counterObjects(m *machine.Machine, check *HistoryChecker) (*Manager, machine.Addr) {
	shared := m.Mem.Alloc(0, 1) // authoritative value, updated in-consensus
	mk := func(name string, home int, valid bool) *GenericObject {
		g := &GenericObject{
			CO:    NewConsensusObject(m, home, valid),
			Name:  name,
			Check: check,
		}
		g.InConsensus = func(c machine.Context, arg uint64) uint64 {
			old := c.Read(shared)
			c.Write(shared, old+arg)
			c.Advance(5) // protocol work
			return old
		}
		return g
	}
	a := mk("protoA", 0, true)
	b := mk("protoB", 1, false)
	return &Manager{Objs: []ProtocolObject{a, b}}, shared
}

func TestManagerCounterAcrossChanges(t *testing.T) {
	const procs, iters = 8, 30
	m := machine.New(machine.DefaultConfig(procs))
	check := &HistoryChecker{}
	mgr, shared := counterObjects(m, check)
	var results []uint64
	for p := 0; p < procs; p++ {
		m.SpawnCPU(p, 0, "op", func(c *machine.CPU) {
			for i := 0; i < iters; i++ {
				results = append(results, mgr.DoSynchOp(c, 1))
				c.Advance(machine.Time(c.Rand().Intn(300)))
			}
		})
	}
	// A changer process flips protocols continually during the run.
	m.SpawnCPU(0, 50, "changer", func(c *machine.CPU) {
		for i := 0; i < 40; i++ {
			mgr.DoChange(c, (i+1)%2)
			c.Advance(500)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Peek(shared); got != procs*iters {
		t.Fatalf("counter = %d, want %d", got, procs*iters)
	}
	sort.Slice(results, func(i, j int) bool { return results[i] < results[j] })
	for i, v := range results {
		if v != uint64(i) {
			t.Fatalf("results not a permutation of 0..%d at %d: %d", procs*iters-1, i, v)
		}
	}
	if err := check.CheckCSerial(); err != nil {
		t.Fatal(err)
	}
	if err := check.CheckAtMostOneValid("protoA"); err != nil {
		t.Fatal(err)
	}
}

func TestManagerNaiveObjects(t *testing.T) {
	// Same scenario through the naive lock-based objects of Figure 3.7.
	const procs, iters = 4, 20
	m := machine.New(machine.DefaultConfig(procs))
	shared := m.Mem.Alloc(0, 1)
	mk := func(home int, valid bool) *NaiveObject {
		o := NewNaiveObject(m, home, valid)
		o.Run = func(c machine.Context, arg uint64) uint64 {
			old := c.Read(shared)
			c.Write(shared, old+arg)
			return old
		}
		return o
	}
	mgr := &Manager{Objs: []ProtocolObject{mk(0, true), mk(1, false)}}
	for p := 0; p < procs; p++ {
		m.SpawnCPU(p, 0, "op", func(c *machine.CPU) {
			for i := 0; i < iters; i++ {
				mgr.DoSynchOp(c, 1)
				c.Advance(machine.Time(c.Rand().Intn(200)))
			}
		})
	}
	m.SpawnCPU(1, 100, "changer", func(c *machine.CPU) {
		for i := 0; i < 10; i++ {
			mgr.DoChange(c, (i+1)%2)
			c.Advance(2000)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Peek(shared); got != procs*iters {
		t.Fatalf("counter = %d, want %d", got, procs*iters)
	}
}

func TestInvalidateOnlyOneWinner(t *testing.T) {
	// Concurrent Invalidate calls: exactly one must return true.
	m := machine.New(machine.DefaultConfig(8))
	g := &GenericObject{CO: NewConsensusObject(m, 0, true), Name: "x"}
	g.InConsensus = func(c machine.Context, arg uint64) uint64 { return 0 }
	wins := 0
	for p := 0; p < 8; p++ {
		m.SpawnCPU(p, 0, "inv", func(c *machine.CPU) {
			if g.Invalidate(c) {
				wins++
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if wins != 1 {
		t.Fatalf("%d concurrent Invalidates won; want exactly 1", wins)
	}
}

func TestCheckerDetectsOverlap(t *testing.T) {
	h := &HistoryChecker{}
	h.RecordInterval("o", ExecInterval, 0, 10, 20)
	h.RecordInterval("o", ChangeInterval, 1, 15, 25)
	if err := h.CheckCSerial(); err == nil {
		t.Fatal("overlapping change/exec must fail C-serial check")
	}
	h2 := &HistoryChecker{}
	h2.RecordInterval("o", ExecInterval, 0, 10, 20)
	h2.RecordInterval("o", ChangeInterval, 1, 20, 25)
	h2.RecordInterval("o", ExecInterval, 2, 25, 40)
	if err := h2.CheckCSerial(); err != nil {
		t.Fatalf("sequential history flagged: %v", err)
	}
	// Overlapping executions are fine — only changes must serialize
	// (Definition 1).
	h3 := &HistoryChecker{}
	h3.RecordInterval("o", ExecInterval, 0, 10, 30)
	h3.RecordInterval("o", ExecInterval, 1, 15, 25)
	if err := h3.CheckCSerial(); err != nil {
		t.Fatalf("concurrent executions flagged: %v", err)
	}
}

func TestCheckerAtMostOneValid(t *testing.T) {
	h := &HistoryChecker{}
	h.RecordValidity("a", 10, false, 0)
	h.RecordValidity("b", 12, true, 0)
	h.RecordValidity("b", 20, false, 1)
	h.RecordValidity("a", 22, true, 1)
	if err := h.CheckAtMostOneValid("a"); err != nil {
		t.Fatalf("legal switch sequence flagged: %v", err)
	}
	bad := &HistoryChecker{}
	bad.RecordValidity("b", 5, true, 0) // b validated while a still valid
	if err := bad.CheckAtMostOneValid("a"); err == nil {
		t.Fatal("two valid objects not detected")
	}
}
