package core

import (
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/spinlock"
	"repro/reactive/modal"
	"repro/reactive/policy"
)

// Mode values for the reactive lock's mode variable. They double as the
// modal.Mode indices of the lock's transition table.
const (
	modeTTS   uint64 = 0
	modeQueue uint64 = 1
)

// lockModeName names the reactive lock's modes for history checking.
var lockModeName = [...]string{modeTTS: "tts", modeQueue: "queue"}

// Queue-node status values.
const (
	stWaiting uint64 = 0
	stGo      uint64 = 1
	stInvalid uint64 = 2
)

// invalidTail marks the queue lock's tail pointer invalid: the
// test-and-test-and-set lock is the valid protocol. The tail pointer is the
// queue protocol's consensus object; the TTS flag is the TTS protocol's
// consensus object (Section 3.3.1) — an invalid lock is simply left in a
// busy/invalid state, removing any separate valid-bit check from the
// common path.
const invalidTail = ^uint64(0)

// ReleaseMode tells Release which protocol to release and whether to
// perform a protocol change (the release_mode of Figure 3.27).
type ReleaseMode int

// Release modes.
const (
	RelTTS ReleaseMode = iota
	RelQueue
	RelTTSToQueue
	RelQueueToTTS
)

// ReactiveLock is the reactive spin lock of Section 3.7.3: a
// test-and-test-and-set lock, an MCS queue lock, and a mode variable that
// hints which sub-lock to use. The algorithm guarantees the two sub-locks
// are never free at the same time; processes that follow a stale hint find
// a busy or invalid sub-lock and retry with the other protocol.
type ReactiveLock struct {
	mode machine.Addr // hint: modeTTS or modeQueue (own cache line)
	tts  machine.Addr // TTS flag: 0 free, 1 busy
	tail machine.Addr // MCS tail: 0 empty, invalidTail invalid, else node

	mem   *memsys.System
	nodes []spinlock.QNode
	bo    spinlock.Backoff
	mean  []machine.Time // per-proc backoff state

	// Policy decides when to act on detected sub-optimality. Default:
	// policy.AlwaysSwitch.
	Policy policy.Policy

	// Detection thresholds (Section 3.7.3): switch to the queue protocol
	// after more than TTSRetryLimit failed test&sets in one acquisition;
	// switch to TTS after EmptyQueueLimit consecutive acquisitions that
	// found the queue empty.
	TTSRetryLimit   int
	EmptyQueueLimit int

	// Residual costs fed to the 3-competitive policy (Section 3.5.5: 150
	// cycles for TTS under high contention, 15 for the queue under low).
	ResidualTTSHigh  uint64
	ResidualQueueLow uint64

	// Optimistic controls the latency optimization of trying the TTS lock
	// before reading the mode variable (ablation; default true).
	Optimistic bool

	// Changes counts protocol changes performed.
	Changes uint64

	emptyStreak []int

	// d routes detection events and transition validation through the
	// shared modal-object state machine. The mode itself lives in
	// simulated memory — the decider carries the pure transition logic,
	// the memory effects stay here.
	d      *modal.Decider
	dResid [2]uint64 // residuals the current table was built with

	// Check optionally records protocol changes for C-serial verification.
	Check *HistoryChecker
}

// dec returns the lock's modal decider over the 2-mode transition table
// (TTS ↔ queue, the thesis's reactive spin lock), rebuilding the table
// whenever the exported Residual* tunables have changed so live tuning
// keeps working as it did when residuals were read per call. The
// simulator's event engine serializes all calls, so the unsynchronized
// Decider is the right engine variant here.
func (l *ReactiveLock) dec() *modal.Decider {
	resid := [2]uint64{l.ResidualTTSHigh, l.ResidualQueueLow}
	if l.d == nil || l.dResid != resid {
		l.dResid = resid
		l.d = modal.NewDecider(modal.NewTable(2, []modal.Transition{
			{From: modal.Mode(modeTTS), To: modal.Mode(modeQueue), Dir: dirToQueue, Residual: l.ResidualTTSHigh},
			{From: modal.Mode(modeQueue), To: modal.Mode(modeTTS), Dir: dirToTTS, Residual: l.ResidualQueueLow},
		}), &l.Policy)
	}
	return l.d
}

// Handle is the per-acquisition state Release needs.
type Handle struct {
	rel  ReleaseMode
	node spinlock.QNode
}

// Direction indices for policy events.
const (
	dirToQueue policy.Direction = 0
	dirToTTS   policy.Direction = 1
)

// NewReactiveLock builds a reactive spin lock homed on node home.
func NewReactiveLock(mem *memsys.System, home int) *ReactiveLock {
	procs := mem.Config().NumNodes
	l := &ReactiveLock{
		mode:             mem.Alloc(home, 1),
		tts:              mem.Alloc(home, 1),
		tail:             mem.Alloc(home, 1),
		mem:              mem,
		nodes:            make([]spinlock.QNode, procs),
		bo:               spinlock.DefaultBackoff,
		mean:             make([]machine.Time, procs),
		Policy:           policy.AlwaysSwitch{},
		TTSRetryLimit:    3,
		EmptyQueueLimit:  4,
		ResidualTTSHigh:  150,
		ResidualQueueLow: 15,
		Optimistic:       true,
		emptyStreak:      make([]int, procs),
	}
	// Initial state: TTS mode; TTS lock free, queue invalid.
	mem.Poke(l.mode, modeTTS)
	mem.Poke(l.tts, 0)
	mem.Poke(l.tail, invalidTail)
	return l
}

// Name implements spinlock.Lock.
func (l *ReactiveLock) Name() string { return "reactive" }

func (l *ReactiveLock) node(proc int) spinlock.QNode {
	if l.nodes[proc].Base == 0 {
		l.nodes[proc] = spinlock.NewQNode(l.mem, proc)
	}
	return l.nodes[proc]
}

// Acquire implements spinlock.Lock: the top-level dispatch of Figure 3.27.
func (l *ReactiveLock) Acquire(c machine.Context) spinlock.Handle {
	i := l.node(c.ProcID())
	if l.Optimistic {
		// Optimistically try the TTS lock before checking the mode
		// variable: zero-contention fast path.
		if c.TestAndSet(l.tts) == 0 {
			l.dec().Optimal(modal.Mode(modeTTS), modal.Mode(modeQueue))
			return &Handle{rel: RelTTS, node: i}
		}
	}
	if c.Read(l.mode) == modeTTS {
		return l.acquireTTS(c, i)
	}
	return l.acquireQueue(c, i)
}

// Release implements spinlock.Lock: dispatch on the release mode.
func (l *ReactiveLock) Release(c machine.Context, h spinlock.Handle) {
	hd := h.(*Handle)
	switch hd.rel {
	case RelTTS:
		c.Write(l.tts, 0)
	case RelQueue:
		l.releaseQueue(c, hd.node)
	case RelTTSToQueue:
		l.releaseTTSToQueue(c, hd.node)
	case RelQueueToTTS:
		l.releaseQueueToTTS(c, hd.node)
	}
}

// acquireTTS is Figure 3.28's acquire_tts: test-and-test-and-set with
// randomized exponential backoff, monitoring failed test&set attempts
// (M>) and consulting the policy for a protocol change (P>).
func (l *ReactiveLock) acquireTTS(c machine.Context, i spinlock.QNode) *Handle {
	p := c.ProcID()
	rel := RelTTS
	retries := 0
	reported := false
	mean := l.mean[p]
	if mean == 0 {
		mean = l.bo.Initial
	}
	for {
		if c.Read(l.tts) == 0 {
			if c.TestAndSet(l.tts) == 0 {
				l.mean[p] = mean / 2
				if retries <= l.TTSRetryLimit {
					l.dec().Optimal(modal.Mode(modeTTS), modal.Mode(modeQueue))
				}
				return &Handle{rel: rel, node: i}
			}
		}
		retries++
		if retries > l.TTSRetryLimit && !reported {
			// Contention detected: this acquisition is being served by a
			// sub-optimal protocol. The policy decides whether to change.
			reported = true
			if l.dec().Suboptimal(modal.Mode(modeTTS), modal.Mode(modeQueue)) {
				rel = RelTTSToQueue
			}
		}
		c.Advance(c.Rand().Uint64n(mean) + 1)
		if mean*2 <= l.bo.Max {
			mean *= 2
		}
		if c.Read(l.mode) != modeTTS {
			return l.acquireQueue(c, i) // mode changed under us
		}
	}
}

// acquireQueue is Figure 3.28's acquire_queue: the MCS enqueue, modified to
// detect the invalid queue (consensus object) and the empty-queue streak.
func (l *ReactiveLock) acquireQueue(c machine.Context, i spinlock.QNode) *Handle {
	p := c.ProcID()
	c.Advance(6) // queue-node setup bookkeeping
	c.Write(i.Next(), 0)
	pred := c.FetchAndStore(l.tail, uint64(i.Base))
	if pred == 0 {
		// Queue was empty and valid: lock acquired immediately; low
		// contention observed.
		l.emptyStreak[p]++
		if l.emptyStreak[p] > l.EmptyQueueLimit {
			if l.dec().Suboptimal(modal.Mode(modeQueue), modal.Mode(modeTTS)) {
				l.emptyStreak[p] = 0
				return &Handle{rel: RelQueueToTTS, node: i}
			}
		}
		return &Handle{rel: RelQueue, node: i}
	}
	if pred != invalidTail {
		// Queue was non-empty: wait for GO or INVALID from predecessor.
		c.Write(i.Status(), stWaiting)
		c.Write(spinlock.QNode{Base: memsys.Addr(pred)}.Next(), uint64(i.Base))
		l.emptyStreak[p] = 0
		st := c.Read(i.Status())
		for st == stWaiting {
			c.Advance(2)
			st = c.Read(i.Status())
		}
		if st == stGo {
			l.dec().Optimal(modal.Mode(modeQueue), modal.Mode(modeTTS))
			return &Handle{rel: RelQueue, node: i}
		}
		return l.acquireTTS(c, i) // invalid signal: retry with TTS
	}
	// We swapped ourselves onto an invalid queue: restore the invalid
	// marker, signal anyone who queued behind us, and retry with TTS.
	l.invalidateQueue(c, i)
	return l.acquireTTS(c, i)
}

// releaseQueue is the MCS release (Figure 3.28's release_queue), using the
// fetch&store-only race resolution.
func (l *ReactiveLock) releaseQueue(c machine.Context, i spinlock.QNode) {
	c.Advance(4) // successor-check bookkeeping
	next := c.Read(i.Next())
	if next == 0 {
		oldTail := c.FetchAndStore(l.tail, 0)
		if oldTail == uint64(i.Base) {
			return
		}
		usurper := c.FetchAndStore(l.tail, oldTail)
		for next = c.Read(i.Next()); next == 0; next = c.Read(i.Next()) {
			c.Advance(2)
		}
		if usurper != 0 && usurper != invalidTail {
			c.Write(spinlock.QNode{Base: memsys.Addr(usurper)}.Next(), next)
			return
		}
		c.Write(spinlock.QNode{Base: memsys.Addr(next)}.Status(), stGo)
		return
	}
	c.Write(spinlock.QNode{Base: memsys.Addr(next)}.Status(), stGo)
}

// releaseTTSToQueue performs the TTS→QUEUE protocol change (Figure 3.29).
// Called only by the holder of the (valid) TTS lock, which makes protocol
// changes serializable: the holder has the consensus object.
func (l *ReactiveLock) releaseTTSToQueue(c machine.Context, i spinlock.QNode) {
	l.acquireInvalidQueue(c, i)
	c.Write(l.mode, modeQueue)
	// Release the queue lock; the TTS lock is left busy (= invalid).
	l.releaseQueue(c, i)
	l.finishChange(c, modeTTS, modeQueue)
}

// releaseQueueToTTS performs the QUEUE→TTS protocol change (Figure 3.29).
// Called only by the holder of the (valid) queue lock.
func (l *ReactiveLock) releaseQueueToTTS(c machine.Context, i spinlock.QNode) {
	c.Write(l.mode, modeTTS)
	l.invalidateQueue(c, i)
	c.Write(l.tts, 0)
	l.finishChange(c, modeQueue, modeTTS)
}

// finishChange records bookkeeping for a completed protocol change,
// validating the transition against the modal table (the decider panics
// on an edge the table does not permit). The changer holds both
// protocols' consensus objects across the transition, so from other
// processes' perspective the validity swap is atomic; it is recorded at
// a single serialization instant (the completion time).
func (l *ReactiveLock) finishChange(c machine.Context, from, to uint64) {
	l.Changes++
	l.dec().Switched(modal.Mode(from), modal.Mode(to))
	if l.Check != nil {
		now := c.Now()
		l.Check.RecordValidity(lockModeName[from], now, false, c.ProcID())
		l.Check.RecordValidity(lockModeName[to], now, true, c.ProcID())
		l.Check.RecordInterval(lockModeName[from], ChangeInterval, c.ProcID(), now, now)
		l.Check.RecordInterval(lockModeName[to], ChangeInterval, c.ProcID(), now, now)
	}
}

// acquireInvalidQueue is Figure 3.29's acquire_invalid_queue: take
// ownership of the invalid queue (tail must be INVALID or point to the
// tail of an invalid queue). On return, this process is the queue holder.
func (l *ReactiveLock) acquireInvalidQueue(c machine.Context, i spinlock.QNode) {
	for {
		c.Write(i.Next(), 0)
		pred := c.FetchAndStore(l.tail, uint64(i.Base))
		if pred == invalidTail {
			return
		}
		// Got onto the tail of an invalid queue: wait for the INVALID
		// signal and retry.
		c.Write(i.Status(), stWaiting)
		c.Write(spinlock.QNode{Base: memsys.Addr(pred)}.Next(), uint64(i.Base))
		for c.Read(i.Status()) == stWaiting {
			c.Advance(2)
		}
	}
}

// invalidateQueue is Figure 3.29's invalidate_queue: mark the tail invalid
// and signal INVALID to every node from head through the old tail. Called
// only by a process that owns the queue (validly or invalidly).
func (l *ReactiveLock) invalidateQueue(c machine.Context, head spinlock.QNode) {
	tail := c.FetchAndStore(l.tail, invalidTail)
	cur := head
	for uint64(cur.Base) != tail {
		var next uint64
		for next = c.Read(cur.Next()); next == 0; next = c.Read(cur.Next()) {
			c.Advance(2)
		}
		c.Write(cur.Status(), stInvalid)
		cur = spinlock.QNode{Base: memsys.Addr(next)}
	}
	c.Write(cur.Status(), stInvalid)
}

// Mode returns the current protocol hint (test use).
func (l *ReactiveLock) Mode() uint64 { return l.mem.Peek(l.mode) }
