package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/spinlock"
)

func TestSelectableLockMutualExclusionAcrossSwitches(t *testing.T) {
	const procs = 10
	m := machine.New(machine.DefaultConfig(procs))
	sl := NewSelectableLock(m, 0, []spinlock.Lock{
		spinlock.NewTTS(m.Mem, 0, spinlock.DefaultBackoff),
		spinlock.NewMCS(m.Mem, 1),
	})
	inCS := false
	count := 0
	for p := 0; p < procs; p++ {
		p := p
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < 30; i++ {
				h := sl.Acquire(c)
				if inCS {
					t.Error("selectable lock: mutual exclusion violated")
				}
				inCS = true
				c.Advance(60)
				inCS = false
				count++
				// Every 7th critical section, the holder switches
				// protocols on release.
				if (p+i)%7 == 0 {
					sl.ReleaseAndSwitch(c, h, (sl.Current(c)+1)%2)
				} else {
					sl.Release(c, h)
				}
				c.Advance(machine.Time(c.Rand().Intn(300)))
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if count != procs*30 {
		t.Fatalf("completed %d critical sections", count)
	}
	if sl.Changes == 0 {
		t.Fatal("no protocol changes exercised")
	}
}

func TestSelectableLockStaleHintRecovers(t *testing.T) {
	// A process that read the mode hint before a switch must acquire the
	// now-invalid protocol, fail validation, and re-dispatch correctly.
	m := machine.New(machine.DefaultConfig(4))
	sl := NewSelectableLock(m, 0, []spinlock.Lock{
		spinlock.NewTTS(m.Mem, 0, spinlock.DefaultBackoff),
		spinlock.NewMCS(m.Mem, 1),
	})
	order := []int{}
	m.SpawnCPU(0, 0, "switcher", func(c *machine.CPU) {
		h := sl.Acquire(c)
		c.Advance(5000) // hold long enough for others to line up
		sl.ReleaseAndSwitch(c, h, 1)
		order = append(order, 0)
	})
	for p := 1; p < 4; p++ {
		m.SpawnCPU(p, 100, "waiter", func(c *machine.CPU) {
			h := sl.Acquire(c)
			order = append(order, p)
			c.Advance(50)
			sl.Release(c, h)
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("%d completions", len(order))
	}
	m.SpawnCPU(0, m.Eng.Now(), "check", func(c *machine.CPU) {
		if sl.Current(c) != 1 {
			t.Errorf("mode = %d after switch", sl.Current(c))
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func rwWorkload(t *testing.T, mk func(m *machine.Machine) RWLock) {
	t.Helper()
	const procs = 8
	m := machine.New(machine.DefaultConfig(procs))
	l := mk(m)
	readers := 0
	writers := 0
	for p := 0; p < procs; p++ {
		p := p
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < 20; i++ {
				if p%4 == 0 {
					l.WriteLock(c)
					if readers != 0 || writers != 0 {
						t.Errorf("%s: writer overlaps (r=%d w=%d)", l.Name(), readers, writers)
					}
					writers++
					c.Advance(80)
					writers--
					l.WriteUnlock(c)
				} else {
					l.ReadLock(c)
					if writers != 0 {
						t.Errorf("%s: reader overlaps writer", l.Name())
					}
					readers++
					c.Advance(40)
					readers--
					l.ReadUnlock(c)
				}
				c.Advance(machine.Time(c.Rand().Intn(200)))
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCentralRWLock(t *testing.T) {
	rwWorkload(t, func(m *machine.Machine) RWLock { return NewCentralRWLock(m, 0) })
}

func TestDistributedRWLock(t *testing.T) {
	rwWorkload(t, func(m *machine.Machine) RWLock { return NewDistributedRWLock(m) })
}

func TestSelectableRWLockAcrossSwitches(t *testing.T) {
	const procs = 8
	m := machine.New(machine.DefaultConfig(procs))
	sl := NewSelectableRWLock(m, 0, []RWLock{
		NewCentralRWLock(m, 0),
		NewDistributedRWLock(m),
	})
	readers, writers := 0, 0
	for p := 0; p < procs; p++ {
		p := p
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < 20; i++ {
				if p%4 == 0 {
					idx := sl.WriteLock(c)
					if readers != 0 || writers != 0 {
						t.Errorf("writer overlaps (r=%d w=%d)", readers, writers)
					}
					writers++
					c.Advance(80)
					writers--
					if i%5 == 0 {
						sl.WriteUnlockAndSwitch(c, idx, (sl.Current(c)+1)%2)
					} else {
						sl.WriteUnlock(c, idx)
					}
				} else {
					idx := sl.ReadLock(c)
					if writers != 0 {
						t.Error("reader overlaps writer")
					}
					readers++
					c.Advance(40)
					readers--
					sl.ReadUnlock(c, idx)
				}
				c.Advance(machine.Time(c.Rand().Intn(200)))
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if sl.Changes == 0 {
		t.Fatal("no protocol changes exercised")
	}
}

func TestRWLockReadScalabilityTradeoff(t *testing.T) {
	// The contention-dependent tradeoff the selectable RW lock would
	// exploit: under heavy read sharing, the distributed protocol's read
	// side must beat the central protocol's RMW-per-reader.
	elapsed := func(mk func(m *machine.Machine) RWLock) machine.Time {
		const procs = 16
		m := machine.New(machine.DefaultConfig(procs))
		l := mk(m)
		var end machine.Time
		for p := 0; p < procs; p++ {
			m.SpawnCPU(p, 0, "r", func(c *machine.CPU) {
				for i := 0; i < 40; i++ {
					l.ReadLock(c)
					c.Advance(50)
					l.ReadUnlock(c)
					c.Advance(machine.Time(c.Rand().Intn(100)))
				}
				if c.Now() > end {
					end = c.Now()
				}
			})
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	central := elapsed(func(m *machine.Machine) RWLock { return NewCentralRWLock(m, 0) })
	dist := elapsed(func(m *machine.Machine) RWLock { return NewDistributedRWLock(m) })
	if dist >= central {
		t.Errorf("distributed read side (%d) should beat central (%d) at 16 readers", dist, central)
	}
}
