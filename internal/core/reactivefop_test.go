package core

import (
	"sort"
	"testing"

	"repro/internal/fetchop"
	"repro/internal/machine"
)

// runFOP exercises the reactive fetch-and-op with procs processors, iters
// ops each, think time U(0, think).
func runFOP(t *testing.T, procs, iters int, think int, tune func(*ReactiveFetchOp)) (*ReactiveFetchOp, []uint64, machine.Time) {
	t.Helper()
	m := machine.New(machine.DefaultConfig(procs))
	f := NewReactiveFetchOp(m.Mem, 0, procs)
	if tune != nil {
		tune(f)
	}
	var got []uint64
	var end machine.Time
	for p := 0; p < procs; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < iters; i++ {
				got = append(got, f.FetchAdd(c, 1))
				if think > 0 {
					c.Advance(machine.Time(c.Rand().Intn(think)))
				}
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return f, got, end
}

func checkPerm(t *testing.T, got []uint64, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("%d results, want %d", len(got), n)
	}
	s := append([]uint64(nil), got...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	for i, v := range s {
		if v != uint64(i) {
			t.Fatalf("results not a permutation of 0..%d (pos %d = %d)", n-1, i, v)
		}
	}
}

func TestReactiveFOPCorrectness(t *testing.T) {
	for _, procs := range []int{1, 2, 4, 8, 16, 32} {
		f, got, _ := runFOP(t, procs, 12, 500, nil)
		checkPerm(t, got, procs*12)
		if f.Value() != uint64(procs*12) {
			t.Fatalf("final value %d, want %d", f.Value(), procs*12)
		}
	}
}

func TestReactiveFOPStaysTTSUncontended(t *testing.T) {
	f, got, _ := runFOP(t, 1, 120, 200, nil)
	checkPerm(t, got, 120)
	if f.Mode() != fopTTS {
		t.Fatalf("mode = %d after uncontended run, want TTS", f.Mode())
	}
	if f.Changes != 0 {
		t.Fatalf("%d changes during uncontended run", f.Changes)
	}
}

func TestReactiveFOPPicksQueueAtModerateContention(t *testing.T) {
	f, got, _ := runFOP(t, 8, 40, 500, nil)
	checkPerm(t, got, 320)
	if f.Mode() != fopQueue {
		t.Fatalf("mode = %d at 8-way contention, want QUEUE", f.Mode())
	}
}

func TestReactiveFOPPicksTreeAtHighContention(t *testing.T) {
	f, got, _ := runFOP(t, 32, 40, 500, nil)
	checkPerm(t, got, 32*40)
	if f.Mode() != fopTree {
		t.Fatalf("mode = %d at 32-way contention, want TREE", f.Mode())
	}
}

func TestReactiveFOPReturnsFromTree(t *testing.T) {
	// Burst of contention followed by a solo phase: must come back down
	// from the tree (via queue, possibly to TTS).
	m := machine.New(machine.DefaultConfig(32))
	f := NewReactiveFetchOp(m.Mem, 0, 32)
	total := 0
	for p := 0; p < 32; p++ {
		m.SpawnCPU(p, 0, "hot", func(c *machine.CPU) {
			for i := 0; i < 25; i++ {
				f.FetchAdd(c, 1)
				c.Advance(machine.Time(c.Rand().Intn(400)))
			}
			total += 25
		})
	}
	m.SpawnCPU(0, 900000, "solo", func(c *machine.CPU) {
		for i := 0; i < 80; i++ {
			f.FetchAdd(c, 1)
			c.Advance(100)
		}
		total += 80
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Mode() == fopTree {
		t.Fatalf("still in TREE mode after contention subsided")
	}
	if f.Value() != uint64(total) {
		t.Fatalf("value %d, want %d", f.Value(), total)
	}
}

func TestReactiveFOPChangesAreCSerial(t *testing.T) {
	f, got, _ := runFOP(t, 16, 30, 2500, func(f *ReactiveFetchOp) {
		f.Check = &HistoryChecker{}
		f.EmptyQueueLimit = 1
		f.TTSRetryLimit = 1
		f.QueueWaitLimit = 400
		f.CombineRateMin = 3.9 // fall out of the tree quickly
	})
	checkPerm(t, got, 480)
	if f.Changes == 0 {
		t.Fatal("no protocol changes exercised")
	}
	if err := f.Check.CheckCSerial(); err != nil {
		t.Fatal(err)
	}
	if err := f.Check.CheckAtMostOneValid("tts"); err != nil {
		t.Fatal(err)
	}
}

func TestReactiveFOPImplementsFetchOp(t *testing.T) {
	var _ fetchop.FetchOp = (*ReactiveFetchOp)(nil)
}

func TestReactiveFOPDeterminism(t *testing.T) {
	_, _, e1 := runFOP(t, 8, 15, 300, nil)
	_, _, e2 := runFOP(t, 8, 15, 300, nil)
	if e1 != e2 {
		t.Fatalf("non-deterministic: %d vs %d", e1, e2)
	}
}
