package core

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// IntervalKind classifies a recorded consensus-object access.
type IntervalKind int

// Interval kinds: protocol executions versus protocol change operations.
const (
	ExecInterval IntervalKind = iota
	ChangeInterval
)

func (k IntervalKind) String() string {
	if k == ChangeInterval {
		return "change"
	}
	return "exec"
}

// Interval is one atomic access to a protocol object's consensus object.
type Interval struct {
	Obj   string
	Kind  IntervalKind
	Proc  int
	Start machine.Time
	End   machine.Time
}

// ValidityEvent is a validity-bit transition at its serialization point.
type ValidityEvent struct {
	Obj  string
	At   machine.Time
	Seq  int
	To   bool
	Proc int
}

// HistoryChecker accumulates the consensus-access history of a protocol
// selection algorithm and verifies the correctness conditions of
// Section 3.2.5:
//
//   - C-seriality (Definition 1) of the recorded accesses: every protocol
//     *change* operation at an object is totally ordered with respect to
//     every other operation at that object;
//   - the protocol-manager invariant that at most one protocol object is
//     valid at any time.
//
// The recorded intervals are exactly the windows during which a process
// held an object's consensus object, i.e. the serialization points that
// make the full execution history C-serializable (Definition 2).
type HistoryChecker struct {
	Intervals []Interval
	Validity  []ValidityEvent
	seq       int
}

// RecordInterval appends one consensus access.
func (h *HistoryChecker) RecordInterval(obj string, kind IntervalKind, proc int, start, end machine.Time) {
	h.Intervals = append(h.Intervals, Interval{Obj: obj, Kind: kind, Proc: proc, Start: start, End: end})
}

// RecordValidity appends one validity transition (in call order; Seq breaks
// same-cycle ties).
func (h *HistoryChecker) RecordValidity(obj string, at machine.Time, to bool, proc int) {
	h.seq++
	h.Validity = append(h.Validity, ValidityEvent{Obj: obj, At: at, Seq: h.seq, To: to, Proc: proc})
}

// CheckCSerial verifies Definition 1 over the recorded consensus accesses:
// at each object, no change interval overlaps any other interval.
func (h *HistoryChecker) CheckCSerial() error {
	byObj := map[string][]Interval{}
	for _, iv := range h.Intervals {
		byObj[iv.Obj] = append(byObj[iv.Obj], iv)
	}
	for obj, ivs := range byObj {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
		for i, a := range ivs {
			if a.Kind != ChangeInterval {
				continue
			}
			for j, b := range ivs {
				if i == j {
					continue
				}
				if a.Start < b.End && b.Start < a.End {
					return fmt.Errorf("core: history not C-serial at object %q: %s by P%d [%d,%d] overlaps %s by P%d [%d,%d]",
						obj, a.Kind, a.Proc, a.Start, a.End, b.Kind, b.Proc, b.Start, b.End)
				}
			}
		}
	}
	return nil
}

// CheckAtMostOneValid verifies the protocol-manager invariant: replaying
// the validity transitions in order, the number of simultaneously valid
// protocol objects never exceeds one. initiallyValid names the object that
// starts valid ("" for none).
func (h *HistoryChecker) CheckAtMostOneValid(initiallyValid string) error {
	evs := append([]ValidityEvent(nil), h.Validity...)
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Seq < evs[j].Seq
	})
	valid := map[string]bool{}
	if initiallyValid != "" {
		valid[initiallyValid] = true
	}
	count := len(valid)
	for _, ev := range evs {
		if valid[ev.Obj] != ev.To {
			valid[ev.Obj] = ev.To
			if ev.To {
				count++
			} else {
				count--
			}
		}
		if count > 1 {
			return fmt.Errorf("core: %d protocol objects valid simultaneously at cycle %d (event on %q by P%d)",
				count, ev.At, ev.Obj, ev.Proc)
		}
	}
	return nil
}
