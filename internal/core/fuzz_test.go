package core

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/spinlock"
)

// TestReactiveLockFuzzSchedules drives the reactive lock with randomized
// processor counts, critical-section lengths, think times and seeds, and
// checks mutual exclusion plus completion on every schedule.
func TestReactiveLockFuzzSchedules(t *testing.T) {
	f := func(seed uint64, rawProcs, rawCS, rawThink uint16) bool {
		procs := int(rawProcs%12) + 1
		cs := machine.Time(rawCS%400) + 1
		think := int(rawThink%1200) + 1
		cfg := machine.DefaultConfig(procs)
		cfg.Seed = seed
		m := machine.New(cfg)
		m.Eng.SetLimit(200_000_000)
		l := NewReactiveLock(m.Mem, 0)
		inCS := false
		violated := false
		done := 0
		for p := 0; p < procs; p++ {
			m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
				for i := 0; i < 12; i++ {
					h := l.Acquire(c)
					if inCS {
						violated = true
					}
					inCS = true
					c.Advance(cs)
					inCS = false
					l.Release(c, h)
					c.Advance(machine.Time(c.Rand().Intn(think)))
				}
				done++
			})
		}
		if err := m.Run(); err != nil {
			return false
		}
		return !violated && done == procs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestReactiveFOPFuzzPermutation drives the reactive fetch-and-op with
// randomized parameters and checks the fetch&add permutation invariant
// across whatever protocol changes occur.
func TestReactiveFOPFuzzPermutation(t *testing.T) {
	f := func(seed uint64, rawProcs, rawThink uint16, deltas []uint8) bool {
		procs := int(rawProcs%10) + 1
		think := int(rawThink%900) + 1
		cfg := machine.DefaultConfig(procs)
		cfg.Seed = seed
		m := machine.New(cfg)
		m.Eng.SetLimit(500_000_000)
		fo := NewReactiveFetchOp(m.Mem, 0, procs)
		const iters = 10
		var got []uint64
		var sum uint64
		for p := 0; p < procs; p++ {
			p := p
			m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
				for i := 0; i < iters; i++ {
					d := uint64(1)
					if len(deltas) > 0 {
						d = uint64(deltas[(p*iters+i)%len(deltas)])%5 + 1
					}
					got = append(got, fo.FetchAdd(c, d))
					sum += d
					c.Advance(machine.Time(c.Rand().Intn(think)))
				}
			})
		}
		if err := m.Run(); err != nil {
			return false
		}
		if fo.Value() != sum {
			return false
		}
		// Returned values must be distinct (each op observed a unique
		// prefix sum).
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				return false
			}
		}
		return len(got) == procs*iters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectableLockFuzz exercises the generic Appendix B.5 lock under
// random switch points.
func TestSelectableLockFuzz(t *testing.T) {
	f := func(seed uint64, switchMask uint8) bool {
		procs := 6
		cfg := machine.DefaultConfig(procs)
		cfg.Seed = seed
		m := machine.New(cfg)
		m.Eng.SetLimit(200_000_000)
		sl := NewSelectableLock(m, 0, []spinlock.Lock{
			spinlock.NewTTS(m.Mem, 0, spinlock.DefaultBackoff),
			spinlock.NewMCS(m.Mem, 1),
		})
		inCS := false
		ok := true
		for p := 0; p < procs; p++ {
			p := p
			m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
				for i := 0; i < 10; i++ {
					h := sl.Acquire(c)
					if inCS {
						ok = false
					}
					inCS = true
					c.Advance(40)
					inCS = false
					if switchMask&(1<<uint((p+i)%8)) != 0 {
						sl.ReleaseAndSwitch(c, h, (sl.Current(c)+1)%2)
					} else {
						sl.Release(c, h)
					}
					c.Advance(machine.Time(c.Rand().Intn(200)))
				}
			})
		}
		if err := m.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
