package core

import (
	"repro/internal/machine"
	"repro/internal/spinlock"
)

// This file implements the generic protocol-selection algorithms of
// Appendix B.5 (mutual-exclusion locks) and B.6 (reader-writer locks):
// given any set of component protocols — *unmodified* — a selectable lock
// is built from a mode hint, per-protocol valid bits, and the
// acquire-then-validate discipline:
//
//	acquire the hinted component lock; if its protocol is invalid, release
//	it and retry via the hint. Protocol changes are made only by the
//	current holder of the valid component lock (the consensus object), so
//	validity flips are serialized with all executions: an acquisition
//	either observes the old validity (and retries) or the new one.
//
// Unlike ReactiveLock (Section 3.7.3), which edits the component protocols
// to detect invalidation *while waiting*, the generic algorithm leaves
// invalid component locks free: stale acquirers briefly acquire them, fail
// the validity check, release and re-dispatch. This is the phase-1
// "correct but unoptimized" implementation of Section 3.7.1.

// SelectableLock is a mutual-exclusion lock generically composed from
// component protocols (Figure B.5). Protocol 0 starts valid.
type SelectableLock struct {
	mode  machine.Addr   // hint: index of the valid protocol
	valid []machine.Addr // per-protocol valid bits
	locks []spinlock.Lock

	// Changes counts protocol changes (stats).
	Changes uint64
}

// SelHandle identifies the protocol an acquisition went through.
type SelHandle struct {
	idx int
	h   spinlock.Handle
}

// NewSelectableLock composes the given component locks; all control words
// are homed on node home.
func NewSelectableLock(m *machine.Machine, home int, locks []spinlock.Lock) *SelectableLock {
	if len(locks) == 0 {
		panic("core: SelectableLock needs at least one protocol")
	}
	sl := &SelectableLock{
		mode:  m.Mem.Alloc(home, 1),
		locks: locks,
	}
	for i := range locks {
		v := m.Mem.Alloc(home, 1)
		if i == 0 {
			m.Mem.Poke(v, 1)
		}
		sl.valid = append(sl.valid, v)
	}
	return sl
}

// Name implements spinlock.Lock.
func (sl *SelectableLock) Name() string { return "selectable" }

// Acquire implements spinlock.Lock: acquire the hinted protocol and
// validate; on an invalidated protocol, undo and retry.
func (sl *SelectableLock) Acquire(c machine.Context) spinlock.Handle {
	for {
		i := int(c.Read(sl.mode)) % len(sl.locks)
		h := sl.locks[i].Acquire(c)
		if c.Read(sl.valid[i]) != 0 {
			return SelHandle{idx: i, h: h}
		}
		// Acquired an invalidated protocol: release and re-dispatch.
		sl.locks[i].Release(c, h)
		c.Advance(2)
	}
}

// Release implements spinlock.Lock.
func (sl *SelectableLock) Release(c machine.Context, h spinlock.Handle) {
	sh := h.(SelHandle)
	sl.locks[sh.idx].Release(c, sh.h)
}

// ReleaseAndSwitch releases the lock and changes the valid protocol to
// target in one step. Only the holder may call it: holding the valid
// component lock is what serializes the change (C-serializability via the
// lock-as-consensus-object property).
func (sl *SelectableLock) ReleaseAndSwitch(c machine.Context, h spinlock.Handle, target int) {
	sh := h.(SelHandle)
	if target != sh.idx {
		c.Write(sl.valid[sh.idx], 0)
		c.Write(sl.valid[target], 1)
		c.Write(sl.mode, uint64(target))
		sl.Changes++
	}
	sl.locks[sh.idx].Release(c, sh.h)
}

// Current returns the hinted protocol index (test use).
func (sl *SelectableLock) Current(c machine.Context) int {
	return int(c.Read(sl.mode)) % len(sl.locks)
}

// --- Reader-writer locks (Appendix B.6) ---

// RWLock is the synchronization operation both component reader-writer
// protocols implement.
type RWLock interface {
	Name() string
	ReadLock(c machine.Context)
	ReadUnlock(c machine.Context)
	WriteLock(c machine.Context)
	WriteUnlock(c machine.Context)
}

// CentralRWLock is a centralized reader-writer protocol: one word holds
// the writer bit and the reader count. Low uncontended latency; every
// reader RMWs the same word, so read-side throughput collapses under many
// concurrent readers.
type CentralRWLock struct {
	word machine.Addr // bit 63 = writer; low bits = reader count
}

const rwWriterBit = uint64(1) << 63

// NewCentralRWLock allocates the protocol on node home.
func NewCentralRWLock(m *machine.Machine, home int) *CentralRWLock {
	return &CentralRWLock{word: m.Mem.Alloc(home, 1)}
}

// Name implements RWLock.
func (l *CentralRWLock) Name() string { return "central-rw" }

// ReadLock implements RWLock.
func (l *CentralRWLock) ReadLock(c machine.Context) {
	for {
		v := c.Read(l.word)
		if v&rwWriterBit == 0 && c.CompareAndSwap(l.word, v, v+1) {
			return
		}
		c.Advance(c.Rand().Uint64n(32) + 2)
	}
}

// ReadUnlock implements RWLock.
func (l *CentralRWLock) ReadUnlock(c machine.Context) {
	for {
		v := c.Read(l.word)
		if c.CompareAndSwap(l.word, v, v-1) {
			return
		}
		c.Advance(2)
	}
}

// WriteLock implements RWLock.
func (l *CentralRWLock) WriteLock(c machine.Context) {
	// Claim the writer bit, then wait for readers to drain.
	for {
		v := c.Read(l.word)
		if v&rwWriterBit == 0 && c.CompareAndSwap(l.word, v, v|rwWriterBit) {
			break
		}
		c.Advance(c.Rand().Uint64n(32) + 2)
	}
	for c.Read(l.word) != rwWriterBit {
		c.Advance(2)
	}
}

// WriteUnlock implements RWLock.
func (l *CentralRWLock) WriteUnlock(c machine.Context) {
	for {
		v := c.Read(l.word)
		if c.CompareAndSwap(l.word, v, v&^rwWriterBit) {
			return
		}
		c.Advance(2)
	}
}

// DistributedRWLock is a reader-scalable protocol: per-processor reader
// flags (readers touch only a locally homed word) and a writer that claims
// a writer word then sweeps every flag — higher write latency, near-flat
// read-side cost under read contention.
type DistributedRWLock struct {
	readerFlags []machine.Addr // one per processor, locally homed
	writer      machine.Addr
}

// NewDistributedRWLock allocates per-processor reader flags.
func NewDistributedRWLock(m *machine.Machine) *DistributedRWLock {
	l := &DistributedRWLock{writer: m.Mem.Alloc(0, 1)}
	for p := 0; p < m.NumProcs(); p++ {
		l.readerFlags = append(l.readerFlags, m.Mem.Alloc(p, 1))
	}
	return l
}

// Name implements RWLock.
func (l *DistributedRWLock) Name() string { return "distributed-rw" }

// ReadLock implements RWLock.
func (l *DistributedRWLock) ReadLock(c machine.Context) {
	my := l.readerFlags[c.ProcID()]
	for {
		c.Write(my, 1)
		if c.Read(l.writer) == 0 {
			return
		}
		// A writer is active or arriving: stand down and wait.
		c.Write(my, 0)
		for c.Read(l.writer) != 0 {
			c.Advance(4)
		}
	}
}

// ReadUnlock implements RWLock.
func (l *DistributedRWLock) ReadUnlock(c machine.Context) {
	c.Write(l.readerFlags[c.ProcID()], 0)
}

// WriteLock implements RWLock.
func (l *DistributedRWLock) WriteLock(c machine.Context) {
	for c.TestAndSet(l.writer) != 0 {
		c.Advance(c.Rand().Uint64n(64) + 2)
	}
	// Wait for every reader to drain.
	for _, f := range l.readerFlags {
		for c.Read(f) != 0 {
			c.Advance(4)
		}
	}
}

// WriteUnlock implements RWLock.
func (l *DistributedRWLock) WriteUnlock(c machine.Context) {
	c.Write(l.writer, 0)
}

// SelectableRWLock composes component reader-writer protocols (Figure
// B.6) with the same acquire-then-validate discipline. Read holds validate
// against the protocol's valid bit after ReadLock; changes require a write
// hold (full exclusion), which is the reader-writer protocol's consensus
// condition.
type SelectableRWLock struct {
	mode  machine.Addr
	valid []machine.Addr
	locks []RWLock

	// Changes counts protocol changes.
	Changes uint64
}

// NewSelectableRWLock composes the component protocols; protocol 0 starts
// valid.
func NewSelectableRWLock(m *machine.Machine, home int, locks []RWLock) *SelectableRWLock {
	if len(locks) == 0 {
		panic("core: SelectableRWLock needs at least one protocol")
	}
	sl := &SelectableRWLock{
		mode:  m.Mem.Alloc(home, 1),
		locks: locks,
	}
	for i := range locks {
		v := m.Mem.Alloc(home, 1)
		if i == 0 {
			m.Mem.Poke(v, 1)
		}
		sl.valid = append(sl.valid, v)
	}
	return sl
}

// ReadLock acquires the lock for reading and returns the protocol index
// to pass to ReadUnlock.
func (sl *SelectableRWLock) ReadLock(c machine.Context) int {
	for {
		i := int(c.Read(sl.mode)) % len(sl.locks)
		sl.locks[i].ReadLock(c)
		if c.Read(sl.valid[i]) != 0 {
			return i
		}
		sl.locks[i].ReadUnlock(c)
		c.Advance(2)
	}
}

// ReadUnlock releases a read hold acquired through protocol i.
func (sl *SelectableRWLock) ReadUnlock(c machine.Context, i int) {
	sl.locks[i].ReadUnlock(c)
}

// WriteLock acquires the lock for writing.
func (sl *SelectableRWLock) WriteLock(c machine.Context) int {
	for {
		i := int(c.Read(sl.mode)) % len(sl.locks)
		sl.locks[i].WriteLock(c)
		if c.Read(sl.valid[i]) != 0 {
			return i
		}
		sl.locks[i].WriteUnlock(c)
		c.Advance(2)
	}
}

// WriteUnlock releases a write hold acquired through protocol i.
func (sl *SelectableRWLock) WriteUnlock(c machine.Context, i int) {
	sl.locks[i].WriteUnlock(c)
}

// WriteUnlockAndSwitch releases a write hold and changes the valid
// protocol. A write hold excludes all readers and writers of the valid
// protocol, so the change is serialized with every operation.
func (sl *SelectableRWLock) WriteUnlockAndSwitch(c machine.Context, i, target int) {
	if target != i {
		c.Write(sl.valid[i], 0)
		c.Write(sl.valid[target], 1)
		c.Write(sl.mode, uint64(target))
		sl.Changes++
	}
	sl.locks[i].WriteUnlock(c)
}

// Current returns the hinted protocol index (test use).
func (sl *SelectableRWLock) Current(c machine.Context) int {
	return int(c.Read(sl.mode)) % len(sl.locks)
}
