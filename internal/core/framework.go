// Package core implements the thesis's primary contribution: reactive
// synchronization algorithms that dynamically select protocols.
//
// It contains (1) the protocol-selection framework of Section 3.2 —
// protocol objects, the concurrent protocol manager, consensus objects, and
// a C-serializability checker; (2) the reactive spin lock of Section 3.7.3;
// and (3) the reactive fetch-and-op of Appendix C.
package core

import (
	"repro/internal/machine"
)

// ProtocolObject is the specification of Figure 3.5: a synchronization
// protocol wrapped with validity operations so a protocol manager can
// select among several protocols.
//
// DoProtocol runs the protocol; ok=false signals that the protocol was
// invalid (the execution is a no-op logically) and the manager must retry.
// Invalidate marks the object invalid, returning true only if it was valid
// (at most one caller wins). Validate resets the protocol to a consistent
// state representing the synchronization object's current state and marks
// it valid. IsValid is a hint used for dispatch.
type ProtocolObject interface {
	DoProtocol(c machine.Context, arg uint64) (uint64, bool)
	Invalidate(c machine.Context) bool
	Validate(c machine.Context)
	IsValid(c machine.Context) bool
}

// Manager is the concurrent protocol manager of Figure 3.6, generalized to
// any number of protocol objects. DoSynchOp returns results only from valid
// protocol executions; DoChange preserves the invariant that at most one
// protocol object is valid (assuming exactly one is valid initially).
type Manager struct {
	Objs []ProtocolObject
}

// DoSynchOp performs the synchronization operation, retrying until some
// valid protocol execution succeeds.
func (m *Manager) DoSynchOp(c machine.Context, arg uint64) uint64 {
	for {
		for _, o := range m.Objs {
			if !o.IsValid(c) {
				continue
			}
			if v, ok := o.DoProtocol(c, arg); ok {
				return v
			}
			break // validity hint was stale; rescan
		}
		c.Advance(2)
	}
}

// DoChange switches the valid protocol to Objs[target]. It invalidates the
// currently valid object and validates the target; if the target was
// already valid, nothing happens.
func (m *Manager) DoChange(c machine.Context, target int) {
	for i, o := range m.Objs {
		if i == target {
			continue
		}
		if o.Invalidate(c) {
			m.Objs[target].Validate(c)
			return
		}
	}
}

// --- Naive lock-based protocol object (Figure 3.7) ---
//
// The straightforward implementation serializes *every* operation with one
// lock. It is correct but (a) serializes protocol executions, (b) adds an
// acquire/release to every synchronization operation, and (c) is useless
// for building reactive locks. It exists as the framework's reference
// implementation and as the ablation baseline against consensus objects.

// NaiveObject wraps a protocol with a test-and-set lock that brackets every
// operation (Figure 3.7).
type NaiveObject struct {
	lock  machine.Addr
	valid machine.Addr

	// Run executes the underlying protocol (called with the lock held).
	Run func(c machine.Context, arg uint64) uint64
	// Update resets the protocol to a consistent state before validation.
	Update func(c machine.Context)
}

// NewNaiveObject allocates the object's lock and valid flag on node home.
func NewNaiveObject(m *machine.Machine, home int, valid bool) *NaiveObject {
	o := &NaiveObject{
		lock:  m.Mem.Alloc(home, 1),
		valid: m.Mem.Alloc(home, 1),
	}
	if valid {
		m.Mem.Poke(o.valid, 1)
	}
	return o
}

func (o *NaiveObject) acquire(c machine.Context) {
	for {
		for c.Read(o.lock) != 0 {
			c.Advance(2)
		}
		if c.TestAndSet(o.lock) == 0 {
			return
		}
		c.Advance(c.Rand().Uint64n(32) + 1)
	}
}

func (o *NaiveObject) release(c machine.Context) { c.Write(o.lock, 0) }

// DoProtocol implements ProtocolObject.
func (o *NaiveObject) DoProtocol(c machine.Context, arg uint64) (uint64, bool) {
	o.acquire(c)
	defer o.release(c)
	if c.Read(o.valid) == 0 {
		return 0, false
	}
	return o.Run(c, arg), true
}

// Invalidate implements ProtocolObject.
func (o *NaiveObject) Invalidate(c machine.Context) bool {
	o.acquire(c)
	defer o.release(c)
	if c.Read(o.valid) == 0 {
		return false
	}
	c.Write(o.valid, 0)
	return true
}

// Validate implements ProtocolObject.
func (o *NaiveObject) Validate(c machine.Context) {
	o.acquire(c)
	defer o.release(c)
	if c.Read(o.valid) == 0 {
		if o.Update != nil {
			o.Update(c)
		}
		c.Write(o.valid, 1)
	}
}

// IsValid implements ProtocolObject.
func (o *NaiveObject) IsValid(c machine.Context) bool {
	return c.Read(o.valid) != 0
}

// --- Consensus-object-based protocol object (Figure 3.11) ---
//
// Protocols with a consensus object — a unique object some synchronizing
// process must access atomically exactly once to complete the protocol —
// admit concurrent protocol executions while still serializing protocol
// changes (C-serializability, Definition 2). The canonical protocol shape
// is:
//
//	if PreConsensus() { AcquireConsensus; InConsensus; ReleaseConsensus }
//	else              { WaitConsensus }
//	PostConsensus
//
// ConsensusObject below packages the atomic-access part: a test-and-set
// lock guarding a valid bit. Protocol changes acquire it; executions pass
// through it exactly once.

// ConsensusObject is a lockable valid bit in simulated memory.
type ConsensusObject struct {
	lock  machine.Addr
	valid machine.Addr
}

// NewConsensusObject allocates a consensus object on node home.
func NewConsensusObject(m *machine.Machine, home int, valid bool) *ConsensusObject {
	o := &ConsensusObject{
		lock:  m.Mem.Alloc(home, 1),
		valid: m.Mem.Alloc(home, 1),
	}
	if valid {
		m.Mem.Poke(o.valid, 1)
	}
	return o
}

// Acquire obtains atomic access to the consensus object.
func (o *ConsensusObject) Acquire(c machine.Context) {
	for {
		for c.Read(o.lock) != 0 {
			c.Advance(2)
		}
		if c.TestAndSet(o.lock) == 0 {
			return
		}
		c.Advance(c.Rand().Uint64n(32) + 1)
	}
}

// Release relinquishes atomic access.
func (o *ConsensusObject) Release(c machine.Context) { c.Write(o.lock, 0) }

// Valid reads the valid bit (call with or without atomic access; without,
// it is only a hint).
func (o *ConsensusObject) Valid(c machine.Context) bool {
	return c.Read(o.valid) != 0
}

// SetValid writes the valid bit (call only with atomic access).
func (o *ConsensusObject) SetValid(c machine.Context, v bool) {
	var w uint64
	if v {
		w = 1
	}
	c.Write(o.valid, w)
}

// GenericObject implements ProtocolObject for any protocol expressed in the
// canonical consensus-object form. It performs the serialization argument
// of Figure 3.10 mechanically: executions that reach the consensus object
// before a change serialize before it; executions in post-consensus are
// unaffected; executions that find the object invalid fail and retry.
type GenericObject struct {
	CO *ConsensusObject

	// PreConsensus returns true if this process must enter the consensus
	// phase itself, false if it waits on another process (wait-consensus).
	PreConsensus func(c machine.Context, arg uint64) bool
	// InConsensus runs with the consensus object held and valid.
	InConsensus func(c machine.Context, arg uint64) uint64
	// WaitConsensus waits for a consensus-phase process; ok=false means an
	// invalid signal was received.
	WaitConsensus func(c machine.Context, arg uint64) (uint64, bool)
	// PostConsensus completes the protocol (ok reports validity).
	PostConsensus func(c machine.Context, arg, v uint64, ok bool) uint64
	// Update resets the protocol state before validation.
	Update func(c machine.Context)

	// Name labels the object in recorded histories.
	Name string
	// Check optionally records consensus accesses for C-serial checking.
	Check *HistoryChecker
}

// record logs one consensus-held window if checking is enabled.
func (g *GenericObject) record(c machine.Context, kind IntervalKind, start machine.Time) {
	if g.Check != nil {
		g.Check.RecordInterval(g.Name, kind, c.ProcID(), start, c.Now())
	}
}

// DoProtocol implements ProtocolObject (Figure 3.11's DoProtocol).
func (g *GenericObject) DoProtocol(c machine.Context, arg uint64) (uint64, bool) {
	if g.PreConsensus == nil || g.PreConsensus(c, arg) {
		g.CO.Acquire(c)
		start := c.Now()
		if !g.CO.Valid(c) {
			g.record(c, ExecInterval, start)
			g.CO.Release(c)
			if g.PostConsensus != nil {
				g.PostConsensus(c, arg, 0, false)
			}
			return 0, false
		}
		v := g.InConsensus(c, arg)
		g.record(c, ExecInterval, start)
		g.CO.Release(c)
		if g.PostConsensus != nil {
			v = g.PostConsensus(c, arg, v, true)
		}
		return v, true
	}
	v, ok := g.WaitConsensus(c, arg)
	if g.PostConsensus != nil {
		v = g.PostConsensus(c, arg, v, ok)
	}
	if !ok {
		return 0, false
	}
	return v, true
}

// Invalidate implements ProtocolObject (Figure 3.11's Invalidate).
func (g *GenericObject) Invalidate(c machine.Context) bool {
	g.CO.Acquire(c)
	start := c.Now()
	defer g.CO.Release(c)
	if !g.CO.Valid(c) {
		g.record(c, ChangeInterval, start)
		return false
	}
	g.CO.SetValid(c, false)
	if g.Check != nil {
		g.Check.RecordValidity(g.Name, c.Now(), false, c.ProcID())
	}
	g.record(c, ChangeInterval, start)
	return true
}

// Validate implements ProtocolObject (Figure 3.11's Validate).
func (g *GenericObject) Validate(c machine.Context) {
	g.CO.Acquire(c)
	start := c.Now()
	defer g.CO.Release(c)
	if !g.CO.Valid(c) {
		if g.Update != nil {
			g.Update(c)
		}
		g.CO.SetValid(c, true)
		if g.Check != nil {
			g.Check.RecordValidity(g.Name, c.Now(), true, c.ProcID())
		}
	}
	g.record(c, ChangeInterval, start)
}

// IsValid implements ProtocolObject.
func (g *GenericObject) IsValid(c machine.Context) bool {
	return g.CO.Valid(c)
}
