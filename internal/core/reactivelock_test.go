package core

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/spinlock"
	"repro/reactive/policy"
)

// exerciseLock runs the reactive lock under the standard loop and checks
// mutual exclusion.
func exerciseLock(t *testing.T, procs, iters int, tune func(*ReactiveLock)) (*ReactiveLock, machine.Time) {
	t.Helper()
	m := machine.New(machine.DefaultConfig(procs))
	l := NewReactiveLock(m.Mem, 0)
	if tune != nil {
		tune(l)
	}
	inCS := false
	var end machine.Time
	for p := 0; p < procs; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < iters; i++ {
				h := l.Acquire(c)
				if inCS {
					t.Error("reactive lock: mutual exclusion violated")
				}
				inCS = true
				c.Advance(100)
				inCS = false
				l.Release(c, h)
				c.Advance(machine.Time(c.Rand().Intn(500)))
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return l, end
}

func TestReactiveLockMutualExclusion(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 8, 16, 32} {
		exerciseLock(t, procs, 15, nil)
	}
}

func TestReactiveLockStaysTTSWhenUncontended(t *testing.T) {
	l, _ := exerciseLock(t, 1, 100, nil)
	if l.Mode() != modeTTS {
		t.Fatalf("mode = %d after uncontended run, want TTS", l.Mode())
	}
	if l.Changes != 0 {
		t.Fatalf("%d protocol changes during uncontended run", l.Changes)
	}
}

func TestReactiveLockSwitchesToQueueUnderContention(t *testing.T) {
	l, _ := exerciseLock(t, 16, 30, nil)
	if l.Mode() != modeQueue {
		t.Fatalf("mode = %d after 16-way contention, want QUEUE", l.Mode())
	}
	if l.Changes == 0 {
		t.Fatal("no protocol change under contention")
	}
}

func TestReactiveLockSwitchesBackToTTS(t *testing.T) {
	// High contention phase, then a single processor: must return to TTS.
	m := machine.New(machine.DefaultConfig(16))
	l := NewReactiveLock(m.Mem, 0)
	inCS := false
	cs := func(c *machine.CPU) {
		h := l.Acquire(c)
		if inCS {
			t.Error("mutual exclusion violated")
		}
		inCS = true
		c.Advance(100)
		inCS = false
		l.Release(c, h)
	}
	for p := 0; p < 16; p++ {
		m.SpawnCPU(p, 0, "hot", func(c *machine.CPU) {
			for i := 0; i < 20; i++ {
				cs(c)
				c.Advance(machine.Time(c.Rand().Intn(250)))
			}
		})
	}
	m.SpawnCPU(0, 400000, "solo", func(c *machine.CPU) {
		for i := 0; i < 60; i++ {
			cs(c)
			c.Advance(50)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Mode() != modeTTS {
		t.Fatalf("mode = %d after contention subsided, want TTS", l.Mode())
	}
	if l.Changes < 2 {
		t.Fatalf("expected at least 2 protocol changes, got %d", l.Changes)
	}
}

func TestReactiveLockChangesAreCSerial(t *testing.T) {
	m := machine.New(machine.DefaultConfig(12))
	l := NewReactiveLock(m.Mem, 0)
	l.Check = &HistoryChecker{}
	l.EmptyQueueLimit = 1 // encourage frequent flapping
	l.TTSRetryLimit = 1
	inCS := false
	for p := 0; p < 12; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < 25; i++ {
				h := l.Acquire(c)
				if inCS {
					t.Error("mutual exclusion violated")
				}
				inCS = true
				c.Advance(40)
				inCS = false
				l.Release(c, h)
				// Alternate burst and idle to force mode changes.
				if i%5 == 0 {
					c.Advance(machine.Time(c.Rand().Intn(4000)))
				}
			}
		})
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Changes == 0 {
		t.Fatal("test did not exercise protocol changes")
	}
	if err := l.Check.CheckCSerial(); err != nil {
		t.Fatal(err)
	}
	if err := l.Check.CheckAtMostOneValid("tts"); err != nil {
		t.Fatal(err)
	}
}

func TestReactiveLockCompetitivePolicy(t *testing.T) {
	l, _ := exerciseLock(t, 16, 30, func(l *ReactiveLock) {
		l.Policy = policy.NewCompetitive(2000)
	})
	if l.Mode() != modeQueue {
		t.Fatal("competitive policy never switched under sustained contention")
	}
}

func TestReactiveLockHysteresisPolicy(t *testing.T) {
	l, _ := exerciseLock(t, 16, 30, func(l *ReactiveLock) {
		l.Policy = policy.NewHysteresis(4, 500)
	})
	if l.Mode() != modeQueue {
		t.Fatal("hysteresis policy never switched under sustained contention")
	}
}

func TestReactiveLockNonOptimistic(t *testing.T) {
	l, _ := exerciseLock(t, 8, 20, func(l *ReactiveLock) { l.Optimistic = false })
	_ = l
}

func TestReactiveLockAsSpinlockInterface(t *testing.T) {
	// The reactive lock satisfies spinlock.Lock, so harnesses can treat all
	// protocols uniformly.
	var _ spinlock.Lock = (*ReactiveLock)(nil)
}

func TestReactiveLockDeterminism(t *testing.T) {
	_, e1 := exerciseLock(t, 6, 20, nil)
	_, e2 := exerciseLock(t, 6, 20, nil)
	if e1 != e2 {
		t.Fatalf("non-deterministic: %d vs %d", e1, e2)
	}
}

func TestReactiveLockNearTTSWhenUncontendedCost(t *testing.T) {
	// Baseline shape: uncontended reactive lock should be close to the
	// plain TTS lock, far below the MCS lock (Figure 3.15 left, P=1).
	solo := func(l spinlock.Lock, m *machine.Machine) machine.Time {
		var lat machine.Time
		m.SpawnCPU(0, 0, "solo", func(c *machine.CPU) {
			h := l.Acquire(c)
			l.Release(c, h) // warm
			start := c.Now()
			for i := 0; i < 200; i++ {
				h := l.Acquire(c)
				l.Release(c, h)
			}
			lat = (c.Now() - start) / 200
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return lat
	}
	m1 := machine.New(machine.DefaultConfig(2))
	reactive := solo(NewReactiveLock(m1.Mem, 0), m1)
	m2 := machine.New(machine.DefaultConfig(2))
	tts := solo(spinlock.NewTTS(m2.Mem, 0, spinlock.DefaultBackoff), m2)
	m3 := machine.New(machine.DefaultConfig(2))
	mcs := solo(spinlock.NewMCS(m3.Mem, 0), m3)
	if float64(reactive) > 1.4*float64(tts) {
		t.Errorf("uncontended reactive lock %d cycles vs tts %d — overhead too high", reactive, tts)
	}
	if reactive >= mcs {
		t.Errorf("uncontended reactive lock %d should beat mcs %d", reactive, mcs)
	}
}
