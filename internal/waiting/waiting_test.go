package waiting

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/threads"
)

type recorder struct{ waits []Time }

func (r *recorder) Observe(w Time) { r.waits = append(r.waits, w) }

func newSched(procs int) *threads.Scheduler {
	return threads.NewScheduler(machine.New(machine.DefaultConfig(procs)), threads.DefaultCosts())
}

// runWait makes a waiter wait for a flag set at time signalAt, with a
// coworker thread sharing the waiter's processor, and returns (time the
// waiter proceeded, cycles of coworker progress before the signal).
func runWait(t *testing.T, alg Algorithm, signalAt Time) (proceeded Time, coworkerDone Time) {
	t.Helper()
	s := newSched(2)
	var q threads.WaitQueue
	flag := false
	s.Spawn(0, 0, "waiter", func(th *threads.Thread) {
		alg.Wait(th, func() bool { return flag }, &q)
		if !flag {
			t.Error("Wait returned before condition")
		}
		proceeded = th.Now()
	})
	s.Spawn(0, 0, "coworker", func(th *threads.Thread) {
		for i := 0; i < 200; i++ {
			th.Advance(100)
			th.Yield()
		}
		coworkerDone = th.Now()
	})
	s.Spawn(1, 0, "signaler", func(th *threads.Thread) {
		th.Advance(signalAt)
		flag = true
		q.WakeAll(th)
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	return proceeded, coworkerDone
}

func TestAlwaysSpinProceedsPromptly(t *testing.T) {
	proceeded, _ := runWait(t, &AlwaysSpin{}, 3000)
	if proceeded < 3000 || proceeded > 3100 {
		t.Fatalf("spin waiter proceeded at %d, want ~3000", proceeded)
	}
}

func TestAlwaysBlockFreesProcessor(t *testing.T) {
	// While the waiter is blocked, the coworker must finish its 20000
	// cycles of work well before the (late) signal.
	proceeded, coworker := runWait(t, &AlwaysBlock{}, 100000)
	if proceeded < 100000 {
		t.Fatalf("block waiter proceeded at %d before signal", proceeded)
	}
	if coworker == 0 || coworker > 60000 {
		t.Fatalf("coworker finished at %d; should have run during the block", coworker)
	}
}

func TestTwoPhaseShortWaitNeverBlocks(t *testing.T) {
	s := newSched(2)
	var q threads.WaitQueue
	flag := false
	alg := NewTwoPhase(500)
	s.Spawn(0, 0, "waiter", func(th *threads.Thread) {
		alg.Wait(th, func() bool { return flag }, &q)
	})
	s.Spawn(1, 0, "signaler", func(th *threads.Thread) {
		th.Advance(200) // inside the polling window
		flag = true
		q.WakeAll(th)
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	if s.Blocks != 0 {
		t.Fatalf("two-phase blocked %d times during a short wait", s.Blocks)
	}
}

func TestTwoPhaseLongWaitBlocks(t *testing.T) {
	s := newSched(2)
	var q threads.WaitQueue
	flag := false
	alg := NewTwoPhase(500)
	s.Spawn(0, 0, "waiter", func(th *threads.Thread) {
		alg.Wait(th, func() bool { return flag }, &q)
	})
	s.Spawn(1, 0, "signaler", func(th *threads.Thread) {
		th.Advance(50000)
		flag = true
		q.WakeAll(th)
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	if s.Blocks == 0 {
		t.Fatal("two-phase never blocked during a long wait")
	}
}

func TestTwoPhaseWorstCaseIsBounded(t *testing.T) {
	// 2phase(B) costs at most Lpoll + B ≈ 2B of waiting overhead even when
	// the signal arrives just after the polling phase ends — the classic
	// 2-competitive worst case.
	costs := threads.DefaultCosts()
	b := costs.BlockCost()
	alg := NewTwoPhaseAlpha(1.0, costs)
	signalAt := alg.Lpoll + 50 // just missed the polling window
	proceeded, _ := runWait(t, alg, signalAt)
	// The waiter resumes after wake + reload; total overhead past the
	// signal must stay within ~B.
	if proceeded > signalAt+b+200 {
		t.Fatalf("worst-case two-phase proceeded at %d for signal at %d (B=%d)", proceeded, signalAt, b)
	}
}

func TestProfilerObservesWaits(t *testing.T) {
	rec := &recorder{}
	alg := &AlwaysSpin{Prof: rec}
	runWait(t, alg, 2000)
	if len(rec.waits) != 1 {
		t.Fatalf("%d observations", len(rec.waits))
	}
	if rec.waits[0] < 1900 || rec.waits[0] > 2200 {
		t.Fatalf("observed wait %d, want ~2000", rec.waits[0])
	}
}

func TestSwitchSpinLetsCoworkerRun(t *testing.T) {
	// Switch-spinning interleaves the coworker while polling.
	proceeded, coworker := runWait(t, &SwitchSpin{}, 30000)
	if proceeded < 30000 {
		t.Fatal("switch-spin returned early")
	}
	if coworker == 0 || coworker > 60000 {
		t.Fatalf("coworker at %d; switch-spinning should share the processor", coworker)
	}
}

func TestTwoPhaseSwitchBlocksEventually(t *testing.T) {
	s := newSched(2)
	var q threads.WaitQueue
	flag := false
	alg := &TwoPhaseSwitch{Lpoll: 400}
	s.Spawn(0, 0, "waiter", func(th *threads.Thread) {
		alg.Wait(th, func() bool { return flag }, &q)
	})
	s.Spawn(1, 0, "signaler", func(th *threads.Thread) {
		th.Advance(80000)
		flag = true
		q.WakeAll(th)
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	if s.Blocks == 0 {
		t.Fatal("two-phase-switch never blocked")
	}
}

func TestNames(t *testing.T) {
	costs := threads.DefaultCosts()
	for _, pair := range []struct {
		alg  Algorithm
		want string
	}{
		{&AlwaysSpin{}, "always-spin"},
		{&AlwaysBlock{}, "always-block"},
		{NewTwoPhaseAlpha(0.54, costs), "2phase(0.54B)"},
		{&SwitchSpin{}, "switch-spin"},
	} {
		if pair.alg.Name() != pair.want {
			t.Errorf("name %q, want %q", pair.alg.Name(), pair.want)
		}
	}
}
