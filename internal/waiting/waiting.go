// Package waiting implements the waiting mechanisms and waiting algorithms
// of Chapter 4: spinning and switch-spinning (polling mechanisms), blocking
// (the signaling mechanism), and the two-phase waiting algorithm that polls
// until the cost of polling reaches Lpoll before blocking.
//
// A waiting algorithm's job: given a condition and a wait queue, consume as
// few processor cycles as possible until the condition holds. Polling costs
// cycles proportional to the waiting time; blocking costs the fixed B ≈ 500
// cycles of Table 4.1 but frees the processor for other threads.
package waiting

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/threads"
)

// Time is simulated cycles.
type Time = machine.Time

// Profiler observes individual waiting times (used to produce the
// waiting-time distribution figures 4.6-4.11).
type Profiler interface {
	Observe(wait Time)
}

// Algorithm is a waiting algorithm: it returns once cond() is true.
// Implementations may block the thread on q; whoever makes cond true must
// wake q's threads.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Wait waits until cond() holds.
	Wait(t *threads.Thread, cond func() bool, q *threads.WaitQueue)
}

// PollGrain is the cost of one poll iteration (a cached read plus loop
// overhead).
const PollGrain Time = 4

// AlwaysSpin is the pure polling algorithm: Lpoll = ∞.
type AlwaysSpin struct {
	// Prof optionally records waiting times.
	Prof Profiler
}

// Name implements Algorithm.
func (a *AlwaysSpin) Name() string { return "always-spin" }

// Wait implements Algorithm.
func (a *AlwaysSpin) Wait(t *threads.Thread, cond func() bool, _ *threads.WaitQueue) {
	start := t.Now()
	for !cond() {
		t.Advance(PollGrain)
	}
	if a.Prof != nil {
		a.Prof.Observe(t.Now() - start)
	}
}

// AlwaysBlock is the pure signaling algorithm: Lpoll = 0.
type AlwaysBlock struct {
	Prof Profiler
}

// Name implements Algorithm.
func (a *AlwaysBlock) Name() string { return "always-block" }

// Wait implements Algorithm.
func (a *AlwaysBlock) Wait(t *threads.Thread, cond func() bool, q *threads.WaitQueue) {
	start := t.Now()
	for !cond() {
		q.Block(t, cond)
	}
	if a.Prof != nil {
		a.Prof.Observe(t.Now() - start)
	}
}

// TwoPhase is the two-phase waiting algorithm: poll until the cost of
// polling reaches Lpoll, then block. Lpoll = αB with α chosen per the
// waiting-time distribution (Section 4.5): α = ln(e−1) ≈ 0.54 for
// exponential waiting times (1.58-competitive), α ≈ 0.62 for uniform
// (1.62-competitive), α = 1 for the classic 2-competitive bound.
type TwoPhase struct {
	Lpoll Time
	Prof  Profiler
	label string
}

// NewTwoPhase builds a two-phase algorithm with the given polling limit.
func NewTwoPhase(lpoll Time) *TwoPhase {
	return &TwoPhase{Lpoll: lpoll, label: fmt.Sprintf("2phase(L=%d)", lpoll)}
}

// NewTwoPhaseAlpha builds a two-phase algorithm with Lpoll = α·B for the
// scheduler's blocking cost B.
func NewTwoPhaseAlpha(alpha float64, costs threads.Costs) *TwoPhase {
	l := Time(alpha * float64(costs.BlockCost()))
	return &TwoPhase{Lpoll: l, label: fmt.Sprintf("2phase(%.2fB)", alpha)}
}

// Name implements Algorithm.
func (a *TwoPhase) Name() string {
	if a.label == "" {
		return fmt.Sprintf("2phase(L=%d)", a.Lpoll)
	}
	return a.label
}

// Wait implements Algorithm.
func (a *TwoPhase) Wait(t *threads.Thread, cond func() bool, q *threads.WaitQueue) {
	start := t.Now()
	deadline := start + a.Lpoll
	for t.Now() < deadline {
		if cond() {
			if a.Prof != nil {
				a.Prof.Observe(t.Now() - start)
			}
			return
		}
		t.Advance(PollGrain)
	}
	for !cond() {
		q.Block(t, cond)
	}
	if a.Prof != nil {
		a.Prof.Observe(t.Now() - start)
	}
}

// SwitchSpin is the switch-spinning polling mechanism on a block-
// multithreaded processor: between polls the thread yields to the other
// loaded contexts, so the waiting cost is roughly t/β (β ≈ number of
// contexts) instead of t. On an idle processor it degenerates to spinning.
type SwitchSpin struct {
	Prof Profiler
}

// Name implements Algorithm.
func (a *SwitchSpin) Name() string { return "switch-spin" }

// Wait implements Algorithm.
func (a *SwitchSpin) Wait(t *threads.Thread, cond func() bool, _ *threads.WaitQueue) {
	start := t.Now()
	for !cond() {
		t.Yield() // cost C per switch; other contexts use the processor
	}
	if a.Prof != nil {
		a.Prof.Observe(t.Now() - start)
	}
}

// TwoPhaseSwitch is two-phase waiting whose polling phase uses
// switch-spinning: poll (yielding between polls) until the polling *cost*
// (switch overhead, not wall time) reaches Lpoll, then block.
type TwoPhaseSwitch struct {
	Lpoll Time
	Prof  Profiler
}

// Name implements Algorithm.
func (a *TwoPhaseSwitch) Name() string { return fmt.Sprintf("2phase-switch(L=%d)", a.Lpoll) }

// Wait implements Algorithm.
func (a *TwoPhaseSwitch) Wait(t *threads.Thread, cond func() bool, q *threads.WaitQueue) {
	start := t.Now()
	var cost Time
	sw := t.Scheduler().Costs().Switch
	for cost < a.Lpoll {
		if cond() {
			if a.Prof != nil {
				a.Prof.Observe(t.Now() - start)
			}
			return
		}
		before := t.Now()
		t.Yield()
		// Only the switch overhead counts as polling cost; cycles consumed
		// by other contexts are useful work.
		if t.Now()-before > sw {
			cost += sw + PollGrain
		} else {
			cost += t.Now() - before + PollGrain
		}
	}
	for !cond() {
		q.Block(t, cond)
	}
	if a.Prof != nil {
		a.Prof.Observe(t.Now() - start)
	}
}
