package threads

import (
	"testing"

	"repro/internal/machine"
)

func newSched(procs int) *Scheduler {
	return NewScheduler(machine.New(machine.DefaultConfig(procs)), DefaultCosts())
}

func TestSingleThreadRuns(t *testing.T) {
	s := newSched(2)
	ran := false
	s.Spawn(0, 0, "t0", func(th *Thread) {
		th.Advance(100)
		ran = true
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || s.Live() != 0 {
		t.Fatalf("ran=%v live=%d", ran, s.Live())
	}
}

func TestNonPreemptiveSharing(t *testing.T) {
	// Two threads on one processor: the second must not start until the
	// first yields or finishes.
	s := newSched(1)
	var trace []string
	s.Spawn(0, 0, "a", func(th *Thread) {
		trace = append(trace, "a1")
		th.Advance(1000)
		trace = append(trace, "a2")
		th.Yield()
		trace = append(trace, "a3")
	})
	s.Spawn(0, 0, "b", func(th *Thread) {
		trace = append(trace, "b1")
		th.Yield()
		trace = append(trace, "b2")
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "a2", "b1", "a3", "b2"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestBlockAndWake(t *testing.T) {
	s := newSched(2)
	var q WaitQueue
	flag := false
	var wokenAt Time
	s.Spawn(0, 0, "waiter", func(th *Thread) {
		for !flag {
			q.Block(th, func() bool { return flag })
		}
		wokenAt = th.Now()
	})
	s.Spawn(1, 0, "signaler", func(th *Thread) {
		th.Advance(5000)
		flag = true
		q.WakeAll(th)
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	if wokenAt < 5000 {
		t.Fatalf("woken at %d, before signal", wokenAt)
	}
	if s.Blocks != 1 || s.Unblocks != 1 {
		t.Fatalf("blocks=%d unblocks=%d", s.Blocks, s.Unblocks)
	}
}

func TestBlockingFreesProcessor(t *testing.T) {
	// While thread A is blocked, thread B on the same processor must run —
	// the whole point of a signaling waiting mechanism.
	s := newSched(2)
	var q WaitQueue
	flag := false
	bDone := Time(0)
	s.Spawn(0, 0, "A", func(th *Thread) {
		q.Block(th, func() bool { return flag })
	})
	s.Spawn(0, 0, "B", func(th *Thread) {
		th.Advance(10000)
		bDone = th.Now()
	})
	s.Spawn(1, 0, "sig", func(th *Thread) {
		th.Advance(50000)
		flag = true
		q.WakeAll(th)
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	if bDone == 0 || bDone > 20000 {
		t.Fatalf("B finished at %d; should have run while A was blocked", bDone)
	}
}

func TestLostWakeupPrevented(t *testing.T) {
	// The signaler fires during the waiter's unload window; the re-check in
	// Block must catch it.
	s := newSched(2)
	var q WaitQueue
	flag := false
	completed := false
	s.Spawn(0, 0, "waiter", func(th *Thread) {
		for !flag {
			q.Block(th, func() bool { return flag })
		}
		completed = true
	})
	s.Spawn(1, 0, "signaler", func(th *Thread) {
		th.Advance(100) // lands inside the 300-cycle unload window
		flag = true
		q.WakeAll(th)
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	if !completed {
		t.Fatal("waiter never completed: lost wakeup")
	}
}

func TestJoin(t *testing.T) {
	s := newSched(2)
	var childEnd, joinEnd Time
	child := s.Spawn(1, 0, "child", func(th *Thread) {
		th.Advance(7777)
		childEnd = th.Now()
	})
	s.Spawn(0, 0, "parent", func(th *Thread) {
		th.Join(child)
		joinEnd = th.Now()
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	if joinEnd < childEnd {
		t.Fatalf("join returned at %d before child end %d", joinEnd, childEnd)
	}
}

func TestJoinFinishedThreadIsFree(t *testing.T) {
	s := newSched(2)
	child := s.Spawn(1, 0, "child", func(th *Thread) {})
	s.Spawn(0, 10000, "parent", func(th *Thread) {
		start := th.Now()
		th.Join(child)
		if th.Now() != start {
			t.Errorf("join of finished thread cost %d cycles", th.Now()-start)
		}
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyThreadsPerProcessor(t *testing.T) {
	s := newSched(4)
	const perProc = 5
	count := 0
	for p := 0; p < 4; p++ {
		for i := 0; i < perProc; i++ {
			s.Spawn(p, 0, "w", func(th *Thread) {
				for k := 0; k < 10; k++ {
					th.Advance(50)
					th.Yield()
				}
				count++
			})
		}
	}
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Fatalf("completed %d of 20", count)
	}
}

func TestWakeOneOrder(t *testing.T) {
	s := newSched(4)
	var q WaitQueue
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Spawn(i, Time(i)*1000, "w", func(th *Thread) {
			q.Block(th, nil)
			order = append(order, i)
		})
	}
	s.Spawn(3, 100000, "sig", func(th *Thread) {
		for q.WakeOne(th) {
			th.Advance(10)
		}
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("wake order %v not FIFO", order)
		}
	}
}

func TestBlockCostIsTable41(t *testing.T) {
	c := DefaultCosts()
	if c.BlockCost() < 400 || c.BlockCost() > 550 {
		t.Fatalf("block cost %d outside the ~500-cycle Alewife measurement", c.BlockCost())
	}
}

func TestThreadImplementsContext(t *testing.T) {
	// Threads can run the Chapter 3 protocols directly.
	s := newSched(2)
	a := s.Machine().Mem.Alloc(0, 1)
	s.Spawn(0, 0, "ctx", func(th *Thread) {
		th.Write(a, 9)
		if th.FetchAndAdd(a, 1) != 9 {
			t.Error("FetchAndAdd through thread context failed")
		}
	})
	if err := s.Machine().Run(); err != nil {
		t.Fatal(err)
	}
}
