// Package threads provides the lightweight, non-preemptive thread runtime
// of the thesis's Chapter 4 experiments: per-processor ready queues,
// spawn/join, and blocking with the measured Alewife costs of Table 4.1
// (~300 cycles to unload a thread, ~100 to reenable it, ~65 to reload it;
// about 500 cycles per block in total).
//
// Scheduling is non-preemptive, as in Alewife's run-time system: a thread
// runs until it blocks, yields, or finishes; spin-waiting holds the
// processor. Each thread is a simulation actor; the scheduler maintains the
// invariant that at most one thread per processor is runnable at a time.
package threads

import (
	"fmt"

	"repro/internal/machine"
)

// Time is simulated cycles.
type Time = machine.Time

// Costs holds the thread-management cost parameters (Table 4.1, measured
// values: loads and stores take ~3x base cycles when unloading because of
// cache misses).
type Costs struct {
	Unload   Time // unload registers, enqueue thread, book-keeping
	Reenable Time // lock queue of blocked threads, move to ready queue
	Reload   Time // reload registers, restore state
	Switch   Time // context switch between loaded contexts (Sparcle: 14)
	Spawn    Time // create and enqueue a new thread
}

// DefaultCosts returns the measured Alewife costs: a block-unblock pair
// costs Unload+Reenable+Reload ≈ 465-500 cycles.
func DefaultCosts() Costs {
	return Costs{Unload: 300, Reenable: 100, Reload: 65, Switch: 14, Spawn: 90}
}

// BlockCost returns B, the total fixed cost of blocking (the signaling
// mechanism's cost in the two-phase waiting analysis).
func (c Costs) BlockCost() Time { return c.Unload + c.Reenable + c.Reload }

// State is a thread's lifecycle state.
type State int

// Thread states.
const (
	StateNew State = iota
	StateRunning
	StateReady
	StateBlocked
	StateDead
)

// Scheduler manages threads across the machine's processors.
type Scheduler struct {
	m     *machine.Machine
	costs Costs
	procs []*procSched

	// Blocks and Unblocks count scheduling events (experiment stats).
	Blocks, Unblocks, Switches uint64

	live int
}

type procSched struct {
	current *Thread
	ready   []*Thread
}

// NewScheduler creates a scheduler for machine m.
func NewScheduler(m *machine.Machine, costs Costs) *Scheduler {
	s := &Scheduler{m: m, costs: costs, procs: make([]*procSched, m.NumProcs())}
	for i := range s.procs {
		s.procs[i] = &procSched{}
	}
	return s
}

// Machine returns the underlying machine.
func (s *Scheduler) Machine() *machine.Machine { return s.m }

// Costs returns the cost configuration.
func (s *Scheduler) Costs() Costs { return s.costs }

// Live returns the number of threads not yet dead.
func (s *Scheduler) Live() int { return s.live }

// Thread is a lightweight thread bound to one processor. It implements
// machine.Context (delegating to an underlying CPU context), adding
// blocking, yielding, and joining.
type Thread struct {
	*machine.CPU
	sched   *Scheduler
	proc    int
	name    string
	state   State
	started bool

	doneWaiters []*Thread
	done        bool
}

// Spawn creates a thread named name on processor proc running f, beginning
// no earlier than time start. Callable before Run or from running threads.
func (s *Scheduler) Spawn(proc int, start Time, name string, f func(*Thread)) *Thread {
	t := &Thread{sched: s, proc: proc, name: name, state: StateNew}
	s.live++
	s.m.SpawnCPU(proc, start, name, func(c *machine.CPU) {
		t.CPU = c
		t.started = true
		ps := s.procs[proc]
		if ps.current == nil {
			ps.current = t
			t.state = StateRunning
		} else if t.state != StateRunning {
			// Processor busy: wait in the ready queue.
			t.state = StateReady
			ps.ready = append(ps.ready, t)
			c.Actor().Park()
		}
		f(t)
		t.exit()
	})
	return t
}

// SpawnChild is Spawn plus the spawn overhead charged to the caller.
func (t *Thread) SpawnChild(proc int, name string, f func(*Thread)) *Thread {
	t.Advance(t.sched.costs.Spawn)
	return t.sched.Spawn(proc, t.Now(), name, f)
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// State returns the thread's lifecycle state.
func (t *Thread) State() State { return t.state }

// Scheduler returns the owning scheduler.
func (t *Thread) Scheduler() *Scheduler { return t.sched }

// dispatchNext hands the processor to the next ready thread (charging it
// the reload cost) or idles the processor.
func (s *Scheduler) dispatchNext(proc int) {
	ps := s.procs[proc]
	if len(ps.ready) == 0 {
		ps.current = nil
		return
	}
	next := ps.ready[0]
	ps.ready = ps.ready[1:]
	ps.current = next
	if next.started {
		s.m.Eng.WakeAt(next.CPU.Actor(), s.m.Eng.Now()+s.costs.Reload)
	} else {
		// The thread's start event has not fired yet; when it does, it
		// will see itself current and run. (Only possible for same-cycle
		// spawn and dispatch.)
		next.state = StateRunning
	}
}

// exit terminates the thread, waking joiners and dispatching a successor.
func (t *Thread) exit() {
	t.state = StateDead
	t.done = true
	t.sched.live--
	for _, w := range t.doneWaiters {
		w.makeReady()
	}
	t.doneWaiters = nil
	t.sched.dispatchNext(t.proc)
}

// park deschedules the calling thread until makeReady dispatches it again.
func (t *Thread) park() {
	t.CPU.Actor().Park()
	t.state = StateRunning
}

// makeReady moves a blocked or new thread to its processor's ready queue,
// dispatching it immediately if the processor is idle.
func (t *Thread) makeReady() {
	s := t.sched
	ps := s.procs[t.proc]
	t.state = StateReady
	if ps.current == nil {
		ps.current = t
		if t.started {
			s.m.Eng.WakeAt(t.CPU.Actor(), s.m.Eng.Now()+s.costs.Reload)
		} else {
			t.state = StateRunning
		}
		return
	}
	ps.ready = append(ps.ready, t)
}

// Yield gives up the processor to the next ready thread, if any, placing
// the caller at the back of the ready queue. It charges the context-switch
// cost and returns when rescheduled.
func (t *Thread) Yield() {
	s := t.sched
	ps := s.procs[t.proc]
	if len(ps.ready) == 0 {
		t.Advance(2)
		return
	}
	s.Switches++
	t.Advance(s.costs.Switch)
	ps.ready = append(ps.ready, t)
	s.dispatchNext(t.proc)
	t.park()
}

// Join blocks until other has finished. (Joining is a signaling wait: the
// caller blocks and is reenabled by the exiting thread.)
func (t *Thread) Join(other *Thread) {
	if other.done {
		return
	}
	t.Advance(t.sched.costs.Unload)
	if other.done {
		return
	}
	t.state = StateBlocked
	other.doneWaiters = append(other.doneWaiters, t)
	t.sched.Blocks++
	t.sched.dispatchNext(t.proc)
	t.park()
}

// WaitQueue is a queue of blocked threads associated with a
// synchronization condition (the software queue a blocked Alewife thread is
// placed on).
type WaitQueue struct {
	ts []*Thread
}

// Len returns the number of blocked threads.
func (q *WaitQueue) Len() int { return len(q.ts) }

// Block deschedules the calling thread onto q after a final check of cond
// (the re-check happens after the unload cost has been charged and with no
// intervening yield, so a concurrent signaler cannot slip between the check
// and the enqueue). It returns immediately if cond is already true.
func (q *WaitQueue) Block(t *Thread, cond func() bool) {
	t.Advance(t.sched.costs.Unload)
	if cond != nil && cond() {
		return
	}
	t.state = StateBlocked
	q.ts = append(q.ts, t)
	t.sched.Blocks++
	t.sched.dispatchNext(t.proc)
	t.park()
}

// WakeOne reenables the oldest blocked thread. The caller (any execution
// context) is charged the reenable cost. It returns whether a thread was
// woken.
func (q *WaitQueue) WakeOne(c machine.Context) bool {
	if len(q.ts) == 0 {
		return false
	}
	// Dequeue before charging the reenable cost: Advance yields control,
	// and another waker must not observe the thread still queued.
	t := q.ts[0]
	q.ts = q.ts[1:]
	c.Advance(t.sched.costs.Reenable)
	t.sched.Unblocks++
	t.makeReady()
	return true
}

// WakeAll reenables every blocked thread, charging the caller the reenable
// cost per thread (Alewife reenables sequentially). It returns the count.
func (q *WaitQueue) WakeAll(c machine.Context) int {
	n := len(q.ts)
	for q.WakeOne(c) {
	}
	return n
}

// String implements fmt.Stringer for debugging.
func (t *Thread) String() string {
	return fmt.Sprintf("thread(%s@p%d,%v)", t.name, t.proc, t.state)
}

// Park exposes low-level parking for protocol implementations that manage
// their own wakeups (message-passing replies delivered via handlers).
func (t *Thread) Park() { t.park() }

// WakeThread wakes a thread parked via Park from any simulation context.
func (s *Scheduler) WakeThread(t *Thread, delay Time) {
	s.m.Eng.WakeAt(t.CPU.Actor(), s.m.Eng.Now()+delay)
}

var _ machine.Context = (*Thread)(nil)
