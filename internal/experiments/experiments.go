// Package experiments regenerates every table and figure of the thesis's
// evaluation sections on the simulated machine. Each Fig/Table function
// returns a stats.Table whose rows correspond to the paper's data series;
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Absolute cycle counts differ from Alewife's (different constants), but
// the reproduced content is the *shape*: which protocol wins at which
// contention level, where the crossovers fall, and the relative factors.
package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spinlock"
	"repro/internal/stats"
)

// Time is simulated cycles.
type Time = machine.Time

// DefaultSeed is the base seed of the experiment matrix. It matches
// machine.DefaultConfig's seed, so the exported single-measurement entry
// points (LockOverhead etc.) reproduce the seed harness's numbers;
// registry runs derive a distinct per-experiment seed from it via
// ExperimentSeed, so their absolute values differ from a fixed-seed run
// (deterministically — same table on every run at the same base seed).
const DefaultSeed uint64 = 0x5eed

// Sizes scales the experiments: Quick for tests and CI, Full for
// paper-scale runs. Seed is the machine seed every simulated machine in
// the experiment is built with; the Runner derives a distinct
// deterministic Seed per experiment so parallel and serial execution of
// the matrix produce byte-identical tables.
type Sizes struct {
	BaselineIters   int    // critical sections per processor per data point
	BaselineProcs   []int  // contention levels swept
	MultiLockTotal  int    // total acquisitions in the multiple-lock test
	TimeVaryPeriods int    // periods in the time-varying test
	AppScale        int    // divisor-free scale knob for applications
	Seed            uint64 // machine seed (0 means DefaultSeed)
}

// Quick returns test-scale sizes.
func Quick() Sizes {
	return Sizes{
		BaselineIters:   60,
		BaselineProcs:   []int{1, 2, 4, 8, 16, 32},
		MultiLockTotal:  2048,
		TimeVaryPeriods: 4,
		AppScale:        1,
		Seed:            DefaultSeed,
	}
}

// Tiny returns smoke-scale sizes: every knob shrunk so the whole matrix
// runs in seconds. Used by the registry tests and the CI bench job;
// shapes at this scale are noisy and must not be read as results.
func Tiny() Sizes {
	return Sizes{
		BaselineIters:   8,
		BaselineProcs:   []int{1, 4},
		MultiLockTotal:  256,
		TimeVaryPeriods: 1,
		AppScale:        1,
		Seed:            DefaultSeed,
	}
}

// Full returns paper-scale sizes (64-processor sweeps).
func Full() Sizes {
	return Sizes{
		BaselineIters:   150,
		BaselineProcs:   []int{1, 2, 4, 8, 16, 32, 64},
		MultiLockTotal:  16384,
		TimeVaryPeriods: 10,
		AppScale:        4,
		Seed:            DefaultSeed,
	}
}

// seedOnly returns a Sizes carrying just a machine seed, for the exported
// single-measurement entry points whose iteration counts are explicit.
func seedOnly() Sizes { return Sizes{Seed: DefaultSeed} }

// NewMachine builds one experiment machine: the default config at procs
// nodes, reseeded from sz.Seed, with mod applied last. Every machine an
// experiment creates goes through here so a spec's seed reaches all of
// its runs.
func (sz Sizes) NewMachine(procs int, mod func(*machine.Config)) *machine.Machine {
	cfg := machine.DefaultConfig(procs)
	if sz.Seed != 0 {
		cfg.Seed = sz.Seed
	}
	if mod != nil {
		mod(&cfg)
	}
	return machine.New(cfg)
}

// lockMaker builds a lock on a fresh machine.
type lockMaker struct {
	name string
	mk   func(m *machine.Machine) spinlock.Lock
}

func baselineLockMakers() []lockMaker {
	return []lockMaker{
		{"test&set", func(m *machine.Machine) spinlock.Lock {
			return spinlock.NewTAS(m.Mem, 0, spinlock.DefaultBackoff)
		}},
		{"test&test&set", func(m *machine.Machine) spinlock.Lock {
			return spinlock.NewTTS(m.Mem, 0, spinlock.DefaultBackoff)
		}},
		{"mcs-queue", func(m *machine.Machine) spinlock.Lock {
			return spinlock.NewMCS(m.Mem, 0)
		}},
		{"reactive", func(m *machine.Machine) spinlock.Lock {
			return core.NewReactiveLock(m.Mem, 0)
		}},
	}
}

// lockOverhead runs the baseline test loop of Section 3.5.1 — acquire,
// 100-cycle critical section, release, think U(0,500) — with contenders
// processors on a machineProcs-node machine, and returns the average
// overhead per critical section after subtracting the test-loop latency.
func lockOverhead(sz Sizes, mk func(m *machine.Machine) spinlock.Lock, machineProcs, contenders, iters int, cfgMod func(*machine.Config)) Time {
	m := sz.NewMachine(machineProcs, cfgMod)
	l := mk(m)
	var end Time
	for p := 0; p < contenders; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < iters; i++ {
				h := l.Acquire(c)
				c.Advance(100)
				l.Release(c, h)
				c.Advance(Time(c.Rand().Intn(500)))
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	total := contenders * iters
	avg := end / Time(total)
	// Test-loop latency per critical section (Section 3.5.1): with P
	// contenders the 250-cycle mean think time overlaps P-ways.
	var loop Time
	switch contenders {
	case 1:
		loop = 350
	case 2:
		loop = 175
	default:
		loop = 100
	}
	if avg <= loop {
		return 0
	}
	return avg - loop
}

// Fig3_15SpinLocks regenerates the spin-lock half of Figure 3.15 (and
// Figures 1.1/3.2): overhead per critical section versus contending
// processors for each protocol.
func Fig3_15SpinLocks(sz Sizes) *stats.Table {
	t := &stats.Table{Header: []string{"procs"}}
	makers := baselineLockMakers()
	for _, mk := range makers {
		t.Header = append(t.Header, mk.name)
	}
	maxP := sz.BaselineProcs[len(sz.BaselineProcs)-1]
	for _, p := range sz.BaselineProcs {
		row := []string{fmt.Sprintf("%d", p)}
		for _, mk := range makers {
			ov := lockOverhead(sz, mk.mk, maxP, p, sz.BaselineIters, nil)
			row = append(row, fmt.Sprintf("%d", ov))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig3_16Prototype regenerates the 16-processor "Alewife prototype" run:
// the same baseline on a 16-node machine with a fixed 250-cycle think time.
func Fig3_16Prototype(sz Sizes) *stats.Table {
	t := &stats.Table{Header: []string{"procs"}}
	makers := baselineLockMakers()
	for _, mk := range makers {
		t.Header = append(t.Header, mk.name)
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		row := []string{fmt.Sprintf("%d", p)}
		for _, mk := range makers {
			ov := fixedThinkOverhead(sz, mk.mk, 16, p, sz.BaselineIters*2)
			row = append(row, fmt.Sprintf("%d", ov))
		}
		t.AddRow(row...)
	}
	return t
}

func fixedThinkOverhead(sz Sizes, mk func(m *machine.Machine) spinlock.Lock, machineProcs, contenders, iters int) Time {
	m := sz.NewMachine(machineProcs, nil)
	l := mk(m)
	var end Time
	for p := 0; p < contenders; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < iters; i++ {
				h := l.Acquire(c)
				c.Advance(100)
				l.Release(c, h)
				c.Advance(250)
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	avg := end / Time(contenders*iters)
	var loop Time
	switch contenders {
	case 1:
		loop = 350
	case 2:
		loop = 175
	default:
		loop = 100
	}
	if avg <= loop {
		return 0
	}
	return avg - loop
}

// Fig3_2DirNNB regenerates the DirNNB ablation of Figure 3.2: the
// test-and-test-and-set lock on the LimitLESS directory versus a full-map
// directory that handles all coherence in hardware.
func Fig3_2DirNNB(sz Sizes) *stats.Table {
	t := &stats.Table{Header: []string{"procs", "tts-limitless", "tts-dirnnb"}}
	maxP := sz.BaselineProcs[len(sz.BaselineProcs)-1]
	mkTTS := func(m *machine.Machine) spinlock.Lock {
		return spinlock.NewTTS(m.Mem, 0, spinlock.DefaultBackoff)
	}
	for _, p := range sz.BaselineProcs {
		limitless := lockOverhead(sz, mkTTS, maxP, p, sz.BaselineIters, nil)
		fullmap := lockOverhead(sz, mkTTS, maxP, p, sz.BaselineIters, func(cfg *machine.Config) {
			cfg.Mem.HWPointers = -1
		})
		t.AddRow(fmt.Sprintf("%d", p), fmt.Sprintf("%d", limitless), fmt.Sprintf("%d", fullmap))
	}
	return t
}
