package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/fetchop"
	"repro/internal/machine"
	"repro/internal/spinlock"
	"repro/internal/stats"
)

// Fig3_24FetchOpApps regenerates Figure 3.24: execution times of Gamteb,
// TSP and AQ under the queue-lock-based protocol, the combining tree, and
// the reactive fetch-and-op, across processor counts. Values are
// normalized to the queue-lock protocol at each processor count.
func Fig3_24FetchOpApps(sz Sizes) *stats.Table {
	t := &stats.Table{Header: []string{"app", "procs", "queue-lock", "combining-tree", "reactive"}}
	kinds := []string{"queue-lock", "combining-tree", "reactive"}
	mkFop := func(m *machine.Machine, kind string) fetchop.FetchOp {
		switch kind {
		case "queue-lock":
			return fetchop.NewQueueLockFOP(m.Mem, 0)
		case "combining-tree":
			return fetchop.NewCombTree(m.Mem, m.NumProcs(), 0)
		default:
			return core.NewReactiveFetchOp(m.Mem, 0, m.NumProcs())
		}
	}
	procsList := []int{16, 32, 64}
	run := func(app string, procs int, kind string) Time {
		m := sz.NewMachine(procs, nil)
		switch app {
		case "gamteb":
			counters := make([]fetchop.FetchOp, 9)
			for i := range counters {
				counters[i] = mkFop(m, kind)
			}
			g := &apps.Gamteb{Particles: 256 * sz.AppScale, Counters: counters}
			return g.Run(m)
		case "tsp":
			b := apps.NewTSP(mkFop(m, kind))
			b.Depth = 7 + sz.AppScale/2
			return b.Run(m)
		default: // aq
			b := apps.NewAQ(mkFop(m, kind))
			b.Depth = 6 + sz.AppScale/2
			return b.Run(m)
		}
	}
	for _, app := range []string{"gamteb", "tsp", "aq"} {
		for _, procs := range procsList {
			row := []string{app, fmt.Sprintf("%d", procs)}
			var base Time
			for i, kind := range kinds {
				el := run(app, procs, kind)
				if i == 0 {
					base = el
					row = append(row, "1.00")
					continue
				}
				row = append(row, fmt.Sprintf("%.2f", float64(el)/float64(base)))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Fig3_25SpinLockApps regenerates Figure 3.25: execution times of MP3D
// (two problem sizes) and Cholesky under the test-and-set lock, the MCS
// queue lock, and the reactive lock, normalized to the test-and-set lock.
func Fig3_25SpinLockApps(sz Sizes) *stats.Table {
	t := &stats.Table{Header: []string{"app", "procs", "test&set", "mcs-queue", "reactive"}}
	kinds := []string{"test&set", "mcs-queue", "reactive"}
	mkLock := func(m *machine.Machine, kind string, home int) spinlock.Lock {
		switch kind {
		case "test&set":
			return spinlock.NewTAS(m.Mem, home, spinlock.DefaultBackoff)
		case "mcs-queue":
			return spinlock.NewMCS(m.Mem, home)
		default:
			return core.NewReactiveLock(m.Mem, home)
		}
	}
	run := func(app string, procs int, kind string) Time {
		m := sz.NewMachine(procs, nil)
		switch app {
		case "mp3d-small", "mp3d-large":
			particles := 192 * sz.AppScale
			if app == "mp3d-large" {
				particles *= 3
			}
			cells := make([]spinlock.Lock, 32)
			for i := range cells {
				cells[i] = mkLock(m, kind, i%procs)
			}
			a := &apps.MP3D{
				CellLocks: cells,
				Collision: mkLock(m, kind, 0),
				Particles: particles,
				Iters:     5,
			}
			return a.Run(m)
		default: // cholesky
			cols := make([]spinlock.Lock, 64)
			for i := range cols {
				cols[i] = mkLock(m, kind, i%procs)
			}
			a := &apps.Cholesky{
				TaskLock:      mkLock(m, kind, 0),
				ColLocks:      cols,
				Columns:       48 * sz.AppScale,
				UpdatesPerCol: 3,
			}
			return a.Run(m)
		}
	}
	cases := []struct {
		app   string
		procs []int
	}{
		{"mp3d-small", []int{16, 64}},
		{"mp3d-large", []int{16, 64}},
		{"cholesky", []int{4, 16}},
	}
	for _, cse := range cases {
		for _, procs := range cse.procs {
			row := []string{cse.app, fmt.Sprintf("%d", procs)}
			var base Time
			for i, kind := range kinds {
				el := run(cse.app, procs, kind)
				if i == 0 {
					base = el
					row = append(row, "1.00")
					continue
				}
				row = append(row, fmt.Sprintf("%.2f", float64(el)/float64(base)))
			}
			t.AddRow(row...)
		}
	}
	return t
}
