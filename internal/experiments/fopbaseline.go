package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fetchop"
	"repro/internal/machine"
	"repro/internal/spinlock"
	"repro/internal/stats"
)

type fopMaker struct {
	name string
	mk   func(m *machine.Machine, nleaves int) fetchop.FetchOp
}

func baselineFopMakers() []fopMaker {
	return []fopMaker{
		{"tts-lock", func(m *machine.Machine, _ int) fetchop.FetchOp {
			return fetchop.NewTTSLockFOP(m.Mem, 0)
		}},
		{"queue-lock", func(m *machine.Machine, _ int) fetchop.FetchOp {
			return fetchop.NewQueueLockFOP(m.Mem, 0)
		}},
		{"combining-tree", func(m *machine.Machine, nleaves int) fetchop.FetchOp {
			return fetchop.NewCombTree(m.Mem, nleaves, 0)
		}},
		{"reactive", func(m *machine.Machine, nleaves int) fetchop.FetchOp {
			return core.NewReactiveFetchOp(m.Mem, 0, nleaves)
		}},
	}
}

func mpFopMakers() []fopMaker {
	return []fopMaker{
		{"mp-central", func(m *machine.Machine, _ int) fetchop.FetchOp {
			return fetchop.NewMPCentral(0)
		}},
		{"mp-combining-tree", func(m *machine.Machine, nleaves int) fetchop.FetchOp {
			return fetchop.NewMPCombTree(m, nleaves, 0)
		}},
	}
}

// fopOverhead runs the fetch-and-op baseline loop of Section 3.5.1 —
// fetch&increment then think U(0,500) — and returns the average overhead
// per operation after subtracting the 250/P test-loop latency.
func fopOverhead(sz Sizes, mk func(m *machine.Machine, nleaves int) fetchop.FetchOp, machineProcs, contenders, iters int) Time {
	m := sz.NewMachine(machineProcs, nil)
	f := mk(m, machineProcs)
	var end Time
	for p := 0; p < contenders; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < iters; i++ {
				f.FetchAdd(c, 1)
				c.Advance(Time(c.Rand().Intn(500)))
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	avg := end / Time(contenders*iters)
	loop := Time(250 / contenders)
	if avg <= loop {
		return 0
	}
	return avg - loop
}

// Fig3_15FetchOp regenerates the fetch-and-op half of Figure 3.15:
// overhead per fetch&increment versus contending processors.
func Fig3_15FetchOp(sz Sizes) *stats.Table {
	t := &stats.Table{Header: []string{"procs"}}
	makers := baselineFopMakers()
	for _, mk := range makers {
		t.Header = append(t.Header, mk.name)
	}
	maxP := sz.BaselineProcs[len(sz.BaselineProcs)-1]
	for _, p := range sz.BaselineProcs {
		row := []string{fmt.Sprintf("%d", p)}
		for _, mk := range makers {
			ov := fopOverhead(sz, mk.mk, maxP, p, sz.BaselineIters)
			row = append(row, fmt.Sprintf("%d", ov))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig3_26MessagePassing regenerates Figure 3.26: shared-memory versus
// message-passing protocols for spin locks and fetch-and-op, including the
// reactive algorithms.
func Fig3_26MessagePassing(sz Sizes) *stats.Table {
	t := &stats.Table{Header: []string{"procs", "mcs-queue", "mp-queue", "combining-tree", "mp-central", "mp-combining-tree"}}
	maxP := sz.BaselineProcs[len(sz.BaselineProcs)-1]
	for _, p := range sz.BaselineProcs {
		row := []string{fmt.Sprintf("%d", p)}
		// Spin locks: shared-memory MCS vs message-passing queue lock.
		row = append(row, fmt.Sprintf("%d", lockOverhead(sz, baselineLockMakers()[2].mk, maxP, p, sz.BaselineIters, nil)))
		row = append(row, fmt.Sprintf("%d", lockOverhead(sz, mpLockMaker, maxP, p, sz.BaselineIters, nil)))
		// Fetch-and-op: shared-memory combining tree vs the two MP kinds.
		row = append(row, fmt.Sprintf("%d", fopOverhead(sz, baselineFopMakers()[2].mk, maxP, p, sz.BaselineIters)))
		for _, mk := range mpFopMakers() {
			row = append(row, fmt.Sprintf("%d", fopOverhead(sz, mk.mk, maxP, p, sz.BaselineIters)))
		}
		t.AddRow(row...)
	}
	return t
}

func mpLockMaker(m *machine.Machine) spinlock.Lock {
	return spinlock.NewMPQueue(0)
}
