package experiments

// Congestion-control adaptivity and telemetry experiments: deterministic
// drives of the policy.Congestion feedback policy over the modal engine's
// synthetic contention trace, and of the reactivehttp Registry/Snapshot
// telemetry surface over the native primitives' documented scale-down
// paths. Both are pure call-sequence state machines (no wall clock), so
// they participate in the registry's serial==parallel contract.

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
	"repro/reactive"
	"repro/reactive/modal"
	"repro/reactive/policy"
	"repro/reactive/reactivehttp"
)

// NativeCongestionTrace drives the native fetch-op modal engine through
// the phased contention trace with a policy.Congestion installed,
// tabulating — per phase — where the engine lived, how many switches the
// policy allowed, and how its internal estimates (occupancy window,
// smoothed residual) evolved. The congestion-control shape to look for:
// the window widens when the ramp phases provoke premature flips and
// relaxes back once a phase holds the engine in one protocol.
func NativeCongestionTrace(sz Sizes) *stats.Table {
	tab := reactive.FetchOpTable()
	var e modal.Engine
	pol := policy.NewCongestion()
	e.SetPolicy(pol)
	rng := rand.New(rand.NewSource(int64(sz.Seed)))
	t := &stats.Table{Header: []string{"phase", "contention", "end-mode",
		"%cas", "%sharded", "%combining", "switches", "window", "srtt"}}
	for _, ph := range modalPhases(sz) {
		var st modalTraceStats
		before := e.Switches()
		for i := 0; i < ph.steps; i++ {
			stepModalEngine(&e, tab, rng, ph.p)
			st.residency[e.Mode()]++
		}
		st.switches = e.Switches() - before
		t.AddRow(ph.name, fmt.Sprintf("%.2f", ph.p), modeName(e.Mode()),
			st.pct(nmCAS), st.pct(nmSharded), st.pct(nmCombining),
			fmt.Sprintf("%d", st.switches),
			fmt.Sprintf("%d", pol.Window()),
			fmt.Sprintf("%d", pol.SRTT()))
	}
	return t
}

// telemetryStep is one primitive of the telemetry experiment: a named
// Source pre-committed to a scalable protocol, plus the single-goroutine
// workload that deterministically drives it back down (the documented
// scale-down paths: idle unlocks, idle reconciling reads, quiet writer
// drains), and accessors for the engine under observation.
type telemetryStep struct {
	name    string
	src     reactivehttp.Source
	op      func()                             // one idle-workload step
	mode    func(reactive.Stats) reactive.Mode // engine being watched
	deltaSw func(reactive.Stats) uint64        // switch delta of that engine
	target  reactive.Mode                      // mode the drain must reach
}

func telemetrySteps() []telemetryStep {
	mainMode := func(s reactive.Stats) reactive.Mode { return s.Mode }
	mainSw := func(s reactive.Stats) uint64 { return s.Switches }

	m := reactive.New(reactive.WithInitialMode(reactive.ModePark))
	c := reactive.NewCounter(reactive.WithInitialMode(reactive.ModeSharded))
	f := reactive.NewFetchOp(func(a, b int64) int64 { return a + b }, 0,
		reactive.WithInitialMode(reactive.ModeCombining))
	rw := reactive.NewRWMutex(reactive.WithInitialMode(reactive.ModeSharded))

	return []telemetryStep{
		{
			name: "mutex", src: m,
			op:   func() { m.Lock(); m.Unlock() },
			mode: mainMode, deltaSw: mainSw,
			target: reactive.ModeSpin,
		},
		{
			name: "counter", src: c,
			op:   func() { c.Add(1); c.Load() },
			mode: mainMode, deltaSw: mainSw,
			target: reactive.ModeCAS,
		},
		{
			name: "fetchop", src: f,
			op:   func() { f.Apply(1); f.Value() },
			mode: mainMode, deltaSw: mainSw,
			target: reactive.ModeCAS,
		},
		{
			name: "rwmutex-readers", src: rw,
			op:      func() { rw.Lock(); rw.Unlock() },
			mode:    func(s reactive.Stats) reactive.Mode { return s.Readers.Mode },
			deltaSw: func(s reactive.Stats) uint64 { return s.Readers.Switches },
			target:  reactive.ModeCAS,
		},
	}
}

// NativeTelemetryDeltas exercises the reactivehttp Registry/Snapshot
// surface end to end, deterministically: each primitive starts committed
// to its scalable protocol, a single-goroutine idle workload drives it
// back down, and the table reports what a telemetry poller would see —
// the Snapshot.Sub delta between a poll taken before the drain and one
// taken after. The first poll lands after construction, so the switch
// deltas count exactly the observed scale-downs (one per transition
// edge crossed), the way a live scraper would read them.
func NativeTelemetryDeltas(sz Sizes) *stats.Table {
	var reg reactivehttp.Registry
	steps := telemetrySteps()
	for _, st := range steps {
		reg.Register(st.name, st.src)
	}
	prev := reg.Snapshot()

	t := &stats.Table{Header: []string{"primitive", "start-mode", "end-mode", "switches+", "ops", "waiters"}}
	// Bound each drain generously; every path needs at most a few
	// EmptyLimit-length streaks (the fetch-op crosses two edges).
	bound := 8 * reactive.DefaultEmptyLimit * sz.BaselineIters
	for _, st := range steps {
		start := st.mode(st.src.Stats())
		ops := 0
		for st.mode(st.src.Stats()) != st.target {
			st.op()
			ops++
			if ops > bound {
				break
			}
		}
		cur := reg.Snapshot()
		delta := cur.Sub(prev).Primitives[st.name]
		stats := st.src.Stats()
		t.AddRow(st.name, start.String(), st.mode(stats).String(),
			fmt.Sprintf("%d", st.deltaSw(delta)),
			fmt.Sprintf("%d", ops),
			fmt.Sprintf("%d", stats.Waiters))
	}
	return t
}
