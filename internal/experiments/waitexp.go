package experiments

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/machine"
	"repro/internal/memsys"
	"repro/internal/stats"
	"repro/internal/threads"
	"repro/internal/waitanalysis"
	"repro/internal/waiting"
)

// Table4_1BlockingCost regenerates Table 4.1: the breakdown of the cost of
// blocking into unloading, reenabling and reloading, plus the measured
// total B.
func Table4_1BlockingCost() *stats.Table {
	c := threads.DefaultCosts()
	t := &stats.Table{Header: []string{"action", "cycles"}}
	t.AddRow("unloading", fmt.Sprintf("%d", c.Unload))
	t.AddRow("reenabling", fmt.Sprintf("%d", c.Reenable))
	t.AddRow("reloading", fmt.Sprintf("%d", c.Reload))
	t.AddRow("total (B)", fmt.Sprintf("%d", c.BlockCost()))
	return t
}

// Fig4_4ExpFactors regenerates Figure 4.4: expected competitive factors
// under exponentially distributed waiting times, as a function of λB, for
// always-poll, always-signal, 2phase(B) and 2phase(0.54B).
func Fig4_4ExpFactors() *stats.Table {
	t := &stats.Table{Header: []string{"lambdaB", "always-poll", "always-signal", "2phase(1.0B)", "2phase(0.54B)"}}
	for _, lb := range []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100} {
		t.AddRow(
			fmt.Sprintf("%g", lb),
			fmt.Sprintf("%.3f", waitanalysis.ExpFactor(math.Inf(1), lb, 1)),
			fmt.Sprintf("%.3f", waitanalysis.ExpFactor(0, lb, 1)),
			fmt.Sprintf("%.3f", waitanalysis.ExpFactor(1, lb, 1)),
			fmt.Sprintf("%.3f", waitanalysis.ExpFactor(waitanalysis.AlphaExpOptimal, lb, 1)),
		)
	}
	t.AddRow("worst",
		"inf",
		"inf",
		fmt.Sprintf("%.3f", waitanalysis.ExpWorstFactor(1, 1)),
		fmt.Sprintf("%.3f", waitanalysis.ExpWorstFactor(waitanalysis.AlphaExpOptimal, 1)),
	)
	return t
}

// Fig4_5UniformFactors regenerates Figure 4.5: expected competitive
// factors under uniformly distributed waiting times versus τ/B for
// 2phase(B) and 2phase(0.62B).
func Fig4_5UniformFactors() *stats.Table {
	alphaU := waitanalysis.OptimalAlphaUniform(1)
	t := &stats.Table{Header: []string{"tau/B", "always-poll", "always-signal", "2phase(1.0B)", "2phase(0.62B)"}}
	for _, tau := range []float64{0.1, 0.3, 1, 2, 4, 8, 16, 64} {
		t.AddRow(
			fmt.Sprintf("%g", tau),
			fmt.Sprintf("%.3f", waitanalysis.UniformFactor(math.Inf(1), tau, 1)),
			fmt.Sprintf("%.3f", waitanalysis.UniformFactor(0, tau, 1)),
			fmt.Sprintf("%.3f", waitanalysis.UniformFactor(1, tau, 1)),
			fmt.Sprintf("%.3f", waitanalysis.UniformFactor(alphaU, tau, 1)),
		)
	}
	t.AddRow("worst", "inf", "inf",
		fmt.Sprintf("%.3f", waitanalysis.UniformWorstFactor(1, 1)),
		fmt.Sprintf("%.3f", waitanalysis.UniformWorstFactor(alphaU, 1)),
	)
	return t
}

// newSched builds a scheduler on a fresh machine seeded from sz.
func newSched(sz Sizes, procs int) *threads.Scheduler {
	m := sz.NewMachine(procs, nil)
	m.Eng.SetLimit(5_000_000_000)
	return threads.NewScheduler(m, threads.DefaultCosts())
}

// waitAlgs returns the waiting-algorithm suite of Tables 4.3-4.5:
// always-spin, always-block, and two-phase with the analytically optimal
// polling limits.
func waitAlgs() []waiting.Algorithm {
	costs := threads.DefaultCosts()
	return []waiting.Algorithm{
		&waiting.AlwaysSpin{},
		&waiting.AlwaysBlock{},
		waiting.NewTwoPhaseAlpha(0.54, costs),
		waiting.NewTwoPhaseAlpha(0.62, costs),
		waiting.NewTwoPhaseAlpha(1.0, costs),
	}
}

// waitBench describes one Chapter 4 benchmark: name, whether pure spinning
// is live for it (spin-safe), and a runner.
type waitBench struct {
	name     string
	spinSafe bool
	run      func(sz Sizes, alg waiting.Algorithm) Time
}

func producerConsumerBenches(sz Sizes) []waitBench {
	return []waitBench{
		{"jacobi-jstr", true, func(sz Sizes, alg waiting.Algorithm) Time {
			s := newSched(sz, 8)
			return (&apps.JacobiJstr{Threads: 8, Iters: 6 * sz.AppScale, Grain: 900}).Run(s, alg)
		}},
		{"future-stream", true, func(sz Sizes, alg waiting.Algorithm) Time {
			s := newSched(sz, 8)
			return (&apps.FutureStream{Items: 15 * sz.AppScale, Mean: 1500, Work: 900}).Run(s, alg)
		}},
		{"future-tree", false, func(sz Sizes, alg waiting.Algorithm) Time {
			s := newSched(sz, 8)
			return (&apps.FutureTree{Depth: 5, Grain: 600}).Run(s, alg)
		}},
	}
}

func barrierBenches(sz Sizes) []waitBench {
	return []waitBench{
		{"jacobi-bar", true, func(sz Sizes, alg waiting.Algorithm) Time {
			s := newSched(sz, 8)
			return apps.NewJacobiBar(8, 5*sz.AppScale).Run(s, alg)
		}},
		{"cgrad", true, func(sz Sizes, alg waiting.Algorithm) Time {
			s := newSched(sz, 8)
			return apps.NewCGrad(8, 4*sz.AppScale).Run(s, alg)
		}},
	}
}

func mutexBenches(sz Sizes) []waitBench {
	return []waitBench{
		{"fibheap", true, func(sz Sizes, alg waiting.Algorithm) Time {
			s := newSched(sz, 8)
			return (&apps.FibHeap{Threads: 16, Ops: 8 * sz.AppScale, Mean: 800}).Run(s, alg)
		}},
		{"mutex", true, func(sz Sizes, alg waiting.Algorithm) Time {
			s := newSched(sz, 8)
			return (&apps.MutexBench{Threads: 16, Ops: 8 * sz.AppScale, CS: 150, Think: 900}).Run(s, alg)
		}},
		{"countnet", true, func(sz Sizes, alg waiting.Algorithm) Time {
			s := newSched(sz, 8)
			return (&apps.CountNet{Threads: 16, Width: 8, Ops: 5 * sz.AppScale}).Run(s, alg)
		}},
	}
}

// waitTable runs a benchmark group under the full waiting-algorithm suite,
// normalizing to the best algorithm per row (so 1.00 marks the winner, as
// in Tables 4.3-4.5).
func waitTable(sz Sizes, benches []waitBench) *stats.Table {
	algs := waitAlgs()
	t := &stats.Table{Header: []string{"benchmark"}}
	for _, a := range algs {
		t.Header = append(t.Header, a.Name())
	}
	for _, b := range benches {
		row := []string{b.name}
		els := make([]Time, len(algs))
		best := Time(math.MaxUint64)
		for i, a := range algs {
			if _, isSpin := a.(*waiting.AlwaysSpin); isSpin && !b.spinSafe {
				els[i] = 0
				continue
			}
			els[i] = b.run(sz, a)
			if els[i] < best {
				best = els[i]
			}
		}
		for _, el := range els {
			if el == 0 {
				row = append(row, "starves")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", float64(el)/float64(best)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig4_12ProducerConsumer regenerates Figure 4.12 / Table 4.3.
func Fig4_12ProducerConsumer(sz Sizes) *stats.Table {
	return waitTable(sz, producerConsumerBenches(sz))
}

// Fig4_13Barrier regenerates Figure 4.13 / Table 4.4.
func Fig4_13Barrier(sz Sizes) *stats.Table {
	return waitTable(sz, barrierBenches(sz))
}

// Fig4_14Mutex regenerates Figure 4.14 / Table 4.5.
func Fig4_14Mutex(sz Sizes) *stats.Table {
	return waitTable(sz, mutexBenches(sz))
}

// Table4_6HalfB regenerates Table 4.6: all benchmarks under
// Lpoll = 0.5B, reported as the ratio to the best member of the full suite.
func Table4_6HalfB(sz Sizes) *stats.Table {
	costs := threads.DefaultCosts()
	half := waiting.NewTwoPhaseAlpha(0.5, costs)
	t := &stats.Table{Header: []string{"benchmark", "2phase(0.5B)/best"}}
	groups := [][]waitBench{producerConsumerBenches(sz), barrierBenches(sz), mutexBenches(sz)}
	for _, group := range groups {
		for _, b := range group {
			el := b.run(sz, half)
			best := el
			for _, a := range waitAlgs() {
				if _, isSpin := a.(*waiting.AlwaysSpin); isSpin && !b.spinSafe {
					continue
				}
				if v := b.run(sz, a); v < best {
					best = v
				}
			}
			t.AddRow(b.name, fmt.Sprintf("%.2f", float64(el)/float64(best)))
		}
	}
	return t
}

// WaitProfiles regenerates the waiting-time distributions of Figures
// 4.6-4.11: each benchmark run under two-phase waiting with profiling, the
// resulting histogram rendered semi-log.
func WaitProfiles(sz Sizes) []*stats.WaitProfile {
	costs := threads.DefaultCosts()
	var out []*stats.WaitProfile
	profileRun := func(name string, run func(alg waiting.Algorithm)) {
		p := &stats.WaitProfile{Name: name}
		alg := waiting.NewTwoPhaseAlpha(1.0, costs)
		alg.Prof = p
		run(alg)
		out = append(out, p)
	}
	profileRun("fig4.6 j-structure readers (Jacobi-Jstr)", func(alg waiting.Algorithm) {
		s := newSched(sz, 8)
		(&apps.JacobiJstr{Threads: 8, Iters: 6 * sz.AppScale, Grain: 900}).Run(s, alg)
	})
	profileRun("fig4.7 futures (FutureTree)", func(alg waiting.Algorithm) {
		s := newSched(sz, 8)
		(&apps.FutureTree{Depth: 5, Grain: 600}).Run(s, alg)
	})
	profileRun("fig4.8 barrier waits (CGrad)", func(alg waiting.Algorithm) {
		s := newSched(sz, 8)
		apps.NewCGrad(8, 4*sz.AppScale).Run(s, alg)
	})
	profileRun("fig4.8 barrier waits (Jacobi-Bar)", func(alg waiting.Algorithm) {
		s := newSched(sz, 8)
		apps.NewJacobiBar(8, 5*sz.AppScale).Run(s, alg)
	})
	profileRun("fig4.9 barrier waits (Jacobi-Bar, ideal memory)", func(alg waiting.Algorithm) {
		m := sz.NewMachine(8, func(cfg *machine.Config) {
			cfg.Mem = memsys.IdealConfig(8)
		})
		s := threads.NewScheduler(m, threads.DefaultCosts())
		apps.NewJacobiBar(8, 5*sz.AppScale).Run(s, alg)
	})
	profileRun("fig4.10 mutex waits (FibHeap)", func(alg waiting.Algorithm) {
		s := newSched(sz, 8)
		(&apps.FibHeap{Threads: 16, Ops: 8 * sz.AppScale, Mean: 800}).Run(s, alg)
	})
	profileRun("fig4.10 mutex waits (Mutex)", func(alg waiting.Algorithm) {
		s := newSched(sz, 8)
		(&apps.MutexBench{Threads: 16, Ops: 8 * sz.AppScale, CS: 150, Think: 900}).Run(s, alg)
	})
	profileRun("fig4.11 mutex waits (CountNet)", func(alg waiting.Algorithm) {
		s := newSched(sz, 8)
		(&apps.CountNet{Threads: 16, Width: 8, Ops: 5 * sz.AppScale}).Run(s, alg)
	})
	return out
}

// WaitProfileSummary tabulates the waiting-time distributions of Figures
// 4.6-4.11 as one summary row per benchmark (count, mean, percentiles).
// The full semi-log histograms remain available from WaitProfiles;
// waitsim -hist prints them.
func WaitProfileSummary(sz Sizes) *stats.Table {
	t := &stats.Table{Header: []string{"profile", "n", "mean", "p50", "p90", "max"}}
	for _, p := range WaitProfiles(sz) {
		t.AddRow(p.Name,
			fmt.Sprintf("%d", p.Sample.N()),
			fmt.Sprintf("%.0f", p.Sample.Mean()),
			fmt.Sprintf("%.0f", p.Sample.Percentile(50)),
			fmt.Sprintf("%.0f", p.Sample.Percentile(90)),
			fmt.Sprintf("%.0f", p.Sample.Max()))
	}
	return t
}

// threadsCosts returns the default thread-management costs (test helper).
func threadsCosts() threads.Costs { return threads.DefaultCosts() }

// Fig4_SwitchSpinFactors extends Figure 4.4 to a block-multithreaded
// processor (Section 4.1): polling efficiency β ≈ N contexts = 4, so
// switch-spinning polls at a quarter of spinning's cost. Expected *costs*
// drop with β at any fixed rate, but the worst-case competitive factor is
// β-invariant — a restricted adversary controlling the rate absorbs β by
// reparameterization (μ = λβ) — which the table demonstrates.
func Fig4_SwitchSpinFactors() *stats.Table {
	t := &stats.Table{Header: []string{"alpha", "worst(beta=1)", "worst(beta=4)"}}
	for _, a := range []float64{0.25, waitanalysis.AlphaExpOptimal, 0.62, 1.0, 2.0} {
		t.AddRow(
			fmt.Sprintf("%.2f", a),
			fmt.Sprintf("%.3f", waitanalysis.ExpWorstFactor(a, 1)),
			fmt.Sprintf("%.3f", waitanalysis.ExpWorstFactor(a, 4)),
		)
	}
	a1 := waitanalysis.OptimalAlphaExp(1)
	a4 := waitanalysis.OptimalAlphaExp(4)
	t.AddRow("opt-alpha",
		fmt.Sprintf("%.3f@%.3f", waitanalysis.ExpWorstFactor(a1, 1), a1),
		fmt.Sprintf("%.3f@%.3f", waitanalysis.ExpWorstFactor(a4, 4), a4),
	)
	return t
}
