package experiments

// Native RWMutex reader-registration modal experiment: a deterministic
// drive of the reactive/modal engine over the native RWMutex's 2-mode
// reader registration shape (centralized CAS word ↔ BRAVO-style per-P
// slots). Like the fetch-op traces in modalexp.go, this exercises the
// pure protocol-selection state machine on a seeded synthetic
// contention trace, so its table is bit-deterministic and participates
// in the registry's serial==parallel contract.

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
	"repro/reactive"
	"repro/reactive/modal"
)

// Native RWMutex reader-registration engine mode indices
// (reactive.RWReaderTable's contract: indices 0 and 1 are the public
// modes reactive.ModeCAS + i; index 2 is the public reactive.ModeEpoch).
const (
	rrCentral modal.Mode = 0
	rrSharded modal.Mode = 1
	rrEpoch   modal.Mode = 2
)

// rwModeName renders a reader-registration engine index as its public
// mode name. The fetch-op modeName helper's ModeCAS+i arithmetic would
// map index 2 to "combining"; the reader chain's third protocol is
// ModeEpoch.
func rwModeName(m modal.Mode) string {
	if m == rrEpoch {
		return reactive.ModeEpoch.String()
	}
	return (reactive.ModeCAS + reactive.Mode(m)).String()
}

// stepRWReaderEngine feeds the engine one synthetic detection event
// drawn from contention level p, emulating RWMutex's registration
// detection wiring: in centralized mode, p is the probability a reader
// loses the registration CAS to another reader (vote toward sharded
// slots); in sharded mode, 1-p is the probability a writer drain finds
// the lock already quiet (vote back toward the centralized word). The
// streak limits are the package defaults, as in the primitive.
func stepRWReaderEngine(e *modal.Engine, t *modal.Table, rng *rand.Rand, p float64) {
	const (
		failLimit  = reactive.DefaultSpinFailLimit
		emptyLimit = reactive.DefaultEmptyLimit
	)
	u := rng.Float64()
	if e.Mode() == rrCentral {
		if u < p {
			if e.Vote(t, rrCentral, rrSharded, failLimit) {
				e.TryCommit(t, rrCentral, rrSharded)
			}
		} else {
			e.Good(t, rrCentral, rrSharded)
		}
		return
	}
	if u >= p {
		if e.Vote(t, rrSharded, rrCentral, emptyLimit) {
			e.TryCommit(t, rrSharded, rrCentral)
		}
	} else {
		e.Good(t, rrSharded, rrCentral)
	}
}

// NativeRWReaderTrace tabulates the reader-registration engine's
// protocol selection across the shared contention trace, one row per
// phase. The end-of-trace shape mirrors the primitive's intent: the
// centralized word at idle, sharded slots under read saturation, and a
// return to the centralized word when reader contention subsides.
func NativeRWReaderTrace(sz Sizes) *stats.Table {
	tab := reactive.RWReaderTable()
	var e modal.Engine
	rng := rand.New(rand.NewSource(int64(sz.Seed)))
	t := &stats.Table{Header: []string{"phase", "contention", "end-mode", "%cas", "%sharded", "switches"}}
	for _, ph := range modalPhases(sz) {
		var residency [2]int
		before := e.Switches()
		for i := 0; i < ph.steps; i++ {
			stepRWReaderEngine(&e, tab, rng, ph.p)
			residency[e.Mode()]++
		}
		total := residency[0] + residency[1]
		pct := func(m modal.Mode) string {
			if total == 0 {
				return "0.0"
			}
			return fmt.Sprintf("%.1f", 100*float64(residency[m])/float64(total))
		}
		t.AddRow(ph.name, fmt.Sprintf("%.2f", ph.p), modeName(e.Mode()),
			pct(rrCentral), pct(rrSharded),
			fmt.Sprintf("%d", e.Switches()-before))
	}
	return t
}

// stepRWReaderEpochEngine feeds the engine one synthetic detection
// event drawn from contention level p, emulating the full 3-mode
// registration detection wiring (see RWMutex.drainReaders): in
// centralized mode, p is the probability a reader loses the
// registration CAS (vote toward sharded slots); in sharded mode, p is
// the probability a writer's drain finds readers still active (a busy
// drain votes toward epoch stamps and confirms sharded over the
// centralized word), and 1-p the probability it finds the lock quiet (a
// quiet drain votes toward the centralized word and confirms sharded
// over epoch); in epoch mode, 1-p is the probability a grace period
// completes quietly (vote back toward sharded slots), p that active
// stamps confirm the epoch protocol. Streak limits are the package
// defaults, as in the primitive: SpinFailLimit on up-edges, EmptyLimit
// on down-edges.
func stepRWReaderEpochEngine(e *modal.Engine, t *modal.Table, rng *rand.Rand, p float64) {
	const (
		failLimit  = reactive.DefaultSpinFailLimit
		emptyLimit = reactive.DefaultEmptyLimit
	)
	u := rng.Float64()
	switch e.Mode() {
	case rrCentral:
		if u < p {
			if e.Vote(t, rrCentral, rrSharded, failLimit) {
				e.TryCommit(t, rrCentral, rrSharded)
			}
		} else {
			e.Good(t, rrCentral, rrSharded)
		}
	case rrSharded:
		if u < p {
			e.Good(t, rrSharded, rrCentral)
			if e.Vote(t, rrSharded, rrEpoch, failLimit) {
				e.TryCommit(t, rrSharded, rrEpoch)
			}
		} else {
			e.Good(t, rrSharded, rrEpoch)
			if e.Vote(t, rrSharded, rrCentral, emptyLimit) {
				e.TryCommit(t, rrSharded, rrCentral)
			}
		}
	default: // rrEpoch
		if u >= p {
			if e.Vote(t, rrEpoch, rrSharded, emptyLimit) {
				e.TryCommit(t, rrEpoch, rrSharded)
			}
		} else {
			e.Good(t, rrEpoch, rrSharded)
		}
	}
}

// NativeRWReaderEpochTrace tabulates the full 3-mode
// reader-registration chain's protocol selection across the shared
// contention trace, one row per phase. Where NativeRWReaderTrace stops
// at the sharded slots, this trace drives the epoch edge too: read
// saturation that keeps writer drains busy pushes the engine through
// sharded slots into epoch stamps, and sustained quiet grace periods
// walk it back down the chain — the no-shortcut-edge contract means
// the engine always passes through sharded on the way between the
// centralized word and epoch stamps.
func NativeRWReaderEpochTrace(sz Sizes) *stats.Table {
	tab := reactive.RWReaderTable()
	var e modal.Engine
	rng := rand.New(rand.NewSource(int64(sz.Seed)))
	t := &stats.Table{Header: []string{"phase", "contention", "end-mode", "%cas", "%sharded", "%epoch", "switches"}}
	for _, ph := range modalPhases(sz) {
		var residency [3]int
		before := e.Switches()
		for i := 0; i < ph.steps; i++ {
			stepRWReaderEpochEngine(&e, tab, rng, ph.p)
			residency[e.Mode()]++
		}
		total := residency[0] + residency[1] + residency[2]
		pct := func(m modal.Mode) string {
			if total == 0 {
				return "0.0"
			}
			return fmt.Sprintf("%.1f", 100*float64(residency[m])/float64(total))
		}
		t.AddRow(ph.name, fmt.Sprintf("%.2f", ph.p), rwModeName(e.Mode()),
			pct(rrCentral), pct(rrSharded), pct(rrEpoch),
			fmt.Sprintf("%d", e.Switches()-before))
	}
	return t
}
