package experiments

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// experimentsDoc locates the repository-level EXPERIMENTS.md relative to
// this package.
const experimentsDoc = "../../EXPERIMENTS.md"

// indexRow matches a table row of the experiment index whose first cell
// is a backticked experiment name: | `fig3.15-spinlocks` | ... |
var indexRow = regexp.MustCompile("^\\| *`([^`]+)` *\\|")

// readExperimentIndex parses the "## Experiment index" section of
// EXPERIMENTS.md and returns the experiment names its table documents,
// in order.
func readExperimentIndex(t *testing.T) []string {
	t.Helper()
	f, err := os.Open(filepath.FromSlash(experimentsDoc))
	if err != nil {
		t.Fatalf("EXPERIMENTS.md not readable: %v", err)
	}
	defer f.Close()

	var names []string
	inSection := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "## ") {
			inSection = strings.HasPrefix(line, "## Experiment index")
			continue
		}
		if !inSection {
			continue
		}
		if m := indexRow.FindStringSubmatch(line); m != nil {
			names = append(names, m[1])
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return names
}

// TestExperimentIndexInSync keeps EXPERIMENTS.md honest: every
// registered experiment must have a row in the "## Experiment index"
// table, and every row must name a registered experiment. Registering a
// spec without documenting it — or renaming one and leaving the stale
// row behind — fails here.
func TestExperimentIndexInSync(t *testing.T) {
	documented := readExperimentIndex(t)
	if len(documented) == 0 {
		t.Fatal("EXPERIMENTS.md has no '## Experiment index' table rows")
	}

	docSet := make(map[string]int, len(documented))
	for _, name := range documented {
		if _, dup := docSet[name]; dup {
			t.Errorf("EXPERIMENTS.md documents %q twice", name)
		}
		docSet[name]++
	}

	registered := Default.Names()
	regSet := make(map[string]bool, len(registered))
	for _, name := range registered {
		regSet[name] = true
		if _, ok := docSet[name]; !ok {
			t.Errorf("registered experiment %q has no EXPERIMENTS.md index row", name)
		}
	}
	for _, name := range documented {
		if !regSet[name] {
			t.Errorf("EXPERIMENTS.md index row %q names no registered experiment (stale?)", name)
		}
	}
}
