package experiments

import (
	"fmt"

	"repro/internal/barrier"
	"repro/internal/machine"
	"repro/internal/stats"
)

// barrierEpisodes runs rounds barrier episodes over procs processors and
// returns the average cycles per episode (minus the mean compute skew).
func barrierEpisodes(sz Sizes, mk func(m *machine.Machine) barrier.Barrier, procs, rounds int) Time {
	m := sz.NewMachine(procs, nil)
	b := mk(m)
	var end Time
	for p := 0; p < procs; p++ {
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for r := 0; r < rounds; r++ {
				c.Advance(Time(c.Rand().Intn(200) + 10))
				b.Wait(c)
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	avg := end / Time(rounds)
	const skew = 210 // max compute before each episode
	if avg <= skew {
		return 0
	}
	return avg - skew
}

// BarrierBaseline regenerates the reactive-barrier extension experiment
// (thesis Section 6.2 future work): per-episode overhead of the central,
// combining-tree, and reactive barriers versus participant count.
func BarrierBaseline(sz Sizes) *stats.Table {
	t := &stats.Table{Header: []string{"procs", "central", "combining-tree", "reactive"}}
	rounds := 4 * sz.AppScale
	if rounds < 4 {
		rounds = 4
	}
	for _, procs := range []int{2, 4, 8, 16, 32, 64} {
		row := []string{fmt.Sprintf("%d", procs)}
		for _, mk := range []func(m *machine.Machine) barrier.Barrier{
			func(m *machine.Machine) barrier.Barrier { return barrier.NewCentral(m.Mem, 0, m.NumProcs()) },
			func(m *machine.Machine) barrier.Barrier { return barrier.NewTree(m.Mem, m.NumProcs(), 0) },
			func(m *machine.Machine) barrier.Barrier { return barrier.NewReactive(m.Mem, 0, m.NumProcs()) },
		} {
			row = append(row, fmt.Sprintf("%d", barrierEpisodes(sz, mk, procs, rounds)))
		}
		t.AddRow(row...)
	}
	return t
}

// BarrierOverhead is the exported single-measurement entry point for the
// benchmark harness.
func BarrierOverhead(proto string, procs, rounds int) Time {
	return barrierEpisodes(seedOnly(), func(m *machine.Machine) barrier.Barrier {
		switch proto {
		case "central":
			return barrier.NewCentral(m.Mem, 0, m.NumProcs())
		case "combining-tree":
			return barrier.NewTree(m.Mem, m.NumProcs(), 0)
		case "reactive":
			return barrier.NewReactive(m.Mem, 0, m.NumProcs())
		default:
			panic("experiments: unknown barrier protocol " + proto)
		}
	}, procs, rounds)
}
