package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/stats"
)

// Result is the outcome of one experiment run: the spec, the machine
// seed the run used, and either the produced table or the error (a
// recovered panic from the simulated machine, e.g. a deadlock report).
type Result struct {
	Spec  Spec
	Seed  uint64
	Table *stats.Table
	Err   error
}

// Runner executes a set of experiment specs over a bounded worker pool.
// Every experiment builds its own simulated machines, so the matrix is
// embarrassingly parallel; results are collected in input order and each
// spec's machine seed depends only on (BaseSeed, spec name), making
// parallel output byte-identical to a serial run.
type Runner struct {
	Sizes    Sizes  // experiment scales; per-spec Seed is overridden
	Parallel int    // max concurrent experiments (<=0: GOMAXPROCS)
	BaseSeed uint64 // matrix base seed (0: DefaultSeed)
}

// Run executes the specs and returns one Result per spec, in input order.
func (r *Runner) Run(specs []Spec) []Result {
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	base := r.BaseSeed
	if base == 0 {
		base = DefaultSeed
	}
	results := make([]Result, len(specs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(specs[i], r.Sizes, base)
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runOne executes a single spec with its derived seed, converting panics
// (simulator deadlock/livelock reports) into errors so one failing
// experiment cannot take down the rest of the matrix.
func runOne(spec Spec, sz Sizes, baseSeed uint64) (res Result) {
	res.Spec = spec
	res.Seed = ExperimentSeed(baseSeed, spec.Name)
	sz.Seed = res.Seed
	defer func() {
		if p := recover(); p != nil {
			res.Table = nil
			res.Err = fmt.Errorf("experiment %s panicked: %v", spec.Name, p)
		}
	}()
	res.Table = spec.Run(sz)
	return res
}

// FirstErr returns the first failed result's error, or nil.
func FirstErr(results []Result) error {
	for _, res := range results {
		if res.Err != nil {
			return fmt.Errorf("%s: %w", res.Spec.Name, res.Err)
		}
	}
	return nil
}

// WriteText renders results as the captioned text tables the commands
// have always printed.
func WriteText(w io.Writer, results []Result) error {
	for _, res := range results {
		if res.Err != nil {
			if _, err := fmt.Fprintf(w, "== %s ==\nERROR: %v\n\n", res.Spec.Title, res.Err); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "== %s ==\n%s\n", res.Spec.Title, res.Table); err != nil {
			return err
		}
	}
	return nil
}

// jsonResult is the machine-readable form of one Result.
type jsonResult struct {
	Name   string       `json:"name"`
	Figure string       `json:"figure"`
	Title  string       `json:"title"`
	Tool   string       `json:"tool"`
	Seed   uint64       `json:"seed"`
	Table  *stats.Table `json:"table,omitempty"`
	Error  string       `json:"error,omitempty"`
}

// jsonDoc is the top-level JSON document: the parameters the matrix ran
// with plus one entry per experiment, and optionally the native-primitive
// measurements. It feeds the BENCH_*.json trajectory uploaded by CI.
type jsonDoc struct {
	Params  any            `json:"params"`
	Results []jsonResult   `json:"results"`
	Native  []NativeResult `json:"native,omitempty"`
}

// WriteJSON emits results as an indented, deterministic JSON document.
// params records whatever parameterized the run (a Sizes for the
// registry commands, lockstat's flag values for its sweep) so the
// document alone suffices to reproduce it.
func WriteJSON(w io.Writer, params any, results []Result) error {
	return WriteJSONNative(w, params, results, nil)
}

// WriteJSONNative is WriteJSON plus the wall-clock native-primitive
// measurements (NativePrimitives), which CI's bench smoke job appends so
// bench_results.json tracks the adoptable library alongside the simulator
// matrix.
func WriteJSONNative(w io.Writer, params any, results []Result, native []NativeResult) error {
	doc := jsonDoc{Params: params, Results: make([]jsonResult, 0, len(results)), Native: native}
	for _, res := range results {
		jr := jsonResult{
			Name:   res.Spec.Name,
			Figure: res.Spec.Figure,
			Title:  res.Spec.Title,
			Tool:   res.Spec.Tool,
			Seed:   res.Seed,
		}
		if res.Err != nil {
			jr.Error = res.Err.Error()
		} else {
			jr.Table = res.Table
		}
		doc.Results = append(doc.Results, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteCSV emits results as one flat CSV stream with records of the
// form experiment,kind,cells..., where kind is "header", "row", or
// "error" — flat enough to load into a spreadsheet or a dataframe
// without per-experiment files.
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	for _, res := range results {
		if res.Err != nil {
			if err := cw.Write([]string{res.Spec.Name, "error", res.Err.Error()}); err != nil {
				return err
			}
			continue
		}
		if err := cw.Write(append([]string{res.Spec.Name, "header"}, res.Table.Header...)); err != nil {
			return err
		}
		for _, row := range res.Table.Rows {
			if err := cw.Write(append([]string{res.Spec.Name, "row"}, row...)); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
