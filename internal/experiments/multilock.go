package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spinlock"
	"repro/internal/stats"
)

// Pattern is one contention histogram of the multiple-lock test
// (Figures 3.17-3.19): Groups lists (number of locks, processors per lock);
// the processor counts must sum to 64.
type Pattern struct {
	Name   string
	Groups [][2]int
}

// Patterns returns the twelve contention patterns. Patterns 1-4 mix one
// hot group with single-processor locks; 5-8 replace the single-processor
// locks with two-processor locks (exposing the MCS low-contention race);
// 9-12 are uniform splits.
func Patterns() []Pattern {
	return []Pattern{
		{"1", [][2]int{{1, 32}, {32, 1}}},
		{"2", [][2]int{{2, 16}, {32, 1}}},
		{"3", [][2]int{{4, 8}, {32, 1}}},
		{"4", [][2]int{{8, 4}, {32, 1}}},
		{"5", [][2]int{{1, 32}, {16, 2}}},
		{"6", [][2]int{{2, 16}, {16, 2}}},
		{"7", [][2]int{{4, 8}, {16, 2}}},
		{"8", [][2]int{{8, 4}, {16, 2}}},
		{"9", [][2]int{{64, 1}}},
		{"10", [][2]int{{32, 2}}},
		{"11", [][2]int{{16, 4}}},
		{"12", [][2]int{{2, 32}}},
	}
}

// multiLockElapsed runs one pattern with 64 processors: each processor is
// statically assigned a lock and loops acquire / increment a shared datum /
// release / think, for total acquisitions split evenly. mk receives the
// number of processors that will contend for the lock it creates, so a
// "simulated optimal" maker can statically pick the best protocol.
func multiLockElapsed(sz Sizes, pat Pattern, total int, mk func(m *machine.Machine, contenders, home int) spinlock.Lock) Time {
	const procs = 64
	m := sz.NewMachine(procs, nil)
	type assignment struct {
		lock spinlock.Lock
		data machine.Addr
	}
	var assign []assignment // per processor
	for _, g := range pat.Groups {
		for l := 0; l < g[0]; l++ {
			// Each lock and its protected datum live on a distinct home
			// node, as a real program's allocator would arrange; homing
			// all locks on one node would make that node's memory module
			// a global hotspot unrelated to the protocols under test.
			home := len(assign) % procs
			a := assignment{lock: mk(m, g[1], home), data: m.Mem.Alloc(home, 1)}
			for k := 0; k < g[1]; k++ {
				assign = append(assign, a)
			}
		}
	}
	if len(assign) != procs {
		panic(fmt.Sprintf("pattern %s assigns %d processors", pat.Name, len(assign)))
	}
	iters := total / procs
	var end Time
	for p := 0; p < procs; p++ {
		a := assign[p]
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for i := 0; i < iters; i++ {
				h := a.lock.Acquire(c)
				v := c.Read(a.data)
				c.Write(a.data, v+1)
				a.lock.Release(c, h)
				c.Advance(Time(c.Rand().Intn(500)))
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return end
}

// Fig3_17MultipleLocks regenerates Figures 3.17-3.19: elapsed times for
// the twelve contention patterns under four algorithms, normalized to the
// simulated-optimal static assignment.
func Fig3_17MultipleLocks(sz Sizes) *stats.Table {
	t := &stats.Table{Header: []string{"pattern", "optimal(sim)", "test&set", "mcs-queue", "reactive"}}
	algs := []struct {
		name string
		mk   func(m *machine.Machine, contenders, home int) spinlock.Lock
	}{
		{"optimal(sim)", func(m *machine.Machine, contenders, home int) spinlock.Lock {
			// Static best choice as measured on *this* machine: the TTS
			// lock wins only uncontended; from two contenders up the
			// queue lock's fair handoff wins on makespan (the TTS lock's
			// unfairness lets one processor hog the lock, stretching the
			// slowest processor's completion — the effect Section 3.5.2
			// discusses).
			if contenders < 2 {
				return spinlock.NewTTS(m.Mem, home, spinlock.DefaultBackoff)
			}
			return spinlock.NewMCS(m.Mem, home)
		}},
		{"test&set", func(m *machine.Machine, _, home int) spinlock.Lock {
			return spinlock.NewTAS(m.Mem, home, spinlock.DefaultBackoff)
		}},
		{"mcs-queue", func(m *machine.Machine, _, home int) spinlock.Lock {
			return spinlock.NewMCS(m.Mem, home)
		}},
		{"reactive", func(m *machine.Machine, _, home int) spinlock.Lock {
			return core.NewReactiveLock(m.Mem, home)
		}},
	}
	for _, pat := range Patterns() {
		var base Time
		row := []string{pat.Name}
		for i, alg := range algs {
			el := multiLockElapsed(sz, pat, sz.MultiLockTotal, alg.mk)
			if i == 0 {
				base = el
				row = append(row, "1.00")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", float64(el)/float64(base)))
		}
		t.AddRow(row...)
	}
	return t
}
