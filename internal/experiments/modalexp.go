package experiments

// Native fetch-and-op modal experiments: deterministic drives of the
// reactive/modal engine over the native FetchOp's 3-mode transition
// shape (CAS ↔ sharded ↔ combining — the native analogue of the
// simulator's TTS ↔ queue ↔ combining tree). Unlike the wall-clock
// NativePrimitives measurements, these exercise the pure
// protocol-selection state machine on a seeded synthetic contention
// trace, so their tables are bit-deterministic and participate in the
// registry's serial==parallel contract like every simulator experiment.

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
	"repro/reactive"
	"repro/reactive/modal"
	"repro/reactive/policy"
)

// Native fetch-op engine mode indices (reactive.FetchOpTable's contract:
// index i is the public mode reactive.ModeCAS + i).
const (
	nmCAS       modal.Mode = 0
	nmSharded   modal.Mode = 1
	nmCombining modal.Mode = 2
)

// modalPhase is one segment of the synthetic contention trace: p is the
// probability that a step observes contention (a failed CAS in mode CAS,
// a wide reconciling fan-in in mode sharded, a non-trivial batch in mode
// combining).
type modalPhase struct {
	name  string
	p     float64
	steps int
}

func modalPhases(sz Sizes) []modalPhase {
	steps := 120 * sz.BaselineIters
	return []modalPhase{
		{"idle", 0.02, steps},
		{"ramp", 0.55, steps},
		{"saturated", 0.97, steps},
		{"cooldown", 0.55, steps},
		{"quiet", 0.02, steps},
	}
}

// modalTraceStats accumulates one engine drive.
type modalTraceStats struct {
	residency [3]int
	switches  uint64
}

func (s *modalTraceStats) pct(m modal.Mode) string {
	total := s.residency[0] + s.residency[1] + s.residency[2]
	if total == 0 {
		return "0.0"
	}
	return fmt.Sprintf("%.1f", 100*float64(s.residency[m])/float64(total))
}

// modeName renders an engine mode with the public reactive mode names.
func modeName(m modal.Mode) string { return (reactive.ModeCAS + reactive.Mode(m)).String() }

// stepModalEngine feeds the engine one synthetic detection event drawn
// from contention level p, emulating FetchOp's per-mode detection
// wiring: contended CAS applies vote up, single-writer reconciliations
// vote down, wide-fan-in reconciliations vote further up, and idle
// combining sweeps vote back down. The streak limits are the package
// defaults (SpinFailLimit for up-edges, EmptyLimit for down-edges);
// with an injected policy the engine routes the same events to it.
func stepModalEngine(e *modal.Engine, t *modal.Table, rng *rand.Rand, p float64) {
	const (
		failLimit  = reactive.DefaultSpinFailLimit
		emptyLimit = reactive.DefaultEmptyLimit
	)
	u := rng.Float64()
	switch e.Mode() {
	case nmCAS:
		if u < p {
			if e.Vote(t, nmCAS, nmSharded, failLimit) {
				e.TryCommit(t, nmCAS, nmSharded)
			}
		} else {
			e.Good(t, nmCAS, nmSharded)
		}
	case nmSharded:
		if u >= p {
			if e.Vote(t, nmSharded, nmCAS, emptyLimit) {
				e.TryCommit(t, nmSharded, nmCAS)
			}
		} else {
			e.Good(t, nmSharded, nmCAS)
			if u < p*p { // heavy tail: reconciliation swept a wide fan-in
				if e.Vote(t, nmSharded, nmCombining, failLimit) {
					e.TryCommit(t, nmSharded, nmCombining)
				}
			} else {
				e.Good(t, nmSharded, nmCombining)
			}
		}
	default:
		if u < p {
			e.Good(t, nmCombining, nmSharded)
		} else if e.Vote(t, nmCombining, nmSharded, emptyLimit) {
			e.TryCommit(t, nmCombining, nmSharded)
		}
	}
}

// NativeFopTrace tabulates the modal engine's protocol selection across
// the contention trace, one row per phase: where the engine spent its
// time and how many transitions each phase drove. The end-of-trace shape
// mirrors the simulator's reactive fetch-and-op experiments: CAS at idle,
// combining at saturation, and a return to CAS when contention subsides.
func NativeFopTrace(sz Sizes) *stats.Table {
	tab := reactive.FetchOpTable()
	var e modal.Engine
	rng := rand.New(rand.NewSource(int64(sz.Seed)))
	t := &stats.Table{Header: []string{"phase", "contention", "end-mode", "%cas", "%sharded", "%combining", "switches"}}
	for _, ph := range modalPhases(sz) {
		var st modalTraceStats
		before := e.Switches()
		for i := 0; i < ph.steps; i++ {
			stepModalEngine(&e, tab, rng, ph.p)
			st.residency[e.Mode()]++
		}
		st.switches = e.Switches() - before
		t.AddRow(ph.name, fmt.Sprintf("%.2f", ph.p), modeName(e.Mode()),
			st.pct(nmCAS), st.pct(nmSharded), st.pct(nmCombining),
			fmt.Sprintf("%d", st.switches))
	}
	return t
}

// NativeFopPolicies replays the same contention trace through the modal
// engine once per switching policy, comparing how the built-in
// hysteresis streaks and each injected policy.Policy track the N=3
// protocol chain — the native counterpart of the simulator's
// Figure 3.22/3.23 policy comparisons.
func NativeFopPolicies(sz Sizes) *stats.Table {
	pols := []struct {
		name string
		mk   func() policy.Policy
	}{
		{"builtin-streaks", func() policy.Policy { return nil }},
		{"always", func() policy.Policy { return policy.AlwaysSwitch{} }},
		{"3-competitive", func() policy.Policy {
			return policy.NewCompetitive(3 * reactive.ResidualCheapHigh)
		}},
		{"hysteresis(3,8)", func() policy.Policy { return policy.NewHysteresis(3, 8) }},
		{"weighted-average", func() policy.Policy { return policy.NewWeightedAverage(64, 192) }},
		{"congestion", func() policy.Policy { return policy.NewCongestion() }},
	}
	tab := reactive.FetchOpTable()
	t := &stats.Table{Header: []string{"policy", "end-mode", "%cas", "%sharded", "%combining", "switches"}}
	for _, pc := range pols {
		var e modal.Engine
		e.SetPolicy(pc.mk())
		rng := rand.New(rand.NewSource(int64(sz.Seed)))
		var st modalTraceStats
		for _, ph := range modalPhases(sz) {
			for i := 0; i < ph.steps; i++ {
				stepModalEngine(&e, tab, rng, ph.p)
				st.residency[e.Mode()]++
			}
		}
		st.switches = e.Switches()
		t.AddRow(pc.name, modeName(e.Mode()),
			st.pct(nmCAS), st.pct(nmSharded), st.pct(nmCombining),
			fmt.Sprintf("%d", st.switches))
	}
	return t
}
