package experiments

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/threads"
	"repro/internal/waitanalysis"
	"repro/internal/waiting"
)

// TestTwoPhaseCostMatchesAnalysis corroborates the closed-form expected
// waiting costs of Section 4.4 against the implemented waiting algorithms
// on the simulated machine (the thesis's Section 4.7 methodology): draw
// many exponentially distributed waiting times, run the two-phase
// algorithm through the real thread runtime, account its waiting cost
// (polling cycles consumed, plus B when it blocks), and compare the mean
// against E[C_2phase/α].
func TestTwoPhaseCostMatchesAnalysis(t *testing.T) {
	costs := threads.DefaultCosts()
	b := float64(costs.BlockCost())
	const trials = 400
	for _, tc := range []struct {
		alpha   float64
		lambdaB float64
	}{
		{0.54, 0.5},
		{0.54, 2.0},
		{1.0, 1.0},
		{0.25, 0.25},
	} {
		alg := waiting.NewTwoPhaseAlpha(tc.alpha, costs)
		meanWait := b / tc.lambdaB // cycles

		m := machine.New(machine.DefaultConfig(2))
		s := threads.NewScheduler(m, costs)
		var measured float64
		flag := false
		var q threads.WaitQueue
		var waitStarts []machine.Time

		s.Spawn(0, 0, "waiter", func(th *threads.Thread) {
			for i := 0; i < trials; i++ {
				start := th.Now()
				blocksBefore := s.Blocks
				waitStarts = append(waitStarts, start)
				alg.Wait(th, func() bool { return flag }, &q)
				flag = false
				if s.Blocks > blocksBefore {
					// Signaling path: polling budget spent plus B.
					measured += float64(alg.Lpoll) + b
				} else {
					// Polling path: cost = waiting time.
					measured += float64(th.Now() - start)
				}
			}
		})
		s.Spawn(1, 0, "signaler", func(th *threads.Thread) {
			for i := 0; i < trials; i++ {
				// Wait for the waiter to begin its next wait.
				for len(waitStarts) <= i {
					th.Advance(8)
				}
				d := machine.Time(meanWait * th.Rand().ExpFloat64())
				if d > machine.Time(40*meanWait) {
					d = machine.Time(40 * meanWait)
				}
				target := waitStarts[i] + d
				if target > th.Now() {
					th.Advance(target - th.Now())
				}
				flag = true
				q.WakeAll(th)
				// Let the waiter observe and reset the flag.
				for flag {
					th.Advance(8)
				}
			}
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		got := measured / trials / b // in units of B
		want := waitanalysis.ExpTwoPhaseCost(tc.alpha, tc.lambdaB, 1)
		if math.Abs(got-want) > 0.25*want+0.08 {
			t.Errorf("alpha=%.2f lambdaB=%.2f: measured E[C]=%.3fB, analysis %.3fB",
				tc.alpha, tc.lambdaB, got, want)
		}
	}
}
