package experiments

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/stats"
)

// Tool names group experiments by the command that historically owned
// them: reactsim runs the Chapter 3 protocol-selection matrix (plus the
// reactive-barrier extension), waitsim the Chapter 4 waiting-algorithm
// matrix.
const (
	ToolReactsim = "reactsim"
	ToolWaitsim  = "waitsim"
)

// ProfilesExperiment is the registry name of the waiting-time-profiles
// experiment; waitsim -hist reuses its seed so the printed histograms
// match the summary table.
const ProfilesExperiment = "fig4.6-11-profiles"

// Spec describes one experiment in the evaluation matrix: a unique name,
// the paper artifact it regenerates, the group aliases it answers to on
// the command line, and a run function producing the artifact's table.
// Each run builds its own simulated machines (seeded from the Sizes it
// receives), so any subset of specs can execute concurrently.
type Spec struct {
	Name   string                   // unique, e.g. "fig3.15-spinlocks"
	Figure string                   // paper artifact tag, e.g. "Figure 3.15"
	Title  string                   // table caption printed above the output
	Tool   string                   // ToolReactsim or ToolWaitsim
	Groups []string                 // command-line aliases selecting this spec
	Run    func(Sizes) *stats.Table // executes the experiment
}

// Registry maps experiment names (and group aliases) to specs, in
// registration order.
type Registry struct {
	specs  []Spec
	byName map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// Register adds a spec. It panics on a duplicate or empty name, a name
// colliding with a group alias, or a missing run function — registration
// happens at init time, so a panic is a programming error caught by any
// test that touches the package.
func (r *Registry) Register(s Spec) {
	if s.Name == "" || s.Run == nil {
		panic("experiments: Register needs a name and a run function")
	}
	if _, dup := r.byName[s.Name]; dup {
		panic("experiments: duplicate experiment " + s.Name)
	}
	for _, existing := range r.specs {
		for _, g := range existing.Groups {
			if g == s.Name {
				panic("experiments: experiment name " + s.Name + " collides with a group alias")
			}
		}
	}
	for _, g := range s.Groups {
		if _, isName := r.byName[g]; isName || g == s.Name {
			panic("experiments: group alias " + g + " collides with an experiment name")
		}
	}
	r.byName[s.Name] = len(r.specs)
	r.specs = append(r.specs, s)
}

// Specs returns all registered specs in registration order.
func (r *Registry) Specs() []Spec {
	return append([]Spec(nil), r.specs...)
}

// Names returns all experiment names in registration order.
func (r *Registry) Names() []string {
	names := make([]string, len(r.specs))
	for i, s := range r.specs {
		names[i] = s.Name
	}
	return names
}

// Lookup returns the spec with the given name.
func (r *Registry) Lookup(name string) (Spec, bool) {
	i, ok := r.byName[name]
	if !ok {
		return Spec{}, false
	}
	return r.specs[i], true
}

// Select resolves a command-line experiment expression against the
// registry: "all" selects every spec for the tool ("" matches all
// tools); otherwise the expression is a comma-separated list of
// experiment names and group aliases. The result preserves registration
// order and contains no duplicates.
func (r *Registry) Select(tool, expr string) ([]Spec, error) {
	want := make(map[int]struct{})
	matchTool := func(s Spec) bool { return tool == "" || s.Tool == tool }
	for _, term := range strings.Split(expr, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		matched := false
		if term == "all" {
			for i, s := range r.specs {
				if matchTool(s) {
					want[i] = struct{}{}
					matched = true
				}
			}
		} else if i, ok := r.byName[term]; ok && matchTool(r.specs[i]) {
			want[i] = struct{}{}
			matched = true
		} else {
			for i, s := range r.specs {
				if !matchTool(s) {
					continue
				}
				for _, g := range s.Groups {
					if g == term {
						want[i] = struct{}{}
						matched = true
					}
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("unknown experiment %q (try -list)", term)
		}
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("empty experiment selection %q", expr)
	}
	var out []Spec
	for i, s := range r.specs {
		if _, ok := want[i]; ok {
			out = append(out, s)
		}
	}
	return out, nil
}

// ExperimentSeed derives the deterministic machine seed for one
// experiment from the matrix base seed and the experiment name. The
// derivation depends only on the name — never on execution order — so
// serial and parallel runs of any subset produce identical tables.
func ExperimentSeed(base uint64, name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return base ^ h.Sum64()
}

// Default is the full evaluation matrix: every table and figure the
// thesis's evaluation sections plot, plus the repository's extensions.
var Default = func() *Registry {
	r := NewRegistry()

	// Chapter 3: protocol selection (reactsim).
	r.Register(Spec{
		Name: "fig3.15-spinlocks", Figure: "Figure 3.15", Tool: ToolReactsim,
		Title:  "Figure 3.15 (spin locks): overhead cycles per critical section",
		Groups: []string{"baseline"},
		Run:    Fig3_15SpinLocks,
	})
	r.Register(Spec{
		Name: "fig3.15-fetchop", Figure: "Figure 3.15", Tool: ToolReactsim,
		Title:  "Figure 3.15 (fetch-and-op): overhead cycles per operation",
		Groups: []string{"baseline"},
		Run:    Fig3_15FetchOp,
	})
	r.Register(Spec{
		Name: "fig3.16-prototype", Figure: "Figure 3.16", Tool: ToolReactsim,
		Title:  "Figure 3.16: spin locks on the 16-processor machine",
		Groups: []string{"prototype"},
		Run:    Fig3_16Prototype,
	})
	r.Register(Spec{
		Name: "fig3.2-dirnnb", Figure: "Figure 3.2", Tool: ToolReactsim,
		Title:  "Figure 3.2 ablation: LimitLESS vs full-map (DirNNB) directory",
		Groups: []string{"dirnnb"},
		Run:    Fig3_2DirNNB,
	})
	r.Register(Spec{
		Name: "fig3.14-adversary", Figure: "Figure 3.14", Tool: ToolReactsim,
		Title:  "Figure 3.14: adversarial requests vs the 3-competitive bound",
		Groups: []string{"competitive"},
		Run:    Fig3_14CompetitiveAdversary,
	})
	r.Register(Spec{
		Name: "fig3.17-multilock", Figure: "Figures 3.17-3.19", Tool: ToolReactsim,
		Title:  "Figures 3.17-3.19: multiple-lock test (normalized to simulated optimal)",
		Groups: []string{"multilock"},
		Run:    Fig3_17MultipleLocks,
	})
	r.Register(Spec{
		Name: "fig3.21-timevary", Figure: "Figure 3.21", Tool: ToolReactsim,
		Title:  "Figure 3.21: time-varying contention (normalized to MCS)",
		Groups: []string{"timevary"},
		Run:    Fig3_21TimeVarying,
	})
	r.Register(Spec{
		Name: "fig3.22-competitive", Figure: "Figure 3.22", Tool: ToolReactsim,
		Title:  "Figure 3.22: 3-competitive switching policy (normalized to MCS)",
		Groups: []string{"competitive"},
		Run:    Fig3_22Competitive,
	})
	r.Register(Spec{
		Name: "fig3.23-hysteresis", Figure: "Figure 3.23", Tool: ToolReactsim,
		Title:  "Figure 3.23: hysteresis switching policies (normalized to MCS)",
		Groups: []string{"hysteresis"},
		Run:    Fig3_23Hysteresis,
	})
	r.Register(Spec{
		Name: "fig3.24-fetchop-apps", Figure: "Figure 3.24", Tool: ToolReactsim,
		Title:  "Figure 3.24: fetch-and-op applications (normalized to queue-lock)",
		Groups: []string{"apps"},
		Run:    Fig3_24FetchOpApps,
	})
	r.Register(Spec{
		Name: "fig3.25-spinlock-apps", Figure: "Figure 3.25", Tool: ToolReactsim,
		Title:  "Figure 3.25: spin-lock applications (normalized to test&set)",
		Groups: []string{"apps"},
		Run:    Fig3_25SpinLockApps,
	})
	r.Register(Spec{
		Name: "fig3.26-messages", Figure: "Figure 3.26", Tool: ToolReactsim,
		Title:  "Figure 3.26: shared-memory vs message-passing protocols",
		Groups: []string{"messages"},
		Run:    Fig3_26MessagePassing,
	})
	r.Register(Spec{
		Name: "barrier-extension", Figure: "Extension §6.2", Tool: ToolReactsim,
		Title:  "Extension (thesis §6.2): reactive barrier, overhead per episode",
		Groups: []string{"barrier"},
		Run:    BarrierBaseline,
	})

	// Native modal engine: the reactive/modal state machine behind the
	// native FetchOp's N=3 protocol chain, driven deterministically.
	r.Register(Spec{
		Name: "native-fetchop-trace", Figure: "Extension (modal engine)", Tool: ToolReactsim,
		Title:  "Extension: native fetch-op modal engine over a contention trace (CAS ↔ sharded ↔ combining)",
		Groups: []string{"native"},
		Run:    NativeFopTrace,
	})
	r.Register(Spec{
		Name: "native-fetchop-policies", Figure: "Extension (modal engine)", Tool: ToolReactsim,
		Title:  "Extension: switching policies on the native fetch-op modal engine",
		Groups: []string{"native"},
		Run:    NativeFopPolicies,
	})
	r.Register(Spec{
		Name: "native-rwmutex-trace", Figure: "Extension (modal engine)", Tool: ToolReactsim,
		Title:  "Extension: native RWMutex reader-registration engine over a contention trace (centralized ↔ sharded slots)",
		Groups: []string{"native"},
		Run:    NativeRWReaderTrace,
	})
	r.Register(Spec{
		Name: "native-rwmutex-epoch-trace", Figure: "Extension (modal engine)", Tool: ToolReactsim,
		Title:  "Extension: native RWMutex 3-mode reader-registration chain over a contention trace (centralized ↔ sharded slots ↔ epoch stamps)",
		Groups: []string{"native"},
		Run:    NativeRWReaderEpochTrace,
	})
	r.Register(Spec{
		Name: "native-map-trace", Figure: "Extension (modal engine)", Tool: ToolReactsim,
		Title:  "Extension: native adaptive-map 3-mode chain over a contention trace (locked table ↔ shard locks ↔ published epoch table)",
		Groups: []string{"native"},
		Run:    NativeMapTrace,
	})
	r.Register(Spec{
		Name: "native-congestion-trace", Figure: "Extension (congestion policy)", Tool: ToolReactsim,
		Title:  "Extension: congestion-control policy (AIMD window, sRTT estimator) on the native fetch-op modal engine",
		Groups: []string{"native", "congestion"},
		Run:    NativeCongestionTrace,
	})
	r.Register(Spec{
		Name: "native-telemetry-deltas", Figure: "Extension (telemetry)", Tool: ToolReactsim,
		Title:  "Extension: Snapshot.Sub telemetry deltas over the native primitives' scale-down paths",
		Groups: []string{"native", "telemetry"},
		Run:    NativeTelemetryDeltas,
	})

	// Chapter 4: waiting algorithms (waitsim).
	r.Register(Spec{
		Name: "table4.1-blocking", Figure: "Table 4.1", Tool: ToolWaitsim,
		Title:  "Table 4.1: breakdown of the cost of blocking",
		Groups: []string{"table4.1"},
		Run:    func(Sizes) *stats.Table { return Table4_1BlockingCost() },
	})
	r.Register(Spec{
		Name: "fig4.4-exp-factors", Figure: "Figure 4.4", Tool: ToolWaitsim,
		Title:  "Figure 4.4: expected competitive factors, exponential waits",
		Groups: []string{"factors"},
		Run:    func(Sizes) *stats.Table { return Fig4_4ExpFactors() },
	})
	r.Register(Spec{
		Name: "fig4.5-uniform-factors", Figure: "Figure 4.5", Tool: ToolWaitsim,
		Title:  "Figure 4.5: expected competitive factors, uniform waits",
		Groups: []string{"factors"},
		Run:    func(Sizes) *stats.Table { return Fig4_5UniformFactors() },
	})
	r.Register(Spec{
		Name: "fig4.x-switch-spin", Figure: "Section 4.1", Tool: ToolWaitsim,
		Title:  "Section 4.1 extension: switch-spinning (beta=4)",
		Groups: []string{"factors"},
		Run:    func(Sizes) *stats.Table { return Fig4_SwitchSpinFactors() },
	})
	r.Register(Spec{
		Name: ProfilesExperiment, Figure: "Figures 4.6-4.11", Tool: ToolWaitsim,
		Title:  "Figures 4.6-4.11: waiting-time profiles (summary; waitsim -hist for histograms)",
		Groups: []string{"profiles"},
		Run:    WaitProfileSummary,
	})
	r.Register(Spec{
		Name: "fig4.12-producer-consumer", Figure: "Figure 4.12 / Table 4.3", Tool: ToolWaitsim,
		Title:  "Figure 4.12 / Table 4.3: producer-consumer (normalized to best)",
		Groups: []string{"benchmarks"},
		Run:    Fig4_12ProducerConsumer,
	})
	r.Register(Spec{
		Name: "fig4.13-barrier", Figure: "Figure 4.13 / Table 4.4", Tool: ToolWaitsim,
		Title:  "Figure 4.13 / Table 4.4: barriers (normalized to best)",
		Groups: []string{"benchmarks"},
		Run:    Fig4_13Barrier,
	})
	r.Register(Spec{
		Name: "fig4.14-mutex", Figure: "Figure 4.14 / Table 4.5", Tool: ToolWaitsim,
		Title:  "Figure 4.14 / Table 4.5: mutual exclusion (normalized to best)",
		Groups: []string{"benchmarks"},
		Run:    Fig4_14Mutex,
	})
	r.Register(Spec{
		Name: "table4.6-halfb", Figure: "Table 4.6", Tool: ToolWaitsim,
		Title:  "Table 4.6: two-phase waiting with Lpoll = 0.5B",
		Groups: []string{"halfb"},
		Run:    Table4_6HalfB,
	})
	return r
}()
