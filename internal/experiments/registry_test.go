package experiments

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/stats"
)

// tinySizes shrinks every scale knob so the whole matrix runs in test
// time. The registry's correctness properties (unique names, every
// experiment runs, serial == parallel) are size-independent.
func tinySizes() Sizes { return Tiny() }

// slowSpecs are the experiments whose cost is dominated by fixed
// iteration structure (64-processor patterns, fixed period lengths,
// fixed app problem sizes) rather than by Sizes; they are skipped under
// -short so the race-enabled CI test job stays fast.
var slowSpecs = map[string]bool{
	"fig3.17-multilock":     true,
	"fig3.21-timevary":      true,
	"fig3.22-competitive":   true,
	"fig3.23-hysteresis":    true,
	"fig3.24-fetchop-apps":  true,
	"fig3.25-spinlock-apps": true,
}

func TestRegistryMetadata(t *testing.T) {
	specs := Default.Specs()
	if len(specs) < 20 {
		t.Fatalf("registry has only %d specs", len(specs))
	}
	seen := make(map[string]bool)
	for _, s := range specs {
		if s.Name == "" || s.Figure == "" || s.Title == "" || s.Run == nil {
			t.Errorf("spec %+v missing metadata", s.Name)
		}
		if seen[s.Name] {
			t.Errorf("duplicate experiment name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Tool != ToolReactsim && s.Tool != ToolWaitsim {
			t.Errorf("%s: unknown tool %q", s.Name, s.Tool)
		}
		for _, g := range s.Groups {
			if _, isName := Default.Lookup(g); isName {
				t.Errorf("%s: group %q shadows an experiment name", s.Name, g)
			}
		}
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	run := func(Sizes) *stats.Table { return &stats.Table{} }
	r.Register(Spec{Name: "a", Figure: "f", Title: "t", Tool: ToolReactsim, Groups: []string{"g"}, Run: run})
	for _, bad := range []Spec{
		{Name: "a", Figure: "f", Title: "t", Tool: ToolReactsim, Run: run},                        // dup name
		{Name: "g", Figure: "f", Title: "t", Tool: ToolReactsim, Run: run},                        // name == existing alias
		{Name: "b", Figure: "f", Title: "t", Tool: ToolReactsim, Groups: []string{"a"}, Run: run}, // alias == existing name
		{Name: "", Figure: "f", Title: "t", Tool: ToolReactsim, Run: run},                         // empty name
		{Name: "c", Figure: "f", Title: "t", Tool: ToolReactsim, Run: nil},                        // nil run
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Register(%q) should have panicked", bad.Name)
				}
			}()
			r.Register(bad)
		}()
	}
}

func TestExperimentSeedDistinctAndStable(t *testing.T) {
	seen := make(map[uint64]string)
	for _, name := range Default.Names() {
		s := ExperimentSeed(DefaultSeed, name)
		if s != ExperimentSeed(DefaultSeed, name) {
			t.Fatalf("%s: seed not stable", name)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between %s and %s", name, prev)
		}
		seen[s] = name
	}
}

func TestSelect(t *testing.T) {
	all, err := Default.Select(ToolReactsim, "all")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		if s.Tool != ToolReactsim {
			t.Errorf("tool filter leaked %s (%s)", s.Name, s.Tool)
		}
	}

	base, err := Default.Select(ToolReactsim, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 {
		t.Fatalf("baseline selected %d specs, want 2", len(base))
	}

	// A group plus a member of that group must not duplicate.
	dedup, err := Default.Select(ToolReactsim, "baseline,fig3.15-spinlocks")
	if err != nil {
		t.Fatal(err)
	}
	if len(dedup) != len(base) {
		t.Fatalf("overlapping selection produced %d specs, want %d", len(dedup), len(base))
	}

	if _, err := Default.Select(ToolReactsim, "nope"); err == nil {
		t.Error("unknown experiment should error")
	}
	// A waitsim name is invisible through the reactsim filter.
	if _, err := Default.Select(ToolReactsim, "table4.1-blocking"); err == nil {
		t.Error("cross-tool selection should error")
	}
}

// TestMatrixSerialParallelIdentical is the registry's core contract:
// every registered experiment runs, and a parallel run of the matrix is
// byte-identical to a serial run at the same base seed.
func TestMatrixSerialParallelIdentical(t *testing.T) {
	var specs []Spec
	for _, s := range Default.Specs() {
		if testing.Short() && slowSpecs[s.Name] {
			continue
		}
		specs = append(specs, s)
	}
	sz := tinySizes()
	serial := (&Runner{Sizes: sz, Parallel: 1}).Run(specs)
	parallel := (&Runner{Sizes: sz, Parallel: 8}).Run(specs)
	if len(serial) != len(specs) || len(parallel) != len(specs) {
		t.Fatalf("result counts: serial %d parallel %d want %d", len(serial), len(parallel), len(specs))
	}
	for i, s := range specs {
		if serial[i].Err != nil {
			t.Errorf("%s: serial run failed: %v", s.Name, serial[i].Err)
			continue
		}
		if parallel[i].Err != nil {
			t.Errorf("%s: parallel run failed: %v", s.Name, parallel[i].Err)
			continue
		}
		if serial[i].Seed != parallel[i].Seed {
			t.Errorf("%s: seeds differ: %#x vs %#x", s.Name, serial[i].Seed, parallel[i].Seed)
		}
		got, want := parallel[i].Table.String(), serial[i].Table.String()
		if got != want {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", s.Name, want, got)
		}
		if len(serial[i].Table.Rows) == 0 {
			t.Errorf("%s: produced an empty table", s.Name)
		}
	}
}

func TestRunnerRecoversPanics(t *testing.T) {
	specs := []Spec{
		{Name: "ok", Figure: "f", Title: "t", Tool: ToolReactsim, Run: func(Sizes) *stats.Table {
			t := &stats.Table{Header: []string{"x"}}
			t.AddRow("1")
			return t
		}},
		{Name: "boom", Figure: "f", Title: "t", Tool: ToolReactsim, Run: func(Sizes) *stats.Table {
			panic("simulated deadlock")
		}},
	}
	results := (&Runner{Parallel: 2}).Run(specs)
	if results[0].Err != nil || results[0].Table == nil {
		t.Errorf("healthy spec should succeed: %+v", results[0].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "simulated deadlock") {
		t.Errorf("panicking spec should surface its panic, got %v", results[1].Err)
	}
	if err := FirstErr(results); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("FirstErr should name the failed experiment, got %v", err)
	}
	var wrapped error = results[1].Err
	if wrapped == nil {
		t.Fatal("expected error")
	}
	_ = errors.Unwrap(wrapped) // must not panic
}

func TestWriteJSONRoundTrips(t *testing.T) {
	specs, err := Default.Select(ToolWaitsim, "table4.1,factors")
	if err != nil {
		t.Fatal(err)
	}
	sz := tinySizes()
	results := (&Runner{Sizes: sz, Parallel: 2}).Run(specs)
	var buf strings.Builder
	if err := WriteJSON(&buf, sz, results); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range specs {
		if !strings.Contains(out, s.Name) {
			t.Errorf("JSON missing experiment %s:\n%s", s.Name, out)
		}
	}
	var csvBuf strings.Builder
	if err := WriteCSV(&csvBuf, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "table4.1-blocking,header,action,cycles") {
		t.Errorf("CSV missing flat header record:\n%s", csvBuf.String())
	}
}
