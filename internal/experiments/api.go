package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fetchop"
	"repro/internal/machine"
	"repro/internal/spinlock"
	"repro/internal/stats"
	"repro/internal/tasksys"
)

// Exported single-measurement entry points used by the repository-level
// benchmark harness (bench_test.go): each runs one experiment configuration
// and returns the simulated-cycle metric the corresponding paper artifact
// plots.

// LockProtocols lists the spin-lock protocol names accepted by
// LockOverhead.
func LockProtocols() []string {
	return []string{"test&set", "test&test&set", "mcs-queue", "mp-queue", "reactive"}
}

// LockOverhead measures the average per-critical-section overhead of the
// named protocol with the given contenders on a machineProcs-node machine
// (the Figure 3.15 baseline loop).
func LockOverhead(proto string, machineProcs, contenders, iters int) Time {
	return lockOverhead(seedOnly(), func(m *machine.Machine) spinlock.Lock {
		return makeLock(m, proto)
	}, machineProcs, contenders, iters, nil)
}

func makeLock(m *machine.Machine, proto string) spinlock.Lock {
	return MakeLock(m, proto, 0)
}

// MakeLock constructs the named spin-lock protocol homed on node home.
// It is the single protocol-name dispatch point shared by the experiment
// harness and the lockstat tuning tool. It panics on an unknown name;
// callers validating user input should check LockProtocols first.
func MakeLock(m *machine.Machine, proto string, home int) spinlock.Lock {
	switch proto {
	case "test&set":
		return spinlock.NewTAS(m.Mem, home, spinlock.DefaultBackoff)
	case "test&test&set":
		return spinlock.NewTTS(m.Mem, home, spinlock.DefaultBackoff)
	case "mcs-queue":
		return spinlock.NewMCS(m.Mem, home)
	case "mp-queue":
		return spinlock.NewMPQueue(home)
	case "reactive":
		return core.NewReactiveLock(m.Mem, home)
	case "reactive-nonoptimistic":
		l := core.NewReactiveLock(m.Mem, home)
		l.Optimistic = false
		return l
	default:
		panic("experiments: unknown lock protocol " + proto)
	}
}

// FopProtocols lists the fetch-and-op protocol names accepted by
// FopOverhead.
func FopProtocols() []string {
	return []string{"tts-lock", "queue-lock", "combining-tree", "mp-central", "mp-combining-tree", "reactive"}
}

// MakeFop constructs the named fetch-and-op protocol with nleaves
// combining-tree leaves. Like MakeLock, it is the shared dispatch point
// and panics on an unknown name.
func MakeFop(m *machine.Machine, proto string, nleaves int) fetchop.FetchOp {
	switch proto {
	case "tts-lock":
		return fetchop.NewTTSLockFOP(m.Mem, 0)
	case "queue-lock":
		return fetchop.NewQueueLockFOP(m.Mem, 0)
	case "combining-tree":
		return fetchop.NewCombTree(m.Mem, nleaves, 0)
	case "mp-central":
		return fetchop.NewMPCentral(0)
	case "mp-combining-tree":
		return fetchop.NewMPCombTree(m, nleaves, 0)
	case "reactive":
		return core.NewReactiveFetchOp(m.Mem, 0, nleaves)
	default:
		panic("experiments: unknown fetch-and-op protocol " + proto)
	}
}

// FopOverhead measures the average per-operation overhead of the named
// fetch-and-op protocol (the Figure 3.15 baseline loop).
func FopOverhead(proto string, machineProcs, contenders, iters int) Time {
	return fopOverhead(seedOnly(), func(m *machine.Machine, nleaves int) fetchop.FetchOp {
		return MakeFop(m, proto, nleaves)
	}, machineProcs, contenders, iters)
}

// MultiLockElapsed runs one multiple-lock pattern under the named
// algorithm ("optimal", "test&set", "mcs-queue", or "reactive").
func MultiLockElapsed(patternIdx int, alg string, total int) Time {
	pat := Patterns()[patternIdx]
	return multiLockElapsed(seedOnly(), pat, total, func(m *machine.Machine, contenders, home int) spinlock.Lock {
		if alg == "optimal" {
			if contenders < 2 {
				return spinlock.NewTTS(m.Mem, home, spinlock.DefaultBackoff)
			}
			return spinlock.NewMCS(m.Mem, home)
		}
		return MakeLock(m, alg, home)
	})
}

// TimeVaryElapsed runs the time-varying contention test for the named
// algorithm.
func TimeVaryElapsed(alg string, periodLen, pctContention, periods int) Time {
	return timeVaryElapsed(seedOnly(), func(m *machine.Machine) spinlock.Lock {
		return makeLock(m, alg)
	}, periodLen, pctContention, periods)
}

// LockOverheadBroadcast is LockOverhead with the broadcast-invalidation
// ablation enabled.
func LockOverheadBroadcast(proto string, machineProcs, contenders, iters int) Time {
	return lockOverhead(seedOnly(), func(m *machine.Machine) spinlock.Lock {
		return makeLock(m, proto)
	}, machineProcs, contenders, iters, func(cfg *machine.Config) {
		cfg.Mem.Broadcast = true
	})
}

// LockOverheadFullMap is LockOverhead with the full-map (DirNNB) directory.
func LockOverheadFullMap(proto string, machineProcs, contenders, iters int) Time {
	return lockOverhead(seedOnly(), func(m *machine.Machine) spinlock.Lock {
		return makeLock(m, proto)
	}, machineProcs, contenders, iters, func(cfg *machine.Config) {
		cfg.Mem.HWPointers = -1
	})
}

// CombTreePatienceOverhead measures the combining tree with a given
// patience window (ablation of the design choice in DESIGN.md).
func CombTreePatienceOverhead(patience Time, machineProcs, contenders, iters int) Time {
	return fopOverhead(seedOnly(), func(m *machine.Machine, nleaves int) fetchop.FetchOp {
		return fetchop.NewCombTree(m.Mem, nleaves, patience)
	}, machineProcs, contenders, iters)
}

// CompetitiveWorstCaseRatio plays the Figure 3.14 adversary against the
// Borodin-Linial-Saks nearly-oblivious policy on the two-protocol task
// system: contention flips to disfavor the algorithm right after every
// switch. It returns on-line cost / off-line optimal cost, which the
// 3-competitive bound caps (asymptotically) at 3.
func CompetitiveWorstCaseRatio(requests int) float64 {
	sys := tasksys.ProtocolSystem(100, 100, 10, 10)
	alg := tasksys.NewNearlyOblivious(sys, 0)
	seq := make([]int, requests)
	for i := range seq {
		// Adversary: request the task that is expensive in the current state.
		task := 1
		if alg.State() == 1 {
			task = 0
		}
		seq[i] = task
		alg.Serve(task)
	}
	opt := sys.OfflineOptimal(seq, 0)
	if opt == 0 {
		return 0
	}
	return alg.Total() / opt
}

// Fig3_14CompetitiveAdversary tabulates CompetitiveWorstCaseRatio over
// increasing adversarial request counts, showing convergence toward the
// 3-competitive bound.
func Fig3_14CompetitiveAdversary(sz Sizes) *stats.Table {
	t := &stats.Table{Header: []string{"requests", "online/offline"}}
	for _, n := range []int{100, 500, 1000, 5000} {
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.3f", CompetitiveWorstCaseRatio(n)))
	}
	return t
}
