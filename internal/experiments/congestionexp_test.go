package experiments

import (
	"math/rand"
	"testing"

	"repro/reactive"
	"repro/reactive/modal"
	"repro/reactive/policy"
)

// TestCongestionInstanceDrivesSimAndNative proves the tentpole property:
// one policy.Congestion instance, unchanged, drives both halves of the
// repository through the same serialized Policy interface — first the
// simulator-style modal-engine trace (the registry experiment's drive),
// then, sequentially reinstalled, a native primitive's protocol
// selection. (Sequential reuse is the legal form of "the same instance";
// concurrent sharing between primitives is excluded by the Policy
// contract.)
func TestCongestionInstanceDrivesSimAndNative(t *testing.T) {
	pol := policy.NewCongestion()

	// Half 1: the simulator-style drive of the registry experiment.
	tab := reactive.FetchOpTable()
	var e modal.Engine
	e.SetPolicy(pol)
	sz := Tiny()
	rng := rand.New(rand.NewSource(int64(sz.Seed)))
	for _, ph := range modalPhases(sz) {
		for i := 0; i < ph.steps; i++ {
			stepModalEngine(&e, tab, rng, ph.p)
		}
	}
	if e.Switches() == 0 {
		t.Fatal("the contention trace must drive protocol changes through the congestion policy")
	}
	simSwitches := e.Switches()

	// Half 2: the identical instance installed in a native primitive.
	// The counter starts sharded; idle reconciling reads feed the policy
	// scale-down samples until it releases the switch back to CAS.
	c := reactive.NewCounter(
		reactive.WithPolicy(pol),
		reactive.WithInitialMode(reactive.ModeSharded),
	)
	const bound = 1 << 16
	ops := 0
	for c.Stats().Mode != reactive.ModeCAS {
		c.Add(1)
		c.Load()
		ops++
		if ops > bound {
			t.Fatalf("native counter never scaled down under the congestion policy (window %d, srtt %d)",
				pol.Window(), pol.SRTT())
		}
	}
	if got := c.Load(); got != int64(ops) {
		t.Fatalf("counter value %d after %d adds", got, ops)
	}
	if e.Switches() != simSwitches {
		t.Fatal("the native drive must not have touched the simulator engine")
	}
}
