package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fetchop"
	"repro/internal/machine"
	"repro/internal/spinlock"
	"repro/internal/waiting"
)

func mkTTS(m *machine.Machine) spinlock.Lock {
	return spinlock.NewTTS(m.Mem, 0, spinlock.DefaultBackoff)
}
func mkMCS(m *machine.Machine) spinlock.Lock { return spinlock.NewMCS(m.Mem, 0) }
func mkReactive(m *machine.Machine) spinlock.Lock {
	return core.NewReactiveLock(m.Mem, 0)
}

func TestBaselineShapeSpinLocks(t *testing.T) {
	// The Figure 3.15 crossover: TTS wins at 1 processor, MCS wins at 16;
	// the reactive lock tracks the winner within a modest factor at both
	// extremes.
	iters := 30
	tts1 := lockOverhead(seedOnly(), mkTTS, 32, 1, iters, nil)
	mcs1 := lockOverhead(seedOnly(), mkMCS, 32, 1, iters, nil)
	re1 := lockOverhead(seedOnly(), mkReactive, 32, 1, iters, nil)
	if !(tts1 < mcs1) {
		t.Errorf("P=1: tts %d should beat mcs %d", tts1, mcs1)
	}
	if float64(re1) > 1.5*float64(tts1) {
		t.Errorf("P=1: reactive %d too far above tts %d", re1, tts1)
	}
	tts16 := lockOverhead(seedOnly(), mkTTS, 32, 16, iters, nil)
	mcs16 := lockOverhead(seedOnly(), mkMCS, 32, 16, iters, nil)
	re16 := lockOverhead(seedOnly(), mkReactive, 32, 16, iters, nil)
	if !(mcs16 < tts16) {
		t.Errorf("P=16: mcs %d should beat tts %d", mcs16, tts16)
	}
	if float64(re16) > 1.6*float64(mcs16) {
		t.Errorf("P=16: reactive %d too far above mcs %d", re16, mcs16)
	}
}

func TestBaselineShapeFetchOp(t *testing.T) {
	// Figure 3.15 right: lock-based wins at P=1; the combining tree wins at
	// P=32; the reactive algorithm is near the winner at both.
	iters := 25
	mkTTSF := func(m *machine.Machine, _ int) fetchop.FetchOp { return fetchop.NewTTSLockFOP(m.Mem, 0) }
	mkTree := func(m *machine.Machine, n int) fetchop.FetchOp { return fetchop.NewCombTree(m.Mem, n, 0) }
	mkRe := func(m *machine.Machine, n int) fetchop.FetchOp { return core.NewReactiveFetchOp(m.Mem, 0, n) }
	l1 := fopOverhead(seedOnly(), mkTTSF, 32, 1, iters)
	t1 := fopOverhead(seedOnly(), mkTree, 32, 1, iters)
	r1 := fopOverhead(seedOnly(), mkRe, 32, 1, iters)
	if !(l1 < t1) {
		t.Errorf("P=1: lock-based %d should beat tree %d", l1, t1)
	}
	if float64(r1) > 2*float64(l1) {
		t.Errorf("P=1: reactive %d too far above lock-based %d", r1, l1)
	}
	// Longer run at P=32 so the reactive algorithm's TTS→QUEUE→TREE
	// transition transient amortizes (the paper measures steady state).
	l32 := fopOverhead(seedOnly(), mkTTSF, 32, 32, iters)
	t32 := fopOverhead(seedOnly(), mkTree, 32, 32, 80)
	r32 := fopOverhead(seedOnly(), mkRe, 32, 32, 80)
	if !(t32 < l32) {
		t.Errorf("P=32: tree %d should beat lock-based %d", t32, l32)
	}
	if float64(r32) > 1.6*float64(t32) {
		t.Errorf("P=32: reactive %d too far above tree %d", r32, t32)
	}
}

func TestDirNNBAblation(t *testing.T) {
	// Figure 3.2: the full-map directory reduces TTS overhead at high
	// contention but TTS still scales poorly (stays above MCS).
	iters := 25
	limitless := lockOverhead(seedOnly(), mkTTS, 32, 32, iters, nil)
	fullmap := lockOverhead(seedOnly(), mkTTS, 32, 32, iters, func(cfg *machine.Config) {
		cfg.Mem.HWPointers = -1
	})
	if fullmap >= limitless {
		t.Errorf("full-map (%d) should reduce TTS overhead vs LimitLESS (%d)", fullmap, limitless)
	}
	mcs := lockOverhead(seedOnly(), mkMCS, 32, 32, iters, nil)
	if fullmap <= mcs {
		t.Errorf("even full-map TTS (%d) should not beat MCS (%d) at 32 procs", fullmap, mcs)
	}
}

func TestMultiLockReactiveNearOptimal(t *testing.T) {
	// Section 3.5.3's headline: the reactive algorithm is within a small
	// factor of the simulated-optimal static assignment on mixed patterns.
	pat := Patterns()[0] // 1 lock x32 + 32 locks x1
	total := 2048
	opt := multiLockElapsed(seedOnly(), pat, total, func(m *machine.Machine, contenders, home int) spinlock.Lock {
		if contenders < 2 {
			return spinlock.NewTTS(m.Mem, home, spinlock.DefaultBackoff)
		}
		return spinlock.NewMCS(m.Mem, home)
	})
	re := multiLockElapsed(seedOnly(), pat, total, func(m *machine.Machine, _, home int) spinlock.Lock {
		return core.NewReactiveLock(m.Mem, home)
	})
	if float64(re) > 1.35*float64(opt) {
		t.Errorf("reactive %d vs optimal %d: more than 35%% off", re, opt)
	}
	// And the reactive lock beats at least one of the static choices.
	tas := multiLockElapsed(seedOnly(), pat, total, func(m *machine.Machine, _, home int) spinlock.Lock {
		return spinlock.NewTAS(m.Mem, home, spinlock.DefaultBackoff)
	})
	mcs := multiLockElapsed(seedOnly(), pat, total, func(m *machine.Machine, _, home int) spinlock.Lock {
		return spinlock.NewMCS(m.Mem, home)
	})
	if re > tas && re > mcs {
		t.Errorf("reactive %d worse than both static choices (tas %d, mcs %d)", re, tas, mcs)
	}
}

func TestTimeVaryingMixedContention(t *testing.T) {
	// Figure 3.21, 30-70%% contention band with long periods: the reactive
	// lock should beat or match both passive locks.
	mkTAS := func(m *machine.Machine) spinlock.Lock {
		return spinlock.NewTAS(m.Mem, 0, spinlock.DefaultBackoff)
	}
	periods := 3
	tas := timeVaryElapsed(seedOnly(), mkTAS, 4096, 50, periods)
	mcs := timeVaryElapsed(seedOnly(), mkMCS, 4096, 50, periods)
	re := timeVaryElapsed(seedOnly(), mkReactive, 4096, 50, periods)
	worst := tas
	if mcs > worst {
		worst = mcs
	}
	if re >= worst {
		t.Errorf("reactive %d should beat the worst static choice (tas %d, mcs %d)", re, tas, mcs)
	}
}

func TestTablesRender(t *testing.T) {
	sz := Quick()
	sz.BaselineProcs = []int{1, 4}
	sz.BaselineIters = 10
	sz.MultiLockTotal = 1024
	sz.TimeVaryPeriods = 2
	for name, tab := range map[string]interface{ String() string }{
		"table4.1": Table4_1BlockingCost(),
		"fig4.4":   Fig4_4ExpFactors(),
		"fig4.5":   Fig4_5UniformFactors(),
	} {
		if !strings.Contains(tab.String(), " ") {
			t.Errorf("%s rendered empty", name)
		}
	}
}

func TestWaitTablesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("wait tables are slow")
	}
	sz := Quick()
	out := Fig4_13Barrier(sz).String()
	if !strings.Contains(out, "jacobi-bar") || !strings.Contains(out, "cgrad") {
		t.Fatalf("barrier table:\n%s", out)
	}
	out = Fig4_14Mutex(sz).String()
	if !strings.Contains(out, "fibheap") {
		t.Fatalf("mutex table:\n%s", out)
	}
}

func TestTwoPhaseNearBestInApps(t *testing.T) {
	// The thesis's robustness claim (Section 4.7.2): two-phase waiting is
	// close to the best static choice on each benchmark class. Verified on
	// the future-stream benchmark, where spin and block differ sharply.
	sz := Quick()
	bench := producerConsumerBenches(sz)[1] // future-stream
	costs := threadsCosts()
	spin := bench.run(sz, &waiting.AlwaysSpin{})
	block := bench.run(sz, &waiting.AlwaysBlock{})
	two := bench.run(sz, waiting.NewTwoPhaseAlpha(0.54, costs))
	best := spin
	if block < best {
		best = block
	}
	if float64(two) > 1.35*float64(best) {
		t.Errorf("2phase %d more than 35%% above best static %d (spin %d, block %d)", two, best, spin, block)
	}
}

func TestWaitProfilesProduceData(t *testing.T) {
	if testing.Short() {
		t.Skip("profiles are slow")
	}
	sz := Quick()
	profs := WaitProfiles(sz)
	if len(profs) < 7 {
		t.Fatalf("only %d profiles", len(profs))
	}
	for _, p := range profs {
		if p.Sample.N() == 0 {
			t.Errorf("profile %q has no observations", p.Name)
		}
	}
}
