package experiments

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/reactive"
	"repro/reactive/policy"
)

// NativeResult is one wall-clock measurement of a native (non-simulated)
// synchronization primitive: the adoptable reactive library benchmarked
// against its standard-library baseline. Unlike the simulator experiments
// these numbers are host-dependent and non-deterministic; they are tracked
// alongside the deterministic matrix in bench_results.json so the library's
// trajectory is measured, not just the simulator's.
type NativeResult struct {
	// Name is primitive/workload/implementation, e.g.
	// "mutex/contended/reactive".
	Name       string  `json:"name"`
	Goroutines int     `json:"goroutines"`
	Ops        int     `json:"ops"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// nativeOps is the per-measurement operation count: large enough to touch
// both protocols of every adaptive primitive, small enough for a CI smoke
// job.
const nativeOps = 100_000

// controlSink defeats dead-code elimination of the control/spin-loop row.
var controlSink atomic.Uint64

// measureNative times fn doing ops operations split across n goroutines.
func measureNative(name string, n int, fn func(per int)) NativeResult {
	per := nativeOps / n
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(per)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	ops := per * n
	return NativeResult{
		Name:       name,
		Goroutines: n,
		Ops:        ops,
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(ops),
	}
}

// NativePrimitives measures the reactive library's Mutex, Counter,
// RWMutex, and FetchOp against sync.Mutex, atomic.Int64, and
// sync.RWMutex, uncontended (one goroutine) and contended (2×GOMAXPROCS
// goroutines), plus a mixed update+read fetch-op workload exercising the
// combining protocol's regime.
func NativePrimitives() []NativeResult {
	contenders := 2 * runtime.GOMAXPROCS(0)
	if contenders < 2 {
		contenders = 2
	}
	var out []NativeResult
	for _, w := range []struct {
		name string
		n    int
	}{
		{"uncontended", 1},
		{"contended", contenders},
	} {
		var rm reactive.Mutex
		out = append(out, measureNative("mutex/"+w.name+"/reactive", w.n, func(per int) {
			for i := 0; i < per; i++ {
				rm.Lock()
				rm.Unlock()
			}
		}))
		var sm sync.Mutex
		out = append(out, measureNative("mutex/"+w.name+"/sync.Mutex", w.n, func(per int) {
			for i := 0; i < per; i++ {
				sm.Lock()
				sm.Unlock()
			}
		}))
		var rc reactive.Counter
		out = append(out, measureNative("counter/"+w.name+"/reactive", w.n, func(per int) {
			for i := 0; i < per; i++ {
				rc.Add(1)
			}
		}))
		var ai atomic.Int64
		out = append(out, measureNative("counter/"+w.name+"/atomic.Int64", w.n, func(per int) {
			for i := 0; i < per; i++ {
				ai.Add(1)
			}
		}))
		var rrw reactive.RWMutex
		out = append(out, measureNative("rwmutex/"+w.name+"/reactive", w.n, func(per int) {
			for i := 0; i < per; i++ {
				rrw.RLock()
				rrw.RUnlock()
			}
		}))
		var srw sync.RWMutex
		out = append(out, measureNative("rwmutex/"+w.name+"/sync.RWMutex", w.n, func(per int) {
			for i := 0; i < per; i++ {
				srw.RLock()
				srw.RUnlock()
			}
		}))
		rf := reactive.NewFetchOp(func(a, b int64) int64 { return a + b }, 0)
		out = append(out, measureNative("fetchop/"+w.name+"/reactive", w.n, func(per int) {
			for i := 0; i < per; i++ {
				rf.Apply(1)
			}
		}))
		var af atomic.Int64
		out = append(out, measureNative("fetchop/"+w.name+"/atomic.Int64", w.n, func(per int) {
			for i := 0; i < per; i++ {
				af.Add(1)
			}
		}))
	}
	// Context-aware acquisition rows. The uncontended LockCtx(Background)
	// row is the wrapper-cost regression gate (it must track the plain
	// mutex/uncontended row), and the cancel-churn row keeps the waiter
	// queue's handoff-or-abandon path — short TryLockFor attempts expiring
	// against contended handoffs — on the measured trajectory.
	var cm reactive.Mutex
	bg := context.Background()
	out = append(out, measureNative("mutex/lockctx-uncontended/reactive", 1, func(per int) {
		for i := 0; i < per; i++ {
			if cm.LockCtx(bg) == nil {
				cm.Unlock()
			}
		}
	}))
	churn := reactive.New(reactive.WithPollIters(4)) // park quickly
	out = append(out, measureNative("mutex/cancel-churn/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			if i%8 == 0 {
				if churn.TryLockFor(50 * time.Microsecond) {
					churn.Unlock()
				}
			} else {
				churn.Lock()
				churn.Unlock()
			}
		}
	}))
	// Forced-regime fast paths: primitives started in their scalable
	// protocols with WithInitialMode, so the sharded/combining fast
	// paths are measured even on hosts whose parallelism never triggers
	// detection (a GOMAXPROCS=1 CI runner leaves every adaptive
	// primitive in its cheap protocol). These rows are the regression
	// gate for the per-P affinity substrate: they go through pin →
	// per-P cell/slot → atomic op → unpin on every operation.
	sc := reactive.NewCounter(reactive.WithInitialMode(reactive.ModeSharded))
	out = append(out, measureNative("counter/sharded-forced/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			sc.Add(1)
		}
	}))
	sf := reactive.NewFetchOp(func(a, b int64) int64 { return a + b }, 0,
		reactive.WithInitialMode(reactive.ModeSharded))
	out = append(out, measureNative("fetchop/sharded-forced/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			sf.Apply(1)
		}
	}))
	// Combining regime with reconciling reads; the huge empty limit
	// keeps the idle-sweep detection from demoting the protocol
	// mid-measurement on a serial host (votes are still counted, so the
	// detection cost stays on the measured path).
	cf := reactive.NewFetchOp(func(a, b int64) int64 { return a + b }, 0,
		reactive.WithInitialMode(reactive.ModeCombining), reactive.WithEmptyLimit(1<<30))
	out = append(out, measureNative("fetchop/combining-forced/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			cf.Apply(1)
			if i%64 == 0 {
				cf.Value()
			}
		}
	}))
	// Congestion-policy rows, one per primitive: the cheap paths
	// (uncontended Lock/RLock, where the policy's Quiescent state lets
	// the primitive elide its bookkeeping) and the forced sharded fast
	// paths with policy.Congestion installed in place of the streak
	// detection. Apply/Add-only sharded traffic generates no scale-down
	// votes, so the forced rows stay mode-stable on any host; any drift
	// against the policy-free counterparts is the price of carrying the
	// feedback-control policy.
	cgm := reactive.New(reactive.WithPolicy(policy.NewCongestion()))
	out = append(out, measureNative("mutex/uncontended-congestion/reactive", 1, func(per int) {
		for i := 0; i < per; i++ {
			cgm.Lock()
			cgm.Unlock()
		}
	}))
	cgrw := reactive.NewRWMutex(reactive.WithPolicy(policy.NewCongestion()))
	out = append(out, measureNative("rwmutex/read-uncontended-congestion/reactive", 1, func(per int) {
		for i := 0; i < per; i++ {
			cgrw.RLock()
			cgrw.RUnlock()
		}
	}))
	scc := reactive.NewCounter(reactive.WithInitialMode(reactive.ModeSharded),
		reactive.WithPolicy(policy.NewCongestion()))
	out = append(out, measureNative("counter/sharded-forced-congestion/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			scc.Add(1)
		}
	}))
	sfc := reactive.NewFetchOp(func(a, b int64) int64 { return a + b }, 0,
		reactive.WithInitialMode(reactive.ModeSharded),
		reactive.WithPolicy(policy.NewCongestion()))
	out = append(out, measureNative("fetchop/sharded-forced-congestion/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			sfc.Apply(1)
		}
	}))
	srrw := reactive.NewRWMutex(reactive.WithInitialMode(reactive.ModeSharded))
	out = append(out, measureNative("rwmutex/read-sharded-forced/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			srrw.RLock()
			srrw.RUnlock()
		}
	}))
	// Epoch-forced rows: the third registration protocol, whose read
	// side publishes only a per-P epoch stamp and *loads* one shared
	// gate word without ever storing to shared state. Read-only traffic
	// generates no grace periods, so the mode is stable mid-measurement
	// on any host; the congestion variant swaps the streak detection for
	// the feedback-control policy as the other -congestion rows do.
	erw := reactive.NewRWMutex(reactive.WithInitialReaderMode(reactive.ModeEpoch))
	out = append(out, measureNative("rwmutex/read-epoch-forced/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			erw.RLock()
			erw.RUnlock()
		}
	}))
	erwc := reactive.NewRWMutex(reactive.WithInitialReaderMode(reactive.ModeEpoch),
		reactive.WithPolicy(policy.NewCongestion()))
	out = append(out, measureNative("rwmutex/read-epoch-forced-congestion/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			erwc.RLock()
			erwc.RUnlock()
		}
	}))
	// Read-heavy parallel pressure with occasional writers: the regime
	// RWMutex's sharded reader registration targets (parallel RLocks
	// that would otherwise serialize on one centralized cache line,
	// with enough writer drains to keep the whole protocol honest).
	var rrw reactive.RWMutex
	out = append(out, measureNative("rwmutex/read-heavy/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			if i%128 == 127 {
				rrw.Lock()
				rrw.Unlock()
			} else {
				rrw.RLock()
				rrw.RUnlock()
			}
		}
	}))
	var srw sync.RWMutex
	out = append(out, measureNative("rwmutex/read-heavy/sync.RWMutex", contenders, func(per int) {
		for i := 0; i < per; i++ {
			if i%128 == 127 {
				srw.Lock()
				srw.Unlock()
			} else {
				srw.RLock()
				srw.RUnlock()
			}
		}
	}))
	// Adaptive map rows: lookups against a warm 128-key table in each of
	// the three protocols, against sync.Map and a plain mutex-guarded map.
	// The forcing options pin each protocol for the duration (a huge
	// SpinFailLimit blocks promotion, a huge EmptyLimit blocks demotion)
	// so every row measures one protocol's read path, not a mode mix.
	const mapKeys = 128
	fillMap := func(m *reactive.Map[uint64, uint64]) *reactive.Map[uint64, uint64] {
		for k := uint64(0); k < mapKeys; k++ {
			m.Put(k, k)
		}
		return m
	}
	lm := fillMap(reactive.NewMap[uint64, uint64](reactive.WithSpinFailLimit(1 << 30)))
	out = append(out, measureNative("map/get-locked/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			lm.Get(uint64(i) % mapKeys)
		}
	}))
	shm := fillMap(reactive.NewMap[uint64, uint64](reactive.WithInitialMode(reactive.ModeSharded),
		reactive.WithSpinFailLimit(1<<30), reactive.WithEmptyLimit(1<<30)))
	out = append(out, measureNative("map/get-sharded-forced/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			shm.Get(uint64(i) % mapKeys)
		}
	}))
	em := fillMap(reactive.NewMap[uint64, uint64](reactive.WithInitialMode(reactive.ModeEpoch),
		reactive.WithEmptyLimit(1<<30)))
	out = append(out, measureNative("map/get-epoch-forced/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			em.Get(uint64(i) % mapKeys)
		}
	}))
	var sym sync.Map
	for k := uint64(0); k < mapKeys; k++ {
		sym.Store(k, k)
	}
	out = append(out, measureNative("map/get/sync.Map", contenders, func(per int) {
		for i := 0; i < per; i++ {
			sym.Load(uint64(i) % mapKeys)
		}
	}))
	mum := make(map[uint64]uint64, mapKeys)
	for k := uint64(0); k < mapKeys; k++ {
		mum[k] = k
	}
	var mumLock sync.Mutex
	out = append(out, measureNative("map/get/mutex-map", contenders, func(per int) {
		for i := 0; i < per; i++ {
			mumLock.Lock()
			_ = mum[uint64(i)%mapKeys]
			mumLock.Unlock()
		}
	}))
	// Control rows: stdlib-only workloads whose cost cannot be changed by
	// anything in this repository. benchcmp reports them but never gates
	// them; with -normalize their drift ratio is divided out of the gated
	// rows, so a slower/faster CI host does not masquerade as a library
	// regression.
	out = append(out, measureNative("control/spin-loop", 1, func(per int) {
		x := uint64(1)
		for i := 0; i < per; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
		}
		controlSink.Store(x)
	}))
	var ctlMu sync.Mutex
	out = append(out, measureNative("control/sync.Mutex", contenders, func(per int) {
		for i := 0; i < per; i++ {
			ctlMu.Lock()
			ctlMu.Unlock()
		}
	}))
	var ctlAdd atomic.Int64
	out = append(out, measureNative("control/atomic.Int64", contenders, func(per int) {
		for i := 0; i < per; i++ {
			ctlAdd.Add(1)
		}
	}))
	// Mixed update+read pressure: the regime FetchOp's combining protocol
	// targets (heavy Applies with frequent reconciling Values).
	rf := reactive.NewFetchOp(func(a, b int64) int64 { return a + b }, 0)
	out = append(out, measureNative("fetchop/mixed/reactive", contenders, func(per int) {
		for i := 0; i < per; i++ {
			rf.Apply(1)
			if i%64 == 0 {
				rf.Value()
			}
		}
	}))
	var af atomic.Int64
	out = append(out, measureNative("fetchop/mixed/atomic.Int64", contenders, func(per int) {
		for i := 0; i < per; i++ {
			af.Add(1)
			if i%64 == 0 {
				af.Load()
			}
		}
	}))
	return out
}
