package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/spinlock"
	"repro/internal/stats"
	"repro/reactive/policy"
)

// timeVaryElapsed runs the time-varying contention test of Section 3.5.4
// (Figure 3.20) on a 16-processor machine: each period consists of a
// low-contention phase (one processor; 10-cycle critical sections, 20-cycle
// think) and a high-contention phase (16 processors; 100-cycle critical
// sections, 250-cycle think). periodLen is the number of lock acquisitions
// per period; pctContention the percentage acquired under high contention.
func timeVaryElapsed(sz Sizes, mk func(m *machine.Machine) spinlock.Lock, periodLen, pctContention, periods int) Time {
	const procs = 16
	m := sz.NewMachine(procs, nil)
	l := mk(m)
	high := periodLen * pctContention / 100
	low := periodLen - high
	perHigh := high / procs
	if perHigh == 0 && high > 0 {
		perHigh = 1
	}

	// Phase coordination via engine-serialized Go state.
	phase := 0 // increments after each half-period
	arrived := 0
	var end Time
	barrier := func(c *machine.CPU, parties int) {
		my := phase
		arrived++
		if arrived == parties {
			arrived = 0
			phase++
			return
		}
		for phase == my {
			c.Advance(50)
		}
	}
	for p := 0; p < procs; p++ {
		p := p
		m.SpawnCPU(p, 0, "w", func(c *machine.CPU) {
			for per := 0; per < periods; per++ {
				// Low-contention phase: processor 0 only.
				if p == 0 {
					for i := 0; i < low; i++ {
						h := l.Acquire(c)
						c.Advance(10)
						l.Release(c, h)
						c.Advance(20)
					}
				}
				barrier(c, procs)
				// High-contention phase: everyone.
				for i := 0; i < perHigh; i++ {
					h := l.Acquire(c)
					c.Advance(100)
					l.Release(c, h)
					c.Advance(250)
				}
				barrier(c, procs)
			}
			if c.Now() > end {
				end = c.Now()
			}
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return end
}

// timeVaryTable runs the time-varying test for the given algorithms across
// period lengths and contention mixes, normalizing to the MCS queue lock.
func timeVaryTable(sz Sizes, algs []struct {
	name string
	mk   func(m *machine.Machine) spinlock.Lock
}) *stats.Table {
	t := &stats.Table{Header: []string{"%cont", "period"}}
	for _, a := range algs {
		t.Header = append(t.Header, a.name)
	}
	periodLens := []int{256, 1024, 4096}
	for _, pct := range []int{10, 50, 90} {
		for _, pl := range periodLens {
			row := []string{fmt.Sprintf("%d", pct), fmt.Sprintf("%d", pl)}
			var mcs Time
			for i, a := range algs {
				el := timeVaryElapsed(sz, a.mk, pl, pct, sz.TimeVaryPeriods)
				if i == 0 {
					mcs = el
					row = append(row, "1.00")
					continue
				}
				row = append(row, fmt.Sprintf("%.2f", float64(el)/float64(mcs)))
			}
			t.AddRow(row...)
		}
	}
	return t
}

// Fig3_21TimeVarying regenerates Figure 3.21: test&set, MCS and the
// reactive lock (always-switch policy) under time-varying contention,
// normalized to MCS.
func Fig3_21TimeVarying(sz Sizes) *stats.Table {
	return timeVaryTable(sz, []struct {
		name string
		mk   func(m *machine.Machine) spinlock.Lock
	}{
		{"mcs-queue", func(m *machine.Machine) spinlock.Lock { return spinlock.NewMCS(m.Mem, 0) }},
		{"test&set", func(m *machine.Machine) spinlock.Lock {
			return spinlock.NewTAS(m.Mem, 0, spinlock.DefaultBackoff)
		}},
		{"reactive-always", func(m *machine.Machine) spinlock.Lock { return core.NewReactiveLock(m.Mem, 0) }},
	})
}

// Fig3_22Competitive regenerates Figure 3.22: the always-switch policy
// versus the 3-competitive policy (switch when the cumulative residual
// exceeds the 8800-cycle round-trip switching cost).
func Fig3_22Competitive(sz Sizes) *stats.Table {
	return timeVaryTable(sz, []struct {
		name string
		mk   func(m *machine.Machine) spinlock.Lock
	}{
		{"mcs-queue", func(m *machine.Machine) spinlock.Lock { return spinlock.NewMCS(m.Mem, 0) }},
		{"reactive-always", func(m *machine.Machine) spinlock.Lock { return core.NewReactiveLock(m.Mem, 0) }},
		{"reactive-3competitive", func(m *machine.Machine) spinlock.Lock {
			l := core.NewReactiveLock(m.Mem, 0)
			l.Policy = policy.NewCompetitive(8800)
			return l
		}},
	})
}

// Fig3_23Hysteresis regenerates Figure 3.23: hysteresis policies
// Hysteresis(20,55), Hysteresis(500,4) and Hysteresis(4,500).
func Fig3_23Hysteresis(sz Sizes) *stats.Table {
	mkHyst := func(x, y uint64) func(m *machine.Machine) spinlock.Lock {
		return func(m *machine.Machine) spinlock.Lock {
			l := core.NewReactiveLock(m.Mem, 0)
			l.Policy = policy.NewHysteresis(x, y)
			return l
		}
	}
	return timeVaryTable(sz, []struct {
		name string
		mk   func(m *machine.Machine) spinlock.Lock
	}{
		{"mcs-queue", func(m *machine.Machine) spinlock.Lock { return spinlock.NewMCS(m.Mem, 0) }},
		{"hysteresis(20,55)", mkHyst(20, 55)},
		{"hysteresis(500,4)", mkHyst(500, 4)},
		{"hysteresis(4,500)", mkHyst(4, 500)},
	})
}
