package experiments

// Native Map modal experiment: a deterministic drive of the
// reactive/modal engine over the adaptive hash map's 3-mode chain (one
// locked table ↔ per-shard locks ↔ published immutable table). Like
// the fetch-op and RWMutex traces, this exercises the pure
// protocol-selection state machine on a seeded synthetic contention
// trace, so its table is bit-deterministic and participates in the
// registry's serial==parallel contract.

import (
	"fmt"
	"math/rand"

	"repro/internal/stats"
	"repro/reactive"
	"repro/reactive/modal"
)

// Native Map engine mode indices (reactive.MapTable's contract: 0 =
// ModeLocked, 1 = ModeSharded, 2 = ModeEpoch).
const (
	amLocked  modal.Mode = 0
	amSharded modal.Mode = 1
	amEpoch   modal.Mode = 2
)

// amModeName renders a Map engine index as its public mode name.
func amModeName(m modal.Mode) string {
	switch m {
	case amLocked:
		return reactive.ModeLocked.String()
	case amSharded:
		return reactive.ModeSharded.String()
	default:
		return reactive.ModeEpoch.String()
	}
}

// amReadFrac is the trace's read mix: the fraction of contended sharded
// operations that are lookups. Only contended *reads* vote the sharded
// store up to the epoch protocol (Map.noteSharded's wiring — promoting
// a write-heavy map would tax every write with a grace period), so the
// trace models the read-mostly workload the epoch mode exists for.
const amReadFrac = 0.9

// stepMapEngine feeds the engine one synthetic detection event drawn
// from contention level p, emulating Map's detection wiring: in the
// locked mode, p is the probability an operation found the single
// writer lock held (vote toward shards); in the sharded mode an
// uncontended operation confirms the up-edge and votes down toward the
// locked table, while a contended operation breaks the down-streak and
// — when it is a read (probability amReadFrac) — votes up toward the
// epoch protocol; in the epoch mode, 1-p is the probability a writer's
// grace period completes with no reader stamped (vote back toward
// shards), p that active stamps confirm the protocol. Streak limits
// are the package defaults, as in the primitive: SpinFailLimit on
// up-edges, EmptyLimit on down-edges.
func stepMapEngine(e *modal.Engine, t *modal.Table, rng *rand.Rand, p float64) {
	const (
		failLimit  = reactive.DefaultSpinFailLimit
		emptyLimit = reactive.DefaultEmptyLimit
	)
	u := rng.Float64()
	switch e.Mode() {
	case amLocked:
		if u < p {
			if e.Vote(t, amLocked, amSharded, failLimit) {
				e.TryCommit(t, amLocked, amSharded)
			}
		} else {
			e.Good(t, amLocked, amSharded)
		}
	case amSharded:
		if u >= p {
			e.Good(t, amSharded, amEpoch)
			if e.Vote(t, amSharded, amLocked, emptyLimit) {
				e.TryCommit(t, amSharded, amLocked)
			}
			return
		}
		e.Good(t, amSharded, amLocked)
		if rng.Float64() < amReadFrac {
			if e.Vote(t, amSharded, amEpoch, failLimit) {
				e.TryCommit(t, amSharded, amEpoch)
			}
		} else {
			e.Good(t, amSharded, amEpoch)
		}
	default: // amEpoch
		if u >= p {
			if e.Vote(t, amEpoch, amSharded, emptyLimit) {
				e.TryCommit(t, amEpoch, amSharded)
			}
		} else {
			e.Good(t, amEpoch, amSharded)
		}
	}
}

// NativeMapTrace tabulates the adaptive map's 3-mode chain across the
// shared contention trace, one row per phase: the idle phases hold the
// single locked table, the ramp promotes to shards, read saturation
// pushes through shards into the published-table epoch protocol, and
// the cooldown/quiet phases walk the chain back down — the
// no-shortcut-edge contract means the engine always passes through
// sharded between the locked table and the epoch protocol, in both
// directions.
func NativeMapTrace(sz Sizes) *stats.Table {
	tab := reactive.MapTable()
	var e modal.Engine
	rng := rand.New(rand.NewSource(int64(sz.Seed)))
	t := &stats.Table{Header: []string{"phase", "contention", "end-mode", "%locked", "%sharded", "%epoch", "switches"}}
	for _, ph := range modalPhases(sz) {
		var residency [3]int
		before := e.Switches()
		for i := 0; i < ph.steps; i++ {
			stepMapEngine(&e, tab, rng, ph.p)
			residency[e.Mode()]++
		}
		total := residency[0] + residency[1] + residency[2]
		pct := func(m modal.Mode) string {
			if total == 0 {
				return "0.0"
			}
			return fmt.Sprintf("%.1f", 100*float64(residency[m])/float64(total))
		}
		t.AddRow(ph.name, fmt.Sprintf("%.2f", ph.p), amModeName(e.Mode()),
			pct(amLocked), pct(amSharded), pct(amEpoch),
			fmt.Sprintf("%d", e.Switches()-before))
	}
	return t
}
