// Package tasksys implements the Borodin-Linial-Saks task systems of
// Chapter 2: n states, m tasks, a state-transition cost matrix D and a task
// cost matrix C. It provides an optimal off-line solver (dynamic
// programming over the request sequence) and the two-state
// "nearly oblivious" on-line algorithm whose protocol-selection instance is
// the thesis's 3-competitive switching policy (Section 3.4.1).
package tasksys

import (
	"fmt"
	"math"
)

// System is a task system: D[i][j] is the cost of moving from state i to
// state j; C[i][k] is the cost of processing task k in state i.
type System struct {
	D [][]float64
	C [][]float64
}

// New validates and builds a task system.
func New(d, c [][]float64) (*System, error) {
	n := len(d)
	if n == 0 {
		return nil, fmt.Errorf("tasksys: no states")
	}
	for i, row := range d {
		if len(row) != n {
			return nil, fmt.Errorf("tasksys: D row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if len(c) != n {
		return nil, fmt.Errorf("tasksys: C has %d rows, want %d", len(c), n)
	}
	m := len(c[0])
	for i, row := range c {
		if len(row) != m {
			return nil, fmt.Errorf("tasksys: C row %d has %d entries, want %d", i, len(row), m)
		}
	}
	return &System{D: d, C: c}, nil
}

// States returns n, the number of states.
func (s *System) States() int { return len(s.D) }

// Tasks returns m, the number of task types.
func (s *System) Tasks() int { return len(s.C[0]) }

// OfflineOptimal returns the minimum total cost of serving seq starting in
// state start, for a lookahead-one system (the algorithm may change state
// before serving each request). Standard DP over (position, state).
func (s *System) OfflineOptimal(seq []int, start int) float64 {
	n := s.States()
	cur := make([]float64, n)
	for i := range cur {
		if i == start {
			cur[i] = 0
		} else {
			cur[i] = math.Inf(1)
		}
	}
	next := make([]float64, n)
	for _, task := range seq {
		for j := 0; j < n; j++ {
			best := math.Inf(1)
			for i := 0; i < n; i++ {
				v := cur[i] + s.D[i][j] + s.C[j][task]
				if v < best {
					best = v
				}
			}
			next[j] = best
		}
		cur, next = next, cur
	}
	best := math.Inf(1)
	for _, v := range cur {
		if v < best {
			best = v
		}
	}
	return best
}

// NearlyOblivious is the Borodin-Linial-Saks on-line algorithm for
// two-state task systems: accumulate task cost in the current state; when
// the accumulated cost since entering the state reaches the round-trip
// transition cost D[i][j] + D[j][i], move to the other state (before
// serving the triggering request — lookahead one). It is
// (2n−1) = 3-competitive.
type NearlyOblivious struct {
	sys   *System
	state int
	accum float64
	total float64
}

// NewNearlyOblivious creates the on-line algorithm in state start.
// The system must have exactly two states.
func NewNearlyOblivious(s *System, start int) *NearlyOblivious {
	if s.States() != 2 {
		panic("tasksys: NearlyOblivious requires a two-state system")
	}
	return &NearlyOblivious{sys: s, state: start}
}

// State returns the current state.
func (a *NearlyOblivious) State() int { return a.state }

// Total returns the cost incurred so far.
func (a *NearlyOblivious) Total() float64 { return a.total }

// Serve processes one task (lookahead-one: the state may change first) and
// returns the cost charged for it.
func (a *NearlyOblivious) Serve(task int) float64 {
	other := 1 - a.state
	roundTrip := a.sys.D[a.state][other] + a.sys.D[other][a.state]
	// Would serving this task push the accumulated cost to the bound?
	if a.accum+a.sys.C[a.state][task] >= roundTrip {
		a.total += a.sys.D[a.state][other]
		a.state = other
		a.accum = 0
	}
	cost := a.sys.C[a.state][task]
	a.accum += cost
	a.total += cost
	return cost
}

// ServeAll processes a request sequence and returns the total on-line cost.
func (a *NearlyOblivious) ServeAll(seq []int) float64 {
	for _, t := range seq {
		a.Serve(t)
	}
	return a.total
}

// ProtocolSystem builds the two-protocol task system of Figure 3.13:
// protocol A is optimal under low contention, protocol B under high;
// residual costs cAHigh and cBLow, switching costs dAB and dBA.
// Task 0 = low-contention request, task 1 = high-contention request.
func ProtocolSystem(dAB, dBA, cAHigh, cBLow float64) *System {
	s, err := New(
		[][]float64{{0, dAB}, {dBA, 0}},
		[][]float64{{0, cAHigh}, {cBLow, 0}},
	)
	if err != nil {
		panic(err)
	}
	return s
}

// PollSignalSystem builds the waiting task system of Figure 4.2: state 0 =
// polling, state 1 = signaling; task 0 = wait (one time unit), task 1 =
// proceed. Polling costs 1/beta per wait tick; signaling costs B once (we
// charge it on the transition) and 0 per wait tick; proceeding in the
// signaling state is prohibitively expensive, forcing a return to polling.
func PollSignalSystem(b, beta float64) *System {
	const inf = 1e18
	s, err := New(
		[][]float64{{0, b}, {0, 0}},
		[][]float64{{1 / beta, 0}, {0, inf}},
	)
	if err != nil {
		panic(err)
	}
	return s
}
