package tasksys

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestOfflineOptimalSimple(t *testing.T) {
	s := ProtocolSystem(10, 10, 5, 5)
	// All low-contention requests: stay in A forever, cost 0.
	seq := make([]int, 100)
	if got := s.OfflineOptimal(seq, 0); got != 0 {
		t.Fatalf("all-low cost = %f, want 0", got)
	}
	// All high: switch once (10) and serve free.
	for i := range seq {
		seq[i] = 1
	}
	if got := s.OfflineOptimal(seq, 0); got != 10 {
		t.Fatalf("all-high cost = %f, want 10", got)
	}
	// Two highs only: cheaper to eat the residual (2*5=10) or switch (10).
	if got := s.OfflineOptimal([]int{1, 1}, 0); got != 10 {
		t.Fatalf("two-high cost = %f, want 10", got)
	}
}

func TestNearlyObliviousWorstCase(t *testing.T) {
	// Figure 3.14's adversarial scenario: contention flips to disfavor the
	// algorithm right after each switch. The on-line cost must stay within
	// 3x optimal plus an additive constant.
	s := ProtocolSystem(100, 100, 10, 10)
	a := NewNearlyOblivious(s, 0)
	var seq []int
	state := 0
	for i := 0; i < 5000; i++ {
		// Adversary: request the task that is expensive in a's state.
		task := 1 - 0
		if a.State() == 0 {
			task = 1
		} else {
			task = 0
		}
		a.Serve(task)
		seq = append(seq, task)
		_ = state
	}
	opt := s.OfflineOptimal(seq, 0)
	if a.Total() > 3*opt+200+1e-9 {
		t.Fatalf("on-line %f > 3*opt %f + const", a.Total(), 3*opt)
	}
	// And the adversary really did hurt: on-line should be near 3x.
	if a.Total() < 2.4*opt {
		t.Fatalf("worst case too gentle: on-line %f vs opt %f", a.Total(), opt)
	}
}

func TestNearlyObliviousCompetitiveProperty(t *testing.T) {
	// Property: for random request sequences, cost ≤ 3*opt + additive
	// constant (2n-1 = 3 for two states).
	f := func(raw []bool, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		r := sim.NewRand(seed)
		dAB := float64(r.Intn(50) + 1)
		dBA := float64(r.Intn(50) + 1)
		s := ProtocolSystem(dAB, dBA, float64(r.Intn(20)+1), float64(r.Intn(20)+1))
		seq := make([]int, len(raw))
		for i, b := range raw {
			if b {
				seq[i] = 1
			}
		}
		a := NewNearlyOblivious(s, 0)
		on := a.ServeAll(seq)
		opt := s.OfflineOptimal(seq, 0)
		const additive = 300 // covers one partial accumulation window
		return on <= 3*opt+additive+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPollSignalSystem(t *testing.T) {
	// A short wait (5 ticks) then proceed: optimal polls throughout.
	s := PollSignalSystem(500, 1)
	seq := make([]int, 6)
	seq[5] = 1 // proceed
	opt := s.OfflineOptimal(seq, 0)
	if opt != 5 {
		t.Fatalf("short-wait opt = %f, want 5 (pure polling)", opt)
	}
	// A long wait (10000 ticks): optimal signals, cost B = 500.
	long := make([]int, 10001)
	long[10000] = 1
	// The system must return to polling to serve the proceed task.
	opt = s.OfflineOptimal(long, 0)
	if opt != 500 {
		t.Fatalf("long-wait opt = %f, want 500 (signal once)", opt)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("empty system accepted")
	}
	if _, err := New([][]float64{{0, 1}}, [][]float64{{1}}); err == nil {
		t.Fatal("ragged D accepted")
	}
	if _, err := New([][]float64{{0, 1}, {1, 0}}, [][]float64{{1}}); err == nil {
		t.Fatal("C with wrong rows accepted")
	}
}
