// Package policy implements the protocol-switching policies of Section 3.4:
// always-switch, the 3-competitive policy derived from the
// Borodin-Linial-Saks task-system algorithm, hysteresis(x, y), and a
// weighted-average (aging) policy.
//
// A reactive algorithm's detection machinery classifies each
// synchronization request as served by an optimal or sub-optimal protocol
// (with an estimated residual cost); the policy decides *when* to act on a
// run of sub-optimal observations by actually changing protocols.
package policy

// Direction distinguishes which way a prospective protocol change goes
// (e.g. 0 = cheap→scalable when contention appears, 1 = scalable→cheap when
// contention disappears). Hysteresis policies use per-direction thresholds.
type Direction int

// Policy decides when a reactive algorithm should change protocols.
// Implementations are not safe for concurrent use by real OS threads; in
// the simulation all calls are serialized by the event engine, and in the
// reactive algorithms all calls occur while holding the consensus object.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Suboptimal records one request served while the current protocol was
	// sub-optimal; residual is the extra cost versus the better protocol.
	// It returns true if the algorithm should switch protocols now.
	Suboptimal(dir Direction, residual uint64) bool
	// Optimal records one request served by the optimal protocol.
	Optimal(dir Direction)
	// Switched informs the policy that a protocol change was carried out.
	Switched()
}

// AlwaysSwitch changes protocols immediately upon detecting that the
// current protocol is sub-optimal — the default policy of the reactive
// algorithms (Section 3.4). Best tracking, but can thrash if contention
// oscillates faster than the cost of changing protocols.
type AlwaysSwitch struct{}

// Name implements Policy.
func (AlwaysSwitch) Name() string { return "always" }

// Suboptimal implements Policy.
func (AlwaysSwitch) Suboptimal(Direction, uint64) bool { return true }

// Optimal implements Policy.
func (AlwaysSwitch) Optimal(Direction) {}

// Switched implements Policy.
func (AlwaysSwitch) Switched() {}

// Competitive is the 3-competitive policy of Section 3.4.1: switch when the
// cumulative residual cost of serving requests with the sub-optimal
// protocol exceeds the round-trip cost of switching away and back
// (dAB + dBA). Unlike hysteresis, the accumulator survives breaks in the
// streak; it is only cleared by an actual protocol change.
type Competitive struct {
	// Threshold is dAB + dBA, the cost of switching to the other protocol
	// and back, in cycles. The thesis's reactive spin lock uses 8800.
	Threshold uint64

	accum uint64
}

// NewCompetitive builds the policy with the given round-trip switch cost.
func NewCompetitive(threshold uint64) *Competitive {
	return &Competitive{Threshold: threshold}
}

// Name implements Policy.
func (p *Competitive) Name() string { return "3-competitive" }

// Suboptimal implements Policy.
func (p *Competitive) Suboptimal(_ Direction, residual uint64) bool {
	p.accum += residual
	return p.accum >= p.Threshold
}

// Optimal implements Policy. The cumulative residual is retained across
// breaks in the bad streak — the property distinguishing the competitive
// policy from hysteresis.
func (p *Competitive) Optimal(Direction) {}

// Switched implements Policy.
func (p *Competitive) Switched() { p.accum = 0 }

// Hysteresis switches after a direction's streak of consecutive
// sub-optimal requests reaches its threshold; any optimal request breaks
// the streak. Hysteresis(x, y) in Figure 3.23's notation is
// Thresholds[0] = x (cheap→scalable), Thresholds[1] = y (scalable→cheap).
type Hysteresis struct {
	Thresholds [2]uint64

	streak [2]uint64
}

// NewHysteresis builds Hysteresis(x, y).
func NewHysteresis(x, y uint64) *Hysteresis {
	return &Hysteresis{Thresholds: [2]uint64{x, y}}
}

// Name implements Policy.
func (p *Hysteresis) Name() string { return "hysteresis" }

// Suboptimal implements Policy.
func (p *Hysteresis) Suboptimal(dir Direction, _ uint64) bool {
	d := int(dir) & 1
	p.streak[d]++
	p.streak[1-d] = 0
	return p.streak[d] >= p.Thresholds[d]
}

// Optimal implements Policy.
func (p *Hysteresis) Optimal(Direction) { p.streak[0], p.streak[1] = 0, 0 }

// Switched implements Policy.
func (p *Hysteresis) Switched() { p.streak[0], p.streak[1] = 0, 0 }

// WeightedAverage ages an exponentially weighted moving average of the
// sub-optimality indicator (1 for sub-optimal, 0 for optimal) and switches
// when the average crosses Cross. Weight is the new-sample weight in
// 1/256ths (e.g. 64 = 0.25).
type WeightedAverage struct {
	Weight uint64 // new-sample weight, in 1/256ths
	Cross  uint64 // switch threshold, in 1/256ths

	avg uint64 // current average, in 1/256ths
}

// NewWeightedAverage builds an aging policy. Typical: weight 64, cross 192.
func NewWeightedAverage(weight, cross uint64) *WeightedAverage {
	return &WeightedAverage{Weight: weight, Cross: cross}
}

// Name implements Policy.
func (p *WeightedAverage) Name() string { return "weighted-average" }

// Suboptimal implements Policy.
func (p *WeightedAverage) Suboptimal(Direction, uint64) bool {
	p.avg = (p.avg*(256-p.Weight) + 256*p.Weight) / 256
	return p.avg >= p.Cross
}

// Optimal implements Policy.
func (p *WeightedAverage) Optimal(Direction) {
	p.avg = p.avg * (256 - p.Weight) / 256
}

// Switched implements Policy.
func (p *WeightedAverage) Switched() { p.avg = 0 }
