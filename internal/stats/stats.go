// Package stats provides the measurement utilities used by the experiment
// harness: waiting-time histograms (linear and logarithmic, for the
// waiting-time profiles of Figures 4.6-4.11), summary statistics, and small
// table-formatting helpers for experiment output.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range s.xs {
		t += x
	}
	return t / float64(len(s.xs))
}

// Percentile returns the p-th percentile (0 <= p <= 100) by the
// nearest-rank method.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	xs := append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	rank := int(math.Ceil(p/100*float64(len(xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(xs) {
		rank = len(xs) - 1
	}
	return xs[rank]
}

// Max returns the maximum observation.
func (s *Sample) Max() float64 {
	m := 0.0
	for _, x := range s.xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	mu := s.Mean()
	v := 0.0
	for _, x := range s.xs {
		v += (x - mu) * (x - mu)
	}
	return math.Sqrt(v / float64(n-1))
}

// WaitProfile is a waiting-time histogram implementing waiting.Profiler.
// Buckets are logarithmic base 2 starting at 1 cycle, matching the semi-log
// presentation of the thesis's waiting-time figures.
type WaitProfile struct {
	Name    string
	Buckets [40]uint64
	Sample  Sample
}

// Observe implements waiting.Profiler.
func (w *WaitProfile) Observe(wait uint64) {
	b := 0
	for v := wait; v > 1 && b < len(w.Buckets)-1; v >>= 1 {
		b++
	}
	w.Buckets[b]++
	w.Sample.Add(float64(wait))
}

// Quantile estimates the p-th quantile (0 ≤ p ≤ 1) of the observed
// waits from the log₂ bucket counts alone, interpolating linearly inside
// the bucket the rank falls in. Bucket 0 covers [0,2); bucket i ≥ 1
// covers [2^i, 2^(i+1)). The estimate is therefore exact for
// distributions uniform within each bucket and never off by more than
// one bucket's width otherwise — the resolution tail-latency trending
// needs without retaining raw samples. p outside [0,1] is clamped; an
// empty profile returns 0.
//
// Unlike Sample.Percentile (nearest rank over the retained
// observations), Quantile consumes only the fixed-size histogram, so it
// is the form that merges across workers and serializes: summing two
// profiles' Buckets field-by-field yields the merged distribution's
// quantiles directly.
func (w *WaitProfile) Quantile(p float64) float64 {
	var total uint64
	for _, c := range w.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total) // continuous rank in [0, total]
	var cum uint64
	last := 0
	for i, c := range w.Buckets {
		if c > 0 {
			last = i
		}
	}
	for i, c := range w.Buckets {
		if c == 0 {
			continue
		}
		if rank <= float64(cum+c) || i == last {
			lo, hi := bucketBounds(i)
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return 0 // unreachable: total > 0 guarantees a non-empty bucket
}

// bucketBounds returns bucket i's value range [lo, hi) as Observe bins
// it: bucket 0 holds waits 0 and 1, bucket i ≥ 1 holds [2^i, 2^(i+1)).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 2
	}
	return float64(uint64(1) << uint(i)), float64(uint64(1) << uint(i+1))
}

// FracBelow returns the fraction of waits strictly below t cycles.
func (w *WaitProfile) FracBelow(t float64) float64 {
	if w.Sample.N() == 0 {
		return 0
	}
	n := 0
	for _, x := range w.Sample.xs {
		if x < t {
			n++
		}
	}
	return float64(n) / float64(w.Sample.N())
}

// String renders the histogram as an ASCII semi-log plot.
func (w *WaitProfile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%.0f p50=%.0f p90=%.0f max=%.0f\n",
		w.Name, w.Sample.N(), w.Sample.Mean(), w.Sample.Percentile(50),
		w.Sample.Percentile(90), w.Sample.Max())
	var peak uint64
	hi := 0
	for i, c := range w.Buckets {
		if c > peak {
			peak = c
		}
		if c > 0 {
			hi = i
		}
	}
	if peak == 0 {
		return b.String()
	}
	for i := 0; i <= hi; i++ {
		bar := int(w.Buckets[i] * 50 / peak)
		fmt.Fprintf(&b, "  [%8d cyc) %6d %s\n", uint64(1)<<uint(i), w.Buckets[i], strings.Repeat("#", bar))
	}
	return b.String()
}

// Table formats rows of experiment output with aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// MarshalJSON encodes the table as {"header": [...], "rows": [[...]]},
// the machine-readable form the experiment runner emits.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{t.Header, t.Rows})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (t *Table) UnmarshalJSON(data []byte) error {
	var v struct {
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	t.Header, t.Rows = v.Header, v.Rows
	return nil
}

// String renders the table.
func (t *Table) String() string {
	all := append([][]string{t.Header}, t.Rows...)
	width := make([]int, 0)
	for _, r := range all {
		for i, c := range r {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range all {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", width[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := range t.Header {
				b.WriteString(strings.Repeat("-", width[i]) + "  ")
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
