package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.Mean() != 3 {
		t.Fatalf("mean %f", s.Mean())
	}
	if s.Percentile(50) != 3 {
		t.Fatalf("p50 %f", s.Percentile(50))
	}
	if s.Max() != 5 {
		t.Fatalf("max %f", s.Max())
	}
	if s.N() != 5 {
		t.Fatalf("n %d", s.N())
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		var s Sample
		for _, r := range raw {
			s.Add(float64(r))
		}
		if s.N() == 0 {
			return true
		}
		last := 0.0
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return s.Percentile(100) == s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWaitProfileBuckets(t *testing.T) {
	w := &WaitProfile{Name: "test"}
	w.Observe(1)    // bucket 0
	w.Observe(2)    // bucket 1
	w.Observe(3)    // bucket 1
	w.Observe(1024) // bucket 10
	if w.Buckets[0] != 1 || w.Buckets[1] != 2 || w.Buckets[10] != 1 {
		t.Fatalf("buckets %v", w.Buckets[:12])
	}
	if w.FracBelow(4) != 0.75 {
		t.Fatalf("FracBelow(4) = %f", w.FracBelow(4))
	}
	if !strings.Contains(w.String(), "n=4") {
		t.Fatal("String() missing summary")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"proto", "cycles"}}
	tb.AddRow("tts", "123")
	tb.AddRow("mcs-queue", "45678")
	out := tb.String()
	if !strings.Contains(out, "mcs-queue") || !strings.Contains(out, "proto") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := &Table{Header: []string{"proto", "cycles"}}
	tb.AddRow("tts", "123")
	tb.AddRow("mcs-queue", "45678")
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"header":["proto","cycles"],"rows":[["tts","123"],["mcs-queue","45678"]]}`
	if string(data) != want {
		t.Fatalf("marshal:\n got %s\nwant %s", data, want)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != tb.String() {
		t.Fatalf("round trip changed the table:\n%s\nvs\n%s", back.String(), tb.String())
	}
}

func TestStd(t *testing.T) {
	var s Sample
	s.Add(2)
	s.Add(4)
	if s.Std() < 1.41 || s.Std() > 1.42 {
		t.Fatalf("std %f", s.Std())
	}
}
