package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.Mean() != 3 {
		t.Fatalf("mean %f", s.Mean())
	}
	if s.Percentile(50) != 3 {
		t.Fatalf("p50 %f", s.Percentile(50))
	}
	if s.Max() != 5 {
		t.Fatalf("max %f", s.Max())
	}
	if s.N() != 5 {
		t.Fatalf("n %d", s.N())
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		var s Sample
		for _, r := range raw {
			s.Add(float64(r))
		}
		if s.N() == 0 {
			return true
		}
		last := 0.0
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return s.Percentile(100) == s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWaitProfileBuckets(t *testing.T) {
	w := &WaitProfile{Name: "test"}
	w.Observe(1)    // bucket 0
	w.Observe(2)    // bucket 1
	w.Observe(3)    // bucket 1
	w.Observe(1024) // bucket 10
	if w.Buckets[0] != 1 || w.Buckets[1] != 2 || w.Buckets[10] != 1 {
		t.Fatalf("buckets %v", w.Buckets[:12])
	}
	if w.FracBelow(4) != 0.75 {
		t.Fatalf("FracBelow(4) = %f", w.FracBelow(4))
	}
	if !strings.Contains(w.String(), "n=4") {
		t.Fatal("String() missing summary")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"proto", "cycles"}}
	tb.AddRow("tts", "123")
	tb.AddRow("mcs-queue", "45678")
	out := tb.String()
	if !strings.Contains(out, "mcs-queue") || !strings.Contains(out, "proto") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := &Table{Header: []string{"proto", "cycles"}}
	tb.AddRow("tts", "123")
	tb.AddRow("mcs-queue", "45678")
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"header":["proto","cycles"],"rows":[["tts","123"],["mcs-queue","45678"]]}`
	if string(data) != want {
		t.Fatalf("marshal:\n got %s\nwant %s", data, want)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != tb.String() {
		t.Fatalf("round trip changed the table:\n%s\nvs\n%s", back.String(), tb.String())
	}
}

func TestStd(t *testing.T) {
	var s Sample
	s.Add(2)
	s.Add(4)
	if s.Std() < 1.41 || s.Std() > 1.42 {
		t.Fatalf("std %f", s.Std())
	}
}

func TestQuantileEmptyAndClamp(t *testing.T) {
	var w WaitProfile
	if q := w.Quantile(0.5); q != 0 {
		t.Fatalf("empty profile quantile = %f, want 0", q)
	}
	w.Observe(100) // bucket 6: [64,128)
	if q := w.Quantile(-1); q != 64 {
		t.Fatalf("p<0 should clamp to the bucket floor: got %f, want 64", q)
	}
	if q := w.Quantile(2); q != 128 {
		t.Fatalf("p>1 should clamp to the bucket ceiling: got %f, want 128", q)
	}
}

// TestQuantilePointMass pins the interpolation formula on a
// single-bucket distribution: n observations of one value all land in
// one bucket, so Quantile(p) must walk linearly across that bucket.
func TestQuantilePointMass(t *testing.T) {
	var w WaitProfile
	for i := 0; i < 1000; i++ {
		w.Observe(100) // bucket 6: [64, 128)
	}
	for _, tc := range []struct{ p, want float64 }{
		{0.5, 64 + 0.5*64},   // 96
		{0.99, 64 + 0.99*64}, // 127.36
		{0.999, 64 + 0.999*64},
	} {
		if got := w.Quantile(tc.p); got != tc.want {
			t.Errorf("Quantile(%g) = %f, want %f", tc.p, got, tc.want)
		}
	}
}

// TestQuantileUniform checks p50/p99/p999 against the closed form for a
// discrete uniform distribution: within each log bucket a uniform
// distribution is exactly linear, so interpolation should land within
// one unit of the true quantile.
func TestQuantileUniform(t *testing.T) {
	var w WaitProfile
	for v := uint64(0); v < 1024; v++ {
		w.Observe(v)
	}
	for _, tc := range []struct{ p, want float64 }{
		{0.5, 512},
		{0.99, 1013.76},
		{0.999, 1022.976},
	} {
		got := w.Quantile(tc.p)
		if diff := got - tc.want; diff < -1 || diff > 1 {
			t.Errorf("Quantile(%g) = %f, want %f ±1", tc.p, got, tc.want)
		}
	}
}

// TestQuantileBimodal pins tail behavior on a two-mass distribution: 90%
// fast requests, 10% slow ones — p50 must sit in the fast bucket, p99
// and p999 in the slow one, and both must agree with the nearest-rank
// percentile of the raw sample to within the slow bucket's width.
func TestQuantileBimodal(t *testing.T) {
	var w WaitProfile
	for i := 0; i < 900; i++ {
		w.Observe(10) // bucket 3: [8, 16)
	}
	for i := 0; i < 100; i++ {
		w.Observe(100000) // bucket 16: [65536, 131072)
	}
	if got, want := w.Quantile(0.5), 8+500.0/900*8; got != want {
		t.Errorf("p50 = %f, want %f", got, want)
	}
	for _, p := range []float64{0.99, 0.999} {
		got := w.Quantile(p)
		if got < 65536 || got >= 131072 {
			t.Errorf("Quantile(%g) = %f, want within the slow bucket [65536, 131072)", p, got)
		}
		exact := w.Sample.Percentile(p * 100)
		if diff := got - exact; diff < -65536 || diff > 65536 {
			t.Errorf("Quantile(%g) = %f, more than one bucket width from exact %f", p, got, exact)
		}
	}
}

// TestQuantileMergesAcrossProfiles checks the property the load harness
// relies on: summing per-worker bucket arrays yields the merged
// distribution's quantiles.
func TestQuantileMergesAcrossProfiles(t *testing.T) {
	var a, b, merged WaitProfile
	for i := 0; i < 500; i++ {
		a.Observe(10)
		b.Observe(100000)
		merged.Observe(10)
		merged.Observe(100000)
	}
	var sum WaitProfile
	for i := range sum.Buckets {
		sum.Buckets[i] = a.Buckets[i] + b.Buckets[i]
	}
	for _, p := range []float64{0.25, 0.5, 0.9, 0.99} {
		if sum.Quantile(p) != merged.Quantile(p) {
			t.Errorf("Quantile(%g): summed buckets %f != merged profile %f",
				p, sum.Quantile(p), merged.Quantile(p))
		}
	}
}
