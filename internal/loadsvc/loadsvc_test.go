package loadsvc

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// shortOpts are the bounded options every test runs under: a fraction
// of a second of scheduled arrivals so the whole file stays
// seconds-scale even with -race.
func shortOpts(t *testing.T) Options {
	o := Options{Duration: 300 * time.Millisecond, Seed: 7}
	if testing.Short() {
		o.Duration = 150 * time.Millisecond
	}
	t.Helper()
	return o
}

// TestPlanDeterministic pins the registry-derived-seed idiom: the same
// (seed, scenario) always materializes the identical request schedule,
// and different scenarios or seeds diverge.
func TestPlanDeterministic(t *testing.T) {
	o := Options{Duration: 200 * time.Millisecond, Seed: 42}
	for _, sc := range Scenarios() {
		a := BuildPlan(sc, o)
		b := BuildPlan(sc, o)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two plans from the same options differ", sc.Name)
		}
		if len(a.Reqs) == 0 {
			t.Errorf("%s: empty plan", sc.Name)
		}
		other := o
		other.Seed = 43
		if reflect.DeepEqual(a, BuildPlan(sc, other)) {
			t.Errorf("%s: different seeds produced the same plan", sc.Name)
		}
	}
}

// TestVirtualRunDeterministic is the loadgen determinism guarantee: a
// seeded short-duration scenario replayed twice produces identical
// request counts, class tallies, and histogram bucket totals.
func TestVirtualRunDeterministic(t *testing.T) {
	o := shortOpts(t)
	o.Virtual = true
	for _, sc := range Scenarios() {
		a, err := Run(sc, o)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		b, err := Run(sc, o)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if a.Requests == 0 {
			t.Errorf("%s: no requests", sc.Name)
		}
		if a.Requests != b.Requests || a.Fresh != b.Fresh || a.Stale != b.Stale ||
			a.Cancelled != b.Cancelled || a.Errors != b.Errors {
			t.Errorf("%s: request counts differ between identical virtual runs:\n%+v\nvs\n%+v",
				sc.Name, a, b)
		}
		if a.Hist.Buckets != b.Hist.Buckets {
			t.Errorf("%s: histogram bucket totals differ between identical virtual runs", sc.Name)
		}
		if a.P50Us != b.P50Us || a.P99Us != b.P99Us || a.P999Us != b.P999Us {
			t.Errorf("%s: quantiles differ between identical virtual runs", sc.Name)
		}
	}
}

// TestVirtualStormCancels checks the virtual classification path sees
// what the live one must: the cancellation storm cancels requests, the
// others mostly complete.
func TestVirtualStormCancels(t *testing.T) {
	o := shortOpts(t)
	o.Virtual = true
	sc, _ := Lookup("cancellation-storm")
	rep, err := Run(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cancelled == 0 {
		t.Error("virtual cancellation-storm cancelled nothing")
	}
	if rep.CancelledRate <= 0 {
		t.Error("cancelled rate not derived")
	}
}

// TestLiveReadHeavy drives the real service open-loop for a fraction of
// a second: every scheduled request must be accounted for, the
// service-side Counter must agree with the executor's accounting, and
// the fleet must drain without tripping the stranded-waiter guard.
func TestLiveReadHeavy(t *testing.T) {
	o := shortOpts(t)
	o.Rate = 1000
	sc, _ := Lookup("read-heavy")
	rep, err := Run(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostWaiters != 0 {
		t.Fatalf("lost waiters: %d", rep.LostWaiters)
	}
	want := int64(len(BuildPlan(sc, o).Reqs))
	if rep.Requests != want {
		t.Errorf("accounted %d requests, plan scheduled %d", rep.Requests, want)
	}
	if rep.HitCount != want {
		t.Errorf("service hit counter %d, want %d (every request bumps it exactly once)",
			rep.HitCount, want)
	}
	if rep.Errors != 0 {
		t.Errorf("%d unexpected request errors", rep.Errors)
	}
	var observed uint64
	for _, c := range rep.Hist.Buckets {
		observed += c
	}
	if observed == 0 || rep.P99Us <= 0 {
		t.Error("no latency observations")
	}
	if rep.PeakLatencyNs <= 0 {
		t.Error("max-aggregating FetchOp saw no latencies")
	}
	if len(rep.Primitives) != 4 {
		t.Errorf("scraped %d primitive deltas, want 4 (router/journal/hits/peak)", len(rep.Primitives))
	}
	if _, ok := rep.Primitives["router"]; !ok {
		t.Error("router missing from scraped telemetry")
	}
}

// TestLiveCancellationStorm is the acceptance property: the storm
// cancels a nonzero fraction of requests and strands no waiter — every
// worker drains within the guard even though cancellations race lock
// handoffs the whole run.
func TestLiveCancellationStorm(t *testing.T) {
	o := shortOpts(t)
	o.Rate = 1500
	sc, _ := Lookup("cancellation-storm")
	rep, err := Run(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostWaiters != 0 {
		t.Fatalf("lost waiters: %d", rep.LostWaiters)
	}
	if rep.Cancelled == 0 {
		t.Error("cancellation storm cancelled nothing (pre-cancelled clients alone guarantee > 0)")
	}
	if rep.Requests != rep.Fresh+rep.Stale+rep.Cancelled+rep.Errors {
		t.Error("outcome classes do not partition the requests")
	}
}

// TestLiveChurnSpawnsWorkers checks the churn scenario actually turns
// worker goroutines over: strictly more goroutine bodies than lanes.
func TestLiveChurnSpawnsWorkers(t *testing.T) {
	o := shortOpts(t)
	o.Rate = 1500
	o.Workers = 4
	sc, _ := Lookup("goroutine-churn")
	rep, err := Run(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostWaiters != 0 {
		t.Fatalf("lost waiters: %d", rep.LostWaiters)
	}
	if rep.WorkersSpawned <= int64(o.Workers) {
		t.Errorf("churn spawned %d goroutine bodies for %d lanes; expected turnover",
			rep.WorkersSpawned, o.Workers)
	}
}

// TestLiveSweep runs the GOMAXPROCS sweep end to end (restoring the
// setting) and checks per-setting sub-rows plus merged accounting.
func TestLiveSweep(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	o := shortOpts(t)
	o.Rate = 1000
	sc, _ := Lookup("gomaxprocs-sweep")
	rep, err := Run(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := runtime.GOMAXPROCS(0); got != prev {
		t.Fatalf("sweep leaked GOMAXPROCS=%d (was %d)", got, prev)
	}
	if len(rep.Sub) != len(sc.Procs) {
		t.Fatalf("%d sub-reports for %d sweep settings", len(rep.Sub), len(sc.Procs))
	}
	var subTotal int64
	for _, s := range rep.Sub {
		subTotal += s.Requests
	}
	if subTotal != rep.Requests {
		t.Errorf("sub-report requests sum to %d, merged report says %d", subTotal, rep.Requests)
	}
	if rep.LostWaiters != 0 {
		t.Fatalf("lost waiters: %d", rep.LostWaiters)
	}
}

// TestWriteBurstStaleReads drives the burst scenario long enough for at
// least one bulk rebuild to hold the write lock past read deadlines.
// Whether a particular read blows its deadline is timing-dependent, so
// this asserts only the plumbing: stale reads are counted when they
// happen and never outnumber completions.
func TestWriteBurstStaleReads(t *testing.T) {
	o := shortOpts(t)
	o.Rate = 1500
	sc, _ := Lookup("write-burst")
	rep, err := Run(sc, o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostWaiters != 0 {
		t.Fatalf("lost waiters: %d", rep.LostWaiters)
	}
	if rep.Stale > rep.Fresh+rep.Stale {
		t.Error("stale count exceeds completions")
	}
	if rep.StaleRate < 0 || rep.StaleRate > 1 {
		t.Errorf("stale rate %f out of range", rep.StaleRate)
	}
}

// TestTailDoc pins the bench_tail/v1 row layout benchcmp -tail gates.
func TestTailDoc(t *testing.T) {
	o := shortOpts(t)
	o.Virtual = true
	var reports []*Report
	for _, sc := range Scenarios() {
		rep, err := Run(sc, o)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	doc := BuildTailDoc(reports)
	if doc.Schema != TailSchema {
		t.Fatalf("schema %q", doc.Schema)
	}
	want := map[string]bool{}
	for _, name := range ScenarioNames() {
		for _, q := range []string{"p50", "p99", "p999", "max"} {
			want[name+"/"+q] = true
		}
	}
	got := map[string]bool{}
	for _, row := range doc.Tail {
		if got[row.Name] {
			t.Errorf("duplicate tail row %q", row.Name)
		}
		got[row.Name] = true
	}
	for name := range want {
		if !got[name] {
			t.Errorf("missing tail row %q", name)
		}
	}
}

// TestServiceDirect exercises the service API without the driver: fresh
// and stale reads, journal writes, rebuilds, and pre-cancelled requests.
func TestServiceDirect(t *testing.T) {
	s := NewService()
	ctx := context.Background()

	res, err := s.Get(ctx, 3, 10)
	if err != nil || res.Stale {
		t.Fatalf("plain get: %+v, %v", res, err)
	}
	if err := s.Put(ctx, 3, 99, 10); err != nil {
		t.Fatal(err)
	}
	res, err = s.Get(ctx, 3, 10)
	if err != nil || res.Val != 99 {
		t.Fatalf("get after put: %+v, %v", res, err)
	}
	if err := s.Rebuild(ctx, 5, 10); err != nil {
		t.Fatal(err)
	}
	if res, _ = s.Get(ctx, 3, 10); res.Val != 3*3+5 {
		t.Fatalf("get after rebuild: %+v", res)
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.Get(cancelled, 1, 10); err == nil {
		t.Fatal("pre-cancelled get should fail")
	}
	if err := s.Put(cancelled, 1, 2, 10); err == nil {
		t.Fatal("pre-cancelled put should fail")
	}
	if n := s.JournalLen(); n != 1 {
		t.Fatalf("journal length %d, want 1 (only the successful put commits)", n)
	}
	if s.Hits() != 7 {
		t.Fatalf("hit counter %d, want 7 (every request counted, even cancelled)", s.Hits())
	}
	s.RecordLatency(1234)
	s.RecordLatency(99)
	if s.PeakLatency() != 1234 {
		t.Fatalf("peak %d", s.PeakLatency())
	}
}
