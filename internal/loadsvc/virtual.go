package loadsvc

import "repro/internal/sim"

// Virtual-replay latency model: a fixed dispatch overhead, a
// per-spin-iteration cost, and an exponential queueing term. The model
// is not calibrated to any host — its only job is to be deterministic
// and to spread mass across histogram buckets the way real latencies do,
// so the replay executor exercises exactly the classification and
// histogram plumbing the live executor uses.
const (
	virtBaseNs    = 1500
	virtWorkNs    = 3 // per spin iteration
	virtQueueMean = 20000.0
)

// runVirtual replays sc's plan without wall clock, service, or
// goroutines: each request is assigned a synthetic latency drawn from a
// seed-derived RNG and classified against its own deadline and cancel
// window. Two virtual runs with the same Options produce byte-identical
// reports — request counts, class tallies, and histogram buckets — which
// is what the determinism tests pin. Primitive telemetry is absent
// (there is no service to scrape).
func runVirtual(sc Spec, o Options) *Report {
	plan := BuildPlan(sc, o)
	rng := sim.NewRand(planSeed(o.Seed, "virtual/"+sc.Name))

	rep := newReport(sc.Name, o)
	rep.Seed = plan.Seed
	t := &tally{}
	t.spawned = int64(o.Workers)
	var peak int64
	for _, r := range plan.Reqs {
		latNs := int64(virtBaseNs + virtWorkNs*int64(r.Work) + int64(expDraw(rng)*virtQueueMean))
		class := classFresh
		switch {
		case r.CancelNow:
			class = classCancelled
		case r.CancelAfter > 0 && latNs > r.CancelAfter.Nanoseconds():
			class = classCancelled
		case r.Deadline > 0 && latNs > r.Deadline.Nanoseconds():
			if r.Kind == OpGet {
				class = classStale // deadline expiry degrades reads
			} else {
				class = classCancelled // writes just give up
			}
		}
		t.record(class, latNs)
		rep.HitCount++ // every accepted request; mirrors Service.Hits
		if (class == classFresh || class == classStale) && latNs > peak {
			peak = latNs
		}
	}
	rep.absorb(t)
	rep.PeakLatencyNs = peak
	rep.finish()
	return rep
}
