package loadsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/watchdog"
	"repro/reactive/reactivehttp"
)

// outcome classes for one executed request.
const (
	classFresh = iota
	classStale
	classCancelled
	classError
	numClasses
)

// tally is one worker lane's private accounting: outcome counts and a
// latency histogram (nanosecond buckets). Lanes never share a tally, so
// recording is synchronization-free; the runner merges tallies after the
// fleet drains.
type tally struct {
	counts  [numClasses]int64
	hist    stats.WaitProfile
	spawned int64 // goroutine bodies started on this lane (churn metric)
}

func (t *tally) record(class int, latNs int64) {
	t.counts[class]++
	if class == classFresh || class == classStale {
		t.hist.Observe(uint64(latNs))
	}
}

// item is one dispatched request: the plan entry plus its scheduled
// (not actual) arrival instant, the open-loop latency origin.
type item struct {
	req Req
	due time.Time
}

// Run executes scenario sc under o and reports the run. Virtual options
// replay the plan deterministically (see runVirtual); a Spec with a
// Procs sweep runs the plan once per GOMAXPROCS setting and merges.
func Run(sc Spec, o Options) (*Report, error) {
	o = o.withDefaults(sc)
	if o.Virtual {
		return runVirtual(sc, o), nil
	}
	if len(sc.Procs) > 0 {
		return runSweep(sc, o)
	}
	if len(sc.RouterModes) > 0 {
		return runModeSweep(sc, o)
	}
	return runLive(sc, o)
}

// runModeSweep splits the duration across the sweep's forced routing-map
// protocols, runs the (identical) plan once per protocol against a fresh
// service, and merges; per-protocol quantiles land in Report.Sub tagged
// with the forced mode. The GOMAXPROCS analogue of runSweep, but the
// variable is the Map's protocol, not the host's parallelism.
func runModeSweep(sc Spec, o Options) (*Report, error) {
	sub := o
	sub.Duration = o.Duration / time.Duration(len(sc.RouterModes))
	flat := sc
	flat.RouterModes = nil

	merged := newReport(sc.Name, o)
	for _, mode := range sc.RouterModes {
		flat.RouterMode = mode
		r, err := runLive(flat, sub)
		if err != nil {
			return merged, err
		}
		merged.merge(r)
		merged.Sub = append(merged.Sub, SubReport{
			Mode:     mode.String(),
			Requests: r.Requests,
			P50Us:    r.P50Us,
			P99Us:    r.P99Us,
			P999Us:   r.P999Us,
			MaxUs:    r.MaxUs,
		})
	}
	merged.finish()
	return merged, nil
}

// runSweep splits the duration across the sweep's GOMAXPROCS settings,
// runs the (identical) plan once per setting against a fresh service,
// and merges counts and histograms; per-setting quantiles land in
// Report.Sub.
func runSweep(sc Spec, o Options) (*Report, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	sub := o
	sub.Duration = o.Duration / time.Duration(len(sc.Procs))
	flat := sc
	flat.Procs = nil

	merged := newReport(sc.Name, o)
	for _, procs := range sc.Procs {
		runtime.GOMAXPROCS(procs)
		r, err := runLive(flat, sub)
		if err != nil {
			return merged, err
		}
		merged.merge(r)
		merged.Sub = append(merged.Sub, SubReport{
			Procs:    procs,
			Requests: r.Requests,
			P50Us:    r.P50Us,
			P99Us:    r.P99Us,
			P999Us:   r.P999Us,
			MaxUs:    r.MaxUs,
		})
	}
	merged.finish()
	return merged, nil
}

// runLive drives a fresh Service with sc's plan, open loop: a dispatcher
// releases each request at its scheduled arrival into an
// unbounded-in-practice buffer (capacity = plan length, so the
// dispatcher never blocks on a slow service), worker lanes pull and
// execute, and latency is measured from the scheduled arrival — the
// queueing delay of an overloaded service is part of the measurement.
// Primitive telemetry is scraped through a real reactivehttp endpoint
// before and after the run.
func runLive(sc Spec, o Options) (*Report, error) {
	plan := BuildPlan(sc, o)
	svc := NewServiceFor(sc)

	mux := http.NewServeMux()
	reactivehttp.Handle(mux, svc.Registry())
	srv := httptest.NewServer(mux)
	defer srv.Close()
	if _, err := scrape(srv.URL); err != nil { // baseline poll: deltas start here
		return nil, err
	}

	work := make(chan item, len(plan.Reqs))
	tallies := make([]*tally, o.Workers)
	var wg sync.WaitGroup
	for i := range tallies {
		tallies[i] = &tally{}
		wg.Add(1)
		go lane(svc, work, plan.ChurnEvery, tallies[i], &wg)
	}

	start := time.Now()
	for _, r := range plan.Reqs {
		due := start.Add(r.At)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		work <- item{req: r, due: due}
	}
	close(work)

	rep := newReport(sc.Name, o)
	rep.Seed = plan.Seed

	// The stranded-waiter guard: every lane must drain within Guard of
	// the last arrival. A lane that never returns means a waiter was
	// lost inside a primitive — the failure mode the no-lost-wakeup
	// design rules out, so it is reported loudly (with the watchdog's
	// goroutine dump and a service snapshot) rather than hung on.
	fleetDone := make(chan struct{})
	go func() { wg.Wait(); close(fleetDone) }()
	if err := watchdog.Await(fleetDone, o.Guard, func() string {
		return fmt.Sprintf("service: hits=%d journal=%d peak_latency_ns=%d",
			svc.Hits(), svc.JournalLen(), svc.PeakLatency())
	}); err != nil {
		rep.LostWaiters = o.Workers // at least one; lanes cannot be inspected safely
		rep.finish()
		return rep, fmt.Errorf("loadsvc: %s: worker fleet still blocked %v after the last arrival (stranded waiter?): %w",
			sc.Name, o.Guard, err)
	}

	for _, t := range tallies {
		rep.absorb(t)
	}
	rep.HitCount = svc.Hits()
	rep.PeakLatencyNs = svc.PeakLatency()

	final, err := scrape(srv.URL)
	if err != nil {
		return nil, err
	}
	rep.Primitives = primitiveDeltas(final)
	rep.finish()
	return rep, nil
}

// lane keeps one worker slot occupied. Without churn the lane body runs
// the whole plan; with churn each body retires after churnEvery requests
// and the lane immediately respawns a fresh goroutine, so concurrency is
// constant while goroutine identities (and their per-P affinity history,
// parked-waiter nodes, and stack caches) turn over continuously.
func lane(svc *Service, work <-chan item, churnEvery int, t *tally, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		done := make(chan bool)
		t.spawned++
		go func() {
			n := 0
			for it := range work {
				execute(svc, it, t)
				n++
				if churnEvery > 0 && n >= churnEvery {
					done <- true
					return
				}
			}
			done <- false
		}()
		if !<-done {
			return
		}
	}
}

// execute runs one request against the live service, classifies the
// outcome, and records its open-loop latency.
func execute(svc *Service, it item, t *tally) {
	ctx := context.Background()
	var cancel context.CancelFunc
	if d := it.req.Deadline; d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	switch {
	case it.req.CancelNow:
		c, cc := context.WithCancel(ctx)
		cc() // client disconnected while the request sat in the queue
		ctx = c
	case it.req.CancelAfter > 0:
		c, cc := context.WithCancel(ctx)
		defer cc()
		timer := time.AfterFunc(it.req.CancelAfter, cc)
		defer timer.Stop()
		ctx = c
	}

	class := classError
	switch it.req.Kind {
	case OpGet:
		res, err := svc.Get(ctx, it.req.Key, it.req.Work)
		switch {
		case err != nil:
			class = classCancelled
		case res.Stale:
			class = classStale
		default:
			class = classFresh
		}
	case OpPut:
		if err := svc.Put(ctx, it.req.Key, it.req.Val, it.req.Work); err != nil {
			class = classCancelled
		} else {
			class = classFresh
		}
	case OpRebuild:
		if err := svc.Rebuild(ctx, it.req.Val, it.req.Work); err != nil {
			class = classCancelled
		} else {
			class = classFresh
		}
	}

	latNs := time.Since(it.due).Nanoseconds()
	if latNs < 0 {
		latNs = 0
	}
	if class == classFresh || class == classStale {
		svc.RecordLatency(latNs)
	}
	t.record(class, latNs)
}

// scrape polls the service's /debug/reactive endpoint the way an
// external monitoring agent would, returning the handler's poll-aware
// report (deltas and switch rates are relative to the previous scrape).
func scrape(base string) (reactivehttp.Report, error) {
	var rep reactivehttp.Report
	resp, err := http.Get(base + "/debug/reactive")
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&rep)
	return rep, err
}

// primitiveDeltas flattens a scraped report into the per-primitive
// delta summary the scenario report carries.
func primitiveDeltas(rep reactivehttp.Report) map[string]PrimitiveDelta {
	out := make(map[string]PrimitiveDelta, len(rep.Primitives))
	for name, p := range rep.Primitives {
		d := PrimitiveDelta{
			Mode:     p.Mode.String(),
			Switches: p.Delta.Switches,
			Waiters:  p.Waiters,
		}
		if p.Readers != nil {
			d.ReaderMode = p.Readers.Mode.String()
			if p.Delta.Readers != nil {
				d.ReaderSwitches = p.Delta.Readers.Switches
			}
		}
		out[name] = d
	}
	return out
}
